/**
 * @file
 * m3bench: the command-line front end for running any of the paper's
 * workloads on either system with tweakable parameters.
 *
 * Usage:
 *   m3bench <workload> [options]
 *
 * Workloads: cat+tr, tar, untar, find, sqlite, fft, read, write, pipe,
 * syscall.
 *
 * Options:
 *   --lx               run on the Linux baseline instead of M3
 *   --lx-hit           baseline with all cache hits (Lx-$)
 *   --arm              baseline with the ARM cost profile (Sec. 5.2)
 *   --accel            fft: use the FFT accelerator PE
 *   --instances N      scalability mode: N parallel instances (M3)
 *   --fs-instances K   shard the clients over K m3fs instances
 *   --stripes N        stripe the data plane over N m3fs instances
 *                      (distfs; scalability mode only)
 *   --stripe-unit B    distfs striping unit in blocks (default 8)
 *   --replicas R       distfs replication factor (default 1 = off)
 *   --io-chunk N       streaming buffer override for trace benches
 *   --kernels K        shard the control plane over K kernels
 *   --shards=K         shard the engine (requires K == --kernels)
 *   --threads=N        host threads driving the engine shards
 *                      (M3_SHARDS / M3_THREADS env set the defaults)
 *   --bytes N          transfer size for read/write/pipe (default 2 MiB)
 *   --buf N            buffer size (default 4096)
 *   --append-blocks N  m3fs allocation granularity (default 256)
 *   --frag N           blocks per extent of prepared files
 *   --json             machine-readable output (one JSON object)
 *   --workload NAME    alternative to the positional workload; also
 *                      accepts "fig6" (= tar x8, the Fig. 6 setup)
 *   --trace=FILE       record a Chrome trace (open in Perfetto)
 *   --metrics=FILE     dump the metric registry as JSON
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "workloads/engine_opts.hh"
#include "workloads/generators.hh"
#include "workloads/micro.hh"
#include "workloads/runners.hh"

using namespace m3;
using namespace m3::workloads;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: m3bench <cat+tr|tar|untar|find|sqlite|fft|read|write|"
        "pipe|syscall> [options]\n"
        "  --lx --lx-hit --arm --accel --instances N --fs-instances K\n"
        "  --kernels K --shards=K --threads=N\n"
        "  --bytes N --buf N --append-blocks N --frag N --json\n"
        "  --workload NAME --trace=FILE --metrics=FILE\n");
    std::exit(2);
}

std::string traceFile;
std::string metricsFile;

/** Write the pending trace/metrics dumps (call once, before exiting). */
void
writeObservability()
{
    if (!traceFile.empty() && !trace::Tracer::writeJson(traceFile)) {
        std::fprintf(stderr, "m3bench: cannot write trace to %s\n",
                     traceFile.c_str());
        std::exit(1);
    }
    if (!metricsFile.empty() && !trace::Metrics::writeJson(metricsFile)) {
        std::fprintf(stderr, "m3bench: cannot write metrics to %s\n",
                     metricsFile.c_str());
        std::exit(1);
    }
}

bool jsonOutput = false;

void
report(const std::string &name, const RunResult &r)
{
    if (r.rc != 0) {
        std::printf("%s: FAILED (rc=%d)\n", name.c_str(), r.rc);
        std::exit(1);
    }
    if (jsonOutput) {
        std::printf("{\"workload\": \"%s\", \"wall_cycles\": %llu, "
                    "\"app_cycles\": %llu, \"xfer_cycles\": %llu, "
                    "\"os_cycles\": %llu, \"events\": %llu, "
                    "\"host_seconds\": %.6f, \"events_per_sec\": %.0f}\n",
                    name.c_str(),
                    static_cast<unsigned long long>(r.wall),
                    static_cast<unsigned long long>(r.app()),
                    static_cast<unsigned long long>(r.xfer()),
                    static_cast<unsigned long long>(r.os()),
                    static_cast<unsigned long long>(r.events),
                    r.hostSeconds,
                    r.hostSeconds > 0 ? r.events / r.hostSeconds : 0.0);
        return;
    }
    std::printf("%-10s %12llu cycles  (App %llu, Xfers %llu, OS %llu)\n",
                name.c_str(), static_cast<unsigned long long>(r.wall),
                static_cast<unsigned long long>(r.app()),
                static_cast<unsigned long long>(r.xfer()),
                static_cast<unsigned long long>(r.os()));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string workload;

    bool onLx = false;
    bool accel = false;
    uint32_t instances = 0;
    MicroOpts micro;
    M3RunOpts m3opts;
    LxRunOpts lxopts;
    EngineArgs eng;
    eng.loadEnv();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intArg = [&](const char *) {
            if (i + 1 >= argc)
                usage();
            return static_cast<uint64_t>(std::strtoull(argv[++i],
                                                       nullptr, 0));
        };
        if (arg == "--lx") {
            onLx = true;
        } else if (arg == "--lx-hit") {
            onLx = true;
            lxopts.cacheAlwaysHit = true;
            micro.lx.cacheAlwaysHit = true;
        } else if (arg == "--arm") {
            onLx = true;
            lxopts.costs = LinuxCosts::arm();
            micro.lx.costs = LinuxCosts::arm();
        } else if (arg == "--accel") {
            accel = true;
        } else if (arg == "--instances") {
            instances = static_cast<uint32_t>(intArg("instances"));
        } else if (arg == "--fs-instances") {
            m3opts.fsInstances = static_cast<uint32_t>(intArg("fs"));
        } else if (arg == "--stripes") {
            m3opts.distfsStripes = static_cast<uint32_t>(intArg("s"));
        } else if (arg == "--stripe-unit") {
            m3opts.distfsUnitBlocks =
                static_cast<uint32_t>(intArg("u"));
        } else if (arg == "--replicas") {
            m3opts.distfsReplicas = static_cast<uint32_t>(intArg("r"));
        } else if (arg == "--io-chunk") {
            m3opts.ioChunk = static_cast<uint32_t>(intArg("c"));
        } else if (arg == "--kernels") {
            m3opts.numKernels = static_cast<uint32_t>(intArg("k"));
        } else if (eng.parse(arg)) {
            // --threads= / --shards= handled by EngineArgs.
        } else if (arg == "--bytes") {
            micro.fileBytes = intArg("bytes");
        } else if (arg == "--buf") {
            micro.bufSize = static_cast<uint32_t>(intArg("buf"));
        } else if (arg == "--append-blocks") {
            micro.appendBlocks = static_cast<uint32_t>(intArg("ab"));
            m3opts.fsAppendBlocks = micro.appendBlocks;
        } else if (arg == "--frag") {
            micro.blocksPerExtent = static_cast<uint32_t>(intArg("f"));
            m3opts.fsBlocksPerExtent = micro.blocksPerExtent;
        } else if (arg == "--json") {
            jsonOutput = true;
        } else if (arg == "--workload") {
            if (i + 1 >= argc)
                usage();
            workload = argv[++i];
        } else if (arg.rfind("--trace=", 0) == 0) {
            traceFile = arg.substr(8);
        } else if (arg.rfind("--metrics=", 0) == 0) {
            metricsFile = arg.substr(10);
        } else if (arg.rfind("--", 0) != 0 && workload.empty()) {
            workload = arg;
        } else {
            usage();
        }
    }
    if (workload.empty())
        usage();
    eng.apply(m3opts);
    micro.m3 = m3opts;

    if (!traceFile.empty())
        trace::Tracer::enable();
    if (!metricsFile.empty())
        trace::Metrics::enable();

    // "fig6" is shorthand for the paper's Fig. 6 setup: the tar workload
    // scaled over parallel instances (8 unless --instances overrides).
    if (workload == "fig6") {
        workload = "tar";
        if (instances == 0)
            instances = 8;
    }

    // Scalability mode.
    if (instances > 0) {
        if (onLx) {
            std::fprintf(stderr,
                         "--instances is an M3 mode (Sec. 5.7)\n");
            return 2;
        }
        ScalabilityResult r = runM3Scalability(workload, instances,
                                               m3opts);
        writeObservability();
        if (r.rc != 0) {
            std::printf("FAILED (rc=%d)\n", r.rc);
            return 1;
        }
        if (jsonOutput) {
            std::printf("{\"workload\": \"%s\", \"instances\": %u, "
                        "\"avg_instance_cycles\": %llu, "
                        "\"instance_cycles\": [",
                        workload.c_str(), instances,
                        static_cast<unsigned long long>(r.avgInstance));
            for (uint32_t i = 0; i < instances; ++i)
                std::printf("%s%llu", i ? ", " : "",
                            static_cast<unsigned long long>(
                                r.instances[i]));
            std::printf("], \"events\": %llu, \"host_seconds\": %.6f, "
                        "\"events_per_sec\": %.0f}\n",
                        static_cast<unsigned long long>(r.events),
                        r.hostSeconds,
                        r.hostSeconds > 0 ? r.events / r.hostSeconds
                                          : 0.0);
            return 0;
        }
        std::printf("%s x%u: avg %llu cycles per instance\n",
                    workload.c_str(), instances,
                    static_cast<unsigned long long>(r.avgInstance));
        for (uint32_t i = 0; i < instances; ++i)
            std::printf("  instance %-2u %llu\n", i,
                        static_cast<unsigned long long>(r.instances[i]));
        return 0;
    }

    ComputeCosts compute;
    if (workload == "cat+tr") {
        CatTrParams p;
        p.bufSize = micro.bufSize;
        report(workload,
               onLx ? runLxCatTr(p, lxopts) : runM3CatTr(p, m3opts));
    } else if (workload == "fft") {
        FftParams p;
        p.useAccel = accel;
        p.binary = accel ? "/bin/fft-accel" : "/bin/fft-sw";
        report(workload, onLx ? runLxFft(p, lxopts)
                              : runM3Fft(p, m3opts));
    } else if (workload == "read") {
        report(workload, onLx ? lxFileRead(micro) : m3FileRead(micro));
    } else if (workload == "write") {
        report(workload, onLx ? lxFileWrite(micro) : m3FileWrite(micro));
    } else if (workload == "pipe") {
        report(workload, onLx ? lxPipeXfer(micro) : m3PipeXfer(micro));
    } else if (workload == "syscall") {
        report(workload, onLx ? lxNullSyscall(64, micro.lx)
                              : m3NullSyscall(64, m3opts));
    } else {
        bool found = false;
        for (const Workload &w : makeAllTraceWorkloads(compute)) {
            if (w.name == workload) {
                report(workload, onLx ? runLxTrace(w, lxopts)
                                      : runM3Trace(w, m3opts));
                found = true;
            }
        }
        if (!found)
            usage();
    }
    writeObservability();
    return 0;
}
