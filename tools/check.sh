#!/bin/sh
# Full pre-merge check: build and run the test suite twice, once in the
# default optimized configuration and once instrumented with ASan+UBSan
# (the fiber/ucontext switching is ASan-aware, no extra options needed).
#
# Usage: tools/check.sh [jobs]   (default: nproc)
set -eu

cd "$(dirname "$0")/.."
jobs=${1:-$(nproc)}

run_config() {
    dir=$1
    shift
    echo "=== configure $dir ($*)"
    cmake -B "$dir" -S . "$@"
    echo "=== build $dir"
    cmake --build "$dir" -j "$jobs"
    echo "=== test $dir"
    ctest --test-dir "$dir" -j "$jobs" --output-on-failure
}

run_config build-release -DCMAKE_BUILD_TYPE=Release -DM3_SANITIZE=
run_config build-asan -DM3_SANITIZE=address,undefined

# Perf smoke: the release build must reproduce the committed simulated
# state (events, sim_cycles) exactly and stay within the events/sec
# regression tolerance recorded in BENCH_simperf.json.
echo "=== simperf smoke (vs BENCH_simperf.json)"
./build-release/bench/simperf --quick --check BENCH_simperf.json

echo "=== all checks passed"
