#!/bin/sh
# Full pre-merge check: build and run the test suite twice, once in the
# default optimized configuration and once instrumented with ASan+UBSan
# (the fiber/ucontext switching is ASan-aware, no extra options needed).
#
# Usage: tools/check.sh [jobs]   (default: nproc)
set -eu

cd "$(dirname "$0")/.."
jobs=${1:-$(nproc)}

run_config() {
    dir=$1
    labels=$2
    shift 2
    echo "=== configure $dir ($*)"
    cmake -B "$dir" -S . "$@"
    echo "=== build $dir"
    cmake --build "$dir" -j "$jobs"
    echo "=== test $dir ($labels)"
    # shellcheck disable=SC2086  # $labels is a ctest flag pair
    ctest --test-dir "$dir" -j "$jobs" --output-on-failure $labels
}

# The release pass runs the quick suite; the randomized invariant/fuzz
# tests (label "slow") run once, in the sanitized build, so every check
# includes ASan+UBSan-instrumented fuzzing without doubling its cost.
run_config build-release "-LE slow" -DCMAKE_BUILD_TYPE=Release -DM3_SANITIZE=
run_config build-asan "-LE slow" -DM3_SANITIZE=address,undefined
echo "=== test build-asan (-L slow: sanitized invariant/fuzz suite)"
ctest --test-dir build-asan -j "$jobs" --output-on-failure -L slow

# Parallel-engine gate under TSan: the sharded engine's cross-thread
# hand-offs (inbox posts, barrier windows, atomic metric cells) must be
# race-free. TSan selects the ucontext fiber fallback automatically, so
# the full-machine test drives real fibers on worker threads. Only the
# parallel suites run here — the rest of the tree is single-threaded
# and covered by the ASan pass.
echo "=== parallel engine under TSan"
cmake -B build-tsan -S . -DM3_SANITIZE=thread
cmake --build build-tsan -j "$jobs" --target test_shards test_determinism
./build-tsan/tests/test_shards
./build-tsan/tests/test_determinism \
    --gtest_filter='Determinism.ThreadCountInvariant'

# Observability smoke: a traced micro-benchmark must emit a well-formed
# Chrome trace containing every phase the exporter produces (span B/E,
# complete X, flow s/f, counter C) and a metrics dump with the schema
# keys CI consumers rely on.
echo "=== traced micro-benchmark (tracecheck)"
obs=$(mktemp -d)
trap 'rm -rf "$obs"' EXIT
./build-release/tools/m3bench syscall \
    --trace="$obs/t.json" --metrics="$obs/m.json" > /dev/null
./build-release/tools/tracecheck \
    --trace "$obs/t.json" --phases BEXsfC \
    --metrics "$obs/m.json" \
    --require dtu.msgs_sent,dtu.reply_latency.ep0,noc.packets,kernel.syscalls,sim.queue_depth

# Request-tracing gate: the open-loop serving driver must produce a
# structurally valid request trace (every flow paired, spans nested), a
# metrics dump carrying the per-class latency histograms with their
# quantile estimates, and an SLO report with the schema CI consumers
# parse. Runs once against the release build and once under ASan+UBSan
# (the context shadow rides DTU closures and ring slots — exactly where
# lifetime bugs would hide).
echo "=== open-loop serving driver + SLO report (request tracing)"
for build in build-release build-asan; do
    ./$build/bench/openloop --clients 6 --requests 30 --kernels 2 \
        --shards=2 --threads=2 \
        --slo="$obs/slo.json" --trace="$obs/req.json" \
        --metrics="$obs/reqm.json" > /dev/null
    ./build-release/tools/tracecheck \
        --trace "$obs/req.json" --phases BEXsf \
        --metrics "$obs/reqm.json" \
        --require req.echo.total,req.echo.credit_stall,req.kv.service,quantiles \
        --slo "$obs/slo.json" \
        --slo-require schema,workload,sustainable,classes,p999,decomposition
done

# Perf smoke: the release build must reproduce the committed simulated
# state (events, sim_cycles) exactly — including on the mk4.tN thread
# sweep, whose rows must also match *each other* (thread-count
# invariance of the parallel engine) — and stay within the events/sec
# regression tolerance recorded in BENCH_simperf.json. The t8-vs-t1
# speedup gate arms itself only on hosts with >= 8 cores. Tracing is
# compiled in but disabled here, so this doubles as the zero-overhead
# gate for the observability layer.
echo "=== simperf smoke (vs BENCH_simperf.json)"
# Best-of-3 measurement: a single rep is too noisy on a loaded host to
# hold the 25% tolerance against the recorded baseline.
./build-release/bench/simperf --reps 3 --check BENCH_simperf.json

# Multi-kernel gate: the sharded-control-plane table of fig6 must keep
# both verdicts (two kernels remove most of the syscall bottleneck;
# four strictly beat one per instance). Runs against the release build;
# the inter-kernel protocol itself is exercised under ASan+UBSan by the
# suites above (test_multikernel, and Invariants.MultiKernelWorkloads
# in the -L slow pass).
echo "=== fig6 multi-kernel verdict"
./build-release/bench/fig6_scalability --multikernel-only

# Striped-data-plane gate: the distfs tables of fig6 must keep their
# verdicts (two stripes beat the single instance on tar and untar;
# four stripes deliver >= 1.6x bandwidth on both; the replicated R=2
# columns bound the write-amplification cost). Simulated cycles are
# sanitizer-independent, so the same verdicts run once against the
# release build and once under ASan+UBSan — the pipelined metadata
# fan-out, the replica mirror segments and the parallel per-stripe DTU
# transfers are exactly where lifetime bugs would hide. The randomized
# striped invariant suites (Invariants.Striped*) ride the sanitized
# -L slow pass above via test_invariants.
echo "=== fig6 distfs striped + replicated verdict (release + sanitized)"
./build-release/bench/fig6_scalability --distfs-only
./build-asan/bench/fig6_scalability --distfs-only

# Pipe-teardown gate, named explicitly so a test relabel cannot drop
# it: the writer destructor's bounded-EOF path must survive a dead
# reader under ASan+UBSan — destructors are where lifetime bugs hide.
echo "=== pipe teardown robustness (sanitized)"
# gtest exits 0 when a filter matches nothing, so assert the test ran.
./build-asan/tests/test_robustness \
    --gtest_filter='Robustness.PipeWriterTeardownSurvivesDeadReader' \
    2>&1 | tee "$obs/pipe_teardown.log"
grep -q '\[  PASSED  \] 1 test' "$obs/pipe_teardown.log"

# Rolling-restart gate: drain + kill every compute PE once under a
# fig6-class request workload; the run must finish with byte-identical
# application output, zero lost in-flight work and no aborted
# migration. The bench prints the table and enforces the verdicts.
echo "=== rolling restart drill (live migration)"
./build-release/bench/robustness --rolling-restart

# Stripe-kill gate: replicated distfs (R=2 + spare) must survive the
# kill of each stripe's server PE in turn — every byte reads back
# intact with zero PeerGone surfaced, and the rebuild onto the spare
# restores the full stripe set. Runs against the release build and
# under ASan+UBSan: degraded reads re-route through replica handles and
# abandoned subfiles — exactly where lifetime bugs would hide.
echo "=== stripe kill drill (replicated distfs, release + sanitized)"
./build-release/bench/robustness --stripe-kill
./build-asan/bench/robustness --stripe-kill

echo "=== all checks passed"
