/**
 * @file
 * tracecheck: CI validator for the observability dumps.
 *
 * Checks that a file is well-formed JSON (a minimal recursive-descent
 * parser, no external dependency) and that it contains what the CI
 * stage requires:
 *
 *   tracecheck --trace FILE [--phases BEXsfC]
 *       the file parses and, for each listed Chrome trace-event phase
 *       letter, at least one event with that "ph" is present
 *
 *   tracecheck --metrics FILE [--require key,key,...]
 *       the file parses, has the metrics schema sections, and every
 *       listed key occurs somewhere in the document
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

// ---------------------------------------------------------------------
// Minimal JSON syntax validation.
// ---------------------------------------------------------------------

void
skipWs(const char *&p, const char *end)
{
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
        ++p;
}

bool parseValue(const char *&p, const char *end);

bool
parseString(const char *&p, const char *end)
{
    if (p >= end || *p != '"')
        return false;
    ++p;
    while (p < end && *p != '"') {
        if (*p == '\\') {
            ++p;
            if (p >= end)
                return false;
        }
        ++p;
    }
    if (p >= end)
        return false;
    ++p;  // closing quote
    return true;
}

bool
parseNumber(const char *&p, const char *end)
{
    const char *start = p;
    if (p < end && (*p == '-' || *p == '+'))
        ++p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                       *p == '+'))
        ++p;
    return p > start;
}

bool
parseObject(const char *&p, const char *end)
{
    ++p;  // '{'
    skipWs(p, end);
    if (p < end && *p == '}') {
        ++p;
        return true;
    }
    for (;;) {
        skipWs(p, end);
        if (!parseString(p, end))
            return false;
        skipWs(p, end);
        if (p >= end || *p != ':')
            return false;
        ++p;
        if (!parseValue(p, end))
            return false;
        skipWs(p, end);
        if (p < end && *p == ',') {
            ++p;
            continue;
        }
        if (p < end && *p == '}') {
            ++p;
            return true;
        }
        return false;
    }
}

bool
parseArray(const char *&p, const char *end)
{
    ++p;  // '['
    skipWs(p, end);
    if (p < end && *p == ']') {
        ++p;
        return true;
    }
    for (;;) {
        if (!parseValue(p, end))
            return false;
        skipWs(p, end);
        if (p < end && *p == ',') {
            ++p;
            continue;
        }
        if (p < end && *p == ']') {
            ++p;
            return true;
        }
        return false;
    }
}

bool
parseValue(const char *&p, const char *end)
{
    skipWs(p, end);
    if (p >= end)
        return false;
    switch (*p) {
      case '{':
        return parseObject(p, end);
      case '[':
        return parseArray(p, end);
      case '"':
        return parseString(p, end);
      case 't':
        if (end - p >= 4 && !std::strncmp(p, "true", 4)) {
            p += 4;
            return true;
        }
        return false;
      case 'f':
        if (end - p >= 5 && !std::strncmp(p, "false", 5)) {
            p += 5;
            return true;
        }
        return false;
      case 'n':
        if (end - p >= 4 && !std::strncmp(p, "null", 4)) {
            p += 4;
            return true;
        }
        return false;
      default:
        return parseNumber(p, end);
    }
}

bool
validJson(const std::string &doc)
{
    const char *p = doc.data();
    const char *end = doc.data() + doc.size();
    if (!parseValue(p, end))
        return false;
    skipWs(p, end);
    return p == end;
}

// ---------------------------------------------------------------------
// Content checks.
// ---------------------------------------------------------------------

int
fail(const char *what)
{
    std::fprintf(stderr, "tracecheck: %s\n", what);
    return 1;
}

int
checkTrace(const std::string &doc, const std::string &phases)
{
    if (doc.find("\"traceEvents\"") == std::string::npos)
        return fail("trace has no traceEvents array");
    for (char ph : phases) {
        std::string needle = std::string("\"ph\":\"") + ph + "\"";
        if (doc.find(needle) == std::string::npos) {
            std::fprintf(stderr,
                         "tracecheck: no event with phase '%c' found\n",
                         ph);
            return 1;
        }
    }
    return 0;
}

int
checkMetrics(const std::string &doc, const std::string &require)
{
    for (const char *key : {"\"schema\"", "\"counters\"", "\"gauges\"",
                            "\"histograms\""})
        if (doc.find(key) == std::string::npos) {
            std::fprintf(stderr, "tracecheck: metrics missing %s\n", key);
            return 1;
        }
    std::stringstream ss(require);
    std::string key;
    while (std::getline(ss, key, ',')) {
        if (key.empty())
            continue;
        if (doc.find("\"" + key + "\"") == std::string::npos) {
            std::fprintf(stderr,
                         "tracecheck: required metric '%s' not found\n",
                         key.c_str());
            return 1;
        }
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string tracePath, metricsPath, phases = "BEXsfC", require;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--trace" && i + 1 < argc) {
            tracePath = argv[++i];
        } else if (arg == "--metrics" && i + 1 < argc) {
            metricsPath = argv[++i];
        } else if (arg == "--phases" && i + 1 < argc) {
            phases = argv[++i];
        } else if (arg == "--require" && i + 1 < argc) {
            require = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: tracecheck --trace FILE [--phases LIST] "
                         "| --metrics FILE [--require k1,k2,...]\n");
            return 2;
        }
    }
    if (tracePath.empty() && metricsPath.empty())
        return fail("nothing to check (pass --trace and/or --metrics)");

    for (const auto &[path, isTrace] :
         {std::pair<const std::string &, bool>{tracePath, true},
          std::pair<const std::string &, bool>{metricsPath, false}}) {
        if (path.empty())
            continue;
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "tracecheck: cannot read '%s'\n",
                         path.c_str());
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const std::string doc = buf.str();
        if (!validJson(doc)) {
            std::fprintf(stderr, "tracecheck: '%s' is not valid JSON\n",
                         path.c_str());
            return 1;
        }
        int rc = isTrace ? checkTrace(doc, phases)
                         : checkMetrics(doc, require);
        if (rc)
            return rc;
        std::printf("tracecheck: %s OK (%zu bytes)\n", path.c_str(),
                    doc.size());
    }
    return 0;
}
