/**
 * @file
 * tracecheck: CI validator for the observability dumps.
 *
 * Checks that a file is well-formed JSON (a minimal recursive-descent
 * parser, no external dependency) and that it contains what the CI
 * stage requires:
 *
 *   tracecheck --trace FILE [--phases BEXsfC]
 *       the file parses and, for each listed Chrome trace-event phase
 *       letter, at least one event with that "ph" is present
 *
 *   tracecheck --metrics FILE [--require key,key,...]
 *       the file parses, has the metrics schema sections, and every
 *       listed key occurs somewhere in the document
 *
 *   tracecheck --slo FILE [--slo-require key,key,...]
 *       the file parses and carries the SLO-report schema keys
 *
 * A --trace check also validates event structure: every flow id has
 * exactly one begin ('s') and one end ('f') with end-ts >= begin-ts
 * (NoC packets and request legs alike), and B/E span events balance on
 * every track with no underflow — the span tree nests properly.
 */

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

// ---------------------------------------------------------------------
// Minimal JSON syntax validation.
// ---------------------------------------------------------------------

void
skipWs(const char *&p, const char *end)
{
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
        ++p;
}

bool parseValue(const char *&p, const char *end);

bool
parseString(const char *&p, const char *end)
{
    if (p >= end || *p != '"')
        return false;
    ++p;
    while (p < end && *p != '"') {
        if (*p == '\\') {
            ++p;
            if (p >= end)
                return false;
        }
        ++p;
    }
    if (p >= end)
        return false;
    ++p;  // closing quote
    return true;
}

bool
parseNumber(const char *&p, const char *end)
{
    const char *start = p;
    if (p < end && (*p == '-' || *p == '+'))
        ++p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                       *p == '+'))
        ++p;
    return p > start;
}

bool
parseObject(const char *&p, const char *end)
{
    ++p;  // '{'
    skipWs(p, end);
    if (p < end && *p == '}') {
        ++p;
        return true;
    }
    for (;;) {
        skipWs(p, end);
        if (!parseString(p, end))
            return false;
        skipWs(p, end);
        if (p >= end || *p != ':')
            return false;
        ++p;
        if (!parseValue(p, end))
            return false;
        skipWs(p, end);
        if (p < end && *p == ',') {
            ++p;
            continue;
        }
        if (p < end && *p == '}') {
            ++p;
            return true;
        }
        return false;
    }
}

bool
parseArray(const char *&p, const char *end)
{
    ++p;  // '['
    skipWs(p, end);
    if (p < end && *p == ']') {
        ++p;
        return true;
    }
    for (;;) {
        if (!parseValue(p, end))
            return false;
        skipWs(p, end);
        if (p < end && *p == ',') {
            ++p;
            continue;
        }
        if (p < end && *p == ']') {
            ++p;
            return true;
        }
        return false;
    }
}

bool
parseValue(const char *&p, const char *end)
{
    skipWs(p, end);
    if (p >= end)
        return false;
    switch (*p) {
      case '{':
        return parseObject(p, end);
      case '[':
        return parseArray(p, end);
      case '"':
        return parseString(p, end);
      case 't':
        if (end - p >= 4 && !std::strncmp(p, "true", 4)) {
            p += 4;
            return true;
        }
        return false;
      case 'f':
        if (end - p >= 5 && !std::strncmp(p, "false", 5)) {
            p += 5;
            return true;
        }
        return false;
      case 'n':
        if (end - p >= 4 && !std::strncmp(p, "null", 4)) {
            p += 4;
            return true;
        }
        return false;
      default:
        return parseNumber(p, end);
    }
}

bool
validJson(const std::string &doc)
{
    const char *p = doc.data();
    const char *end = doc.data() + doc.size();
    if (!parseValue(p, end))
        return false;
    skipWs(p, end);
    return p == end;
}

// ---------------------------------------------------------------------
// Content checks.
// ---------------------------------------------------------------------

int
fail(const char *what)
{
    std::fprintf(stderr, "tracecheck: %s\n", what);
    return 1;
}

/** Pull `"key":<unsigned>` off an event line; false if absent. */
bool
extractU64(const std::string &line, const char *key, uint64_t &out)
{
    std::string needle = std::string("\"") + key + "\":";
    size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    out = std::strtoull(line.c_str() + pos + needle.size(), nullptr, 0);
    return true;
}

/** Pull `"id":"0x..."` (flow ids are hex strings); false if absent. */
bool
extractFlowId(const std::string &line, uint64_t &out)
{
    size_t pos = line.find("\"id\":\"");
    if (pos == std::string::npos)
        return false;
    out = std::strtoull(line.c_str() + pos + 6, nullptr, 0);
    return true;
}

/**
 * Structural validation of the event stream. The exporter writes one
 * event object per line, each track's events sorted by ts, so a single
 * line pass sees every track in timestamp order.
 */
int
checkEventStructure(const std::string &doc)
{
    struct Flow
    {
        uint32_t begins = 0;
        uint32_t ends = 0;
        uint64_t beginTs = 0;
        uint64_t endTs = 0;
    };
    std::map<uint64_t, Flow> flows;
    std::map<uint64_t, int64_t> spanDepth;  // per tid

    std::stringstream ss(doc);
    std::string line;
    while (std::getline(ss, line)) {
        size_t php = line.find("\"ph\":\"");
        if (php == std::string::npos || php + 6 >= line.size())
            continue;
        char ph = line[php + 6];
        uint64_t ts = 0, tid = 0, id = 0;
        switch (ph) {
          case 'B':
            if (extractU64(line, "tid", tid))
                spanDepth[tid]++;
            break;
          case 'E':
            if (extractU64(line, "tid", tid)) {
                if (--spanDepth[tid] < 0) {
                    std::fprintf(stderr,
                                 "tracecheck: span underflow (E without "
                                 "B) on tid %llu\n",
                                 (unsigned long long)tid);
                    return 1;
                }
            }
            break;
          case 's':
            if (extractFlowId(line, id) && extractU64(line, "ts", ts)) {
                Flow &f = flows[id];
                f.begins++;
                f.beginTs = ts;
            }
            break;
          case 'f':
            if (extractFlowId(line, id) && extractU64(line, "ts", ts)) {
                Flow &f = flows[id];
                f.ends++;
                f.endTs = ts;
            }
            break;
          default:
            break;
        }
    }
    for (const auto &[tid, depth] : spanDepth) {
        if (depth != 0) {
            std::fprintf(stderr,
                         "tracecheck: %lld unclosed span(s) on tid "
                         "%llu\n",
                         (long long)depth, (unsigned long long)tid);
            return 1;
        }
    }
    for (const auto &[id, f] : flows) {
        if (f.begins != 1 || f.ends != 1) {
            std::fprintf(stderr,
                         "tracecheck: flow 0x%llx has %u begin(s) / %u "
                         "end(s), want 1/1\n",
                         (unsigned long long)id, f.begins, f.ends);
            return 1;
        }
        if (f.endTs < f.beginTs) {
            std::fprintf(stderr,
                         "tracecheck: flow 0x%llx ends at %llu before "
                         "its begin at %llu\n",
                         (unsigned long long)id,
                         (unsigned long long)f.endTs,
                         (unsigned long long)f.beginTs);
            return 1;
        }
    }
    return 0;
}

int
checkTrace(const std::string &doc, const std::string &phases)
{
    if (doc.find("\"traceEvents\"") == std::string::npos)
        return fail("trace has no traceEvents array");
    for (char ph : phases) {
        std::string needle = std::string("\"ph\":\"") + ph + "\"";
        if (doc.find(needle) == std::string::npos) {
            std::fprintf(stderr,
                         "tracecheck: no event with phase '%c' found\n",
                         ph);
            return 1;
        }
    }
    return checkEventStructure(doc);
}

int
checkSlo(const std::string &doc, const std::string &require)
{
    std::string keys =
        require.empty() ? "schema,workload,sustainable,classes" : require;
    std::stringstream ss(keys);
    std::string key;
    while (std::getline(ss, key, ',')) {
        if (key.empty())
            continue;
        if (doc.find("\"" + key + "\"") == std::string::npos) {
            std::fprintf(stderr,
                         "tracecheck: required SLO key '%s' not found\n",
                         key.c_str());
            return 1;
        }
    }
    return 0;
}

int
checkMetrics(const std::string &doc, const std::string &require)
{
    for (const char *key : {"\"schema\"", "\"counters\"", "\"gauges\"",
                            "\"histograms\""})
        if (doc.find(key) == std::string::npos) {
            std::fprintf(stderr, "tracecheck: metrics missing %s\n", key);
            return 1;
        }
    std::stringstream ss(require);
    std::string key;
    while (std::getline(ss, key, ',')) {
        if (key.empty())
            continue;
        if (doc.find("\"" + key + "\"") == std::string::npos) {
            std::fprintf(stderr,
                         "tracecheck: required metric '%s' not found\n",
                         key.c_str());
            return 1;
        }
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string tracePath, metricsPath, sloPath;
    std::string phases = "BEXsfC", require, sloRequire;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--trace" && i + 1 < argc) {
            tracePath = argv[++i];
        } else if (arg == "--metrics" && i + 1 < argc) {
            metricsPath = argv[++i];
        } else if (arg == "--slo" && i + 1 < argc) {
            sloPath = argv[++i];
        } else if (arg == "--phases" && i + 1 < argc) {
            phases = argv[++i];
        } else if (arg == "--require" && i + 1 < argc) {
            require = argv[++i];
        } else if (arg == "--slo-require" && i + 1 < argc) {
            sloRequire = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: tracecheck --trace FILE [--phases LIST] "
                         "| --metrics FILE [--require k1,k2,...] "
                         "| --slo FILE [--slo-require k1,k2,...]\n");
            return 2;
        }
    }
    if (tracePath.empty() && metricsPath.empty() && sloPath.empty())
        return fail("nothing to check (pass --trace, --metrics and/or "
                    "--slo)");

    enum class Kind { Trace, Metrics, Slo };
    for (const auto &[path, kind] :
         {std::pair<const std::string &, Kind>{tracePath, Kind::Trace},
          std::pair<const std::string &, Kind>{metricsPath, Kind::Metrics},
          std::pair<const std::string &, Kind>{sloPath, Kind::Slo}}) {
        if (path.empty())
            continue;
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "tracecheck: cannot read '%s'\n",
                         path.c_str());
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const std::string doc = buf.str();
        if (!validJson(doc)) {
            std::fprintf(stderr, "tracecheck: '%s' is not valid JSON\n",
                         path.c_str());
            return 1;
        }
        int rc = kind == Kind::Trace     ? checkTrace(doc, phases)
                 : kind == Kind::Metrics ? checkMetrics(doc, require)
                                         : checkSlo(doc, sloRequire);
        if (rc)
            return rc;
        std::printf("tracecheck: %s OK (%zu bytes)\n", path.c_str(),
                    doc.size());
    }
    return 0;
}
