#include "sim/shards.hh"

#include <algorithm>
#include <barrier>
#include <thread>

namespace m3
{

namespace
{

/** Saturating add that keeps NEVER an absorbing upper bound. */
constexpr Cycles
satAdd(Cycles a, Cycles b)
{
    return a > EventQueue::NEVER - b ? EventQueue::NEVER : a + b;
}

/** std::push_heap/pop_heap comparator for a min-heap of transfers. */
bool
heapAfter(const ShardTransfer &a, const ShardTransfer &b)
{
    return b.before(a);
}

} // anonymous namespace

ShardSet::ShardSet(EventQueue &shard0, uint32_t count, Cycles la)
    : lookahead(la)
{
    if (count == 0)
        panic("ShardSet needs at least one shard");
    if (la == 0)
        panic("ShardSet needs a positive lookahead");
    shards.reserve(count);
    for (uint32_t s = 0; s < count; ++s) {
        auto sh = std::make_unique<Shard>();
        if (s == 0) {
            sh->eq = &shard0;
        } else {
            sh->owned = std::make_unique<EventQueue>();
            sh->eq = sh->owned.get();
        }
        sh->sendSeq.assign(count, 0);
        shards.push_back(std::move(sh));
    }
}

void
ShardSet::post(uint32_t src, uint32_t dst, Cycles activation,
               EventQueue::Callback fn)
{
    ShardTransfer tr;
    tr.activation = activation;
    tr.srcShard = src;
    tr.seq = shards[src]->sendSeq[dst]++;
    tr.run = std::move(fn);

    Shard &to = *shards[dst];
    std::lock_guard<std::mutex> lk(to.inboxMu);
    to.inbox.push_back(std::move(tr));
}

void
ShardSet::drainInbox(Shard &sh)
{
    std::vector<ShardTransfer> landed;
    {
        std::lock_guard<std::mutex> lk(sh.inboxMu);
        landed.swap(sh.inbox);
    }
    for (ShardTransfer &tr : landed) {
        sh.staged.push_back(std::move(tr));
        std::push_heap(sh.staged.begin(), sh.staged.end(), heapAfter);
    }
}

Cycles
ShardSet::nextActivityOf(const Shard &sh)
{
    Cycles next = sh.eq->nextCycle();
    if (!sh.staged.empty() && sh.staged.front().activation < next)
        next = sh.staged.front().activation;
    return next;
}

void
ShardSet::runShard(Shard &sh, Cycles bound)
{
    EventQueue &q = *sh.eq;
    EventQueue::setActive(&q);
    for (;;) {
        const Cycles tq = q.nextCycle();
        const Cycles tt = sh.staged.empty() ? EventQueue::NEVER
                                            : sh.staged.front().activation;
        const Cycles t = tq < tt ? tq : tt;
        if (t >= bound)
            break;
        if (tq <= tt) {
            // Local events run first at equal cycles: a transfer posted
            // at cycle t activates at t + L, so anything already queued
            // locally for that cycle logically precedes it.
            q.runOne();
            sh.executed++;
        } else {
            std::pop_heap(sh.staged.begin(), sh.staged.end(), heapAfter);
            ShardTransfer tr = std::move(sh.staged.back());
            sh.staged.pop_back();
            q.advanceTo(tr.activation);
            tr.run();
            sh.executed++;
            sh.transfersRun++;
        }
    }
    EventQueue::setActive(nullptr);
}

uint64_t
ShardSet::run(Cycles limit, uint32_t threads)
{
    const uint32_t S = count();
    const uint32_t N = std::min(std::max(threads, 1u), S);

    // One round of the barrier-window loop, from worker @p w's point of
    // view; sync() separates the three stages. Returns false when the
    // whole machine is done (drained, or the window passed the limit) —
    // every worker computes the same verdict from the same published
    // values, so they all leave together and the barrier stays balanced.
    auto round = [&](uint32_t w, auto &&sync) -> bool {
        // Phase 1: land cross-shard transfers, publish earliest activity.
        // Nobody posts during this phase (posting happens only inside
        // phase 2), so the published values stay stable until every
        // worker has passed the next sync point and read them.
        for (uint32_t s = w; s < S; s += N) {
            Shard &sh = *shards[s];
            drainInbox(sh);
            sh.nextActivity.store(nextActivityOf(sh),
                                  std::memory_order_relaxed);
        }
        sync();
        Cycles m = EventQueue::NEVER;
        for (const auto &sh : shards) {
            Cycles a = sh->nextActivity.load(std::memory_order_relaxed);
            if (a < m)
                m = a;
        }
        if (m == EventQueue::NEVER || m > limit)
            return false;
        // Phase 2: execute the window [m, m + L). Any transfer posted
        // now activates at or after m + L, i.e. outside this window; it
        // lands next round, after the trailing sync has made it visible.
        const Cycles bound = std::min(satAdd(m, lookahead), satAdd(limit, 1));
        for (uint32_t s = w; s < S; s += N)
            runShard(*shards[s], bound);
        sync();
        return true;
    };

    if (N == 1) {
        auto noSync = [] {};
        while (round(0, noSync)) {
        }
    } else {
        std::barrier<> gate(N);
        auto sync = [&gate] { gate.arrive_and_wait(); };
        auto work = [&](uint32_t w) {
            while (round(w, sync)) {
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(N - 1);
        for (uint32_t w = 1; w < N; ++w)
            pool.emplace_back(work, w);
        work(0);
        for (std::thread &t : pool)
            t.join();
    }

    uint64_t executed = 0;
    for (const auto &sh : shards) {
        executed += sh->executed;
        sh->executed = 0;
    }
    return executed;
}

bool
ShardSet::anyPending() const
{
    for (const auto &sh : shards) {
        if (!sh->eq->empty() || !sh->staged.empty())
            return true;
        std::lock_guard<std::mutex> lk(sh->inboxMu);
        if (!sh->inbox.empty())
            return true;
    }
    return false;
}

Cycles
ShardSet::maxCycle() const
{
    Cycles c = 0;
    for (const auto &sh : shards)
        if (sh->eq->curCycle() > c)
            c = sh->eq->curCycle();
    return c;
}

SimStats
ShardSet::foldedStats() const
{
    SimStats out;
    for (const auto &sh : shards) {
        const SimStats &s = sh->eq->stats();
        out.eventsScheduled += s.eventsScheduled;
        out.eventsExecuted += s.eventsExecuted;
        out.callbackHeapFallbacks += s.callbackHeapFallbacks;
        if (s.peakPending > out.peakPending)
            out.peakPending = s.peakPending;
        // Cross-shard transfers execute outside any queue; fold them in
        // so the engine totals cover every piece of simulated work.
        out.eventsExecuted += sh->transfersRun;
        for (uint64_t posted : sh->sendSeq)
            out.eventsScheduled += posted;
    }
    return out;
}

} // namespace m3
