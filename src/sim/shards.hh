/**
 * @file
 * The parallel discrete-event engine: a set of event-queue shards driven
 * by host worker threads under conservative (barrier-window) synchrony.
 *
 * Each shard owns one EventQueue plus an inbox of timestamped transfers
 * posted by other shards (cross-cluster NoC packets). Workers advance in
 * global rounds: every round first computes the earliest activity M over
 * all shards, then executes every event with cycle < M + L, where L is
 * the lookahead — the minimum simulated latency of any cross-shard
 * interaction (two mesh hops for adjacent clusters). A transfer posted
 * while executing round [M, M+L) activates at or after M + L, so it can
 * never land inside the window being executed; draining inboxes strictly
 * between rounds therefore preserves global timestamp order.
 *
 * Determinism does not depend on the host thread count: the window bound
 * M is a pure function of simulated state (all shards' next-event cycles,
 * stabilized by a barrier), each shard merges its local events with its
 * staged transfers in a fixed order (locals first at equal cycle, then
 * transfers by (activation, source shard, sequence)), and per-(src,dst)
 * sequence numbers are assigned on the sending shard in its deterministic
 * execution order. The same machine therefore produces bit-identical
 * simulated state at any thread count; threads only change which host
 * core runs which shard.
 */

#ifndef M3_SIM_SHARDS_HH
#define M3_SIM_SHARDS_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/event_queue.hh"

namespace m3
{

/** A timestamped cross-shard handoff, executed on the destination. */
struct ShardTransfer
{
    Cycles activation; //!< earliest cycle the destination may run this
    uint32_t srcShard; //!< posting shard (tie-break after activation)
    uint64_t seq;      //!< per-(src,dst) sequence (final tie-break)
    EventQueue::Callback run;

    bool
    before(const ShardTransfer &o) const
    {
        if (activation != o.activation)
            return activation < o.activation;
        if (srcShard != o.srcShard)
            return srcShard < o.srcShard;
        return seq < o.seq;
    }
};

/**
 * Owns the per-shard queues and inboxes and runs the barrier-window
 * loop. Shard 0 aliases the simulator's legacy queue so components that
 * captured it before sharding was configured keep working unchanged.
 */
class ShardSet
{
  public:
    /**
     * @param shard0    the simulator's own queue, adopted as shard 0
     * @param count     number of shards (>= 1)
     * @param lookahead minimum cross-shard latency L in cycles (> 0)
     */
    ShardSet(EventQueue &shard0, uint32_t count, Cycles lookahead);

    ShardSet(const ShardSet &) = delete;
    ShardSet &operator=(const ShardSet &) = delete;

    uint32_t count() const { return static_cast<uint32_t>(shards.size()); }
    Cycles lookaheadCycles() const { return lookahead; }

    EventQueue &queue(uint32_t s) { return *shards[s]->eq; }
    const EventQueue &queue(uint32_t s) const { return *shards[s]->eq; }

    /**
     * Post a transfer from shard @p src to shard @p dst, runnable at
     * @p activation or later. Must be called from @p src's execution
     * context (the sequence number is taken from the sender's counter).
     */
    void post(uint32_t src, uint32_t dst, Cycles activation,
              EventQueue::Callback fn);

    /**
     * Run all shards until every queue and inbox drains or the global
     * window passes @p limit, using up to @p threads host threads (the
     * calling thread counts as one). @return events executed in total.
     */
    uint64_t run(Cycles limit, uint32_t threads);

    /** True if any shard still has queued events or undrained transfers. */
    bool anyPending() const;

    /** The maximum clock over all shards. */
    Cycles maxCycle() const;

    /** Engine counters summed over all shards (deterministic fold). */
    SimStats foldedStats() const;

  private:
    struct Shard
    {
        EventQueue *eq = nullptr;          //!< points at owned or shard0
        std::unique_ptr<EventQueue> owned; //!< shards 1..S-1 own theirs

        mutable std::mutex inboxMu;
        std::vector<ShardTransfer> inbox;  //!< landing zone (locked)
        std::vector<ShardTransfer> staged; //!< min-heap, owner-private

        /** Earliest local activity, republished each round (phase 1). */
        std::atomic<Cycles> nextActivity{0};

        /** Per-destination sequence counters (written by owner only). */
        std::vector<uint64_t> sendSeq;

        uint64_t executed = 0;     //!< events this run() call (reset after)
        uint64_t transfersRun = 0; //!< monotonic, folded into stats
    };

    /** Drain the locked inbox into the owner-private staged heap. */
    void drainInbox(Shard &sh);

    /**
     * Execute shard events with cycle < @p bound, merging local queue
     * events and staged transfers (locals first at equal cycle).
     */
    void runShard(Shard &sh, Cycles bound);

    /** Earliest cycle shard @p sh could next act at. */
    static Cycles nextActivityOf(const Shard &sh);

    std::vector<std::unique_ptr<Shard>> shards;
    Cycles lookahead;
};

} // namespace m3

#endif // M3_SIM_SHARDS_HH
