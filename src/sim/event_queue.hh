/**
 * @file
 * The discrete-event core: a global clock and a min-heap of events.
 *
 * Everything in the platform (NoC packet delivery, DTU command completion,
 * fiber wakeups) is an event. Ties at the same cycle are broken by
 * insertion order, which keeps the simulation fully deterministic.
 */

#ifndef M3_SIM_EVENT_QUEUE_HH
#define M3_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace m3
{

/**
 * A time-ordered queue of callbacks. The queue owns the simulated clock:
 * curCycle() advances exactly when an event at a later cycle is executed.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** The current simulated cycle. */
    Cycles curCycle() const { return now; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void
    schedule(Cycles delay, Callback cb)
    {
        scheduleAbs(now + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute cycle @p when (must not be in the past). */
    void
    scheduleAbs(Cycles when, Callback cb)
    {
        if (when < now)
            panic("event scheduled in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now));
        events.push(Event{when, nextSeq++, std::move(cb)});
    }

    /** True if no events are pending. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    size_t pending() const { return events.size(); }

    /**
     * Execute the earliest pending event, advancing the clock to its cycle.
     * @return false if the queue was empty.
     */
    bool
    runOne()
    {
        if (events.empty())
            return false;
        // The callback may schedule new events, so move it out first.
        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        now = ev.when;
        ev.cb();
        return true;
    }

    /**
     * Run events until the queue drains or the clock passes @p limit.
     * @return the number of events executed.
     */
    uint64_t
    run(Cycles limit = ~Cycles(0))
    {
        uint64_t executed = 0;
        while (!events.empty() && events.top().when <= limit) {
            runOne();
            ++executed;
        }
        return executed;
    }

  private:
    struct Event
    {
        Cycles when;
        uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    Cycles now = 0;
    uint64_t nextSeq = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
};

} // namespace m3

#endif // M3_SIM_EVENT_QUEUE_HH
