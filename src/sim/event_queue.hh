/**
 * @file
 * The discrete-event core: a global clock and a min-heap of events.
 *
 * Everything in the platform (NoC packet delivery, DTU command completion,
 * fiber wakeups) is an event. Ties at the same cycle are broken by
 * insertion order, which keeps the simulation fully deterministic.
 *
 * The engine is the hot path of every benchmark, so it is built for
 * near-zero allocation in steady state: callbacks are small-buffer
 * optimized (SmallFn), they live in pooled slots recycled through a free
 * list, and the heap itself orders 24-byte keys (cycle, sequence, slot)
 * instead of whole events. Sifting moves PODs, the callback bytes never
 * move while queued, and popping moves the callback out exactly once —
 * no `const_cast`-on-`top()` tricks like the old `std::priority_queue`
 * needed.
 */

#ifndef M3_SIM_EVENT_QUEUE_HH
#define M3_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "sim/small_fn.hh"
#include "trace/metrics.hh"

namespace m3
{

/** Engine counters, exposed for tests and the simperf harness. */
struct SimStats
{
    uint64_t eventsScheduled = 0;
    uint64_t eventsExecuted = 0;
    uint64_t peakPending = 0;  //!< high-water mark of the event heap
    /** Callbacks whose captures exceeded SmallFn::InlineCapacity. The
     *  core DTU/NoC/fiber paths must never contribute here (asserted
     *  in tests); occasional cold-path fallbacks are acceptable. */
    uint64_t callbackHeapFallbacks = 0;
};

/**
 * A time-ordered queue of callbacks. The queue owns the simulated clock:
 * curCycle() advances exactly when an event at a later cycle is executed.
 *
 * Under the sharded engine (ShardSet) several queues coexist, one per
 * shard, and the queue a component captured at construction time may not
 * be the queue whose events it is currently running under. The
 * thread-local "active" queue fixes that up: while a shard executes,
 * schedule()/scheduleAbs() on *any* queue reroute to the active one, so
 * a DTU delivery closure running on the destination shard schedules its
 * follow-up work there — with zero call-site changes. Single-queue runs
 * never set an active queue and take the exact seed path.
 */
class EventQueue
{
  public:
    using Callback = SmallFn;

    /** Sentinel cycle meaning "no pending event". */
    static constexpr Cycles NEVER = ~Cycles(0);

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** The queue whose events the calling thread is executing, if any. */
    static EventQueue *active() { return tlsActive; }

    /** Mark @p q as the calling thread's executing queue (nullptr to clear). */
    static void setActive(EventQueue *q) { tlsActive = q; }

    /** The current simulated cycle. */
    Cycles curCycle() const { return now; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void
    schedule(Cycles delay, Callback cb)
    {
        EventQueue *q = tlsActive ? tlsActive : this;
        q->scheduleAbs(q->now + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute cycle @p when (must not be in the past). */
    void
    scheduleAbs(Cycles when, Callback cb)
    {
        if (tlsActive && tlsActive != this) {
            tlsActive->scheduleAbs(when, std::move(cb));
            return;
        }
        if (when < now)
            panic("event scheduled in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now));
        simStats.eventsScheduled++;
        if (cb.onHeap())
            simStats.callbackHeapFallbacks++;
        if (M3_METRICS_ON) {
            static trace::Histogram &depth =
                trace::Metrics::histogram("sim.queue_depth");
            depth.observe(heap.size() + 1);
        }
        const uint32_t slot = acquireSlot();
        slots[slot].cb = std::move(cb);
        heapPush(HeapEntry{when, nextSeq++, slot});
    }

    /** True if no events are pending. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events. */
    size_t pending() const { return heap.size(); }

    /** Cycle of the earliest pending event, or NEVER if empty. */
    Cycles
    nextCycle() const
    {
        return heap.empty() ? NEVER : heap.front().when;
    }

    /**
     * Raise the clock to @p when without executing anything (never lowers
     * it). The sharded engine uses this to align a shard's clock with an
     * incoming cross-shard transfer before running it.
     */
    void
    advanceTo(Cycles when)
    {
        if (when > now)
            now = when;
    }

    /**
     * Execute the earliest pending event, advancing the clock to its cycle.
     * @return false if the queue was empty.
     */
    bool
    runOne()
    {
        if (heap.empty())
            return false;
        execTop();
        return true;
    }

    /**
     * Run events until the queue drains or the clock passes @p limit.
     * @return the number of events executed.
     */
    uint64_t
    run(Cycles limit = ~Cycles(0))
    {
        uint64_t executed = 0;
        while (!heap.empty() && heap.front().when <= limit) {
            execTop();
            ++executed;
        }
        return executed;
    }

    /** Engine counters (monotonic; never reset by the queue itself). */
    const SimStats &stats() const { return simStats; }

  private:
    /** Heap key: the callback bytes stay put in their pooled slot. */
    struct HeapEntry
    {
        Cycles when;
        uint64_t seq;
        uint32_t slot;

        bool
        before(const HeapEntry &o) const
        {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    /** A pooled event slot; free slots are chained through nextFree. */
    struct Slot
    {
        Callback cb;
        uint32_t nextFree = NO_SLOT;
    };

    static constexpr uint32_t NO_SLOT = ~uint32_t(0);

    uint32_t
    acquireSlot()
    {
        if (freeHead != NO_SLOT) {
            uint32_t s = freeHead;
            freeHead = slots[s].nextFree;
            return s;
        }
        slots.emplace_back();
        return static_cast<uint32_t>(slots.size() - 1);
    }

    void
    releaseSlot(uint32_t s)
    {
        slots[s].nextFree = freeHead;
        freeHead = s;
    }

    void
    heapPush(HeapEntry e)
    {
        heap.push_back(e);
        size_t i = heap.size() - 1;
        while (i > 0) {
            size_t parent = (i - 1) / 2;
            if (!heap[i].before(heap[parent]))
                break;
            std::swap(heap[i], heap[parent]);
            i = parent;
        }
        if (heap.size() > simStats.peakPending)
            simStats.peakPending = heap.size();
    }

    /** Remove the root: move the last entry up and sift it down. */
    void
    heapPopRoot()
    {
        HeapEntry last = heap.back();
        heap.pop_back();
        const size_t n = heap.size();
        if (n == 0)
            return;
        size_t i = 0;
        for (;;) {
            size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && heap[child + 1].before(heap[child]))
                ++child;
            if (!heap[child].before(last))
                break;
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = last;
    }

    /**
     * Execute the root event. The callback is moved out of its slot and
     * the slot is recycled *before* invocation, because the callback may
     * schedule new events (growing the slot pool) or recurse into run().
     */
    void
    execTop()
    {
        const HeapEntry e = heap.front();
        heapPopRoot();
        Callback cb = std::move(slots[e.slot].cb);
        releaseSlot(e.slot);
        now = e.when;
        simStats.eventsExecuted++;
        cb();
    }

    /** The queue currently executing on this thread (see class comment). */
    inline static thread_local EventQueue *tlsActive = nullptr;

    Cycles now = 0;
    uint64_t nextSeq = 0;
    std::vector<HeapEntry> heap;
    std::vector<Slot> slots;
    uint32_t freeHead = NO_SLOT;
    SimStats simStats;
};

} // namespace m3

#endif // M3_SIM_EVENT_QUEUE_HH
