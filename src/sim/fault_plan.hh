/**
 * @file
 * Deterministic fault injection for the NoC/DTU layers.
 *
 * A FaultPlan is a seeded description of which faults to inject into a
 * run: drop/delay a packet, corrupt a message payload, refuse an
 * external-configuration ack, or kill a PE's core at a given cycle. The
 * NoC and the DTUs consult the plan at their injection points; software
 * (libm3 retry, the kernel watchdog, the m3fs client) then has to turn
 * the resulting losses into recoveries instead of hangs.
 *
 * Determinism is the whole point (MGSim/gem5-style reproducible failure
 * runs): every decision is a pure function of the plan seed and a
 * per-decision sequence number, independent of wall-clock, pointer
 * values or query order across categories. Two runs of the same
 * deterministic workload with the same plan configuration therefore
 * inject the same faults at the same cycles, and the recorded decision
 * trace compares bit-identically.
 */

#ifndef M3_SIM_FAULT_PLAN_HH
#define M3_SIM_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace m3
{

/** A directed src->dst NoC node pair used to scope fault injection. */
struct NodePair
{
    uint32_t src;
    uint32_t dst;
};

/** Kill the core on NoC node @p node at cycle @p cycle. */
struct PeKill
{
    uint32_t node;
    Cycles cycle;
};

/** Everything a FaultPlan may be asked to do, all off by default. */
struct FaultPlanCfg
{
    /** PRNG seed; same seed + same workload => same faults. */
    uint64_t seed = 1;

    /** Probability [0,1] of dropping an eligible packet. */
    double dropRate = 0.0;
    /** Stop dropping after this many drops (0 = unlimited). */
    uint64_t maxDrops = 0;
    /** Restrict drops to these src->dst pairs (empty = all traffic). */
    std::vector<NodePair> dropPairs;
    /** Additionally drop exactly these packet sequence numbers. */
    std::vector<uint64_t> dropSeqs;

    /** Probability [0,1] of delaying an eligible packet. */
    double delayRate = 0.0;
    /** Injected delay is uniform in [delayMin, delayMax]. */
    Cycles delayMin = 64;
    Cycles delayMax = 512;
    /** Restrict delays to these src->dst pairs (empty = all traffic).
     *  Delays may reorder packets on a route, so scoping them keeps
     *  control traffic (which relies on per-route FIFO order) exact
     *  while data routes get jittered. */
    std::vector<NodePair> delayPairs;

    /** Probability [0,1] of flipping one payload byte of a message. */
    double corruptRate = 0.0;
    /** Restrict corruption to these src->dst pairs (empty = all). */
    std::vector<NodePair> corruptPairs;

    /** Probability [0,1] of suppressing an external-config ack. */
    double extAckDropRate = 0.0;

    /** Scheduled core kills (the DTU survives; the kernel can reclaim). */
    std::vector<PeKill> killPes;

    /**
     * No probabilistic fault fires before this cycle (0 = from the
     * start). Sequence numbers still advance while disarmed, so arming
     * late changes WHICH packets are eligible, not the decision stream
     * determinism. Lets a plan spare a workload's setup phase (e.g. VPE
     * loading, whose memory acks software cannot retry) and fault only
     * the steady-state traffic. Explicit dropSeqs and killPes ignore
     * the gate: they name their victims directly.
     */
    Cycles armAt = 0;

    /** Attach the plan even if it can never fire (overhead tests). */
    bool attachInert = false;

    /** True if any fault can actually be injected. */
    bool
    canFire() const
    {
        return dropRate > 0.0 || delayRate > 0.0 || corruptRate > 0.0 ||
               extAckDropRate > 0.0 || !dropSeqs.empty() ||
               !killPes.empty();
    }

    /** True if the plan should be wired into the platform at all. */
    bool active() const { return canFire() || attachInert; }
};

/** Counters of injected faults, exposed for tests and benches. */
struct FaultStats
{
    uint64_t packetsSeen = 0;
    uint64_t packetsDropped = 0;
    uint64_t packetsDelayed = 0;
    Cycles delayInjected = 0;
    uint64_t payloadsCorrupted = 0;
    uint64_t extAcksRefused = 0;
    uint64_t peKills = 0;
};

/**
 * The injection oracle. One instance is shared by the NoC and all DTUs
 * of a platform; a null pointer at the injection points means "no plan"
 * and costs nothing.
 */
class FaultPlan
{
  public:
    enum class PacketAction : uint8_t
    {
        None,
        Drop,
        Delay,
    };

    /** What to do with one packet. */
    struct PacketDecision
    {
        PacketAction action = PacketAction::None;
        Cycles delay = 0;     //!< extra cycles when action == Delay
        uint64_t seq = 0;     //!< sequence number assigned to the packet
    };

    /** One injected fault, recorded for replay comparison. */
    struct TraceEntry
    {
        Cycles cycle;
        uint64_t seq;      //!< per-category decision sequence number
        uint8_t kind;      //!< 'D' drop, 'L' delay, 'C' corrupt, 'A' ack,
                           //!< 'K' kill
        uint64_t arg;      //!< delay cycles / byte offset / node id

        bool
        operator==(const TraceEntry &o) const
        {
            return cycle == o.cycle && seq == o.seq && kind == o.kind &&
                   arg == o.arg;
        }
    };

    explicit FaultPlan(FaultPlanCfg cfg);

    /**
     * Consulted by the NoC for every injected packet. Assigns the packet
     * the next sequence number and decides its fate.
     */
    PacketDecision onPacket(Cycles now, uint32_t src, uint32_t dst);

    /**
     * Consulted by a DTU when a message leaves: should the payload be
     * corrupted on the wire? If yes, @p byteOffset receives the index of
     * the payload byte to flip (only called with payloadBytes > 0).
     */
    bool corruptPayload(Cycles now, uint32_t src, uint32_t dst,
                        uint64_t payloadBytes, uint64_t &byteOffset);

    /** Consulted by a DTU about to send an external-config ack. */
    bool refuseExtAck(Cycles now, uint32_t src, uint32_t dst);

    /** Record a scheduled PE kill firing (called by the platform). */
    void notePeKill(Cycles now, uint32_t node);

    const FaultPlanCfg &config() const { return cfg; }
    const FaultStats &stats() const { return st; }
    const std::vector<TraceEntry> &trace() const { return decisions; }

    /** Compact fingerprint of the decision trace (FNV-1a). */
    uint64_t traceDigest() const;

    /** Human-readable dump of the decision trace (debugging). */
    std::string traceString() const;

  private:
    /** Stateless per-decision random value in [0,1). */
    double roll(uint64_t salt, uint64_t seq) const;
    /** Stateless per-decision raw 64-bit hash. */
    uint64_t hash(uint64_t salt, uint64_t seq) const;

    static bool pairMatch(const std::vector<NodePair> &pairs, uint32_t src,
                          uint32_t dst);

    FaultPlanCfg cfg;
    FaultStats st;
    std::vector<TraceEntry> decisions;
    std::vector<uint64_t> dropSeqsSorted;

    uint64_t packetSeq = 0;   //!< next packet sequence number
    uint64_t corruptSeq = 0;  //!< next corruption decision number
    uint64_t extAckSeq = 0;   //!< next ext-ack decision number
};

} // namespace m3

#endif // M3_SIM_FAULT_PLAN_HH
