#include "sim/fault_plan.hh"

#include <algorithm>
#include <cstdio>

namespace m3
{

namespace
{

/** splitmix64: full-period mixer, good avalanche for hash use. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr uint64_t SALT_DROP = 0x64726f70ULL;    // "drop"
constexpr uint64_t SALT_DELAY = 0x64656c61ULL;   // "dela"
constexpr uint64_t SALT_DELAY_AMT = 0x616d6f75ULL;
constexpr uint64_t SALT_CORRUPT = 0x636f7272ULL; // "corr"
constexpr uint64_t SALT_CORRUPT_OFF = 0x6f666673ULL;
constexpr uint64_t SALT_EXTACK = 0x6561636bULL;  // "eack"

} // anonymous namespace

FaultPlan::FaultPlan(FaultPlanCfg c) : cfg(std::move(c))
{
    dropSeqsSorted = cfg.dropSeqs;
    std::sort(dropSeqsSorted.begin(), dropSeqsSorted.end());
}

uint64_t
FaultPlan::hash(uint64_t salt, uint64_t seq) const
{
    return mix64(mix64(cfg.seed ^ salt) ^ seq);
}

double
FaultPlan::roll(uint64_t salt, uint64_t seq) const
{
    // 53 high-quality bits -> [0,1), same construction as Random.
    return static_cast<double>(hash(salt, seq) >> 11) *
           (1.0 / 9007199254740992.0);
}

bool
FaultPlan::pairMatch(const std::vector<NodePair> &pairs, uint32_t src,
                     uint32_t dst)
{
    if (pairs.empty())
        return true;
    for (const NodePair &p : pairs)
        if (p.src == src && p.dst == dst)
            return true;
    return false;
}

FaultPlan::PacketDecision
FaultPlan::onPacket(Cycles now, uint32_t src, uint32_t dst)
{
    PacketDecision d;
    d.seq = packetSeq++;
    st.packetsSeen++;

    bool armed = now >= cfg.armAt;
    bool drop = std::binary_search(dropSeqsSorted.begin(),
                                   dropSeqsSorted.end(), d.seq);
    if (!drop && armed && cfg.dropRate > 0.0 &&
        pairMatch(cfg.dropPairs, src, dst) &&
        (cfg.maxDrops == 0 || st.packetsDropped < cfg.maxDrops)) {
        drop = roll(SALT_DROP, d.seq) < cfg.dropRate;
    }
    if (drop) {
        d.action = PacketAction::Drop;
        st.packetsDropped++;
        decisions.push_back({now, d.seq, 'D', (uint64_t(src) << 32) | dst});
        return d;
    }

    if (armed && cfg.delayRate > 0.0 &&
        pairMatch(cfg.delayPairs, src, dst) &&
        roll(SALT_DELAY, d.seq) < cfg.delayRate) {
        Cycles span = cfg.delayMax >= cfg.delayMin
                          ? cfg.delayMax - cfg.delayMin + 1
                          : 1;
        d.delay = cfg.delayMin + hash(SALT_DELAY_AMT, d.seq) % span;
        d.action = PacketAction::Delay;
        st.packetsDelayed++;
        st.delayInjected += d.delay;
        decisions.push_back({now, d.seq, 'L', d.delay});
    }
    return d;
}

bool
FaultPlan::corruptPayload(Cycles now, uint32_t src, uint32_t dst,
                          uint64_t payloadBytes, uint64_t &byteOffset)
{
    uint64_t seq = corruptSeq++;
    if (now < cfg.armAt || cfg.corruptRate <= 0.0 || payloadBytes == 0 ||
        !pairMatch(cfg.corruptPairs, src, dst)) {
        return false;
    }
    if (roll(SALT_CORRUPT, seq) >= cfg.corruptRate)
        return false;
    byteOffset = hash(SALT_CORRUPT_OFF, seq) % payloadBytes;
    st.payloadsCorrupted++;
    decisions.push_back({now, seq, 'C', byteOffset});
    return true;
}

bool
FaultPlan::refuseExtAck(Cycles now, uint32_t src, uint32_t dst)
{
    uint64_t seq = extAckSeq++;
    if (now < cfg.armAt || cfg.extAckDropRate <= 0.0)
        return false;
    if (roll(SALT_EXTACK, seq) >= cfg.extAckDropRate)
        return false;
    st.extAcksRefused++;
    decisions.push_back({now, seq, 'A', (uint64_t(src) << 32) | dst});
    return true;
}

void
FaultPlan::notePeKill(Cycles now, uint32_t node)
{
    st.peKills++;
    decisions.push_back({now, st.peKills - 1, 'K', node});
}

uint64_t
FaultPlan::traceDigest() const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto fnv = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const TraceEntry &e : decisions) {
        fnv(e.cycle);
        fnv(e.seq);
        fnv(e.kind);
        fnv(e.arg);
    }
    return h;
}

std::string
FaultPlan::traceString() const
{
    std::string out;
    char buf[96];
    for (const TraceEntry &e : decisions) {
        std::snprintf(buf, sizeof(buf), "@%llu %c seq=%llu arg=%llu\n",
                      (unsigned long long)e.cycle, (char)e.kind,
                      (unsigned long long)e.seq,
                      (unsigned long long)e.arg);
        out += buf;
    }
    return out;
}

} // namespace m3
