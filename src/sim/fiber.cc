#include "sim/fiber.hh"

#include <cstring>

#include "base/logging.hh"

namespace m3
{

namespace
{

/** The fiber currently executing, or nullptr while in the main context. */
thread_local Fiber *currentFiber = nullptr;

/** Handoff slot for the trampoline (makecontext takes no pointers). */
thread_local Fiber *startingFiber = nullptr;

} // anonymous namespace

Fiber::Fiber(EventQueue &eq, std::string name, Func fn)
    : eq(eq), name(std::move(name)), fn(std::move(fn)),
      stack(new char[stackSize])
{
}

Fiber::~Fiber()
{
    if (state == State::Running)
        panic("fiber '%s' destroyed while running", name.c_str());
}

Fiber *
Fiber::current()
{
    return currentFiber;
}

void
Fiber::start()
{
    if (state != State::Created)
        panic("fiber '%s' started twice", name.c_str());
    state = State::Ready;
    eq.schedule(0, [this] { dispatch(); });
}

void
Fiber::trampoline()
{
    Fiber *self = startingFiber;
    startingFiber = nullptr;
    self->fn();
    self->state = State::Finished;
    for (Fiber *j : self->joiners)
        j->unblock();
    self->joiners.clear();
    self->yieldToMain();
    panic("finished fiber '%s' resumed", self->name.c_str());
}

void
Fiber::dispatch()
{
    if (killed)
        return;
    if (parked) {
        // The VPE is descheduled: the core does not execute. Remember
        // the dispatch so unpark() can deliver it.
        dispatchPending = true;
        return;
    }
    if (state == State::Finished)
        panic("dispatch of finished fiber '%s'", name.c_str());
    if (!contextInitialized) {
        fiberCtx.init(stack.get(), stackSize, &Fiber::trampoline,
                      &mainCtx);
        startingFiber = this;
        contextInitialized = true;
    }
    Fiber *prev = currentFiber;
    currentFiber = this;
    state = State::Running;
    mainCtx.switchTo(fiberCtx);
    currentFiber = prev;
}

void
Fiber::yieldToMain()
{
    fiberCtx.switchTo(mainCtx);
}

void
Fiber::sleep(Cycles cycles)
{
    if (currentFiber != this)
        panic("sleep called from outside fiber '%s'", name.c_str());
    state = State::Ready;
    eq.schedule(cycles, [this] { dispatch(); });
    yieldToMain();
}

void
Fiber::block()
{
    if (currentFiber != this)
        panic("block called from outside fiber '%s'", name.c_str());
    if (wakeupPending) {
        wakeupPending = false;
        return;
    }
    state = State::Blocked;
    yieldToMain();
}

void
Fiber::kill()
{
    if (state == State::Running)
        panic("fiber '%s' cannot kill itself", name.c_str());
    if (state == State::Finished)
        return;
    killed = true;
    // Joiners would wait forever on a killed fiber; release them. The
    // kernel-level cleanup (PE reclaim) is the watchdog's job.
    for (Fiber *j : joiners)
        j->unblock();
    joiners.clear();
}

void
Fiber::unblock()
{
    if (killed)
        return;
    if (state == State::Blocked) {
        state = State::Ready;
        eq.schedule(0, [this] { dispatch(); });
    } else if (state != State::Finished) {
        // The fiber has not blocked yet; remember the wakeup.
        wakeupPending = true;
    }
}

void
Fiber::park()
{
    if (state == State::Running)
        panic("fiber '%s' cannot park itself", name.c_str());
    parked = true;
}

void
Fiber::unpark()
{
    parked = false;
    if (killed || state == State::Finished)
        return;
    if (dispatchPending) {
        dispatchPending = false;
        state = State::Ready;
        eq.schedule(0, [this] { dispatch(); });
    } else if (state == State::Blocked) {
        // Spurious wakeup: whatever it was waiting on may have been torn
        // down during the switch (DTU waiter lists are cleared). All wait
        // loops re-check their condition and re-register.
        state = State::Ready;
        eq.schedule(0, [this] { dispatch(); });
    } else {
        wakeupPending = true;
    }
}

void
Fiber::join()
{
    Fiber *self = current();
    if (!self)
        panic("join on '%s' called from the main context", name.c_str());
    while (state != State::Finished && !killed) {
        joiners.push_back(self);
        self->block();
    }
}

} // namespace m3
