/**
 * @file
 * Cooperative fibers: the execution vehicle for simulated PE software.
 *
 * Every PE program (the kernel, an application, an OS service) runs on one
 * Fiber. Fibers interleave under the control of the EventQueue: a fiber
 * only runs while the main context dispatches it, and it gives up control
 * by sleeping for simulated cycles or by blocking on a condition. Charging
 * simulated time is therefore explicit: compute(n) both accounts n cycles
 * and lets the rest of the platform make progress during them.
 */

#ifndef M3_SIM_FIBER_HH
#define M3_SIM_FIBER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/accounting.hh"
#include "base/types.hh"
#include "sim/context.hh"
#include "sim/event_queue.hh"

namespace m3
{

/**
 * A cooperatively scheduled execution context tied to an EventQueue.
 *
 * Lifecycle: constructed -> start() schedules the first dispatch ->
 * the body runs, interleaved with sleeps/blocks -> body returns ->
 * Finished (joiners are woken).
 */
class Fiber
{
  public:
    using Func = std::function<void()>;

    enum class State
    {
        Created,   //!< not yet started
        Ready,     //!< a dispatch event is scheduled
        Running,   //!< currently executing on the fiber stack
        Blocked,   //!< waiting for unblock()
        Finished,  //!< body returned
    };

    /**
     * @param eq the event queue driving this fiber
     * @param name diagnostic name (shows up in traces and deadlock dumps)
     * @param fn the body to execute
     */
    Fiber(EventQueue &eq, std::string name, Func fn);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /** Schedule the first dispatch at the current cycle. */
    void start();

    /** @return the fiber currently executing, or nullptr in main context. */
    static Fiber *current();

    /** Sleep for @p cycles simulated cycles (callable from inside only). */
    void sleep(Cycles cycles);

    /**
     * Charge @p cycles of simulated software time to the current
     * accounting category and let simulated time pass.
     */
    void
    compute(Cycles cycles)
    {
        acct.charge(cycles);
        sleep(cycles);
    }

    /** Like compute(), but attributed to an explicit category. */
    void
    computeAs(Category c, Cycles cycles)
    {
        acct.chargeTo(c, cycles);
        sleep(cycles);
    }

    /**
     * Block until another party calls unblock(). A wakeup that raced ahead
     * (unblock() before block()) is not lost: block() then returns
     * immediately and consumes the pending wakeup.
     */
    void block();

    /** Wake a blocked fiber (or pre-arm the next block()). */
    void unblock();

    /**
     * Park the fiber: its VPE has been descheduled, so the core no longer
     * fetches its instructions. Dispatches that arrive while parked are
     * deferred, not lost — unpark() re-delivers them. Must not be called
     * on the currently running fiber.
     */
    void park();

    /**
     * Unpark the fiber: its VPE is resident again. Re-schedules any
     * dispatch deferred while parked and additionally delivers a spurious
     * wakeup so condition loops re-check state that may have changed
     * (e.g. DTU waiter registrations cleared during the switch).
     */
    void unpark();

    bool isParked() const { return parked; }

    /** Block the calling fiber until this fiber's body has returned. */
    void join();

    /**
     * Kill the fiber (fault injection: the core dies mid-run). The
     * fiber never runs again: pending dispatches and future unblocks
     * become no-ops. Its stack is not unwound — like a real core that
     * simply stops fetching instructions. Must not be called on the
     * currently running fiber.
     */
    void kill();

    bool isKilled() const { return killed; }

    /**
     * Record that the software running on this fiber was moved to a
     * different PE (VPE migration). Blocking waits that captured state
     * of the old PE's DTU compare epochs after every wakeup and bail
     * out with Error::VpeMoved so the caller can re-issue the wait
     * against the new home.
     */
    void noteMoved() { movedEpoch++; }

    /** Monotonic count of migrations this fiber went through. */
    uint32_t moveEpoch() const { return movedEpoch; }

    bool finished() const { return state == State::Finished; }
    State currentState() const { return state; }
    const std::string &fiberName() const { return name; }

    /** Cycle accounting for this fiber's breakdowns. */
    Accounting &accounting() { return acct; }

    /** The event queue this fiber runs on. */
    EventQueue &queue() { return eq; }

    /**
     * Opaque per-fiber slot for the environment object bound to this
     * fiber (libm3's Env). Lives here instead of in a global map so the
     * lookup is race-free when fibers run on different engine shards;
     * sim/ stays below libm3, hence the type erasure.
     */
    void setUserEnv(void *env) { userEnv = env; }
    void *getUserEnv() const { return userEnv; }

    /**
     * Request-tracing context (trace::ReqCtx) currently carried by the
     * software on this fiber: adopted from every message it fetches,
     * stamped onto every message it sends. Pure host-side shadow state —
     * sim/ never reads it; the DTU and the request-tracing sink do.
     */
    void setReqCtx(uint64_t ctx) { reqCtxVal = ctx; }
    uint64_t reqCtx() const { return reqCtxVal; }

  private:
    static void trampoline();

    /** Main-context side: switch into the fiber. */
    void dispatch();

    /** Fiber side: switch back to the main context. */
    void yieldToMain();

    static constexpr size_t stackSize = 512 * KiB;

    EventQueue &eq;
    std::string name;
    Func fn;
    State state = State::Created;
    bool killed = false;
    bool wakeupPending = false;
    bool parked = false;
    bool dispatchPending = false;
    uint32_t movedEpoch = 0;
    std::vector<Fiber *> joiners;
    Accounting acct;
    void *userEnv = nullptr;
    uint64_t reqCtxVal = 0;

    std::unique_ptr<char[]> stack;
    bool contextInitialized = false;
    ExecContext fiberCtx;
    ExecContext mainCtx;
};

} // namespace m3

#endif // M3_SIM_FIBER_HH
