/**
 * @file
 * Top-level simulation driver: owns the event queue, tracks fibers for
 * diagnostics, and detects the end of the simulation (or a deadlock).
 *
 * The driver can optionally be sharded (configureShards): the single
 * queue becomes shard 0 of a ShardSet and simulate() drives the
 * barrier-window loop across host threads instead of the serial loop.
 * The simulated outcome depends only on the shard count, never on the
 * host thread count; unsharded simulators take the exact seed path.
 */

#ifndef M3_SIM_SIMULATOR_HH
#define M3_SIM_SIMULATOR_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/fiber.hh"
#include "sim/shards.hh"

namespace m3
{

/**
 * Bundles the event queue with fiber bookkeeping. Components hold a
 * reference to the Simulator and schedule through queue().
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    EventQueue &queue() { return eq; }

    /**
     * The current simulated cycle. Inside a sharded run this is the
     * executing shard's clock; outside it is the maximum over shards
     * (shard clocks never differ by more than the lookahead window).
     */
    Cycles
    curCycle() const
    {
        if (EventQueue *active = EventQueue::active())
            return active->curCycle();
        return shardSet ? shardSet->maxCycle() : eq.curCycle();
    }

    /**
     * Split the engine into @p count shards with @p lookahead cycles of
     * conservative slack. Must be called before any component captures a
     * shard queue (i.e. before the Platform is built). Shard 0 aliases
     * the legacy queue; count 1 keeps the serial engine untouched.
     */
    void
    configureShards(uint32_t count, Cycles lookahead)
    {
        if (shardSet)
            panic("configureShards called twice");
        if (count > 1)
            shardSet = std::make_unique<ShardSet>(eq, count, lookahead);
    }

    /** Number of engine shards (1 when unsharded). */
    uint32_t shardCount() const { return shardSet ? shardSet->count() : 1; }

    /** The shard set, or nullptr when unsharded. */
    ShardSet *shards() { return shardSet.get(); }

    /** The queue that owns simulated node @p node (shard = node mod S). */
    EventQueue &
    queueForNode(uint32_t node)
    {
        if (!shardSet)
            return eq;
        return shardSet->queue(node % shardSet->count());
    }

    /** Host worker threads used by sharded simulate() calls (min 1). */
    void setThreads(uint32_t n) { nThreads = n ? n : 1; }
    uint32_t threads() const { return nThreads; }

    /** Create (but do not start) a fiber owned by this simulator. */
    Fiber &
    spawn(std::string name, Fiber::Func fn)
    {
        EventQueue *home = EventQueue::active();
        return spawnOn(home ? *home : eq, std::move(name), std::move(fn));
    }

    /** Create a fiber whose events live on @p home. */
    Fiber &
    spawnOn(EventQueue &home, std::string name, Fiber::Func fn)
    {
        auto fiber =
            std::make_unique<Fiber>(home, std::move(name), std::move(fn));
        Fiber &ref = *fiber;
        std::lock_guard<std::mutex> lk(fiberMu);
        fibers.push_back(std::move(fiber));
        return ref;
    }

    /** Create and immediately start a fiber. */
    Fiber &
    run(std::string name, Fiber::Func fn)
    {
        Fiber &f = spawn(std::move(name), std::move(fn));
        f.start();
        return f;
    }

    /** Create and immediately start a fiber homed on @p home. */
    Fiber &
    runOn(EventQueue &home, std::string name, Fiber::Func fn)
    {
        Fiber &f = spawnOn(home, std::move(name), std::move(fn));
        f.start();
        return f;
    }

    /**
     * Drive the event queue until it drains or @p limit is passed.
     * @return number of events executed.
     */
    uint64_t
    simulate(Cycles limit = ~Cycles(0))
    {
        if (shardSet)
            return shardSet->run(limit, nThreads);
        return eq.run(limit);
    }

    /** True if every shard queue (and transfer inbox) has drained. */
    bool
    queuesEmpty() const
    {
        return shardSet ? !shardSet->anyPending() : eq.empty();
    }

    /** Engine counters summed over all shards. */
    SimStats
    foldedStats() const
    {
        return shardSet ? shardSet->foldedStats() : eq.stats();
    }

    /**
     * Diagnostic: names of fibers that are blocked right now. A non-empty
     * result after simulate() returned with an empty queue is a deadlock.
     */
    std::vector<std::string>
    blockedFibers() const
    {
        std::vector<std::string> out;
        for (const auto &f : fibers)
            if (f->currentState() == Fiber::State::Blocked)
                out.push_back(f->fiberName());
        return out;
    }

    /** True if every spawned fiber has finished. */
    bool
    allFinished() const
    {
        for (const auto &f : fibers)
            if (!f->finished())
                return false;
        return true;
    }

    /** Visit every fiber (accounting aggregation, diagnostics). */
    template <typename F>
    void
    forEachFiber(F &&fn) const
    {
        for (const auto &f : fibers)
            fn(*f);
    }

  private:
    EventQueue eq;
    std::unique_ptr<ShardSet> shardSet;
    uint32_t nThreads = 1;
    std::mutex fiberMu; //!< guards fibers during parallel execution
    std::vector<std::unique_ptr<Fiber>> fibers;
};

} // namespace m3

#endif // M3_SIM_SIMULATOR_HH
