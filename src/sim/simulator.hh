/**
 * @file
 * Top-level simulation driver: owns the event queue, tracks fibers for
 * diagnostics, and detects the end of the simulation (or a deadlock).
 */

#ifndef M3_SIM_SIMULATOR_HH
#define M3_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/fiber.hh"

namespace m3
{

/**
 * Bundles the event queue with fiber bookkeeping. Components hold a
 * reference to the Simulator and schedule through queue().
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    EventQueue &queue() { return eq; }
    Cycles curCycle() const { return eq.curCycle(); }

    /** Create (but do not start) a fiber owned by this simulator. */
    Fiber &
    spawn(std::string name, Fiber::Func fn)
    {
        fibers.push_back(
            std::make_unique<Fiber>(eq, std::move(name), std::move(fn)));
        return *fibers.back();
    }

    /** Create and immediately start a fiber. */
    Fiber &
    run(std::string name, Fiber::Func fn)
    {
        Fiber &f = spawn(std::move(name), std::move(fn));
        f.start();
        return f;
    }

    /**
     * Drive the event queue until it drains or @p limit is passed.
     * @return number of events executed.
     */
    uint64_t
    simulate(Cycles limit = ~Cycles(0))
    {
        return eq.run(limit);
    }

    /**
     * Diagnostic: names of fibers that are blocked right now. A non-empty
     * result after simulate() returned with an empty queue is a deadlock.
     */
    std::vector<std::string>
    blockedFibers() const
    {
        std::vector<std::string> out;
        for (const auto &f : fibers)
            if (f->currentState() == Fiber::State::Blocked)
                out.push_back(f->fiberName());
        return out;
    }

    /** True if every spawned fiber has finished. */
    bool
    allFinished() const
    {
        for (const auto &f : fibers)
            if (!f->finished())
                return false;
        return true;
    }

    /** Visit every fiber (accounting aggregation, diagnostics). */
    template <typename F>
    void
    forEachFiber(F &&fn) const
    {
        for (const auto &f : fibers)
            fn(*f);
    }

  private:
    EventQueue eq;
    std::vector<std::unique_ptr<Fiber>> fibers;
};

} // namespace m3

#endif // M3_SIM_SIMULATOR_HH
