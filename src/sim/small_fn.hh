/**
 * @file
 * SmallFn: a move-only, small-buffer-optimized `void()` callable.
 *
 * The discrete-event engine schedules millions of callbacks per run;
 * with `std::function` every capture larger than two pointers costs a
 * heap allocation on the hot path. SmallFn stores captures up to
 * InlineCapacity bytes inline in the event slot and only falls back to
 * the heap beyond that. The budget is sized for the engine's biggest
 * frequent customers — the DTU send/reply closures in `src/dtu/dtu.cc`
 * (MessageHeader + payload vector + target pointers) and the external
 * config closures (two `std::function`s plus pointers) — with the NoC
 * delivery and fiber dispatch lambdas far below it. A dedicated test
 * asserts the fallback counter stays at 0 for the core DTU/NoC paths.
 *
 * Unlike `std::function`, SmallFn is move-only and therefore also
 * accepts non-copyable captures (e.g. a moved-in `std::unique_ptr`).
 */

#ifndef M3_SIM_SMALL_FN_HH
#define M3_SIM_SMALL_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace m3
{

class SmallFn
{
  public:
    /**
     * Inline storage budget. 96 bytes covers the largest hot-path
     * capture set (Dtu::sendExt: this + target + node + two
     * std::functions = 88 bytes) with headroom for padding differences
     * across ABIs.
     */
    static constexpr size_t InlineCapacity = 96;
    static constexpr size_t InlineAlign = alignof(std::max_align_t);

    SmallFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn>>>
    SmallFn(F &&f)  // NOLINT: implicit, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "SmallFn requires a void() callable");
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage) =
                new Fn(std::forward<F>(f));
            ops = &heapOps<Fn>;
        }
    }

    SmallFn(SmallFn &&o) noexcept : ops(o.ops)
    {
        if (ops) {
            ops->relocate(o.storage, storage);
            o.ops = nullptr;
        }
    }

    SmallFn &
    operator=(SmallFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops = o.ops;
            if (ops) {
                ops->relocate(o.storage, storage);
                o.ops = nullptr;
            }
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    /** Destroy the held callable (if any) and become empty. */
    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(storage);
            ops = nullptr;
        }
    }

    explicit operator bool() const noexcept { return ops != nullptr; }

    void
    operator()()
    {
        ops->invoke(storage);
    }

    /** True if the held callable lives on the heap (capture too big). */
    bool onHeap() const noexcept { return ops && ops->heap; }

    /** Compile-time: would a callable of type F be stored inline? */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= InlineCapacity &&
               alignof(Fn) <= InlineAlign &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
        bool heap;
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *s) { (*static_cast<Fn *>(s))(); },
        [](void *src, void *dst) noexcept {
            Fn *f = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *s) noexcept { static_cast<Fn *>(s)->~Fn(); },
        false,
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *s) { (**static_cast<Fn **>(s))(); },
        [](void *src, void *dst) noexcept {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *s) noexcept { delete *static_cast<Fn **>(s); },
        true,
    };

    const Ops *ops = nullptr;
    alignas(InlineAlign) unsigned char storage[InlineCapacity];
};

} // namespace m3

#endif // M3_SIM_SMALL_FN_HH
