/**
 * @file
 * ExecContext: the minimal stack-switching primitive under Fiber.
 *
 * glibc's swapcontext() saves and restores the signal mask with a
 * sigprocmask system call on every switch — several hundred nanoseconds
 * that dominate the simulator's hot path, where every fiber dispatch is
 * two switches. The fast path here is a hand-rolled System-V x86-64
 * switch (callee-saved registers + stack pointer, ~20 instructions, no
 * syscall), the same technique as boost.context's fcontext.
 *
 * The ucontext path remains as the portable fallback and is selected
 * automatically when a sanitizer is active: ASan/TSan understand
 * swapcontext() out of the box, while a raw assembly switch would need
 * explicit fiber annotations. Simulated behaviour is identical either
 * way — this choice affects host speed only.
 */

#ifndef M3_SIM_CONTEXT_HH
#define M3_SIM_CONTEXT_HH

#include <cstddef>

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define M3_SANITIZER_ACTIVE 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define M3_SANITIZER_ACTIVE 1
#endif

#if defined(__x86_64__) && !defined(M3_SANITIZER_ACTIVE) && \
    !defined(M3_FORCE_UCONTEXT)
#define M3_FAST_CONTEXT 1
#else
#define M3_FAST_CONTEXT 0
#include <ucontext.h>
#endif

namespace m3
{

/**
 * One execution context (a stack pointer into a suspended stack, or the
 * saved state of the main context while a fiber runs).
 */
class ExecContext
{
  public:
    /** Entry point of a fresh context; receives no arguments (the fiber
     *  layer hands the Fiber* over in a thread-local, as makecontext
     *  imposes the same restriction on the portable path). */
    using Entry = void (*)();

    /**
     * Prepare this context to run @p entry on the given stack when first
     * switched to. @p returnTo is only used by the ucontext fallback (as
     * uc_link); the fiber trampoline never returns.
     */
    void init(void *stackBase, size_t stackSize, Entry entry,
              ExecContext *returnTo);

    /** Save the current context into *this and resume @p to. */
    void switchTo(ExecContext &to);

  private:
#if M3_FAST_CONTEXT
    void *sp = nullptr;
#else
    ucontext_t ctx{};
#endif
};

} // namespace m3

#endif // M3_SIM_CONTEXT_HH
