#include "sim/context.hh"

#include <cstdint>

namespace m3
{

#if M3_FAST_CONTEXT

extern "C" void m3CtxSwap(void **saveSp, void *restoreSp);

// System-V x86-64: rbx, rbp, r12-r15 are callee-saved; everything else
// is dead across the call by the ABI. The switch is a plain function
// call from the caller's perspective, so saving these six registers
// plus the stack pointer captures the full context. No signal-mask
// syscall — that is the entire point (see context.hh).
asm(R"(
    .text
    .align 16
    .globl m3CtxSwap
    .type m3CtxSwap, @function
m3CtxSwap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
    .size m3CtxSwap, .-m3CtxSwap
)");

void
ExecContext::init(void *stackBase, size_t stackSize, Entry entry,
                  ExecContext *)
{
    // Lay the stack out as if m3CtxSwap had suspended a context that is
    // about to enter entry(): six zeroed callee-saved registers, the
    // entry address for m3CtxSwap's ret, and a null fake return address
    // so entry() starts with the ABI-required rsp % 16 == 8 and a
    // terminated backtrace (rbp is popped as zero).
    uintptr_t top =
        (reinterpret_cast<uintptr_t>(stackBase) + stackSize) &
        ~uintptr_t(15);
    auto *p = reinterpret_cast<uint64_t *>(top);
    *--p = 0;                                    // fake return address
    *--p = reinterpret_cast<uint64_t>(entry);    // popped by ret
    for (int i = 0; i < 6; ++i)
        *--p = 0;                                // r15,r14,r13,r12,rbx,rbp
    sp = p;
}

void
ExecContext::switchTo(ExecContext &to)
{
    m3CtxSwap(&sp, to.sp);
}

#else // portable ucontext fallback

void
ExecContext::init(void *stackBase, size_t stackSize, Entry entry,
                  ExecContext *returnTo)
{
    getcontext(&ctx);
    ctx.uc_stack.ss_sp = stackBase;
    ctx.uc_stack.ss_size = stackSize;
    ctx.uc_link = returnTo ? &returnTo->ctx : nullptr;
    makecontext(&ctx, entry, 0);
}

void
ExecContext::switchTo(ExecContext &to)
{
    swapcontext(&ctx, &to.ctx);
}

#endif

} // namespace m3
