/**
 * @file
 * The m3fs server's meta-data buffer cache: block-granular caching of
 * the filesystem image in the service's SPM, backed by DTU transfers
 * through the service's memory gate. Writes are write-back: dirty
 * blocks are written out on eviction and on the explicit flush the
 * server performs after each request. Write-through would turn every
 * bitmap bit into a DTU round trip and serialise the whole service
 * behind meta-data updates.
 */

#ifndef M3_M3FS_BLOCK_CACHE_HH
#define M3_M3FS_BLOCK_CACHE_HH

#include <cstring>
#include <vector>

#include "libm3/gates.hh"
#include "m3fs/fs_core.hh"
#include "trace/metrics.hh"

namespace m3
{
namespace m3fs
{

/** Cache statistics for tests and ablations. */
struct BlockCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writeBacks = 0;
};

/** An LRU block cache implementing BlockAccess over a MemGate. */
class BlockCache : public BlockAccess
{
  public:
    /**
     * @param mem gate covering the filesystem image
     * @param blockSize the filesystem's block size
     * @param numBufs number of cached blocks
     */
    BlockCache(MemGate &mem, uint32_t blockSize, uint32_t numBufs)
        : mem(mem), blockSize(blockSize), bufs(numBufs)
    {
        for (Buf &b : bufs)
            b.data.resize(blockSize);
    }

    void
    read(goff_t off, void *dst, size_t len) override
    {
        uint8_t *out = static_cast<uint8_t *>(dst);
        while (len > 0) {
            Buf &b = getBlock(static_cast<blockno_t>(off / blockSize));
            size_t boff = off % blockSize;
            size_t chunk = std::min<size_t>(len, blockSize - boff);
            std::memcpy(out, b.data.data() + boff, chunk);
            out += chunk;
            off += chunk;
            len -= chunk;
        }
    }

    void
    write(goff_t off, const void *src, size_t len) override
    {
        const uint8_t *in = static_cast<const uint8_t *>(src);
        while (len > 0) {
            Buf &b = getBlock(static_cast<blockno_t>(off / blockSize));
            size_t boff = off % blockSize;
            size_t chunk = std::min<size_t>(len, blockSize - boff);
            std::memcpy(b.data.data() + boff, in, chunk);
            b.dirty = true;
            in += chunk;
            off += chunk;
            len -= chunk;
        }
    }

    /** Write all dirty blocks back to the image in DRAM. */
    void
    flushAll()
    {
        for (Buf &b : bufs)
            if (b.valid && b.dirty)
                flush(b);
    }

    const BlockCacheStats &stats() const { return cacheStats; }

  private:
    struct Buf
    {
        blockno_t no = 0xffffffff;
        std::vector<uint8_t> data;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    void
    flush(Buf &b)
    {
        mem.write(b.data.data(), blockSize,
                  static_cast<goff_t>(b.no) * blockSize);
        b.dirty = false;
        cacheStats.writeBacks++;
        if (M3_METRICS_ON) {
            static trace::Counter &wb =
                trace::Metrics::counter("m3fs.cache.write_backs");
            wb.inc();
        }
    }

    Buf &
    getBlock(blockno_t no)
    {
        Buf *victim = &bufs[0];
        for (Buf &b : bufs) {
            if (b.valid && b.no == no) {
                b.lastUse = ++useCounter;
                cacheStats.hits++;
                if (M3_METRICS_ON) {
                    static trace::Counter &h =
                        trace::Metrics::counter("m3fs.cache.hits");
                    h.inc();
                }
                return b;
            }
            if (!b.valid || b.lastUse < victim->lastUse)
                victim = &b;
        }
        cacheStats.misses++;
        if (M3_METRICS_ON) {
            static trace::Counter &m =
                trace::Metrics::counter("m3fs.cache.misses");
            m.inc();
        }
        if (victim->valid && victim->dirty)
            flush(*victim);
        victim->no = no;
        victim->valid = true;
        victim->dirty = false;
        victim->lastUse = ++useCounter;
        mem.read(victim->data.data(), blockSize,
                 static_cast<goff_t>(no) * blockSize);
        return *victim;
    }

    MemGate &mem;
    uint32_t blockSize;
    std::vector<Buf> bufs;
    uint64_t useCounter = 0;
    BlockCacheStats cacheStats;
};

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_BLOCK_CACHE_HH
