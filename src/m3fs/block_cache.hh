/**
 * @file
 * The m3fs server's meta-data buffer cache: block-granular caching of
 * the filesystem image in the service's SPM, backed by DTU transfers
 * through the service's memory gate. Writes are write-back: dirty
 * blocks are written out on eviction and on the explicit flush the
 * server performs after each request. Write-through would turn every
 * bitmap bit into a DTU round trip and serialise the whole service
 * behind meta-data updates.
 *
 * Lookup is O(1): a block-number index plus an intrusive LRU list
 * replace the former linear scan, with the same allocation and
 * eviction order (buffers fill in index order, then the least
 * recently used one is evicted).
 */

#ifndef M3_M3FS_BLOCK_CACHE_HH
#define M3_M3FS_BLOCK_CACHE_HH

#include <cstring>
#include <unordered_map>
#include <vector>

#include "libm3/gates.hh"
#include "m3fs/fs_core.hh"
#include "trace/metrics.hh"

namespace m3
{
namespace m3fs
{

/** Cache statistics for tests and ablations. */
struct BlockCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writeBacks = 0;
    /** Misses whose DMA fill was elided: the pending write covered the
     *  whole block, so fetching the old content would be wasted. */
    uint64_t fillsSkipped = 0;
};

/** An LRU block cache implementing BlockAccess over a MemGate. */
class BlockCache : public BlockAccess
{
  public:
    /**
     * @param mem gate covering the filesystem image
     * @param blockSize the filesystem's block size
     * @param numBufs number of cached blocks
     */
    BlockCache(MemGate &mem, uint32_t blockSize, uint32_t numBufs)
        : mem(mem), blockSize(blockSize), bufs(numBufs)
    {
        for (Buf &b : bufs)
            b.data.resize(blockSize);
        index.reserve(numBufs);
    }

    void
    read(goff_t off, void *dst, size_t len) override
    {
        uint8_t *out = static_cast<uint8_t *>(dst);
        while (len > 0) {
            Buf &b = getBlock(static_cast<blockno_t>(off / blockSize));
            size_t boff = off % blockSize;
            size_t chunk = std::min<size_t>(len, blockSize - boff);
            std::memcpy(out, b.data.data() + boff, chunk);
            out += chunk;
            off += chunk;
            len -= chunk;
        }
    }

    void
    write(goff_t off, const void *src, size_t len) override
    {
        const uint8_t *in = static_cast<const uint8_t *>(src);
        while (len > 0) {
            size_t boff = off % blockSize;
            size_t chunk = std::min<size_t>(len, blockSize - boff);
            // A write covering the whole block makes the old content
            // dead: skip the DMA fill on a miss.
            bool whole = boff == 0 && chunk == blockSize;
            Buf &b = getBlock(static_cast<blockno_t>(off / blockSize),
                              whole);
            std::memcpy(b.data.data() + boff, in, chunk);
            b.dirty = true;
            in += chunk;
            off += chunk;
            len -= chunk;
        }
    }

    /** Write all dirty blocks back to the image in DRAM. */
    void
    flushAll()
    {
        for (Buf &b : bufs)
            if (b.valid && b.dirty)
                flush(b);
    }

    const BlockCacheStats &stats() const { return cacheStats; }

  private:
    static constexpr uint32_t NIL = ~0u;

    struct Buf
    {
        blockno_t no = 0xffffffff;
        std::vector<uint8_t> data;
        uint32_t prev = NIL;  //!< towards MRU
        uint32_t next = NIL;  //!< towards LRU
        bool valid = false;
        bool dirty = false;
    };

    void
    flush(Buf &b)
    {
        mem.write(b.data.data(), blockSize,
                  static_cast<goff_t>(b.no) * blockSize);
        b.dirty = false;
        cacheStats.writeBacks++;
        if (M3_METRICS_ON) {
            static trace::Counter &wb =
                trace::Metrics::counter("m3fs.cache.write_backs");
            wb.inc();
        }
    }

    void
    unlink(uint32_t i)
    {
        Buf &b = bufs[i];
        if (b.prev != NIL)
            bufs[b.prev].next = b.next;
        else
            lruHead = b.next;
        if (b.next != NIL)
            bufs[b.next].prev = b.prev;
        else
            lruTail = b.prev;
        b.prev = b.next = NIL;
    }

    void
    pushFront(uint32_t i)
    {
        Buf &b = bufs[i];
        b.prev = NIL;
        b.next = lruHead;
        if (lruHead != NIL)
            bufs[lruHead].prev = i;
        lruHead = i;
        if (lruTail == NIL)
            lruTail = i;
    }

    /**
     * Locate (or load) block @p no. With @p fullOverwrite the caller
     * promises to rewrite the entire block, so a miss skips the DMA
     * fetch of the stale content.
     */
    Buf &
    getBlock(blockno_t no, bool fullOverwrite = false)
    {
        auto it = index.find(no);
        if (it != index.end()) {
            uint32_t i = it->second;
            unlink(i);
            pushFront(i);
            cacheStats.hits++;
            if (M3_METRICS_ON) {
                static trace::Counter &h =
                    trace::Metrics::counter("m3fs.cache.hits");
                h.inc();
            }
            return bufs[i];
        }
        cacheStats.misses++;
        if (M3_METRICS_ON) {
            static trace::Counter &m =
                trace::Metrics::counter("m3fs.cache.misses");
            m.inc();
        }
        uint32_t i;
        if (usedBufs < bufs.size()) {
            i = usedBufs++;
        } else {
            i = lruTail;
            Buf &victim = bufs[i];
            if (victim.dirty)
                flush(victim);
            index.erase(victim.no);
            unlink(i);
        }
        Buf &b = bufs[i];
        b.no = no;
        b.valid = true;
        b.dirty = false;
        index.emplace(no, i);
        pushFront(i);
        if (fullOverwrite) {
            cacheStats.fillsSkipped++;
            if (M3_METRICS_ON) {
                static trace::Counter &fs =
                    trace::Metrics::counter("m3fs.cache.fills_skipped");
                fs.inc();
            }
        } else {
            mem.read(b.data.data(), blockSize,
                     static_cast<goff_t>(no) * blockSize);
        }
        return b;
    }

    MemGate &mem;
    uint32_t blockSize;
    std::vector<Buf> bufs;
    std::unordered_map<blockno_t, uint32_t> index;
    uint32_t usedBufs = 0;
    uint32_t lruHead = NIL;
    uint32_t lruTail = NIL;
    BlockCacheStats cacheStats;
};

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_BLOCK_CACHE_HH
