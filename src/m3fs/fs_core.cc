#include "m3fs/fs_core.hh"

#include <cstring>
#include <set>

#include "base/logging.hh"

namespace m3
{
namespace m3fs
{

FsCore::FsCore(BlockAccess &access) : ba(access)
{
}

void
FsCore::format(BlockAccess &access, uint32_t totalBlocks,
               uint32_t totalInodes, uint32_t blockSize)
{
    auto blocksFor = [&](uint64_t bytes) {
        return static_cast<uint32_t>((bytes + blockSize - 1) / blockSize);
    };

    SuperBlock sb{};
    sb.magic = FS_MAGIC;
    sb.blockSize = blockSize;
    sb.totalBlocks = totalBlocks;
    sb.totalInodes = totalInodes;
    sb.ibmStart = 1;
    sb.ibmBlocks = blocksFor((totalInodes + 7) / 8);
    sb.bbmStart = sb.ibmStart + sb.ibmBlocks;
    sb.bbmBlocks = blocksFor((totalBlocks + 7) / 8);
    sb.itabStart = sb.bbmStart + sb.bbmBlocks;
    sb.itabBlocks = blocksFor(static_cast<uint64_t>(totalInodes) *
                              INODE_SIZE);
    sb.dataStart = sb.itabStart + sb.itabBlocks;
    sb.rootIno = 0;
    sb.allocHint = sb.dataStart;

    if (sb.dataStart >= totalBlocks)
        fatal("m3fs format: metadata exceeds %u blocks", totalBlocks);

    // Zero all metadata blocks.
    std::vector<uint8_t> zero(blockSize, 0);
    for (blockno_t b = 0; b < sb.dataStart; ++b)
        access.write(static_cast<goff_t>(b) * blockSize, zero.data(),
                     blockSize);

    access.write(0, &sb, sizeof(sb));

    // Mark all metadata blocks as used in the block bitmap.
    FsCore core(access);
    if (!core.load())
        panic("freshly formatted filesystem failed to load");
    for (blockno_t b = 0; b < sb.dataStart; ++b)
        core.bitSet(sb.bbmStart, b, true);

    // Create the root directory (inode 0, no parent entry).
    Inode root{};
    core.bitSet(sb.ibmStart, 0, true);
    root.ino = 0;
    root.mode = 0x4000;  // M_DIR
    root.links = 1;
    core.putInode(root);
    core.saveSb();
}

bool
FsCore::load()
{
    ba.read(0, &sb, sizeof(sb));
    return sb.valid();
}

void
FsCore::saveSb()
{
    ba.write(0, &sb, sizeof(sb));
}

goff_t
FsCore::blockOff(blockno_t b) const
{
    return static_cast<goff_t>(b) * sb.blockSize;
}

// ---------------------------------------------------------------------
// Bitmaps.
// ---------------------------------------------------------------------

bool
FsCore::bitGet(blockno_t bmStart, uint32_t idx)
{
    uint8_t byte = 0;
    ba.read(blockOff(bmStart) + idx / 8, &byte, 1);
    return byte & (1u << (idx % 8));
}

void
FsCore::bitSet(blockno_t bmStart, uint32_t idx, bool value)
{
    goff_t off = blockOff(bmStart) + idx / 8;
    uint8_t byte = 0;
    ba.read(off, &byte, 1);
    if (value)
        byte |= (1u << (idx % 8));
    else
        byte &= ~(1u << (idx % 8));
    ba.write(off, &byte, 1);
}

// ---------------------------------------------------------------------
// Inodes.
// ---------------------------------------------------------------------

Inode
FsCore::getInode(inodeno_t ino)
{
    if (ino >= sb.totalInodes)
        panic("inode %u out of range", ino);
    Inode inode{};
    ba.read(blockOff(sb.itabStart) +
                static_cast<goff_t>(ino) * INODE_SIZE,
            &inode, sizeof(inode));
    return inode;
}

void
FsCore::putInode(const Inode &inode)
{
    ba.write(blockOff(sb.itabStart) +
                 static_cast<goff_t>(inode.ino) * INODE_SIZE,
             &inode, sizeof(inode));
}

Error
FsCore::allocInode(uint32_t mode, Inode &out)
{
    for (inodeno_t i = 0; i < sb.totalInodes; ++i) {
        if (!bitGet(sb.ibmStart, i)) {
            bitSet(sb.ibmStart, i, true);
            out = Inode{};
            out.ino = i;
            out.mode = mode;
            out.links = 1;
            putInode(out);
            return Error::None;
        }
    }
    return Error::NoSpace;
}

void
FsCore::freeInode(inodeno_t ino)
{
    bitSet(sb.ibmStart, ino, false);
}

// ---------------------------------------------------------------------
// Extents.
// ---------------------------------------------------------------------

Extent
FsCore::getExtent(const Inode &inode, uint32_t idx)
{
    if (idx >= inode.extents)
        return Extent{};
    if (idx < INODE_DIRECT)
        return inode.direct[idx];

    const uint32_t perBlock = sb.blockSize / sizeof(Extent);
    uint32_t iidx = idx - INODE_DIRECT;
    if (iidx < perBlock) {
        if (!inode.indirect)
            return Extent{};
        Extent e{};
        ba.read(blockOff(inode.indirect) + iidx * sizeof(Extent), &e,
                sizeof(e));
        return e;
    }

    // Double-indirect level.
    iidx -= perBlock;
    const uint32_t perPtrBlock = sb.blockSize / sizeof(blockno_t);
    uint32_t outer = iidx / perBlock;
    uint32_t inner = iidx % perBlock;
    if (!inode.dindirect || outer >= perPtrBlock)
        return Extent{};
    blockno_t tab = 0;
    ba.read(blockOff(inode.dindirect) + outer * sizeof(blockno_t), &tab,
            sizeof(tab));
    if (!tab)
        return Extent{};
    Extent e{};
    ba.read(blockOff(tab) + inner * sizeof(Extent), &e, sizeof(e));
    return e;
}

blockno_t
FsCore::allocZeroedMetaBlock()
{
    Extent run = allocRun(1);
    if (run.len == 0)
        panic("out of blocks for an extent table");
    std::vector<uint8_t> zero(sb.blockSize, 0);
    ba.write(blockOff(run.start), zero.data(), sb.blockSize);
    return run.start;
}

void
FsCore::setExtent(Inode &inode, uint32_t idx, const Extent &e)
{
    if (idx < INODE_DIRECT) {
        inode.direct[idx] = e;
        return;
    }

    const uint32_t perBlock = sb.blockSize / sizeof(Extent);
    uint32_t iidx = idx - INODE_DIRECT;
    if (iidx < perBlock) {
        if (!inode.indirect)
            inode.indirect = allocZeroedMetaBlock();
        ba.write(blockOff(inode.indirect) + iidx * sizeof(Extent), &e,
                 sizeof(e));
        return;
    }

    iidx -= perBlock;
    const uint32_t perPtrBlock = sb.blockSize / sizeof(blockno_t);
    uint32_t outer = iidx / perBlock;
    uint32_t inner = iidx % perBlock;
    if (outer >= perPtrBlock)
        panic("file exceeds the maximum extent count (%u)", idx);
    if (!inode.dindirect)
        inode.dindirect = allocZeroedMetaBlock();
    blockno_t tab = 0;
    ba.read(blockOff(inode.dindirect) + outer * sizeof(blockno_t), &tab,
            sizeof(tab));
    if (!tab) {
        tab = allocZeroedMetaBlock();
        ba.write(blockOff(inode.dindirect) + outer * sizeof(blockno_t),
                 &tab, sizeof(tab));
    }
    ba.write(blockOff(tab) + inner * sizeof(Extent), &e, sizeof(e));
}

Extent
FsCore::allocRun(uint32_t maxLen)
{
    // Next-fit: scan from the allocation hint for a contiguous free run.
    uint32_t total = sb.totalBlocks;
    blockno_t start = sb.allocHint;
    for (uint32_t scanned = 0; scanned < total; ) {
        if (start >= total)
            start = sb.dataStart;
        if (bitGet(sb.bbmStart, start)) {
            ++start;
            ++scanned;
            continue;
        }
        // Extend the free run as far as possible (up to maxLen).
        uint32_t len = 0;
        while (len < maxLen && start + len < total &&
               !bitGet(sb.bbmStart, start + len)) {
            ++len;
        }
        for (uint32_t i = 0; i < len; ++i)
            bitSet(sb.bbmStart, start + i, true);
        sb.allocHint = start + len;
        saveSb();
        return Extent{start, len};
    }
    return Extent{};
}

void
FsCore::freeRun(blockno_t start, uint32_t len)
{
    for (uint32_t i = 0; i < len; ++i)
        bitSet(sb.bbmStart, start + i, false);
    if (start < sb.allocHint) {
        sb.allocHint = start;
        saveSb();
    }
}

Extent
FsCore::appendBlocks(Inode &inode, uint32_t blocks, uint32_t maxRun)
{
    Extent e = allocRun(std::min(blocks, maxRun));
    if (e.len == 0)
        return e;

    // Merge with the last extent when the new run is adjacent: this is
    // what keeps sequentially written files in few extents (Sec. 5.5).
    if (inode.extents > 0) {
        Extent last = getExtent(inode, inode.extents - 1);
        if (last.start + last.len == e.start) {
            last.len += e.len;
            setExtent(inode, inode.extents - 1, last);
            putInode(inode);
            return e;
        }
    }
    setExtent(inode, inode.extents, e);
    inode.extents++;
    putInode(inode);
    return e;
}

void
FsCore::truncate(Inode &inode, uint64_t newSize)
{
    uint64_t needBlocks = (newSize + sb.blockSize - 1) / sb.blockSize;
    uint64_t have = 0;
    uint32_t keepExtents = 0;
    for (uint32_t idx = 0; idx < inode.extents; ++idx) {
        Extent e = getExtent(inode, idx);
        if (have >= needBlocks) {
            freeRun(e.start, e.len);
            continue;
        }
        if (have + e.len <= needBlocks) {
            have += e.len;
            keepExtents = idx + 1;
            continue;
        }
        uint32_t keep = static_cast<uint32_t>(needBlocks - have);
        freeRun(e.start + keep, e.len - keep);
        setExtent(inode, idx, Extent{e.start, keep});
        have += keep;
        keepExtents = idx + 1;
    }
    inode.extents = keepExtents;
    inode.size = newSize;
    putInode(inode);
}

void
FsCore::freeBlocks(Inode &inode)
{
    for (uint32_t i = 0; i < inode.extents; ++i) {
        Extent e = getExtent(inode, i);
        if (e.len)
            freeRun(e.start, e.len);
    }
    if (inode.indirect) {
        freeRun(inode.indirect, 1);
        inode.indirect = 0;
    }
    if (inode.dindirect) {
        const uint32_t perPtrBlock = sb.blockSize / sizeof(blockno_t);
        for (uint32_t i = 0; i < perPtrBlock; ++i) {
            blockno_t tab = 0;
            ba.read(blockOff(inode.dindirect) + i * sizeof(blockno_t),
                    &tab, sizeof(tab));
            if (tab)
                freeRun(tab, 1);
        }
        freeRun(inode.dindirect, 1);
        inode.dindirect = 0;
    }
    inode.extents = 0;
    inode.size = 0;
    putInode(inode);
}

// ---------------------------------------------------------------------
// Directories.
// ---------------------------------------------------------------------

namespace
{

/** Split a path into components, ignoring empty ones. */
std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    size_t pos = 0;
    while (pos < path.size()) {
        size_t next = path.find('/', pos);
        if (next == std::string::npos)
            next = path.size();
        if (next > pos)
            parts.push_back(path.substr(pos, next - pos));
        pos = next + 1;
    }
    return parts;
}

} // anonymous namespace

goff_t
FsCore::dirEntryOff(const Inode &dir, uint64_t idx)
{
    const uint64_t perBlock = sb.blockSize / DIRENTRY_SIZE;
    uint64_t blockIdx = idx / perBlock;
    uint64_t seen = 0;
    for (uint32_t e = 0; e < dir.extents; ++e) {
        Extent ext = getExtent(dir, e);
        if (blockIdx < seen + ext.len) {
            blockno_t b = ext.start +
                          static_cast<blockno_t>(blockIdx - seen);
            return blockOff(b) + (idx % perBlock) * DIRENTRY_SIZE;
        }
        seen += ext.len;
    }
    return 0;  // out of range (offset 0 is the superblock, never valid)
}

ResolveResult
FsCore::resolve(const std::string &path)
{
    ResolveResult res;
    std::vector<std::string> parts = splitPath(path);
    res.components = static_cast<uint32_t>(parts.size());

    inodeno_t cur = sb.rootIno;
    inodeno_t parent = INVALID_INO;
    for (size_t i = 0; i < parts.size(); ++i) {
        parent = cur;
        inodeno_t next = INVALID_INO;
        if (dirLookup(cur, parts[i], next) != Error::None) {
            if (i + 1 == parts.size()) {
                // Leaf missing: report the parent for creation.
                res.parent = parent;
                res.leafName = parts[i];
                return res;
            }
            res.parent = INVALID_INO;
            return res;
        }
        cur = next;
    }
    res.ino = cur;
    res.parent = parent;
    res.leafName = parts.empty() ? "" : parts.back();
    return res;
}

Error
FsCore::dirLookup(inodeno_t dir, const std::string &name, inodeno_t &out)
{
    Inode d = getInode(dir);
    if (!(d.mode & 0x4000))
        return Error::IsNoDirectory;
    uint64_t entries = d.size / DIRENTRY_SIZE;
    for (uint64_t i = 0; i < entries; ++i) {
        goff_t off = dirEntryOff(d, i);
        if (!off)
            break;
        DirEntry de{};
        ba.read(off, &de, sizeof(de));
        if (de.ino != INVALID_INO && de.nameLen == name.size() &&
            std::memcmp(de.name, name.data(), de.nameLen) == 0) {
            out = de.ino;
            return Error::None;
        }
    }
    return Error::NoSuchFile;
}

Error
FsCore::dirInsert(inodeno_t dir, const std::string &name, inodeno_t ino)
{
    if (name.size() > MAX_NAME_LEN)
        return Error::InvalidArgs;
    Inode d = getInode(dir);
    if (!(d.mode & 0x4000))
        return Error::IsNoDirectory;

    uint64_t perBlock = sb.blockSize / DIRENTRY_SIZE;
    uint64_t entries = d.size / DIRENTRY_SIZE;

    DirEntry de{};
    de.ino = ino;
    de.nameLen = static_cast<uint8_t>(name.size());
    std::memset(de.name, 0, sizeof(de.name));
    std::memcpy(de.name, name.data(), name.size());

    // Reuse a free slot if there is one.
    for (uint64_t i = 0; i < entries; ++i) {
        goff_t off = dirEntryOff(d, i);
        if (!off)
            break;
        DirEntry cur{};
        ba.read(off, &cur, sizeof(cur));
        if (cur.ino == INVALID_INO) {
            ba.write(off, &de, sizeof(de));
            return Error::None;
        }
    }

    // Append: grow the directory by one entry (maybe one block).
    if (entries % perBlock == 0) {
        Extent e = appendBlocks(d, 1, 1);
        if (e.len == 0)
            return Error::NoSpace;
        // Initialise the new block with free slots.
        std::vector<DirEntry> free(perBlock);
        for (auto &f : free) {
            f.ino = INVALID_INO;
            f.nameLen = 0;
            std::memset(f.name, 0, sizeof(f.name));
        }
        ba.write(blockOff(e.start), free.data(),
                 perBlock * DIRENTRY_SIZE);
    }
    d.size = (entries + 1) * DIRENTRY_SIZE;
    goff_t off = dirEntryOff(d, entries);
    if (!off)
        return Error::NoSpace;
    ba.write(off, &de, sizeof(de));
    putInode(d);
    return Error::None;
}

Error
FsCore::dirRemove(inodeno_t dir, const std::string &name)
{
    Inode d = getInode(dir);
    if (!(d.mode & 0x4000))
        return Error::IsNoDirectory;
    uint64_t entries = d.size / DIRENTRY_SIZE;
    for (uint64_t i = 0; i < entries; ++i) {
        goff_t off = dirEntryOff(d, i);
        if (!off)
            break;
        DirEntry de{};
        ba.read(off, &de, sizeof(de));
        if (de.ino != INVALID_INO && de.nameLen == name.size() &&
            std::memcmp(de.name, name.data(), de.nameLen) == 0) {
            de.ino = INVALID_INO;
            ba.write(off, &de, sizeof(de));
            return Error::None;
        }
    }
    return Error::NoSuchFile;
}

Error
FsCore::dirList(inodeno_t dir,
                std::vector<std::pair<inodeno_t, std::string>> &out)
{
    Inode d = getInode(dir);
    if (!(d.mode & 0x4000))
        return Error::IsNoDirectory;
    uint64_t entries = d.size / DIRENTRY_SIZE;
    for (uint64_t i = 0; i < entries; ++i) {
        goff_t off = dirEntryOff(d, i);
        if (!off)
            break;
        DirEntry de{};
        ba.read(off, &de, sizeof(de));
        if (de.ino != INVALID_INO)
            out.emplace_back(de.ino, std::string(de.name, de.nameLen));
    }
    return Error::None;
}

bool
FsCore::dirEmpty(inodeno_t dir)
{
    std::vector<std::pair<inodeno_t, std::string>> entries;
    dirList(dir, entries);
    return entries.empty();
}

// ---------------------------------------------------------------------
// Whole-file helpers.
// ---------------------------------------------------------------------

Error
FsCore::createDir(const std::string &path)
{
    ResolveResult r = resolve(path);
    if (r.ino != INVALID_INO)
        return Error::FileExists;
    if (r.parent == INVALID_INO)
        return Error::NoSuchFile;
    Inode d{};
    Error e = allocInode(0x4000, d);
    if (e != Error::None)
        return e;
    return dirInsert(r.parent, r.leafName, d.ino);
}

Error
FsCore::createFile(const std::string &path, const void *data, size_t len,
                   uint32_t blocksPerExtent)
{
    ResolveResult r = resolve(path);
    if (r.ino != INVALID_INO)
        return Error::FileExists;
    if (r.parent == INVALID_INO)
        return Error::NoSuchFile;

    Inode f{};
    Error e = allocInode(0x8000, f);
    if (e != Error::None)
        return e;
    e = dirInsert(r.parent, r.leafName, f.ino);
    if (e != Error::None)
        return e;

    const uint8_t *src = static_cast<const uint8_t *>(data);
    size_t written = 0;
    while (written < len) {
        uint32_t wantBlocks = static_cast<uint32_t>(
            (len - written + sb.blockSize - 1) / sb.blockSize);
        // Cap each allocation at blocksPerExtent so tests and the Fig. 4
        // bench can create files with a controlled extent layout. The
        // allocator merges adjacent runs, so fragment the file for real
        // by bumping the hint past a dummy gap block between extents.
        Extent ext = appendBlocks(f, std::min(wantBlocks, blocksPerExtent),
                                  blocksPerExtent);
        if (ext.len == 0)
            return Error::NoSpace;
        size_t chunk = std::min(len - written,
                                static_cast<size_t>(ext.len) *
                                    sb.blockSize);
        ba.write(blockOff(ext.start), src + written, chunk);
        written += chunk;
        if (written < len && blocksPerExtent < wantBlocks) {
            // Force a gap so the next extent is not mergeable.
            Extent gap = allocRun(1);
            (void)gap;
        }
    }
    f = getInode(f.ino);
    f.size = len;
    putInode(f);
    return Error::None;
}

Error
FsCore::readFile(const std::string &path, std::vector<uint8_t> &out)
{
    ResolveResult r = resolve(path);
    if (r.ino == INVALID_INO)
        return Error::NoSuchFile;
    Inode f = getInode(r.ino);
    out.resize(f.size);
    uint64_t done = 0;
    for (uint32_t i = 0; i < f.extents && done < f.size; ++i) {
        Extent e = getExtent(f, i);
        uint64_t chunk = std::min<uint64_t>(
            static_cast<uint64_t>(e.len) * sb.blockSize, f.size - done);
        ba.read(blockOff(e.start), out.data() + done, chunk);
        done += chunk;
    }
    return Error::None;
}

// ---------------------------------------------------------------------
// Filesystem check.
// ---------------------------------------------------------------------

bool
FsCore::check(std::string &report)
{
    report.clear();
    bool ok = true;
    auto complain = [&](const std::string &msg) {
        report += msg + "\n";
        ok = false;
    };

    if (!sb.valid()) {
        complain("bad superblock magic");
        return false;
    }

    std::vector<bool> blockUsed(sb.totalBlocks, false);
    for (blockno_t b = 0; b < sb.dataStart; ++b)
        blockUsed[b] = true;

    std::set<inodeno_t> seen;
    std::vector<inodeno_t> queue{sb.rootIno};
    while (!queue.empty()) {
        inodeno_t ino = queue.back();
        queue.pop_back();
        if (seen.count(ino))
            continue;
        seen.insert(ino);

        if (!bitGet(sb.ibmStart, ino))
            complain("inode " + std::to_string(ino) +
                     " reachable but not allocated");

        Inode inode = getInode(ino);
        if (inode.ino != ino && inode.mode != 0)
            complain("inode " + std::to_string(ino) + " has wrong id");

        uint64_t blocks = 0;
        for (uint32_t i = 0; i < inode.extents; ++i) {
            Extent e = getExtent(inode, i);
            if (e.len == 0) {
                complain("inode " + std::to_string(ino) +
                         " has empty extent " + std::to_string(i));
                continue;
            }
            for (uint32_t j = 0; j < e.len; ++j) {
                blockno_t b = e.start + j;
                if (b >= sb.totalBlocks) {
                    complain("extent block out of range");
                    continue;
                }
                if (blockUsed[b])
                    complain("block " + std::to_string(b) +
                             " multiply referenced");
                blockUsed[b] = true;
                if (!bitGet(sb.bbmStart, b))
                    complain("block " + std::to_string(b) +
                             " in use but free in bitmap");
            }
            blocks += e.len;
        }
        if (inode.indirect) {
            if (blockUsed[inode.indirect])
                complain("indirect block multiply referenced");
            blockUsed[inode.indirect] = true;
        }
        if (inode.dindirect) {
            if (blockUsed[inode.dindirect])
                complain("double-indirect block multiply referenced");
            blockUsed[inode.dindirect] = true;
            const uint32_t perPtrBlock = sb.blockSize / sizeof(blockno_t);
            for (uint32_t i = 0; i < perPtrBlock; ++i) {
                blockno_t tab = 0;
                ba.read(blockOff(inode.dindirect) +
                            i * sizeof(blockno_t),
                        &tab, sizeof(tab));
                if (tab) {
                    if (blockUsed[tab])
                        complain("extent table multiply referenced");
                    blockUsed[tab] = true;
                }
            }
        }
        if (inode.size > blocks * sb.blockSize)
            complain("inode " + std::to_string(ino) +
                     " size exceeds allocation");

        if (inode.mode & 0x4000) {
            std::vector<std::pair<inodeno_t, std::string>> entries;
            if (dirList(ino, entries) != Error::None) {
                complain("directory " + std::to_string(ino) +
                         " unreadable");
                continue;
            }
            for (auto &[child, name] : entries) {
                if (name.empty())
                    complain("empty name in directory " +
                             std::to_string(ino));
                queue.push_back(child);
            }
        }
    }

    return ok;
}

} // namespace m3fs
} // namespace m3
