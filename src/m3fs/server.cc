#include "m3fs/server.hh"

#include <map>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "libm3/env.hh"
#include "libm3/gates.hh"
#include "m3fs/block_cache.hh"
#include "m3fs/fs_proto.hh"
#include "trace/metrics.hh"
#include "trace/reqtrace.hh"
#include "trace/trace.hh"

namespace m3
{
namespace m3fs
{

namespace
{

/** Stable name for a client operation (trace/metric labels). */
const char *
fsOpName(FsOp op)
{
    switch (op) {
      case FsOp::Open: return "open";
      case FsOp::Close: return "close";
      case FsOp::Stat: return "stat";
      case FsOp::Mkdir: return "mkdir";
      case FsOp::Unlink: return "unlink";
      case FsOp::Link: return "link";
      case FsOp::Readdir: return "readdir";
      case FsOp::Rename: return "rename";
      default: return "unknown";
    }
}

/** Span names for fsOpName results, prefixed for the trace view. */
const char *
fsSpanName(FsOp op)
{
    switch (op) {
      case FsOp::Open: return "fs:open";
      case FsOp::Close: return "fs:close";
      case FsOp::Stat: return "fs:stat";
      case FsOp::Mkdir: return "fs:mkdir";
      case FsOp::Unlink: return "fs:unlink";
      case FsOp::Link: return "fs:link";
      case FsOp::Readdir: return "fs:readdir";
      case FsOp::Rename: return "fs:rename";
      default: return "fs:unknown";
    }
}

/** One open file of a session. */
struct OpenFile
{
    inodeno_t ino;
    uint32_t flags;
};

/** One client session. */
struct Session
{
    uint64_t ident;
    std::map<uint32_t, OpenFile> files;
    uint32_t nextFid = 1;
};

/** The running server state. */
class Server
{
  public:
    Server(Env &env, const ServerConfig &cfg)
        : env(env), cfg(cfg), fsMem(env, cfg.fsMemSel, cfg.fsBytes),
          cache(nullptr), rgate(env, MAX_SLOTS, FS_MSG_SIZE),
          // Metric prefix: the default instance keeps the seed's
          // "m3fs." keys; striped/extra instances get "m3fs.<name>.".
          metricPrefix(cfg.name == "m3fs" ? "m3fs."
                                          : "m3fs." + cfg.name + ".")
    {
        // Bootstrap: learn the block size from the superblock (read
        // directly), then build the cache and the filesystem core on it.
        SuperBlock sb{};
        fsMem.read(&sb, sizeof(sb), 0);
        if (!sb.valid())
            fatal("m3fs: no filesystem found in the provided memory");
        cache = std::make_unique<BlockCache>(fsMem, sb.blockSize,
                                             cfg.cacheBlocks);
        fs = std::make_unique<FsCore>(*cache);
        if (!fs->load())
            fatal("m3fs: superblock vanished");

        capsel_t srvSel = env.allocSels();
        Error e = env.createSrv(srvSel, rgate.capSel(), cfg.name);
        if (e != Error::None)
            fatal("m3fs: registering service failed: %s", errorName(e));
    }

    int
    run()
    {
        for (;;) {
            GateIStream is = rgate.receive();
            env.compute(env.cm.m3.fetchMsg + env.cm.m3.unmarshal);
            bool keepRunning = true;
            if (is.label() == 0)
                keepRunning = handleKernel(is);
            else
                handleClient(is);
            // Meta-data updates of this request reach the image before
            // the next request is served (write-back, batched).
            cache->flushAll();
            // The reply went out inside the handler; the write-back above
            // is housekeeping, so drop the adopted request context before
            // blocking for the next message.
            if (M3_REQTRACE_ON) {
                if (Fiber *f = Fiber::current())
                    f->setReqCtx(0);
            }
            if (!keepRunning)
                return 0;
        }
    }

  private:
    /** @return false when a shutdown was requested. */
    bool
    handleKernel(GateIStream &is)
    {
        auto op = is.pull<kif::ServiceOp>();
        switch (op) {
          case kif::ServiceOp::Open: {
            is.pull<uint64_t>();  // the open argument (unused)
            uint64_t ident = nextIdent++;
            sessions[ident] = Session{ident, {}, 1};
            Marshaller m = is.replyStream();
            m << Error::None << ident;
            is.replyStreamSend(m);
            return true;
          }
          case kif::ServiceOp::Obtain:
            handleObtain(is);
            return true;
          case kif::ServiceOp::Delegate: {
            // m3fs does not accept capabilities from clients.
            Marshaller m = is.replyStream();
            m << Error::InvalidArgs << uint64_t{0};
            is.replyStreamSend(m);
            return true;
          }
          case kif::ServiceOp::Close: {
            auto ident = is.pull<uint64_t>();
            sessions.erase(ident);
            is.replyError(Error::None);
            return true;
          }
          case kif::ServiceOp::Shutdown:
            is.replyError(Error::None);
            return false;
          default:
            is.replyError(Error::InvalidArgs);
            return true;
        }
    }

    void
    handleObtain(GateIStream &is)
    {
        auto ident = is.pull<uint64_t>();
        is.pull<uint64_t>();  // cap budget of the request
        auto argc = is.pull<uint64_t>();
        uint64_t args[kif::MAX_EXCHG_ARGS] = {};
        for (uint64_t i = 0; i < argc && i < kif::MAX_EXCHG_ARGS; ++i)
            args[i] = is.pull<uint64_t>();

        auto sit = sessions.find(ident);
        if (sit == sessions.end() || argc == 0) {
            replyObtainErr(is, Error::NoSuchSession);
            return;
        }
        Session &sess = sit->second;

        switch (static_cast<FsXchg>(args[0])) {
          case FsXchg::GetChannel: {
            // Hand out a send gate for the session's channel; the label
            // identifies the session without further lookups
            // (Sec. 4.4.2). One credit per channel: clients call
            // synchronously, and the sum of handed-out credits must not
            // exceed the ring space (Sec. 4.4.3).
            capsel_t sel = env.allocSels();
            Error e = env.createSgate(sel, rgate.capSel(), ident, 1);
            if (e != Error::None) {
                replyObtainErr(is, e);
                return;
            }
            Marshaller m = is.replyStream();
            m << Error::None << uint64_t{1} << sel << uint64_t{0};
            is.replyStreamSend(m);
            return;
          }
          case FsXchg::FetchLoc: {
            if (argc < 3) {
                replyObtainErr(is, Error::InvalidArgs);
                return;
            }
            auto fit = sess.files.find(static_cast<uint32_t>(args[1]));
            if (fit == sess.files.end()) {
                replyObtainErr(is, Error::InvalidFileHandle);
                return;
            }
            env.compute(env.cm.m3.fsInodeOp + env.cm.m3.fsExtentOp);
            Inode inode = fs->getInode(fit->second.ino);
            uint32_t extIdx = static_cast<uint32_t>(args[2]);
            if (extIdx >= inode.extents) {
                // Past the last extent: no capability, zero length.
                Marshaller m = is.replyStream();
                m << Error::None << uint64_t{0} << uint64_t{1}
                  << uint64_t{0};
                is.replyStreamSend(m);
                return;
            }
            Extent e = fs->getExtent(inode, extIdx);
            capsel_t sel = env.allocSels();
            Error err = env.deriveMem(
                cfg.fsMemSel, sel, fs->blockOff(e.start),
                static_cast<uint64_t>(e.len) *
                    fs->superBlock().blockSize,
                MEM_RW);
            if (err != Error::None) {
                replyObtainErr(is, err);
                return;
            }
            Marshaller m = is.replyStream();
            m << Error::None << uint64_t{1} << sel << uint64_t{1}
              << static_cast<uint64_t>(e.len) *
                     fs->superBlock().blockSize;
            is.replyStreamSend(m);
            return;
          }
          case FsXchg::Append: {
            if (argc < 3) {
                replyObtainErr(is, Error::InvalidArgs);
                return;
            }
            auto fit = sess.files.find(static_cast<uint32_t>(args[1]));
            if (fit == sess.files.end()) {
                replyObtainErr(is, Error::InvalidFileHandle);
                return;
            }
            env.compute(env.cm.m3.fsInodeOp + env.cm.m3.fsAllocRun);
            Inode inode = fs->getInode(fit->second.ino);
            uint32_t blocks = static_cast<uint32_t>(args[2]);
            Extent e = fs->appendBlocks(inode, blocks, cfg.appendBlocks);
            if (e.len == 0) {
                replyObtainErr(is, Error::NoSpace);
                return;
            }
            uint32_t bs = fs->superBlock().blockSize;
            if (cfg.backgroundZero) {
                // Zero blocks are prepared in the background while the
                // service is idle (Sec. 5.4): no cost on this path.
                fsMem.zero(static_cast<size_t>(e.len) * bs,
                           fs->blockOff(e.start));
            } else {
                // Ablation: synchronous zeroing through the DTU.
                std::vector<uint8_t> zero(static_cast<size_t>(e.len) * bs,
                                          0);
                fsMem.write(zero.data(), zero.size(),
                            fs->blockOff(e.start));
            }
            capsel_t sel = env.allocSels();
            Error err = env.deriveMem(cfg.fsMemSel, sel,
                                      fs->blockOff(e.start),
                                      static_cast<uint64_t>(e.len) * bs,
                                      MEM_RW);
            if (err != Error::None) {
                replyObtainErr(is, err);
                return;
            }
            Marshaller m = is.replyStream();
            m << Error::None << uint64_t{1} << sel << uint64_t{2}
              << static_cast<uint64_t>(e.len) * bs
              << static_cast<uint64_t>(inode.extents - 1);
            is.replyStreamSend(m);
            return;
          }
          default:
            replyObtainErr(is, Error::InvalidArgs);
            return;
        }
    }

    void
    replyObtainErr(GateIStream &is, Error e)
    {
        Marshaller m = is.replyStream();
        m << e << uint64_t{0};
        is.replyStreamSend(m);
    }

    void
    handleClient(GateIStream &is)
    {
        auto sit = sessions.find(is.label());
        if (sit == sessions.end()) {
            is.replyError(Error::NoSuchSession);
            return;
        }
        Session &sess = sit->second;
        auto op = is.pull<FsOp>();
        trace::ScopedSpan span(env.peId, fsSpanName(op));
        const Cycles opStart = env.platform.simulator().curCycle();
        switch (op) {
          case FsOp::Open:
            fsOpen(sess, is);
            break;
          case FsOp::Close:
            fsClose(sess, is);
            break;
          case FsOp::Stat:
            fsStat(is);
            break;
          case FsOp::Mkdir:
            fsMkdir(is);
            break;
          case FsOp::Unlink:
            fsUnlink(is);
            break;
          case FsOp::Link:
            fsLink(is);
            break;
          case FsOp::Readdir:
            fsReaddir(is);
            break;
          case FsOp::Rename:
            fsRename(is);
            break;
          default:
            is.replyError(Error::InvalidArgs);
            break;
        }
        if (M3_METRICS_ON) {
            trace::Metrics::counter(metricPrefix + "op." + fsOpName(op))
                .inc();
            if (!opCycles)
                opCycles =
                    &trace::Metrics::histogram(metricPrefix + "op_cycles");
            opCycles->observe(env.platform.simulator().curCycle() -
                              opStart);
        }
    }

    ResolveResult
    resolveCosted(const std::string &path)
    {
        ResolveResult r = fs->resolve(path);
        env.compute(r.components * env.cm.m3.fsPathComponent +
                    env.cm.m3.fsInodeOp);
        return r;
    }

    void
    fsOpen(Session &sess, GateIStream &is)
    {
        auto flags = is.pull<uint64_t>();
        auto path = is.pull<std::string>();

        ResolveResult r = resolveCosted(path);
        inodeno_t ino = r.ino;
        if (ino == INVALID_INO) {
            if (!(flags & 4 /*FILE_CREATE*/) || r.parent == INVALID_INO) {
                is.replyError(Error::NoSuchFile);
                return;
            }
            Inode f{};
            Error e = fs->allocInode(0x8000, f);
            if (e == Error::None)
                e = fs->dirInsert(r.parent, r.leafName, f.ino);
            if (e != Error::None) {
                is.replyError(e);
                return;
            }
            env.compute(env.cm.m3.fsInodeOp);
            ino = f.ino;
        }
        Inode inode = fs->getInode(ino);
        if (inode.mode & 0x4000) {
            is.replyError(Error::IsDirectory);
            return;
        }
        if (flags & 8 /*FILE_TRUNC*/) {
            fs->truncate(inode, 0);
            env.compute(env.cm.m3.fsExtentOp);
        }
        uint32_t fid = sess.nextFid++;
        sess.files[fid] = OpenFile{ino, static_cast<uint32_t>(flags)};

        Marshaller m = is.replyStream();
        m << Error::None << static_cast<uint64_t>(fid) << inode.size
          << static_cast<uint64_t>(inode.extents);
        is.replyStreamSend(m);
    }

    void
    fsClose(Session &sess, GateIStream &is)
    {
        auto fid = is.pull<uint64_t>();
        auto finalSize = is.pull<uint64_t>();
        auto fit = sess.files.find(static_cast<uint32_t>(fid));
        if (fit == sess.files.end()) {
            is.replyError(Error::InvalidFileHandle);
            return;
        }
        // Writes over-allocate generously; close returns the unused tail
        // (Sec. 4.5.8).
        if (fit->second.flags & 2 /*FILE_W*/) {
            Inode inode = fs->getInode(fit->second.ino);
            fs->truncate(inode, finalSize);
            env.compute(env.cm.m3.fsExtentOp + env.cm.m3.fsInodeOp);
        }
        sess.files.erase(fit);
        is.replyError(Error::None);
    }

    void
    fsStat(GateIStream &is)
    {
        auto path = is.pull<std::string>();
        ResolveResult r = resolveCosted(path);
        if (r.ino == INVALID_INO) {
            is.replyError(Error::NoSuchFile);
            return;
        }
        Inode inode = fs->getInode(r.ino);
        Marshaller m = is.replyStream();
        m << Error::None << static_cast<uint64_t>(inode.ino)
          << static_cast<uint64_t>(inode.mode)
          << static_cast<uint64_t>(inode.links)
          << static_cast<uint64_t>(inode.extents) << inode.size;
        is.replyStreamSend(m);
    }

    void
    fsMkdir(GateIStream &is)
    {
        auto path = is.pull<std::string>();
        ResolveResult r = resolveCosted(path);
        if (r.ino != INVALID_INO) {
            is.replyError(Error::FileExists);
            return;
        }
        if (r.parent == INVALID_INO) {
            is.replyError(Error::NoSuchFile);
            return;
        }
        Inode d{};
        Error e = fs->allocInode(0x4000, d);
        if (e == Error::None)
            e = fs->dirInsert(r.parent, r.leafName, d.ino);
        env.compute(env.cm.m3.fsInodeOp);
        is.replyError(e);
    }

    void
    fsUnlink(GateIStream &is)
    {
        auto path = is.pull<std::string>();
        ResolveResult r = resolveCosted(path);
        if (r.ino == INVALID_INO || r.parent == INVALID_INO) {
            is.replyError(Error::NoSuchFile);
            return;
        }
        Inode inode = fs->getInode(r.ino);
        if (inode.mode & 0x4000) {
            if (!fs->dirEmpty(r.ino)) {
                is.replyError(Error::DirNotEmpty);
                return;
            }
        }
        Error e = fs->dirRemove(r.parent, r.leafName);
        if (e == Error::None) {
            if (--inode.links == 0) {
                fs->freeBlocks(inode);
                fs->freeInode(inode.ino);
            } else {
                fs->putInode(inode);
            }
            env.compute(env.cm.m3.fsInodeOp);
        }
        is.replyError(e);
    }

    void
    fsLink(GateIStream &is)
    {
        auto oldPath = is.pull<std::string>();
        auto newPath = is.pull<std::string>();
        ResolveResult ro = resolveCosted(oldPath);
        if (ro.ino == INVALID_INO) {
            is.replyError(Error::NoSuchFile);
            return;
        }
        ResolveResult rn = resolveCosted(newPath);
        if (rn.ino != INVALID_INO) {
            is.replyError(Error::FileExists);
            return;
        }
        if (rn.parent == INVALID_INO) {
            is.replyError(Error::NoSuchFile);
            return;
        }
        Inode inode = fs->getInode(ro.ino);
        Error e = fs->dirInsert(rn.parent, rn.leafName, inode.ino);
        if (e == Error::None) {
            inode.links++;
            fs->putInode(inode);
            env.compute(env.cm.m3.fsInodeOp);
        }
        is.replyError(e);
    }

    void
    fsRename(GateIStream &is)
    {
        auto oldPath = is.pull<std::string>();
        auto newPath = is.pull<std::string>();
        ResolveResult ro = resolveCosted(oldPath);
        if (ro.ino == INVALID_INO || ro.parent == INVALID_INO) {
            is.replyError(Error::NoSuchFile);
            return;
        }
        ResolveResult rn = resolveCosted(newPath);
        if (rn.ino != INVALID_INO) {
            is.replyError(Error::FileExists);
            return;
        }
        if (rn.parent == INVALID_INO) {
            is.replyError(Error::NoSuchFile);
            return;
        }
        // Rename = insert under the new name, drop the old entry; the
        // inode and its extents are untouched.
        Error e = fs->dirInsert(rn.parent, rn.leafName, ro.ino);
        if (e == Error::None)
            e = fs->dirRemove(ro.parent, ro.leafName);
        env.compute(env.cm.m3.fsInodeOp);
        is.replyError(e);
    }

    void
    fsReaddir(GateIStream &is)
    {
        auto off = is.pull<uint64_t>();
        auto path = is.pull<std::string>();
        ResolveResult r = resolveCosted(path);
        if (r.ino == INVALID_INO) {
            is.replyError(Error::NoSuchFile);
            return;
        }
        std::vector<std::pair<inodeno_t, std::string>> entries;
        Error e = fs->dirList(r.ino, entries);
        if (e != Error::None) {
            is.replyError(e);
            return;
        }
        env.compute(entries.size() * 8);  // per-entry scan cost

        Marshaller m = is.replyStream();
        uint64_t count = 0;
        uint64_t end = std::min<uint64_t>(entries.size(),
                                          off + READDIR_CHUNK);
        if (off < entries.size())
            count = end - off;
        m << Error::None << count;
        for (uint64_t i = off; i < end; ++i)
            m << static_cast<uint64_t>(entries[i].first)
              << entries[i].second;
        m << static_cast<uint64_t>(end < entries.size() ? 1 : 0);
        is.replyStreamSend(m);
    }

    Env &env;
    ServerConfig cfg;
    MemGate fsMem;
    std::unique_ptr<BlockCache> cache;
    std::unique_ptr<FsCore> fs;
    RecvGate rgate;
    std::string metricPrefix;
    trace::Histogram *opCycles = nullptr;
    std::map<uint64_t, Session> sessions;
    uint64_t nextIdent = 1;
};

} // anonymous namespace

int
serverMain(const ServerConfig &cfg)
{
    Env &env = Env::cur();
    env.acct().push(Category::Os);
    Server server(env, cfg);
    int rc = server.run();
    env.acct().pop();
    return rc;
}

} // namespace m3fs
} // namespace m3
