#include "m3fs/distfs.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "dtu/dtu.hh"
#include "m3fs/fs_defs.hh"
#include "trace/trace.hh"

namespace m3
{
namespace m3fs
{

namespace
{

/** djb2: the placement hash. Must stay stable across runs and hosts. */
uint64_t
pathHash(const std::string &s)
{
    uint64_t h = 5381;
    for (char c : s)
        h = h * 33 + static_cast<uint8_t>(c);
    return h;
}

} // namespace

// ---------------------------------------------------------------------
// DistfsSession.
// ---------------------------------------------------------------------

std::shared_ptr<DistfsSession>
DistfsSession::create(Env &env, Error &err, const std::string &groupName,
                      uint32_t unitBlocks)
{
    // The group is registered once all member services announced
    // themselves; like the plain client, retry while the name is
    // unknown (boot races).
    uint64_t n = 0;
    for (int attempt = 0;; ++attempt) {
        err = env.querySrv(groupName, n);
        if (err != Error::NoSuchService || attempt >= 1000)
            break;
        Fiber::current()->sleep(500);
    }
    if (err != Error::None)
        return nullptr;
    if (n == 0) {
        err = Error::InvalidArgs;
        return nullptr;
    }

    auto sess = std::shared_ptr<DistfsSession>(new DistfsSession(
        env, static_cast<uint64_t>(unitBlocks) * DEFAULT_BLOCK_SIZE));
    sess->sharedReply = std::make_unique<RecvGate>(env, 4, FS_MSG_SIZE);
    for (uint64_t k = 0; k < n; ++k) {
        // OpenSess arg k makes the kernel route the session to group
        // member k; softFail turns a dead stripe into an error from
        // the operation instead of a client panic.
        auto s = M3fsSession::create(env, err, groupName, k,
                                     sess->sharedReply.get());
        if (!s)
            return nullptr;
        s->softFail = true;
        sess->sessions.push_back(std::move(s));
    }
    return sess;
}

Error
DistfsSession::mount(Env &env, const std::string &prefix,
                     const std::string &groupName, uint32_t unitBlocks)
{
    Error err = Error::None;
    auto sess = create(env, err, groupName, unitBlocks);
    if (err != Error::None)
        return err;
    return env.vfs().mount(prefix, sess);
}

uint32_t
DistfsSession::homeStripe(const std::string &path) const
{
    return static_cast<uint32_t>(pathHash(path) % sessions.size());
}

bool
DistfsSession::pipelinable() const
{
    for (const auto &s : sessions)
        if (s->callTimeout != 0)
            return false;
    return true;
}

Error
DistfsSession::fanout(
    const std::function<void(uint32_t, Marshaller &)> &build,
    const std::function<Error(uint32_t, GateIStream &)> &consume)
{
    ScopedCategory os(env.acct(), Category::Os);
    // The client-side call work (path handling, building the request)
    // happens once — the stripes receive copies of the same message.
    env.compute(env.cm.m3.fsClientCall);
    const uint32_t n = stripes();
    Error first = Error::None;
    uint32_t sent = 0;
    while (sent < n) {
        // Every outstanding reply needs a free ring slot.
        uint32_t batch = std::min(n - sent, sharedReply->slotCount());
        uint32_t expect = 0;
        for (uint32_t i = 0; i < batch; ++i) {
            uint32_t k = sent + i;
            Marshaller m = sessions[k]->opStream();
            build(k, m);
            Error se = sessions[k]->sendOp(m, k);
            if (se == Error::None)
                ++expect;
            else if (first == Error::None)
                first = se;
        }
        // Replies arrive in any order; the label names the stripe.
        for (uint32_t i = 0; i < expect; ++i) {
            Cycles t0 = env.platform.simulator().curCycle();
            env.waitMsgYielding(sharedReply->boundEp());
            env.acct().charge(env.platform.simulator().curCycle() - t0);
            env.compute(env.cm.m3.fetchMsg + env.cm.m3.unmarshal);
            GateIStream is = sharedReply->tryReceive();
            Error ce = consume(static_cast<uint32_t>(is.label()), is);
            if (ce != Error::None && first == Error::None)
                first = ce;
        }
        sent += batch;
    }
    return first;
}

std::unique_ptr<File>
DistfsSession::open(const std::string &path, uint32_t flags, Error &err)
{
    trace::ScopedSpan span(env.peId, "distfs:open");
    // The subfile carries the same path on every stripe; writes and
    // creates touch all of them so the namespaces stay mirrors.
    const uint32_t subFlags = flags & ~FILE_APPEND;
    std::vector<std::unique_ptr<M3fsFile>> subs(sessions.size());
    if (sessions.size() > 1 && pipelinable()) {
        err = fanout(
            [&](uint32_t, Marshaller &m) {
                m << FsOp::Open << static_cast<uint64_t>(subFlags) << path;
            },
            [&](uint32_t k, GateIStream &is) {
                Error e = is.pullError();
                if (e != Error::None)
                    return e;
                auto fid = is.pull<uint64_t>();
                auto sz = is.pull<uint64_t>();
                auto extents = is.pull<uint64_t>();
                subs[k] = std::make_unique<M3fsFile>(
                    sessions[k], static_cast<uint32_t>(fid), subFlags, sz,
                    static_cast<uint32_t>(extents));
                return Error::None;
            });
        if (err != Error::None)
            return nullptr;
    } else {
        for (uint32_t k = 0; k < sessions.size(); ++k) {
            auto f = sessions[k]->open(path, subFlags, err);
            if (!f)
                return nullptr;
            subs[k].reset(static_cast<M3fsFile *>(f.release()));
        }
    }
    auto file = std::make_unique<DistfsFile>(
        shared_from_this(), std::move(subs), homeStripe(path), flags);
    if (flags & FILE_APPEND)
        file->seek(0, SeekMode::End);
    err = Error::None;
    return file;
}

Error
DistfsSession::stat(const std::string &path, FileInfo &info)
{
    // Identity (inode, mode, links) comes from the home stripe; the
    // logical size is the sum over the stripes' subfiles.
    const uint32_t home = homeStripe(path);
    if (sessions.size() > 1 && pipelinable()) {
        FileInfo homeInfo{};
        uint64_t total = 0;
        uint64_t extents = 0;
        Error err = fanout(
            [&](uint32_t, Marshaller &m) { m << FsOp::Stat << path; },
            [&](uint32_t k, GateIStream &is) {
                Error e = is.pullError();
                if (e != Error::None)
                    return e;
                FileInfo fi;
                fi.ino = static_cast<uint32_t>(is.pull<uint64_t>());
                fi.mode = static_cast<uint32_t>(is.pull<uint64_t>());
                fi.links = static_cast<uint32_t>(is.pull<uint64_t>());
                fi.extents = static_cast<uint32_t>(is.pull<uint64_t>());
                fi.size = is.pull<uint64_t>();
                if (k == home)
                    homeInfo = fi;
                total += fi.size;
                extents += fi.extents;
                return Error::None;
            });
        if (err != Error::None)
            return err;
        info = homeInfo;
        if (info.isDir())
            return Error::None;
        info.size = total;
        info.extents = static_cast<uint32_t>(extents);
        return Error::None;
    }
    Error err = sessions[home]->stat(path, info);
    if (err != Error::None)
        return err;
    if (info.isDir())
        return Error::None;
    uint64_t total = 0;
    uint32_t extents = 0;
    for (uint32_t k = 0; k < sessions.size(); ++k) {
        FileInfo sub;
        err = sessions[k]->stat(path, sub);
        if (err != Error::None)
            return err;
        total += sub.size;
        extents += sub.extents;
    }
    info.size = total;
    info.extents = extents;
    return Error::None;
}

Error
DistfsSession::mkdir(const std::string &path)
{
    Error first = Error::None;
    for (auto &s : sessions) {
        Error e = s->mkdir(path);
        if (e != Error::None && first == Error::None)
            first = e;
    }
    return first;
}

Error
DistfsSession::unlink(const std::string &path)
{
    Error first = Error::None;
    for (auto &s : sessions) {
        Error e = s->unlink(path);
        if (e != Error::None && first == Error::None)
            first = e;
    }
    return first;
}

Error
DistfsSession::link(const std::string &oldPath, const std::string &newPath)
{
    Error first = Error::None;
    for (auto &s : sessions) {
        Error e = s->link(oldPath, newPath);
        if (e != Error::None && first == Error::None)
            first = e;
    }
    return first;
}

Error
DistfsSession::rename(const std::string &oldPath,
                      const std::string &newPath)
{
    Error first = Error::None;
    for (auto &s : sessions) {
        Error e = s->rename(oldPath, newPath);
        if (e != Error::None && first == Error::None)
            first = e;
    }
    return first;
}

Error
DistfsSession::readdir(const std::string &path,
                       std::vector<m3::DirEntry> &entries)
{
    // The namespaces mirror each other; ask the home stripe only.
    return sessions[homeStripe(path)]->readdir(path, entries);
}

// ---------------------------------------------------------------------
// DistfsFile.
// ---------------------------------------------------------------------

DistfsFile::DistfsFile(std::shared_ptr<DistfsSession> fs,
                       std::vector<std::unique_ptr<M3fsFile>> subs,
                       uint32_t rot, uint32_t flags)
    : fs(std::move(fs)), subs(std::move(subs)), rot(rot), flags(flags),
      size(0)
{
    // Sequential striping leaves no holes, so the logical size is the
    // sum of the subfile sizes.
    for (auto &f : this->subs)
        size += f->fileSize();
}

DistfsFile::~DistfsFile()
{
    // Close all subfiles in one fan-out wave; a subfile closed here is
    // skipped by its own destructor. The non-pipelined path keeps the
    // serial per-subfile close in ~M3fsFile.
    if (subs.size() > 1 && fs->pipelinable()) {
        trace::ScopedSpan span(fs->env.peId, "distfs:close");
        fs->fanout(
            [&](uint32_t k, Marshaller &m) { subs[k]->buildClose(m); },
            [](uint32_t, GateIStream &) { return Error::None; });
    }
}

ssize_t
DistfsFile::io(void *buf, size_t len, bool isWrite)
{
    Env &env = fs->env;
    ScopedCategory os(env.acct(), Category::Os);
    env.compute(env.cm.m3.fileOpPath);

    const uint64_t unitBytes = fs->unitBytes;
    const uint32_t nStripes = fs->stripes();
    uint8_t *bytes = static_cast<uint8_t *>(buf);
    size_t total = 0;
    while (total < len && (isWrite || pos + total < size)) {
        // Gather a batch: walk the placement map unit by unit and
        // collect one segment per unit run. The parallel engine
        // overlaps segments on distinct stripes and chains segments
        // that hit the same stripe's DRAM module on one transfer slot,
        // so gathering the whole request at once is safe.
        std::vector<XferSeg> segs;
        std::vector<uint32_t> subIdx;
        std::vector<uint64_t> subEnd;
        env.compute(env.cm.m3.fileLocate);
        uint64_t roundPos = pos + total;
        Error err = Error::None;
        while (pos + len > roundPos && (isWrite || roundPos < size)) {
            uint64_t u = roundPos / unitBytes;
            uint64_t inUnit = roundPos % unitBytes;
            uint32_t s = static_cast<uint32_t>((rot + u) % nStripes);
            uint64_t subOff = (u / nStripes) * unitBytes + inUnit;
            uint64_t want = std::min<uint64_t>(pos + len - roundPos,
                                               unitBytes - inUnit);
            if (!isWrite)
                want = std::min(want, size - roundPos);
            MemGate *gate = nullptr;
            uint64_t gateOff = 0;
            size_t chunk = 0;
            err = subs[s]->rawLocate(subOff, static_cast<size_t>(want),
                                     isWrite, gate, gateOff, chunk);
            if (err != Error::None || chunk == 0)
                break;
            segs.push_back(XferSeg{gate, bytes + (roundPos - pos), chunk,
                                   gateOff});
            subIdx.push_back(s);
            subEnd.push_back(subOff + chunk);
            roundPos += chunk;
        }
        if (segs.empty()) {
            if (err == Error::None || err == Error::EndOfFile)
                break;
            return total ? static_cast<ssize_t>(total)
                         : -static_cast<ssize_t>(err);
        }

        uint32_t n = static_cast<uint32_t>(segs.size());
        Error xe = isWrite ? parallelWrite(env, segs.data(), n)
                           : parallelRead(env, segs.data(), n);
        if (xe != Error::None)
            return total ? static_cast<ssize_t>(total)
                         : -static_cast<ssize_t>(xe);
        if (isWrite) {
            for (uint32_t i = 0; i < n; ++i)
                subs[subIdx[i]]->noteRawWrite(subEnd[i]);
        }
        total = static_cast<size_t>(roundPos - pos);
        if (isWrite && roundPos > size)
            size = roundPos;
    }
    pos += total;
    return static_cast<ssize_t>(total);
}

ssize_t
DistfsFile::read(void *buf, size_t len)
{
    if (!(flags & FILE_R))
        return -static_cast<ssize_t>(Error::NoPerm);
    trace::ScopedSpan span(fs->env.peId, "distfs:read");
    return io(buf, len, false);
}

ssize_t
DistfsFile::write(const void *buf, size_t len)
{
    if (!(flags & FILE_W))
        return -static_cast<ssize_t>(Error::NoPerm);
    trace::ScopedSpan span(fs->env.peId, "distfs:write");
    return io(const_cast<void *>(buf), len, true);
}

ssize_t
DistfsFile::seek(ssize_t off, SeekMode whence)
{
    Env &env = fs->env;
    ScopedCategory os(env.acct(), Category::Os);
    env.compute(env.cm.m3.fileLocate);
    int64_t target = 0;
    switch (whence) {
      case SeekMode::Set:
        target = off;
        break;
      case SeekMode::Cur:
        target = static_cast<int64_t>(pos) + off;
        break;
      case SeekMode::End:
        target = static_cast<int64_t>(size) + off;
        break;
    }
    if (target < 0)
        return -static_cast<ssize_t>(Error::InvalidArgs);
    pos = static_cast<uint64_t>(target);
    return static_cast<ssize_t>(pos);
}

Error
DistfsFile::stat(FileInfo &info)
{
    info = FileInfo{};
    info.mode = M_FILE;
    info.size = size;
    return Error::None;
}

} // namespace m3fs
} // namespace m3
