#include "m3fs/distfs.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "dtu/dtu.hh"
#include "m3fs/fs_defs.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace m3
{
namespace m3fs
{

namespace
{

/** djb2: the placement hash. Must stay stable across runs and hosts. */
uint64_t
pathHash(const std::string &s)
{
    uint64_t h = 5381;
    for (char c : s)
        h = h * 33 + static_cast<uint8_t>(c);
    return h;
}

std::string
joinPath(const std::string &dir, const std::string &name)
{
    return dir.back() == '/' ? dir + name : dir + "/" + name;
}

/** Rebuild: stream one subfile from a donor session to the spare. */
Error
copyFile(M3fsSession &src, const std::string &srcPath, M3fsSession &dst,
         const std::string &dstPath)
{
    Error err = Error::None;
    auto in = src.open(srcPath, FILE_R, err);
    if (!in)
        return err;
    auto out = dst.open(dstPath, FILE_W | FILE_CREATE, err);
    if (!out)
        return err;
    std::vector<uint8_t> buf(16384);
    for (;;) {
        ssize_t r = in->read(buf.data(), buf.size());
        if (r < 0)
            return static_cast<Error>(-r);
        if (r == 0)
            return Error::None;
        ssize_t w = out->write(buf.data(), static_cast<size_t>(r));
        if (w != r)
            return w < 0 ? static_cast<Error>(-w) : Error::NoSpace;
    }
}

} // namespace

// ---------------------------------------------------------------------
// DistfsSession.
// ---------------------------------------------------------------------

std::shared_ptr<DistfsSession>
DistfsSession::create(Env &env, Error &err, const std::string &groupName,
                      uint32_t unitBlocks)
{
    // The group is registered once all member services announced
    // themselves; like the plain client, retry while the name is
    // unknown (boot races).
    uint64_t n = 0;
    uint64_t reps = 1;
    for (int attempt = 0;; ++attempt) {
        err = env.querySrv(groupName, n, reps);
        if (err != Error::NoSuchService || attempt >= 1000)
            break;
        Fiber::current()->sleep(500);
    }
    if (err != Error::None)
        return nullptr;
    if (n == 0) {
        err = Error::InvalidArgs;
        return nullptr;
    }

    auto sess = std::shared_ptr<DistfsSession>(new DistfsSession(
        env, static_cast<uint64_t>(unitBlocks) * DEFAULT_BLOCK_SIZE));
    sess->sharedReply = std::make_unique<RecvGate>(env, 4, FS_MSG_SIZE);
    sess->replicas = static_cast<uint32_t>(
        std::min<uint64_t>(std::max<uint64_t>(reps, 1), n));
    sess->deadStripes.assign(static_cast<size_t>(n), false);
    for (uint64_t k = 0; k < n; ++k) {
        // OpenSess arg k makes the kernel route the session to group
        // member k; softFail turns a dead stripe into an error from
        // the operation instead of a client panic.
        auto s = M3fsSession::create(env, err, groupName, k,
                                     sess->sharedReply.get());
        if (!s)
            return nullptr;
        s->softFail = true;
        sess->sessions.push_back(std::move(s));
    }
    return sess;
}

Error
DistfsSession::mount(Env &env, const std::string &prefix,
                     const std::string &groupName, uint32_t unitBlocks)
{
    Error err = Error::None;
    auto sess = create(env, err, groupName, unitBlocks);
    if (err != Error::None)
        return err;
    return env.vfs().mount(prefix, sess);
}

uint32_t
DistfsSession::homeStripe(const std::string &path) const
{
    return static_cast<uint32_t>(pathHash(path) % sessions.size());
}

std::string
DistfsSession::replicaPath(const std::string &path, uint32_t s)
{
    return path + '\x01' + std::to_string(s);
}

void
DistfsSession::markDead(uint32_t k)
{
    if (k >= stripes() || deadStripes[k])
        return;
    deadStripes[k] = true;
    logtrace("distfs: stripe %u marked dead", k);
    if (M3_TRACE_ON)
        trace::Tracer::instant(env.peId, "distfs:stripe_dead");
    if (M3_METRICS_ON) {
        trace::Metrics::counter("distfs.stripe_deaths").inc();
        uint64_t d = 0;
        for (uint32_t i = 0; i < stripes(); ++i)
            d += deadStripes[i] ? 1 : 0;
        trace::Metrics::gauge("distfs.stripes_dead").set(d);
    }
}

bool
DistfsSession::pipelinable() const
{
    for (const auto &s : sessions)
        if (s->callTimeout != 0)
            return false;
    return true;
}

Error
DistfsSession::fanout(
    const std::function<void(uint32_t, Marshaller &)> &build,
    const std::function<Error(uint32_t, GateIStream &)> &consume,
    const std::function<bool(uint32_t)> &want)
{
    ScopedCategory os(env.acct(), Category::Os);
    // The client-side call work (path handling, building the request)
    // happens once — the stripes receive copies of the same message.
    env.compute(env.cm.m3.fsClientCall);
    const uint32_t n = stripes();
    // Only live stripes take part. On a replicated mount the reply
    // wait is timed: the only stripe that can stay silent past the
    // (generous) deadline is one whose server will never answer, so a
    // timeout marks the silent stripes dead and lets the caller
    // degrade instead of hanging the client.
    const bool timed = replicas > 1;
    std::vector<uint32_t> targets;
    targets.reserve(n);
    for (uint32_t k = 0; k < n; ++k)
        if (!deadStripes[k] && (!want || want(k)))
            targets.push_back(k);
    Error first = Error::None;
    size_t sent = 0;
    while (sent < targets.size()) {
        // Every outstanding reply needs a free ring slot.
        uint32_t batch =
            std::min<uint32_t>(static_cast<uint32_t>(targets.size() -
                                                     sent),
                               sharedReply->slotCount());
        std::vector<bool> pending(n, false);
        uint32_t outstanding = 0;
        for (uint32_t i = 0; i < batch; ++i) {
            uint32_t k = targets[sent + i];
            Marshaller m = sessions[k]->opStream();
            build(k, m);
            Error se = sessions[k]->sendOp(m, k);
            if (se == Error::None) {
                pending[k] = true;
                ++outstanding;
            } else if (timed && (se == Error::PeerGone ||
                                 se == Error::Timeout ||
                                 se == Error::NoCredits ||
                                 se == Error::RingFull ||
                                 se == Error::InvalidEp)) {
                // A channel that cannot even accept the request is a
                // dead stripe's: its unanswered predecessor never
                // refunded the credit / ring slot. Degrade.
                markDead(k);
            } else if (first == Error::None) {
                first = se;
            }
        }
        // Replies arrive in any order; the label names the stripe.
        while (outstanding) {
            Cycles t0 = env.platform.simulator().curCycle();
            Error we = Error::None;
            if (timed) {
                do
                    we = env.dtu().waitForMsg(sharedReply->boundEp(),
                                              degradedWait);
                while (we == Error::VpeMoved);
            } else {
                env.waitMsgYielding(sharedReply->boundEp());
            }
            env.acct().charge(env.platform.simulator().curCycle() - t0);
            if (we == Error::Timeout) {
                // Nothing more will arrive: the silent stripes are
                // dead. Mark them; the caller degrades to replicas.
                for (uint32_t k = 0; k < n; ++k)
                    if (pending[k])
                        markDead(k);
                break;
            }
            env.compute(env.cm.m3.fetchMsg + env.cm.m3.unmarshal);
            GateIStream is = sharedReply->tryReceive();
            uint32_t k = static_cast<uint32_t>(is.label());
            if (k >= n || !pending[k])
                continue;  // stale reply of a stripe given up on earlier
            pending[k] = false;
            --outstanding;
            Error ce = consume(k, is);
            if (ce != Error::None && first == Error::None)
                first = ce;
        }
        sent += batch;
    }
    return first;
}

std::unique_ptr<File>
DistfsSession::open(const std::string &path, uint32_t flags, Error &err)
{
    trace::ScopedSpan span(env.peId, "distfs:open");
    // The subfile carries the same path on every stripe; writes and
    // creates touch all of them so the namespaces stay mirrors.
    const uint32_t subFlags = flags & ~FILE_APPEND;
    const uint32_t n = stripes();
    std::vector<std::unique_ptr<M3fsFile>> subs(n);
    std::vector<std::unique_ptr<M3fsFile>> reps(
        static_cast<size_t>(n) * (replicas - 1));
    // A missing replica file is tolerated on plain opens: files
    // written before replication was enabled simply have no second
    // copy (their units stay unprotected).
    const bool optionalReplica = !(subFlags & FILE_CREATE);
    auto consumeOpen = [&](std::vector<std::unique_ptr<M3fsFile>> &out,
                           size_t idx, uint32_t k, GateIStream &is,
                           bool optional) {
        Error e = is.pullError();
        if (e != Error::None)
            return optional && e == Error::NoSuchFile ? Error::None : e;
        auto fid = is.pull<uint64_t>();
        auto sz = is.pull<uint64_t>();
        auto extents = is.pull<uint64_t>();
        out[idx] = std::make_unique<M3fsFile>(
            sessions[k], static_cast<uint32_t>(fid), subFlags, sz,
            static_cast<uint32_t>(extents));
        return Error::None;
    };
    if (n > 1 && pipelinable()) {
        err = fanout(
            [&](uint32_t, Marshaller &m) {
                m << FsOp::Open << static_cast<uint64_t>(subFlags) << path;
            },
            [&](uint32_t k, GateIStream &is) {
                return consumeOpen(subs, k, k, is, false);
            });
        if (err != Error::None)
            return nullptr;
        // Replica waves: wave r opens, on stripe k, the replica of the
        // units whose primary is stripe (k - r) mod n — one request
        // per stripe per wave keeps a single message in flight per
        // session channel.
        for (uint32_t r = 1; r < replicas; ++r) {
            err = fanout(
                [&](uint32_t k, Marshaller &m) {
                    m << FsOp::Open << static_cast<uint64_t>(subFlags)
                      << replicaPath(path, (k + n - r) % n);
                },
                [&](uint32_t k, GateIStream &is) {
                    uint32_t s = (k + n - r) % n;
                    return consumeOpen(reps,
                                       static_cast<size_t>(s) *
                                               (replicas - 1) +
                                           (r - 1),
                                       k, is, optionalReplica);
                });
            if (err != Error::None)
                return nullptr;
        }
    } else {
        for (uint32_t k = 0; k < n; ++k) {
            if (deadStripes[k])
                continue;
            Error oe = Error::None;
            auto f = sessions[k]->open(path, subFlags, oe);
            if (!f) {
                if (replicas > 1 && (oe == Error::PeerGone ||
                                     oe == Error::Timeout)) {
                    markDead(k);
                    continue;
                }
                err = oe;
                return nullptr;
            }
            subs[k].reset(static_cast<M3fsFile *>(f.release()));
        }
        for (uint32_t r = 1; r < replicas; ++r) {
            for (uint32_t k = 0; k < n; ++k) {
                if (deadStripes[k])
                    continue;
                uint32_t s = (k + n - r) % n;
                Error oe = Error::None;
                auto f =
                    sessions[k]->open(replicaPath(path, s), subFlags, oe);
                if (f) {
                    reps[static_cast<size_t>(s) * (replicas - 1) +
                         (r - 1)]
                        .reset(static_cast<M3fsFile *>(f.release()));
                    continue;
                }
                if (oe == Error::PeerGone || oe == Error::Timeout) {
                    markDead(k);
                    continue;
                }
                if (optionalReplica && oe == Error::NoSuchFile)
                    continue;
                err = oe;
                return nullptr;
            }
        }
    }
    // Every unit needs at least one live copy, or the data is gone.
    for (uint32_t s = 0; s < n; ++s) {
        bool have = !deadStripes[s] && subs[s];
        for (uint32_t c = 1; !have && c < replicas; ++c)
            have = reps[static_cast<size_t>(s) * (replicas - 1) +
                        (c - 1)] &&
                   !deadStripes[(s + c) % n];
        if (!have) {
            err = Error::PeerGone;
            return nullptr;
        }
    }
    auto file = std::make_unique<DistfsFile>(
        shared_from_this(), path, std::move(subs), std::move(reps),
        homeStripe(path), flags);
    if (flags & FILE_APPEND)
        file->seek(0, SeekMode::End);
    err = Error::None;
    return file;
}

Error
DistfsSession::addDeadCopySizes(const std::string &path, uint64_t &total,
                                uint64_t &extents)
{
    const uint32_t n = stripes();
    for (uint32_t s = 0; s < n; ++s) {
        if (!deadStripes[s])
            continue;
        for (uint32_t c = 1; c < replicas; ++c) {
            uint32_t host = (s + c) % n;
            if (deadStripes[host])
                continue;
            FileInfo sub;
            Error e = sessions[host]->stat(replicaPath(path, s), sub);
            if (e == Error::None) {
                total += sub.size;
                extents += sub.extents;
            } else if (e != Error::NoSuchFile) {
                // No replica file: the subfile predates replication,
                // nothing to add. Anything else is a real error.
                return e;
            }
            break;  // the first live replica host is authoritative
        }
    }
    return Error::None;
}

Error
DistfsSession::stat(const std::string &path, FileInfo &info)
{
    // Identity (inode, mode, links) comes from the home stripe — or,
    // degraded, the nearest live stripe; the logical size is the sum
    // over the stripes' subfiles, with dead stripes' shares read from
    // their replica files.
    const uint32_t n = stripes();
    const uint32_t home = homeStripe(path);
    if (n > 1 && pipelinable()) {
        FileInfo homeInfo{};
        bool sawHome = false;
        FileInfo fallback{};
        uint32_t fallbackK = n;
        uint64_t total = 0;
        uint64_t extents = 0;
        Error err = fanout(
            [&](uint32_t, Marshaller &m) { m << FsOp::Stat << path; },
            [&](uint32_t k, GateIStream &is) {
                Error e = is.pullError();
                if (e != Error::None)
                    return e;
                FileInfo fi;
                fi.ino = static_cast<uint32_t>(is.pull<uint64_t>());
                fi.mode = static_cast<uint32_t>(is.pull<uint64_t>());
                fi.links = static_cast<uint32_t>(is.pull<uint64_t>());
                fi.extents = static_cast<uint32_t>(is.pull<uint64_t>());
                fi.size = is.pull<uint64_t>();
                if (k == home) {
                    homeInfo = fi;
                    sawHome = true;
                } else if (k < fallbackK) {
                    fallback = fi;
                    fallbackK = k;
                }
                total += fi.size;
                extents += fi.extents;
                return Error::None;
            });
        if (err != Error::None)
            return err;
        if (!sawHome && fallbackK == n)
            return Error::PeerGone;
        info = sawHome ? homeInfo : fallback;
        if (info.isDir())
            return Error::None;
        err = addDeadCopySizes(path, total, extents);
        if (err != Error::None)
            return err;
        info.size = total;
        info.extents = static_cast<uint32_t>(extents);
        return Error::None;
    }
    // Serial fallback: one stat per stripe — identity from the home
    // stripe's own reply, which the summation below reuses instead of
    // paying a second round trip for it.
    Error err = Error::None;
    uint32_t idK = n;
    for (uint32_t i = 0; i < n && idK == n; ++i) {
        uint32_t k = (home + i) % n;
        if (deadStripes[k])
            continue;
        err = sessions[k]->stat(path, info);
        if (replicas > 1 &&
            (err == Error::PeerGone || err == Error::Timeout)) {
            markDead(k);
            continue;
        }
        if (err != Error::None)
            return err;
        idK = k;
    }
    if (idK == n)
        return err == Error::None ? Error::PeerGone : err;
    if (info.isDir())
        return Error::None;
    uint64_t total = info.size;
    uint64_t extents = info.extents;
    for (uint32_t k = 0; k < n; ++k) {
        if (k == idK || deadStripes[k])
            continue;
        FileInfo sub;
        err = sessions[k]->stat(path, sub);
        if (replicas > 1 &&
            (err == Error::PeerGone || err == Error::Timeout)) {
            markDead(k);
            continue;
        }
        if (err != Error::None)
            return err;
        total += sub.size;
        extents += sub.extents;
    }
    err = addDeadCopySizes(path, total, extents);
    if (err != Error::None)
        return err;
    info.size = total;
    info.extents = static_cast<uint32_t>(extents);
    return Error::None;
}

Error
DistfsSession::nsWave(
    const std::function<void(uint32_t, Marshaller &)> &build,
    const std::function<Error(uint32_t)> &serial, bool tolerateMissing)
{
    auto filter = [tolerateMissing](Error e) {
        return tolerateMissing && e == Error::NoSuchFile ? Error::None
                                                         : e;
    };
    if (sessions.size() > 1 && pipelinable())
        return fanout(build, [&](uint32_t, GateIStream &is) {
            return filter(is.pullError());
        });
    Error first = Error::None;
    for (uint32_t k = 0; k < sessions.size(); ++k) {
        if (deadStripes[k])
            continue;
        Error e = filter(serial(k));
        if (replicas > 1 &&
            (e == Error::PeerGone || e == Error::Timeout)) {
            markDead(k);
            continue;
        }
        if (e != Error::None && first == Error::None)
            first = e;
    }
    return first;
}

Error
DistfsSession::mkdir(const std::string &path)
{
    // Directories mirror on every stripe (replica files live in the
    // same directories), so no replica-name wave is needed.
    return nsWave(
        [&](uint32_t, Marshaller &m) { m << FsOp::Mkdir << path; },
        [&](uint32_t k) { return sessions[k]->mkdir(path); }, false);
}

Error
DistfsSession::unlink(const std::string &path)
{
    const uint32_t n = stripes();
    Error first = nsWave(
        [&](uint32_t, Marshaller &m) { m << FsOp::Unlink << path; },
        [&](uint32_t k) { return sessions[k]->unlink(path); }, false);
    // The replica-marked names ride their own waves (one request per
    // stripe per wave); files that predate replication have none.
    for (uint32_t r = 1; r < replicas; ++r) {
        Error e = nsWave(
            [&](uint32_t k, Marshaller &m) {
                m << FsOp::Unlink << replicaPath(path, (k + n - r) % n);
            },
            [&](uint32_t k) {
                return sessions[k]->unlink(
                    replicaPath(path, (k + n - r) % n));
            },
            true);
        if (e != Error::None && first == Error::None)
            first = e;
    }
    return first;
}

Error
DistfsSession::link(const std::string &oldPath, const std::string &newPath)
{
    const uint32_t n = stripes();
    Error first = nsWave(
        [&](uint32_t, Marshaller &m) {
            m << FsOp::Link << oldPath << newPath;
        },
        [&](uint32_t k) { return sessions[k]->link(oldPath, newPath); },
        false);
    for (uint32_t r = 1; r < replicas; ++r) {
        Error e = nsWave(
            [&](uint32_t k, Marshaller &m) {
                uint32_t s = (k + n - r) % n;
                m << FsOp::Link << replicaPath(oldPath, s)
                  << replicaPath(newPath, s);
            },
            [&](uint32_t k) {
                uint32_t s = (k + n - r) % n;
                return sessions[k]->link(replicaPath(oldPath, s),
                                         replicaPath(newPath, s));
            },
            true);
        if (e != Error::None && first == Error::None)
            first = e;
    }
    return first;
}

Error
DistfsSession::rename(const std::string &oldPath,
                      const std::string &newPath)
{
    const uint32_t n = stripes();
    Error first = nsWave(
        [&](uint32_t, Marshaller &m) {
            m << FsOp::Rename << oldPath << newPath;
        },
        [&](uint32_t k) { return sessions[k]->rename(oldPath, newPath); },
        false);
    for (uint32_t r = 1; r < replicas; ++r) {
        Error e = nsWave(
            [&](uint32_t k, Marshaller &m) {
                uint32_t s = (k + n - r) % n;
                m << FsOp::Rename << replicaPath(oldPath, s)
                  << replicaPath(newPath, s);
            },
            [&](uint32_t k) {
                uint32_t s = (k + n - r) % n;
                return sessions[k]->rename(replicaPath(oldPath, s),
                                           replicaPath(newPath, s));
            },
            true);
        if (e != Error::None && first == Error::None)
            first = e;
    }
    return first;
}

Error
DistfsSession::readdir(const std::string &path,
                       std::vector<m3::DirEntry> &entries)
{
    // The namespaces mirror each other; ask the home stripe — or, on a
    // degraded mount, the nearest live one. Replica-marked entries are
    // distfs-internal and stay hidden from the logical namespace.
    const uint32_t n = stripes();
    const uint32_t home = homeStripe(path);
    Error err = Error::PeerGone;
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t k = (home + i) % n;
        if (deadStripes[k])
            continue;
        err = sessions[k]->readdir(path, entries);
        if (replicas > 1 &&
            (err == Error::PeerGone || err == Error::Timeout)) {
            markDead(k);
            continue;
        }
        break;
    }
    if (err != Error::None)
        return err;
    if (replicas > 1)
        entries.erase(
            std::remove_if(entries.begin(), entries.end(),
                           [](const m3::DirEntry &de) {
                               return de.name.find('\x01') !=
                                      std::string::npos;
                           }),
            entries.end());
    return Error::None;
}

Error
DistfsSession::rebuild(uint32_t stripe, const std::string &srvName)
{
    const uint32_t n = stripes();
    if (stripe >= n || replicas < 2 || !deadStripes[stripe])
        return Error::InvalidArgs;
    trace::ScopedSpan span(env.peId, "distfs:rebuild");
    // A fresh plain session with the replacement server; it joins the
    // shared reply gate so fan-outs can address it once adopted.
    Error err = Error::None;
    auto fresh =
        M3fsSession::create(env, err, srvName, 0, sharedReply.get());
    if (!fresh)
        return err;
    fresh->softFail = true;

    // Walk the namespace of a live donor (the per-stripe namespaces
    // mirror each other): mirror the directories, re-materialize the
    // dead stripe's primary subfiles from their replicas, and the
    // replica files it hosts from the primaries they mirror.
    uint32_t donor = n;
    for (uint32_t i = 1; i < n && donor == n; ++i)
        if (!deadStripes[(stripe + i) % n])
            donor = (stripe + i) % n;
    if (donor == n)
        return Error::PeerGone;

    uint64_t files = 0;
    std::vector<std::string> dirs = {"/"};
    for (size_t di = 0; di < dirs.size(); ++di) {
        std::vector<m3::DirEntry> ents;
        err = sessions[donor]->readdir(dirs[di], ents);
        if (err != Error::None)
            return err;
        for (const m3::DirEntry &de : ents) {
            const std::string full = joinPath(dirs[di], de.name);
            FileInfo fi;
            err = sessions[donor]->stat(full, fi);
            if (err != Error::None)
                return err;
            if (fi.isDir()) {
                Error me = fresh->mkdir(full);
                if (me != Error::None && me != Error::FileExists)
                    return me;
                dirs.push_back(full);
                continue;
            }
            if (de.name.find('\x01') != std::string::npos) {
                // A replica file the donor hosts. Marked names are
                // per-stripe local (each stripe stores only the
                // replicas it hosts), so nothing here belongs on the
                // rebuilt instance; its own hosted replicas are
                // re-derived from the primaries below.
                continue;
            }
            // The rebuilt instance hosts the primary subfile of
            // @p stripe; its bytes live in the replica file on a
            // surviving neighbour. Files that predate replication have
            // no copy to restore from.
            for (uint32_t c = 1; c < replicas; ++c) {
                uint32_t host = (stripe + c) % n;
                if (deadStripes[host])
                    continue;
                Error ce = copyFile(*sessions[host],
                                    replicaPath(full, stripe), *fresh,
                                    full);
                if (ce != Error::None && ce != Error::NoSuchFile)
                    return ce;
                if (ce == Error::None)
                    ++files;
                break;
            }
            // It also hosts replica files: copy c of stripe
            // s = (stripe - c) mod n lands on @p stripe, and its bytes
            // are s's own primary subfile.
            for (uint32_t c = 1; c < replicas; ++c) {
                uint32_t s = (stripe + n - c) % n;
                if (s == stripe || deadStripes[s])
                    continue;
                Error ce = copyFile(*sessions[s], full, *fresh,
                                    replicaPath(full, s));
                if (ce != Error::None && ce != Error::NoSuchFile)
                    return ce;
                if (ce == Error::None)
                    ++files;
            }
        }
    }

    // Adopt: the rebuilt instance becomes stripe @p stripe. Files
    // already open keep their old (dead) handles; files opened from
    // now on use the rebuilt stripe.
    sessions[stripe] = std::move(fresh);
    deadStripes[stripe] = false;
    logtrace("distfs: stripe %u rebuilt onto %s (%llu subfiles)", stripe,
             srvName.c_str(), static_cast<unsigned long long>(files));
    if (M3_TRACE_ON)
        trace::Tracer::instant(env.peId, "distfs:rebuild_done");
    if (M3_METRICS_ON) {
        trace::Metrics::counter("distfs.rebuilds").inc();
        trace::Metrics::counter("distfs.rebuilt_files").add(files);
        uint64_t d = 0;
        for (uint32_t i = 0; i < n; ++i)
            d += deadStripes[i] ? 1 : 0;
        trace::Metrics::gauge("distfs.stripes_dead").set(d);
    }
    return Error::None;
}

// ---------------------------------------------------------------------
// DistfsFile.
// ---------------------------------------------------------------------

DistfsFile::DistfsFile(std::shared_ptr<DistfsSession> fs,
                       std::string path,
                       std::vector<std::unique_ptr<M3fsFile>> subs,
                       std::vector<std::unique_ptr<M3fsFile>> reps,
                       uint32_t rot, uint32_t flags)
    : fs(std::move(fs)), path(std::move(path)), subs(std::move(subs)),
      reps(std::move(reps)), rot(rot), flags(flags), size(0)
{
    // Sequential striping leaves no holes, so the logical size is the
    // sum of the per-stripe subfile sizes — each from its first live
    // copy (primary and replicas mirror byte for byte).
    for (uint32_t s = 0; s < this->subs.size(); ++s)
        if (M3fsFile *f = liveCopy(s))
            size += f->fileSize();
}

M3fsFile *
DistfsFile::copy(uint32_t s, uint32_t c) const
{
    const uint32_t n = static_cast<uint32_t>(subs.size());
    if (fs->deadStripes[(s + c) % n])
        return nullptr;
    if (c == 0)
        return subs[s].get();
    return reps[static_cast<size_t>(s) * (fs->replicas - 1) + (c - 1)]
        .get();
}

M3fsFile *
DistfsFile::liveCopy(uint32_t s) const
{
    for (uint32_t c = 0; c < fs->replicas; ++c)
        if (M3fsFile *f = copy(s, c))
            return f;
    return nullptr;
}

DistfsFile::~DistfsFile()
{
    const uint32_t n = static_cast<uint32_t>(subs.size());
    const uint32_t copies = fs->replicas;
    // Handles whose server died cannot be closed: drop them without
    // the Close round trip (their destructors would wait forever).
    for (uint32_t s = 0; s < n; ++s) {
        if (subs[s] && fs->deadStripes[s])
            subs[s]->abandon();
        for (uint32_t c = 1; c < copies; ++c) {
            auto &rep =
                reps[static_cast<size_t>(s) * (copies - 1) + (c - 1)];
            if (rep && fs->deadStripes[(s + c) % n])
                rep->abandon();
        }
    }
    // Close all subfiles in one fan-out wave per copy; a subfile
    // closed here is skipped by its own destructor. The non-pipelined
    // path keeps the serial per-subfile close in ~M3fsFile.
    if (n > 1 && fs->pipelinable()) {
        trace::ScopedSpan span(fs->env.peId, "distfs:close");
        fs->fanout(
            [&](uint32_t k, Marshaller &m) { subs[k]->buildClose(m); },
            [](uint32_t, GateIStream &) { return Error::None; },
            [&](uint32_t k) { return subs[k] != nullptr; });
        for (uint32_t r = 1; r < copies; ++r) {
            auto repFor = [&](uint32_t k) -> std::unique_ptr<M3fsFile> & {
                return reps[static_cast<size_t>((k + n - r) % n) *
                                (copies - 1) +
                            (r - 1)];
            };
            fs->fanout(
                [&](uint32_t k, Marshaller &m) {
                    repFor(k)->buildClose(m);
                },
                [](uint32_t, GateIStream &) { return Error::None; },
                [&](uint32_t k) { return repFor(k) != nullptr; });
        }
    }
}

ssize_t
DistfsFile::io(void *buf, size_t len, bool isWrite)
{
    Env &env = fs->env;
    ScopedCategory os(env.acct(), Category::Os);
    env.compute(env.cm.m3.fileOpPath);

    const uint64_t unitBytes = fs->unitBytes;
    const uint32_t nStripes = fs->stripes();
    const uint32_t copies = fs->replicas;
    uint8_t *bytes = static_cast<uint8_t *>(buf);
    size_t total = 0;
    while (total < len && (isWrite || pos + total < size)) {
        // Gather a batch: walk the placement map unit by unit and
        // collect one segment per unit run (per live copy when
        // mirroring writes). The parallel engine overlaps segments on
        // distinct stripes and chains segments that hit the same
        // stripe's DRAM module on one transfer slot, so gathering the
        // whole request at once is safe.
        std::vector<XferSeg> segs;
        std::vector<M3fsFile *> segFile;
        std::vector<uint64_t> segEnd;
        env.compute(env.cm.m3.fileLocate);
        uint64_t roundPos = pos + total;
        Error err = Error::None;
        while (pos + len > roundPos && (isWrite || roundPos < size)) {
            uint64_t u = roundPos / unitBytes;
            uint64_t inUnit = roundPos % unitBytes;
            uint32_t s = static_cast<uint32_t>((rot + u) % nStripes);
            uint64_t subOff = (u / nStripes) * unitBytes + inUnit;
            uint64_t want = std::min<uint64_t>(pos + len - roundPos,
                                               unitBytes - inUnit);
            if (!isWrite)
                want = std::min(want, size - roundPos);
            // The first live copy drives the run: its extent layout
            // bounds the chunk. PeerGone (or a timeout) from a copy's
            // metadata fetch means its server died — mark the stripe
            // dead and move to the next copy of the same unit.
            MemGate *gate = nullptr;
            uint64_t gateOff = 0;
            size_t chunk = 0;
            M3fsFile *drv = nullptr;
            uint32_t drvC = 0;
            err = Error::PeerGone;
            for (uint32_t c = 0; c < copies; ++c) {
                M3fsFile *f = copy(s, c);
                if (!f)
                    continue;
                err = f->rawLocate(subOff, static_cast<size_t>(want),
                                   isWrite, gate, gateOff, chunk);
                if (copies > 1 && (err == Error::PeerGone ||
                                   err == Error::Timeout)) {
                    fs->markDead((s + c) % nStripes);
                    continue;
                }
                drv = f;
                drvC = c;
                break;
            }
            if (err != Error::None || chunk == 0 || !drv)
                break;
            if (!isWrite && drvC > 0) {
                // The run is served by a replica: a degraded read.
                if (M3_METRICS_ON)
                    trace::Metrics::counter("distfs.degraded_reads")
                        .inc();
                if (M3_TRACE_ON)
                    trace::Tracer::instant(env.peId,
                                           "distfs:degraded_read");
            }
            const size_t baseSeg = segs.size();
            segs.push_back(XferSeg{gate, bytes + (roundPos - pos), chunk,
                                   gateOff});
            segFile.push_back(drv);
            segEnd.push_back(subOff + chunk);
            if (isWrite && copies > 1) {
                // Mirror the run onto every other live copy; a copy's
                // own extent layout may split it into several segments.
                for (uint32_t c = 0; c < copies && err == Error::None;
                     ++c) {
                    if (c == drvC)
                        continue;
                    M3fsFile *f = copy(s, c);
                    if (!f)
                        continue;
                    uint64_t done = 0;
                    while (done < chunk) {
                        MemGate *g2 = nullptr;
                        uint64_t o2 = 0;
                        size_t c2 = 0;
                        Error me =
                            f->rawLocate(subOff + done, chunk - done,
                                         true, g2, o2, c2);
                        if (me == Error::PeerGone ||
                            me == Error::Timeout) {
                            fs->markDead((s + c) % nStripes);
                            break;
                        }
                        if (me != Error::None || c2 == 0) {
                            err = me != Error::None ? me
                                                    : Error::NoSpace;
                            break;
                        }
                        segs.push_back(XferSeg{
                            g2, bytes + (roundPos - pos) + done, c2,
                            o2});
                        segFile.push_back(f);
                        segEnd.push_back(subOff + done + c2);
                        done += c2;
                    }
                }
                if (err != Error::None) {
                    // Drop this unit's segments so the retry after the
                    // already-gathered transfer hits the same error
                    // with an empty batch and surfaces it.
                    segs.resize(baseSeg);
                    segFile.resize(baseSeg);
                    segEnd.resize(baseSeg);
                    break;
                }
            }
            roundPos += chunk;
        }
        if (segs.empty()) {
            if (err == Error::None || err == Error::EndOfFile)
                break;
            return total ? static_cast<ssize_t>(total)
                         : -static_cast<ssize_t>(err);
        }

        uint32_t nseg = static_cast<uint32_t>(segs.size());
        Error xe = isWrite ? parallelWrite(env, segs.data(), nseg)
                           : parallelRead(env, segs.data(), nseg);
        if (xe != Error::None)
            return total ? static_cast<ssize_t>(total)
                         : -static_cast<ssize_t>(xe);
        if (isWrite) {
            for (uint32_t i = 0; i < nseg; ++i)
                segFile[i]->noteRawWrite(segEnd[i]);
        }
        total = static_cast<size_t>(roundPos - pos);
        if (isWrite && roundPos > size)
            size = roundPos;
    }
    pos += total;
    return static_cast<ssize_t>(total);
}

ssize_t
DistfsFile::read(void *buf, size_t len)
{
    if (!(flags & FILE_R))
        return -static_cast<ssize_t>(Error::NoPerm);
    trace::ScopedSpan span(fs->env.peId, "distfs:read");
    return io(buf, len, false);
}

ssize_t
DistfsFile::write(const void *buf, size_t len)
{
    if (!(flags & FILE_W))
        return -static_cast<ssize_t>(Error::NoPerm);
    trace::ScopedSpan span(fs->env.peId, "distfs:write");
    return io(const_cast<void *>(buf), len, true);
}

ssize_t
DistfsFile::seek(ssize_t off, SeekMode whence)
{
    Env &env = fs->env;
    ScopedCategory os(env.acct(), Category::Os);
    env.compute(env.cm.m3.fileLocate);
    int64_t target = 0;
    switch (whence) {
      case SeekMode::Set:
        target = off;
        break;
      case SeekMode::Cur:
        target = static_cast<int64_t>(pos) + off;
        break;
      case SeekMode::End:
        target = static_cast<int64_t>(size) + off;
        break;
    }
    if (target < 0)
        return -static_cast<ssize_t>(Error::InvalidArgs);
    pos = static_cast<uint64_t>(target);
    return static_cast<ssize_t>(pos);
}

Error
DistfsFile::stat(FileInfo &info)
{
    // Identity (inode, mode, links) from the namespace, like the
    // session's stat; the logical size from the client-side tracking
    // (the servers' sizes lag until Close truncates the generous
    // append allocations).
    Error err = fs->stat(path, info);
    if (err != Error::None)
        return err;
    if (!info.isDir())
        info.size = size;
    return Error::None;
}

} // namespace m3fs
} // namespace m3
