/**
 * @file
 * Host-side filesystem image construction: formats a region of the
 * platform DRAM and populates it with directories and files before the
 * simulation starts (the equivalent of shipping a prepared disk image).
 * Also used by tests to inspect and fsck the image afterwards.
 */

#ifndef M3_M3FS_FS_IMAGE_HH
#define M3_M3FS_FS_IMAGE_HH

#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "mem/dram.hh"
#include "m3fs/fs_core.hh"

namespace m3
{
namespace m3fs
{

/** Direct (functional, cost-free) access to the image in DRAM. */
class DramAccess : public BlockAccess
{
  public:
    DramAccess(Dram &dram, goff_t base) : dram(dram), base(base) {}

    void
    read(goff_t off, void *dst, size_t len) override
    {
        dram.read(base + off, dst, len);
    }

    void
    write(goff_t off, const void *src, size_t len) override
    {
        dram.write(base + off, src, len);
    }

  private:
    Dram &dram;
    goff_t base;
};

/** Description of a file to place into the image. */
struct FileSpec
{
    std::string path;
    std::vector<uint8_t> data;
    /** Cap on the extent length, for fragmentation experiments. */
    uint32_t blocksPerExtent = 0xffffffff;
};

/** Description of a whole image. */
struct FsImageSpec
{
    uint32_t totalBlocks = 16384;  //!< 16 MiB at 1 KiB blocks
    uint32_t totalInodes = 512;
    uint32_t blockSize = DEFAULT_BLOCK_SIZE;
    std::vector<std::string> dirs;
    std::vector<FileSpec> files;
};

/** A built filesystem image in DRAM. */
class FsImage
{
  public:
    FsImage(Dram &dram, goff_t base, const FsImageSpec &spec)
        : accessor(dram, base), fsCore(accessor),
          bytes(static_cast<uint64_t>(spec.totalBlocks) * spec.blockSize)
    {
        if (base + bytes > dram.size())
            fatal("filesystem image exceeds the DRAM");
        FsCore::format(accessor, spec.totalBlocks, spec.totalInodes,
                       spec.blockSize);
        if (!fsCore.load())
            panic("built image failed to load");
        for (const std::string &d : spec.dirs) {
            Error e = fsCore.createDir(d);
            if (e != Error::None)
                fatal("creating image dir '%s': %s", d.c_str(),
                      errorName(e));
        }
        for (const FileSpec &f : spec.files) {
            Error e = fsCore.createFile(f.path, f.data.data(),
                                        f.data.size(), f.blocksPerExtent);
            if (e != Error::None)
                fatal("creating image file '%s': %s", f.path.c_str(),
                      errorName(e));
        }
    }

    FsCore &core() { return fsCore; }
    uint64_t sizeBytes() const { return bytes; }

    /** Deterministic pseudo-random file contents. */
    static std::vector<uint8_t>
    patternData(size_t size, uint64_t seed)
    {
        Random rng(seed);
        std::vector<uint8_t> data(size);
        for (size_t i = 0; i < size; ++i)
            data[i] = static_cast<uint8_t>(rng.next());
        return data;
    }

  private:
    DramAccess accessor;
    FsCore fsCore;
    uint64_t bytes;
};

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_FS_IMAGE_HH
