/**
 * @file
 * distfs: a thin striping session layer over N independent m3fs server
 * instances. Each stripe is a plain m3fs server backed by its own DRAM
 * module; distfs places fixed-size units of each file round-robin
 * across the stripe set and issues the data movement for different
 * stripes in parallel (one DTU transfer slot per stripe run).
 *
 * Metadata stays entirely per-stripe: a file at logical path P is
 * backed by a subfile at the same path P on every stripe server, and
 * the placement of unit u is a pure function of (P, u) — no cross-
 * stripe coordination on the hot path. Namespace operations (mkdir,
 * unlink, ...) fan out to all stripes so the per-stripe namespaces
 * stay mirrors of each other.
 */

#ifndef M3_M3FS_DISTFS_HH
#define M3_M3FS_DISTFS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "m3fs/client.hh"

namespace m3
{
namespace m3fs
{

/** Default striping unit in blocks (8 KiB with 1 KiB blocks). */
static constexpr uint32_t DEFAULT_UNIT_BLOCKS = 8;

class DistfsFile;

/** A striped mount: one m3fs session per stripe, shared reply gate. */
class DistfsSession : public FileSystem,
                      public std::enable_shared_from_this<DistfsSession>
{
  public:
    /**
     * Resolve the stripe count of service group @p groupName via the
     * kernel (QuerySrv) and open one m3fs session per stripe. All
     * stripe sessions share one reply gate to stay within the PE's
     * endpoint budget, leaving the remaining endpoints free for the
     * per-stripe memory gates of in-flight transfers.
     */
    static std::shared_ptr<DistfsSession>
    create(Env &env, Error &err, const std::string &groupName = "distfs",
           uint32_t unitBlocks = DEFAULT_UNIT_BLOCKS);

    /** Convenience: create a striped session and mount it. */
    static Error mount(Env &env, const std::string &prefix,
                       const std::string &groupName = "distfs",
                       uint32_t unitBlocks = DEFAULT_UNIT_BLOCKS);

    uint32_t stripes() const
    {
        return static_cast<uint32_t>(sessions.size());
    }

    /**
     * The placement rotation of @p path: unit u of the file lives on
     * stripe (homeStripe + u) % stripes() at sub-file offset
     * (u / stripes()) * unitBytes + (offset % unitBytes). A pure
     * function of the path so every client computes the same layout.
     */
    uint32_t homeStripe(const std::string &path) const;

    M3fsSession &stripe(uint32_t k) { return *sessions[k]; }

    std::unique_ptr<File> open(const std::string &path, uint32_t flags,
                               Error &err) override;
    Error stat(const std::string &path, FileInfo &info) override;
    Error mkdir(const std::string &path) override;
    Error unlink(const std::string &path) override;
    Error link(const std::string &oldPath,
               const std::string &newPath) override;
    Error rename(const std::string &oldPath,
                 const std::string &newPath) override;
    Error readdir(const std::string &path,
                  std::vector<m3::DirEntry> &entries) override;

  private:
    friend class DistfsFile;

    DistfsSession(Env &env, uint64_t unitBytes)
        : env(env), unitBytes(unitBytes)
    {
    }

    /**
     * True when every stripe runs the block-forever call protocol
     * (callTimeout == 0). Only then may metadata fan-outs pipeline:
     * the timed-retry protocol owns the reply wait per session
     * (resend, backoff, session replay) and needs one request in
     * flight at a time.
     */
    bool pipelinable() const;

    /**
     * Pipelined metadata fan-out: send one request per stripe (built
     * by @p build, reply label = stripe index) and hand each reply to
     * @p consume as it arrives, in waves no larger than the shared
     * reply ring. The stripes' server round trips overlap instead of
     * queueing behind each other. Returns the first error from a send
     * or from @p consume; later replies are still drained so no stale
     * message survives into the next operation.
     */
    Error fanout(const std::function<void(uint32_t, Marshaller &)> &build,
                 const std::function<Error(uint32_t, GateIStream &)>
                     &consume);

    Env &env;
    uint64_t unitBytes;
    std::unique_ptr<RecvGate> sharedReply;
    std::vector<std::shared_ptr<M3fsSession>> sessions;
};

/** An open striped file: one m3fs subfile per stripe. */
class DistfsFile : public File
{
  public:
    DistfsFile(std::shared_ptr<DistfsSession> fs,
               std::vector<std::unique_ptr<M3fsFile>> subs, uint32_t rot,
               uint32_t flags);
    ~DistfsFile() override;

    ssize_t read(void *buf, size_t len) override;
    ssize_t write(const void *buf, size_t len) override;
    ssize_t seek(ssize_t off, SeekMode whence) override;
    Error stat(FileInfo &info) override;

  private:
    ssize_t io(void *buf, size_t len, bool isWrite);

    std::shared_ptr<DistfsSession> fs;
    std::vector<std::unique_ptr<M3fsFile>> subs;  //!< one per stripe
    uint32_t rot;    //!< homeStripe(path): stripe of unit 0
    uint32_t flags;
    uint64_t size;   //!< logical size: sum of the subfile sizes
    uint64_t pos = 0;
};

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_DISTFS_HH
