/**
 * @file
 * distfs: a thin striping session layer over N independent m3fs server
 * instances. Each stripe is a plain m3fs server backed by its own DRAM
 * module; distfs places fixed-size units of each file round-robin
 * across the stripe set and issues the data movement for different
 * stripes in parallel (one DTU transfer slot per stripe run).
 *
 * Metadata stays entirely per-stripe: a file at logical path P is
 * backed by a subfile at the same path P on every stripe server, and
 * the placement of unit u is a pure function of (P, u) — no cross-
 * stripe coordination on the hot path. Namespace operations (mkdir,
 * unlink, ...) fan out to all stripes so the per-stripe namespaces
 * stay mirrors of each other.
 *
 * Replication (opt-in, advertised by the kernel through the service
 * group): with factor R >= 2, the units whose primary lives on stripe
 * s are additionally mirrored onto stripes (s+r) % N for r < R, as a
 * byte-identical copy of stripe s's subfile stored under the replica-
 * marked name replicaPath(P, s) on the neighbour. Writes fan each
 * gathered run out to every live copy on the same parallel transfer
 * slots; reads go primary-first and fall back to the next copy when
 * the primary's server is dead, so a single stripe kill degrades the
 * mount instead of surfacing PeerGone. rebuild() re-mirrors a dead
 * stripe's subfiles onto a replacement server from the surviving
 * copies.
 */

#ifndef M3_M3FS_DISTFS_HH
#define M3_M3FS_DISTFS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "m3fs/client.hh"

namespace m3
{
namespace m3fs
{

/** Default striping unit in blocks (8 KiB with 1 KiB blocks). */
static constexpr uint32_t DEFAULT_UNIT_BLOCKS = 8;

class DistfsFile;

/** A striped mount: one m3fs session per stripe, shared reply gate. */
class DistfsSession : public FileSystem,
                      public std::enable_shared_from_this<DistfsSession>
{
  public:
    /**
     * Resolve the stripe count and replication factor of service group
     * @p groupName via the kernel (QuerySrv) and open one m3fs session
     * per stripe. All stripe sessions share one reply gate to stay
     * within the PE's endpoint budget, leaving the remaining endpoints
     * free for the per-stripe memory gates of in-flight transfers.
     */
    static std::shared_ptr<DistfsSession>
    create(Env &env, Error &err, const std::string &groupName = "distfs",
           uint32_t unitBlocks = DEFAULT_UNIT_BLOCKS);

    /** Convenience: create a striped session and mount it. */
    static Error mount(Env &env, const std::string &prefix,
                       const std::string &groupName = "distfs",
                       uint32_t unitBlocks = DEFAULT_UNIT_BLOCKS);

    uint32_t stripes() const
    {
        return static_cast<uint32_t>(sessions.size());
    }

    /** The mirroring factor R advertised by the kernel (1 = off). */
    uint32_t replicaFactor() const { return replicas; }

    /**
     * The placement rotation of @p path: unit u of the file lives on
     * stripe (homeStripe + u) % stripes() at sub-file offset
     * (u / stripes()) * unitBytes + (offset % unitBytes). A pure
     * function of the path so every client computes the same layout.
     * Copy r of the unit is mirrored onto stripe (homeStripe + u + r)
     * % stripes() at the same sub-file offset, under the replica-
     * marked name of the unit's primary stripe.
     */
    uint32_t homeStripe(const std::string &path) const;

    /**
     * The per-stripe name of the replica of stripe @p s's subfile of
     * @p path: the path with a 0x01 marker byte (never part of a user
     * name) and the primary stripe's index appended to the final
     * component. Lives on stripes (s+r) % N, r = 1..R-1. The suffix
     * rides the component-name budget, so replicated mounts need leaf
     * names a few bytes under MAX_NAME_LEN.
     */
    static std::string replicaPath(const std::string &path, uint32_t s);

    /** Whether stripe @p k has been found dead (degraded mount). */
    bool stripeDead(uint32_t k) const { return deadStripes[k]; }

    /**
     * Record stripe @p k's server as dead: fan-outs skip it and reads
     * of its units degrade to their replicas. Called internally when a
     * kernel-mediated exchange answers PeerGone or a fan-out reply
     * deadline passes; public so fault-free tests can force a degraded
     * mount deterministically.
     */
    void markDead(uint32_t k);

    /**
     * Re-mirror dead stripe @p stripe onto the (empty) replacement
     * m3fs instance @p srvName: walk the namespace from a live donor,
     * mirror the directories, copy the stripe's primary subfiles back
     * from their replicas and the replica files it hosts back from
     * their primaries, then swap the replacement in as stripe
     * @p stripe and clear its dead mark. Requires R >= 2 and no files
     * of this mount open during the rebuild; files opened afterwards
     * use the rebuilt stripe.
     */
    Error rebuild(uint32_t stripe, const std::string &srvName);

    M3fsSession &stripe(uint32_t k) { return *sessions[k]; }

    /**
     * Reply deadline of a fan-out wave on a replicated mount: a stripe
     * that stays silent this long is marked dead. Generous — several
     * hundred server round trips — so the only way to miss it is to
     * never answer. Unreplicated mounts keep the untimed wait (and
     * their exact cycle counts).
     */
    Cycles degradedWait = 150000;

    std::unique_ptr<File> open(const std::string &path, uint32_t flags,
                               Error &err) override;
    Error stat(const std::string &path, FileInfo &info) override;
    Error mkdir(const std::string &path) override;
    Error unlink(const std::string &path) override;
    Error link(const std::string &oldPath,
               const std::string &newPath) override;
    Error rename(const std::string &oldPath,
                 const std::string &newPath) override;
    Error readdir(const std::string &path,
                  std::vector<m3::DirEntry> &entries) override;

  private:
    friend class DistfsFile;

    DistfsSession(Env &env, uint64_t unitBytes)
        : env(env), unitBytes(unitBytes)
    {
    }

    /**
     * True when every stripe runs the block-forever call protocol
     * (callTimeout == 0). Only then may metadata fan-outs pipeline:
     * the timed-retry protocol owns the reply wait per session
     * (resend, backoff, session replay) and needs one request in
     * flight at a time.
     */
    bool pipelinable() const;

    /**
     * Pipelined metadata fan-out: send one request per live stripe
     * (built by @p build, reply label = stripe index) and hand each
     * reply to @p consume as it arrives, in waves no larger than the
     * shared reply ring. The stripes' server round trips overlap
     * instead of queueing behind each other. On a replicated mount the
     * reply wait is timed: stripes silent past degradedWait are marked
     * dead (their replies never invoke @p consume) instead of hanging
     * the client. @p want can exclude stripes from the wave (e.g. no
     * open subfile to close there). Returns the first error from a
     * send or from @p consume; later replies are still drained so no
     * stale message survives into the next operation.
     */
    Error fanout(const std::function<void(uint32_t, Marshaller &)> &build,
                 const std::function<Error(uint32_t, GateIStream &)>
                     &consume,
                 const std::function<bool(uint32_t)> &want = nullptr);

    /**
     * One namespace operation on every live stripe: the pipelined
     * fan-out when possible, else a serial loop with soft dead-stripe
     * handling. @p tolerateMissing turns NoSuchFile into success
     * (replica-name waves of files that predate replication).
     */
    Error nsWave(const std::function<void(uint32_t, Marshaller &)> &build,
                 const std::function<Error(uint32_t)> &serial,
                 bool tolerateMissing);

    /**
     * Degraded stat support: add the subfile sizes of dead stripes,
     * read from their replica files on the surviving neighbours.
     */
    Error addDeadCopySizes(const std::string &path, uint64_t &total,
                           uint64_t &extents);

    Env &env;
    uint64_t unitBytes;
    uint32_t replicas = 1;
    std::unique_ptr<RecvGate> sharedReply;
    std::vector<std::shared_ptr<M3fsSession>> sessions;
    std::vector<bool> deadStripes;
};

/** An open striped file: one m3fs subfile per stripe and copy. */
class DistfsFile : public File
{
  public:
    DistfsFile(std::shared_ptr<DistfsSession> fs, std::string path,
               std::vector<std::unique_ptr<M3fsFile>> subs,
               std::vector<std::unique_ptr<M3fsFile>> reps, uint32_t rot,
               uint32_t flags);
    ~DistfsFile() override;

    ssize_t read(void *buf, size_t len) override;
    ssize_t write(const void *buf, size_t len) override;
    ssize_t seek(ssize_t off, SeekMode whence) override;
    Error stat(FileInfo &info) override;

  private:
    ssize_t io(void *buf, size_t len, bool isWrite);

    /**
     * Copy @p c of the units whose primary is stripe @p s: c == 0 is
     * the primary subfile on s itself, c >= 1 the replica file hosted
     * on stripe (s+c) % N. nullptr when the hosting stripe is dead or
     * the copy was never opened (no replica file, degraded open).
     */
    M3fsFile *copy(uint32_t s, uint32_t c) const;

    /** The first live copy of stripe @p s's units; nullptr if none. */
    M3fsFile *liveCopy(uint32_t s) const;

    std::shared_ptr<DistfsSession> fs;
    std::string path;
    std::vector<std::unique_ptr<M3fsFile>> subs;  //!< one per stripe
    /** Replica handles: reps[s * (R-1) + (r-1)] mirrors stripe s. */
    std::vector<std::unique_ptr<M3fsFile>> reps;
    uint32_t rot;    //!< homeStripe(path): stripe of unit 0
    uint32_t flags;
    uint64_t size;   //!< logical size: sum of the subfile sizes
    uint64_t pos = 0;
};

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_DISTFS_HH
