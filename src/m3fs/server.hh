/**
 * @file
 * The m3fs server: an OS service implemented as an application
 * (Sec. 4.5.1, 4.5.8). It registers with the kernel, serves meta-data
 * operations over its session channels, and hands out the locations of
 * file data as memory capabilities so clients read and write the data
 * directly, without involving the service.
 */

#ifndef M3_M3FS_SERVER_HH
#define M3_M3FS_SERVER_HH

#include <cstdint>
#include <string>

#include "base/types.hh"
#include "m3fs/fs_defs.hh"

namespace m3
{
namespace m3fs
{

/** Configuration of one server instance. */
struct ServerConfig
{
    /** Capability selector of the boot-granted fs-image memory cap. */
    capsel_t fsMemSel = 1;
    /** Size of the filesystem image in bytes. */
    uint64_t fsBytes = 0;
    /** Service name to register. */
    std::string name = "m3fs";
    /** Blocks appended per allocation (Sec. 5.5: 256 is the sweet spot). */
    uint32_t appendBlocks = DEFAULT_APPEND_BLOCKS;
    /** Meta-data cache size in blocks (SPM budget: ring + cache). */
    uint32_t cacheBlocks = 128;
    /**
     * If false, freshly allocated blocks are zeroed synchronously via a
     * DTU write instead of relying on the background zero-block pool
     * (ablation for the Sec. 5.4 design point).
     */
    bool backgroundZero = true;
};

/** Entry point of the server program (run as a boot VPE). */
int serverMain(const ServerConfig &cfg);

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_SERVER_HH
