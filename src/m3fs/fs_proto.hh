/**
 * @file
 * The session protocol between m3fs clients (libm3's file API) and the
 * m3fs server. Meta-data operations are direct messages on the session
 * channel; data locations are exchanged as memory capabilities through
 * the kernel (Sec. 4.5.8).
 */

#ifndef M3_M3FS_FS_PROTO_HH
#define M3_M3FS_FS_PROTO_HH

#include <cstdint>

namespace m3
{
namespace m3fs
{

/** Meta-data operations sent directly to the service. */
enum class FsOp : uint64_t
{
    Open,     //!< { Open, flags, path } -> { Error, fid, size, extents }
    Close,    //!< { Close, fid, finalSize } -> { Error }
    Stat,     //!< { Stat, path } -> { Error, ino, mode, links, ext, size }
    Mkdir,    //!< { Mkdir, path } -> { Error }
    Unlink,   //!< { Unlink, path } -> { Error }
    Link,     //!< { Link, oldPath, newPath } -> { Error }
    Readdir,  //!< { Readdir, off, path }
              //!< -> { Error, count, {ino, name}..., more }
    Rename,   //!< { Rename, oldPath, newPath } -> { Error }
};

/**
 * Capability exchanges over the session (kernel-mediated). args[0] is
 * one of these opcodes.
 */
enum class FsXchg : uint64_t
{
    GetChannel, //!< obtain the session's send gate: args { GetChannel }
    FetchLoc,   //!< obtain the mem cap of one extent:
                //!< args { FetchLoc, fid, extIdx } -> ret { lenBytes }
    Append,     //!< allocate + obtain a new extent:
                //!< args { Append, fid, blocks }
                //!< -> ret { lenBytes, extIdx }
};

/** Slot size of the m3fs request ring (max request size). */
static constexpr uint32_t FS_MSG_SIZE = 512;

/** Directory entries per Readdir reply chunk. */
static constexpr uint32_t READDIR_CHUNK = 8;

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_FS_PROTO_HH
