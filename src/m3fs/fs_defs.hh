/**
 * @file
 * The on-disk (in-DRAM) format of m3fs (Sec. 4.5.8): a classical UNIX
 * layout — superblock, inode and block bitmaps, inode table, directories
 * with pointers to inodes — with extent-based file data so contiguous
 * pieces of memory can be handed out as memory capabilities.
 */

#ifndef M3_M3FS_FS_DEFS_HH
#define M3_M3FS_FS_DEFS_HH

#include <cstdint>

#include "base/types.hh"

namespace m3
{
namespace m3fs
{

static constexpr uint32_t FS_MAGIC = 0x4d334653;  // "M3FS"

/** Default block size (Sec. 5.4: m3fs used 1 KiB blocks). */
static constexpr uint32_t DEFAULT_BLOCK_SIZE = 1024;

/** Number of direct extent slots in an inode. */
static constexpr uint32_t INODE_DIRECT = 6;

/** Blocks a write appends at once to bound fragmentation (Sec. 5.5). */
static constexpr uint32_t DEFAULT_APPEND_BLOCKS = 256;

using blockno_t = uint32_t;
using inodeno_t = uint32_t;

static constexpr inodeno_t INVALID_INO = 0xffffffff;

/** A contiguous run of blocks (Sec. 4.5.8). */
struct Extent
{
    blockno_t start = 0;  //!< first block (0 = unused slot)
    uint32_t len = 0;     //!< number of blocks
};

/** The superblock, stored in block 0. */
struct SuperBlock
{
    uint32_t magic;
    uint32_t blockSize;
    uint32_t totalBlocks;
    uint32_t totalInodes;
    blockno_t ibmStart;    //!< inode bitmap
    uint32_t ibmBlocks;
    blockno_t bbmStart;    //!< block bitmap
    uint32_t bbmBlocks;
    blockno_t itabStart;   //!< inode table
    uint32_t itabBlocks;
    blockno_t dataStart;   //!< first data block
    inodeno_t rootIno;
    blockno_t allocHint;   //!< next-fit pointer for block allocation

    bool valid() const { return magic == FS_MAGIC; }
};

/**
 * An inode. The data is referenced by a "tree of tables containing
 * extents" (Sec. 4.5.8): INODE_DIRECT direct slots, one indirect block
 * full of extents, and one double-indirect block of pointers to further
 * extent blocks.
 */
struct Inode
{
    inodeno_t ino;
    uint32_t mode;        //!< M_FILE or M_DIR
    uint32_t links;
    uint32_t extents;     //!< number of used extent slots
    uint64_t size;        //!< bytes
    Extent direct[INODE_DIRECT];
    blockno_t indirect;   //!< block of Extent entries, 0 if none
    blockno_t dindirect;  //!< block of blocknos of Extent blocks
};

static constexpr uint32_t INODE_SIZE = 128;
static_assert(sizeof(Inode) <= INODE_SIZE, "inode exceeds its slot");

/** A fixed-size directory entry. */
struct DirEntry
{
    inodeno_t ino;     //!< INVALID_INO marks a free slot
    uint8_t nameLen;
    char name[27];
};

static constexpr uint32_t DIRENTRY_SIZE = 32;
static_assert(sizeof(DirEntry) == DIRENTRY_SIZE, "unexpected padding");

/** Maximum file-name component length. */
static constexpr uint32_t MAX_NAME_LEN = 27;

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_FS_DEFS_HH
