#include "m3fs/client.hh"

#include "base/logging.hh"
#include "libm3/vpe.hh"
#include "m3fs/fs_defs.hh"

namespace m3
{
namespace m3fs
{

// ---------------------------------------------------------------------
// M3fsSession.
// ---------------------------------------------------------------------

M3fsSession::M3fsSession(Env &env, capsel_t sessSel, std::string srvName)
    : env(env), sessSel(sessSel), srvName(std::move(srvName))
{
}

std::shared_ptr<M3fsSession>
M3fsSession::create(Env &env, Error &err, const std::string &srvName,
                    uint64_t openArg, RecvGate *sharedReply)
{
    capsel_t sessSel = env.allocSels();
    // The service may still be booting (service registration and client
    // start race at boot); retry while the name is unknown.
    for (int attempt = 0;; ++attempt) {
        err = env.openSess(sessSel, srvName, openArg);
        if (err != Error::NoSuchService || attempt >= 1000)
            break;
        Fiber::current()->sleep(500);
    }
    if (err != Error::None)
        return nullptr;

    auto sess = std::shared_ptr<M3fsSession>(
        new M3fsSession(env, sessSel, srvName));
    sess->openArg = openArg;
    if (sharedReply)
        sess->extReply = sharedReply;
    else
        sess->replyGate = std::make_unique<RecvGate>(env, 4, FS_MSG_SIZE);

    // Obtain the session's send gate from the service (Sec. 4.5.3).
    capsel_t sgateSel = env.allocSels();
    std::vector<uint64_t> ret;
    err = env.exchangeSess(
        sessSel, kif::ExchangeOp::Obtain, sgateSel, 1,
        {static_cast<uint64_t>(FsXchg::GetChannel)}, &ret);
    if (err != Error::None)
        return nullptr;
    sess->channel = std::make_unique<SendGate>(env, sgateSel, FS_MSG_SIZE,
                                               true);
    return sess;
}

Error
M3fsSession::mount(Env &env, const std::string &prefix,
                   const std::string &srvName)
{
    Error err = Error::None;
    auto sess = create(env, err, srvName);
    if (err != Error::None)
        return err;
    return env.vfs().mount(prefix, sess);
}

M3fsSession::~M3fsSession() = default;

Error
M3fsSession::delegateTo(VPE &vpe, capsel_t dstStart)
{
    Error e = vpe.delegate(sessSel, 1, dstStart);
    if (e != Error::None)
        return e;
    return vpe.delegate(channel->capSel(), 1, dstStart + 1);
}

Error
M3fsSession::bindMount(Env &env, const std::string &prefix,
                       capsel_t selStart)
{
    // Bound sessions cannot re-open: the service name stayed with the
    // parent, and re-opening would bypass the delegation.
    auto sess = std::shared_ptr<M3fsSession>(
        new M3fsSession(env, selStart, ""));
    sess->replyGate = std::make_unique<RecvGate>(env, 4, FS_MSG_SIZE);
    sess->channel = std::make_unique<SendGate>(env, selStart + 1,
                                               FS_MSG_SIZE, true);
    return env.vfs().mount(prefix, sess);
}

GateIStream
M3fsSession::call(Marshaller &m)
{
    ScopedCategory os(env.acct(), Category::Os);
    env.compute(env.cm.m3.fsClientCall);
    lastCallError = Error::None;
    if (callTimeout == 0)
        return channel->call(m, reply());

    // Save the request host-side: a session re-open replaces the channel
    // and thereby the staging buffer the request lives in.
    const uint32_t size = static_cast<uint32_t>(m.size());
    std::vector<uint8_t> saved(channel->stagePtr(),
                               channel->stagePtr() + size);

    SendGate::RetryPolicy p;
    p.maxAttempts = callRetries + 1;
    p.replyTimeout = callTimeout;
    channel->setRetry(p);
    Error err = Error::None;
    {
        GateIStream is = channel->callTimed(m, reply(), err);
        if (err == Error::None)
            return is;
    }

    // The channel is dead (requests or replies keep getting lost, or the
    // server's view of the session is gone): open a fresh session and
    // replay the request once.
    if (srvName.empty()) {
        if (softFail) {
            lastCallError = err;
            return GateIStream(reply(), -1);
        }
        panic("m3fs: channel dead on a bound session (cannot re-open): %s",
              errorName(err));
    }
    Error re = reopen();
    if (re != Error::None) {
        if (softFail) {
            lastCallError = re;
            return GateIStream(reply(), -1);
        }
        panic("m3fs: session re-open failed: %s", errorName(re));
    }
    std::memcpy(channel->stagePtr(), saved.data(), size);
    Marshaller replay(channel->stagePtr(), channel->maxMsg());
    replay.setSize(size);
    channel->setRetry(p);
    GateIStream is = channel->callTimed(replay, reply(), err);
    if (err != Error::None) {
        if (softFail) {
            lastCallError = err;
            return GateIStream(reply(), -1);
        }
        panic("m3fs: request replay after re-open failed: %s",
              errorName(err));
    }
    return is;
}

Error
M3fsSession::reopen()
{
    capsel_t newSess = env.allocSels();
    Error err = env.openSess(newSess, srvName, openArg);
    if (err != Error::None)
        return err;
    sessSel = newSess;
    capsel_t sgateSel = env.allocSels();
    std::vector<uint64_t> ret;
    err = env.exchangeSess(sessSel, kif::ExchangeOp::Obtain, sgateSel, 1,
                           {static_cast<uint64_t>(FsXchg::GetChannel)},
                           &ret);
    if (err != Error::None)
        return err;
    channel = std::make_unique<SendGate>(env, sgateSel, FS_MSG_SIZE, true);
    return Error::None;
}

Marshaller
M3fsSession::opStream()
{
    return channel->ostream();
}

Error
M3fsSession::sendOp(Marshaller &m, label_t label)
{
    // No fsClientCall charge here: a fan-out broadcasts one request, so
    // the caller pays the client-side call work once; each stripe's copy
    // costs only the marshalling and the DTU command (inside send()).
    ScopedCategory os(env.acct(), Category::Os);
    lastCallError = Error::None;
    return channel->send(m, &reply(), label);
}

Error
M3fsSession::obtain(const std::vector<uint64_t> &args, capsel_t &capOut,
                    std::vector<uint64_t> &ret)
{
    env.compute(env.cm.m3.fsClientCall);
    capOut = env.allocSels();
    return env.exchangeSess(sessSel, kif::ExchangeOp::Obtain, capOut, 1,
                            args, &ret);
}

std::unique_ptr<File>
M3fsSession::open(const std::string &path, uint32_t flags, Error &err)
{
    Marshaller m = channel->ostream();
    m << FsOp::Open << static_cast<uint64_t>(flags) << path;
    GateIStream is = call(m);
    err = streamError(is);
    if (err != Error::None)
        return nullptr;
    auto fid = is.pull<uint64_t>();
    auto size = is.pull<uint64_t>();
    auto extents = is.pull<uint64_t>();
    auto file = std::make_unique<M3fsFile>(
        shared_from_this(), static_cast<uint32_t>(fid), flags, size,
        static_cast<uint32_t>(extents));
    if (flags & FILE_APPEND)
        file->seek(0, SeekMode::End);
    return file;
}

Error
M3fsSession::stat(const std::string &path, FileInfo &info)
{
    Marshaller m = channel->ostream();
    m << FsOp::Stat << path;
    GateIStream is = call(m);
    Error err = streamError(is);
    if (err != Error::None)
        return err;
    info.ino = static_cast<uint32_t>(is.pull<uint64_t>());
    info.mode = static_cast<uint32_t>(is.pull<uint64_t>());
    info.links = static_cast<uint32_t>(is.pull<uint64_t>());
    info.extents = static_cast<uint32_t>(is.pull<uint64_t>());
    info.size = is.pull<uint64_t>();
    return Error::None;
}

Error
M3fsSession::mkdir(const std::string &path)
{
    Marshaller m = channel->ostream();
    m << FsOp::Mkdir << path;
    GateIStream is = call(m);
    return streamError(is);
}

Error
M3fsSession::unlink(const std::string &path)
{
    Marshaller m = channel->ostream();
    m << FsOp::Unlink << path;
    GateIStream is = call(m);
    return streamError(is);
}

Error
M3fsSession::link(const std::string &oldPath, const std::string &newPath)
{
    Marshaller m = channel->ostream();
    m << FsOp::Link << oldPath << newPath;
    GateIStream is = call(m);
    return streamError(is);
}

Error
M3fsSession::rename(const std::string &oldPath,
                    const std::string &newPath)
{
    Marshaller m = channel->ostream();
    m << FsOp::Rename << oldPath << newPath;
    GateIStream is = call(m);
    return streamError(is);
}

Error
M3fsSession::readdir(const std::string &path,
                     std::vector<m3::DirEntry> &entries)
{
    uint64_t off = 0;
    for (;;) {
        Marshaller m = channel->ostream();
        m << FsOp::Readdir << off << path;
        GateIStream is = call(m);
        Error err = streamError(is);
        if (err != Error::None)
            return err;
        auto count = is.pull<uint64_t>();
        for (uint64_t i = 0; i < count; ++i) {
            m3::DirEntry de;
            de.ino = static_cast<uint32_t>(is.pull<uint64_t>());
            de.name = is.pull<std::string>();
            entries.push_back(std::move(de));
        }
        auto more = is.pull<uint64_t>();
        off += count;
        if (!more)
            return Error::None;
    }
}

// ---------------------------------------------------------------------
// M3fsFile.
// ---------------------------------------------------------------------

M3fsFile::M3fsFile(std::shared_ptr<M3fsSession> fs, uint32_t fid,
                   uint32_t flags, uint64_t size, uint32_t serverExtents)
    : fs(std::move(fs)), fid(fid), flags(flags), size(size),
      serverExtents(serverExtents)
{
}

M3fsFile::~M3fsFile()
{
    if (closed)
        return;
    // Close truncates the generous append allocation to the actually
    // used space (Sec. 4.5.8).
    Marshaller m = fs->channel->ostream();
    m << FsOp::Close << static_cast<uint64_t>(fid) << size;
    fs->call(m);
}

void
M3fsFile::buildClose(Marshaller &m)
{
    m << FsOp::Close << static_cast<uint64_t>(fid) << size;
    closed = true;
}

Error
M3fsFile::fetchNext()
{
    Env &env = fs->env;
    ScopedCategory os(env.acct(), Category::Os);
    capsel_t cap = INVALID_SEL;
    std::vector<uint64_t> ret;
    Error err = fs->obtain({static_cast<uint64_t>(FsXchg::FetchLoc),
                            fid, nextExtIdx},
                           cap, ret);
    if (err != Error::None)
        return err;
    if (ret.empty() || ret[0] == 0)
        return Error::EndOfFile;
    Loc loc;
    loc.gate = std::make_unique<MemGate>(env, cap, ret[0]);
    loc.fileOff = coveredBytes;
    loc.len = ret[0];
    coveredBytes += ret[0];
    locs.push_back(std::move(loc));
    nextExtIdx++;
    return Error::None;
}

Error
M3fsFile::append()
{
    Env &env = fs->env;
    ScopedCategory os(env.acct(), Category::Os);
    capsel_t cap = INVALID_SEL;
    std::vector<uint64_t> ret;
    Error err = fs->obtain({static_cast<uint64_t>(FsXchg::Append), fid,
                            fs->appendBlocks},
                           cap, ret);
    if (err != Error::None)
        return err;
    if (ret.size() < 2 || ret[0] == 0)
        return Error::NoSpace;
    Loc loc;
    loc.gate = std::make_unique<MemGate>(env, cap, ret[0]);
    loc.fileOff = coveredBytes;
    loc.len = ret[0];
    coveredBytes += ret[0];
    nextExtIdx = static_cast<uint32_t>(ret[1]) + 1;
    serverExtents = nextExtIdx;
    locs.push_back(std::move(loc));
    return Error::None;
}

M3fsFile::Loc *
M3fsFile::locate(uint64_t at, Error &err)
{
    err = Error::None;
    // Most accesses are sequential; check the last location first.
    if (!locs.empty()) {
        Loc &last = locs.back();
        if (at >= last.fileOff && at < last.fileOff + last.len)
            return &last;
    }
    for (Loc &l : locs)
        if (at >= l.fileOff && at < l.fileOff + l.len)
            return &l;
    // Not covered yet: fetch further extents from the service.
    while (at >= coveredBytes) {
        err = fetchNext();
        if (err != Error::None)
            return nullptr;
    }
    return locate(at, err);
}

ssize_t
M3fsFile::read(void *buf, size_t len)
{
    Env &env = fs->env;
    ScopedCategory os(env.acct(), Category::Os);
    if (!(flags & FILE_R))
        return -static_cast<ssize_t>(Error::NoPerm);
    env.compute(env.cm.m3.fileOpPath);

    uint8_t *out = static_cast<uint8_t *>(buf);
    size_t total = 0;
    while (total < len && pos < size) {
        env.compute(env.cm.m3.fileLocate);
        Error err = Error::None;
        Loc *loc = locate(pos, err);
        if (!loc)
            return total ? static_cast<ssize_t>(total)
                         : -static_cast<ssize_t>(err);
        uint64_t inLoc = pos - loc->fileOff;
        size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(len - total,
                               std::min(loc->len - inLoc, size - pos)));
        err = loc->gate->read(out + total, chunk, inLoc);
        if (err != Error::None)
            return -static_cast<ssize_t>(err);
        pos += chunk;
        total += chunk;
    }
    return static_cast<ssize_t>(total);
}

ssize_t
M3fsFile::write(const void *buf, size_t len)
{
    Env &env = fs->env;
    ScopedCategory os(env.acct(), Category::Os);
    if (!(flags & FILE_W))
        return -static_cast<ssize_t>(Error::NoPerm);
    env.compute(env.cm.m3.fileOpPath);

    const uint8_t *in = static_cast<const uint8_t *>(buf);
    size_t total = 0;
    while (total < len) {
        env.compute(env.cm.m3.fileLocate);
        Loc *loc = nullptr;
        Error err = Error::None;
        if (pos < coveredBytes) {
            loc = locate(pos, err);
        } else if (nextExtIdx < serverExtents) {
            err = fetchNext();
            if (err == Error::None)
                loc = locate(pos, err);
        } else {
            err = append();
            if (err == Error::None)
                loc = locate(pos, err);
        }
        if (!loc)
            return total ? static_cast<ssize_t>(total)
                         : -static_cast<ssize_t>(err);
        uint64_t inLoc = pos - loc->fileOff;
        size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(len - total, loc->len - inLoc));
        err = loc->gate->write(in + total, chunk, inLoc);
        if (err != Error::None)
            return -static_cast<ssize_t>(err);
        pos += chunk;
        total += chunk;
        if (pos > size)
            size = pos;
    }
    return static_cast<ssize_t>(total);
}

ssize_t
M3fsFile::seek(ssize_t off, SeekMode whence)
{
    Env &env = fs->env;
    ScopedCategory os(env.acct(), Category::Os);
    // Most seeks stay within the already obtained extents and are pure
    // client-side arithmetic (Sec. 4.5.8).
    env.compute(env.cm.m3.fileLocate);
    int64_t target = 0;
    switch (whence) {
      case SeekMode::Set:
        target = off;
        break;
      case SeekMode::Cur:
        target = static_cast<int64_t>(pos) + off;
        break;
      case SeekMode::End:
        target = static_cast<int64_t>(size) + off;
        break;
    }
    if (target < 0)
        return -static_cast<ssize_t>(Error::InvalidArgs);
    pos = static_cast<uint64_t>(target);
    return static_cast<ssize_t>(pos);
}

Error
M3fsFile::rawLocate(uint64_t at, size_t len, bool forWrite, MemGate *&gate,
                    uint64_t &gateOff, size_t &chunk)
{
    Env &env = fs->env;
    ScopedCategory os(env.acct(), Category::Os);
    // No per-call compute charge: the caller (distfs) charges one
    // fileLocate per gather round — the per-segment work is a lookup in
    // the already obtained locations; only metadata fetches below cost.
    Loc *loc = nullptr;
    Error err = Error::None;
    if (!forWrite) {
        if (at >= size)
            return Error::EndOfFile;
        loc = locate(at, err);
    } else {
        if (at < coveredBytes) {
            loc = locate(at, err);
        } else if (nextExtIdx < serverExtents) {
            err = fetchNext();
            if (err == Error::None)
                loc = locate(at, err);
        } else {
            err = append();
            if (err == Error::None)
                loc = locate(at, err);
        }
    }
    if (!loc)
        return err == Error::None ? Error::EndOfFile : err;
    uint64_t inLoc = at - loc->fileOff;
    uint64_t lim = loc->len - inLoc;
    if (!forWrite)
        lim = std::min(lim, size - at);
    gate = loc->gate.get();
    gateOff = inLoc;
    chunk = static_cast<size_t>(std::min<uint64_t>(len, lim));
    return Error::None;
}

Error
M3fsFile::stat(FileInfo &info)
{
    info = FileInfo{};
    info.mode = M_FILE;
    info.size = size;
    info.extents = serverExtents;
    return Error::None;
}

} // namespace m3fs
} // namespace m3
