/**
 * @file
 * The m3fs client: implements libm3's FileSystem/File interfaces on top
 * of a session with the m3fs server (Sec. 4.5.8). Meta-data operations
 * are messages to the service; data access goes directly to the memory
 * where the file is stored, through memory capabilities obtained
 * per extent.
 */

#ifndef M3_M3FS_CLIENT_HH
#define M3_M3FS_CLIENT_HH

#include <memory>
#include <vector>

#include "libm3/gates.hh"
#include "libm3/vfs.hh"
#include "m3fs/fs_defs.hh"
#include "m3fs/fs_proto.hh"

namespace m3
{

class VPE;

namespace m3fs
{

class M3fsFile;

/** A mounted m3fs instance: one session with the server. */
class M3fsSession : public FileSystem,
                    public std::enable_shared_from_this<M3fsSession>
{
  public:
    /**
     * Open a session with the service @p srvName and obtain the
     * session's communication channel. @p openArg is passed to OpenSess
     * (a striped group name resolves the stripe from it); with
     * @p sharedReply, replies arrive on that caller-owned gate instead
     * of a private one (distfs shares one reply gate across its stripe
     * sessions to stay within the endpoint budget).
     */
    static std::shared_ptr<M3fsSession> create(Env &env, Error &err,
                                               const std::string &srvName
                                               = "m3fs",
                                               uint64_t openArg = 0,
                                               RecvGate *sharedReply
                                               = nullptr);

    /** Convenience: create a session and mount it at @p prefix. */
    static Error mount(Env &env, const std::string &prefix,
                       const std::string &srvName = "m3fs");

    /** Default selectors for delegated mounts (clone/exec, Sec. 4.5.5). */
    static constexpr capsel_t MOUNT_SELS = 24;

    /**
     * Pass this mount to a child VPE: delegates the session capability
     * and the channel send gate to [dstStart, dstStart+2). The libm3 way
     * of making the filesystem available on the child without new
     * service round trips.
     */
    Error delegateTo(m3::VPE &vpe, capsel_t dstStart = MOUNT_SELS);

    /** Child side: bind to a delegated mount and mount it at @p prefix. */
    static Error bindMount(Env &env, const std::string &prefix,
                           capsel_t selStart = MOUNT_SELS);

    ~M3fsSession() override;

    std::unique_ptr<File> open(const std::string &path, uint32_t flags,
                               Error &err) override;
    Error stat(const std::string &path, FileInfo &info) override;
    Error mkdir(const std::string &path) override;
    Error unlink(const std::string &path) override;
    Error link(const std::string &oldPath,
               const std::string &newPath) override;
    Error rename(const std::string &oldPath,
                 const std::string &newPath) override;
    Error readdir(const std::string &path,
                  std::vector<m3::DirEntry> &entries) override;

    /**
     * Blocks a write requests per allocation (Sec. 5.5: the paper's
     * sweet spot of 256 is the default; Fig. 4 sweeps it).
     */
    uint32_t appendBlocks = DEFAULT_APPEND_BLOCKS;

    /**
     * Robustness knobs: with a non-zero callTimeout, each meta-data
     * call waits at most that many cycles for the reply and is resent
     * up to callRetries times (exponential backoff); if the channel
     * stays dead, the client opens a fresh session with the server and
     * replays the request once. Zero keeps the legacy block-forever
     * behaviour (and its exact cycle counts).
     */
    Cycles callTimeout = 0;
    uint32_t callRetries = 2;

    /**
     * With softFail set, a dead channel surfaces as an error from the
     * operation (lastCallError carries the cause, typically PeerGone)
     * instead of a panic. distfs uses this so one dead stripe degrades
     * the mount instead of killing the client.
     */
    bool softFail = false;
    Error lastCallError = Error::None;

    /** Open a fresh session + channel after the old one went dead. */
    Error reopen();

    /**
     * distfs pipelining: begin building a request on the session
     * channel. The caller sends it with sendOp() and collects the reply
     * itself from the shared reply gate, matched by @p label — several
     * stripes' round trips overlap instead of queueing behind each
     * other. Only meaningful with callTimeout == 0: the timed-retry
     * protocol needs the synchronous call() path (one request in
     * flight per session, resend and replay on loss).
     */
    Marshaller opStream();

    /** Send a request built with opStream(); the reply carries @p label. */
    Error sendOp(Marshaller &m, label_t label);

  private:
    friend class M3fsFile;

    M3fsSession(Env &env, capsel_t sessSel, std::string srvName);

    /** Synchronous meta-data call on the session channel. */
    GateIStream call(Marshaller &m);

    /** The reply gate calls use (shared or private). */
    RecvGate &reply() { return extReply ? *extReply : *replyGate; }

    /** Reply-stream error, folding in soft failures. */
    Error
    streamError(GateIStream &is)
    {
        return is.valid() ? is.pullError() : lastCallError;
    }

    /** Obtain one capability + return args over the session. */
    Error obtain(const std::vector<uint64_t> &args, capsel_t &capOut,
                 std::vector<uint64_t> &ret);

    Env &env;
    capsel_t sessSel;
    std::string srvName;  //!< empty for bound (delegated) sessions
    uint64_t openArg = 0;  //!< OpenSess arg (stripe index for groups)
    std::unique_ptr<RecvGate> replyGate;
    RecvGate *extReply = nullptr;  //!< caller-owned shared reply gate
    std::unique_ptr<SendGate> channel;
};

/** An open m3fs file. */
class M3fsFile : public File
{
  public:
    M3fsFile(std::shared_ptr<M3fsSession> fs, uint32_t fid, uint32_t flags,
             uint64_t size, uint32_t serverExtents);
    ~M3fsFile() override;

    ssize_t read(void *buf, size_t len) override;
    ssize_t write(const void *buf, size_t len) override;
    ssize_t seek(ssize_t off, SeekMode whence) override;
    Error stat(FileInfo &info) override;

    /**
     * distfs: resolve one contiguous run at @p at (up to @p len bytes)
     * to its memory gate without performing the transfer. Metadata
     * (extent locations, appends when @p forWrite) is fetched
     * synchronously as needed; the caller issues the data movement
     * itself, possibly in parallel with other stripes' runs.
     */
    Error rawLocate(uint64_t at, size_t len, bool forWrite,
                    MemGate *&gate, uint64_t &gateOff, size_t &chunk);

    /** distfs: grow the logical size after a raw write past the end. */
    void
    noteRawWrite(uint64_t endPos)
    {
        if (endPos > size)
            size = endPos;
    }

    /**
     * distfs: build this file's Close request for a pipelined fan-out
     * (the caller sends it and collects the reply); the destructor will
     * not send a second Close.
     */
    void buildClose(Marshaller &m);

    /**
     * distfs: drop the handle without sending Close — the server is
     * dead and a Close on its channel would wait forever. The generous
     * append allocation stays untruncated; a rebuild re-mirrors the
     * subfile from a replica anyway.
     */
    void abandon() { closed = true; }

    uint64_t fileSize() const { return size; }

  private:
    /** One obtained location: a memory capability over an extent. */
    struct Loc
    {
        std::unique_ptr<MemGate> gate;
        uint64_t fileOff;
        uint64_t len;
    };

    /** Find (or fetch) the location covering @p pos; nullptr at end. */
    Loc *locate(uint64_t pos, Error &err);

    /** Fetch the next not-yet-obtained extent location. */
    Error fetchNext();

    /** Allocate fresh blocks at the end of the file. */
    Error append();

    std::shared_ptr<M3fsSession> fs;
    uint32_t fid;
    uint32_t flags;
    uint64_t size;
    uint64_t pos = 0;
    uint32_t serverExtents;   //!< extents known to exist server-side
    bool closed = false;      //!< Close already sent (pipelined fan-out)
    uint32_t nextExtIdx = 0;  //!< next extent index to fetch
    uint64_t coveredBytes = 0; //!< bytes covered by obtained locations
    std::vector<Loc> locs;
};

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_CLIENT_HH
