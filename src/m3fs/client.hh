/**
 * @file
 * The m3fs client: implements libm3's FileSystem/File interfaces on top
 * of a session with the m3fs server (Sec. 4.5.8). Meta-data operations
 * are messages to the service; data access goes directly to the memory
 * where the file is stored, through memory capabilities obtained
 * per extent.
 */

#ifndef M3_M3FS_CLIENT_HH
#define M3_M3FS_CLIENT_HH

#include <memory>
#include <vector>

#include "libm3/gates.hh"
#include "libm3/vfs.hh"
#include "m3fs/fs_defs.hh"
#include "m3fs/fs_proto.hh"

namespace m3
{

class VPE;

namespace m3fs
{

class M3fsFile;

/** A mounted m3fs instance: one session with the server. */
class M3fsSession : public FileSystem,
                    public std::enable_shared_from_this<M3fsSession>
{
  public:
    /**
     * Open a session with the service @p srvName and obtain the
     * session's communication channel.
     */
    static std::shared_ptr<M3fsSession> create(Env &env, Error &err,
                                               const std::string &srvName
                                               = "m3fs");

    /** Convenience: create a session and mount it at @p prefix. */
    static Error mount(Env &env, const std::string &prefix,
                       const std::string &srvName = "m3fs");

    /** Default selectors for delegated mounts (clone/exec, Sec. 4.5.5). */
    static constexpr capsel_t MOUNT_SELS = 24;

    /**
     * Pass this mount to a child VPE: delegates the session capability
     * and the channel send gate to [dstStart, dstStart+2). The libm3 way
     * of making the filesystem available on the child without new
     * service round trips.
     */
    Error delegateTo(m3::VPE &vpe, capsel_t dstStart = MOUNT_SELS);

    /** Child side: bind to a delegated mount and mount it at @p prefix. */
    static Error bindMount(Env &env, const std::string &prefix,
                           capsel_t selStart = MOUNT_SELS);

    ~M3fsSession() override;

    std::unique_ptr<File> open(const std::string &path, uint32_t flags,
                               Error &err) override;
    Error stat(const std::string &path, FileInfo &info) override;
    Error mkdir(const std::string &path) override;
    Error unlink(const std::string &path) override;
    Error link(const std::string &oldPath,
               const std::string &newPath) override;
    Error rename(const std::string &oldPath,
                 const std::string &newPath) override;
    Error readdir(const std::string &path,
                  std::vector<m3::DirEntry> &entries) override;

    /**
     * Blocks a write requests per allocation (Sec. 5.5: the paper's
     * sweet spot of 256 is the default; Fig. 4 sweeps it).
     */
    uint32_t appendBlocks = DEFAULT_APPEND_BLOCKS;

    /**
     * Robustness knobs: with a non-zero callTimeout, each meta-data
     * call waits at most that many cycles for the reply and is resent
     * up to callRetries times (exponential backoff); if the channel
     * stays dead, the client opens a fresh session with the server and
     * replays the request once. Zero keeps the legacy block-forever
     * behaviour (and its exact cycle counts).
     */
    Cycles callTimeout = 0;
    uint32_t callRetries = 2;

  private:
    friend class M3fsFile;

    M3fsSession(Env &env, capsel_t sessSel, std::string srvName);

    /** Synchronous meta-data call on the session channel. */
    GateIStream call(Marshaller &m);

    /** Open a fresh session + channel after the old one went dead. */
    Error reopen();

    /** Obtain one capability + return args over the session. */
    Error obtain(const std::vector<uint64_t> &args, capsel_t &capOut,
                 std::vector<uint64_t> &ret);

    Env &env;
    capsel_t sessSel;
    std::string srvName;  //!< empty for bound (delegated) sessions
    std::unique_ptr<RecvGate> replyGate;
    std::unique_ptr<SendGate> channel;
};

/** An open m3fs file. */
class M3fsFile : public File
{
  public:
    M3fsFile(std::shared_ptr<M3fsSession> fs, uint32_t fid, uint32_t flags,
             uint64_t size, uint32_t serverExtents);
    ~M3fsFile() override;

    ssize_t read(void *buf, size_t len) override;
    ssize_t write(const void *buf, size_t len) override;
    ssize_t seek(ssize_t off, SeekMode whence) override;
    Error stat(FileInfo &info) override;

  private:
    /** One obtained location: a memory capability over an extent. */
    struct Loc
    {
        std::unique_ptr<MemGate> gate;
        uint64_t fileOff;
        uint64_t len;
    };

    /** Find (or fetch) the location covering @p pos; nullptr at end. */
    Loc *locate(uint64_t pos, Error &err);

    /** Fetch the next not-yet-obtained extent location. */
    Error fetchNext();

    /** Allocate fresh blocks at the end of the file. */
    Error append();

    std::shared_ptr<M3fsSession> fs;
    uint32_t fid;
    uint32_t flags;
    uint64_t size;
    uint64_t pos = 0;
    uint32_t serverExtents;   //!< extents known to exist server-side
    uint32_t nextExtIdx = 0;  //!< next extent index to fetch
    uint64_t coveredBytes = 0; //!< bytes covered by obtained locations
    std::vector<Loc> locs;
};

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_CLIENT_HH
