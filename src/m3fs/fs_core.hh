/**
 * @file
 * Core m3fs logic: superblock, bitmaps, inodes, extents and directories,
 * implemented over an abstract block-access interface so that the same
 * code serves three users:
 *  - the host-side image builder (direct DRAM access, no cost),
 *  - the m3fs server (access through a block cache over a memory gate,
 *    i.e. real DTU transfers),
 *  - the filesystem checker used by the tests.
 */

#ifndef M3_M3FS_FS_CORE_HH
#define M3_M3FS_FS_CORE_HH

#include <string>
#include <vector>

#include "base/errors.hh"
#include "m3fs/fs_defs.hh"

namespace m3
{
namespace m3fs
{

/** Byte-granular access to the filesystem image. */
class BlockAccess
{
  public:
    virtual ~BlockAccess() = default;

    /** Read @p len bytes at image offset @p off. */
    virtual void read(goff_t off, void *dst, size_t len) = 0;

    /** Write @p len bytes at image offset @p off. */
    virtual void write(goff_t off, const void *src, size_t len) = 0;
};

/** Result of a path resolution. */
struct ResolveResult
{
    inodeno_t ino = INVALID_INO;
    inodeno_t parent = INVALID_INO;
    std::string leafName;
    uint32_t components = 0;  //!< path components walked (for costing)
};

/** The filesystem engine. */
class FsCore
{
  public:
    explicit FsCore(BlockAccess &access);

    /** Format a fresh filesystem. */
    static void format(BlockAccess &access, uint32_t totalBlocks,
                       uint32_t totalInodes,
                       uint32_t blockSize = DEFAULT_BLOCK_SIZE);

    /** (Re)load the superblock; false if the magic is wrong. */
    bool load();

    const SuperBlock &superBlock() const { return sb; }

    // --- inodes -------------------------------------------------------
    Inode getInode(inodeno_t ino);
    void putInode(const Inode &inode);
    Error allocInode(uint32_t mode, Inode &out);
    void freeInode(inodeno_t ino);

    // --- extents ------------------------------------------------------
    /** The idx-th extent of the inode (direct or indirect). */
    Extent getExtent(const Inode &inode, uint32_t idx);

    /**
     * Append up to @p blocks blocks to the file, as one contiguous
     * extent of at most @p maxRun blocks (next-fit over the block
     * bitmap). Adjacent extents are merged when possible to keep
     * fragmentation low.
     * @return the extent actually allocated (len 0 when out of space)
     */
    Extent appendBlocks(Inode &inode, uint32_t blocks, uint32_t maxRun);

    /** Shrink the allocation to cover exactly @p newSize bytes. */
    void truncate(Inode &inode, uint64_t newSize);

    /** Free all blocks of the inode. */
    void freeBlocks(Inode &inode);

    // --- directories --------------------------------------------------
    /** Resolve a path to an inode (and its parent). */
    ResolveResult resolve(const std::string &path);

    /** Image offset of directory entry @p idx (0 when out of range). */
    goff_t dirEntryOff(const Inode &dir, uint64_t idx);

    Error dirLookup(inodeno_t dir, const std::string &name,
                    inodeno_t &out);
    Error dirInsert(inodeno_t dir, const std::string &name, inodeno_t ino);
    Error dirRemove(inodeno_t dir, const std::string &name);
    Error dirList(inodeno_t dir, std::vector<std::pair<inodeno_t,
                  std::string>> &out);
    bool dirEmpty(inodeno_t dir);

    // --- whole-file helpers (image builder, tests) ---------------------
    Error createFile(const std::string &path, const void *data,
                     size_t len, uint32_t blocksPerExtent);
    Error createDir(const std::string &path);
    Error readFile(const std::string &path, std::vector<uint8_t> &out);

    // --- data access ---------------------------------------------------
    /** Image offset of a data block. */
    goff_t blockOff(blockno_t b) const;

    /** Raw image access (for data reads/writes through the core). */
    BlockAccess &access() { return ba; }

    // --- consistency check ---------------------------------------------
    /**
     * Filesystem check: walks the directory tree from the root, verifies
     * inode/extent/bitmap consistency and directory sanity.
     * @param report receives human-readable findings
     * @return true if the filesystem is consistent
     */
    bool check(std::string &report);

  private:
    bool bitGet(blockno_t bmStart, uint32_t idx);
    void bitSet(blockno_t bmStart, uint32_t idx, bool value);
    void saveSb();
    void setExtent(Inode &inode, uint32_t idx, const Extent &e);
    blockno_t allocZeroedMetaBlock();
    Extent allocRun(uint32_t maxLen);
    void freeRun(blockno_t start, uint32_t len);

    BlockAccess &ba;
    SuperBlock sb{};
};

} // namespace m3fs
} // namespace m3

#endif // M3_M3FS_FS_CORE_HH
