#include "noc/noc.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/fault_plan.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace m3
{

Noc::Noc(EventQueue &eq, const HwCosts &hw, uint32_t cols, uint32_t rows)
    : eq(eq), hw(hw), cols(cols), rows(rows),
      links(static_cast<size_t>(cols) * rows * DIR_COUNT)
{
    if (cols == 0 || rows == 0)
        fatal("NoC mesh must have non-zero dimensions");
}

uint32_t
Noc::hops(nocid_t src, nocid_t dst) const
{
    uint32_t sx = src % cols, sy = src / cols;
    uint32_t dx = dst % cols, dy = dst / cols;
    uint32_t manhattan = (sx > dx ? sx - dx : dx - sx) +
                         (sy > dy ? sy - dy : dy - sy);
    // At least one hop: node -> router -> node even for self-sends.
    return manhattan + 1;
}

Cycles
Noc::idleLatency(nocid_t src, nocid_t dst, uint32_t payloadBytes) const
{
    return hops(src, dst) * hw.nocHopLatency + serialisation(payloadBytes);
}

Cycles
Noc::send(nocid_t src, nocid_t dst, uint32_t payloadBytes, DeliverFn deliver)
{
    if (src >= nodeCount() || dst >= nodeCount())
        panic("NoC route outside mesh: %u -> %u (nodes: %u)", src, dst,
              nodeCount());
    const Cycles ser = serialisation(payloadBytes);

    // Virtual cut-through: the head moves one hop per nocHopLatency; each
    // traversed link is then occupied for the serialisation time. If a
    // link is still busy from an earlier packet, the head waits there.
    // The XY route (X first, then Y: dimension-order, deadlock free) is
    // walked in place; nothing is materialized per packet.
    Cycles head = eq.curCycle();
    Cycles stalls = 0;
    uint32_t x = src % cols, y = src / cols;
    const uint32_t dx = dst % cols, dy = dst / cols;
    auto traverse = [&](Direction d) {
        Link &l = link(y * cols + x, d);
        Cycles start = std::max(head, l.nextFree);
        stalls += start - head;
        l.nextFree = start + ser;
        if (M3_METRICS_ON)
            l.busy += ser;
        head = start + hw.nocHopLatency;
    };
    while (x != dx) {
        if (x < dx) {
            traverse(DIR_EAST);
            ++x;
        } else {
            traverse(DIR_WEST);
            --x;
        }
    }
    while (y != dy) {
        if (y < dy) {
            traverse(DIR_NORTH);
            ++y;
        } else {
            traverse(DIR_SOUTH);
            --y;
        }
    }
    // Ejection from the final router to the node: one more hop, which
    // makes delivery consistent with hops() = Manhattan distance + 1.
    head += hw.nocHopLatency;

    Cycles arrival = head + ser;

    nocStats.packets++;
    nocStats.payloadBytes += payloadBytes;
    nocStats.contentionStalls += stalls;

    if (M3_METRICS_ON) {
        static trace::Histogram &qd =
            trace::Metrics::histogram("noc.queue_delay");
        qd.observe(stalls);
    }

    // Record both flow endpoints up front: arrival is known
    // deterministically here, and the exporter sorts each track by
    // timestamp, so nothing needs to ride along in the delivery closure.
    uint64_t flowId = 0;
    if (M3_TRACE_ON) {
        flowId = trace::Tracer::nextFlowId();
        const uint64_t now = eq.curCycle();
        trace::Tracer::complete(trace::nocTrack(src), now, ser, "noc:pkt");
        trace::Tracer::flowBegin(trace::nocTrack(src), now, flowId, "noc");
    }

    if (faults) {
        FaultPlan::PacketDecision d =
            faults->onPacket(eq.curCycle(), src, dst);
        if (d.action == FaultPlan::PacketAction::Drop) {
            // The packet still occupied its links (bandwidth is spent),
            // but the tail never reaches the destination.
            nocStats.packetsDropped++;
            if (M3_TRACE_ON)
                trace::Tracer::instant(trace::nocTrack(src), "fault:drop");
            if (M3_METRICS_ON) {
                static trace::Counter &fi =
                    trace::Metrics::counter("faults_injected");
                fi.inc();
            }
            logtrace("noc: fault drop packet seq=%llu %u -> %u",
                     (unsigned long long)d.seq, src, dst);
            return arrival;
        }
        if (d.action == FaultPlan::PacketAction::Delay) {
            nocStats.packetsDelayed++;
            arrival += d.delay;
            if (M3_TRACE_ON)
                trace::Tracer::instant(trace::nocTrack(src), "fault:delay");
            if (M3_METRICS_ON) {
                static trace::Counter &fi =
                    trace::Metrics::counter("faults_injected");
                fi.inc();
            }
        }
    }

    if (M3_TRACE_ON) {
        trace::Tracer::complete(trace::nocTrack(dst), arrival, 1, "noc:recv");
        trace::Tracer::flowEnd(trace::nocTrack(dst), arrival, flowId, "noc");
    }

    // Counted when the delivery is committed to the queue; together with
    // the queue-drain invariant (eventsScheduled == eventsExecuted at
    // quiescence) this gives exact packet conservation: every packet is
    // either delivered or accounted as dropped, never silently lost.
    nocStats.packetsDelivered++;
    eq.scheduleAbs(arrival, std::move(deliver));
    return arrival;
}

void
Noc::exportMetrics(Cycles totalCycles) const
{
    static const char *dirName[DIR_COUNT] = {"E", "W", "N", "S"};
    for (uint32_t r = 0; r < nodeCount(); ++r) {
        for (uint32_t d = 0; d < DIR_COUNT; ++d) {
            Cycles busy = links[r * DIR_COUNT + d].busy;
            if (!busy)
                continue;
            std::string base =
                "noc.link." + std::to_string(r) + "." + dirName[d];
            trace::Metrics::counter(base + ".busy_cycles").add(busy);
            if (totalCycles)
                trace::Metrics::gauge(base + ".util_pct")
                    .set(busy * 100 / totalCycles);
        }
    }
}

} // namespace m3
