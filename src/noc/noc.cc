#include "noc/noc.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/fault_plan.hh"
#include "sim/shards.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace m3
{

Noc::Noc(EventQueue &eq, const HwCosts &hw, uint32_t cols, uint32_t rows)
    : eq(eq), hw(hw), cols(cols), rows(rows),
      links(static_cast<size_t>(cols) * rows * DIR_COUNT)
{
    if (cols == 0 || rows == 0)
        fatal("NoC mesh must have non-zero dimensions");
}

uint32_t
Noc::hops(nocid_t src, nocid_t dst) const
{
    uint32_t sx = src % cols, sy = src / cols;
    uint32_t dx = dst % cols, dy = dst / cols;
    uint32_t manhattan = (sx > dx ? sx - dx : dx - sx) +
                         (sy > dy ? sy - dy : dy - sy);
    // At least one hop: node -> router -> node even for self-sends.
    return manhattan + 1;
}

Cycles
Noc::idleLatency(nocid_t src, nocid_t dst, uint32_t payloadBytes) const
{
    return hops(src, dst) * hw.nocHopLatency + serialisation(payloadBytes);
}

void
Noc::attachShards(ShardSet *set)
{
    if (!set || set->count() <= 1)
        return;
    if (faults)
        panic("fault injection is not supported on a sharded NoC");
    shardSet = set;
    shardStates.clear();
    for (uint32_t s = 0; s < set->count(); ++s) {
        auto ss = std::make_unique<ShardState>();
        ss->links.resize(links.size());
        shardStates.push_back(std::move(ss));
    }
}

Cycles
Noc::walk(std::vector<Link> &tbl, nocid_t src, nocid_t dst, Cycles ser,
          Cycles head, Cycles &stalls)
{
    // Virtual cut-through: the head moves one hop per nocHopLatency; each
    // traversed link is then occupied for the serialisation time. If a
    // link is still busy from an earlier packet, the head waits there.
    // The XY route (X first, then Y: dimension-order, deadlock free) is
    // walked in place; nothing is materialized per packet.
    uint32_t x = src % cols, y = src / cols;
    const uint32_t dx = dst % cols, dy = dst / cols;
    auto traverse = [&](Direction d) {
        Link &l = tbl[(y * cols + x) * DIR_COUNT + d];
        Cycles start = std::max(head, l.nextFree);
        stalls += start - head;
        l.nextFree = start + ser;
        if (M3_METRICS_ON)
            l.busy += ser;
        head = start + hw.nocHopLatency;
    };
    while (x != dx) {
        if (x < dx) {
            traverse(DIR_EAST);
            ++x;
        } else {
            traverse(DIR_WEST);
            --x;
        }
    }
    while (y != dy) {
        if (y < dy) {
            traverse(DIR_NORTH);
            ++y;
        } else {
            traverse(DIR_SOUTH);
            --y;
        }
    }
    // Ejection from the final router to the node: one more hop, which
    // makes delivery consistent with hops() = Manhattan distance + 1.
    return head + hw.nocHopLatency;
}

void
Noc::deliverCross(nocid_t src, nocid_t dst, uint32_t payloadBytes,
                  Cycles sendCycle, uint64_t flowId, DeliverFn deliver)
{
    ShardState &ds = *shardStates[dst % shardSet->count()];
    const Cycles ser = serialisation(payloadBytes);

    // The contention walk happens here, on the destination shard's
    // replica, in the destination's deterministic drain order. The head
    // starts at the cycle the source injected the packet, so an idle
    // route reproduces idleLatency() exactly and arrival can never
    // precede the transfer's activation cycle.
    Cycles stalls = 0;
    Cycles head = walk(ds.links, src, dst, ser, sendCycle, stalls);
    Cycles arrival = head + ser;

    ds.stats.contentionStalls += stalls;
    if (M3_METRICS_ON) {
        static trace::Histogram &qd =
            trace::Metrics::histogram("noc.queue_delay");
        qd.observe(stalls);
    }
    if (M3_TRACE_ON) {
        trace::Tracer::complete(trace::nocTrack(dst), arrival, 1, "noc:recv");
        trace::Tracer::flowEnd(trace::nocTrack(dst), arrival, flowId, "noc");
    }

    ds.stats.packetsDelivered++;
    EventQueue *aq = EventQueue::active();
    (aq ? *aq : eq).scheduleAbs(arrival, std::move(deliver));
}

Cycles
Noc::send(nocid_t src, nocid_t dst, uint32_t payloadBytes, DeliverFn deliver)
{
    if (src >= nodeCount() || dst >= nodeCount())
        panic("NoC route outside mesh: %u -> %u (nodes: %u)", src, dst,
              nodeCount());
    const Cycles ser = serialisation(payloadBytes);

    if (shardSet) {
        const uint32_t S = shardSet->count();
        const uint32_t srcShard = src % S, dstShard = dst % S;
        EventQueue *aq = EventQueue::active();
        const Cycles nowC = aq ? aq->curCycle() : eq.curCycle();

        // Source-side bookkeeping runs here, on the shard that owns the
        // sender (packets/payload counters, the source-track trace
        // events and the flow id) — all single-writer by construction.
        ShardState &ss = *shardStates[srcShard];
        ss.stats.packets++;
        ss.stats.payloadBytes += payloadBytes;
        uint64_t flowId = 0;
        if (M3_TRACE_ON) {
            flowId = (static_cast<uint64_t>(srcShard + 1) << 48) |
                     ss.nextFlow++;
            trace::Tracer::complete(trace::nocTrack(src), nowC, ser,
                                    "noc:pkt");
            trace::Tracer::flowBegin(trace::nocTrack(src), nowC, flowId,
                                     "noc");
        }

        if (srcShard == dstShard) {
            Cycles stalls = 0;
            Cycles head = walk(ss.links, src, dst, ser, nowC, stalls);
            Cycles arrival = head + ser;
            ss.stats.contentionStalls += stalls;
            if (M3_METRICS_ON) {
                static trace::Histogram &qd =
                    trace::Metrics::histogram("noc.queue_delay");
                qd.observe(stalls);
            }
            if (M3_TRACE_ON) {
                trace::Tracer::complete(trace::nocTrack(dst), arrival, 1,
                                        "noc:recv");
                trace::Tracer::flowEnd(trace::nocTrack(dst), arrival,
                                       flowId, "noc");
            }
            ss.stats.packetsDelivered++;
            (aq ? *aq : eq).scheduleAbs(arrival, std::move(deliver));
            return arrival;
        }

        // Cluster cut: hand the packet to the destination shard as a
        // timestamped transfer. It cannot arrive earlier than the idle
        // route allows, so the idle latency is a safe activation — this
        // lower bound across all cuts is exactly the engine's lookahead.
        const Cycles activation = nowC + idleLatency(src, dst, payloadBytes);
        shardSet->post(srcShard, dstShard, activation,
                       [this, src, dst, payloadBytes, nowC, flowId,
                        deliver = std::move(deliver)]() mutable {
                           deliverCross(src, dst, payloadBytes, nowC,
                                        flowId, std::move(deliver));
                       });
        return activation;
    }

    Cycles stalls = 0;
    Cycles head = walk(links, src, dst, ser, eq.curCycle(), stalls);
    Cycles arrival = head + ser;

    nocStats.packets++;
    nocStats.payloadBytes += payloadBytes;
    nocStats.contentionStalls += stalls;

    if (M3_METRICS_ON) {
        static trace::Histogram &qd =
            trace::Metrics::histogram("noc.queue_delay");
        qd.observe(stalls);
    }

    // Record both flow endpoints up front: arrival is known
    // deterministically here, and the exporter sorts each track by
    // timestamp, so nothing needs to ride along in the delivery closure.
    uint64_t flowId = 0;
    if (M3_TRACE_ON) {
        flowId = trace::Tracer::nextFlowId();
        const uint64_t now = eq.curCycle();
        trace::Tracer::complete(trace::nocTrack(src), now, ser, "noc:pkt");
        trace::Tracer::flowBegin(trace::nocTrack(src), now, flowId, "noc");
    }

    if (faults) {
        FaultPlan::PacketDecision d =
            faults->onPacket(eq.curCycle(), src, dst);
        if (d.action == FaultPlan::PacketAction::Drop) {
            // The packet still occupied its links (bandwidth is spent),
            // but the tail never reaches the destination.
            nocStats.packetsDropped++;
            if (M3_TRACE_ON)
                trace::Tracer::instant(trace::nocTrack(src), "fault:drop");
            if (M3_METRICS_ON) {
                static trace::Counter &fi =
                    trace::Metrics::counter("faults_injected");
                fi.inc();
            }
            logtrace("noc: fault drop packet seq=%llu %u -> %u",
                     (unsigned long long)d.seq, src, dst);
            return arrival;
        }
        if (d.action == FaultPlan::PacketAction::Delay) {
            nocStats.packetsDelayed++;
            arrival += d.delay;
            if (M3_TRACE_ON)
                trace::Tracer::instant(trace::nocTrack(src), "fault:delay");
            if (M3_METRICS_ON) {
                static trace::Counter &fi =
                    trace::Metrics::counter("faults_injected");
                fi.inc();
            }
        }
    }

    if (M3_TRACE_ON) {
        trace::Tracer::complete(trace::nocTrack(dst), arrival, 1, "noc:recv");
        trace::Tracer::flowEnd(trace::nocTrack(dst), arrival, flowId, "noc");
    }

    // Counted when the delivery is committed to the queue; together with
    // the queue-drain invariant (eventsScheduled == eventsExecuted at
    // quiescence) this gives exact packet conservation: every packet is
    // either delivered or accounted as dropped, never silently lost.
    nocStats.packetsDelivered++;
    eq.scheduleAbs(arrival, std::move(deliver));
    return arrival;
}

void
Noc::exportMetrics(Cycles totalCycles) const
{
    static const char *dirName[DIR_COUNT] = {"E", "W", "N", "S"};
    for (uint32_t r = 0; r < nodeCount(); ++r) {
        for (uint32_t d = 0; d < DIR_COUNT; ++d) {
            Cycles busy = links[r * DIR_COUNT + d].busy;
            // A sharded mesh accumulates occupancy in the per-shard
            // replicas; a physical link's busy time is the sum over the
            // shards whose terminating traffic crossed it.
            for (const auto &ss : shardStates)
                busy += ss->links[r * DIR_COUNT + d].busy;
            if (!busy)
                continue;
            std::string base =
                "noc.link." + std::to_string(r) + "." + dirName[d];
            trace::Metrics::counter(base + ".busy_cycles").add(busy);
            if (totalCycles)
                trace::Metrics::gauge(base + ".util_pct")
                    .set(busy * 100 / totalCycles);
        }
    }
}

} // namespace m3
