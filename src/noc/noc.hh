/**
 * @file
 * Packet-switched network-on-chip model.
 *
 * The platform's PEs and the DRAM module are attached to a 2D mesh of
 * routers. Packets are routed with XY dimension-order routing; each
 * directed link has a bandwidth of HwCosts::nocBytesPerCycle and a
 * per-hop latency. Contention is modelled: a packet occupies every link
 * on its path for its serialisation time, and later packets wanting the
 * same link wait (virtual cut-through approximation).
 *
 * The NoC transports opaque payloads: the sender provides a closure that
 * is executed at the destination when the tail of the packet arrives.
 * Protocol interpretation (messages, memory reads/writes, external DTU
 * configuration) lives in the DTU and DRAM modules.
 */

#ifndef M3_NOC_NOC_HH
#define M3_NOC_NOC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/cost_model.hh"
#include "base/types.hh"
#include "sim/event_queue.hh"

namespace m3
{

class FaultPlan;
class ShardSet;

/** Identifier of a node (attachment point) on the NoC. */
using nocid_t = uint32_t;

/** Aggregate NoC statistics, exposed for tests and the microcore bench. */
struct NocStats
{
    uint64_t packets = 0;
    uint64_t payloadBytes = 0;
    Cycles contentionStalls = 0;
    uint64_t packetsDropped = 0;    //!< lost to injected faults
    uint64_t packetsDelayed = 0;    //!< delayed by injected faults
    /** Delivery callbacks that actually ran. Packet conservation —
     *  packets == packetsDelivered + packetsDropped at quiescence — is
     *  one of the checked invariants (tests/test_invariants.cc). */
    uint64_t packetsDelivered = 0;
};

/**
 * The mesh interconnect. Nodes are numbered row-major on a cols x rows
 * grid; the platform assigns PEs and the DRAM module to node ids.
 */
class Noc
{
  public:
    /** Small-buffer optimized, like every engine callback (no per-packet
     *  allocation on the send path). */
    using DeliverFn = EventQueue::Callback;

    /**
     * @param eq event queue for packet delivery
     * @param hw hardware cost parameters (bandwidth, hop latency)
     * @param cols mesh width
     * @param rows mesh height
     */
    Noc(EventQueue &eq, const HwCosts &hw, uint32_t cols, uint32_t rows);

    /** Number of attachable node slots (cols * rows). */
    uint32_t nodeCount() const { return cols * rows; }

    /**
     * Inject a packet. The closure @p deliver runs at the destination at
     * the cycle the packet's tail arrives.
     *
     * @param src source node
     * @param dst destination node
     * @param payloadBytes payload size; the wire also carries a header of
     *        HwCosts::msgHeaderSize bytes
     * @param deliver executed on arrival
     * @return the cycle at which the packet will be delivered
     */
    Cycles send(nocid_t src, nocid_t dst, uint32_t payloadBytes,
                DeliverFn deliver);

    /**
     * Pure timing query: transfer latency for @p payloadBytes from
     * @p src to @p dst on an idle network.
     */
    Cycles idleLatency(nocid_t src, nocid_t dst,
                       uint32_t payloadBytes) const;

    /** Number of router hops between two nodes (Manhattan distance + 1). */
    uint32_t hops(nocid_t src, nocid_t dst) const;

    /**
     * Attach the mesh to a sharded engine: node n belongs to shard
     * n mod S, each shard gets its own link-table replica and stats,
     * and sends whose endpoints live on different shards become
     * timestamped inter-thread transfers (ShardSet::post) that complete
     * their contention walk on the destination shard's replica. Must be
     * called before any packet is injected.
     */
    void attachShards(ShardSet *set);

    /** Aggregate statistics (folded over shard replicas when sharded). */
    const NocStats &
    stats() const
    {
        if (!shardSet)
            return nocStats;
        foldCache = nocStats;
        for (const auto &ss : shardStates) {
            foldCache.packets += ss->stats.packets;
            foldCache.payloadBytes += ss->stats.payloadBytes;
            foldCache.contentionStalls += ss->stats.contentionStalls;
            foldCache.packetsDropped += ss->stats.packetsDropped;
            foldCache.packetsDelayed += ss->stats.packetsDelayed;
            foldCache.packetsDelivered += ss->stats.packetsDelivered;
        }
        return foldCache;
    }

    void
    resetStats()
    {
        nocStats = NocStats{};
        for (auto &ss : shardStates)
            ss->stats = NocStats{};
    }

    /**
     * Attach a fault plan; every injected packet consults it. Null (the
     * default) keeps the fault-free fast path. Incompatible with a
     * sharded mesh (fault decisions are ordered by global packet
     * sequence, which sharding does not define).
     */
    void
    setFaultPlan(FaultPlan *plan)
    {
        if (plan && shardSet)
            panic("fault injection is not supported on a sharded NoC");
        faults = plan;
    }

    /**
     * Fold per-link occupancy into the metric registry: a busy-cycle
     * counter and (when @p totalCycles > 0) a utilization gauge in
     * percent for every link that carried at least one packet. Per-link
     * occupancy is only accumulated while metrics are enabled.
     */
    void exportMetrics(Cycles totalCycles) const;

  private:
    /** A directed link between adjacent routers (or router and node). */
    struct Link
    {
        Cycles nextFree = 0;
        Cycles busy = 0;  //!< occupied cycles (tracked when metrics on)
    };

    /**
     * Outgoing directions of a router. The link table is a flat
     * router x direction array sized at construction — the hot path
     * indexes it directly instead of hashing a 64-bit key per traversal.
     */
    enum Direction : uint32_t
    {
        DIR_EAST = 0,   //!< towards x+1
        DIR_WEST = 1,   //!< towards x-1
        DIR_NORTH = 2,  //!< towards y+1
        DIR_SOUTH = 3,  //!< towards y-1
        DIR_COUNT = 4,
    };

    Link &
    link(uint32_t router, Direction d)
    {
        return links[router * DIR_COUNT + d];
    }

    /**
     * Per-shard mesh replica. Contention is tracked per shard: a shard's
     * replica sees exactly the packets that *terminate* on that shard
     * (in its deterministic execution order), so no link word is ever
     * written by two host threads. The replica a packet walks is chosen
     * by its destination shard; traffic terminating on different shards
     * does not contend — the price of parallelism, bounded by the
     * cluster-cut and documented in DESIGN.md §12.
     */
    struct ShardState
    {
        std::vector<Link> links;
        NocStats stats;
        uint64_t nextFlow = 1; //!< per-shard trace flow-id counter
    };

    /**
     * Walk the XY route over @p tbl, reserving links from @p head on and
     * accumulating @p stalls; returns the head cycle after the final
     * ejection hop (arrival = return value + @p ser).
     */
    Cycles walk(std::vector<Link> &tbl, nocid_t src, nocid_t dst,
                Cycles ser, Cycles head, Cycles &stalls);

    /** Finish a cross-shard packet on the destination shard. */
    void deliverCross(nocid_t src, nocid_t dst, uint32_t payloadBytes,
                      Cycles sendCycle, uint64_t flowId, DeliverFn deliver);

    /** Serialisation time of a packet with @p payloadBytes of payload. */
    Cycles
    serialisation(uint32_t payloadBytes) const
    {
        uint32_t wire = payloadBytes + hw.msgHeaderSize;
        return (wire + hw.nocBytesPerCycle - 1) / hw.nocBytesPerCycle;
    }

    EventQueue &eq;
    HwCosts hw;
    uint32_t cols;
    uint32_t rows;
    std::vector<Link> links;
    NocStats nocStats;
    mutable NocStats foldCache; //!< stats() result when sharded
    FaultPlan *faults = nullptr;
    ShardSet *shardSet = nullptr;
    std::vector<std::unique_ptr<ShardState>> shardStates;
};

} // namespace m3

#endif // M3_NOC_NOC_HH
