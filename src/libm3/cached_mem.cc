#include "libm3/cached_mem.hh"

#include <cstring>

#include "base/logging.hh"

namespace m3
{

namespace
{

bool
isPow2(uint32_t v)
{
    return v && (v & (v - 1)) == 0;
}

} // anonymous namespace

CachedMem::CachedMem(MemGate &gate, uint32_t lineSize, uint32_t sets,
                     uint32_t ways, Cycles hitCycles)
    : gate(gate), lineSize(lineSize), sets(sets), ways(ways),
      hitCycles(hitCycles), lines(static_cast<size_t>(sets) * ways)
{
    if (!isPow2(lineSize) || !isPow2(sets) || ways == 0)
        fatal("cache geometry must be powers of two");
    for (Line &l : lines)
        l.data.resize(lineSize);
}

CachedMem::~CachedMem()
{
    flush();
}

Error
CachedMem::writeBack(Line &line, uint32_t setIdx)
{
    goff_t addr =
        (line.tag * sets + setIdx) * static_cast<goff_t>(lineSize);
    cacheStats.writeBacks++;
    Error e = gate.write(line.data.data(), lineSize, addr);
    if (e == Error::None)
        line.dirty = false;
    return e;
}

CachedMem::Line *
CachedMem::access(goff_t addr, Error &err)
{
    err = Error::None;
    uint32_t setIdx = setOf(addr);
    uint64_t tag = tagOf(addr);
    Line *setBase = &lines[static_cast<size_t>(setIdx) * ways];

    Line *victim = setBase;
    for (uint32_t w = 0; w < ways; ++w) {
        Line &l = setBase[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = ++useCounter;
            cacheStats.hits++;
            Env::cur().compute(hitCycles);
            return &l;
        }
        if (!l.valid) {
            victim = &l;
        } else if (victim->valid && l.lastUse < victim->lastUse) {
            victim = &l;
        }
    }

    // Miss: evict (write back if dirty), then fill over the DTU.
    cacheStats.misses++;
    if (victim->valid && victim->dirty) {
        err = writeBack(*victim, setIdx);
        if (err != Error::None)
            return nullptr;
    }
    goff_t lineAddr = (tag * sets + setIdx) * static_cast<goff_t>(lineSize);
    err = gate.read(victim->data.data(), lineSize, lineAddr);
    if (err != Error::None) {
        victim->valid = false;
        return nullptr;
    }
    victim->valid = true;
    victim->dirty = false;
    victim->tag = tag;
    victim->lastUse = ++useCounter;
    return victim;
}

Error
CachedMem::read(goff_t addr, void *dst, size_t len)
{
    uint8_t *out = static_cast<uint8_t *>(dst);
    size_t done = 0;
    while (done < len) {
        Error err = Error::None;
        Line *l = access(addr + done, err);
        if (!l)
            return err;
        size_t off = (addr + done) % lineSize;
        size_t chunk = std::min<size_t>(len - done, lineSize - off);
        std::memcpy(out + done, l->data.data() + off, chunk);
        done += chunk;
    }
    return Error::None;
}

Error
CachedMem::write(goff_t addr, const void *src, size_t len)
{
    const uint8_t *in = static_cast<const uint8_t *>(src);
    size_t done = 0;
    while (done < len) {
        Error err = Error::None;
        Line *l = access(addr + done, err);
        if (!l)
            return err;
        size_t off = (addr + done) % lineSize;
        size_t chunk = std::min<size_t>(len - done, lineSize - off);
        std::memcpy(l->data.data() + off, in + done, chunk);
        l->dirty = true;
        done += chunk;
    }
    return Error::None;
}

Error
CachedMem::flush()
{
    for (uint32_t setIdx = 0; setIdx < sets; ++setIdx) {
        for (uint32_t w = 0; w < ways; ++w) {
            Line &l = lines[static_cast<size_t>(setIdx) * ways + w];
            if (l.valid && l.dirty) {
                Error e = writeBack(l, setIdx);
                if (e != Error::None)
                    return e;
            }
        }
    }
    return Error::None;
}

} // namespace m3
