/**
 * @file
 * The pipe filesystem (Sec. 4.5.8): integrates pipes into the VFS so it
 * is transparent for applications whether they access a pipe or a file
 * in m3fs. Pipe ends are registered under names; open() hands them out
 * through the ordinary File interface.
 */

#ifndef M3_LIBM3_PIPEFS_HH
#define M3_LIBM3_PIPEFS_HH

#include <functional>
#include <map>
#include <memory>

#include "libm3/vfs.hh"

namespace m3
{

/**
 * A mountable registry of pipe ends. The pipe creator (or the peer
 * setup code) registers a factory per name; opening the path yields
 * the File end, after which reads and writes are indistinguishable
 * from file I/O.
 */
class PipeFs : public FileSystem
{
  public:
    using Factory = std::function<std::unique_ptr<File>()>;

    /** Register the end of a pipe under @p name (e.g. "/in"). */
    void
    add(const std::string &name, Factory factory)
    {
        factories[name] = std::move(factory);
    }

    std::unique_ptr<File>
    open(const std::string &path, uint32_t, Error &err) override
    {
        auto it = factories.find(path);
        if (it == factories.end()) {
            err = Error::NoSuchFile;
            return nullptr;
        }
        // A pipe end is exclusive: hand it out once.
        Factory f = std::move(it->second);
        factories.erase(it);
        err = Error::None;
        return f();
    }

    Error
    stat(const std::string &path, FileInfo &info) override
    {
        if (!factories.count(path))
            return Error::NoSuchFile;
        info = FileInfo{};
        info.mode = M_FILE;
        return Error::None;
    }

    Error mkdir(const std::string &) override { return Error::NoPerm; }
    Error unlink(const std::string &) override { return Error::NoPerm; }

    Error
    link(const std::string &, const std::string &) override
    {
        return Error::NoPerm;
    }

    Error
    rename(const std::string &, const std::string &) override
    {
        return Error::NoPerm;
    }

    Error
    readdir(const std::string &, std::vector<DirEntry> &entries) override
    {
        for (const auto &[name, factory] : factories)
            entries.push_back(DirEntry{0, name});
        return Error::None;
    }

  private:
    std::map<std::string, Factory> factories;
};

} // namespace m3

#endif // M3_LIBM3_PIPEFS_HH
