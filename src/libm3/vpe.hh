/**
 * @file
 * The VPE abstraction of libm3 (Sec. 4.5.5): create a virtual PE on a
 * suitable physical PE, load it by cloning the caller (run) or from an
 * executable in the filesystem (exec), exchange capabilities with it,
 * and wait for its exit code.
 */

#ifndef M3_LIBM3_VPE_HH
#define M3_LIBM3_VPE_HH

#include <functional>
#include <memory>
#include <string>

#include "libm3/gates.hh"

namespace m3
{

/**
 * A virtual processing element owned by the calling VPE. Construction
 * performs the CreateVpe system call, which also yields a memory gate
 * for the target PE's local memory for application loading.
 */
class VPE
{
  public:
    /** Bytes moved by a clone: code, static data, used heap and stack. */
    static constexpr size_t CLONE_IMAGE_BYTES = 24 * KiB;

    /**
     * Ask the kernel for a PE of the given type/attribute.
     * Check err() before use; creation fails when no PE is free.
     */
    VPE(Env &env, const std::string &name,
        kif::PeTypeReq type = kif::PeTypeReq::General,
        const std::string &attr = "");

    VPE(const VPE &) = delete;
    VPE &operator=(const VPE &) = delete;

    /** Error state of the creation. */
    Error err() const { return creationError; }

    /**
     * Clone the caller onto the target PE and run @p fn there, like the
     * paper's lambda example (Sec. 4.5.5). The functor's captures carry
     * the arguments; the image transfer is performed through the memory
     * gate. Asynchronous: returns once the child was started.
     */
    Error run(std::function<int()> fn);

    /**
     * Load the executable at @p path from the filesystem onto the target
     * PE and start it (the exec flavour of loading, Sec. 4.5.5).
     */
    Error exec(const std::string &path);

    /** Delegate own capabilities [srcStart, srcStart+count) to the VPE. */
    Error delegate(capsel_t srcStart, uint32_t count, capsel_t dstStart);

    /** Obtain the VPE's capabilities [srcStart, ...) into own table. */
    Error obtain(capsel_t srcStart, uint32_t count, capsel_t dstStart);

    /** Wait until the child exited; returns its exit code. */
    int wait();

    /** Revoke the VPE capability: the kernel resets the PE. */
    Error revoke();

    capsel_t sel() const { return vpeSel; }
    vpeid_t id() const { return childVpe; }
    peid_t peId() const { return childPe; }

    /** The memory gate for the child's local memory. */
    MemGate &mem() { return *memGate; }

  private:
    Error startWith(const std::string &progName, std::function<int()> fn);

    Env &env;
    std::string name;
    capsel_t vpeSel = INVALID_SEL;
    capsel_t mgateSel = INVALID_SEL;
    vpeid_t childVpe = INVALID_VPE;
    peid_t childPe = INVALID_PE;
    Error creationError;
    std::unique_ptr<MemGate> memGate;
};

} // namespace m3

#endif // M3_LIBM3_VPE_HH
