/**
 * @file
 * The program registry: maps executable paths to program entry points.
 *
 * On the real platform, VPE::exec loads a binary from m3fs into the
 * target PE's SPM and the core starts executing it. In this simulator the
 * file bytes are transferred for real (modelling the load cost), and the
 * behaviour behind the entry point is the C++ functor registered here
 * under the same path.
 */

#ifndef M3_LIBM3_PROGRAMS_HH
#define M3_LIBM3_PROGRAMS_HH

#include <functional>
#include <map>
#include <string>

namespace m3
{

/** Global registry of executable entry points, keyed by fs path. */
class Programs
{
  public:
    using Main = std::function<int()>;

    /** Register (or replace) the entry point for @p path. */
    static void
    reg(const std::string &path, Main main)
    {
        table()[path] = std::move(main);
    }

    /** Look up an entry point; returns an empty function if unknown. */
    static Main
    lookup(const std::string &path)
    {
        auto it = table().find(path);
        return it == table().end() ? Main{} : it->second;
    }

  private:
    static std::map<std::string, Main> &
    table()
    {
        static std::map<std::string, Main> t;
        return t;
    }
};

} // namespace m3

#endif // M3_LIBM3_PROGRAMS_HH
