#include "libm3/vpe.hh"

#include <vector>

#include "base/logging.hh"
#include "libm3/programs.hh"
#include "libm3/vfs.hh"

namespace m3
{

VPE::VPE(Env &env, const std::string &name, kif::PeTypeReq type,
         const std::string &attr)
    : env(env), name(name), vpeSel(env.allocSels()),
      mgateSel(env.allocSels())
{
    creationError = env.createVpe(vpeSel, mgateSel, name, type, attr,
                                  childVpe, childPe);
    if (creationError == Error::None) {
        memGate = std::make_unique<MemGate>(
            env, mgateSel,
            env.platform.pe(childPe).desc().spmDataSize);
    }
}

Error
VPE::startWith(const std::string &progName, std::function<int()> fn)
{
    Platform &platform = env.platform;
    peid_t pe = childPe;
    vpeid_t id = childVpe;
    // Installed under the VPE identity: on a time-multiplexed PE several
    // children can be pending, and the kernel's VPE-qualified start
    // command picks this one.
    platform.pe(pe).installProgramFor(
        id, progName, [&platform, pe, id, fn = std::move(fn)] {
            // The captured pe is where the VPE was first placed; after a
            // failover restart the functor runs on a replacement PE,
            // resolved through the pending-home table.
            Env childEnv(platform, Env::homeOf(id, pe), id);
            int rc = fn();
            childEnv.vpeExit(rc);
        });
    return env.vpeStart(vpeSel);
}

Error
VPE::run(std::function<int()> fn)
{
    if (creationError != Error::None)
        return creationError;

    ScopedCategory os(env.acct(), Category::Os);
    env.compute(env.cm.m3.cloneSetup);

    // Transfer code, static data, the used heap and the stack to the
    // same addresses on the other PE (Sec. 4.5.5). The image content is
    // behavioural only in this simulator; the transfer cost is real.
    std::vector<uint8_t> image(CLONE_IMAGE_BYTES, 0);
    Error e = memGate->write(image.data(), image.size(),
                             kif::RESERVED_SPM);
    if (e != Error::None)
        return e;

    return startWith(name + ":clone", std::move(fn));
}

Error
VPE::exec(const std::string &path)
{
    if (creationError != Error::None)
        return creationError;

    Programs::Main main = Programs::lookup(path);
    if (!main)
        return Error::NoSuchFile;

    ScopedCategory os(env.acct(), Category::Os);
    env.compute(env.cm.m3.execSetup);

    // Load the executable from the filesystem into the target PE's
    // local memory (Sec. 4.5.5): read it through the file's memory
    // capabilities and push it through the loading memory gate.
    Error e = Error::None;
    std::unique_ptr<File> file = env.vfs().open(path, FILE_R, e);
    if (e != Error::None)
        return e;

    std::vector<uint8_t> buf(XFER_BUF_SIZE);
    goff_t dst = kif::RESERVED_SPM;
    for (;;) {
        ssize_t n = file->read(buf.data(), buf.size());
        if (n < 0)
            return static_cast<Error>(-n);
        if (n == 0)
            break;
        size_t chunk = static_cast<size_t>(n);
        if (dst + chunk > memGate->size())
            chunk = memGate->size() - dst;  // image larger than the SPM
        if (chunk) {
            e = memGate->write(buf.data(), chunk, dst);
            if (e != Error::None)
                return e;
            dst += chunk;
        }
    }

    return startWith(path, std::move(main));
}

Error
VPE::delegate(capsel_t srcStart, uint32_t count, capsel_t dstStart)
{
    return env.exchange(vpeSel, srcStart, count, dstStart,
                        kif::ExchangeOp::Delegate);
}

Error
VPE::obtain(capsel_t srcStart, uint32_t count, capsel_t dstStart)
{
    return env.exchange(vpeSel, srcStart, count, dstStart,
                        kif::ExchangeOp::Obtain);
}

int
VPE::wait()
{
    int code = -1;
    Error e = env.vpeWait(vpeSel, code);
    if (e != Error::None)
        return -1;
    return code;
}

Error
VPE::revoke()
{
    return env.revoke(vpeSel, true);
}

} // namespace m3
