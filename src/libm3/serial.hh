/**
 * @file
 * Minimal serial-output abstraction, as used in the paper's lambda
 * example (Sec. 4.5.5). Lines are prefixed with the writing PE.
 */

#ifndef M3_LIBM3_SERIAL_HH
#define M3_LIBM3_SERIAL_HH

#include <cstdio>
#include <sstream>
#include <string>

#include "libm3/env.hh"

namespace m3
{

/** A line-buffered serial console shared by all PEs. */
class Serial
{
  public:
    /** The serial stream of the current VPE. */
    static Serial &
    get()
    {
        static Serial instance;
        return instance;
    }

    template <typename T>
    Serial &
    operator<<(const T &v)
    {
        std::ostringstream tmp;
        tmp << v;
        line += tmp.str();
        flushLines();
        return *this;
    }

  private:
    void
    flushLines()
    {
        size_t nl = line.find('\n');
        while (nl != std::string::npos) {
            std::printf("[pe%u] %s\n", Env::cur().peId,
                        line.substr(0, nl).c_str());
            line.erase(0, nl + 1);
            nl = line.find('\n');
        }
    }

    std::string line;
};

} // namespace m3

#endif // M3_LIBM3_SERIAL_HH
