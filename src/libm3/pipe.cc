#include "libm3/pipe.hh"

#include <optional>

#include "base/logging.hh"

namespace m3
{

namespace
{

/** Slot size of pipe control messages. */
constexpr uint32_t PIPE_MSG_SIZE = 128;

// ---------------------------------------------------------------------
// Push mode: the peer writes, the creator reads.
// ---------------------------------------------------------------------

/** The creator's reading end. */
class PipeHostReader : public File
{
  public:
    explicit PipeHostReader(Pipe &pipe) : pipe(pipe) {}

    ssize_t
    read(void *buf, size_t len) override
    {
        Env &env = pipe.env;
        ScopedCategory os(env.acct(), Category::Os);
        uint8_t *out = static_cast<uint8_t *>(buf);
        size_t total = 0;
        while (total < len) {
            if (!cur) {
                if (eof)
                    break;
                // Wait for the writer to announce the next chunk.
                GateIStream is = pipe.rgate.receive();
                env.compute(env.cm.m3.pipeChunk);
                auto kind = is.pull<PipeMsg>();
                if (kind == PipeMsg::Eof) {
                    eof = true;
                    is.replyError(Error::None);
                    break;
                }
                cur.emplace(std::move(is));
                curOff = cur->pull<uint64_t>();
                curLen = cur->pull<uint64_t>();
                curPos = 0;
            }
            size_t chunk = std::min<size_t>(len - total, curLen - curPos);
            Error e = pipe.ring.read(out + total, chunk, curOff + curPos);
            if (e != Error::None)
                return -static_cast<ssize_t>(e);
            curPos += chunk;
            total += chunk;
            if (curPos == curLen) {
                // Chunk consumed: acknowledge to return the ring space
                // (and the sender's credit).
                cur->replyError(Error::None);
                cur.reset();
            }
        }
        return static_cast<ssize_t>(total);
    }

    ssize_t
    write(const void *, size_t) override
    {
        return -static_cast<ssize_t>(Error::NoPerm);
    }

    ssize_t
    seek(ssize_t, SeekMode) override
    {
        return -static_cast<ssize_t>(Error::InvalidArgs);
    }

    Error
    stat(FileInfo &info) override
    {
        info = FileInfo{};
        return Error::None;
    }

  private:
    Pipe &pipe;
    std::optional<GateIStream> cur;
    uint64_t curOff = 0;
    uint64_t curLen = 0;
    uint64_t curPos = 0;
    bool eof = false;
};

/** The peer's writing end. */
class PipePeerWriter : public File
{
  public:
    PipePeerWriter(Env &env, capsel_t selStart, size_t ringBytes,
                   uint32_t chunks)
        : env(env), sgate(env, selStart, PIPE_MSG_SIZE, true),
          ring(env, selStart + 1, ringBytes),
          replyGate(env, chunks, PIPE_MSG_SIZE),
          chunkSize(ringBytes / chunks), chunks(chunks)
    {
    }

    ~PipePeerWriter() override { sendEof(); }

    ssize_t
    write(const void *buf, size_t len) override
    {
        ScopedCategory os(env.acct(), Category::Os);
        const uint8_t *in = static_cast<const uint8_t *>(buf);
        size_t total = 0;
        while (total < len) {
            // A credit guarantees a free ring slot (credits == chunks),
            // so it must be held *before* the slot is overwritten.
            waitForCredit();
            size_t chunk = std::min(len - total, chunkSize);
            uint64_t off = (seq % chunks) * chunkSize;
            Error e = ring.write(in + total, chunk, off);
            if (e != Error::None)
                return -static_cast<ssize_t>(e);
            env.compute(env.cm.m3.pipeChunk);
            Marshaller m = sgate.ostream();
            m << PipeMsg::Chunk << off << static_cast<uint64_t>(chunk);
            if (sendWithCredits(m) != Error::None)
                return -static_cast<ssize_t>(Error::PipeClosed);
            ++seq;
            total += chunk;
        }
        return static_cast<ssize_t>(total);
    }

    ssize_t
    read(void *, size_t) override
    {
        return -static_cast<ssize_t>(Error::NoPerm);
    }

    ssize_t
    seek(ssize_t, SeekMode) override
    {
        return -static_cast<ssize_t>(Error::InvalidArgs);
    }

    Error
    stat(FileInfo &info) override
    {
        info = FileInfo{};
        return Error::None;
    }

  private:
    /** Block until the send gate holds at least one credit. */
    void
    waitForCredit()
    {
        epid_t e = sgate.acquire();
        while (env.dtu().credits(e) == 0) {
            drainAcks();
            if (env.dtu().credits(e) > 0)
                break;
            Cycles t0 = env.platform.simulator().curCycle();
            env.dtu().waitForMsg(replyGate.boundEp());
            env.acct().chargeTo(Category::Idle,
                                env.platform.simulator().curCycle() -
                                    t0);
            drainAcks();
        }
    }

    /** Send, waiting for acknowledgements when out of credits. */
    Error
    sendWithCredits(Marshaller &m)
    {
        for (;;) {
            drainAcks();
            Error e = sgate.send(m, &replyGate);
            if (e != Error::None && e != Error::NoCredits)
                return e;
            if (e == Error::None)
                return Error::None;
            // Out of credits: block until the reader acknowledged a
            // chunk (the reply also refunds the credit). The wait is
            // idle time: the writer is throttled by the reader.
            Cycles t0 = env.platform.simulator().curCycle();
            env.dtu().waitForMsg(replyGate.boundEp());
            env.acct().chargeTo(Category::Idle,
                                env.platform.simulator().curCycle() - t0);
            drainAcks();
        }
    }

    void
    drainAcks()
    {
        for (;;) {
            GateIStream is = replyGate.tryReceive();
            if (!is.valid())
                break;
            // Ack content is irrelevant; the slot is freed on destroy.
        }
    }

    /**
     * Announce EOF, best effort. Teardown must not hang on a dead
     * reader: unlike write(), which may block indefinitely for ring
     * space, the destructor bounds every credit wait and gives up
     * after a few attempts — the EOF is then simply dropped (the
     * reader is gone; nobody would see it anyway).
     */
    void
    sendEof()
    {
        ScopedCategory os(env.acct(), Category::Os);
        constexpr int EOF_ATTEMPTS = 4;
        constexpr Cycles EOF_WAIT = 20000;
        for (int attempt = 0; attempt < EOF_ATTEMPTS; ++attempt) {
            drainAcks();
            Marshaller m = sgate.ostream();
            m << PipeMsg::Eof;
            Error e = sgate.send(m, &replyGate);
            if (e != Error::NoCredits)
                return;  // sent, or a hard error teardown ignores
            // Out of credits: wait a bounded time for an ack.
            Cycles t0 = env.platform.simulator().curCycle();
            env.dtu().waitForMsg(replyGate.boundEp(), EOF_WAIT);
            env.acct().chargeTo(Category::Idle,
                                env.platform.simulator().curCycle() -
                                    t0);
        }
        drainAcks();
    }

    Env &env;
    SendGate sgate;
    MemGate ring;
    RecvGate replyGate;
    size_t chunkSize;
    uint32_t chunks;
    uint64_t seq = 0;
};

// ---------------------------------------------------------------------
// Pull mode: the creator writes, the peer reads.
// ---------------------------------------------------------------------

/** The creator's writing end. */
class PipeHostWriter : public File
{
  public:
    explicit PipeHostWriter(Pipe &pipe)
        : pipe(pipe), chunkSize(pipe.chunkSize()), freeChunks(pipe.chunks)
    {
    }

    ~PipeHostWriter() override { finish(); }

    ssize_t
    write(const void *buf, size_t len) override
    {
        Env &env = pipe.env;
        ScopedCategory os(env.acct(), Category::Os);
        const uint8_t *in = static_cast<const uint8_t *>(buf);
        size_t total = 0;
        while (total < len) {
            while (freeChunks == 0)
                handleRequest(true);
            size_t chunk = std::min(len - total, chunkSize);
            uint64_t off = (seq % pipe.chunks) * chunkSize;
            Error e = pipe.ring.write(in + total, chunk, off);
            if (e != Error::None)
                return -static_cast<ssize_t>(e);
            env.compute(env.cm.m3.pipeChunk);
            ready.push_back({off, chunk});
            --freeChunks;
            ++seq;
            total += chunk;
            // Serve a reader that is already waiting.
            handleRequest(false);
        }
        return static_cast<ssize_t>(total);
    }

    ssize_t
    read(void *, size_t) override
    {
        return -static_cast<ssize_t>(Error::NoPerm);
    }

    ssize_t
    seek(ssize_t, SeekMode) override
    {
        return -static_cast<ssize_t>(Error::InvalidArgs);
    }

    Error
    stat(FileInfo &info) override
    {
        info = FileInfo{};
        return Error::None;
    }

  private:
    /**
     * Process one reader request: the request frees the previously
     * delivered chunk and is answered with the next ready chunk (or
     * held until one exists).
     * @param blocking wait for a request if none is pending
     */
    void
    handleRequest(bool blocking)
    {
        Env &env = pipe.env;
        if (!pending) {
            GateIStream is = blocking ? pipe.rgate.receive()
                                      : pipe.rgate.tryReceive();
            if (!is.valid())
                return;
            is.pull<PipeMsg>();  // always Req
            if (delivered) {
                ++freeChunks;
                delivered = false;
            }
            pending.emplace(std::move(is));
        }
        if (pending && !ready.empty()) {
            auto [off, len] = ready.front();
            ready.erase(ready.begin());
            env.compute(env.cm.m3.pipeChunk);
            Marshaller m = pending->replyStream();
            m << uint64_t{1} << off << static_cast<uint64_t>(len);
            pending->replyStreamSend(m);
            pending.reset();
            delivered = true;
        }
    }

    /** Drain the ready chunks, then answer the final request with EOF. */
    void
    finish()
    {
        while (!ready.empty())
            handleRequest(true);
        // The reader sends one more request after the last chunk.
        if (!pending) {
            GateIStream is = pipe.rgate.receive();
            is.pull<PipeMsg>();
            pending.emplace(std::move(is));
        }
        Marshaller m = pending->replyStream();
        m << uint64_t{0} << uint64_t{0} << uint64_t{0};
        pending->replyStreamSend(m);
        pending.reset();
    }

    Pipe &pipe;
    size_t chunkSize;
    uint32_t freeChunks;
    uint64_t seq = 0;
    std::vector<std::pair<uint64_t, size_t>> ready;
    std::optional<GateIStream> pending;
    bool delivered = false;
};

/** The peer's reading end. */
class PipePeerReader : public File
{
  public:
    PipePeerReader(Env &env, capsel_t selStart, size_t ringBytes)
        : env(env), sgate(env, selStart, PIPE_MSG_SIZE, true),
          ring(env, selStart + 1, ringBytes),
          replyGate(env, 2, PIPE_MSG_SIZE)
    {
    }

    ssize_t
    read(void *buf, size_t len) override
    {
        ScopedCategory os(env.acct(), Category::Os);
        uint8_t *out = static_cast<uint8_t *>(buf);
        size_t total = 0;
        while (total < len) {
            if (curPos == curLen) {
                if (eof)
                    break;
                env.compute(env.cm.m3.pipeChunk);
                Marshaller m = sgate.ostream();
                m << PipeMsg::Req;
                GateIStream is = sgate.call(m, replyGate);
                auto hasData = is.pull<uint64_t>();
                if (!hasData) {
                    eof = true;
                    break;
                }
                curOff = is.pull<uint64_t>();
                curLen = is.pull<uint64_t>();
                curPos = 0;
            }
            size_t chunk = std::min<size_t>(len - total, curLen - curPos);
            Error e = ring.read(out + total, chunk, curOff + curPos);
            if (e != Error::None)
                return -static_cast<ssize_t>(e);
            curPos += chunk;
            total += chunk;
        }
        return static_cast<ssize_t>(total);
    }

    ssize_t
    write(const void *, size_t) override
    {
        return -static_cast<ssize_t>(Error::NoPerm);
    }

    ssize_t
    seek(ssize_t, SeekMode) override
    {
        return -static_cast<ssize_t>(Error::InvalidArgs);
    }

    Error
    stat(FileInfo &info) override
    {
        info = FileInfo{};
        return Error::None;
    }

  private:
    Env &env;
    SendGate sgate;
    MemGate ring;
    RecvGate replyGate;
    uint64_t curOff = 0;
    uint64_t curLen = 0;
    uint64_t curPos = 0;
    bool eof = false;
};

} // anonymous namespace

// ---------------------------------------------------------------------
// Pipe.
// ---------------------------------------------------------------------

Pipe::Pipe(Env &env, bool creatorWrites, size_t ringBytes, uint32_t chunks)
    : env(env), creatorWrites(creatorWrites), ringBytes(ringBytes),
      chunks(chunks), rgate(env, chunks + 2, PIPE_MSG_SIZE),
      peerSgate(std::make_unique<SendGate>(
          SendGate::create(env, rgate, /*label=*/1, chunks))),
      ring(MemGate::create(env, ringBytes, MEM_RW))
{
    if (chunks == 0 || chunks > MAX_SLOTS - 2)
        fatal("pipe must have between 1 and %u chunks", MAX_SLOTS - 2);
}

Error
Pipe::delegateTo(VPE &vpe, capsel_t dstStart)
{
    Error e = vpe.delegate(peerSgate->capSel(), 1, dstStart);
    if (e != Error::None)
        return e;
    return vpe.delegate(ring.capSel(), 1, dstStart + 1);
}

std::unique_ptr<File>
Pipe::host()
{
    if (creatorWrites)
        return std::make_unique<PipeHostWriter>(*this);
    return std::make_unique<PipeHostReader>(*this);
}

std::unique_ptr<File>
pipePeer(Env &env, bool peerWrites, capsel_t selStart, size_t ringBytes,
         uint32_t chunks)
{
    if (peerWrites)
        return std::make_unique<PipePeerWriter>(env, selStart, ringBytes,
                                                chunks);
    return std::make_unique<PipePeerReader>(env, selStart, ringBytes);
}

} // namespace m3
