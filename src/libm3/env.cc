#include "libm3/env.hh"

#include <unordered_map>

#include "base/logging.hh"
#include "libm3/gates.hh"
#include "libm3/vfs.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace m3
{

namespace
{

/**
 * Pending PE re-homes for VPEs restarting after a failover. The
 * fiber -> Env mapping itself lives on the Fiber (Fiber::setUserEnv):
 * a per-fiber slot needs no synchronization when fibers execute on
 * different engine shards, where a shared map would (writes to this map
 * only happen via migration/failover hooks, which the sharded engine
 * rejects at configuration time).
 */
std::unordered_map<vpeid_t, peid_t> &
pendingHomes()
{
    static std::unordered_map<vpeid_t, peid_t> homes;
    return homes;
}

} // anonymous namespace

Env::Env(Platform &platform, peid_t peId, vpeid_t vpeId)
    : platform(platform), peId(peId), vpeId(vpeId), cm(platform.costs()),
      fiber(*Fiber::current()), homePe(&platform.pe(peId)),
      homeSpm(&homePe->spm()), homeDtu(&homePe->dtu())
{
    // Claim the SPM: the reserved system area (syscall-reply ring at its
    // fixed address), the syscall staging buffer and the transfer buffer.
    spm().resetAlloc();
    spm().alloc(kif::RESERVED_SPM);
    syscStage = spm().alloc(kif::MAX_SYSC_MSG);
    xferBufAddr = spm().alloc(XFER_BUF_SIZE);
    seenCtxEpoch = dtu().ctxEpoch();

    fiber.setUserEnv(this);
}

void
Env::noteMoved(Fiber *f, peid_t newPe)
{
    if (Env *env = static_cast<Env *>(f->getUserEnv())) {
        env->peId = newPe;
        env->homePe = &env->platform.pe(newPe);
        env->homeSpm = &env->homePe->spm();
        env->homeDtu = &env->homePe->dtu();
        env->forceEpDrop = true;
        if (M3_TRACE_ON)
            env->fiber.accounting().traceTrack = newPe;
    }
    // Bump last: a wait that wakes up re-resolves its DTU via the Env.
    f->noteMoved();
}

void
Env::setHome(vpeid_t vpe, peid_t newPe)
{
    pendingHomes()[vpe] = newPe;
}

peid_t
Env::homeOf(vpeid_t vpe, peid_t fallback)
{
    auto it = pendingHomes().find(vpe);
    if (it == pendingHomes().end())
        return fallback;
    peid_t pe = it->second;
    pendingHomes().erase(it);
    return pe;
}

void
Env::resetRegistry()
{
    pendingHomes().clear();
}

Env::~Env()
{
    fiber.setUserEnv(nullptr);
}

Vfs &
Env::vfs()
{
    if (!vfsPtr)
        vfsPtr = std::make_unique<Vfs>();
    return *vfsPtr;
}

Env &
Env::cur()
{
    Fiber *f = Fiber::current();
    if (!f)
        panic("Env::cur() outside a fiber");
    Env *env = static_cast<Env *>(f->getUserEnv());
    if (!env)
        panic("fiber '%s' has no environment", f->fiberName().c_str());
    return *env;
}

// ---------------------------------------------------------------------
// Endpoint multiplexing.
// ---------------------------------------------------------------------

epid_t
Env::attach(Gate &gate)
{
    // "libm3 checks before the usage of a gate whether the endpoint is
    // appropriately configured" (Sec. 4.5.4).
    compute(cm.m3.epCheck);

    // A context restore rewrote the physical EPs. The restore itself is
    // exact, but a revoke that happened while this VPE was descheduled
    // landed in the saved context — drop the non-pinned cache so such
    // gates lazily re-activate. Pinned gates keep their slot: the kernel
    // never moves them and their restored registers are authoritative.
    // A migration forces the drop: the new home has its own epoch
    // counter, so a plain compare could miss the switch.
    if (forceEpDrop || dtu().ctxEpoch() != seenCtxEpoch) {
        forceEpDrop = false;
        seenCtxEpoch = dtu().ctxEpoch();
        for (epid_t e = kif::FIRST_FREE_EP; e < dtu().epCount(); ++e) {
            Gate *g = epSlots[e].gate;
            if (g && !g->pinned) {
                g->ep = INVALID_EP;
                epSlots[e] = EpSlot{};
            }
        }
    }

    if (gate.ep != INVALID_EP) {
        epSlots[gate.ep].lastUse = ++useCounter;
        return gate.ep;
    }

    // Pick a free endpoint, or evict the least recently used movable one.
    epid_t chosen = INVALID_EP;
    for (epid_t e = kif::FIRST_FREE_EP; e < dtu().epCount(); ++e) {
        if (!epSlots[e].gate) {
            chosen = e;
            break;
        }
    }
    if (chosen == INVALID_EP) {
        uint64_t best = ~uint64_t{0};
        for (epid_t e = kif::FIRST_FREE_EP; e < dtu().epCount(); ++e) {
            Gate *g = epSlots[e].gate;
            if (!g->pinned && epSlots[e].lastUse < best) {
                best = epSlots[e].lastUse;
                chosen = e;
            }
        }
        if (chosen == INVALID_EP)
            panic("VPE%u: out of endpoints (all pinned)", vpeId);
        epSlots[chosen].gate->ep = INVALID_EP;
    }

    Error e = activate(gate.sel, chosen, gate.activateBuf());
    if (e != Error::None)
        panic("VPE%u: activating cap %u on EP %u failed: %s", vpeId,
              gate.sel, chosen, errorName(e));

    gate.ep = chosen;
    epSlots[chosen].gate = &gate;
    epSlots[chosen].lastUse = ++useCounter;
    return chosen;
}

void
Env::rebind(Gate &gate, epid_t ep)
{
    epSlots[ep].gate = &gate;
}

void
Env::detach(Gate &gate)
{
    if (gate.ep != INVALID_EP) {
        epSlots[gate.ep].gate = nullptr;
        gate.ep = INVALID_EP;
    }
}

// ---------------------------------------------------------------------
// Syscall client.
// ---------------------------------------------------------------------

Marshaller
Env::beginSyscall()
{
    return Marshaller(spm().ptr(syscStage, kif::MAX_SYSC_MSG),
                      kif::MAX_SYSC_MSG);
}

Error
Env::waitMsgRetrying(epid_t ep)
{
    for (;;) {
        Error e = dtu().waitForMsg(ep);
        if (e != Error::VpeMoved)
            return e;
        // Migrated mid-wait: the message follows us (ring contents travel
        // with the SPM; deferred replies are retargeted by the kernel).
    }
}

Error
Env::sysCall(Marshaller &m, const std::function<void(Unmarshaller &)> &onReply)
{
    ScopedCategory os(acct(), Category::Os);

    // The opcode is the first u64 the Marshaller wrote to the staging
    // area, so the client-side span carries the same name as the
    // kernel-side one.
    const bool traced = M3_TRACE_ON;
    if (traced) {
        auto op = *reinterpret_cast<const kif::Syscall *>(
            spm().ptr(syscStage, sizeof(uint64_t)));
        trace::Tracer::spanBegin(peId, kif::syscallName(op));
    }

    compute(cm.m3.marshal + cm.m3.dtuCommand);

    for (;;) {
        Error e = dtu().startSend(kif::SYSC_SEP, syscStage,
                                  static_cast<uint32_t>(m.size()),
                                  kif::SYSC_REP, 0);
        if (e == Error::DtuBusy) {
            // A VpeMoved bail-out here means the busy command was aborted
            // by the context fetch; just retry the send at the new home
            // (this request was never issued).
            dtu().waitUntilIdle();
            continue;
        }
        if (e != Error::None)
            panic("VPE%u: syscall send failed: %s", vpeId, errorName(e));
        break;
    }

    // A plain blocking wait, deliberately not waitMsgYielding: yielding
    // is itself a syscall, and the single SYSC_SEP credit is still out
    // until this reply arrives. A shared PE is reclaimed by slice
    // preemption instead while this VPE sits blocked here. The request
    // is out, so a migration mid-wait must re-wait, never re-send: the
    // kernel redirects the (deferred) reply to the new home.
    Cycles t0 = platform.simulator().curCycle();
    waitMsgRetrying(kif::SYSC_REP);
    Cycles elapsed = platform.simulator().curCycle() - t0;

    if (M3_METRICS_ON) {
        static trace::Histogram &lat =
            trace::Metrics::histogram("dtu.reply_latency.ep0");
        lat.observe(elapsed);
    }

    // Attribute the round trip: the wire time of request and reply goes
    // to Xfers, the remainder (kernel software, queueing) to OS. This is
    // the 30 / 170 cycle split of Sec. 5.3.
    uint32_t myNode = dtu().nodeId();
    uint32_t kNode = 0;  // resolved below from the send EP target
    kNode = dtu().ep(kif::SYSC_SEP).send.targetNode;
    Cycles xfer = platform.noc().idleLatency(
                      myNode, kNode, static_cast<uint32_t>(m.size())) +
                  platform.noc().idleLatency(kNode, myNode, 16);
    if (xfer > elapsed)
        xfer = elapsed;
    acct().chargeTo(Category::Xfer, xfer);
    acct().chargeTo(Category::Os, elapsed - xfer);

    int slot = dtu().fetchMsg(kif::SYSC_REP);
    if (slot < 0)
        panic("VPE%u: syscall reply ring empty after wakeup", vpeId);
    compute(cm.m3.fetchMsg + cm.m3.unmarshal);

    MessageHeader hdr = dtu().msgHeader(kif::SYSC_REP, slot);
    const uint8_t *payload =
        spm().ptr(dtu().msgAddr(kif::SYSC_REP, slot) +
                      sizeof(MessageHeader),
                  hdr.length);
    Unmarshaller um(payload, hdr.length);
    auto err = um.pull<Error>();
    if (err == Error::None && onReply)
        onReply(um);
    dtu().ackMsg(kif::SYSC_REP, slot);
    if (traced)
        trace::Tracer::spanEnd(peId);
    return err;
}

Error
Env::noop()
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::Noop;
    return sysCall(m);
}

Error
Env::heartbeat()
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::Heartbeat;
    return sysCall(m);
}

Error
Env::yield()
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::Yield;
    inYield = true;
    Error e = sysCall(m);
    inYield = false;
    return e;
}

Error
Env::waitMsgYielding(epid_t ep)
{
    while (!dtu().hasMsg(ep)) {
        if (!dtu().sharedPe() || inYield)
            return waitMsgRetrying(ep);
        // Spin-then-yield: a prompt reply beats a context switch, so
        // give it a short grace window before handing the PE over.
        // (A VpeMoved bail-out falls through to the outer re-check.)
        if (dtu().waitForMsg(ep, cm.m3.yieldSpin) == Error::None)
            return Error::None;
        if (yield() != Error::None) {
            // Nobody else to run: parking the fiber is free, and the
            // kernel can still preempt us when that changes.
            return waitMsgRetrying(ep);
        }
        // We were descheduled and are resident again; anything that
        // arrived meanwhile was parked and has been re-injected.
    }
    return Error::None;
}

Error
Env::createVpe(capsel_t dstSel, capsel_t mgateSel, const std::string &name,
               kif::PeTypeReq type, const std::string &attr,
               vpeid_t &vpeOut, peid_t &peOut)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::CreateVpe << dstSel << mgateSel << name << type
      << attr;
    return sysCall(m, [&](Unmarshaller &um) {
        vpeOut = static_cast<vpeid_t>(um.pull<uint64_t>());
        peOut = static_cast<peid_t>(um.pull<uint64_t>());
    });
}

Error
Env::vpeStart(capsel_t vpeSel)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::VpeStart << vpeSel;
    return sysCall(m);
}

Error
Env::vpeWait(capsel_t vpeSel, int &exitCode)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::VpeWait << vpeSel;
    return sysCall(m, [&](Unmarshaller &um) {
        exitCode = static_cast<int>(um.pull<int64_t>());
    });
}

void
Env::vpeExit(int exitCode)
{
    ScopedCategory os(acct(), Category::Os);
    Marshaller m = beginSyscall();
    m << kif::Syscall::VpeExit << static_cast<int64_t>(exitCode);
    compute(cm.m3.marshal + cm.m3.dtuCommand);
    dtu().startSend(kif::SYSC_SEP, syscStage,
                    static_cast<uint32_t>(m.size()));
    dtu().waitUntilIdle();
}

Error
Env::createRgate(capsel_t dstSel, uint32_t slots, uint32_t slotSize)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::CreateRgate << dstSel
      << static_cast<uint64_t>(slots) << static_cast<uint64_t>(slotSize);
    return sysCall(m);
}

Error
Env::createSgate(capsel_t dstSel, capsel_t rgateSel, label_t label,
                 uint32_t credits)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::CreateSgate << dstSel << rgateSel << label
      << static_cast<uint64_t>(credits);
    return sysCall(m);
}

Error
Env::reqMem(capsel_t dstSel, uint64_t size, uint8_t perms)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::ReqMem << dstSel << size
      << static_cast<uint64_t>(perms);
    return sysCall(m);
}

Error
Env::deriveMem(capsel_t srcSel, capsel_t dstSel, goff_t off, uint64_t size,
               uint8_t perms)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::DeriveMem << srcSel << dstSel << off << size
      << static_cast<uint64_t>(perms);
    return sysCall(m);
}

Error
Env::activate(capsel_t capSel, epid_t ep, spmaddr_t bufAddr)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::Activate << capSel << static_cast<uint64_t>(ep)
      << static_cast<uint64_t>(bufAddr);
    return sysCall(m);
}

Error
Env::exchange(capsel_t vpeSel, capsel_t srcStart, uint32_t count,
              capsel_t dstStart, kif::ExchangeOp op)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::Exchange << vpeSel << srcStart
      << static_cast<uint64_t>(count) << dstStart << op;
    return sysCall(m);
}

Error
Env::createSrv(capsel_t dstSel, capsel_t rgateSel, const std::string &name)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::CreateSrv << dstSel << rgateSel << name;
    return sysCall(m);
}

Error
Env::openSess(capsel_t dstSel, const std::string &name, uint64_t arg)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::OpenSess << dstSel << name << arg;
    return sysCall(m);
}

Error
Env::querySrv(const std::string &name, uint64_t &groupSize,
              uint64_t &replicas)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::QuerySrv << name;
    return sysCall(m, [&](Unmarshaller &um) {
        groupSize = um.pull<uint64_t>();
        replicas = um.pull<uint64_t>();
    });
}

Error
Env::querySrv(const std::string &name, uint64_t &groupSize)
{
    uint64_t replicas = 1;
    return querySrv(name, groupSize, replicas);
}

Error
Env::exchangeSess(capsel_t sessSel, kif::ExchangeOp op, capsel_t dstStart,
                  uint32_t count, const std::vector<uint64_t> &args,
                  std::vector<uint64_t> *ret)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::ExchangeSess << sessSel << op << dstStart
      << static_cast<uint64_t>(count)
      << static_cast<uint64_t>(args.size());
    for (uint64_t a : args)
        m << a;
    return sysCall(m, [&](Unmarshaller &um) {
        auto numArgs = um.pull<uint64_t>();
        for (uint64_t i = 0; i < numArgs; ++i) {
            uint64_t v = um.pull<uint64_t>();
            if (ret)
                ret->push_back(v);
        }
    });
}

Error
Env::revoke(capsel_t capSel, bool own)
{
    Marshaller m = beginSyscall();
    m << kif::Syscall::Revoke << capSel << static_cast<uint64_t>(own);
    return sysCall(m);
}

} // namespace m3
