#include "libm3/m3system.hh"

#include "base/logging.hh"
#include "trace/metrics.hh"
#include "trace/reqtrace.hh"
#include "trace/trace.hh"

namespace m3
{

namespace
{

/** Clock adapter handed to the tracer: reads this machine's cycle (on a
 *  sharded engine, the cycle of whichever shard the calling thread is
 *  executing — the one the traced event belongs to). */
uint64_t
simClock(const void *ctx)
{
    return static_cast<const Simulator *>(ctx)->curCycle();
}

} // anonymous namespace

M3System::M3System(M3SystemCfg config) : cfg(std::move(config))
{
    if (cfg.withFs && cfg.fsInstances == 0)
        fatal("withFs requires at least one fs instance");
    if (cfg.numKernels == 0)
        fatal("numKernels must be at least 1");
    if (cfg.distfsStripes == 0)
        fatal("distfsStripes must be at least 1");
    if (cfg.distfsReplicas == 0)
        fatal("distfsReplicas must be at least 1");
    if (cfg.distfsReplicas > cfg.distfsStripes)
        fatal("distfsReplicas (%u) cannot exceed distfsStripes (%u): "
              "every copy needs its own stripe",
              cfg.distfsReplicas, cfg.distfsStripes);
    const bool striped = cfg.distfsStripes > 1;
    if (cfg.distfsSpares && !striped)
        fatal("distfsSpares requires a striped machine "
              "(distfsStripes > 1)");
    if (striped) {
        if (!cfg.withFs)
            fatal("distfs requires withFs");
        // One m3fs instance per stripe, plus the standby spares that
        // rebuild() re-mirrors dead stripes onto; the group fans
        // sessions out over the stripes only.
        cfg.fsInstances = cfg.distfsStripes + cfg.distfsSpares;
    }
    if (cfg.shards > 1) {
        // The shard cut is the kernel-domain boundary: with S ==
        // numKernels, PE p's shard (p mod S) is exactly domainOfPe(p),
        // so every kernel <-> owned-PE interaction stays shard-local and
        // only NoC packets ever cross the cut.
        if (cfg.shards != cfg.numKernels)
            fatal("shards (%u) must equal numKernels (%u): the engine "
                  "shards along kernel-domain boundaries",
                  cfg.shards, cfg.numKernels);
        // Features whose bookkeeping reaches across domains from
        // arbitrary execution contexts are not (yet) shard-safe.
        if (cfg.multiplexSlice)
            fatal("shards > 1 does not support VPE time multiplexing");
        if (cfg.migration || cfg.failover)
            fatal("shards > 1 does not support migration or failover");
        if (!cfg.drains.empty())
            fatal("shards > 1 does not support PE drains");
        if (cfg.faults.active())
            fatal("shards > 1 does not support fault injection");
        if (cfg.watchdogPeriod)
            fatal("shards > 1 does not support the kernel watchdog");
        // Conservative lookahead: the cheapest packet that can cross a
        // shard cut travels two hops (adjacent nodes are always on
        // different shards) and serializes at least a bare header.
        const HwCosts &hw = cfg.costs.hw;
        Cycles lookahead =
            2 * hw.nocHopLatency +
            (hw.msgHeaderSize + hw.nocBytesPerCycle - 1) /
                hw.nocBytesPerCycle;
        sim.configureShards(cfg.shards, lookahead);
        if (trace::Tracer::on) {
            trace::Tracer::setParallel(true);
            tracerParallel = true;
        }
        if (trace::ReqTrace::on) {
            trace::ReqTrace::setParallel(true);
            reqTraceParallel = true;
        }
    }
    sim.setThreads(cfg.threads);

    PlatformSpec spec;
    spec.costs = cfg.costs;
    spec.dramBytes = cfg.dramBytes;
    // Striped machines give every stripe its own DRAM module so the
    // stripes' memory bandwidth adds up instead of queueing at one
    // controller; modules == 1 keeps the seed's node numbering.
    spec.dramModules = striped ? cfg.fsInstances : 1;
    uint32_t generalPes = cfg.numKernels + fsCount() + cfg.appPes;
    spec.pes.assign(generalPes, PeDesc::general());
    // A striped data plane multiplies the client's concurrent gates
    // (one mem gate in flight per stripe and open file, plus one send
    // gate per stripe session): provision wider DTUs so steady-state
    // I/O is not dominated by endpoint eviction and kernel re-Activate
    // round trips. Non-striped machines keep the prototype's 8 EPs —
    // and their exact cycle counts.
    if (striped) {
        // Replicated mounts hold one extra subfile (and its in-flight
        // memory gate) per stripe and copy; widen further so mirrored
        // writes do not thrash the endpoint cache. R = 1 keeps the
        // PR 9 formula — and its exact cycle counts.
        uint32_t want = 4 + 3 * cfg.distfsStripes +
                        2 * cfg.distfsStripes * (cfg.distfsReplicas - 1);
        epid_t eps = static_cast<epid_t>(
            std::min<uint32_t>(MAX_EP_COUNT, want));
        for (PeDesc &d : spec.pes)
            d.epCount = std::max(d.epCount, eps);
    }
    // Multi-kernel machines carry two extra rings (inter-kernel request
    // and reply) in each kernel's scratchpad; give kernel PEs room for
    // them. Single-kernel machines keep the classic SPM layout.
    if (cfg.numKernels > 1)
        for (uint32_t k = 0; k < cfg.numKernels; ++k)
            spec.pes[k].spmDataSize = 2 * SPM_DATA_SIZE;
    for (const PeDesc &d : cfg.extraPes)
        spec.pes.push_back(d);

    plat = std::make_unique<Platform>(sim, spec);

    // Fresh machine: clear the cross-system environment registry
    // (fiber homes recorded by a previous M3System in this process).
    Env::resetRegistry();
    if (cfg.migration || cfg.failover) {
        for (peid_t p = 0; p < plat->peCount(); ++p) {
            // When a VPE's software lands on another PE, repoint its
            // environment: a live fiber learns its new home on wakeup,
            // a failover restart resolves it at functor entry.
            plat->pe(p).setVpeMovedHook(
                [](Fiber *f, uint64_t id, peid_t newPe) {
                    if (f)
                        Env::noteMoved(f, newPe);
                    else
                        Env::setHome(static_cast<vpeid_t>(id), newPe);
                });
            if (cfg.failover)
                plat->pe(p).setRetainPrograms(true);
        }
    }

    if (cfg.faults.active()) {
        faults = std::make_unique<FaultPlan>(cfg.faults);
        plat->setFaultPlan(*faults);
    }

    goff_t dramAllocStart = 0;
    for (uint32_t k = 0; k < fsCount(); ++k) {
        if (striped) {
            // Stripe k's image at offset 0 of DRAM module k.
            images.push_back(std::make_unique<m3fs::FsImage>(
                plat->dram(k), 0, cfg.fsSpec));
        } else {
            images.push_back(std::make_unique<m3fs::FsImage>(
                plat->dram(), dramAllocStart, cfg.fsSpec));
            dramAllocStart += images.back()->sizeBytes();
        }
    }
    if (striped && !images.empty()) {
        // The kernels' dynamic region lives in module 0, above its
        // stripe image.
        dramAllocStart = images[0]->sizeBytes();
    }

    // One kernel per domain. Each gets its own slice of the dynamic DRAM
    // region; a single kernel keeps the whole region, exactly as before.
    const uint32_t K = cfg.numKernels;
    for (uint32_t k = 0; k < K; ++k) {
        goff_t start = dramAllocStart;
        goff_t end = 0;
        if (K > 1) {
            goff_t usable = plat->dram().size() - dramAllocStart;
            goff_t share = (usable / K) & ~goff_t{63};
            start = dramAllocStart + k * share;
            end = k == K - 1 ? plat->dram().size() : start + share;
        }
        kerns.push_back(std::make_unique<kernel::Kernel>(
            *plat, kernelPe(k), start, end));
    }
    if (K > 1) {
        std::vector<peid_t> kernelPes;
        for (uint32_t k = 0; k < K; ++k)
            kernelPes.push_back(kernelPe(k));
        std::vector<uint32_t> ownedCounts(K, 0);
        for (peid_t p = K; p < plat->peCount(); ++p)
            ownedCounts[domainOfPe(p)]++;
        for (uint32_t k = 0; k < K; ++k) {
            kernel::Kernel::DomainCfg dc;
            dc.id = k;
            dc.count = K;
            dc.kernelPes = kernelPes;
            dc.ownedPes.assign(plat->peCount(), false);
            for (peid_t p = K; p < plat->peCount(); ++p)
                dc.ownedPes[p] = domainOfPe(p) == k;
            dc.ownedCounts = ownedCounts;
            kerns[k]->setDomain(std::move(dc));
        }
    }
    for (auto &k : kerns) {
        if (cfg.watchdogPeriod)
            k->enableWatchdog(cfg.watchdogDeadline, cfg.watchdogPeriod);
        if (cfg.multiplexSlice)
            k->enableMultiplexing(cfg.multiplexSlice);
        // Failover needs the same per-VPE context machinery (scheds
        // entries, generations) migration builds on, so it implies it.
        if (cfg.migration || cfg.failover)
            k->enableMigration();
        if (cfg.failover)
            k->enableFailover();
    }
    for (auto &[drainPe, drainAt] : cfg.drains)
        kernelOf(drainPe).scheduleDrain(drainPe, drainAt);

    for (uint32_t k = 0; k < fsCount(); ++k) {
        m3fs::ServerConfig srvCfg = cfg.fsCfg;
        srvCfg.fsBytes = images[k]->sizeBytes();
        srvCfg.name = M3SystemCfg::fsName(k);

        kernel::Kernel::BootProgram fsProg;
        fsProg.pe = fsPe(k);
        fsProg.name = srvCfg.name;
        fsProg.caps.push_back(kernel::Kernel::BootCap{
            srvCfg.fsMemSel, striped ? plat->dramNode(k) : plat->dramNode(),
            striped ? 0
                    : static_cast<goff_t>(k) * images[k]->sizeBytes(),
            images[k]->sizeBytes(), MEM_RW});
        Platform *platPtr = plat.get();
        peid_t pe = fsPe(k);
        fsProg.main = [platPtr, pe, srvCfg](vpeid_t id) {
            Env env(*platPtr, pe, id);
            int rc = m3fs::serverMain(srvCfg);
            env.vpeExit(rc);
        };
        kernelOf(fsPe(k)).addBootProgram(std::move(fsProg));
    }
    if (striped) {
        // Every kernel learns the stripe set so OpenSess("distfs", k)
        // resolves anywhere (members in other domains are reached via
        // the cross-domain service announcement).
        std::vector<std::string> members;
        for (uint32_t k = 0; k < cfg.distfsStripes; ++k)
            members.push_back(M3SystemCfg::fsName(k));
        for (auto &kern : kerns)
            kern->addServiceGroup(M3SystemCfg::DISTFS_GROUP, members,
                                  cfg.distfsReplicas);
    }

    if (trace::Tracer::on) {
        trace::Tracer::setClock(&simClock, &sim);
        for (peid_t p = 0; p < plat->peCount(); ++p) {
            uint32_t n = plat->nocIdOf(p);
            trace::Tracer::trackName(p, "pe" + std::to_string(p));
            trace::Tracer::trackName(trace::dtuTrack(n),
                                     "pe" + std::to_string(p) + " dtu");
            trace::Tracer::trackName(trace::nocTrack(n),
                                     "noc n" + std::to_string(n));
        }
        // A single module keeps the seed's "dram" track name; striped
        // machines label each module.
        if (plat->dramModules() > 1) {
            for (uint32_t m = 0; m < plat->dramModules(); ++m)
                trace::Tracer::trackName(
                    trace::nocTrack(plat->dramNode(m)),
                    "dram" + std::to_string(m));
        } else {
            trace::Tracer::trackName(trace::nocTrack(plat->dramNode()),
                                     "dram");
        }
        // Request tracks appear only when request tracing is armed, so
        // plain traces keep the seed's track set byte-for-byte.
        if (trace::ReqTrace::on) {
            for (peid_t p = 0; p < plat->peCount(); ++p) {
                uint32_t n = plat->nocIdOf(p);
                trace::Tracer::trackName(trace::reqTrack(n),
                                         "req pe" + std::to_string(p));
            }
        }
        // Multi-kernel machines label each kernel's track; single-kernel
        // machines keep the seed's track names byte-for-byte.
        if (cfg.numKernels > 1) {
            for (uint32_t k = 0; k < cfg.numKernels; ++k)
                trace::Tracer::trackName(
                    kernelPe(k), "kernel" + std::to_string(k) + " (pe" +
                                     std::to_string(kernelPe(k)) + ")");
        }
    }
}

M3System::~M3System()
{
    if (trace::Metrics::on)
        exportMetrics();
    trace::Tracer::clearClock(&sim);
    if (tracerParallel)
        trace::Tracer::setParallel(false);
    if (reqTraceParallel)
        trace::ReqTrace::setParallel(false);
}

void
M3System::exportMetrics()
{
    using trace::Metrics;

    const SimStats ss = sim.foldedStats();
    Metrics::counter("sim.events_scheduled").add(ss.eventsScheduled);
    Metrics::counter("sim.events_executed").add(ss.eventsExecuted);
    Metrics::gauge("sim.peak_pending").setMax(ss.peakPending);
    Metrics::counter("sim.callback_heap_fallbacks")
        .add(ss.callbackHeapFallbacks);

    // Aggregate across all kernel instances so the "kernel.*" schema is
    // the same regardless of numKernels.
    kernel::KernelStats ks;
    for (const auto &k : kerns) {
        const kernel::KernelStats &s = k->stats();
        ks.syscalls += s.syscalls;
        ks.vpesCreated += s.vpesCreated;
        ks.capsDelegated += s.capsDelegated;
        ks.capsRevoked += s.capsRevoked;
        ks.serviceRequests += s.serviceRequests;
        ks.heartbeats += s.heartbeats;
        ks.watchdogReclaims += s.watchdogReclaims;
        ks.ctxSwitches += s.ctxSwitches;
        ks.yields += s.yields;
        ks.ikRequestsSent += s.ikRequestsSent;
        ks.ikRequestsHandled += s.ikRequestsHandled;
        ks.remoteVpesPlaced += s.remoteVpesPlaced;
        ks.migrationsStarted += s.migrationsStarted;
        ks.migrationsCompleted += s.migrationsCompleted;
        ks.migrationsAborted += s.migrationsAborted;
        ks.failovers += s.failovers;
        ks.drains += s.drains;
        ks.pesLeased += s.pesLeased;
    }
    Metrics::counter("kernel.syscalls").add(ks.syscalls);
    Metrics::counter("kernel.vpes_created").add(ks.vpesCreated);
    Metrics::counter("kernel.caps_delegated").add(ks.capsDelegated);
    Metrics::counter("kernel.caps_revoked").add(ks.capsRevoked);
    Metrics::counter("kernel.service_requests").add(ks.serviceRequests);
    Metrics::counter("kernel.heartbeats").add(ks.heartbeats);
    Metrics::counter("kernel.watchdog_reclaims").add(ks.watchdogReclaims);
    Metrics::counter("kernel.ctx_switches").add(ks.ctxSwitches);
    Metrics::counter("kernel.yields").add(ks.yields);
    if (cfg.migration || cfg.failover) {
        // Migration keys exist only on machines that enable the
        // feature, keeping the seed's metric key set untouched. The
        // drain-duration histogram (kernel.drain.cycles) is observed
        // directly by the kernel as drains complete.
        Metrics::counter("kernel.migrations_started")
            .add(ks.migrationsStarted);
        Metrics::counter("kernel.migrations_completed")
            .add(ks.migrationsCompleted);
        Metrics::counter("kernel.migrations_aborted")
            .add(ks.migrationsAborted);
        Metrics::counter("kernel.failovers").add(ks.failovers);
        Metrics::counter("kernel.drains").add(ks.drains);
        Metrics::counter("kernel.pes_leased").add(ks.pesLeased);
    }
    if (kerns.size() > 1) {
        // Per-instance breakdown plus the IK totals, only registered on
        // multi-kernel machines (a single kernel keeps the seed's exact
        // metric key set).
        Metrics::counter("kernel.ik_requests_sent").add(ks.ikRequestsSent);
        Metrics::counter("kernel.ik_requests_handled")
            .add(ks.ikRequestsHandled);
        Metrics::counter("kernel.remote_vpes_placed")
            .add(ks.remoteVpesPlaced);
        for (size_t k = 0; k < kerns.size(); ++k) {
            const kernel::KernelStats &s = kerns[k]->stats();
            std::string p = "kernel.k" + std::to_string(k) + ".";
            Metrics::counter(p + "syscalls").add(s.syscalls);
            Metrics::counter(p + "vpes_created").add(s.vpesCreated);
            Metrics::counter(p + "ik_requests_sent").add(s.ikRequestsSent);
            Metrics::counter(p + "ik_requests_handled")
                .add(s.ikRequestsHandled);
            Metrics::counter(p + "remote_vpes_placed")
                .add(s.remoteVpesPlaced);
        }
    }

    DtuStats agg;
    for (peid_t p = 0; p < plat->peCount(); ++p) {
        const DtuStats &ds = plat->pe(p).dtu().stats();
        agg.msgsSent += ds.msgsSent;
        agg.msgsReceived += ds.msgsReceived;
        agg.msgsDropped += ds.msgsDropped;
        agg.msgsCorrupted += ds.msgsCorrupted;
        agg.creditDenials += ds.creditDenials;
        agg.memReads += ds.memReads;
        agg.memWrites += ds.memWrites;
        agg.bytesRead += ds.bytesRead;
        agg.bytesWritten += ds.bytesWritten;
        agg.extConfigs += ds.extConfigs;
        agg.msgsParked += ds.msgsParked;
        agg.msgsUnparked += ds.msgsUnparked;
    }
    Metrics::counter("dtu.msgs_sent").add(agg.msgsSent);
    Metrics::counter("dtu.msgs_received").add(agg.msgsReceived);
    Metrics::counter("dtu.msgs_dropped").add(agg.msgsDropped);
    Metrics::counter("dtu.msgs_corrupted").add(agg.msgsCorrupted);
    Metrics::counter("dtu.credit_denials").add(agg.creditDenials);
    Metrics::counter("dtu.mem_reads").add(agg.memReads);
    Metrics::counter("dtu.mem_writes").add(agg.memWrites);
    Metrics::counter("dtu.bytes_read").add(agg.bytesRead);
    Metrics::counter("dtu.bytes_written").add(agg.bytesWritten);
    Metrics::counter("dtu.ext_configs").add(agg.extConfigs);
    Metrics::counter("dtu.msgs_parked").add(agg.msgsParked);
    Metrics::counter("dtu.msgs_unparked").add(agg.msgsUnparked);

    const NocStats &ns = plat->noc().stats();
    Metrics::counter("noc.packets").add(ns.packets);
    Metrics::counter("noc.payload_bytes").add(ns.payloadBytes);
    Metrics::counter("noc.contention_stalls").add(ns.contentionStalls);
    Metrics::counter("noc.packets_dropped").add(ns.packetsDropped);
    Metrics::counter("noc.packets_delayed").add(ns.packetsDelayed);
    Metrics::counter("noc.packets_delivered").add(ns.packetsDelivered);
    plat->noc().exportMetrics(sim.curCycle());

    if (faults) {
        const FaultStats &fs = faults->stats();
        Metrics::counter("faults.packets_seen").add(fs.packetsSeen);
        Metrics::counter("faults.packets_dropped").add(fs.packetsDropped);
        Metrics::counter("faults.packets_delayed").add(fs.packetsDelayed);
        Metrics::counter("faults.delay_injected").add(fs.delayInjected);
        Metrics::counter("faults.payloads_corrupted")
            .add(fs.payloadsCorrupted);
        Metrics::counter("faults.ext_acks_refused").add(fs.extAcksRefused);
        Metrics::counter("faults.pe_kills").add(fs.peKills);
    }
}

void
M3System::runRoot(const std::string &name, std::function<int()> main)
{
    if (rootInstalled)
        fatal("runRoot called twice");
    rootInstalled = true;

    kernel::Kernel::BootProgram rootProg;
    rootProg.pe = rootPe();
    rootProg.name = name;
    Platform *platPtr = plat.get();
    peid_t pe = rootPe();
    M3System *self = this;
    rootProg.main = [platPtr, pe, self, main = std::move(main)](vpeid_t id) {
        Env env(*platPtr, pe, id);
        int rc = main();
        self->rootExit = rc;
        self->rootDone = true;
        self->rootAcct = env.fiber.accounting();
        env.vpeExit(rc);
    };
    kernelOf(rootPe()).addBootProgram(std::move(rootProg));
    for (auto &k : kerns)
        k->start();
}

Accounting
M3System::appAccounting() const
{
    Accounting total;
    std::vector<std::string> systemPrefixes;
    for (uint32_t k = 0; k < cfg.numKernels; ++k)
        systemPrefixes.push_back("pe" + std::to_string(kernelPe(k)) + ":");
    for (uint32_t k = 0; k < fsCount(); ++k)
        systemPrefixes.push_back("pe" + std::to_string(fsPe(k)) + ":");
    sim.forEachFiber([&](Fiber &f) {
        const std::string &n = f.fiberName();
        for (const std::string &p : systemPrefixes)
            if (n.rfind(p, 0) == 0)
                return;
        total.merge(f.accounting());
    });
    return total;
}

void
M3System::printStats() const
{
    std::printf("==== M3System stats @ cycle %llu ====\n",
                static_cast<unsigned long long>(sim.curCycle()));
    for (size_t k = 0; k < kerns.size(); ++k) {
        const kernel::KernelStats &ks = kerns[k]->stats();
        std::string label =
            kerns.size() > 1 ? "kernel" + std::to_string(k) : "kernel";
        const char *name = label.c_str();
        std::printf("%s: %llu syscalls, %llu VPEs, %llu caps delegated, "
                    "%llu revoked, %llu service requests\n",
                    name, static_cast<unsigned long long>(ks.syscalls),
                    static_cast<unsigned long long>(ks.vpesCreated),
                    static_cast<unsigned long long>(ks.capsDelegated),
                    static_cast<unsigned long long>(ks.capsRevoked),
                    static_cast<unsigned long long>(ks.serviceRequests));
        if (ks.ctxSwitches || ks.yields)
            std::printf("%s: %llu ctx switches, %llu yields\n", name,
                        static_cast<unsigned long long>(ks.ctxSwitches),
                        static_cast<unsigned long long>(ks.yields));
        if (ks.migrationsStarted || ks.failovers)
            std::printf("%s: %llu migrations (%llu completed, "
                        "%llu aborted), %llu failovers, %llu drains\n",
                        name,
                        static_cast<unsigned long long>(
                            ks.migrationsStarted),
                        static_cast<unsigned long long>(
                            ks.migrationsCompleted),
                        static_cast<unsigned long long>(
                            ks.migrationsAborted),
                        static_cast<unsigned long long>(ks.failovers),
                        static_cast<unsigned long long>(ks.drains));
        if (ks.ikRequestsSent || ks.ikRequestsHandled)
            std::printf("%s: %llu ik requests sent, %llu handled, "
                        "%llu remote VPEs placed\n",
                        name,
                        static_cast<unsigned long long>(ks.ikRequestsSent),
                        static_cast<unsigned long long>(
                            ks.ikRequestsHandled),
                        static_cast<unsigned long long>(
                            ks.remoteVpesPlaced));
    }
    const NocStats &ns = plat->noc().stats();
    std::printf("noc: %llu packets, %llu payload bytes, "
                "%llu contention stall cycles\n",
                static_cast<unsigned long long>(ns.packets),
                static_cast<unsigned long long>(ns.payloadBytes),
                static_cast<unsigned long long>(ns.contentionStalls));
    for (peid_t p = 0; p < plat->peCount(); ++p) {
        const DtuStats &ds = plat->pe(p).dtu().stats();
        if (!ds.msgsSent && !ds.msgsReceived && !ds.memReads &&
            !ds.memWrites)
            continue;
        std::printf("pe%-2u dtu: %6llu sent %6llu recvd %4llu dropped | "
                    "%6llu rd (%llu B) %6llu wr (%llu B)\n",
                    p, static_cast<unsigned long long>(ds.msgsSent),
                    static_cast<unsigned long long>(ds.msgsReceived),
                    static_cast<unsigned long long>(ds.msgsDropped),
                    static_cast<unsigned long long>(ds.memReads),
                    static_cast<unsigned long long>(ds.bytesRead),
                    static_cast<unsigned long long>(ds.memWrites),
                    static_cast<unsigned long long>(ds.bytesWritten));
    }
}

bool
M3System::simulate(Cycles limit)
{
    eventsRun += sim.simulate(limit);
    if (!rootDone && sim.queuesEmpty()) {
        auto blocked = sim.blockedFibers();
        std::string names;
        for (const auto &n : blocked)
            names += n + " ";
        warn("simulation drained without root exit; blocked fibers: %s",
             names.c_str());
    }
    return rootDone;
}

} // namespace m3
