#include "libm3/m3system.hh"

#include "base/logging.hh"

namespace m3
{

M3System::M3System(M3SystemCfg config) : cfg(std::move(config))
{
    if (cfg.withFs && cfg.fsInstances == 0)
        fatal("withFs requires at least one fs instance");

    PlatformSpec spec;
    spec.costs = cfg.costs;
    spec.dramBytes = cfg.dramBytes;
    uint32_t generalPes = 1 /*kernel*/ + fsCount() + cfg.appPes;
    spec.pes.assign(generalPes, PeDesc::general());
    for (const PeDesc &d : cfg.extraPes)
        spec.pes.push_back(d);

    plat = std::make_unique<Platform>(sim, spec);

    if (cfg.faults.active()) {
        faults = std::make_unique<FaultPlan>(cfg.faults);
        plat->setFaultPlan(*faults);
    }

    goff_t dramAllocStart = 0;
    for (uint32_t k = 0; k < fsCount(); ++k) {
        images.push_back(std::make_unique<m3fs::FsImage>(
            plat->dram(), dramAllocStart, cfg.fsSpec));
        dramAllocStart += images.back()->sizeBytes();
    }

    kern = std::make_unique<kernel::Kernel>(*plat, kernelPe(),
                                            dramAllocStart);
    if (cfg.watchdogPeriod)
        kern->enableWatchdog(cfg.watchdogDeadline, cfg.watchdogPeriod);

    for (uint32_t k = 0; k < fsCount(); ++k) {
        m3fs::ServerConfig srvCfg = cfg.fsCfg;
        srvCfg.fsBytes = images[k]->sizeBytes();
        srvCfg.name = M3SystemCfg::fsName(k);

        kernel::Kernel::BootProgram fsProg;
        fsProg.pe = fsPe(k);
        fsProg.name = srvCfg.name;
        fsProg.caps.push_back(kernel::Kernel::BootCap{
            srvCfg.fsMemSel, plat->dramNode(),
            static_cast<goff_t>(k) * images[k]->sizeBytes(),
            images[k]->sizeBytes(), MEM_RW});
        Platform *platPtr = plat.get();
        peid_t pe = fsPe(k);
        fsProg.main = [platPtr, pe, srvCfg](vpeid_t id) {
            Env env(*platPtr, pe, id);
            int rc = m3fs::serverMain(srvCfg);
            env.vpeExit(rc);
        };
        kern->addBootProgram(std::move(fsProg));
    }
}

void
M3System::runRoot(const std::string &name, std::function<int()> main)
{
    if (rootInstalled)
        fatal("runRoot called twice");
    rootInstalled = true;

    kernel::Kernel::BootProgram rootProg;
    rootProg.pe = rootPe();
    rootProg.name = name;
    Platform *platPtr = plat.get();
    peid_t pe = rootPe();
    M3System *self = this;
    rootProg.main = [platPtr, pe, self, main = std::move(main)](vpeid_t id) {
        Env env(*platPtr, pe, id);
        int rc = main();
        self->rootExit = rc;
        self->rootDone = true;
        self->rootAcct = env.fiber.accounting();
        env.vpeExit(rc);
    };
    kern->addBootProgram(std::move(rootProg));
    kern->start();
}

Accounting
M3System::appAccounting() const
{
    Accounting total;
    std::vector<std::string> systemPrefixes;
    systemPrefixes.push_back("pe" + std::to_string(kernelPe()) + ":");
    for (uint32_t k = 0; k < fsCount(); ++k)
        systemPrefixes.push_back("pe" + std::to_string(fsPe(k)) + ":");
    sim.forEachFiber([&](Fiber &f) {
        const std::string &n = f.fiberName();
        for (const std::string &p : systemPrefixes)
            if (n.rfind(p, 0) == 0)
                return;
        total.merge(f.accounting());
    });
    return total;
}

void
M3System::printStats() const
{
    std::printf("==== M3System stats @ cycle %llu ====\n",
                static_cast<unsigned long long>(sim.curCycle()));
    const kernel::KernelStats &ks = kern->stats();
    std::printf("kernel: %llu syscalls, %llu VPEs, %llu caps delegated, "
                "%llu revoked, %llu service requests\n",
                static_cast<unsigned long long>(ks.syscalls),
                static_cast<unsigned long long>(ks.vpesCreated),
                static_cast<unsigned long long>(ks.capsDelegated),
                static_cast<unsigned long long>(ks.capsRevoked),
                static_cast<unsigned long long>(ks.serviceRequests));
    const NocStats &ns = plat->noc().stats();
    std::printf("noc: %llu packets, %llu payload bytes, "
                "%llu contention stall cycles\n",
                static_cast<unsigned long long>(ns.packets),
                static_cast<unsigned long long>(ns.payloadBytes),
                static_cast<unsigned long long>(ns.contentionStalls));
    for (peid_t p = 0; p < plat->peCount(); ++p) {
        const DtuStats &ds = plat->pe(p).dtu().stats();
        if (!ds.msgsSent && !ds.msgsReceived && !ds.memReads &&
            !ds.memWrites)
            continue;
        std::printf("pe%-2u dtu: %6llu sent %6llu recvd %4llu dropped | "
                    "%6llu rd (%llu B) %6llu wr (%llu B)\n",
                    p, static_cast<unsigned long long>(ds.msgsSent),
                    static_cast<unsigned long long>(ds.msgsReceived),
                    static_cast<unsigned long long>(ds.msgsDropped),
                    static_cast<unsigned long long>(ds.memReads),
                    static_cast<unsigned long long>(ds.bytesRead),
                    static_cast<unsigned long long>(ds.memWrites),
                    static_cast<unsigned long long>(ds.bytesWritten));
    }
}

bool
M3System::simulate(Cycles limit)
{
    eventsRun += sim.simulate(limit);
    if (!rootDone && sim.queue().empty()) {
        auto blocked = sim.blockedFibers();
        std::string names;
        for (const auto &n : blocked)
            names += n + " ";
        warn("simulation drained without root exit; blocked fibers: %s",
             names.c_str());
    }
    return rootDone;
}

} // namespace m3
