#include "libm3/m3system.hh"

#include "base/logging.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace m3
{

namespace
{

/** Clock adapter handed to the tracer: reads this machine's cycle. */
uint64_t
queueClock(const void *ctx)
{
    return static_cast<const EventQueue *>(ctx)->curCycle();
}

} // anonymous namespace

M3System::M3System(M3SystemCfg config) : cfg(std::move(config))
{
    if (cfg.withFs && cfg.fsInstances == 0)
        fatal("withFs requires at least one fs instance");

    PlatformSpec spec;
    spec.costs = cfg.costs;
    spec.dramBytes = cfg.dramBytes;
    uint32_t generalPes = 1 /*kernel*/ + fsCount() + cfg.appPes;
    spec.pes.assign(generalPes, PeDesc::general());
    for (const PeDesc &d : cfg.extraPes)
        spec.pes.push_back(d);

    plat = std::make_unique<Platform>(sim, spec);

    if (cfg.faults.active()) {
        faults = std::make_unique<FaultPlan>(cfg.faults);
        plat->setFaultPlan(*faults);
    }

    goff_t dramAllocStart = 0;
    for (uint32_t k = 0; k < fsCount(); ++k) {
        images.push_back(std::make_unique<m3fs::FsImage>(
            plat->dram(), dramAllocStart, cfg.fsSpec));
        dramAllocStart += images.back()->sizeBytes();
    }

    kern = std::make_unique<kernel::Kernel>(*plat, kernelPe(),
                                            dramAllocStart);
    if (cfg.watchdogPeriod)
        kern->enableWatchdog(cfg.watchdogDeadline, cfg.watchdogPeriod);
    if (cfg.multiplexSlice)
        kern->enableMultiplexing(cfg.multiplexSlice);

    for (uint32_t k = 0; k < fsCount(); ++k) {
        m3fs::ServerConfig srvCfg = cfg.fsCfg;
        srvCfg.fsBytes = images[k]->sizeBytes();
        srvCfg.name = M3SystemCfg::fsName(k);

        kernel::Kernel::BootProgram fsProg;
        fsProg.pe = fsPe(k);
        fsProg.name = srvCfg.name;
        fsProg.caps.push_back(kernel::Kernel::BootCap{
            srvCfg.fsMemSel, plat->dramNode(),
            static_cast<goff_t>(k) * images[k]->sizeBytes(),
            images[k]->sizeBytes(), MEM_RW});
        Platform *platPtr = plat.get();
        peid_t pe = fsPe(k);
        fsProg.main = [platPtr, pe, srvCfg](vpeid_t id) {
            Env env(*platPtr, pe, id);
            int rc = m3fs::serverMain(srvCfg);
            env.vpeExit(rc);
        };
        kern->addBootProgram(std::move(fsProg));
    }

    if (trace::Tracer::on) {
        trace::Tracer::setClock(&queueClock, &sim.queue());
        for (peid_t p = 0; p < plat->peCount(); ++p) {
            uint32_t n = plat->nocIdOf(p);
            trace::Tracer::trackName(p, "pe" + std::to_string(p));
            trace::Tracer::trackName(trace::dtuTrack(n),
                                     "pe" + std::to_string(p) + " dtu");
            trace::Tracer::trackName(trace::nocTrack(n),
                                     "noc n" + std::to_string(n));
        }
        trace::Tracer::trackName(trace::nocTrack(plat->dramNode()), "dram");
    }
}

M3System::~M3System()
{
    if (trace::Metrics::on)
        exportMetrics();
    trace::Tracer::clearClock(&sim.queue());
}

void
M3System::exportMetrics()
{
    using trace::Metrics;

    const SimStats &ss = sim.queue().stats();
    Metrics::counter("sim.events_scheduled").add(ss.eventsScheduled);
    Metrics::counter("sim.events_executed").add(ss.eventsExecuted);
    Metrics::gauge("sim.peak_pending").setMax(ss.peakPending);
    Metrics::counter("sim.callback_heap_fallbacks")
        .add(ss.callbackHeapFallbacks);

    const kernel::KernelStats &ks = kern->stats();
    Metrics::counter("kernel.syscalls").add(ks.syscalls);
    Metrics::counter("kernel.vpes_created").add(ks.vpesCreated);
    Metrics::counter("kernel.caps_delegated").add(ks.capsDelegated);
    Metrics::counter("kernel.caps_revoked").add(ks.capsRevoked);
    Metrics::counter("kernel.service_requests").add(ks.serviceRequests);
    Metrics::counter("kernel.heartbeats").add(ks.heartbeats);
    Metrics::counter("kernel.watchdog_reclaims").add(ks.watchdogReclaims);
    Metrics::counter("kernel.ctx_switches").add(ks.ctxSwitches);
    Metrics::counter("kernel.yields").add(ks.yields);

    DtuStats agg;
    for (peid_t p = 0; p < plat->peCount(); ++p) {
        const DtuStats &ds = plat->pe(p).dtu().stats();
        agg.msgsSent += ds.msgsSent;
        agg.msgsReceived += ds.msgsReceived;
        agg.msgsDropped += ds.msgsDropped;
        agg.msgsCorrupted += ds.msgsCorrupted;
        agg.creditDenials += ds.creditDenials;
        agg.memReads += ds.memReads;
        agg.memWrites += ds.memWrites;
        agg.bytesRead += ds.bytesRead;
        agg.bytesWritten += ds.bytesWritten;
        agg.extConfigs += ds.extConfigs;
        agg.msgsParked += ds.msgsParked;
        agg.msgsUnparked += ds.msgsUnparked;
    }
    Metrics::counter("dtu.msgs_sent").add(agg.msgsSent);
    Metrics::counter("dtu.msgs_received").add(agg.msgsReceived);
    Metrics::counter("dtu.msgs_dropped").add(agg.msgsDropped);
    Metrics::counter("dtu.msgs_corrupted").add(agg.msgsCorrupted);
    Metrics::counter("dtu.credit_denials").add(agg.creditDenials);
    Metrics::counter("dtu.mem_reads").add(agg.memReads);
    Metrics::counter("dtu.mem_writes").add(agg.memWrites);
    Metrics::counter("dtu.bytes_read").add(agg.bytesRead);
    Metrics::counter("dtu.bytes_written").add(agg.bytesWritten);
    Metrics::counter("dtu.ext_configs").add(agg.extConfigs);
    Metrics::counter("dtu.msgs_parked").add(agg.msgsParked);
    Metrics::counter("dtu.msgs_unparked").add(agg.msgsUnparked);

    const NocStats &ns = plat->noc().stats();
    Metrics::counter("noc.packets").add(ns.packets);
    Metrics::counter("noc.payload_bytes").add(ns.payloadBytes);
    Metrics::counter("noc.contention_stalls").add(ns.contentionStalls);
    Metrics::counter("noc.packets_dropped").add(ns.packetsDropped);
    Metrics::counter("noc.packets_delayed").add(ns.packetsDelayed);
    Metrics::counter("noc.packets_delivered").add(ns.packetsDelivered);
    plat->noc().exportMetrics(sim.curCycle());

    if (faults) {
        const FaultStats &fs = faults->stats();
        Metrics::counter("faults.packets_seen").add(fs.packetsSeen);
        Metrics::counter("faults.packets_dropped").add(fs.packetsDropped);
        Metrics::counter("faults.packets_delayed").add(fs.packetsDelayed);
        Metrics::counter("faults.delay_injected").add(fs.delayInjected);
        Metrics::counter("faults.payloads_corrupted")
            .add(fs.payloadsCorrupted);
        Metrics::counter("faults.ext_acks_refused").add(fs.extAcksRefused);
        Metrics::counter("faults.pe_kills").add(fs.peKills);
    }
}

void
M3System::runRoot(const std::string &name, std::function<int()> main)
{
    if (rootInstalled)
        fatal("runRoot called twice");
    rootInstalled = true;

    kernel::Kernel::BootProgram rootProg;
    rootProg.pe = rootPe();
    rootProg.name = name;
    Platform *platPtr = plat.get();
    peid_t pe = rootPe();
    M3System *self = this;
    rootProg.main = [platPtr, pe, self, main = std::move(main)](vpeid_t id) {
        Env env(*platPtr, pe, id);
        int rc = main();
        self->rootExit = rc;
        self->rootDone = true;
        self->rootAcct = env.fiber.accounting();
        env.vpeExit(rc);
    };
    kern->addBootProgram(std::move(rootProg));
    kern->start();
}

Accounting
M3System::appAccounting() const
{
    Accounting total;
    std::vector<std::string> systemPrefixes;
    systemPrefixes.push_back("pe" + std::to_string(kernelPe()) + ":");
    for (uint32_t k = 0; k < fsCount(); ++k)
        systemPrefixes.push_back("pe" + std::to_string(fsPe(k)) + ":");
    sim.forEachFiber([&](Fiber &f) {
        const std::string &n = f.fiberName();
        for (const std::string &p : systemPrefixes)
            if (n.rfind(p, 0) == 0)
                return;
        total.merge(f.accounting());
    });
    return total;
}

void
M3System::printStats() const
{
    std::printf("==== M3System stats @ cycle %llu ====\n",
                static_cast<unsigned long long>(sim.curCycle()));
    const kernel::KernelStats &ks = kern->stats();
    std::printf("kernel: %llu syscalls, %llu VPEs, %llu caps delegated, "
                "%llu revoked, %llu service requests\n",
                static_cast<unsigned long long>(ks.syscalls),
                static_cast<unsigned long long>(ks.vpesCreated),
                static_cast<unsigned long long>(ks.capsDelegated),
                static_cast<unsigned long long>(ks.capsRevoked),
                static_cast<unsigned long long>(ks.serviceRequests));
    if (ks.ctxSwitches || ks.yields)
        std::printf("kernel: %llu ctx switches, %llu yields\n",
                    static_cast<unsigned long long>(ks.ctxSwitches),
                    static_cast<unsigned long long>(ks.yields));
    const NocStats &ns = plat->noc().stats();
    std::printf("noc: %llu packets, %llu payload bytes, "
                "%llu contention stall cycles\n",
                static_cast<unsigned long long>(ns.packets),
                static_cast<unsigned long long>(ns.payloadBytes),
                static_cast<unsigned long long>(ns.contentionStalls));
    for (peid_t p = 0; p < plat->peCount(); ++p) {
        const DtuStats &ds = plat->pe(p).dtu().stats();
        if (!ds.msgsSent && !ds.msgsReceived && !ds.memReads &&
            !ds.memWrites)
            continue;
        std::printf("pe%-2u dtu: %6llu sent %6llu recvd %4llu dropped | "
                    "%6llu rd (%llu B) %6llu wr (%llu B)\n",
                    p, static_cast<unsigned long long>(ds.msgsSent),
                    static_cast<unsigned long long>(ds.msgsReceived),
                    static_cast<unsigned long long>(ds.msgsDropped),
                    static_cast<unsigned long long>(ds.memReads),
                    static_cast<unsigned long long>(ds.bytesRead),
                    static_cast<unsigned long long>(ds.memWrites),
                    static_cast<unsigned long long>(ds.bytesWritten));
    }
}

bool
M3System::simulate(Cycles limit)
{
    eventsRun += sim.simulate(limit);
    if (!rootDone && sim.queue().empty()) {
        auto blocked = sim.blockedFibers();
        std::string names;
        for (const auto &n : blocked)
            names += n + " ";
        warn("simulation drained without root exit; blocked fibers: %s",
             names.c_str());
    }
    return rootDone;
}

} // namespace m3
