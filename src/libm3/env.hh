/**
 * @file
 * The per-VPE runtime environment of libm3 (Sec. 4.5.2).
 *
 * Every application program gets an Env: it wraps the PE's SPM and DTU,
 * provides the system-call client (messages to the kernel PE, Sec. 5.3),
 * allocates capability selectors, and multiplexes the limited number of
 * DTU endpoints among the application's gates (Sec. 4.5.4).
 */

#ifndef M3_LIBM3_ENV_HH
#define M3_LIBM3_ENV_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/accounting.hh"
#include "base/cost_model.hh"
#include "base/errors.hh"
#include "base/marshal.hh"
#include "kernel/kif.hh"
#include "pe/platform.hh"

namespace m3
{

class Gate;
class RecvGate;
class Vfs;

/** Size of the scratch SPM buffer used for DTU data transfers. */
static constexpr size_t XFER_BUF_SIZE = 16 * KiB;

/** The libm3 environment of one running VPE. */
class Env
{
  public:
    /**
     * Construct the environment for the program running on @p pe.
     * Registers itself as the current environment of the calling fiber.
     */
    Env(Platform &platform, peid_t pe, vpeid_t vpe);
    ~Env();

    Env(const Env &) = delete;
    Env &operator=(const Env &) = delete;

    /** The environment of the currently executing fiber. */
    static Env &cur();

    /**
     * Migration plumbing: the software on @p f now lives on @p newPe.
     * Re-points the fiber's environment (if it has one) and bumps the
     * fiber's move epoch so blocked DTU waits bail out with VpeMoved.
     * Wired into Pe's moved hook by M3System.
     */
    static void noteMoved(Fiber *f, peid_t newPe);

    /**
     * Failover plumbing: VPE @p vpe will restart on @p newPe. The entry
     * functor captured its original PE by value; it resolves its actual
     * home through homeOf() at (re)start.
     */
    static void setHome(vpeid_t vpe, peid_t newPe);

    /** Consume a pending home override for @p vpe, or @p fallback. */
    static peid_t homeOf(vpeid_t vpe, peid_t fallback);

    /** Clear cross-system static state (called per M3System). */
    static void resetRegistry();

    Platform &platform;
    peid_t peId;
    vpeid_t vpeId;
    const CostModel &cm;
    Fiber &fiber;

    /**
     * The PE this VPE currently runs on. The pointers are cached (these
     * sit on every message fast path); a migration re-points them in
     * noteMoved(), the only place peId ever changes.
     */
    Pe &pe() { return *homePe; }
    Spm &spm() { return *homeSpm; }
    Dtu &dtu() { return *homeDtu; }

    /** Charge @p c cycles of software time to the current category. */
    void compute(Cycles c) { fiber.compute(c); }

    Accounting &acct() { return fiber.accounting(); }

    /** Allocate @p n contiguous capability selectors. */
    capsel_t
    allocSels(uint32_t n = 1)
    {
        capsel_t s = nextSel;
        nextSel += n;
        return s;
    }

    // -------------------------------------------------------------------
    // Endpoint multiplexing (Sec. 4.5.4): before using a gate, libm3
    // checks whether an endpoint is configured for it and performs the
    // Activate system call if not.
    // -------------------------------------------------------------------

    /** Ensure @p gate is bound to an endpoint; returns the endpoint. */
    epid_t attach(Gate &gate);

    /** Drop the binding of @p gate (on gate destruction). */
    void detach(Gate &gate);

    /** Repoint an endpoint slot at a moved gate object. */
    void rebind(Gate &gate, epid_t ep);

    // -------------------------------------------------------------------
    // System calls. Each wrapper marshals the request into the syscall
    // staging buffer, performs the DTU round trip to the kernel and
    // parses the reply.
    // -------------------------------------------------------------------

    /** The Fig. 3 null system call. */
    Error noop();

    /**
     * Watchdog liveness beacon: tells the kernel this VPE is alive
     * without requesting anything (pairs with Kernel::enableWatchdog).
     */
    Error heartbeat();

    /**
     * Cooperative yield: offer the PE back to the kernel. On a
     * time-multiplexed PE the kernel may switch to another VPE right
     * after replying; execution resumes here once this VPE is
     * scheduled again.
     */
    Error yield();

    /**
     * Wait for a message on @p ep, yielding the PE instead of idling
     * when other VPEs share it: a blocked VPE should not burn the rest
     * of its slice holding the core. Falls back to a plain blocking
     * wait on a dedicated PE (bit-identical to dtu.waitForMsg then) or
     * when the kernel reports nobody else to run. Returns when a
     * message is available.
     */
    Error waitMsgYielding(epid_t ep);

    Error createVpe(capsel_t dstSel, capsel_t mgateSel,
                    const std::string &name, kif::PeTypeReq type,
                    const std::string &attr, vpeid_t &vpeOut,
                    peid_t &peOut);
    Error vpeStart(capsel_t vpeSel);
    Error vpeWait(capsel_t vpeSel, int &exitCode);
    /** Tell the kernel this VPE is done. No reply (Sec. 4.5.5). */
    void vpeExit(int exitCode);
    Error createRgate(capsel_t dstSel, uint32_t slots, uint32_t slotSize);
    Error createSgate(capsel_t dstSel, capsel_t rgateSel, label_t label,
                      uint32_t credits);
    Error reqMem(capsel_t dstSel, uint64_t size, uint8_t perms);
    Error deriveMem(capsel_t srcSel, capsel_t dstSel, goff_t off,
                    uint64_t size, uint8_t perms);
    Error activate(capsel_t capSel, epid_t ep, spmaddr_t bufAddr);
    Error exchange(capsel_t vpeSel, capsel_t srcStart, uint32_t count,
                   capsel_t dstStart, kif::ExchangeOp op);
    Error createSrv(capsel_t dstSel, capsel_t rgateSel,
                    const std::string &name);
    Error openSess(capsel_t dstSel, const std::string &name, uint64_t arg);
    /**
     * Query a service name: @p groupSize returns the stripe count of a
     * striped service group (distfs), 1 for a plain service, and
     * @p replicas the group's advertised replication factor (1 when
     * unreplicated) — every mounting client learns the same mirroring
     * policy from the kernel instead of carrying its own flag.
     */
    Error querySrv(const std::string &name, uint64_t &groupSize,
                   uint64_t &replicas);
    Error querySrv(const std::string &name, uint64_t &groupSize);
    /**
     * Exchange capabilities over a session; the service arbitrates
     * (Sec. 4.5.3). @p args/@p ret carry protocol-specific words.
     */
    Error exchangeSess(capsel_t sessSel, kif::ExchangeOp op,
                       capsel_t dstStart, uint32_t count,
                       const std::vector<uint64_t> &args,
                       std::vector<uint64_t> *ret = nullptr);
    Error revoke(capsel_t capSel, bool own);

    /** SPM scratch buffer for chunked DTU transfers. */
    spmaddr_t xferBuf() const { return xferBufAddr; }

    /** The VPE's mount table (created on first use). */
    Vfs &vfs();

  private:
    friend class Gate;

    /**
     * Generic syscall round trip: send the marshalled request, wait for
     * the kernel's reply, parse the leading error code and hand the rest
     * to @p onReply. Cycle attribution: the message transfers are charged
     * to Category::Xfer, everything else to Category::Os (Sec. 5.3).
     */
    Error sysCall(Marshaller &m,
                  const std::function<void(Unmarshaller &)> &onReply = {});

    /** Begin a syscall message in the staging buffer. */
    Marshaller beginSyscall();

    /**
     * Blocking message wait that survives a migration: a wait that bailed
     * out with VpeMoved is re-issued against the new home's DTU. The
     * message (or the deferred reply) is redirected by the kernel, so
     * re-waiting — never re-sending — is the correct recovery.
     */
    Error waitMsgRetrying(epid_t ep);

    /** Fast-path caches for pe()/spm()/dtu(); kept in sync with peId by
     *  the constructor and Env::noteMoved(). */
    Pe *homePe = nullptr;
    Spm *homeSpm = nullptr;
    Dtu *homeDtu = nullptr;

    spmaddr_t syscStage = 0;
    spmaddr_t xferBufAddr = 0;
    capsel_t nextSel = 64;

    // Endpoint multiplexer state.
    struct EpSlot
    {
        Gate *gate = nullptr;
        uint64_t lastUse = 0;
    };
    std::array<EpSlot, MAX_EP_COUNT> epSlots;
    uint64_t useCounter = 0;
    /** DTU context epoch this Env last synced its EP cache against. */
    uint32_t seenCtxEpoch = 0;
    /** Set on migration: the next attach() must drop the EP cache even
     *  if the new home's epoch counter happens to match seenCtxEpoch. */
    bool forceEpDrop = false;
    /** True while the Yield syscall itself runs (its reply wait must
     *  block plainly instead of yielding again). */
    bool inYield = false;

    std::unique_ptr<Vfs> vfsPtr;
};

} // namespace m3

#endif // M3_LIBM3_ENV_HH
