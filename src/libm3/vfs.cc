#include "libm3/vfs.hh"

#include "base/logging.hh"

namespace m3
{

Error
Vfs::mount(const std::string &prefix, std::shared_ptr<FileSystem> fs)
{
    for (const Mount &m : mounts)
        if (m.prefix == prefix)
            return Error::CapExists;
    mounts.push_back(Mount{prefix, std::move(fs)});
    return Error::None;
}

Error
Vfs::unmount(const std::string &prefix)
{
    for (auto it = mounts.begin(); it != mounts.end(); ++it) {
        if (it->prefix == prefix) {
            mounts.erase(it);
            return Error::None;
        }
    }
    return Error::NoSuchFile;
}

FileSystem *
Vfs::resolve(const std::string &path, std::string &rest)
{
    const Mount *best = nullptr;
    for (const Mount &m : mounts) {
        if (path.rfind(m.prefix, 0) == 0 &&
            (!best || m.prefix.size() > best->prefix.size())) {
            best = &m;
        }
    }
    if (!best)
        return nullptr;
    rest = path.substr(best->prefix.size());
    if (rest.empty() || rest[0] != '/')
        rest = "/" + rest;
    return best->fs.get();
}

std::unique_ptr<File>
Vfs::open(const std::string &path, uint32_t flags, Error &err)
{
    std::string rest;
    FileSystem *fs = resolve(path, rest);
    if (!fs) {
        err = Error::NoSuchFile;
        return nullptr;
    }
    return fs->open(rest, flags, err);
}

Error
Vfs::stat(const std::string &path, FileInfo &info)
{
    std::string rest;
    FileSystem *fs = resolve(path, rest);
    return fs ? fs->stat(rest, info) : Error::NoSuchFile;
}

Error
Vfs::mkdir(const std::string &path)
{
    std::string rest;
    FileSystem *fs = resolve(path, rest);
    return fs ? fs->mkdir(rest) : Error::NoSuchFile;
}

Error
Vfs::unlink(const std::string &path)
{
    std::string rest;
    FileSystem *fs = resolve(path, rest);
    return fs ? fs->unlink(rest) : Error::NoSuchFile;
}

Error
Vfs::link(const std::string &oldPath, const std::string &newPath)
{
    std::string restOld, restNew;
    FileSystem *fsOld = resolve(oldPath, restOld);
    FileSystem *fsNew = resolve(newPath, restNew);
    if (!fsOld || fsOld != fsNew)
        return Error::NoSuchFile;
    return fsOld->link(restOld, restNew);
}

Error
Vfs::rename(const std::string &oldPath, const std::string &newPath)
{
    std::string restOld, restNew;
    FileSystem *fsOld = resolve(oldPath, restOld);
    FileSystem *fsNew = resolve(newPath, restNew);
    if (!fsOld || fsOld != fsNew)
        return Error::NoSuchFile;
    return fsOld->rename(restOld, restNew);
}

Error
Vfs::readdir(const std::string &path, std::vector<DirEntry> &entries)
{
    std::string rest;
    FileSystem *fs = resolve(path, rest);
    return fs ? fs->readdir(rest, entries) : Error::NoSuchFile;
}

} // namespace m3
