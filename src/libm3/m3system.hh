/**
 * @file
 * M3System: the all-in-one harness that assembles a simulated M3 machine
 * — platform, kernel, filesystem image + m3fs service — and runs a root
 * application on it. Every test, example and benchmark builds on this.
 */

#ifndef M3_LIBM3_M3SYSTEM_HH
#define M3_LIBM3_M3SYSTEM_HH

#include <functional>
#include <memory>
#include <string>

#include "kernel/kernel.hh"
#include "libm3/env.hh"
#include "m3fs/fs_image.hh"
#include "m3fs/server.hh"
#include "pe/platform.hh"
#include "sim/simulator.hh"

namespace m3
{

/** Configuration of a simulated M3 machine. */
struct M3SystemCfg
{
    /** General-purpose application PEs (beyond kernel and fs PEs). */
    uint32_t appPes = 4;
    /**
     * Kernel instances (Sec. 7: multiple kernels as the control-plane
     * remedy for Fig. 6's syscall bottleneck). Kernel k runs on PE k and
     * owns every later PE p with (p - numKernels) % numKernels == k;
     * the kernels cooperate over an inter-kernel DTU protocol (remote
     * CreateVpe placement, cross-domain sessions). The default of 1 is
     * the classic single-kernel machine, bit-identical to before.
     */
    uint32_t numKernels = 1;
    /** Additional special PEs (accelerators). */
    std::vector<PeDesc> extraPes;
    /** DRAM capacity. */
    size_t dramBytes = 64 * MiB;
    /** All calibration parameters. */
    CostModel costs;
    /** Whether to boot an m3fs instance. */
    bool withFs = true;
    /**
     * Number of m3fs instances (Sec. 7: multiple service instances are
     * the paper's future work; Fig. 6 shows why). Instance k registers
     * as "m3fs" (k = 0) or "m3fs<k>" and serves its own image.
     */
    uint32_t fsInstances = 1;
    /** Content of the filesystem image(s) (replicated per instance). */
    m3fs::FsImageSpec fsSpec;
    /** m3fs server parameters (append granularity etc.). */
    m3fs::ServerConfig fsCfg;

    /**
     * distfs stripes (1 = off, bit-identical to before). With N >= 2
     * the machine boots N m3fs instances (fsInstances is overridden),
     * each backed by its own DRAM module, and every kernel registers
     * the service group "distfs" that fans OpenSess out to the stripe
     * set. Clients mount the stripes with m3fs::DistfsSession.
     */
    uint32_t distfsStripes = 1;
    /** distfs striping unit in blocks (8 KiB with 1 KiB blocks). */
    uint32_t distfsUnitBlocks = 8;
    /**
     * distfs replication factor R (1 = unreplicated, bit-identical to
     * before). With R >= 2 every unit placed on stripe s is mirrored
     * onto the next-neighbour stripes (s+r) % N for r < R: writes fan
     * each gathered run out to all copies, reads go primary-first and
     * fall back to a replica when the primary's server is dead, so a
     * single stripe kill degrades the mount instead of losing data.
     * Advertised to clients through the service group (QuerySrv).
     */
    uint32_t distfsReplicas = 1;
    /**
     * Spare m3fs instances beyond the stripe set: booted with their own
     * DRAM modules and registered as plain services (fsName(k) for
     * k >= distfsStripes) but kept out of the distfs group — standby
     * replacements that DistfsSession::rebuild() re-mirrors a dead
     * stripe onto.
     */
    uint32_t distfsSpares = 0;

    /** The service-group name distfs machines register. */
    static constexpr const char *DISTFS_GROUP = "distfs";

    /**
     * Fault injection (deterministic, seeded). Inactive by default; an
     * inactive plan is not even attached, so the fault-free fast paths
     * stay untouched (set faults.attachInert to attach it anyway).
     */
    FaultPlanCfg faults;
    /** Kernel watchdog: reclaim a VPE silent for this long (0 = off). */
    Cycles watchdogDeadline = 0;
    /** How often the kernel checks (0 = off). */
    Cycles watchdogPeriod = 0;

    /**
     * VPE time multiplexing: the kernel's scheduling quantum. 0 (the
     * default) disables multiplexing entirely — CreateVpe fails when no
     * PE is free, and no context-switch machinery runs. Non-zero lets
     * the kernel co-schedule several VPEs per PE, preempting the
     * resident one after this many cycles when others wait.
     */
    Cycles multiplexSlice = 0;

    /**
     * VPE live migration: lets the kernel move a running VPE to another
     * PE (PE drains, rolling restarts), locally or — via PE leases —
     * across kernel domains. Off by default; a machine without
     * migration is cycle- and trace-byte-identical to before.
     */
    bool migration = false;
    /**
     * Fault-driven failover: when the watchdog finds a VPE silent on a
     * dead core, restart it from its retained entry program on a
     * replacement PE instead of reclaiming it (exit EXIT_PE_DEAD only
     * when no replacement exists). Implies the migration machinery and
     * retains entry functors on every PE.
     */
    bool failover = false;
    /** PE drains to arm at boot: evacuate .first at cycle .second. */
    std::vector<std::pair<peid_t, Cycles>> drains;

    /**
     * Engine shards: split the host discrete-event engine into this many
     * conservatively synchronized partitions, cut along the kernel-domain
     * boundary (PE p lives on shard p mod S, which equals domainOfPe(p)
     * when S == numKernels — the only supported value > 1). 1 (the
     * default) is the serial engine, bit-identical to before. The
     * *simulated* outcome depends only on this value; `threads` is pure
     * host parallelism and never changes a single simulated byte.
     */
    uint32_t shards = 1;
    /**
     * Host worker threads driving a sharded engine (capped at shards;
     * ignored when shards == 1). See DESIGN.md §12.
     */
    uint32_t threads = 1;

    /** Service name of instance @p k. */
    static std::string
    fsName(uint32_t k)
    {
        return k == 0 ? "m3fs" : "m3fs" + std::to_string(k);
    }
};

/** A booted M3 machine. */
class M3System
{
  public:
    explicit M3System(M3SystemCfg cfg);

    /** Unregisters the trace clock and, with metrics enabled, folds the
     *  machine's stats structs into the registry (exportMetrics()). */
    ~M3System();

    M3System(const M3System &) = delete;
    M3System &operator=(const M3System &) = delete;

    Simulator &simulator() { return sim; }
    Platform &platform() { return *plat; }
    kernel::Kernel &kernelInstance(uint32_t k = 0) { return *kerns.at(k); }

    /** The active fault plan; nullptr when faults are disabled. */
    FaultPlan *faultPlan() { return faults.get(); }

    /** The image served by fs instance @p k. */
    m3fs::FsImage *
    fsImage(uint32_t k = 0)
    {
        return k < images.size() ? images[k].get() : nullptr;
    }

    peid_t kernelPe(uint32_t k = 0) const { return k; }
    uint32_t numKernels() const { return cfg.numKernels; }
    uint32_t fsCount() const { return cfg.withFs ? cfg.fsInstances : 0; }
    peid_t fsPe(uint32_t k = 0) const
    {
        return cfg.withFs ? cfg.numKernels + k : INVALID_PE;
    }
    peid_t rootPe() const { return cfg.numKernels + fsCount(); }
    /** The kernel domain owning PE @p p (striped across non-kernel PEs). */
    uint32_t
    domainOfPe(peid_t p) const
    {
        if (p < cfg.numKernels)
            return p;
        return (p - cfg.numKernels) % cfg.numKernels;
    }

    /**
     * Install @p main as the root application (a boot program loaded by
     * the kernel). Call before simulate(); can only be called once.
     */
    void runRoot(const std::string &name, std::function<int()> main);

    /**
     * Run the machine until the event queue drains or @p limit passes.
     * @return true if the root program finished
     */
    bool simulate(Cycles limit = ~Cycles(0));

    bool rootFinished() const { return rootDone; }
    int rootExitCode() const { return rootExit; }

    /** Engine events executed by simulate() calls so far. */
    uint64_t eventsExecuted() const { return eventsRun; }

    /** Accounting of the root program (for breakdown reporting). */
    const Accounting &rootAccounting() const { return rootAcct; }

    /**
     * Merged accounting of all application fibers (root plus spawned
     * VPEs), excluding the kernel and fs-service fibers whose time is
     * already reflected in the clients' syscall/IPC waits.
     */
    Accounting appAccounting() const;

    /** Current cycle (end-to-end time measurements). */
    Cycles now() const { return sim.curCycle(); }

    /**
     * Print a machine-wide statistics summary (kernel activity, per-PE
     * DTU traffic, NoC totals) to stdout — the simulator's equivalent
     * of an end-of-run stats dump.
     */
    void printStats() const;

    /**
     * Fold this machine's stats structs (engine, kernel, DTUs, NoC,
     * faults) into the metric registry, so every harness reports them
     * uniformly. Counters add, so sequential machines in one process
     * aggregate; called automatically from the destructor when metrics
     * are enabled.
     */
    void exportMetrics();

  private:
    M3SystemCfg cfg;
    Simulator sim;
    std::unique_ptr<Platform> plat;
    std::unique_ptr<FaultPlan> faults;
    std::vector<std::unique_ptr<m3fs::FsImage>> images;
    std::vector<std::unique_ptr<kernel::Kernel>> kerns;

    /** The kernel instance owning PE @p p. */
    kernel::Kernel &kernelOf(peid_t p) { return *kerns.at(domainOfPe(p)); }

    bool rootInstalled = false;
    bool tracerParallel = false; //!< this machine switched the tracer
    bool reqTraceParallel = false; //!< ditto for the request tracer
    bool rootDone = false;
    int rootExit = -1;
    uint64_t eventsRun = 0;
    Accounting rootAcct;
};

} // namespace m3

#endif // M3_LIBM3_M3SYSTEM_HH
