/**
 * @file
 * The paper's first future-work item (Sec. 7): "add caches to the PEs
 * ... the cache will use the DTU to load/store cache lines from/into
 * DRAM. In this way, the DTU remains the only component with access to
 * PE-external resources."
 *
 * CachedMem models exactly that: load/store access to the memory behind
 * a memory gate, through a set-associative write-back cache whose line
 * fills and write-backs are real DTU transfers. It gives PE software
 * byte-granular access to PE-external memory without breaking NoC-level
 * isolation — the stepping stone towards POSIX applications the paper
 * sketches.
 */

#ifndef M3_LIBM3_CACHED_MEM_HH
#define M3_LIBM3_CACHED_MEM_HH

#include <memory>
#include <vector>

#include "libm3/gates.hh"

namespace m3
{

/** Cache statistics. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writeBacks = 0;

    double
    hitRate() const
    {
        uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** A set-associative, write-back, LRU cache over a memory gate. */
class CachedMem
{
  public:
    /**
     * @param gate the memory this cache fronts (not owned)
     * @param lineSize bytes per line (power of two)
     * @param sets number of sets (power of two)
     * @param ways associativity
     * @param hitCycles core cycles per hit access
     */
    CachedMem(MemGate &gate, uint32_t lineSize = 64, uint32_t sets = 64,
              uint32_t ways = 4, Cycles hitCycles = 1);

    ~CachedMem();

    CachedMem(const CachedMem &) = delete;
    CachedMem &operator=(const CachedMem &) = delete;

    /** Load @p len bytes at @p addr (relative to the gate's region). */
    Error read(goff_t addr, void *dst, size_t len);

    /** Store @p len bytes at @p addr. */
    Error write(goff_t addr, const void *src, size_t len);

    /** Write all dirty lines back to the memory. */
    Error flush();

    const CacheStats &stats() const { return cacheStats; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;
        std::vector<uint8_t> data;
    };

    /** Get the line holding @p addr, filling/evicting as needed. */
    Line *access(goff_t addr, Error &err);

    Error writeBack(Line &line, uint32_t setIdx);

    uint32_t setOf(goff_t addr) const
    {
        return static_cast<uint32_t>((addr / lineSize) % sets);
    }

    uint64_t tagOf(goff_t addr) const { return addr / lineSize / sets; }

    MemGate &gate;
    uint32_t lineSize;
    uint32_t sets;
    uint32_t ways;
    Cycles hitCycles;
    std::vector<Line> lines;  //!< sets * ways, row-major by set
    uint64_t useCounter = 0;
    CacheStats cacheStats;
};

} // namespace m3

#endif // M3_LIBM3_CACHED_MEM_HH
