/**
 * @file
 * Gates: the software abstraction for communication and memory access
 * over the DTU (Sec. 4.5.4): receive gates, send gates and memory gates,
 * each associated with a capability and lazily bound to an endpoint.
 */

#ifndef M3_LIBM3_GATES_HH
#define M3_LIBM3_GATES_HH

#include <cstring>

#include "base/errors.hh"
#include "base/marshal.hh"
#include "libm3/env.hh"

namespace m3
{

/** Base of all gates: a capability selector plus the EP binding state. */
class Gate
{
  public:
    Gate(Env &env, capsel_t sel) : env(env), sel(sel) {}
    virtual ~Gate();

    Gate(const Gate &) = delete;
    Gate &operator=(const Gate &) = delete;
    Gate &operator=(Gate &&) = delete;

    /**
     * Gates are movable; a live endpoint binding follows the object.
     * Do not move a RecvGate while received messages are in flight.
     */
    Gate(Gate &&other) noexcept;

    capsel_t capSel() const { return sel; }
    epid_t boundEp() const { return ep; }
    bool isPinned() const { return pinned; }

    /** Revoke the underlying capability (including all grants). */
    Error revoke() { return env.revoke(sel, true); }

    Env &environment() { return env; }

    /** Ensure this gate is bound to an endpoint (Sec. 4.5.4). */
    epid_t acquire() { return env.attach(*this); }

  protected:
    friend class Env;

    /** Buffer address passed to Activate (receive gates only). */
    virtual spmaddr_t activateBuf() const { return 0; }

    Env &env;
    capsel_t sel;
    epid_t ep = INVALID_EP;
    bool pinned = false;
    uint64_t lastUse = 0;
};

class RecvGate;

/**
 * A received message: an unmarshalling view into the ringbuffer slot.
 * Acknowledges (frees) the slot on destruction.
 */
class GateIStream
{
  public:
    GateIStream(RecvGate &rgate, int slot);
    GateIStream(GateIStream &&other) noexcept;
    ~GateIStream();

    GateIStream(const GateIStream &) = delete;
    GateIStream &operator=(const GateIStream &) = delete;

    bool valid() const { return slot >= 0; }
    const MessageHeader &header() const { return hdr; }
    label_t label() const { return hdr.label; }

    template <typename T>
    GateIStream &
    operator>>(T &v)
    {
        um >> v;
        return *this;
    }

    template <typename T>
    T
    pull()
    {
        return um.pull<T>();
    }

    /** The leading error word every reply in our protocols starts with. */
    Error pullError() { return um.pull<Error>(); }

    /** Reply to this message (frees the slot). */
    Error reply(const void *msg, uint32_t size);
    Error replyError(Error e);

    /** Begin building a reply in the receive gate's staging buffer. */
    Marshaller replyStream();
    Error replyStreamSend(Marshaller &m);

    /** Explicitly free the slot without replying. */
    void ack();

  private:
    RecvGate *rg;
    int slot;
    MessageHeader hdr;
    Unmarshaller um;
};

/** A receive gate: a ringbuffer for incoming messages (Sec. 4.5.4). */
class RecvGate : public Gate
{
  public:
    /**
     * Create a receive gate: allocates the ringbuffer in the local SPM,
     * creates the kernel object and activates it on an endpoint.
     * Receive gates stay pinned: they cannot be moved once active.
     */
    RecvGate(Env &env, uint32_t slots, uint32_t slotSize);

    uint32_t slotCount() const { return slots; }
    uint32_t slotSize() const { return slotSz; }
    spmaddr_t bufferAddr() const { return bufAddr; }

    /** True if a message is pending. */
    bool hasMsg();

    /** Block until a message arrives, then fetch it. */
    GateIStream receive();

    /** Fetch without blocking; the result is invalid if none pending. */
    GateIStream tryReceive();

  protected:
    spmaddr_t activateBuf() const override { return bufAddr; }

  private:
    friend class GateIStream;

    uint32_t slots;
    uint32_t slotSz;
    spmaddr_t bufAddr;
    spmaddr_t replyStage;
};

/** A send gate: the right to send messages to a receive gate. */
class SendGate : public Gate
{
  public:
    /**
     * Retry policy for callTimed(): bounds each reply wait and resends
     * with exponential backoff when the NoC loses the request or the
     * reply. The default (one attempt, no deadline) makes callTimed()
     * behave exactly like call().
     */
    struct RetryPolicy
    {
        uint32_t maxAttempts = 1;  //!< total send attempts (1 = no retry)
        Cycles replyTimeout = 0;   //!< per-attempt deadline (0 = forever)
        Cycles backoffBase = 128;  //!< pause before the second attempt
        Cycles backoffMax = 16384; //!< backoff cap (doubles per attempt)
        /**
         * Total retry budget in cycles (0 = unlimited): once this much
         * time was spent on failed attempts, callTimed() gives up with
         * Error::PeerGone — the distinct "stop retrying, the peer is
         * dead" signal, as opposed to Error::Timeout ("all attempts
         * expired, maybe try a bigger policy").
         */
        Cycles retryBudget = 0;
    };

    /**
     * Create a send gate towards @p target with a receiver-chosen
     * @p label and @p credits messages of budget (Sec. 4.4.3).
     */
    static SendGate create(Env &env, RecvGate &target, label_t label,
                           uint32_t credits);

    /**
     * Bind a send gate to a capability obtained from another VPE or a
     * service. @p maxMsgSize is the target ring's slot size (part of the
     * protocol contract with the capability's origin).
     */
    SendGate(Env &env, capsel_t sel, uint32_t maxMsgSize,
             bool finiteCredits);

    /** Begin building a message in the staging buffer. */
    Marshaller ostream();

    /**
     * Send the built message. If @p replyGate is given, the receiver can
     * reply to it. Blocks while the gate is out of credits.
     */
    Error send(Marshaller &m, RecvGate *replyGate = nullptr,
               label_t replyLabel = 0);

    /** Send raw bytes (already in the staging buffer via stagePtr()). */
    Error sendRaw(uint32_t size, RecvGate *replyGate = nullptr,
                  label_t replyLabel = 0);

    /**
     * Synchronous call: send and wait for the reply on @p replyGate
     * (most libm3 abstractions combine both, Sec. 4.5.6).
     */
    GateIStream call(Marshaller &m, RecvGate &replyGate);

    /**
     * Like call(), but governed by the retry policy: each reply wait is
     * bounded by replyTimeout; on expiry the credit the lost reply
     * carried is restored, stale replies are drained and the request is
     * resent after an exponentially growing pause. @p err receives
     * Error::None on success, Error::Timeout when all attempts expired,
     * or the send error; the stream is invalid unless err is None.
     */
    GateIStream callTimed(Marshaller &m, RecvGate &replyGate, Error &err);

    void setRetry(const RetryPolicy &p) { policy = p; }
    const RetryPolicy &retry() const { return policy; }

    uint8_t *stagePtr();
    uint32_t maxMsg() const { return maxMsgSize; }

  private:
    uint32_t maxMsgSize;
    spmaddr_t stage;
    RetryPolicy policy;
};

/** A memory gate: RDMA-style access to a region of remote memory. */
class MemGate : public Gate
{
  public:
    /** Allocate @p size bytes of DRAM from the kernel (Sec. 4.5.4). */
    static MemGate create(Env &env, uint64_t size, uint8_t perms);

    /** Bind to an obtained/derived memory capability. */
    MemGate(Env &env, capsel_t sel, uint64_t size);

    /** Derive a gate for the sub-range [off, off+size). */
    MemGate derive(goff_t off, uint64_t size, uint8_t perms);

    /**
     * Read @p len bytes at offset @p off into @p dst. The data moves
     * through the DTU in XFER_BUF_SIZE chunks; the wait is charged to
     * Category::Xfer.
     */
    Error read(void *dst, size_t len, goff_t off);

    /** Write @p len bytes from @p src to offset @p off. */
    Error write(const void *src, size_t len, goff_t off);

    /** Ask the memory to zero [off, off+len) in the background. */
    Error zero(size_t len, goff_t off);

    uint64_t size() const { return regionSize; }

  private:
    uint64_t regionSize;
};

/** One segment of a striped parallel transfer (distfs). */
struct XferSeg
{
    MemGate *gate;  //!< target memory gate
    void *buf;      //!< app buffer (destination on read, source on write)
    size_t len;     //!< bytes to move
    goff_t off;     //!< offset within the gate
};

/**
 * Move @p n segments through the DTU's parallel transfer slots, each
 * against its own memory gate (distfs stripes). Segments are assigned
 * to slots by target memory module: transfers to distinct modules
 * overlap, while segments for the same module chain serially on one
 * slot — the module's controller is the serialization point. With more
 * than Dtu::XFER_SLOTS distinct modules the modules round-robin over
 * the slots. The transfer buffer is split into one sub-buffer per
 * slot; chained or oversized segments proceed in rounds. Under
 * spinDataTransfers the charged time is the maximum over slots of the
 * slot's summed uncontended times — overlap across modules, queueing
 * within one.
 */
Error parallelRead(Env &env, XferSeg *segs, uint32_t n);

/** The write-side counterpart of parallelRead(). */
Error parallelWrite(Env &env, XferSeg *segs, uint32_t n);

} // namespace m3

#endif // M3_LIBM3_GATES_HH
