/**
 * @file
 * Pipes (Sec. 4.5.7): a unidirectional data channel between exactly one
 * writer and one reader. The data travels through a software-managed
 * ringbuffer in DRAM that both ends access with memory gates; messages
 * synchronise reader and writer. After setup, the kernel is not involved:
 * the communication happens directly between the two PEs.
 *
 * The pipe creator always owns the receive gate; the peer end (usually a
 * child VPE) holds a send gate and a memory gate, delegated by the
 * creator. The message flow is therefore always peer -> creator with
 * creator replies, which supports both directions:
 *  - creator reads, peer writes (push): the peer announces filled chunks,
 *    the creator acknowledges consumed ones;
 *  - creator writes, peer reads (pull): the peer requests chunks, the
 *    creator replies with filled ones.
 * Either way the ring chunks and the send-gate credits bound the data in
 * flight.
 */

#ifndef M3_LIBM3_PIPE_HH
#define M3_LIBM3_PIPE_HH

#include <memory>

#include "libm3/gates.hh"
#include "libm3/vfs.hh"
#include "libm3/vpe.hh"

namespace m3
{

/** Default capability selectors where the peer finds its pipe caps. */
static constexpr capsel_t PIPE_PEER_SELS = 16;

/** Pipe wire protocol. */
enum class PipeMsg : uint64_t
{
    Chunk, //!< peer -> creator: { Chunk, ringOff, len } (push mode)
    Req,   //!< peer -> creator: { Req } (pull mode)
    Eof,   //!< peer -> creator: { Eof } (push mode, no more data)
};

/** The creator-side pipe object. */
class Pipe
{
  public:
    static constexpr size_t DEFAULT_RING_BYTES = 64 * KiB;
    static constexpr uint32_t DEFAULT_CHUNKS = 8;

    /**
     * @param env the creator's environment
     * @param creatorWrites direction: true = creator is the writer
     * @param ringBytes size of the DRAM ringbuffer ("large ringbuffers
     *        maximise the parallelism of readers and writers", Sec. 4.5.7)
     * @param chunks number of ring chunks (bounds data in flight)
     */
    Pipe(Env &env, bool creatorWrites,
         size_t ringBytes = DEFAULT_RING_BYTES,
         uint32_t chunks = DEFAULT_CHUNKS);

    /**
     * Delegate the peer-side capabilities (send gate, ring memory) to
     * @p vpe at selectors [dstStart, dstStart+2). Must happen before the
     * peer end is constructed over there.
     */
    Error delegateTo(VPE &vpe, capsel_t dstStart = PIPE_PEER_SELS);

    /** The creator's end of the pipe as a File. */
    std::unique_ptr<File> host();

    size_t chunkSize() const { return ringBytes / chunks; }

    // Internal state, accessed by the host-end File implementations.
    Env &env;
    bool creatorWrites;
    size_t ringBytes;
    uint32_t chunks;
    RecvGate rgate;
    std::unique_ptr<SendGate> peerSgate;  //!< delegated to the peer
    MemGate ring;
};

/**
 * Construct the peer's end of a pipe from the delegated capabilities.
 * @param peerWrites direction: true = the peer is the writer
 */
std::unique_ptr<File> pipePeer(Env &env, bool peerWrites,
                               capsel_t selStart = PIPE_PEER_SELS,
                               size_t ringBytes = Pipe::DEFAULT_RING_BYTES,
                               uint32_t chunks = Pipe::DEFAULT_CHUNKS);

} // namespace m3

#endif // M3_LIBM3_PIPE_HH
