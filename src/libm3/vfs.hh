/**
 * @file
 * The virtual filesystem layer of libm3 (Sec. 4.5.8): POSIX-like
 * abstractions (open, read, write, seek, close, stat, ...) over
 * mountable filesystem implementations (m3fs, the pipe filesystem).
 */

#ifndef M3_LIBM3_VFS_HH
#define M3_LIBM3_VFS_HH

#include <memory>
#include <string>
#include <vector>

#include "base/errors.hh"
#include "base/types.hh"

namespace m3
{

/** Open flags. */
enum OpenFlags : uint32_t
{
    FILE_R = 1,       //!< readable
    FILE_W = 2,       //!< writable
    FILE_RW = FILE_R | FILE_W,
    FILE_CREATE = 4,  //!< create if missing
    FILE_TRUNC = 8,   //!< truncate to zero length
    FILE_APPEND = 16, //!< start writing at the end
};

/** Inode modes. */
enum FileMode : uint32_t
{
    M_FILE = 0x8000,
    M_DIR = 0x4000,
};

/** The result of a stat operation. */
struct FileInfo
{
    uint32_t ino = 0;
    uint32_t mode = 0;
    uint32_t links = 0;
    uint32_t extents = 0;
    uint64_t size = 0;

    bool isDir() const { return mode & M_DIR; }
};

/** One directory entry. */
struct DirEntry
{
    uint32_t ino;
    std::string name;
};

/** Seek anchors. */
enum class SeekMode
{
    Set,
    Cur,
    End,
};

/** An open file (or pipe end). Closing happens on destruction. */
class File
{
  public:
    virtual ~File() = default;

    /**
     * Read up to @p len bytes into @p buf.
     * @return bytes read (0 at EOF), or negative -Error.
     */
    virtual ssize_t read(void *buf, size_t len) = 0;

    /** Write @p len bytes. @return bytes written or negative -Error. */
    virtual ssize_t write(const void *buf, size_t len) = 0;

    /** Move the file position. @return new position or negative. */
    virtual ssize_t seek(ssize_t off, SeekMode whence) = 0;

    /** Attributes of the open file. */
    virtual Error stat(FileInfo &info) = 0;
};

/** A mountable filesystem. */
class FileSystem
{
  public:
    virtual ~FileSystem() = default;

    virtual std::unique_ptr<File> open(const std::string &path,
                                       uint32_t flags, Error &err) = 0;
    virtual Error stat(const std::string &path, FileInfo &info) = 0;
    virtual Error mkdir(const std::string &path) = 0;
    virtual Error unlink(const std::string &path) = 0;
    virtual Error link(const std::string &oldPath,
                       const std::string &newPath) = 0;
    virtual Error rename(const std::string &oldPath,
                         const std::string &newPath) = 0;
    virtual Error readdir(const std::string &path,
                          std::vector<DirEntry> &entries) = 0;
};

/**
 * The per-VPE mount table. Filesystems are mounted at path prefixes;
 * the longest matching prefix wins (Sec. 4.5.8).
 */
class Vfs
{
  public:
    Error mount(const std::string &prefix, std::shared_ptr<FileSystem> fs);
    Error unmount(const std::string &prefix);

    std::unique_ptr<File> open(const std::string &path, uint32_t flags,
                               Error &err);
    Error stat(const std::string &path, FileInfo &info);
    Error mkdir(const std::string &path);
    Error unlink(const std::string &path);
    Error link(const std::string &oldPath, const std::string &newPath);
    Error rename(const std::string &oldPath, const std::string &newPath);
    Error readdir(const std::string &path, std::vector<DirEntry> &entries);

    /** The filesystem mounted at the longest matching prefix. */
    FileSystem *resolve(const std::string &path, std::string &rest);

  private:
    struct Mount
    {
        std::string prefix;
        std::shared_ptr<FileSystem> fs;
    };
    std::vector<Mount> mounts;
};

} // namespace m3

#endif // M3_LIBM3_VFS_HH
