#include "libm3/gates.hh"

#include "base/logging.hh"
#include "trace/metrics.hh"
#include "trace/reqtrace.hh"
#include "trace/trace.hh"

namespace m3
{

Gate::~Gate()
{
    env.detach(*this);
}

Gate::Gate(Gate &&other) noexcept
    : env(other.env), sel(other.sel), ep(other.ep), pinned(other.pinned),
      lastUse(other.lastUse)
{
    if (ep != INVALID_EP) {
        env.rebind(*this, ep);
        other.ep = INVALID_EP;
    }
    other.sel = INVALID_SEL;
}

// ---------------------------------------------------------------------
// RecvGate.
// ---------------------------------------------------------------------

RecvGate::RecvGate(Env &env, uint32_t slots, uint32_t slotSize)
    : Gate(env, env.allocSels()), slots(slots), slotSz(slotSize),
      bufAddr(env.spm().alloc(slots * slotSize)),
      replyStage(env.spm().alloc(slotSize))
{
    Error e = env.createRgate(sel, slots, slotSize);
    if (e != Error::None)
        panic("creating receive gate failed: %s", errorName(e));
    // Receive gates cannot be moved once messages may arrive
    // (Sec. 4.5.4), so they are activated eagerly and pinned.
    pinned = true;
    acquire();
}

bool
RecvGate::hasMsg()
{
    return env.dtu().hasMsg(ep);
}

GateIStream
RecvGate::receive()
{
    env.waitMsgYielding(ep);
    return GateIStream(*this, env.dtu().fetchMsg(ep));
}

GateIStream
RecvGate::tryReceive()
{
    return GateIStream(*this, env.dtu().fetchMsg(ep));
}

// ---------------------------------------------------------------------
// GateIStream.
// ---------------------------------------------------------------------

GateIStream::GateIStream(RecvGate &rgate, int slot)
    : rg(&rgate), slot(slot), um(nullptr, 0)
{
    if (slot >= 0) {
        Env &env = rg->environment();
        hdr = env.dtu().msgHeader(rg->boundEp(), slot);
        const uint8_t *payload = env.spm().ptr(
            env.dtu().msgAddr(rg->boundEp(), slot) + sizeof(MessageHeader),
            hdr.length);
        um = Unmarshaller(payload, hdr.length);
    }
}

GateIStream::GateIStream(GateIStream &&other) noexcept
    : rg(other.rg), slot(other.slot), hdr(other.hdr), um(other.um)
{
    other.slot = -1;
}

GateIStream::~GateIStream()
{
    if (slot >= 0)
        ack();
}

void
GateIStream::ack()
{
    if (slot >= 0) {
        rg->environment().dtu().ackMsg(rg->boundEp(), slot);
        slot = -1;
    }
}

Error
GateIStream::reply(const void *msg, uint32_t size)
{
    if (slot < 0)
        return Error::InvalidArgs;
    Env &env = rg->environment();
    trace::ScopedSpan span(env.peId, "gate:reply");
    env.spm().write(rg->replyStage, msg, size);
    env.compute(env.cm.m3.marshal + env.cm.m3.dtuCommand);
    Error e = env.dtu().startReply(rg->boundEp(), slot, rg->replyStage,
                                 size);
    if (e == Error::None) {
        env.dtu().waitUntilIdle();
        slot = -1;  // replying freed the ring slot
    }
    return e;
}

Error
GateIStream::replyError(Error err)
{
    uint8_t buf[16];
    Marshaller m(buf, sizeof(buf));
    m << err;
    return reply(buf, static_cast<uint32_t>(m.size()));
}

Marshaller
GateIStream::replyStream()
{
    Env &env = rg->environment();
    return Marshaller(env.spm().ptr(rg->replyStage, rg->slotSize()),
                      rg->slotSize() - sizeof(MessageHeader));
}

Error
GateIStream::replyStreamSend(Marshaller &m)
{
    if (slot < 0)
        return Error::InvalidArgs;
    Env &env = rg->environment();
    env.compute(env.cm.m3.marshal + env.cm.m3.dtuCommand);
    Error e = env.dtu().startReply(rg->boundEp(), slot, rg->replyStage,
                                 static_cast<uint32_t>(m.size()));
    if (e == Error::None) {
        env.dtu().waitUntilIdle();
        slot = -1;
    }
    return e;
}

// ---------------------------------------------------------------------
// SendGate.
// ---------------------------------------------------------------------

SendGate
SendGate::create(Env &env, RecvGate &target, label_t label,
                 uint32_t credits)
{
    capsel_t sel = env.allocSels();
    Error e = env.createSgate(sel, target.capSel(), label, credits);
    if (e != Error::None)
        panic("creating send gate failed: %s", errorName(e));
    return SendGate(env, sel, target.slotSize(),
                    credits != CREDITS_UNLIMITED);
}

SendGate::SendGate(Env &env, capsel_t sel, uint32_t maxMsgSize,
                   bool finiteCredits)
    : Gate(env, sel), maxMsgSize(maxMsgSize),
      stage(env.spm().alloc(maxMsgSize))
{
    // Gates whose remaining credits live in the endpoint registers must
    // not be evicted (rebinding would reset the budget); pin them.
    pinned = finiteCredits;
}

uint8_t *
SendGate::stagePtr()
{
    return env.spm().ptr(stage, maxMsgSize);
}

Marshaller
SendGate::ostream()
{
    return Marshaller(stagePtr(), maxMsgSize - sizeof(MessageHeader));
}

Error
SendGate::send(Marshaller &m, RecvGate *replyGate, label_t replyLabel)
{
    env.compute(env.cm.m3.marshal);
    return sendRaw(static_cast<uint32_t>(m.size()), replyGate, replyLabel);
}

Error
SendGate::sendRaw(uint32_t size, RecvGate *replyGate, label_t replyLabel)
{
    epid_t e = acquire();
    epid_t replyEp = INVALID_EP;
    if (replyGate)
        replyEp = replyGate->boundEp() != INVALID_EP
                      ? replyGate->boundEp()
                      : replyGate->acquire();
    env.compute(env.cm.m3.dtuCommand);
    for (;;) {
        Error err = env.dtu().startSend(e, stage, size, replyEp, replyLabel);
        if (err == Error::DtuBusy) {
            env.dtu().waitUntilIdle();
            continue;
        }
        return err;
    }
}

GateIStream
SendGate::call(Marshaller &m, RecvGate &replyGate)
{
    trace::ScopedSpan span(env.peId, "gate:call");
    Error e = send(m, &replyGate, 0);
    if (e != Error::None)
        panic("send for call failed: %s", errorName(e));
    Cycles t0 = env.platform.simulator().curCycle();
    env.waitMsgYielding(replyGate.boundEp());
    Cycles elapsed = env.platform.simulator().curCycle() - t0;
    env.acct().charge(elapsed);
    if (M3_METRICS_ON) {
        trace::Metrics::histogram("dtu.reply_latency.ep" +
                                  std::to_string(replyGate.boundEp()))
            .observe(elapsed);
    }
    env.compute(env.cm.m3.fetchMsg + env.cm.m3.unmarshal);
    return replyGate.tryReceive();
}

namespace
{

/**
 * Deterministic per-VPE backoff jitter (splitmix-style bit mix): many
 * VPEs retrying after the same fault or migration event must not resend
 * in lockstep, but runs have to stay reproducible — so the jitter is a
 * pure function of (VPE id, attempt), not of a random source.
 */
Cycles
retryJitter(vpeid_t vpe, uint32_t attempt, Cycles backoff)
{
    uint64_t h = (uint64_t{vpe} << 32) | attempt;
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    // Up to half the nominal backoff, so the exponential envelope keeps
    // its shape while colliding retriers spread out.
    return h % (backoff / 2 + 1);
}

} // anonymous namespace

GateIStream
SendGate::callTimed(Marshaller &m, RecvGate &replyGate, Error &err)
{
    // Without a policy this is exactly call() (zero-overhead default).
    if (policy.maxAttempts <= 1 && policy.replyTimeout == 0) {
        err = Error::None;
        return call(m, replyGate);
    }

    env.compute(env.cm.m3.marshal);
    const uint32_t size = static_cast<uint32_t>(m.size());
    const uint32_t attempts = policy.maxAttempts ? policy.maxAttempts : 1;
    const Cycles start = env.platform.simulator().curCycle();
    Cycles backoff = policy.backoffBase ? policy.backoffBase : 1;
    uint32_t paces = 0;
    auto pace = [&] {
        env.fiber.sleep(backoff +
                        retryJitter(env.vpeId, paces++, backoff));
        backoff = std::min(policy.backoffMax, backoff * 2);
    };
    for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0 && policy.retryBudget != 0 &&
            env.platform.simulator().curCycle() - start >=
                policy.retryBudget) {
            // Enough: this peer has eaten the whole retry budget.
            err = Error::PeerGone;
            return GateIStream(replyGate, -1);
        }
        Error se = sendRaw(size, &replyGate, 0);
        if (se == Error::NoCredits) {
            // Out of budget: an earlier reply may still be in flight or
            // was lost along with its refund. Pace and retry.
            if (M3_METRICS_ON) {
                static trace::Counter &cs =
                    trace::Metrics::counter("dtu.credit_stall_cycles");
                cs.add(backoff);
            }
            Cycles s0 = env.platform.simulator().curCycle();
            pace();
            if (M3_REQTRACE_ON) {
                if (Fiber *f = Fiber::current(); f && f->reqCtx())
                    trace::ReqTrace::noteCreditStall(
                        f->reqCtx(),
                        env.platform.simulator().curCycle() - s0);
            }
            continue;
        }
        if (se != Error::None) {
            err = se;
            return GateIStream(replyGate, -1);
        }
        Cycles t0 = env.platform.simulator().curCycle();
        Error we;
        for (;;) {
            we = env.dtu().waitForMsg(replyGate.boundEp(),
                                      policy.replyTimeout);
            // Migrated mid-wait: the ring travels with this VPE and the
            // peer replies towards wherever the kernel says it lives —
            // keep waiting at the new home.
            if (we != Error::VpeMoved)
                break;
        }
        env.acct().charge(env.platform.simulator().curCycle() - t0);
        if (we == Error::None) {
            env.compute(env.cm.m3.fetchMsg + env.cm.m3.unmarshal);
            err = Error::None;
            return replyGate.tryReceive();
        }
        // The request or its reply was lost; the credit the reply would
        // have refunded is gone with it. Re-arm the gate, pace the
        // resend, and drop stragglers of this attempt that arrived while
        // backing off. (A straggler arriving later still refunds its
        // credit, which can over-provision the gate; that only loosens
        // the send bound and is harmless.)
        env.dtu().refundCredit(acquire());
        if (M3_METRICS_ON) {
            static trace::Counter &rt =
                trace::Metrics::counter("gate.retries");
            rt.inc();
        }
        // A timeout may also mean the peer migrated: re-run Activate so
        // the kernel reconfigures this EP from its current view of the
        // target (node, generation). The refreshed credits are covered
        // by the over-provisioning argument above.
        env.activate(sel, acquire(), activateBuf());
        pace();
        while (replyGate.tryReceive().valid()) {
        }
    }
    err = Error::Timeout;
    return GateIStream(replyGate, -1);
}

// ---------------------------------------------------------------------
// MemGate.
// ---------------------------------------------------------------------

MemGate
MemGate::create(Env &env, uint64_t size, uint8_t perms)
{
    capsel_t sel = env.allocSels();
    Error e = env.reqMem(sel, size, perms);
    if (e != Error::None)
        panic("allocating %llu bytes of DRAM failed: %s",
              static_cast<unsigned long long>(size), errorName(e));
    return MemGate(env, sel, size);
}

MemGate::MemGate(Env &env, capsel_t sel, uint64_t size)
    : Gate(env, sel), regionSize(size)
{
}

MemGate
MemGate::derive(goff_t off, uint64_t size, uint8_t perms)
{
    capsel_t dst = env.allocSels();
    Error e = env.deriveMem(sel, dst, off, size, perms);
    if (e != Error::None)
        panic("deriving memory gate failed: %s", errorName(e));
    return MemGate(env, dst, size);
}

namespace
{

/**
 * Scalability-study backdoor (Sec. 5.7): functional access to the
 * memory behind an endpoint, used when data transfers are replaced by
 * spins of the uncontended transfer time.
 */
MemTarget *
targetOf(Env &env, const MemEpCfg &cfg)
{
    if (env.platform.isDramNode(cfg.targetNode))
        return &env.platform.dram(cfg.targetNode - env.platform.peCount());
    return &env.platform.pe(cfg.targetNode).spm();
}

/** Uncontended duration of a @p len byte transfer on this endpoint. */
Cycles
spinDuration(Env &env, const MemEpCfg &cfg, size_t len)
{
    Noc &noc = env.platform.noc();
    uint32_t self = env.dtu().nodeId();
    MemTarget *mem = targetOf(env, cfg);
    return noc.idleLatency(self, cfg.targetNode, 0) +
           mem->accessLatency() +
           noc.idleLatency(cfg.targetNode, self,
                           static_cast<uint32_t>(len));
}

} // anonymous namespace

Error
MemGate::read(void *dst, size_t len, goff_t off)
{
    trace::ScopedSpan span(env.peId, "mem:read");
    epid_t e = acquire();
    uint8_t *out = static_cast<uint8_t *>(dst);
    size_t done = 0;
    while (done < len) {
        size_t chunk = std::min(len - done, XFER_BUF_SIZE);
        env.compute(env.cm.m3.dtuCommand);
        if (env.cm.spinDataTransfers) {
            const MemEpCfg &cfg = env.dtu().ep(e).mem;
            if (!(cfg.perms & MEM_R))
                return Error::NoPerm;
            if (off + done > cfg.size || chunk > cfg.size - (off + done))
                return Error::OutOfBounds;
            targetOf(env, cfg)->read(cfg.offset + off + done, out + done,
                                     chunk);
            Cycles dur = spinDuration(env, cfg, chunk);
            env.acct().chargeTo(Category::Xfer, dur);
            env.fiber.sleep(dur);
            done += chunk;
            continue;
        }
        Error err = env.dtu().startRead(e, env.xferBuf(), off + done,
                                        chunk);
        if (err != Error::None)
            return err;
        Cycles t0 = env.platform.simulator().curCycle();
        Error w = env.dtu().waitUntilIdle();
        env.acct().chargeTo(Category::Xfer,
                            env.platform.simulator().curCycle() - t0);
        if (w == Error::VpeMoved) {
            // Migrated mid-transfer: the context fetch aborted the read
            // before it touched the SPM, so re-issue this chunk against
            // the new home's DTU.
            continue;
        }
        // The app buffer conceptually lives in the SPM; the copy is an
        // alias, not a modelled transfer.
        std::memcpy(out + done, env.spm().ptr(env.xferBuf(), chunk), chunk);
        done += chunk;
    }
    return Error::None;
}

Error
MemGate::write(const void *src, size_t len, goff_t off)
{
    trace::ScopedSpan span(env.peId, "mem:write");
    epid_t e = acquire();
    const uint8_t *in = static_cast<const uint8_t *>(src);
    size_t done = 0;
    while (done < len) {
        size_t chunk = std::min(len - done, XFER_BUF_SIZE);
        env.compute(env.cm.m3.dtuCommand);
        if (env.cm.spinDataTransfers) {
            const MemEpCfg &cfg = env.dtu().ep(e).mem;
            if (!(cfg.perms & MEM_W))
                return Error::NoPerm;
            if (off + done > cfg.size || chunk > cfg.size - (off + done))
                return Error::OutOfBounds;
            targetOf(env, cfg)->write(cfg.offset + off + done, in + done,
                                      chunk);
            Cycles dur = spinDuration(env, cfg, chunk);
            env.acct().chargeTo(Category::Xfer, dur);
            env.fiber.sleep(dur);
            done += chunk;
            continue;
        }
        std::memcpy(env.spm().ptr(env.xferBuf(), chunk), in + done, chunk);
        Error err = env.dtu().startWrite(e, env.xferBuf(), off + done,
                                         chunk);
        if (err != Error::None)
            return err;
        Cycles t0 = env.platform.simulator().curCycle();
        Error w = env.dtu().waitUntilIdle();
        env.acct().chargeTo(Category::Xfer,
                            env.platform.simulator().curCycle() - t0);
        if (w == Error::VpeMoved) {
            // Migrated mid-transfer: an aborted write may or may not
            // have reached the memory; re-issuing it is idempotent
            // (same bytes, same offset).
            continue;
        }
        done += chunk;
    }
    return Error::None;
}

Error
MemGate::zero(size_t len, goff_t off)
{
    epid_t e = acquire();
    env.compute(env.cm.m3.dtuCommand);
    return env.dtu().startZero(e, off, len);
}

namespace
{

/**
 * Map each segment to a transfer slot: segments for the same memory
 * module share a slot (and thus serialize), distinct modules spread
 * round-robin over the slots. Returns the slot of each segment.
 */
void
assignSlots(Env &env, XferSeg *segs, uint32_t n, uint32_t *slot)
{
    uint32_t nodes[Dtu::XFER_SLOTS];
    uint32_t used = 0;
    uint32_t next = 0;
    for (uint32_t i = 0; i < n; ++i) {
        epid_t e = segs[i].gate->acquire();
        uint32_t node = env.dtu().ep(e).mem.targetNode;
        uint32_t s = ~0u;
        for (uint32_t j = 0; j < used; ++j)
            if (nodes[j] == node)
                s = j;
        if (s == ~0u) {
            if (used < Dtu::XFER_SLOTS) {
                nodes[used] = node;
                s = used++;
            } else {
                s = next;
                next = (next + 1) % Dtu::XFER_SLOTS;
            }
        }
        slot[i] = s;
    }
}

Error
parallelXfer(Env &env, XferSeg *segs, uint32_t n, bool isRead)
{
    if (n == 0)
        return Error::None;
    trace::ScopedSpan span(env.peId, isRead ? "mem:preadx" : "mem:pwritex");

    std::vector<uint32_t> slot(n);
    assignSlots(env, segs, n, slot.data());

    if (env.cm.spinDataTransfers) {
        // Functional access per segment; the modelled time is the
        // slowest slot's summed uncontended transfers — modules
        // overlap, a module's own queue serializes (Sec. 5.7
        // methodology plus the controller as serialization point).
        Cycles slotDur[Dtu::XFER_SLOTS] = {};
        for (uint32_t i = 0; i < n; ++i) {
            XferSeg &s = segs[i];
            epid_t e = s.gate->acquire();
            env.compute(env.cm.m3.dtuCommand);
            const MemEpCfg &cfg = env.dtu().ep(e).mem;
            if (!(cfg.perms & (isRead ? MEM_R : MEM_W)))
                return Error::NoPerm;
            if (s.off > cfg.size || s.len > cfg.size - s.off)
                return Error::OutOfBounds;
            MemTarget *t = targetOf(env, cfg);
            if (isRead)
                t->read(cfg.offset + s.off, s.buf, s.len);
            else
                t->write(cfg.offset + s.off, s.buf, s.len);
            slotDur[slot[i]] += spinDuration(env, cfg, s.len);
        }
        Cycles dur = 0;
        for (Cycles d : slotDur)
            dur = std::max(dur, d);
        env.acct().chargeTo(Category::Xfer, dur);
        env.fiber.sleep(dur);
        return Error::None;
    }

    // Real transfers: the transfer buffer is split into one sub-buffer
    // per slot; chained segments and segments longer than a sub-buffer
    // proceed in rounds. Each round moves at most one sub-buffer per
    // slot, and a slot works through its segments in order.
    const size_t slotBytes = XFER_BUF_SIZE / Dtu::XFER_SLOTS;
    std::vector<size_t> done(n, 0);
    for (;;) {
        // Per slot, pick the first unfinished segment assigned to it.
        uint32_t pick[Dtu::XFER_SLOTS];
        size_t chunk[Dtu::XFER_SLOTS] = {};
        for (uint32_t s = 0; s < Dtu::XFER_SLOTS; ++s)
            pick[s] = n;
        bool any = false;
        for (uint32_t i = 0; i < n; ++i) {
            uint32_t s = slot[i];
            if (done[i] >= segs[i].len || pick[s] != n)
                continue;
            pick[s] = i;
            chunk[s] = std::min(segs[i].len - done[i], slotBytes);
            any = true;
        }
        if (!any)
            return Error::None;
        for (uint32_t s = 0; s < Dtu::XFER_SLOTS; ++s) {
            if (!chunk[s])
                continue;
            XferSeg &sg = segs[pick[s]];
            epid_t e = sg.gate->acquire();
            spmaddr_t sub =
                env.xferBuf() + static_cast<spmaddr_t>(s * slotBytes);
            env.compute(env.cm.m3.dtuCommand);
            Error err;
            if (isRead) {
                err = env.dtu().startReadX(s, e, sub,
                                           sg.off + done[pick[s]],
                                           chunk[s]);
            } else {
                std::memcpy(env.spm().ptr(sub, chunk[s]),
                            static_cast<const uint8_t *>(sg.buf) +
                                done[pick[s]],
                            chunk[s]);
                err = env.dtu().startWriteX(s, e, sub,
                                            sg.off + done[pick[s]],
                                            chunk[s]);
            }
            if (err != Error::None)
                return err;
        }
        Cycles t0 = env.platform.simulator().curCycle();
        Error w = env.dtu().waitXferAll();
        env.acct().chargeTo(Category::Xfer,
                            env.platform.simulator().curCycle() - t0);
        if (w == Error::VpeMoved) {
            // Migrated mid-round: the aborted round never touched the
            // app buffer (reads) and re-writing the same bytes is
            // idempotent, so re-issue it against the new home's DTU.
            continue;
        }
        if (w != Error::None)
            return w;
        for (uint32_t s = 0; s < Dtu::XFER_SLOTS; ++s) {
            if (!chunk[s])
                continue;
            uint32_t i = pick[s];
            if (isRead) {
                spmaddr_t sub =
                    env.xferBuf() + static_cast<spmaddr_t>(s * slotBytes);
                std::memcpy(static_cast<uint8_t *>(segs[i].buf) + done[i],
                            env.spm().ptr(sub, chunk[s]), chunk[s]);
            }
            done[i] += chunk[s];
        }
    }
}

} // anonymous namespace

Error
parallelRead(Env &env, XferSeg *segs, uint32_t n)
{
    return parallelXfer(env, segs, n, true);
}

Error
parallelWrite(Env &env, XferSeg *segs, uint32_t n)
{
    return parallelXfer(env, segs, n, false);
}

} // namespace m3
