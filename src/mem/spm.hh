/**
 * @file
 * Per-PE scratchpad memory (SPM).
 *
 * The prototype platform's PEs have no caches and no MMU; the SPM is the
 * only directly addressable memory (Sec. 4.1). Software on the PE accesses
 * it with plain load/store (modelled as direct pointer access); everything
 * PE-external must be moved in and out through the DTU.
 *
 * A trivial bump allocator carves the data SPM into the regions software
 * needs (message buffers, ringbuffers, file I/O buffers). Real M3 places
 * code/data/heap/stack by linker script; the allocator plays that role.
 */

#ifndef M3_MEM_SPM_HH
#define M3_MEM_SPM_HH

#include <cstring>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "mem/mem_target.hh"

namespace m3
{

/** A PE-local scratchpad, also usable as a remote DTU memory target. */
class Spm : public MemTarget
{
  public:
    explicit Spm(size_t bytes) : bytes(bytes), data(new uint8_t[bytes])
    {
        std::memset(data.get(), 0, bytes);
    }

    size_t size() const override { return bytes; }

    void
    read(goff_t off, void *dst, size_t len) override
    {
        check(off, len);
        std::memcpy(dst, data.get() + off, len);
    }

    void
    write(goff_t off, const void *src, size_t len) override
    {
        check(off, len);
        std::memcpy(data.get() + off, src, len);
    }

    void
    zero(goff_t off, size_t len) override
    {
        check(off, len);
        std::memset(data.get() + off, 0, len);
    }

    /** SPM access is single-cycle from the NoC side. */
    Cycles accessLatency() const override { return 1; }

    /** Direct pointer for the local core's load/store accesses. */
    uint8_t *
    ptr(spmaddr_t addr, size_t len = 0)
    {
        check(addr, len);
        return data.get() + addr;
    }

    /**
     * Allocate @p len bytes of SPM (8-byte aligned). Panics when the SPM
     * is exhausted: on the real platform that is a link/alloc failure.
     */
    spmaddr_t
    alloc(size_t len)
    {
        bumpPos = (bumpPos + 7) & ~size_t{7};
        if (bumpPos + len > bytes)
            panic("SPM exhausted: %zu + %zu > %zu", bumpPos, len, bytes);
        spmaddr_t addr = static_cast<spmaddr_t>(bumpPos);
        bumpPos += len;
        return addr;
    }

    /** Reset the allocator (used when a new program takes over the PE). */
    void
    resetAlloc()
    {
        bumpPos = 0;
    }

    /** Bytes currently allocated. */
    size_t allocated() const { return bumpPos; }

    /**
     * Restore a previously observed allocation mark. The cursor is
     * logically per-VPE: on a time-multiplexed PE it is saved with the
     * descheduled VPE and restored here when that VPE comes back.
     */
    void
    restoreAlloc(size_t mark)
    {
        if (mark > bytes)
            panic("SPM alloc mark out of bounds: %zu > %zu", mark, bytes);
        bumpPos = mark;
    }

  private:
    void
    check(goff_t off, size_t len) const
    {
        if (off > bytes || len > bytes - off)
            panic("SPM access out of bounds: %llu + %zu > %zu",
                  static_cast<unsigned long long>(off), len, bytes);
    }

    size_t bytes;
    std::unique_ptr<uint8_t[]> data;
    size_t bumpPos = 0;
};

} // namespace m3

#endif // M3_MEM_SPM_HH
