/**
 * @file
 * The interface of a memory that can be the target of a DTU memory
 * endpoint: the platform's DRAM module, or another PE's scratchpad
 * (used e.g. for application loading, Sec. 4.5.5).
 */

#ifndef M3_MEM_MEM_TARGET_HH
#define M3_MEM_MEM_TARGET_HH

#include <cstddef>

#include "base/types.hh"

namespace m3
{

/**
 * A byte-addressable memory reachable over the NoC. Data access is
 * immediate (functional); timing is composed by the DTU from the NoC
 * transfer time plus this memory's accessLatency().
 */
class MemTarget
{
  public:
    virtual ~MemTarget() = default;

    /** Capacity in bytes. */
    virtual size_t size() const = 0;

    /** Copy @p len bytes at @p off into @p dst. Bounds-checked. */
    virtual void read(goff_t off, void *dst, size_t len) = 0;

    /** Copy @p len bytes from @p src to @p off. Bounds-checked. */
    virtual void write(goff_t off, const void *src, size_t len) = 0;

    /** Set @p len bytes at @p off to zero. */
    virtual void zero(goff_t off, size_t len) = 0;

    /** Fixed access latency per request, in cycles. */
    virtual Cycles accessLatency() const = 0;
};

} // namespace m3

#endif // M3_MEM_MEM_TARGET_HH
