/**
 * @file
 * The platform's DRAM module: one NoC node holding the external memory
 * that all PEs share (Sec. 4.1: Tomahawk has one DRAM module). m3fs keeps
 * the filesystem image here, pipes keep their ringbuffers here, and
 * applications obtain regions of it via memory capabilities.
 */

#ifndef M3_MEM_DRAM_HH
#define M3_MEM_DRAM_HH

#include <cstring>
#include <memory>

#include "base/logging.hh"
#include "base/types.hh"
#include "mem/mem_target.hh"

namespace m3
{

/** The external DRAM as a DTU memory target. */
class Dram : public MemTarget
{
  public:
    /**
     * @param bytes capacity
     * @param latency fixed access latency per request, in cycles
     */
    Dram(size_t bytes, Cycles latency)
        : bytes(bytes), latency(latency), data(new uint8_t[bytes])
    {
        std::memset(data.get(), 0, bytes);
    }

    size_t size() const override { return bytes; }

    void
    read(goff_t off, void *dst, size_t len) override
    {
        check(off, len);
        std::memcpy(dst, data.get() + off, len);
    }

    void
    write(goff_t off, const void *src, size_t len) override
    {
        check(off, len);
        std::memcpy(data.get() + off, src, len);
    }

    void
    zero(goff_t off, size_t len) override
    {
        check(off, len);
        std::memset(data.get() + off, 0, len);
    }

    Cycles accessLatency() const override { return latency; }

    /** Direct pointer for functional inspection in tests. */
    const uint8_t *
    inspect(goff_t off, size_t len) const
    {
        check(off, len);
        return data.get() + off;
    }

  private:
    void
    check(goff_t off, size_t len) const
    {
        if (off > bytes || len > bytes - off)
            panic("DRAM access out of bounds: %llu + %zu > %zu",
                  static_cast<unsigned long long>(off), len, bytes);
    }

    size_t bytes;
    Cycles latency;
    std::unique_ptr<uint8_t[]> data;
};

} // namespace m3

#endif // M3_MEM_DRAM_HH
