#include "accel/fft.hh"

#include <cmath>

#include "base/logging.hh"

namespace m3
{
namespace accel
{

namespace
{

bool
isPowerOfTwo(size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // anonymous namespace

void
fft(std::complex<float> *data, size_t n, bool inverse)
{
    if (!isPowerOfTwo(n))
        panic("FFT size %zu is not a power of two", n);

    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    const float sign = inverse ? 1.0f : -1.0f;
    for (size_t len = 2; len <= n; len <<= 1) {
        float angle = sign * 2.0f * static_cast<float>(M_PI) /
                      static_cast<float>(len);
        std::complex<float> wlen(std::cos(angle), std::sin(angle));
        for (size_t i = 0; i < n; i += len) {
            std::complex<float> w(1.0f, 0.0f);
            for (size_t k = 0; k < len / 2; ++k) {
                std::complex<float> u = data[i + k];
                std::complex<float> v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse) {
        for (size_t i = 0; i < n; ++i)
            data[i] /= static_cast<float>(n);
    }
}

uint64_t
fftButterflies(size_t n)
{
    if (n < 2)
        return 0;
    uint64_t stages = 0;
    for (size_t v = n; v > 1; v >>= 1)
        ++stages;
    return static_cast<uint64_t>(n / 2) * stages;
}

Cycles
fftCost(size_t n, const ComputeCosts &costs, bool accelerated)
{
    Cycles sw = fftButterflies(n) * costs.fftButterfly;
    return accelerated ? sw / costs.fftAccelFactor : sw;
}

} // namespace accel
} // namespace m3
