/**
 * @file
 * The FFT used for the accelerator study (Sec. 5.8): a real radix-2
 * transform whose computational cost is charged per butterfly. On a
 * general-purpose core the software cost applies; on the FFT
 * instruction-extension core the same computation runs at the
 * accelerator factor (~30x, Fig. 7).
 */

#ifndef M3_ACCEL_FFT_HH
#define M3_ACCEL_FFT_HH

#include <complex>
#include <cstddef>

#include "base/cost_model.hh"
#include "base/types.hh"

namespace m3
{
namespace accel
{

/** In-place iterative radix-2 FFT. @p n must be a power of two. */
void fft(std::complex<float> *data, size_t n, bool inverse = false);

/** Number of butterfly operations of an n-point radix-2 FFT. */
uint64_t fftButterflies(size_t n);

/**
 * Cycle cost of an n-point FFT.
 * @param accelerated true on the FFT instruction-extension core
 */
Cycles fftCost(size_t n, const ComputeCosts &costs, bool accelerated);

/** Attribute name the FFT accelerator PEs carry. */
inline const char *FFT_ATTR = "fft";

} // namespace accel
} // namespace m3

#endif // M3_ACCEL_FFT_HH
