#include "workloads/openloop.hh"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "libm3/m3system.hh"
#include "libm3/vpe.hh"
#include "trace/reqtrace.hh"

namespace m3
{
namespace workloads
{

namespace
{

/** Wire protocol of the "rpc" service. Every request carries its
 *  request id so the client can complete out-of-order replies. */
enum class RpcOp : uint64_t
{
    Echo,  //!< { Echo, reqId, pad } -> { Error, reqId }
    Put,   //!< { Put, reqId, key, value } -> { Error, reqId }
    Get,   //!< { Get, reqId, key } -> { Error, reqId, value }
};

enum class RpcXchg : uint64_t
{
    GetChannel,  //!< obtain the session's 1-credit send gate
};

constexpr uint32_t OL_MSG = 256;

/**
 * Deterministic exponential inter-arrival gaps: a splitmix-style mix of
 * (seed, client, index) feeds the inverse-CDF. A pure function, so the
 * arrival process is identical across repeats and thread counts.
 */
uint64_t
mix64(uint64_t seed, uint32_t client, uint32_t idx)
{
    uint64_t h = seed ^ ((uint64_t{client} + 1) * 0x9e3779b97f4a7c15ull) ^
                 ((uint64_t{idx} + 1) << 32);
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

Cycles
poissonGap(uint64_t seed, uint32_t client, uint32_t idx, uint64_t mean)
{
    // 53 uniform bits -> u in [0, 1); -ln(1-u) is Exp(1).
    double u = static_cast<double>(mix64(seed, client, idx) >> 11) *
               (1.0 / 9007199254740992.0);
    double gap = -std::log(1.0 - u) * static_cast<double>(mean);
    return 1 + static_cast<Cycles>(gap);
}

/** Request ids: non-zero, unique, assigned without any shared counter
 *  (determinism on the sharded engine). */
constexpr uint64_t
requestId(uint32_t client, uint32_t idx)
{
    return (uint64_t{client} << 20) + idx + 1;
}

/** The service program: a KV store with an echo fast path, run as a
 *  boot VPE (same service-protocol shape as m3fs / test_service). */
int
rpcServiceMain(uint64_t serviceCycles)
{
    Env &env = Env::cur();
    env.acct().push(Category::Os);

    RecvGate rgate(env, 32, OL_MSG);
    capsel_t srvSel = env.allocSels();
    if (env.createSrv(srvSel, rgate.capSel(), "rpc") != Error::None)
        return 1;

    std::map<uint64_t, uint64_t> table;
    uint64_t nextIdent = 1;

    for (;;) {
        GateIStream is = rgate.receive();
        env.compute(env.cm.m3.fetchMsg);
        if (is.label() == 0) {
            auto op = is.pull<kif::ServiceOp>();
            switch (op) {
              case kif::ServiceOp::Open: {
                is.pull<uint64_t>();
                Marshaller m = is.replyStream();
                m << Error::None << nextIdent++;
                is.replyStreamSend(m);
                break;
              }
              case kif::ServiceOp::Obtain: {
                auto ident = is.pull<uint64_t>();
                is.pull<uint64_t>();  // cap budget
                auto argc = is.pull<uint64_t>();
                uint64_t arg0 = argc ? is.pull<uint64_t>() : 0;
                if (static_cast<RpcXchg>(arg0) == RpcXchg::GetChannel) {
                    capsel_t sel = env.allocSels();
                    // One credit per client: at most one request of each
                    // client in the service ring — bunched arrivals show
                    // up as client-side credit stalls, not ring drops.
                    Error e = env.createSgate(sel, rgate.capSel(), ident,
                                              1);
                    Marshaller m = is.replyStream();
                    m << e << uint64_t{1} << sel << uint64_t{0};
                    is.replyStreamSend(m);
                } else {
                    Marshaller m = is.replyStream();
                    m << Error::InvalidArgs << uint64_t{0};
                    is.replyStreamSend(m);
                }
                break;
              }
              case kif::ServiceOp::Shutdown:
                is.replyError(Error::None);
                return 0;
              default:
                is.replyError(Error::InvalidArgs);
                break;
            }
            continue;
        }
        // Direct client request: serve and reply with the echoed id.
        auto op = is.pull<RpcOp>();
        auto reqId = is.pull<uint64_t>();
        uint64_t value = 0;
        if (op == RpcOp::Put) {
            auto key = is.pull<uint64_t>();
            value = is.pull<uint64_t>();
            table[key] = value;
        } else if (op == RpcOp::Get) {
            auto key = is.pull<uint64_t>();
            auto it = table.find(key);
            value = it == table.end() ? 0 : it->second;
        }
        env.compute(serviceCycles);
        Marshaller m = is.replyStream();
        m << Error::None << reqId << value;
        is.replyStreamSend(m);
        // Housekeeping below (none today) must not be attributed to
        // this request.
        if (M3_REQTRACE_ON) {
            if (Fiber *f = Fiber::current())
                f->setReqCtx(0);
        }
    }
}

/** One open-loop client: fires requestsPerClient requests at Poisson
 *  arrival times, never waiting for a reply before the next arrival. */
int
clientMain(const OpenLoopOpts opts, uint32_t client, uint32_t cls)
{
    Env &env = Env::cur();
    Simulator &sim = env.platform.simulator();

    // Session + channel setup (boot-race retry like the fs client).
    capsel_t sess = env.allocSels();
    Error e = Error::None;
    for (int i = 0; i < 2000; ++i) {
        e = env.openSess(sess, "rpc", 0);
        if (e != Error::NoSuchService)
            break;
        Fiber::current()->sleep(500);
    }
    if (e != Error::None)
        return 1;
    capsel_t sgateSel = env.allocSels();
    std::vector<uint64_t> ret;
    if (env.exchangeSess(sess, kif::ExchangeOp::Obtain, sgateSel, 1,
                         {static_cast<uint64_t>(RpcXchg::GetChannel)},
                         &ret) != Error::None)
        return 2;
    SendGate chan(env, sgateSel, OL_MSG, true);
    RecvGate reply(env, 4, OL_MSG);

    uint32_t outstanding = 0;
    // Consume one reply if available (blocking waits first when asked).
    // Fetching the reply adopts its request context onto this fiber;
    // completion is keyed by the echoed request id, so out-of-order
    // replies complete the right request.
    auto drainOne = [&](bool blocking) -> bool {
        if (blocking)
            env.waitMsgYielding(reply.boundEp());
        GateIStream r = reply.tryReceive();
        if (!r.valid())
            return false;
        env.compute(env.cm.m3.fetchMsg + env.cm.m3.unmarshal);
        r.pullError();
        uint64_t rid = r.pull<uint64_t>();
        if (M3_REQTRACE_ON)
            trace::ReqTrace::end(trace::reqCtxMake(cls, rid, 0),
                                 sim.curCycle());
        outstanding--;
        return true;
    };

    uint64_t t = sim.curCycle();
    for (uint32_t i = 0; i < opts.requestsPerClient; ++i) {
        t += poissonGap(opts.seed, client, i, opts.meanGapCycles);
        uint64_t now = sim.curCycle();
        if (now < t)
            Fiber::current()->sleep(t - now);
        while (drainOne(false)) {
        }

        const uint64_t reqId = requestId(client, i);
        trace::ReqCtx ctx = 0;
        if (M3_REQTRACE_ON) {
            ctx = trace::ReqTrace::begin(cls, reqId, t);
            trace::ReqTrace::noteQueued(ctx, sim.curCycle() - t);
        }
        for (;;) {
            // Re-arm the fiber's context before every attempt: draining
            // a reply in between adopted that reply's context.
            if (M3_REQTRACE_ON)
                Fiber::current()->setReqCtx(ctx);
            Marshaller m = chan.ostream();
            if ((client % 2) == 0) {
                m << RpcOp::Echo << reqId << uint64_t{0};
            } else if ((i % 2) == 0) {
                m << RpcOp::Put << reqId << (reqId % 8192)
                  << (reqId * 2654435761ull);
            } else {
                m << RpcOp::Get << reqId << (reqId % 8192);
            }
            uint64_t s0 = sim.curCycle();
            Error se = chan.send(m, &reply);
            if (se == Error::None) {
                outstanding++;
                break;
            }
            if (se != Error::NoCredits)
                return 3;
            // Out of credits: the previous request still owns the slot.
            // Wait for its reply (which refunds the credit) and retry.
            drainOne(true);
            if (M3_REQTRACE_ON)
                trace::ReqTrace::noteCreditStall(ctx,
                                                 sim.curCycle() - s0);
        }
    }
    while (outstanding > 0)
        drainOne(true);
    if (M3_REQTRACE_ON)
        Fiber::current()->setReqCtx(0);
    return 0;
}

void
appendU64(std::string &out, const char *key, uint64_t v, bool comma = true)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64 "%s", key, v,
                  comma ? ", " : "");
    out += buf;
}

} // anonymous namespace

OpenLoopResult
runOpenLoop(const OpenLoopOpts &opts)
{
    OpenLoopResult res;
    if (trace::ReqTrace::on)
        trace::ReqTrace::reset();
    // Deterministic class registration, before any traffic exists.
    const uint32_t clsEcho = trace::ReqTrace::registerClass("echo");
    const uint32_t clsKv = trace::ReqTrace::registerClass("kv");

    M3SystemCfg cfg;
    cfg.withFs = false;
    cfg.numKernels = opts.numKernels;
    // Root + service + one PE per client.
    cfg.appPes = opts.clients + 2;
    if (opts.shards > 1 && opts.shards == opts.numKernels)
        cfg.shards = opts.shards;
    cfg.threads = opts.threads ? opts.threads : 1;

    M3System sys(std::move(cfg));

    const peid_t servicePe = sys.rootPe() + 1;
    kernel::Kernel::BootProgram prog;
    prog.pe = servicePe;
    prog.name = "rpc";
    Platform *plat = &sys.platform();
    const uint64_t serviceCycles = opts.serviceCycles;
    prog.main = [plat, servicePe, serviceCycles](vpeid_t id) {
        Env env(*plat, servicePe, id);
        int rc = rpcServiceMain(serviceCycles);
        env.vpeExit(rc);
    };
    sys.kernelInstance(sys.domainOfPe(servicePe)).addBootProgram(
        std::move(prog));

    const OpenLoopOpts optsCopy = opts;
    sys.runRoot("openloop", [optsCopy, clsEcho, clsKv] {
        Env &env = Env::cur();
        std::vector<std::unique_ptr<VPE>> vpes;
        for (uint32_t c = 0; c < optsCopy.clients; ++c) {
            auto v = std::make_unique<VPE>(
                env, "client" + std::to_string(c));
            if (v->err() != Error::None)
                return 10;
            uint32_t cls = (c % 2) == 0 ? clsEcho : clsKv;
            if (v->run([optsCopy, c, cls] {
                    return clientMain(optsCopy, c, cls);
                }) != Error::None)
                return 11;
            vpes.push_back(std::move(v));
        }
        int rc = 0;
        for (auto &v : vpes)
            rc |= v->wait();
        return rc;
    });

    auto host0 = std::chrono::steady_clock::now();
    bool finished = sys.simulate();
    res.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host0)
            .count();
    res.rc = finished ? sys.rootExitCode() : -1;
    res.wallCycles = sys.simulator().curCycle();
    res.events = sys.eventsExecuted();

    const uint64_t totalReqs =
        uint64_t{opts.clients} * opts.requestsPerClient;
    res.completed =
        trace::ReqTrace::on ? trace::ReqTrace::completedCount() : totalReqs;

    if (trace::ReqTrace::on) {
        // The SLO report. Pure simulated integers: byte-identical across
        // repeats and thread counts. "Offered" rates over the generation
        // window; the verdict calls the offered load sustainable when
        // the completion tail past the last arrival stays within 10% of
        // the arrival window (the system kept pace instead of building
        // an ever-growing backlog).
        const uint64_t firstGen = trace::ReqTrace::firstGenCycle();
        const uint64_t lastGen = trace::ReqTrace::lastGenCycle();
        const uint64_t lastEnd = trace::ReqTrace::lastEndCycle();
        const uint64_t span = lastGen > firstGen ? lastGen - firstGen : 1;
        const uint64_t tail = lastEnd > lastGen ? lastEnd - lastGen : 0;
        const uint64_t achievedSpan =
            lastEnd > firstGen ? lastEnd - firstGen : 1;
        std::string j = "{\"schema\": 1, \"workload\": \"openloop\", ";
        appendU64(j, "clients", opts.clients);
        appendU64(j, "requests_per_client", opts.requestsPerClient);
        appendU64(j, "mean_gap_cycles", opts.meanGapCycles);
        appendU64(j, "seed", opts.seed);
        appendU64(j, "service_cycles", opts.serviceCycles);
        appendU64(j, "kernels", opts.numKernels);
        appendU64(j, "requests", totalReqs);
        appendU64(j, "completed", res.completed);
        appendU64(j, "spans", trace::ReqTrace::spanCount());
        appendU64(j, "arrival_window_cycles", span);
        appendU64(j, "drain_tail_cycles", tail);
        appendU64(j, "offered_per_mcycle", totalReqs * 1000000 / span);
        appendU64(j, "achieved_per_mcycle",
                  res.completed * 1000000 / achievedSpan);
        const bool sustainable =
            res.completed == totalReqs && tail * 10 <= span;
        j += "\"sustainable\": ";
        j += sustainable ? "true" : "false";
        j += ", \"classes\": ";
        j += trace::ReqTrace::sloJson();
        j += "}\n";
        res.sloJson = std::move(j);
    }
    return res;
}

} // namespace workloads
} // namespace m3
