/**
 * @file
 * Trace replay against the Linux baseline: executes the same recorded
 * syscall trace through the baseline's process syscall interface.
 */

#ifndef M3_WORKLOADS_LX_REPLAY_HH
#define M3_WORKLOADS_LX_REPLAY_HH

#include "linuxsim/machine.hh"
#include "workloads/trace.hh"

namespace m3
{
namespace workloads
{

/** Replay @p trace in process @p proc. @return 0 on success. */
int replayTraceLx(lx::Process &proc, const Trace &trace);

/** Populate the baseline's tmpfs with the workload's initial state. */
void applySetupToTmpfs(const FsSetup &setup, lx::Tmpfs &fs);

} // namespace workloads
} // namespace m3

#endif // M3_WORKLOADS_LX_REPLAY_HH
