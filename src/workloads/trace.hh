/**
 * @file
 * The system-call trace format used by the application-level benchmarks
 * (Sec. 5.6): a recorded sequence of OS operations plus compute waits,
 * replayed against either the M3 file API or the Linux baseline. This
 * mirrors the paper's methodology of replaying strace recordings with
 * the corresponding API on each system.
 */

#ifndef M3_WORKLOADS_TRACE_HH
#define M3_WORKLOADS_TRACE_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace m3
{
namespace workloads
{

/** One recorded operation. */
struct TraceOp
{
    enum class Kind
    {
        Open,     //!< open fdSlot = open(path, flags)
        Close,    //!< close(fdSlot)
        Read,     //!< read len bytes in chunkSize pieces from fdSlot
        Write,    //!< write len bytes in chunkSize pieces to fdSlot
        Seek,     //!< seek fdSlot to absolute offset len
        Sendfile, //!< copy len bytes fdSlot2 -> fdSlot (paper: tar/untar)
        Stat,     //!< stat(path)
        Mkdir,    //!< mkdir(path)
        Unlink,   //!< unlink(path)
        Link,     //!< link(path, path2)
        Rename,   //!< rename(path, path2)
        Readdir,  //!< list path
        Fsync,    //!< fsync(fdSlot)
        Compute,  //!< application computation of len cycles
    };

    TraceOp() = default;

    explicit TraceOp(Kind kind) : kind(kind) {}

    TraceOp(Kind kind, std::string path, std::string path2,
            uint32_t flags, int fdSlot)
        : kind(kind), path(std::move(path)), path2(std::move(path2)),
          flags(flags), fdSlot(fdSlot)
    {
    }

    Kind kind = Kind::Compute;
    std::string path;
    std::string path2;
    uint32_t flags = 0;
    int fdSlot = 0;   //!< index into the replayer's descriptor table
    int fdSlot2 = 0;
    uint64_t len = 0;
    uint32_t chunkSize = 4096;  //!< the paper's 4 KiB buffers (Sec. 5.4)
};

using Trace = std::vector<TraceOp>;

/** A file that must exist before the trace runs. */
struct SetupFile
{
    std::string path;
    size_t size;
    uint64_t seed;  //!< deterministic content
};

/** The initial filesystem state a workload expects. */
struct FsSetup
{
    std::vector<std::string> dirs;
    std::vector<SetupFile> files;
};

/** A complete benchmark workload. */
struct Workload
{
    std::string name;
    FsSetup setup;
    Trace trace;
};

} // namespace workloads
} // namespace m3

#endif // M3_WORKLOADS_TRACE_HH
