#include "workloads/runners.hh"

#include <algorithm>
#include <chrono>

#include "base/logging.hh"
#include "libm3/m3system.hh"
#include "libm3/vpe.hh"
#include "m3fs/client.hh"
#include "m3fs/distfs.hh"
#include "workloads/generators.hh"
#include "workloads/lx_replay.hh"
#include "workloads/m3_replay.hh"

namespace m3
{
namespace workloads
{

namespace
{

M3SystemCfg
makeM3Cfg(const FsSetup &setup, const M3RunOpts &opts)
{
    M3SystemCfg cfg;
    cfg.appPes = opts.appPes;
    cfg.numKernels = opts.numKernels;
    cfg.shards = opts.shards;
    cfg.threads = opts.threads;
    cfg.costs = opts.costs;
    cfg.fsCfg.appendBlocks = opts.fsAppendBlocks;
    cfg.fsCfg.backgroundZero = opts.fsBackgroundZero;
    FsSetup adjusted = setup;
    applySetupToImage(adjusted, cfg.fsSpec);
    for (auto &f : cfg.fsSpec.files)
        f.blocksPerExtent = opts.fsBlocksPerExtent;
    // Size the image generously for the workload's writes.
    cfg.fsSpec.totalBlocks = 32768;  // 32 MiB at 1 KiB blocks
    return cfg;
}

/** Boot M3, run @p body as root (after mounting), report the result. */
RunResult
runOnM3(M3SystemCfg cfg, const std::function<int(Env &)> &body)
{
    RunResult res;
    M3System sys(std::move(cfg));
    sys.runRoot("bench", [&] {
        Env &env = Env::cur();
        if (m3fs::M3fsSession::mount(env, "/") != Error::None)
            return 100;
        env.acct().reset();
        Cycles t0 = env.platform.simulator().curCycle();
        int rc = body(env);
        res.wall = env.platform.simulator().curCycle() - t0;
        return rc;
    });
    auto host0 = std::chrono::steady_clock::now();
    bool finished = sys.simulate();
    res.hostSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - host0)
                          .count();
    if (!finished)
        fatal("M3 benchmark run did not finish");
    res.rc = sys.rootExitCode();
    res.acct = sys.appAccounting();
    res.events = sys.eventsExecuted();
    return res;
}

lx::LinuxConfig
makeLxCfg(const LxRunOpts &opts)
{
    lx::LinuxConfig cfg;
    cfg.costs = opts.costs;
    cfg.compute = opts.compute;
    cfg.cacheAlwaysHit = opts.cacheAlwaysHit;
    return cfg;
}

RunResult
runOnLx(const lx::LinuxConfig &cfg, const FsSetup &setup,
        const std::function<int(lx::Process &)> &body)
{
    RunResult res;
    lx::Machine m(cfg);
    applySetupToTmpfs(setup, m.fs());
    Cycles t0 = 0, t1 = 0;
    int rc = -1;
    m.spawnInit("bench", [&](lx::Process &p) {
        p.accounting().reset();
        t0 = m.now();
        rc = body(p);
        t1 = m.now();
        return rc;
    });
    auto host0 = std::chrono::steady_clock::now();
    m.simulate();
    res.hostSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - host0)
                          .count();
    res.rc = rc;
    res.wall = t1 - t0;
    res.acct = m.mergedAccounting();
    res.events = m.eventsExecuted();
    return res;
}

} // anonymous namespace

RunResult
runM3Trace(const Workload &workload, const M3RunOpts &opts)
{
    M3SystemCfg cfg = makeM3Cfg(workload.setup, opts);
    const Trace &trace = workload.trace;
    return runOnM3(cfg, [&trace](Env &env) {
        return replayTraceM3(env, trace);
    });
}

RunResult
runLxTrace(const Workload &workload, const LxRunOpts &opts)
{
    return runOnLx(makeLxCfg(opts), workload.setup,
                   [&](lx::Process &p) {
                       return replayTraceLx(p, workload.trace);
                   });
}

RunResult
runM3CatTr(const CatTrParams &p, const M3RunOpts &opts)
{
    M3SystemCfg cfg = makeM3Cfg(catTrSetup(p), opts);
    return runOnM3(cfg, [&p](Env &env) { return catTrM3(env, p); });
}

RunResult
runLxCatTr(const CatTrParams &p, const LxRunOpts &opts)
{
    return runOnLx(makeLxCfg(opts), catTrSetup(p),
                   [&](lx::Process &proc) { return catTrLx(proc, p); });
}

RunResult
runM3Fft(const FftParams &p, const M3RunOpts &opts)
{
    registerFftProgram(p);
    M3SystemCfg cfg = makeM3Cfg(fftSetup(p), opts);
    if (p.useAccel)
        cfg.extraPes.push_back(PeDesc::accel("fft"));
    return runOnM3(cfg, [&p](Env &env) { return fftChainM3(env, p); });
}

RunResult
runLxFft(const FftParams &p, const LxRunOpts &opts)
{
    return runOnLx(makeLxCfg(opts), fftSetup(p),
                   [&](lx::Process &proc) { return fftChainLx(proc, p); });
}

// ---------------------------------------------------------------------
// Scalability (Sec. 5.7).
// ---------------------------------------------------------------------

namespace
{

/** Give every path of @p w an instance-private prefix. */
Workload
namespaced(const Workload &w, uint32_t instance)
{
    std::string prefix = "/i" + std::to_string(instance);
    Workload out = w;
    out.setup.dirs.clear();
    out.setup.dirs.push_back(prefix);
    for (const std::string &d : w.setup.dirs)
        out.setup.dirs.push_back(prefix + d);
    for (auto &f : out.setup.files)
        f.path = prefix + f.path;
    for (auto &op : out.trace) {
        if (!op.path.empty())
            op.path = prefix + op.path;
        if (!op.path2.empty())
            op.path2 = prefix + op.path2;
    }
    return out;
}

} // anonymous namespace

ScalabilityResult
runM3Scalability(const std::string &benchName, uint32_t instances,
                 const M3RunOpts &opts)
{
    ScalabilityResult result;
    result.instances.assign(instances, 0);

    const bool isCatTr = benchName == "cat+tr";
    uint32_t pesPerInstance = isCatTr ? 2 : 1;

    // Build the per-instance workloads (trace benches only).
    std::vector<Workload> perInstance;
    Workload base;
    if (!isCatTr) {
        auto all = makeAllTraceWorkloads(opts.costs.compute);
        for (const Workload &w : all)
            if (w.name == benchName)
                base = w;
        if (base.name.empty())
            fatal("unknown scalability bench '%s'", benchName.c_str());
        for (uint32_t i = 0; i < instances; ++i)
            perInstance.push_back(namespaced(base, i));
        if (opts.ioChunk) {
            for (Workload &w : perInstance)
                for (TraceOp &op : w.trace)
                    if (op.kind == TraceOp::Kind::Sendfile &&
                        op.chunkSize == 4096)
                        op.chunkSize = opts.ioChunk;
        }
    }

    const bool striped = opts.distfsStripes > 1;

    M3SystemCfg cfg;
    cfg.appPes = 1 + instances * pesPerInstance;
    if (opts.maxAppPes && opts.maxAppPes < cfg.appPes) {
        if (!opts.multiplexSlice)
            fatal("capping %u needed app PEs at %u requires a multiplex "
                  "slice",
                  cfg.appPes, opts.maxAppPes);
        cfg.appPes = opts.maxAppPes;
        result.capped = true;
    }
    result.appPes = cfg.appPes;
    cfg.multiplexSlice = opts.multiplexSlice;
    cfg.costs = opts.costs;
    cfg.fsInstances = opts.fsInstances;
    cfg.distfsStripes = opts.distfsStripes;
    cfg.distfsUnitBlocks = opts.distfsUnitBlocks;
    cfg.distfsReplicas = opts.distfsReplicas;
    cfg.numKernels = opts.numKernels;
    cfg.shards = opts.shards;
    cfg.threads = opts.threads;
    // Images + one pipe ring per instance. The classic runs (<= 16
    // instances) keep their exact historical sizes; larger machines
    // (the 256-PE engine-scaling workloads) grow proportionally.
    cfg.dramBytes = std::max<size_t>(256 * MiB,
                                     size_t(instances) * 16 * MiB);
    // Sec. 5.7: DRAM transfers become spins of equal time.
    cfg.costs.spinDataTransfers = true;
    cfg.fsCfg.appendBlocks = opts.fsAppendBlocks;
    cfg.fsSpec.totalBlocks =
        std::max<uint32_t>(65536, instances * 4096);  // room for every inst
    cfg.fsSpec.totalInodes = std::max<uint32_t>(2048, instances * 128);
    const uint32_t fsN = opts.fsInstances;
    // Striped machines create the setup files at runtime through the
    // distfs mount (subfiles cannot be pre-built into a single image).
    if (!striped) {
        for (uint32_t i = 0; i < instances; ++i) {
            FsSetup setup;
            if (isCatTr) {
                CatTrParams instParams;
                instParams.root = "/i" + std::to_string(i);
                setup = catTrSetup(instParams);
            } else {
                setup = perInstance[i].setup;
            }
            applySetupToImage(setup, cfg.fsSpec);
        }
    }

    M3System sys(cfg);
    std::vector<Cycles> durations(instances, 0);
    std::vector<int> rcs(instances, -1);

    sys.runRoot("orchestrator", [&] {
        Env &env = Env::cur();
        if (m3fs::M3fsSession::mount(env, "/") != Error::None)
            return 100;
        std::vector<std::unique_ptr<VPE>> vpes;
        for (uint32_t i = 0; i < instances; ++i) {
            auto vpe = std::make_unique<VPE>(
                env, "inst" + std::to_string(i));
            if (vpe->err() != Error::None)
                return 101;
            std::string srv = M3SystemCfg::fsName(i % fsN);
            const bool timeSetup = opts.timeSetup;
            const uint32_t unitBlocks = opts.distfsUnitBlocks;
            // Mount the instance's filesystem: the striped session over
            // the whole stripe set, or one plain m3fs instance. Striped
            // runs then create the setup files through the mount,
            // outside the timed window unless timeSetup asks for it.
            auto mountFs = [striped, srv, unitBlocks](Env &ienv) {
                if (striped)
                    return m3fs::DistfsSession::mount(
                        ienv, "/", M3SystemCfg::DISTFS_GROUP, unitBlocks);
                return m3fs::M3fsSession::mount(ienv, "/", srv);
            };
            if (isCatTr) {
                CatTrParams instParams;
                instParams.root = "/i" + std::to_string(i);
                FsSetup vfsSetup;
                if (striped)
                    vfsSetup = catTrSetup(instParams);
                vpe->run([i, &durations, &rcs, instParams, vfsSetup,
                          mountFs, striped, timeSetup] {
                    Env &ienv = Env::cur();
                    Cycles t0 = ienv.platform.simulator().curCycle();
                    if (mountFs(ienv) != Error::None) {
                        rcs[i] = 200;
                        return 1;
                    }
                    if (striped && applySetupToVfs(ienv, vfsSetup) != 0) {
                        rcs[i] = 201;
                        return 1;
                    }
                    if (!timeSetup)
                        t0 = ienv.platform.simulator().curCycle();
                    rcs[i] = catTrM3(ienv, instParams);
                    durations[i] =
                        ienv.platform.simulator().curCycle() - t0;
                    return rcs[i];
                });
            } else {
                const Trace *trace = &perInstance[i].trace;
                const FsSetup *vfsSetup =
                    striped ? &perInstance[i].setup : nullptr;
                vpe->run([i, &durations, &rcs, trace, vfsSetup, mountFs,
                          timeSetup] {
                    Env &ienv = Env::cur();
                    Cycles t0 = ienv.platform.simulator().curCycle();
                    if (mountFs(ienv) != Error::None) {
                        rcs[i] = 200;
                        return 1;
                    }
                    if (vfsSetup &&
                        applySetupToVfs(ienv, *vfsSetup) != 0) {
                        rcs[i] = 201;
                        return 1;
                    }
                    if (!timeSetup)
                        t0 = ienv.platform.simulator().curCycle();
                    rcs[i] = replayTraceM3(ienv, *trace);
                    durations[i] =
                        ienv.platform.simulator().curCycle() - t0;
                    return rcs[i];
                });
            }
            vpes.push_back(std::move(vpe));
            // Instances are launched back to back, not in lockstep: a
            // short stagger avoids measuring an artificial thundering
            // herd of setup syscalls that no real deployment exhibits.
            Fiber::current()->sleep(2000);
        }
        int bad = 0;
        for (auto &vpe : vpes)
            if (vpe->wait() != 0)
                ++bad;
        return bad;
    });
    auto host0 = std::chrono::steady_clock::now();
    bool finished = sys.simulate();
    result.hostSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - host0)
                             .count();
    result.events = sys.eventsExecuted();
    if (!finished) {
        for (uint32_t i = 0; i < instances; ++i)
            warn("instance %u rc=%d dur=%llu", i, rcs[i],
                 static_cast<unsigned long long>(durations[i]));
        for (peid_t p = 0; p < sys.platform().peCount(); ++p) {
            const DtuStats &ds = sys.platform().pe(p).dtu().stats();
            if (ds.msgsDropped || ds.creditDenials)
                warn("pe%u: dropped=%llu creditDenials=%llu", p,
                     static_cast<unsigned long long>(ds.msgsDropped),
                     static_cast<unsigned long long>(ds.creditDenials));
        }
        result.rc = -2;
        return result;
    }

    result.rc = sys.rootExitCode();
    Cycles sum = 0;
    for (uint32_t i = 0; i < instances; ++i) {
        if (rcs[i] != 0)
            result.rc = result.rc ? result.rc : 300 + static_cast<int>(i);
        sum += durations[i];
        result.instances[i] = durations[i];
    }
    result.avgInstance = instances ? sum / instances : 0;
    return result;
}

} // namespace workloads
} // namespace m3
