/**
 * @file
 * Trace replay against the M3 stack: executes a recorded syscall trace
 * through libm3's VFS/file API on the current VPE (Sec. 5.6: "a program
 * that replays the syscalls ... using the corresponding API on M3").
 */

#ifndef M3_WORKLOADS_M3_REPLAY_HH
#define M3_WORKLOADS_M3_REPLAY_HH

#include "libm3/env.hh"
#include "m3fs/fs_image.hh"
#include "workloads/trace.hh"

namespace m3
{
namespace workloads
{

/**
 * Replay @p trace on the current VPE. The VPE must have the workload's
 * filesystem mounted at "/".
 * @return 0 on success, a step-identifying error code otherwise
 */
int replayTraceM3(Env &env, const Trace &trace);

/** Add a workload's initial files/dirs to an m3fs image spec. */
void applySetupToImage(const FsSetup &setup, m3fs::FsImageSpec &spec);

/**
 * Create a workload's initial files/dirs at runtime through the VPE's
 * mounted filesystem (the distfs path: striped subfiles cannot be
 * pre-built into a single image). @return 0 on success.
 */
int applySetupToVfs(Env &env, const FsSetup &setup);

} // namespace workloads
} // namespace m3

#endif // M3_WORKLOADS_M3_REPLAY_HH
