#include "workloads/m3_replay.hh"

#include <array>
#include <memory>

#include "libm3/vfs.hh"

namespace m3
{
namespace workloads
{

void
applySetupToImage(const FsSetup &setup, m3fs::FsImageSpec &spec)
{
    for (const std::string &d : setup.dirs)
        spec.dirs.push_back(d);
    for (const SetupFile &f : setup.files) {
        spec.files.push_back({f.path,
                              m3fs::FsImage::patternData(f.size, f.seed),
                              0xffffffff});
    }
}

int
applySetupToVfs(Env &env, const FsSetup &setup)
{
    Vfs &vfs = env.vfs();
    for (const std::string &d : setup.dirs) {
        Error e = vfs.mkdir(d);
        if (e != Error::None && e != Error::FileExists)
            return 1;
    }
    std::vector<uint8_t> data;
    for (const SetupFile &f : setup.files) {
        Error e = Error::None;
        auto file = vfs.open(f.path, FILE_W | FILE_CREATE | FILE_TRUNC, e);
        if (!file)
            return 2;
        data = m3fs::FsImage::patternData(f.size, f.seed);
        size_t done = 0;
        while (done < data.size()) {
            size_t chunk = std::min<size_t>(64 * KiB, data.size() - done);
            ssize_t n = file->write(data.data() + done, chunk);
            if (n <= 0)
                return 3;
            done += static_cast<size_t>(n);
        }
    }
    return 0;
}

int
replayTraceM3(Env &env, const Trace &trace)
{
    Vfs &vfs = env.vfs();
    std::array<std::unique_ptr<File>, 8> slots;
    std::vector<uint8_t> buf(64 * KiB);

    for (size_t step = 0; step < trace.size(); ++step) {
        const TraceOp &op = trace[step];
        Error e = Error::None;
        switch (op.kind) {
          case TraceOp::Kind::Open:
            slots[op.fdSlot] = vfs.open(op.path, op.flags, e);
            if (!slots[op.fdSlot])
                return static_cast<int>(step) + 1;
            break;
          case TraceOp::Kind::Close:
            slots[op.fdSlot].reset();
            break;
          case TraceOp::Kind::Read: {
            uint64_t done = 0;
            while (done < op.len) {
                size_t chunk = std::min<uint64_t>(op.chunkSize,
                                                  op.len - done);
                ssize_t n = slots[op.fdSlot]->read(buf.data(), chunk);
                if (n < 0)
                    return static_cast<int>(step) + 1;
                if (n == 0)
                    break;
                done += static_cast<uint64_t>(n);
            }
            break;
          }
          case TraceOp::Kind::Write: {
            uint64_t done = 0;
            while (done < op.len) {
                size_t chunk = std::min<uint64_t>(op.chunkSize,
                                                  op.len - done);
                ssize_t n = slots[op.fdSlot]->write(buf.data(), chunk);
                if (n <= 0)
                    return static_cast<int>(step) + 1;
                done += static_cast<uint64_t>(n);
            }
            break;
          }
          case TraceOp::Kind::Seek:
            slots[op.fdSlot]->seek(static_cast<ssize_t>(op.len),
                                   SeekMode::Set);
            break;
          case TraceOp::Kind::Sendfile: {
            // No sendfile on M3: stream through a user buffer with the
            // paper's 4 KiB chunks (Sec. 5.6).
            uint64_t done = 0;
            while (done < op.len) {
                size_t chunk = std::min<uint64_t>(op.chunkSize,
                                                  op.len - done);
                ssize_t n = slots[op.fdSlot2]->read(buf.data(), chunk);
                if (n < 0)
                    return static_cast<int>(step) + 1;
                if (n == 0)
                    break;
                if (slots[op.fdSlot]->write(buf.data(),
                                            static_cast<size_t>(n)) != n)
                    return static_cast<int>(step) + 1;
                done += static_cast<uint64_t>(n);
            }
            break;
          }
          case TraceOp::Kind::Stat: {
            FileInfo info;
            if (vfs.stat(op.path, info) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          }
          case TraceOp::Kind::Mkdir:
            if (vfs.mkdir(op.path) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          case TraceOp::Kind::Unlink:
            if (vfs.unlink(op.path) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          case TraceOp::Kind::Link:
            if (vfs.link(op.path, op.path2) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          case TraceOp::Kind::Rename:
            if (vfs.rename(op.path, op.path2) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          case TraceOp::Kind::Readdir: {
            std::vector<DirEntry> entries;
            if (vfs.readdir(op.path, entries) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          }
          case TraceOp::Kind::Fsync:
            // m3fs is in-memory; there is nothing to sync (Sec. 4.5.8).
            break;
          case TraceOp::Kind::Compute:
            env.fiber.computeAs(Category::App, op.len);
            break;
        }
    }
    return 0;
}

} // namespace workloads
} // namespace m3
