#include "workloads/lx_replay.hh"

#include <array>
#include <cstring>

#include "base/random.hh"

namespace m3
{
namespace workloads
{

void
applySetupToTmpfs(const FsSetup &setup, lx::Tmpfs &fs)
{
    Error e = Error::None;
    for (const std::string &d : setup.dirs)
        fs.create(d, true, e);
    for (const SetupFile &f : setup.files) {
        auto node = fs.create(f.path, false, e);
        if (!node)
            continue;
        // Deterministic content identical to the m3fs image.
        Random rng(f.seed);
        node->size = f.size;
        for (size_t off = 0; off < f.size; ++off) {
            auto [page, fresh] = node->page(off / lx::PAGE_SIZE);
            (void)fresh;
            page[off % lx::PAGE_SIZE] = static_cast<uint8_t>(rng.next());
        }
    }
}

int
replayTraceLx(lx::Process &proc, const Trace &trace)
{
    std::array<int, 8> slots;
    slots.fill(-1);
    std::vector<uint8_t> buf(64 * KiB);

    for (size_t step = 0; step < trace.size(); ++step) {
        const TraceOp &op = trace[step];
        switch (op.kind) {
          case TraceOp::Kind::Open:
            slots[op.fdSlot] = proc.open(op.path, op.flags);
            if (slots[op.fdSlot] < 0)
                return static_cast<int>(step) + 1;
            break;
          case TraceOp::Kind::Close:
            proc.close(slots[op.fdSlot]);
            slots[op.fdSlot] = -1;
            break;
          case TraceOp::Kind::Read: {
            uint64_t done = 0;
            while (done < op.len) {
                size_t chunk = std::min<uint64_t>(op.chunkSize,
                                                  op.len - done);
                ssize_t n = proc.read(slots[op.fdSlot], buf.data(),
                                      chunk);
                if (n < 0)
                    return static_cast<int>(step) + 1;
                if (n == 0)
                    break;
                done += static_cast<uint64_t>(n);
            }
            break;
          }
          case TraceOp::Kind::Write: {
            uint64_t done = 0;
            while (done < op.len) {
                size_t chunk = std::min<uint64_t>(op.chunkSize,
                                                  op.len - done);
                ssize_t n = proc.write(slots[op.fdSlot], buf.data(),
                                       chunk);
                if (n <= 0)
                    return static_cast<int>(step) + 1;
                done += static_cast<uint64_t>(n);
            }
            break;
          }
          case TraceOp::Kind::Seek:
            proc.lseek(slots[op.fdSlot], static_cast<ssize_t>(op.len),
                       0);
            break;
          case TraceOp::Kind::Sendfile: {
            // BusyBox tar/untar use sendfile on Linux (Sec. 5.6).
            ssize_t n = proc.sendfile(slots[op.fdSlot],
                                      slots[op.fdSlot2], op.len);
            if (n < 0)
                return static_cast<int>(step) + 1;
            break;
          }
          case TraceOp::Kind::Stat: {
            uint64_t size;
            bool isDir;
            if (proc.stat(op.path, size, isDir) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          }
          case TraceOp::Kind::Mkdir:
            if (proc.mkdir(op.path) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          case TraceOp::Kind::Unlink:
            if (proc.unlink(op.path) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          case TraceOp::Kind::Link:
            if (proc.link(op.path, op.path2) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          case TraceOp::Kind::Rename:
            if (proc.rename(op.path, op.path2) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          case TraceOp::Kind::Readdir: {
            std::vector<std::string> names;
            if (proc.readdir(op.path, names) != Error::None)
                return static_cast<int>(step) + 1;
            break;
          }
          case TraceOp::Kind::Fsync:
            proc.fsync(slots[op.fdSlot]);
            break;
          case TraceOp::Kind::Compute:
            proc.compute(op.len);
            break;
        }
    }
    return 0;
}

} // namespace workloads
} // namespace m3
