/**
 * @file
 * The natively-implemented benchmark applications (Sec. 5.6, 5.8):
 * cat+tr — a child streams a 64 KiB file into a pipe while the parent
 * substitutes bytes and writes the result to a new file — and the FFT
 * filter chain of the accelerator study. Each exists for both systems,
 * using the same code structure ("the same code for M3 and Linux,
 * except for programming against libm3", Sec. 5.6).
 */

#ifndef M3_WORKLOADS_APPS_HH
#define M3_WORKLOADS_APPS_HH

#include "libm3/env.hh"
#include "linuxsim/machine.hh"
#include "workloads/trace.hh"

namespace m3
{
namespace workloads
{

/** Parameters of cat+tr. */
struct CatTrParams
{
    size_t fileBytes = 64 * KiB;  //!< the paper's 64 KiB file
    uint32_t bufSize = 4096;      //!< the paper's 4 KiB buffers
    std::string root;             //!< path prefix (scalability study)
};

/** Initial filesystem state for cat+tr. */
FsSetup catTrSetup(const CatTrParams &p);

/**
 * cat+tr on M3: requires a mounted filesystem and one free PE for the
 * child VPE. @return 0 on success.
 */
int catTrM3(Env &env, const CatTrParams &p);

/** cat+tr on the Linux baseline (fork + pipe). */
int catTrLx(lx::Process &proc, const CatTrParams &p);

/** Parameters of the FFT chain (Sec. 5.8). */
struct FftParams
{
    size_t dataBytes = 32 * KiB;  //!< random numbers streamed in total
    size_t chunkBytes = 4 * KiB;  //!< pipe chunk = one FFT batch
    bool useAccel = false;        //!< request the FFT accelerator PE
    std::string binary = "/bin/fft";  //!< executable path for exec
    std::string output = "/out/fft.dat";
};

/** Initial filesystem state for the FFT chain (includes the binary). */
FsSetup fftSetup(const FftParams &p);

/** Register the FFT child program under p.binary. */
void registerFftProgram(const FftParams &p);

/**
 * The FFT chain on M3: create a VPE (accelerator PE if requested), exec
 * the FFT application on it, stream random data through a pipe; the
 * child transforms and writes the result to a file. The parent code is
 * identical for the software and the accelerator version (Sec. 5.8).
 */
int fftChainM3(Env &env, const FftParams &p);

/** The FFT chain on the Linux baseline (software FFT only). */
int fftChainLx(lx::Process &proc, const FftParams &p);

} // namespace workloads
} // namespace m3

#endif // M3_WORKLOADS_APPS_HH
