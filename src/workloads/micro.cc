#include "workloads/micro.hh"

#include <chrono>

#include "base/random.hh"
#include "libm3/m3system.hh"
#include "libm3/pipe.hh"
#include "libm3/vpe.hh"
#include "m3fs/client.hh"

namespace m3
{
namespace workloads
{

namespace
{

/** Boot M3 with the given image spec and run @p body as root. */
RunResult
runMicroM3(const M3RunOpts &opts, const m3fs::FsImageSpec &fsSpec,
           uint32_t appPes, const std::function<int(Env &)> &body)
{
    RunResult res;
    M3SystemCfg cfg;
    cfg.appPes = appPes;
    cfg.costs = opts.costs;
    cfg.fsSpec = fsSpec;
    cfg.fsCfg.appendBlocks = opts.fsAppendBlocks;
    cfg.fsCfg.backgroundZero = opts.fsBackgroundZero;
    M3System sys(std::move(cfg));
    sys.runRoot("micro", [&] {
        Env &env = Env::cur();
        if (m3fs::M3fsSession::mount(env, "/") != Error::None)
            return 100;
        env.acct().reset();
        Cycles t0 = env.platform.simulator().curCycle();
        int rc = body(env);
        res.wall = env.platform.simulator().curCycle() - t0;
        return rc;
    });
    auto host0 = std::chrono::steady_clock::now();
    bool finished = sys.simulate();
    res.hostSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - host0)
                          .count();
    if (!finished)
        fatal("micro benchmark did not finish");
    res.rc = sys.rootExitCode();
    res.acct = sys.appAccounting();
    res.events = sys.eventsExecuted();
    return res;
}

RunResult
runMicroLx(const LxRunOpts &opts, const std::function<int(lx::Process &)> &body)
{
    RunResult res;
    lx::LinuxConfig cfg;
    cfg.costs = opts.costs;
    cfg.compute = opts.compute;
    cfg.cacheAlwaysHit = opts.cacheAlwaysHit;
    lx::Machine m(cfg);
    Cycles t0 = 0, t1 = 0;
    int rc = -1;
    m.spawnInit("micro", [&](lx::Process &p) {
        p.accounting().reset();
        t0 = m.now();
        rc = body(p);
        t1 = m.now();
        return rc;
    });
    auto host0 = std::chrono::steady_clock::now();
    m.simulate();
    res.hostSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - host0)
                          .count();
    res.rc = rc;
    res.wall = t1 - t0;
    res.acct = m.mergedAccounting();
    res.events = m.eventsExecuted();
    return res;
}

} // anonymous namespace

RunResult
m3NullSyscall(uint32_t iterations, const M3RunOpts &opts)
{
    RunResult r = runMicroM3(opts, {}, 2, [&](Env &env) {
        for (uint32_t i = 0; i < iterations; ++i)
            if (env.noop() != Error::None)
                return 1;
        return 0;
    });
    r.wall /= iterations;
    return r;
}

RunResult
lxNullSyscall(uint32_t iterations, const LxRunOpts &opts)
{
    RunResult r = runMicroLx(opts, [&](lx::Process &p) {
        for (uint32_t i = 0; i < iterations; ++i)
            p.nullSyscall();
        return 0;
    });
    r.wall /= iterations;
    return r;
}

RunResult
m3FileRead(const MicroOpts &opts)
{
    m3fs::FsImageSpec spec;
    spec.totalBlocks = 32768;
    spec.dirs = {"/data"};
    spec.files.push_back({"/data/file",
                          m3fs::FsImage::patternData(opts.fileBytes, 99),
                          opts.blocksPerExtent});
    return runMicroM3(opts.m3, spec, 2, [&](Env &env) {
        Error e = Error::None;
        auto file = env.vfs().open("/data/file", FILE_R, e);
        if (!file)
            return 1;
        std::vector<uint8_t> buf(opts.bufSize);
        for (;;) {
            ssize_t n = file->read(buf.data(), buf.size());
            if (n < 0)
                return 2;
            if (n == 0)
                return 0;
        }
    });
}

RunResult
lxFileRead(const MicroOpts &opts)
{
    size_t bytes = opts.fileBytes;
    uint32_t buf = opts.bufSize;
    return runMicroLx(opts.lx, [bytes, buf](lx::Process &p) {
        // Prepare the file outside the measurement.
        {
            Error e = Error::None;
            auto node = p.machine().fs().create("/file", false, e);
            if (!node)
                return 1;
            node->size = bytes;
            for (size_t pg = 0; pg * lx::PAGE_SIZE < bytes; ++pg)
                node->page(pg);
        }
        int fd = p.open("/file", 1);
        if (fd < 0)
            return 2;
        std::vector<uint8_t> b(buf);
        for (;;) {
            ssize_t n = p.read(fd, b.data(), b.size());
            if (n < 0)
                return 3;
            if (n == 0)
                break;
        }
        p.close(fd);
        return 0;
    });
}

RunResult
m3FileWrite(const MicroOpts &opts)
{
    m3fs::FsImageSpec spec;
    spec.totalBlocks = 32768;
    spec.dirs = {"/data"};
    M3RunOpts m3opts = opts.m3;
    m3opts.fsAppendBlocks = opts.appendBlocks;
    return runMicroM3(m3opts, spec, 2, [&](Env &env) {
        // Reach the mounted session to set the allocation granularity.
        std::string rest;
        auto *sess = dynamic_cast<m3fs::M3fsSession *>(
            env.vfs().resolve("/x", rest));
        if (!sess)
            return 1;
        sess->appendBlocks = opts.appendBlocks;
        Error e = Error::None;
        auto file = env.vfs().open("/data/out", FILE_W | FILE_CREATE, e);
        if (!file)
            return 2;
        std::vector<uint8_t> buf(opts.bufSize, 0x5a);
        size_t done = 0;
        while (done < opts.fileBytes) {
            size_t chunk = std::min<size_t>(buf.size(),
                                            opts.fileBytes - done);
            if (file->write(buf.data(), chunk) !=
                static_cast<ssize_t>(chunk))
                return 3;
            done += chunk;
        }
        return 0;
    });
}

RunResult
lxFileWrite(const MicroOpts &opts)
{
    size_t bytes = opts.fileBytes;
    uint32_t buf = opts.bufSize;
    return runMicroLx(opts.lx, [bytes, buf](lx::Process &p) {
        int fd = p.open("/out", 2 | 4 | 8);
        if (fd < 0)
            return 1;
        std::vector<uint8_t> b(buf, 0x5a);
        size_t done = 0;
        while (done < bytes) {
            size_t chunk = std::min<size_t>(b.size(), bytes - done);
            if (p.write(fd, b.data(), chunk) !=
                static_cast<ssize_t>(chunk))
                return 2;
            done += chunk;
        }
        p.close(fd);
        return 0;
    });
}

RunResult
m3PipeXfer(const MicroOpts &opts)
{
    size_t bytes = opts.fileBytes;
    uint32_t buf = opts.bufSize;
    return runMicroM3(opts.m3, {}, 3, [&](Env &env) {
        Pipe pipe(env, /*creatorWrites=*/false);
        VPE child(env, "writer");
        if (child.err() != Error::None)
            return 1;
        if (pipe.delegateTo(child) != Error::None)
            return 2;
        child.run([bytes, buf] {
            Env &cenv = Env::cur();
            auto out = pipePeer(cenv, /*peerWrites=*/true);
            std::vector<uint8_t> b(buf, 0x77);
            size_t done = 0;
            while (done < bytes) {
                size_t chunk = std::min<size_t>(b.size(), bytes - done);
                if (out->write(b.data(), chunk) !=
                    static_cast<ssize_t>(chunk))
                    return 1;
                done += chunk;
            }
            return 0;
        });
        auto in = pipe.host();
        std::vector<uint8_t> b(buf);
        size_t got = 0;
        for (;;) {
            ssize_t n = in->read(b.data(), b.size());
            if (n < 0)
                return 3;
            if (n == 0)
                break;
            got += static_cast<size_t>(n);
        }
        if (child.wait() != 0)
            return 4;
        return got == bytes ? 0 : 5;
    });
}

RunResult
lxPipeXfer(const MicroOpts &opts)
{
    size_t bytes = opts.fileBytes;
    uint32_t buf = opts.bufSize;
    return runMicroLx(opts.lx, [bytes, buf](lx::Process &p) {
        int fds[2];
        if (p.pipe(fds) != Error::None)
            return 1;
        int child = p.fork([fds, bytes, buf](lx::Process &c) {
            c.close(fds[0]);
            std::vector<uint8_t> b(buf, 0x77);
            size_t done = 0;
            while (done < bytes) {
                size_t chunk = std::min<size_t>(b.size(), bytes - done);
                if (c.write(fds[1], b.data(), chunk) !=
                    static_cast<ssize_t>(chunk))
                    return 1;
                done += chunk;
            }
            c.close(fds[1]);
            return 0;
        });
        p.close(fds[1]);
        std::vector<uint8_t> b(buf);
        size_t got = 0;
        for (;;) {
            ssize_t n = p.read(fds[0], b.data(), b.size());
            if (n < 0)
                return 2;
            if (n == 0)
                break;
            got += static_cast<size_t>(n);
        }
        p.close(fds[0]);
        if (p.waitpid(child) != 0)
            return 3;
        return got == bytes ? 0 : 4;
    });
}

} // namespace workloads
} // namespace m3
