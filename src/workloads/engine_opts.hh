/**
 * @file
 * Host-engine knobs shared by every bench front end: `--threads=N` and
 * `--shards=K` flags with `M3_THREADS` / `M3_SHARDS` environment
 * fallbacks (flag wins over env, env over the default).
 *
 * `threads` is pure host parallelism — it never changes the simulated
 * machine. `shards` partitions the engine along kernel domains and the
 * engine requires shards == numKernels, so apply() engages sharding only
 * on runs whose kernel count matches the requested partition; all other
 * runs stay on the serial (S=1) engine. Fault-injection and
 * migration/multiplex configurations are incompatible with sharding and
 * keep S=1 regardless.
 */

#ifndef M3_WORKLOADS_ENGINE_OPTS_HH
#define M3_WORKLOADS_ENGINE_OPTS_HH

#include <cstdlib>
#include <string>

#include "workloads/runners.hh"

namespace m3
{
namespace workloads
{

struct EngineArgs
{
    uint32_t threads = 1;
    uint32_t shards = 0;  //!< 0 = never shard

    /** Read M3_THREADS / M3_SHARDS (call before parsing flags). */
    void
    loadEnv()
    {
        if (const char *e = std::getenv("M3_THREADS"))
            threads = parseCount(e, threads);
        if (const char *e = std::getenv("M3_SHARDS"))
            shards = parseCount(e, shards);
    }

    /** Consume `--threads=N` / `--shards=K`. @return true if @p arg was ours. */
    bool
    parse(const std::string &arg)
    {
        if (arg.rfind("--threads=", 0) == 0) {
            threads = parseCount(arg.c_str() + 10, 1);
            return true;
        }
        if (arg.rfind("--shards=", 0) == 0) {
            shards = parseCount(arg.c_str() + 9, 0);
            return true;
        }
        return false;
    }

    /** Apply to one M3 run (see the file comment for the shard rule). */
    void
    apply(M3RunOpts &opts) const
    {
        opts.threads = threads ? threads : 1;
        if (shards > 1 && shards == opts.numKernels)
            opts.shards = shards;
    }

  private:
    static uint32_t
    parseCount(const char *s, uint32_t fallback)
    {
        char *end = nullptr;
        unsigned long v = std::strtoul(s, &end, 10);
        return (end != s && *end == '\0') ? static_cast<uint32_t>(v)
                                          : fallback;
    }
};

} // namespace workloads
} // namespace m3

#endif // M3_WORKLOADS_ENGINE_OPTS_HH
