#include "workloads/apps.hh"

#include <complex>
#include <cstring>

#include "accel/fft.hh"
#include "base/random.hh"
#include "libm3/pipe.hh"
#include "libm3/programs.hh"
#include "libm3/vfs.hh"
#include "libm3/vpe.hh"
#include "m3fs/client.hh"

namespace m3
{
namespace workloads
{

// ---------------------------------------------------------------------
// cat+tr.
// ---------------------------------------------------------------------

FsSetup
catTrSetup(const CatTrParams &p)
{
    FsSetup s;
    s.dirs = {p.root + "/in", p.root + "/out"};
    s.files.push_back({p.root + "/in/input", p.fileBytes, 4242});
    if (!p.root.empty())
        s.dirs.insert(s.dirs.begin(), p.root);
    return s;
}

namespace
{

/** The tr step: substitute 'a' with 'b', charging per-byte cost. */
template <typename ChargeFn>
void
trBytes(uint8_t *buf, size_t n, double perByte, ChargeFn charge)
{
    for (size_t i = 0; i < n; ++i)
        if (buf[i] == 'a')
            buf[i] = 'b';
    charge(static_cast<Cycles>(static_cast<double>(n) * perByte));
}

} // anonymous namespace

int
catTrM3(Env &env, const CatTrParams &p)
{
    // Parent = tr (reads the pipe); child = cat (writes the file into
    // the pipe).
    Pipe pipe(env, /*creatorWrites=*/false);
    VPE child(env, "cat");
    if (child.err() != Error::None)
        return 1;
    if (pipe.delegateTo(child) != Error::None)
        return 2;
    // Pass the mount to the child (clone inherits the filesystem).
    std::string rest;
    auto *fs = dynamic_cast<m3fs::M3fsSession *>(
        env.vfs().resolve("/x", rest));
    if (!fs || fs->delegateTo(child) != Error::None)
        return 2;

    uint32_t bufSize = p.bufSize;
    std::string inPath = p.root + "/in/input";
    Error runErr = child.run([bufSize, inPath] {
        Env &cenv = Env::cur();
        if (m3fs::M3fsSession::bindMount(cenv, "/") != Error::None)
            return 1;
        Error e = Error::None;
        auto in = cenv.vfs().open(inPath, FILE_R, e);
        if (!in)
            return 2;
        auto out = pipePeer(cenv, /*peerWrites=*/true);
        std::vector<uint8_t> buf(bufSize);
        for (;;) {
            ssize_t n = in->read(buf.data(), buf.size());
            if (n < 0)
                return 3;
            if (n == 0)
                break;
            if (out->write(buf.data(), static_cast<size_t>(n)) != n)
                return 4;
        }
        return 0;
    });
    if (runErr != Error::None)
        return 3;

    Error e = Error::None;
    auto out = env.vfs().open(p.root + "/out/result",
                              FILE_W | FILE_CREATE, e);
    if (!out)
        return 4;
    auto in = pipe.host();
    std::vector<uint8_t> buf(p.bufSize);
    const double perByte = env.cm.compute.trPerByte;
    for (;;) {
        ssize_t n = in->read(buf.data(), buf.size());
        if (n < 0)
            return 5;
        if (n == 0)
            break;
        trBytes(buf.data(), static_cast<size_t>(n), perByte,
                [&](Cycles c) {
                    env.fiber.computeAs(Category::App, c);
                });
        if (out->write(buf.data(), static_cast<size_t>(n)) != n)
            return 6;
    }
    return child.wait() == 0 ? 0 : 7;
}

int
catTrLx(lx::Process &proc, const CatTrParams &p)
{
    int fds[2];
    if (proc.pipe(fds) != Error::None)
        return 1;

    uint32_t bufSize = p.bufSize;
    std::string inPath = p.root + "/in/input";
    int child = proc.fork([fds, bufSize, inPath](lx::Process &c) {
        c.close(fds[0]);  // the child only writes into the pipe
        int in = c.open(inPath, 1 /*R*/);
        if (in < 0)
            return 1;
        std::vector<uint8_t> buf(bufSize);
        for (;;) {
            ssize_t n = c.read(in, buf.data(), buf.size());
            if (n < 0)
                return 2;
            if (n == 0)
                break;
            if (c.write(fds[1], buf.data(), static_cast<size_t>(n)) != n)
                return 3;
        }
        c.close(in);
        c.close(fds[1]);
        return 0;
    });
    proc.close(fds[1]);

    int out = proc.open(p.root + "/out/result", 2 | 4 /*W|CREATE*/);
    if (out < 0)
        return 2;
    std::vector<uint8_t> buf(p.bufSize);
    const double perByte =
        proc.machine().config().compute.trPerByte;
    for (;;) {
        ssize_t n = proc.read(fds[0], buf.data(), buf.size());
        if (n < 0)
            return 3;
        if (n == 0)
            break;
        trBytes(buf.data(), static_cast<size_t>(n), perByte,
                [&](Cycles c) { proc.compute(c); });
        if (proc.write(out, buf.data(), static_cast<size_t>(n)) != n)
            return 4;
    }
    proc.close(out);
    proc.close(fds[0]);
    return proc.waitpid(child) == 0 ? 0 : 5;
}

// ---------------------------------------------------------------------
// The FFT filter chain (Sec. 5.8).
// ---------------------------------------------------------------------

FsSetup
fftSetup(const FftParams &p)
{
    FsSetup s;
    s.dirs = {"/bin", "/out"};
    // The FFT executable the parent execs onto the chosen PE.
    s.files.push_back({p.binary, 24 * KiB, 777});
    return s;
}

namespace
{

/** The child: read chunks from the pipe, transform, write to a file. */
int
fftChildMain(const FftParams p)
{
    Env &env = Env::cur();
    if (m3fs::M3fsSession::bindMount(env, "/") != Error::None)
        return 1;
    Error e = Error::None;
    auto out = env.vfs().open(p.output, FILE_W | FILE_CREATE, e);
    if (!out)
        return 2;
    auto in = pipePeer(env, /*peerWrites=*/false);

    const bool onAccel =
        env.pe().desc().type == PeType::Accelerator &&
        env.pe().desc().attr == accel::FFT_ATTR;
    const size_t points = p.chunkBytes / sizeof(std::complex<float>);
    std::vector<std::complex<float>> chunk(points);

    for (;;) {
        ssize_t n = in->read(chunk.data(), p.chunkBytes);
        if (n < 0)
            return 3;
        if (n == 0)
            break;
        size_t got = static_cast<size_t>(n) /
                     sizeof(std::complex<float>);
        // Pad to a power of two if the tail chunk is short.
        size_t fftN = 1;
        while (fftN < got)
            fftN <<= 1;
        std::fill(chunk.begin() + got, chunk.begin() + fftN,
                  std::complex<float>(0, 0));
        accel::fft(chunk.data(), fftN);
        env.fiber.computeAs(Category::App,
                            accel::fftCost(fftN, env.cm.compute,
                                           onAccel));
        if (out->write(chunk.data(),
                       fftN * sizeof(std::complex<float>)) < 0)
            return 4;
    }
    return 0;
}

/** Deterministic random input samples. */
std::vector<std::complex<float>>
fftInput(size_t bytes)
{
    Random rng(31337);
    std::vector<std::complex<float>> data(bytes /
                                          sizeof(std::complex<float>));
    for (auto &c : data)
        c = {static_cast<float>(rng.nextDouble() * 2 - 1),
             static_cast<float>(rng.nextDouble() * 2 - 1)};
    return data;
}

} // anonymous namespace

void
registerFftProgram(const FftParams &p)
{
    Programs::reg(p.binary, [p] { return fftChildMain(p); });
}

int
fftChainM3(Env &env, const FftParams &p)
{
    // The parent code is identical for the software and the accelerator
    // version; only the requested PE type differs (Sec. 5.8).
    VPE child(env, "fft",
              p.useAccel ? kif::PeTypeReq::Accelerator
                         : kif::PeTypeReq::General,
              p.useAccel ? accel::FFT_ATTR : "");
    if (child.err() != Error::None)
        return 1;
    Pipe pipe(env, /*creatorWrites=*/true);
    if (pipe.delegateTo(child) != Error::None)
        return 2;
    // exec passes the mounts along as well (Sec. 4.5.5).
    std::string rest;
    auto *fs = dynamic_cast<m3fs::M3fsSession *>(
        env.vfs().resolve("/x", rest));
    if (!fs || fs->delegateTo(child) != Error::None)
        return 2;
    if (child.exec(p.binary) != Error::None)
        return 3;

    // Generate random numbers and stream them into the pipe.
    auto data = fftInput(p.dataBytes);
    {
        auto out = pipe.host();
        const uint8_t *bytes =
            reinterpret_cast<const uint8_t *>(data.data());
        size_t total = data.size() * sizeof(std::complex<float>);
        size_t sent = 0;
        while (sent < total) {
            size_t chunk = std::min(p.chunkBytes, total - sent);
            if (out->write(bytes + sent, chunk) !=
                static_cast<ssize_t>(chunk))
                return 4;
            sent += chunk;
        }
    }  // EOF on destruction
    return child.wait() == 0 ? 0 : 5;
}

int
fftChainLx(lx::Process &proc, const FftParams &p)
{
    int fds[2];
    if (proc.pipe(fds) != Error::None)
        return 1;

    FftParams params = p;
    int child = proc.fork(
        [fds, params](lx::Process &c) {
            c.close(fds[1]);  // the child only reads from the pipe
            int out = c.open(params.output, 2 | 4);
            if (out < 0)
                return 1;
            const size_t points =
                params.chunkBytes / sizeof(std::complex<float>);
            std::vector<std::complex<float>> chunk(points);
            for (;;) {
                ssize_t n = c.read(fds[0], chunk.data(),
                                   params.chunkBytes);
                if (n < 0)
                    return 2;
                if (n == 0)
                    break;
                size_t got = static_cast<size_t>(n) /
                             sizeof(std::complex<float>);
                size_t fftN = 1;
                while (fftN < got)
                    fftN <<= 1;
                std::fill(chunk.begin() + got, chunk.begin() + fftN,
                          std::complex<float>(0, 0));
                accel::fft(chunk.data(), fftN);
                c.compute(accel::fftCost(
                    fftN, c.machine().config().compute, false));
                c.write(out, chunk.data(),
                        fftN * sizeof(std::complex<float>));
            }
            c.close(out);
            c.close(fds[0]);
            return 0;
        },
        /*withExec=*/true);
    proc.close(fds[0]);

    auto data = fftInput(p.dataBytes);
    const uint8_t *bytes = reinterpret_cast<const uint8_t *>(data.data());
    size_t total = data.size() * sizeof(std::complex<float>);
    size_t sent = 0;
    while (sent < total) {
        size_t chunk = std::min(p.chunkBytes, total - sent);
        if (proc.write(fds[1], bytes + sent, chunk) !=
            static_cast<ssize_t>(chunk))
            return 2;
        sent += chunk;
    }
    proc.close(fds[1]);
    return proc.waitpid(child) == 0 ? 0 : 3;
}

} // namespace workloads
} // namespace m3
