/**
 * @file
 * Open-loop serving workload: a Poisson traffic generator firing
 * echo/KV-style requests from many client VPEs at one "rpc" service —
 * the seed of the ROADMAP's latency-SLO serving scenario, and the
 * reference driver for the request-tracing layer (src/trace/reqtrace):
 * every request is tagged at generation, its spans are stitched across
 * libm3, DTU, NoC, kernel and service, and the run ends with a per-class
 * p50/p99/p999 SLO report plus a sustainability verdict.
 *
 * Open-loop means arrival times are drawn up front (exponential gaps,
 * deterministic splitmix-seeded), independent of service progress: when
 * the service falls behind, requests queue at the client and the credit
 * system, and the latency distribution shows it — exactly what a
 * closed-loop benchmark cannot measure.
 */

#ifndef M3_WORKLOADS_OPENLOOP_HH
#define M3_WORKLOADS_OPENLOOP_HH

#include <cstdint>
#include <string>

namespace m3
{
namespace workloads
{

struct OpenLoopOpts
{
    uint32_t clients = 8;            //!< client VPEs (even=echo, odd=kv)
    uint32_t requestsPerClient = 50;
    uint64_t meanGapCycles = 20000;  //!< mean Poisson inter-arrival gap
    uint64_t seed = 1;               //!< arrival-process seed
    uint64_t serviceCycles = 2000;   //!< per-request compute at the server
    uint32_t numKernels = 1;
    uint32_t shards = 0;             //!< engaged only when == numKernels
    uint32_t threads = 1;            //!< host threads (never affects sim)
};

struct OpenLoopResult
{
    int rc = -1;             //!< 0 on success (root exit code otherwise)
    uint64_t wallCycles = 0; //!< simulated end-to-end cycles
    uint64_t completed = 0;  //!< requests completed (ReqTrace on) or sent
    uint64_t events = 0;     //!< engine events executed
    double hostSeconds = 0;  //!< host time of the simulate phase
    /**
     * The SLO report (JSON, schema 1): run parameters, offered vs.
     * achieved throughput, a max-sustainable-throughput verdict, and the
     * per-class latency quantiles + decomposition from ReqTrace. Only
     * composed when request tracing is enabled; empty otherwise. Pure
     * simulated integers — byte-identical across repeats and thread
     * counts.
     */
    std::string sloJson;
};

/** Boot the machine, run the open-loop scenario, tear down. */
OpenLoopResult runOpenLoop(const OpenLoopOpts &opts);

} // namespace workloads
} // namespace m3

#endif // M3_WORKLOADS_OPENLOOP_HH
