/**
 * @file
 * Synthetic trace generators for the Sec. 5.6 application benchmarks,
 * with the parameters the paper states: tar/untar over files between
 * 60 and 500 KiB with 1.2 MiB in total, find over a 40-item directory
 * tree, and a compute-dominated sqlite session (create table, 8 inserts,
 * a select).
 */

#ifndef M3_WORKLOADS_GENERATORS_HH
#define M3_WORKLOADS_GENERATORS_HH

#include "base/cost_model.hh"
#include "workloads/trace.hh"

namespace m3
{
namespace workloads
{

/** tar: pack /in/f* (60-500 KiB, 1.2 MiB total) into /out/archive.tar. */
Workload makeTar(const ComputeCosts &compute);

/** untar: unpack the same archive into /out. */
Workload makeUntar(const ComputeCosts &compute);

/** find: walk a directory tree of 40 items, stat every entry. */
Workload makeFind(const ComputeCosts &compute);

/** sqlite: create a table, insert 8 rows, select them (Sec. 5.6). */
Workload makeSqlite(const ComputeCosts &compute);

/** All four trace-driven workloads in the paper's order. */
std::vector<Workload> makeAllTraceWorkloads(const ComputeCosts &compute);

} // namespace workloads
} // namespace m3

#endif // M3_WORKLOADS_GENERATORS_HH
