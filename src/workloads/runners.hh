/**
 * @file
 * Benchmark runners: boot a fresh machine (M3 or the Linux baseline),
 * execute one workload, and report wall time plus the App/OS/Xfers
 * breakdown the paper's figures use.
 */

#ifndef M3_WORKLOADS_RUNNERS_HH
#define M3_WORKLOADS_RUNNERS_HH

#include <functional>

#include "base/accounting.hh"
#include "base/cost_model.hh"
#include "workloads/apps.hh"
#include "workloads/trace.hh"

namespace m3
{
namespace workloads
{

/** Outcome of one benchmark run. */
struct RunResult
{
    int rc = -1;          //!< 0 on success
    Cycles wall = 0;      //!< end-to-end cycles of the benchmark phase
    Accounting acct;      //!< App/OS/Xfers attribution
    /** Engine events executed by the whole run (boot + workload). */
    uint64_t events = 0;
    /** Host wall-clock seconds of the simulate phase (machine boot
     *  excluded). Non-deterministic; perf reporting only. */
    double hostSeconds = 0;

    Cycles app() const { return acct.total(Category::App); }
    Cycles os() const { return acct.total(Category::Os); }
    Cycles xfer() const { return acct.total(Category::Xfer); }
};

/** Extra knobs for M3 runs. */
struct M3RunOpts
{
    CostModel costs;
    uint32_t appPes = 4;
    /** m3fs instances (Sec. 7 future work; sharded by client). */
    uint32_t fsInstances = 1;
    /** Kernel instances (Sec. 7: sharding the control plane). */
    uint32_t numKernels = 1;
    uint32_t fsAppendBlocks = 256;  //!< m3fs allocation granularity
    bool fsBackgroundZero = true;
    uint32_t fsBlocksPerExtent = 0xffffffff;  //!< image fragmentation

    /**
     * Oversubscription (scalability runs only): cap the machine at this
     * many application PEs even when the instance count wants more; the
     * kernel time-multiplexes the excess VPEs. 0 = one PE per instance
     * as before. Requires a non-zero multiplexSlice when it bites.
     */
    uint32_t maxAppPes = 0;
    /** Kernel scheduling quantum for time multiplexing (0 = off). */
    Cycles multiplexSlice = 0;
    /**
     * Engine shards (parallel DES). Must equal numKernels when > 1;
     * partitions the machine along the kernel-domain boundary. The
     * simulated outcome depends only on this value, never on threads.
     */
    uint32_t shards = 1;
    /** Host worker threads driving the shards (capped at shards). */
    uint32_t threads = 1;
    /**
     * Scalability runs: start each instance's timer at VPE entry rather
     * than after its m3fs mount, so session setup — the kernel-mediated
     * phase (OpenSess, capability exchanges) — counts toward the
     * per-instance time. The multi-kernel table uses this; the classic
     * tables keep the paper's steady-state-only window.
     */
    bool timeSetup = false;

    /**
     * distfs stripes (1 = off). With N >= 2 the machine boots N m3fs
     * instances, each on its own DRAM module; every client mounts the
     * striped session and the workload's setup files are created at
     * runtime through it (striped subfiles cannot be pre-built into a
     * single image). Setup stays outside the timed window unless
     * timeSetup is set.
     */
    uint32_t distfsStripes = 1;
    /** distfs striping unit in blocks. */
    uint32_t distfsUnitBlocks = 8;
    /** distfs replication factor R (1 = unreplicated; see M3SystemCfg). */
    uint32_t distfsReplicas = 1;
    /**
     * Override the streaming I/O buffer for trace benches (bytes,
     * 0 = keep the trace's own sizes). Only sendfile-style bulk ops
     * that use the paper's default 4 KiB buffer are rescaled; header
     * reads/writes keep their sizes. Bandwidth tables use this to run
     * the same workload with larger buffers on every column.
     */
    uint32_t ioChunk = 0;
};

/** Extra knobs for Linux runs. */
struct LxRunOpts
{
    LinuxCosts costs = LinuxCosts::xtensa();
    ComputeCosts compute;
    bool cacheAlwaysHit = false;  //!< the Lx-$ bars
};

/** Replay a trace workload on a freshly booted M3 machine. */
RunResult runM3Trace(const Workload &workload, const M3RunOpts &opts = {});

/** Replay a trace workload on the Linux baseline. */
RunResult runLxTrace(const Workload &workload, const LxRunOpts &opts = {});

/** cat+tr on M3 (needs 2 PEs). */
RunResult runM3CatTr(const CatTrParams &p, const M3RunOpts &opts = {});

/** cat+tr on Linux. */
RunResult runLxCatTr(const CatTrParams &p, const LxRunOpts &opts = {});

/** The FFT chain on M3 (software or accelerator PE). */
RunResult runM3Fft(const FftParams &p, const M3RunOpts &opts = {});

/** The FFT chain on Linux (software). */
RunResult runLxFft(const FftParams &p, const LxRunOpts &opts = {});

/**
 * The Sec. 5.7 scalability experiment: @p instances instances of the
 * named workload run in parallel on one M3 machine with a single kernel
 * and a single m3fs instance; DRAM data transfers are replaced by spins
 * of equal time. @return the average per-instance wall time.
 */
struct ScalabilityResult
{
    int rc = -1;
    Cycles avgInstance = 0;
    std::vector<Cycles> instances;
    uint64_t events = 0;     //!< engine events executed by the run
    double hostSeconds = 0;  //!< host seconds of the simulate phase
    /** Application PEs the machine was actually built with. Smaller than
     *  the instance demand when maxAppPes capped it (time-multiplexed). */
    uint32_t appPes = 0;
    /** True when maxAppPes reduced the machine below one PE/instance. */
    bool capped = false;
};

ScalabilityResult runM3Scalability(const std::string &benchName,
                                   uint32_t instances,
                                   const M3RunOpts &opts = {});

} // namespace workloads
} // namespace m3

#endif // M3_WORKLOADS_RUNNERS_HH
