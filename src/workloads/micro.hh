/**
 * @file
 * The micro-benchmarks of Sec. 5.3-5.5: null system calls, file
 * read/write through m3fs vs tmpfs, pipe transfers, and the file
 * fragmentation sweep — each for M3 and for the Linux baseline.
 */

#ifndef M3_WORKLOADS_MICRO_HH
#define M3_WORKLOADS_MICRO_HH

#include "workloads/runners.hh"

namespace m3
{
namespace workloads
{

/** Parameters of the file/pipe micro-benchmarks (paper defaults). */
struct MicroOpts
{
    size_t fileBytes = 2 * MiB;   //!< Sec. 5.4: 2 MiB transfers
    uint32_t bufSize = 4096;      //!< Sec. 5.4: 4 KiB buffers
    /** Read sweep: extent length of the prepared file (Fig. 4). */
    uint32_t blocksPerExtent = 0xffffffff;
    /** Write sweep: blocks allocated at once (Fig. 4). */
    uint32_t appendBlocks = 256;
    M3RunOpts m3;
    LxRunOpts lx;
};

/** Average cycles of a null system call on M3 (Sec. 5.3). */
RunResult m3NullSyscall(uint32_t iterations = 16,
                        const M3RunOpts &opts = {});

/** Average cycles of a null system call on the baseline. */
RunResult lxNullSyscall(uint32_t iterations = 16,
                        const LxRunOpts &opts = {});

/** Read a prepared file, discarding the data (Sec. 5.4 "Read"). */
RunResult m3FileRead(const MicroOpts &opts = {});
RunResult lxFileRead(const MicroOpts &opts = {});

/** Write precomputed data into a new file (Sec. 5.4 "Write"). */
RunResult m3FileWrite(const MicroOpts &opts = {});
RunResult lxFileWrite(const MicroOpts &opts = {});

/** Transfer data between two VPEs/processes (Sec. 5.4 "Pipe"). */
RunResult m3PipeXfer(const MicroOpts &opts = {});
RunResult lxPipeXfer(const MicroOpts &opts = {});

} // namespace workloads
} // namespace m3

#endif // M3_WORKLOADS_MICRO_HH
