#include "workloads/generators.hh"

namespace m3
{
namespace workloads
{

namespace
{

/** The tar/untar member files: 60-500 KiB each, 1.2 MiB in total. */
const std::vector<size_t> tarSizes = {
    60 * KiB, 100 * KiB, 150 * KiB, 200 * KiB, 240 * KiB, 480 * KiB,
};

constexpr uint32_t TAR_HEADER = 512;

uint64_t
totalTarBytes()
{
    uint64_t total = 0;
    for (size_t s : tarSizes)
        total += TAR_HEADER + s;
    return total;
}

} // anonymous namespace

Workload
makeTar(const ComputeCosts &compute)
{
    Workload w;
    w.name = "tar";
    w.setup.dirs = {"/in", "/out"};
    for (size_t i = 0; i < tarSizes.size(); ++i)
        w.setup.files.push_back({"/in/f" + std::to_string(i),
                                 tarSizes[i], 1000 + i});

    // BusyBox tar: open the archive, then per member stat the file,
    // write the header and stream the contents (sendfile on Linux,
    // Sec. 5.6).
    Trace &t = w.trace;
    t.push_back({TraceOp::Kind::Open, "/out/archive.tar", "",
                 2 | 4 | 8 /*W|CREATE|TRUNC*/, 0});
    t.push_back({TraceOp::Kind::Readdir, "/in", "", 0, 0});
    for (size_t i = 0; i < tarSizes.size(); ++i) {
        std::string path = "/in/f" + std::to_string(i);
        t.push_back({TraceOp::Kind::Stat, path, "", 0, 0});
        t.push_back({TraceOp::Kind::Open, path, "", 1 /*R*/, 1});
        // Header construction in userspace.
        TraceOp hdrComp{TraceOp::Kind::Compute};
        hdrComp.len = static_cast<uint64_t>(
            TAR_HEADER * compute.tarHeaderPerByte);
        t.push_back(hdrComp);
        TraceOp hdr{TraceOp::Kind::Write};
        hdr.fdSlot = 0;
        hdr.len = TAR_HEADER;
        hdr.chunkSize = TAR_HEADER;
        t.push_back(hdr);
        TraceOp body{TraceOp::Kind::Sendfile};
        body.fdSlot = 0;   // archive (destination)
        body.fdSlot2 = 1;  // member (source)
        body.len = tarSizes[i];
        t.push_back(body);
        t.push_back({TraceOp::Kind::Close, "", "", 0, 1});
    }
    t.push_back({TraceOp::Kind::Close, "", "", 0, 0});
    return w;
}

Workload
makeUntar(const ComputeCosts &compute)
{
    Workload w;
    w.name = "untar";
    w.setup.dirs = {"/in", "/out"};
    w.setup.files.push_back({"/in/archive.tar", totalTarBytes(), 2000});

    Trace &t = w.trace;
    t.push_back({TraceOp::Kind::Open, "/in/archive.tar", "", 1, 0});
    uint64_t off = 0;
    for (size_t i = 0; i < tarSizes.size(); ++i) {
        // Read and parse the member header.
        TraceOp hdr{TraceOp::Kind::Read};
        hdr.fdSlot = 0;
        hdr.len = TAR_HEADER;
        hdr.chunkSize = TAR_HEADER;
        t.push_back(hdr);
        TraceOp hdrComp{TraceOp::Kind::Compute};
        hdrComp.len = static_cast<uint64_t>(
            TAR_HEADER * compute.tarHeaderPerByte);
        t.push_back(hdrComp);
        off += TAR_HEADER;

        std::string path = "/out/f" + std::to_string(i);
        t.push_back({TraceOp::Kind::Open, path, "", 2 | 4 | 8, 1});
        TraceOp body{TraceOp::Kind::Sendfile};
        body.fdSlot = 1;   // destination file
        body.fdSlot2 = 0;  // archive
        body.len = tarSizes[i];
        t.push_back(body);
        t.push_back({TraceOp::Kind::Close, "", "", 0, 1});
        off += tarSizes[i];
    }
    t.push_back({TraceOp::Kind::Close, "", "", 0, 0});
    return w;
}

Workload
makeFind(const ComputeCosts &)
{
    Workload w;
    w.name = "find";
    // A 40-item tree (Sec. 5.6): 8 directories, 32 files.
    w.setup.dirs = {"/tree"};
    std::vector<std::string> dirs = {"/tree"};
    for (int d = 0; d < 8; ++d) {
        std::string dir = "/tree/d" + std::to_string(d);
        w.setup.dirs.push_back(dir);
        dirs.push_back(dir);
    }
    int fileNo = 0;
    for (size_t d = 0; d < dirs.size() && fileNo < 32; ++d) {
        for (int i = 0; i < 4 && fileNo < 32; ++i, ++fileNo) {
            w.setup.files.push_back(
                {dirs[d] + "/file" + std::to_string(fileNo), 256,
                 3000u + static_cast<uint64_t>(fileNo)});
        }
    }

    // find: readdir each directory, stat every entry (mostly stat
    // calls, Sec. 5.6).
    Trace &t = w.trace;
    for (const std::string &dir : dirs) {
        t.push_back({TraceOp::Kind::Readdir, dir, "", 0, 0});
        t.push_back({TraceOp::Kind::Stat, dir, "", 0, 0});
    }
    for (const SetupFile &f : w.setup.files)
        t.push_back({TraceOp::Kind::Stat, f.path, "", 0, 0});
    // Per-entry matching work in userspace is tiny.
    TraceOp comp{TraceOp::Kind::Compute};
    comp.len = 40 * 60;
    t.push_back(comp);
    return w;
}

Workload
makeSqlite(const ComputeCosts &compute)
{
    Workload w;
    w.name = "sqlite";
    w.setup.dirs = {"/db"};

    Trace &t = w.trace;
    t.push_back({TraceOp::Kind::Open, "/db/test.db", "", 1 | 2 | 4, 0});

    auto statement = [&](bool writesDb) {
        // Parse + plan + execute: computation dominates (Sec. 5.6).
        TraceOp comp{TraceOp::Kind::Compute};
        comp.len = compute.sqliteStatement;
        t.push_back(comp);
        if (writesDb) {
            // Rollback journal: create, write, sync, apply, delete.
            t.push_back({TraceOp::Kind::Open, "/db/test.db-journal", "",
                         2 | 4 | 8, 1});
            TraceOp jw{TraceOp::Kind::Write};
            jw.fdSlot = 1;
            jw.len = 1024;
            jw.chunkSize = 1024;
            t.push_back(jw);
            t.push_back({TraceOp::Kind::Fsync, "", "", 0, 1});
            t.push_back({TraceOp::Kind::Close, "", "", 0, 1});
            TraceOp seek{TraceOp::Kind::Seek};
            seek.fdSlot = 0;
            seek.len = 0;
            t.push_back(seek);
            TraceOp dbw{TraceOp::Kind::Write};
            dbw.fdSlot = 0;
            dbw.len = 2 * 4096;
            t.push_back(dbw);
            t.push_back({TraceOp::Kind::Fsync, "", "", 0, 0});
            t.push_back({TraceOp::Kind::Unlink, "/db/test.db-journal",
                         "", 0, 0});
        } else {
            TraceOp seek{TraceOp::Kind::Seek};
            seek.fdSlot = 0;
            seek.len = 0;
            t.push_back(seek);
            TraceOp rd{TraceOp::Kind::Read};
            rd.fdSlot = 0;
            rd.len = 2 * 4096;
            t.push_back(rd);
        }
    };

    statement(true);  // CREATE TABLE
    for (int i = 0; i < 8; ++i)
        statement(true);  // INSERT
    statement(false);     // SELECT
    t.push_back({TraceOp::Kind::Close, "", "", 0, 0});
    return w;
}

std::vector<Workload>
makeAllTraceWorkloads(const ComputeCosts &compute)
{
    return {makeTar(compute), makeUntar(compute), makeFind(compute),
            makeSqlite(compute)};
}

} // namespace workloads
} // namespace m3
