/**
 * @file
 * Message (un)marshalling via overloaded shift operators, inspired by the
 * L4 marshalling frameworks the paper cites (Sec. 4.5.6). Both the kernel
 * and libm3 use these to build and parse DTU messages.
 *
 * Items are stored 8-byte aligned, matching the DTU's 8-byte transfer
 * granularity. Strings are stored as a 32-bit length plus bytes.
 */

#ifndef M3_BASE_MARSHAL_HH
#define M3_BASE_MARSHAL_HH

#include <cstring>
#include <string>
#include <type_traits>

#include "base/errors.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace m3
{

/** Serialises items into a caller-provided buffer. */
class Marshaller
{
  public:
    Marshaller(void *buf, size_t cap)
        : buf(static_cast<uint8_t *>(buf)), cap(cap)
    {
    }

    /** Bytes used so far. */
    size_t size() const { return pos; }

    /**
     * Treat the first @p n buffer bytes as already written. Used to
     * replay a request saved from another staging buffer.
     */
    void setSize(size_t n) { pos = n; }

    /** Number of items written (for cost accounting). */
    size_t items() const { return count; }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    Marshaller &
    operator<<(const T &value)
    {
        put(&value, sizeof(T));
        return *this;
    }

    Marshaller &
    operator<<(const std::string &s)
    {
        uint32_t len = static_cast<uint32_t>(s.size());
        put(&len, sizeof(len));
        putBytes(s.data(), s.size());
        return *this;
    }

    Marshaller &
    operator<<(const char *s)
    {
        return *this << std::string(s);
    }

  private:
    void
    put(const void *data, size_t len)
    {
        align();
        putBytes(data, len);
        ++count;
    }

    void
    putBytes(const void *data, size_t len)
    {
        if (pos + len > cap)
            panic("marshal overflow: %zu + %zu > %zu", pos, len, cap);
        std::memcpy(buf + pos, data, len);
        pos += len;
    }

    void
    align()
    {
        pos = (pos + 7) & ~size_t{7};
    }

    uint8_t *buf;
    size_t cap;
    size_t pos = 0;
    size_t count = 0;
};

/** Deserialises items from a received message. */
class Unmarshaller
{
  public:
    Unmarshaller(const void *buf, size_t len)
        : buf(static_cast<const uint8_t *>(buf)), len(len)
    {
    }

    /** Bytes remaining. */
    size_t remaining() const { return len - pos; }

    /** Number of items read (for cost accounting). */
    size_t items() const { return count; }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    Unmarshaller &
    operator>>(T &value)
    {
        align();
        get(&value, sizeof(T));
        ++count;
        return *this;
    }

    Unmarshaller &
    operator>>(std::string &s)
    {
        align();
        uint32_t slen = 0;
        get(&slen, sizeof(slen));
        ++count;
        if (pos + slen > len)
            panic("unmarshal string overflow: %u bytes at %zu/%zu", slen,
                  pos, len);
        s.assign(reinterpret_cast<const char *>(buf + pos), slen);
        pos += slen;
        return *this;
    }

    /** Pull a value out by type (convenience for expression contexts). */
    template <typename T>
    T
    pull()
    {
        T v{};
        *this >> v;
        return v;
    }

  private:
    void
    get(void *data, size_t n)
    {
        if (pos + n > len)
            panic("unmarshal overflow: %zu + %zu > %zu", pos, n, len);
        std::memcpy(data, buf + pos, n);
        pos += n;
    }

    void
    align()
    {
        pos = (pos + 7) & ~size_t{7};
    }

    const uint8_t *buf;
    size_t len;
    size_t pos = 0;
    size_t count = 0;
};

} // namespace m3

#endif // M3_BASE_MARSHAL_HH
