/**
 * @file
 * Centralised calibration constants for both simulated systems.
 *
 * Everything the simulator charges for "software time" (instruction
 * execution we do not model at instruction granularity) is defined here,
 * with the paper section each constant is calibrated against. Hardware
 * costs (DTU streaming, NoC hops, DRAM latency) are also collected here so
 * that ablation benches can sweep them.
 *
 * The anchors from the paper (Sections 5.2-5.4):
 *  - DTU transfer bandwidth: 8 bytes/cycle.
 *  - M3 null syscall: ~200 cycles total = ~30 transfer + ~170 software.
 *  - Linux null syscall: 410 cycles (Xtensa), 320 cycles (ARM).
 *  - Linux read() per 4 KiB block: ~380 enter/leave + ~400 fd lookup and
 *    security checks + ~550 page-cache operations.
 *  - M3 read per 4 KiB block: ~70 to reach the read function + ~90 to
 *    determine the location to read from.
 *  - Xtensa memcpy cannot saturate memory bandwidth (no cache-line
 *    prefetcher); ARM can.
 *  - FFT accelerator: ~30x faster than the software FFT (Fig. 7).
 */

#ifndef M3_BASE_COST_MODEL_HH
#define M3_BASE_COST_MODEL_HH

#include <cstdint>

#include "base/types.hh"

namespace m3
{

/** Hardware parameters of the simulated Tomahawk-like platform. */
struct HwCosts
{
    /** Bytes one NoC link (and the DTU) moves per cycle (Sec. 5.4). */
    uint32_t nocBytesPerCycle = 8;
    /** Latency added per router hop, in cycles. */
    Cycles nocHopLatency = 3;
    /** Fixed DRAM access latency per request, in cycles. */
    Cycles dramLatency = 20;
    /** Size of a message header the DTU prepends (Sec. 4.4.2). */
    uint32_t msgHeaderSize = 16;
    /** Cycles for the core to read or write one DTU register. */
    Cycles dtuRegAccess = 2;
};

/**
 * Software-path costs of the M3 OS stack (kernel, libm3, m3fs). These
 * parameterise the instruction-level cost of code paths that this repo
 * executes for real; the sum over the null-syscall path is calibrated to
 * the ~170 software cycles of Sec. 5.3.
 */
struct M3Costs
{
    /** Marshalling a message (shift operators into the send buffer). */
    Cycles marshal = 20;
    /** Unmarshalling a received message. */
    Cycles unmarshal = 15;
    /** Programming the DTU registers to issue one command. */
    Cycles dtuCommand = 12;
    /** Fetching a received message (poll + slot selection). */
    Cycles fetchMsg = 10;
    /** Kernel syscall dispatch: decode opcode, find handler, prolog. */
    Cycles syscallDispatch = 40;
    /** Body of the null syscall handler (permission check + reply setup). */
    Cycles nullHandler = 16;
    /** libm3 file layer: getting to the read/write function (Sec. 5.4). */
    Cycles fileOpPath = 70;
    /** libm3 file layer: locating the extent/offset to access (Sec. 5.4). */
    Cycles fileLocate = 90;
    /** libm3: checking/refreshing an endpoint binding (EP multiplexing). */
    Cycles epCheck = 8;
    /**
     * libm3, time-multiplexed PEs only: how long a blocked VPE spins for
     * a message before yielding the PE (spin-then-yield). Long enough
     * that a prompt syscall/IPC reply arrives within it — yielding for
     * those would pay a full context switch to save a few hundred
     * cycles of waiting. Sized above the loaded service reply latency:
     * a yield pays two context switches through the (single) kernel,
     * which also delays every other VPE's syscalls behind the transfer.
     */
    Cycles yieldSpin = 8000;
    /** Kernel: configure a remote endpoint (ext. request construction). */
    Cycles epConfig = 35;
    /** Kernel: capability-table operation (create/lookup/delegate node). */
    Cycles capOp = 30;
    /**
     * libm3: client-side work of one meta-data call to m3fs (VFS mount
     * resolution, argument preparation, session bookkeeping). Most of a
     * meta operation's latency is client-side: that keeps the single
     * service instance from becoming a premature bottleneck (Sec. 5.7)
     * while making an M3 stat slightly slower than Linux's well
     * optimised path (Sec. 5.6).
     */
    Cycles fsClientCall = 640;
    /** m3fs: resolve one path component in a directory. */
    Cycles fsPathComponent = 25;
    /** m3fs: inode read/update. */
    Cycles fsInodeOp = 35;
    /** m3fs: allocate or look up one extent. */
    Cycles fsExtentOp = 40;
    /** m3fs: bitmap scan to allocate a block run. */
    Cycles fsAllocRun = 80;
    /** Pipe layer: per-chunk bookkeeping on reader or writer side. */
    Cycles pipeChunk = 45;
    /** VPE clone: syscalls + setup besides the raw memory copy. */
    Cycles cloneSetup = 900;
    /** VPE exec: argument setup besides loading the binary from m3fs. */
    Cycles execSetup = 1200;
    /**
     * Kernel-side bookkeeping to suspend a VPE (run-queue update, drain
     * decision, CSA addressing) — excludes the DTU context fetch and the
     * SPM spill, which are modelled as real NoC/DTU transfers at DTU
     * bandwidth.
     */
    Cycles ctxswSave = 400;
    /** Kernel-side bookkeeping to resume a VPE (the restore mirror). */
    Cycles ctxswRestore = 400;
};

/**
 * Cost table for the Linux baseline (Sec. 5.1: Linux 3.18 on a Cadence
 * Xtensa simulator with 64 KiB I/D caches and an MMU). Two profiles are
 * provided: the Xtensa one used for all figures, and the ARM Cortex-A15
 * one used for the Sec. 5.2 cross-check.
 */
struct LinuxCosts
{
    /** Entering + leaving the kernel (mode switch, save/restore state). */
    Cycles syscallEnterLeave = 380;
    /** Rest of a null syscall (dispatch table, return path). */
    Cycles syscallNullRest = 30;
    /** read()/write(): file-pointer retrieval, security checks, prologs. */
    Cycles fdSecurity = 400;
    /** read()/write(): page-cache get/put operations per 4 KiB block. */
    Cycles pageCache = 550;
    /** Zeroing one fresh 4 KiB page before handing it to a writer. */
    Cycles pageZero = 2048;
    /** Path resolution per component (dcache hit). */
    Cycles pathComponent = 150;
    /** stat(): inode attribute copy-out (well optimised, Sec. 5.6). */
    Cycles statInode = 180;
    /** Pipe: kernel-buffer bookkeeping per chunk, excluding the copies. */
    Cycles pipePath = 350;
    /** A context switch (scheduler + address-space switch + indirect). */
    Cycles contextSwitch = 2000;
    /** fork(): copy mm structures, COW setup, scheduler insertion. */
    Cycles fork = 80000;
    /** execve(): binary load and process-image setup. */
    Cycles exec = 150000;
    /** Effective memcpy rate with cache misses, in bytes per cycle. */
    double copyBytesPerCycleMiss = 0.8;
    /** Effective memcpy rate when everything hits in cache (Lx-$). */
    double copyBytesPerCycleHit = 2.0;
    /**
     * User buffers beyond this size thrash the 64 KiB D-cache between
     * the kernel copy and the user's access; each extra byte costs
     * largeBufThrashPerByte cycles. This reproduces the measured Linux
     * sweet spot of 4 KiB buffers (Sec. 5.4).
     */
    size_t copyThrashThreshold = 4096;
    double largeBufThrashPerByte = 0.45;
    /** Directory entry scan per entry (readdir / getdents path). */
    Cycles direntScan = 60;
    /** tmpfs create/unlink/mkdir inode management. */
    Cycles inodeMgmt = 700;

    /** The Xtensa profile (default values above). */
    static LinuxCosts xtensa() { return LinuxCosts{}; }

    /** The ARM Cortex-A15 profile (Sec. 5.2). */
    static LinuxCosts
    arm()
    {
        LinuxCosts c;
        // 320-cycle null syscall on ARM.
        c.syscallEnterLeave = 295;
        c.syscallNullRest = 25;
        // The A15 prefetcher lets memcpy approach memory bandwidth.
        c.copyBytesPerCycleMiss = 6.0;
        c.copyBytesPerCycleHit = 8.0;
        return c;
    }
};

/** Compute-kernel costs shared by both systems (identical cores). */
struct ComputeCosts
{
    /** Cycles per radix-2 FFT butterfly on a general-purpose core. */
    Cycles fftButterfly = 42;
    /** Speedup factor of the FFT instruction-extension core (Sec. 5.8). */
    uint32_t fftAccelFactor = 30;
    /**
     * tr-style byte substitution, cycles per byte (load, table lookup,
     * compare, store on a scalar in-order core). Calibrated so cat+tr
     * lands at the paper's "M3 about twice as fast" (Sec. 5.6).
     */
    double trPerByte = 6.0;
    /** Checksum/archive header processing per byte (tar). */
    double tarHeaderPerByte = 0.6;
    /** sqlite: parse+plan+execute one simple statement. */
    Cycles sqliteStatement = 220000;
};

/** Aggregate of all cost tables; one instance parameterises a platform. */
struct CostModel
{
    HwCosts hw;
    M3Costs m3;
    LinuxCosts lx = LinuxCosts::xtensa();
    ComputeCosts compute;

    /**
     * Scalability-study mode (Sec. 5.7): replace DRAM data transfers
     * with a spin of the uncontended transfer time, so only the
     * software (kernel + service) limits scaling; the NoC and DRAM are
     * assumed to scale perfectly. Synchronisation messages still travel
     * over the NoC.
     */
    bool spinDataTransfers = false;
};

} // namespace m3

#endif // M3_BASE_COST_MODEL_HH
