/**
 * @file
 * Error-reporting and status-message helpers in the gem5 idiom:
 * panic() for simulator bugs, fatal() for user errors, warn()/inform()
 * for status messages. All accept printf-style format strings.
 */

#ifndef M3_BASE_LOGGING_HH
#define M3_BASE_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace m3
{

/** Verbosity levels for the tracing facility. */
enum class LogLevel
{
    Quiet,
    Info,
    Debug,
    Trace,
};

/**
 * Global logging configuration. Benches run quiet; tests and examples can
 * raise the level to watch messages flow through the NoC.
 */
class Log
{
  public:
    static LogLevel level;

    /** Returns true if messages at @p lvl should be printed. */
    static bool enabled(LogLevel lvl) { return lvl <= level; }
};

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void traceImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a string printf-style into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * panic: something happened that should never happen regardless of what
 * the user does, i.e. a bug in this simulator. Aborts.
 */
#define panic(...) ::m3::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/**
 * fatal: the simulation cannot continue due to a condition that is the
 * user's fault (bad configuration, invalid arguments). Exits with code 1.
 */
#define fatal(...) ::m3::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define warn(...) ::m3::warnImpl(__VA_ARGS__)
#define inform(...)                                                         \
    do {                                                                    \
        if (::m3::Log::enabled(::m3::LogLevel::Info))                       \
            ::m3::informImpl(__VA_ARGS__);                                  \
    } while (0)
#define logtrace(...)                                                       \
    do {                                                                    \
        if (::m3::Log::enabled(::m3::LogLevel::Trace))                      \
            ::m3::traceImpl(__VA_ARGS__);                                   \
    } while (0)

} // namespace m3

#endif // M3_BASE_LOGGING_HH
