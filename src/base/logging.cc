#include "base/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace m3
{

namespace
{

/**
 * The initial verbosity honors the M3_LOG environment variable
 * (quiet/info/debug/trace), so any harness can be made chatty without a
 * rebuild or a command-line flag. Unknown values keep the quiet default.
 */
LogLevel
initLevel()
{
    const char *env = std::getenv("M3_LOG");
    if (!env)
        return LogLevel::Quiet;
    std::string v(env);
    if (v == "info")
        return LogLevel::Info;
    if (v == "debug")
        return LogLevel::Debug;
    if (v == "trace")
        return LogLevel::Trace;
    if (v != "quiet" && !v.empty())
        std::fprintf(stderr, "warn: unknown M3_LOG level '%s', using quiet\n",
                     env);
    return LogLevel::Quiet;
}

} // anonymous namespace

LogLevel Log::level = initLevel();

namespace
{

/**
 * One emit per line, serialized: the parallel engine's workers log
 * concurrently, and while each emit is a single fprintf of a fully
 * formatted line, POSIX only promises atomicity per stdio call on the
 * same stream — a process-wide mutex guarantees lines are never torn
 * regardless of libc, and it costs nothing when logging is quiet
 * (callers check Log::level before calling into these).
 */
std::mutex &
emitLock()
{
    static std::mutex mu;
    return mu;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

} // anonymous namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lk(emitLock());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lk(emitLock());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
traceImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lk(emitLock());
    std::fprintf(stdout, "trace: %s\n", msg.c_str());
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace m3
