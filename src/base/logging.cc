#include "base/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace m3
{

LogLevel Log::level = LogLevel::Quiet;

namespace
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

} // anonymous namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
traceImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "trace: %s\n", msg.c_str());
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace m3
