#include "base/errors.hh"

namespace m3
{

const char *
errorName(Error e)
{
    switch (e) {
      case Error::None: return "None";
      case Error::NoCredits: return "NoCredits";
      case Error::InvalidEp: return "InvalidEp";
      case Error::OutOfBounds: return "OutOfBounds";
      case Error::NoPerm: return "NoPerm";
      case Error::MsgTooBig: return "MsgTooBig";
      case Error::RingFull: return "RingFull";
      case Error::DtuBusy: return "DtuBusy";
      case Error::NotPrivileged: return "NotPrivileged";
      case Error::Aborted: return "Aborted";
      case Error::InvalidArgs: return "InvalidArgs";
      case Error::NoSuchCap: return "NoSuchCap";
      case Error::CapExists: return "CapExists";
      case Error::NoFreePe: return "NoFreePe";
      case Error::NoSuchVpe: return "NoSuchVpe";
      case Error::NoSuchService: return "NoSuchService";
      case Error::ServiceDenied: return "ServiceDenied";
      case Error::NoSpace: return "NoSpace";
      case Error::NoSuchFile: return "NoSuchFile";
      case Error::FileExists: return "FileExists";
      case Error::IsDirectory: return "IsDirectory";
      case Error::IsNoDirectory: return "IsNoDirectory";
      case Error::DirNotEmpty: return "DirNotEmpty";
      case Error::EndOfFile: return "EndOfFile";
      case Error::NoSuchSession: return "NoSuchSession";
      case Error::InvalidFileHandle: return "InvalidFileHandle";
      case Error::PipeClosed: return "PipeClosed";
      case Error::Timeout: return "Timeout";
      case Error::NocFault: return "NocFault";
      case Error::PeerGone: return "PeerGone";
      case Error::VpeMoved: return "VpeMoved";
      case Error::_COUNT: break;
    }
    return "Unknown";
}

} // namespace m3
