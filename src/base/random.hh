/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The simulator must be fully deterministic (identical cycle counts on
 * every run), so all randomness flows through explicitly seeded xorshift
 * generators rather than std::random_device or global state.
 */

#ifndef M3_BASE_RANDOM_HH
#define M3_BASE_RANDOM_HH

#include <cstdint>

#include "base/logging.hh"

namespace m3
{

/**
 * xorshift64* generator: small, fast, and good enough for synthesising
 * workload data (file contents, FFT inputs, name choices).
 */
class Random
{
  public:
    explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        if (bound == 0)
            panic("Random::nextBounded with bound 0");
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    nextRange(uint64_t lo, uint64_t hi)
    {
        if (hi < lo)
            panic("Random::nextRange with hi < lo");
        return lo + nextBounded(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    uint64_t state;
};

} // namespace m3

#endif // M3_BASE_RANDOM_HH
