/**
 * @file
 * Cycle attribution for the paper's stacked-bar breakdowns.
 *
 * Figures 3, 5 and 7 split each benchmark's time into application compute,
 * OS software, and data transfers. Every fiber carries an Accounting
 * object; software charges cycles under the currently pushed category and
 * the DTU/NoC charge transfer waits under Category::Xfer.
 */

#ifndef M3_BASE_ACCOUNTING_HH
#define M3_BASE_ACCOUNTING_HH

#include <array>
#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "trace/trace.hh"

namespace m3
{

/** Where a span of cycles is attributed in the paper's breakdowns. */
enum class Category : uint8_t
{
    App,   //!< application computation (and unsupported-syscall waits)
    Os,    //!< OS software: kernel, libm3, services, Linux kernel paths
    Xfer,  //!< data transfers: DTU/NoC streaming, Linux memcpy
    Idle,  //!< waiting without attributable work (not shown in figures)
    NUM,
};

/** Human-readable name for a category (used by the bench printers). */
const char *categoryName(Category c);

/**
 * Per-actor cycle counters with a category stack. The stack lets nested
 * layers refine attribution: e.g. libm3 pushes Os, and a DTU wait inside
 * pushes Xfer on top.
 */
class Accounting
{
  public:
    Accounting() { reset(); }

    /** Zero all counters; the stack resets to a single App frame. */
    void
    reset()
    {
        counters.fill(0);
        stack.clear();
        stack.push_back(Category::App);
    }

    /** Enter @p c; all cycles charged until pop() go to it. */
    void
    push(Category c)
    {
        stack.push_back(c);
        if (M3_TRACE_ON && traceTrack != trace::NO_TRACK)
            trace::Tracer::counter(traceTrack, "category",
                                   static_cast<uint64_t>(c));
    }

    /** Leave the innermost category. */
    void
    pop()
    {
        if (stack.size() <= 1)
            panic("Accounting::pop on empty category stack");
        stack.pop_back();
        if (M3_TRACE_ON && traceTrack != trace::NO_TRACK)
            trace::Tracer::counter(traceTrack, "category",
                                   static_cast<uint64_t>(stack.back()));
    }

    /** The category cycles are currently charged to. */
    Category current() const { return stack.back(); }

    /** Charge @p cycles to the current category. */
    void
    charge(Cycles cycles)
    {
        counters[static_cast<size_t>(stack.back())] += cycles;
    }

    /** Charge @p cycles to an explicit category, ignoring the stack. */
    void
    chargeTo(Category c, Cycles cycles)
    {
        counters[static_cast<size_t>(c)] += cycles;
    }

    /** Total cycles recorded for @p c. */
    Cycles
    total(Category c) const
    {
        return counters[static_cast<size_t>(c)];
    }

    /** Sum over the non-idle categories. */
    Cycles
    totalBusy() const
    {
        return total(Category::App) + total(Category::Os) +
            total(Category::Xfer);
    }

    /** Add all counters of @p other into this one. */
    void
    merge(const Accounting &other)
    {
        for (size_t i = 0; i < counters.size(); ++i)
            counters[i] += other.counters[i];
    }

    /**
     * Trace track that receives a "category" counter event on every
     * push/pop, so Perfetto shows the attribution as a step function.
     * NO_TRACK (the default) leaves this accounting object untraced.
     */
    trace::TrackId traceTrack = trace::NO_TRACK;

  private:
    std::array<Cycles, static_cast<size_t>(Category::NUM)> counters;
    std::vector<Category> stack;
};

/**
 * RAII helper: pushes a category on construction, pops on destruction.
 * Use at the top of every OS-layer function that charges time.
 */
class ScopedCategory
{
  public:
    ScopedCategory(Accounting &acc, Category c) : acc(acc) { acc.push(c); }
    ~ScopedCategory() { acc.pop(); }

    ScopedCategory(const ScopedCategory &) = delete;
    ScopedCategory &operator=(const ScopedCategory &) = delete;

  private:
    Accounting &acc;
};

} // namespace m3

#endif // M3_BASE_ACCOUNTING_HH
