#include "base/accounting.hh"

namespace m3
{

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::App:
        return "App";
      case Category::Os:
        return "OS";
      case Category::Xfer:
        return "Xfers";
      case Category::Idle:
        return "Idle";
      default:
        return "?";
    }
}

} // namespace m3
