/**
 * @file
 * Fundamental type aliases and constants shared by every subsystem of the
 * M3 reproduction: cycle counts, identifiers for PEs / endpoints / VPEs /
 * capabilities, and the global-offset type used for DRAM addresses.
 */

#ifndef M3_BASE_TYPES_HH
#define M3_BASE_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace m3
{

/** Simulated time, measured in core clock cycles. */
using Cycles = uint64_t;

/** Identifier of a processing element (PE) within the platform. */
using peid_t = uint32_t;

/** Identifier of a DTU endpoint within one PE. */
using epid_t = uint32_t;

/** Identifier of a virtual PE (VPE), assigned by the kernel. */
using vpeid_t = uint32_t;

/** Selector of a capability within a VPE's capability table. */
using capsel_t = uint32_t;

/**
 * The label carried in every message header. Chosen by the receiver when a
 * channel is created and unforgeable by the sender (Sec. 4.4.2 of the
 * paper); typically the address of the receiver-side object.
 */
using label_t = uint64_t;

/** A global offset into the platform's DRAM. */
using goff_t = uint64_t;

/** An address within a PE-local scratchpad memory (SPM). */
using spmaddr_t = uint32_t;

/** Invalid-value sentinels. */
static constexpr peid_t INVALID_PE = std::numeric_limits<peid_t>::max();
static constexpr epid_t INVALID_EP = std::numeric_limits<epid_t>::max();
static constexpr vpeid_t INVALID_VPE = std::numeric_limits<vpeid_t>::max();
static constexpr capsel_t INVALID_SEL = std::numeric_limits<capsel_t>::max();
static constexpr goff_t INVALID_GOFF = std::numeric_limits<goff_t>::max();

/** Size constants. */
static constexpr size_t KiB = 1024;
static constexpr size_t MiB = 1024 * KiB;

/** Default number of DTU endpoints per PE (the prototype platform). */
static constexpr epid_t EP_COUNT = 8;

/** Hard ceiling on per-PE endpoints; register files are sized for it.
 *  A PE's actual count is a platform parameter (PeDesc::epCount):
 *  data-plane-heavy machines provision wider DTUs. */
static constexpr epid_t MAX_EP_COUNT = 16;

/** Size of the per-PE scratchpad for data (the simulator version). */
static constexpr size_t SPM_DATA_SIZE = 64 * KiB;

/** Size of the per-PE scratchpad for code (modelled for load costs only). */
static constexpr size_t SPM_CODE_SIZE = 64 * KiB;

} // namespace m3

#endif // M3_BASE_TYPES_HH
