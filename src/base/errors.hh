/**
 * @file
 * Error codes shared by the DTU, the kernel, libm3 and the services.
 * Modelled after the M3 prototype's Errors enumeration.
 */

#ifndef M3_BASE_ERRORS_HH
#define M3_BASE_ERRORS_HH

#include <cstdint>

namespace m3
{

enum class Error : uint32_t
{
    None = 0,
    // DTU-level errors
    NoCredits,      //!< send endpoint has no credits left
    InvalidEp,      //!< endpoint not configured for the operation
    OutOfBounds,    //!< memory access outside the endpoint's region
    NoPerm,         //!< operation not permitted (e.g. write on r/o region)
    MsgTooBig,      //!< message exceeds the target's slot size
    RingFull,       //!< no free slot in the receive ringbuffer
    DtuBusy,        //!< a command is already in flight
    NotPrivileged,  //!< config access from an unprivileged DTU
    Aborted,        //!< command aborted by a DTU reset
    // Kernel / capability errors
    InvalidArgs,
    NoSuchCap,
    CapExists,
    NoFreePe,
    NoSuchVpe,
    NoSuchService,
    ServiceDenied,
    NoSpace,
    // Filesystem errors
    NoSuchFile,
    FileExists,
    IsDirectory,
    IsNoDirectory,
    DirNotEmpty,
    EndOfFile,
    NoSuchSession,
    InvalidFileHandle,
    // Pipe errors
    PipeClosed,
    // Robustness layer
    Timeout,        //!< a deadline elapsed before the operation completed
    NocFault,       //!< message lost/corrupted on the NoC (injected fault)
    PeerGone,       //!< retry budget exhausted: the peer is presumed dead
    VpeMoved,       //!< wait interrupted: the VPE migrated to another PE

    _COUNT,         //!< number of error codes (not an error itself)
};

/** Human-readable name of an error code. */
const char *errorName(Error e);

} // namespace m3

#endif // M3_BASE_ERRORS_HH
