/**
 * @file
 * The Tomahawk-like platform: a set of PEs and one DRAM module, connected
 * by a packet-switched mesh NoC (Sec. 4.1). The platform wires the DTUs'
 * node-id resolvers and owns the global cost model.
 */

#ifndef M3_PE_PLATFORM_HH
#define M3_PE_PLATFORM_HH

#include <cmath>
#include <memory>
#include <vector>

#include "base/cost_model.hh"
#include "base/types.hh"
#include "mem/dram.hh"
#include "noc/noc.hh"
#include "pe/pe.hh"
#include "sim/fault_plan.hh"
#include "sim/simulator.hh"

namespace m3
{

/** Build-time description of a platform instance. */
struct PlatformSpec
{
    /** Descriptors of the PEs; index is the peid. */
    std::vector<PeDesc> pes;
    /** Capacity of each DRAM module. */
    size_t dramBytes = 64 * MiB;
    /** Independent DRAM modules (distfs stripes get one each). */
    uint32_t dramModules = 1;
    /** All cost/calibration parameters. */
    CostModel costs;
    /** Mesh width; 0 selects a near-square mesh automatically. */
    uint32_t meshCols = 0;

    /** Convenience: @p n general-purpose PEs. */
    static PlatformSpec
    generalPurpose(uint32_t n)
    {
        PlatformSpec s;
        s.pes.assign(n, PeDesc::general());
        return s;
    }
};

/** The assembled platform. NoC node ids: PE i -> i, DRAM m ->
 *  pes.size() + m (module 0 keeps the classic single-DRAM node id). */
class Platform
{
  public:
    Platform(Simulator &sim, PlatformSpec spec)
        : sim(sim), costModel(spec.costs),
          nodeTotal(static_cast<uint32_t>(spec.pes.size()) +
                    std::max<uint32_t>(1, spec.dramModules)),
          mesh(std::make_unique<Noc>(sim.queue(), spec.costs.hw,
                                     meshColsFor(spec),
                                     meshRowsFor(spec)))
    {
        uint32_t modules = std::max<uint32_t>(1, spec.dramModules);
        for (uint32_t m = 0; m < modules; ++m)
            dramMems.push_back(std::make_unique<Dram>(
                spec.dramBytes, spec.costs.hw.dramLatency));
        // On a sharded engine the mesh must know the shard map before
        // any PE (and thus any DTU) can inject packets.
        if (sim.shardCount() > 1)
            mesh->attachShards(sim.shards());
        for (peid_t i = 0; i < spec.pes.size(); ++i) {
            peList.push_back(std::make_unique<Pe>(sim, spec.pes[i], *mesh,
                                                  i, i, spec.costs.hw));
        }
        // Wire the DTUs: node -> peer DTU, node -> memory target. Memory
        // endpoints can address the DRAM and any PE's SPM (used for
        // application loading, Sec. 4.5.5).
        auto dtuResolver = [this](uint32_t node) -> Dtu * {
            if (node < peList.size())
                return &peList[node]->dtu();
            return nullptr;
        };
        auto memResolver = [this](uint32_t node) -> MemTarget * {
            if (node >= peList.size() && node < nodeTotal)
                return dramMems[node - peList.size()].get();
            if (node < peList.size())
                return &peList[node]->spm();
            return nullptr;
        };
        for (auto &p : peList)
            p->dtu().connect(dtuResolver, memResolver);
    }

    Simulator &simulator() { return sim; }
    const CostModel &costs() const { return costModel; }
    Noc &noc() { return *mesh; }
    Dram &dram(uint32_t module = 0) { return *dramMems.at(module); }

    uint32_t peCount() const { return static_cast<uint32_t>(peList.size()); }
    Pe &pe(peid_t id) { return *peList.at(id); }

    /** NoC node of PE @p id (identity mapping by construction). */
    uint32_t nocIdOf(peid_t id) const { return id; }

    /** NoC node of DRAM module @p module. */
    uint32_t
    dramNode(uint32_t module = 0) const
    {
        return static_cast<uint32_t>(peList.size()) + module;
    }

    /** Number of independent DRAM modules. */
    uint32_t
    dramModules() const
    {
        return static_cast<uint32_t>(dramMems.size());
    }

    /** True if NoC node @p node is one of the DRAM modules. */
    bool
    isDramNode(uint32_t node) const
    {
        return node >= peList.size() && node < nodeTotal;
    }

    /**
     * Wire a fault plan into the NoC and every DTU, and schedule the
     * plan's PE kills. Must be called before the simulation starts.
     */
    void
    setFaultPlan(FaultPlan &plan)
    {
        mesh->setFaultPlan(&plan);
        for (auto &p : peList)
            p->dtu().setFaultPlan(&plan);
        for (const PeKill &k : plan.config().killPes) {
            if (k.node >= peList.size())
                panic("fault plan kills node %u which is not a PE",
                      k.node);
            peid_t pe = k.node;
            FaultPlan *fp = &plan;
            sim.queue().scheduleAbs(k.cycle, [this, pe, fp] {
                fp->notePeKill(sim.curCycle(), pe);
                if (M3_TRACE_ON)
                    trace::Tracer::instant(pe, "fault:pekill");
                if (M3_METRICS_ON) {
                    static trace::Counter &fi =
                        trace::Metrics::counter("faults_injected");
                    fi.inc();
                }
                peList[pe]->killCore();
            });
        }
    }

  private:
    static uint32_t
    meshColsFor(const PlatformSpec &spec)
    {
        uint32_t nodes = static_cast<uint32_t>(spec.pes.size()) +
                         std::max<uint32_t>(1, spec.dramModules);
        if (spec.meshCols)
            return spec.meshCols;
        return static_cast<uint32_t>(
            std::ceil(std::sqrt(static_cast<double>(nodes))));
    }

    static uint32_t
    meshRowsFor(const PlatformSpec &spec)
    {
        uint32_t nodes = static_cast<uint32_t>(spec.pes.size()) +
                         std::max<uint32_t>(1, spec.dramModules);
        uint32_t c = meshColsFor(spec);
        return (nodes + c - 1) / c;
    }

    Simulator &sim;
    CostModel costModel;
    uint32_t nodeTotal;
    std::unique_ptr<Noc> mesh;
    std::vector<std::unique_ptr<Dram>> dramMems;
    std::vector<std::unique_ptr<Pe>> peList;
};

} // namespace m3

#endif // M3_PE_PLATFORM_HH
