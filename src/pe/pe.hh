/**
 * @file
 * A processing element: core + local scratchpad + DTU (the paper's
 * definition of "PE", Sec. 2.2). The core itself is not modelled at
 * instruction level; PE software is a C++ functor run on a fiber, and
 * its instruction cost is charged through the fiber's compute().
 */

#ifndef M3_PE_PE_HH
#define M3_PE_PE_HH

#include <functional>
#include <memory>
#include <string>

#include "base/cost_model.hh"
#include "base/types.hh"
#include "dtu/dtu.hh"
#include "mem/spm.hh"
#include "noc/noc.hh"
#include "pe/pe_desc.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace m3
{

/**
 * One PE of the platform. Programs are installed as functors and started
 * when the DTU receives a start command (or directly, for boot).
 */
class Pe
{
  public:
    using Program = std::function<void()>;

    Pe(Simulator &sim, const PeDesc &desc, Noc &noc, peid_t id,
       uint32_t nocId, const HwCosts &hw)
        : sim(sim), peDesc(desc), peId(id),
          spmMem(std::make_unique<Spm>(desc.spmDataSize)),
          dtuUnit(std::make_unique<Dtu>(sim.queue(), noc, *spmMem, nocId,
                                        hw))
    {
        dtuUnit->setStartHook([this] { startProgram(); });
    }

    peid_t id() const { return peId; }
    const PeDesc &desc() const { return peDesc; }
    Spm &spm() { return *spmMem; }
    Dtu &dtu() { return *dtuUnit; }

    /**
     * Install the program that runs when this PE is started. On the real
     * platform the binary has been copied into the SPM beforehand (the
     * copy cost is modelled by the actual DTU transfers that the loader
     * performs); here the functor carries the behaviour.
     */
    void
    installProgram(std::string name, Program body)
    {
        pendingName = std::move(name);
        pendingBody = std::move(body);
    }

    /** Start the installed program on a fresh fiber. */
    Fiber *
    startProgram()
    {
        if (!pendingBody)
            panic("PE%u started without an installed program", peId);
        Program body = std::move(pendingBody);
        pendingBody = nullptr;
        fiber = &sim.run("pe" + std::to_string(peId) + ":" + pendingName,
                         std::move(body));
        if (M3_TRACE_ON) {
            // Software spans and category counters of this program land
            // on the PE's track, labelled with the program name.
            fiber->accounting().traceTrack = peId;
            trace::Tracer::trackName(peId, "pe" + std::to_string(peId) +
                                               ":" + pendingName);
        }
        return fiber;
    }

    /** The fiber of the currently/last running program (or nullptr). */
    Fiber *programFiber() { return fiber; }

    /**
     * Fault injection: the core dies mid-run. Only the core stops; the
     * DTU keeps operating, so the kernel can still reset and reclaim
     * the PE through the NoC (the paper's point, Sec. 3).
     */
    void
    killCore()
    {
        if (fiber && !fiber->finished())
            fiber->kill();
    }

    /** True if a program is installed or still running. */
    bool
    busy() const
    {
        return pendingBody != nullptr || (fiber && !fiber->finished());
    }

    /** Mark the PE free again (after the kernel reclaimed it). */
    void
    release()
    {
        fiber = nullptr;
        pendingBody = nullptr;
        spmMem->resetAlloc();
    }

  private:
    Simulator &sim;
    PeDesc peDesc;
    peid_t peId;
    std::unique_ptr<Spm> spmMem;
    std::unique_ptr<Dtu> dtuUnit;

    std::string pendingName;
    Program pendingBody;
    Fiber *fiber = nullptr;
};

} // namespace m3

#endif // M3_PE_PE_HH
