/**
 * @file
 * A processing element: core + local scratchpad + DTU (the paper's
 * definition of "PE", Sec. 2.2). The core itself is not modelled at
 * instruction level; PE software is a C++ functor run on a fiber, and
 * its instruction cost is charged through the fiber's compute().
 */

#ifndef M3_PE_PE_HH
#define M3_PE_PE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "base/cost_model.hh"
#include "base/types.hh"
#include "dtu/dtu.hh"
#include "mem/spm.hh"
#include "noc/noc.hh"
#include "pe/pe_desc.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace m3
{

/**
 * One PE of the platform. Programs are installed as functors and started
 * when the DTU receives a start command (or directly, for boot).
 */
class Pe
{
  public:
    using Program = std::function<void()>;

    Pe(Simulator &sim, const PeDesc &desc, Noc &noc, peid_t id,
       uint32_t nocId, const HwCosts &hw)
        : sim(sim), peDesc(desc), peId(id),
          homeEq(sim.queueForNode(nocId)),
          spmMem(std::make_unique<Spm>(desc.spmDataSize)),
          dtuUnit(std::make_unique<Dtu>(homeEq, noc, *spmMem, nocId, hw,
                                        desc.epCount))
    {
        dtuUnit->setStartHook([this] { startProgram(); });
        dtuUnit->setStartVpeHook([this](uint64_t v) { startProgramFor(v); });
    }

    peid_t id() const { return peId; }
    const PeDesc &desc() const { return peDesc; }
    Spm &spm() { return *spmMem; }
    Dtu &dtu() { return *dtuUnit; }

    /**
     * Install the program that runs when this PE is started. On the real
     * platform the binary has been copied into the SPM beforehand (the
     * copy cost is modelled by the actual DTU transfers that the loader
     * performs); here the functor carries the behaviour.
     */
    void
    installProgram(std::string name, Program body)
    {
        pendingName = std::move(name);
        pendingBody = std::move(body);
    }

    /** Start the installed program on a fresh fiber. */
    Fiber *
    startProgram()
    {
        if (!pendingBody)
            panic("PE%u started without an installed program", peId);
        Program body = std::move(pendingBody);
        pendingBody = nullptr;
        // The program fiber is homed on this PE's engine shard, so its
        // wakeups and compute events run where the PE's DTU lives.
        fiber = &sim.runOn(homeEq,
                           "pe" + std::to_string(peId) + ":" + pendingName,
                           std::move(body));
        if (M3_TRACE_ON) {
            // Software spans and category counters of this program land
            // on the PE's track, labelled with the program name.
            fiber->accounting().traceTrack = peId;
            trace::Tracer::trackName(peId, "pe" + std::to_string(peId) +
                                               ":" + pendingName);
        }
        return fiber;
    }

    /** The fiber of the currently/last running program (or nullptr). */
    Fiber *programFiber() { return fiber; }

    /**
     * Install a program under a VPE identity. Unlike installProgram, any
     * number of these can be pending at once (co-scheduled children whose
     * parents loaded them before either started); the kernel's
     * VPE-qualified start command picks the right one.
     */
    void
    installProgramFor(uint64_t vpeId, std::string name, Program body)
    {
        pendingPrograms[vpeId] = {std::move(name), std::move(body)};
    }

    /** Start the program installed for @p vpeId on a fresh fiber. */
    Fiber *
    startProgramFor(uint64_t vpeId)
    {
        auto it = pendingPrograms.find(vpeId);
        if (it == pendingPrograms.end()) {
            // Boot-style installation: fall back to the unqualified slot.
            return startProgram();
        }
        if (fiber && !fiber->finished())
            panic("PE%u: VPE start while another program is resident",
                  peId);
        if (retainPrograms) {
            // Failover support: keep a copy of the entry functor so the
            // kernel can restart this VPE from scratch on another PE if
            // this one dies (the "binary" survives in DRAM; here the
            // functor stands in for it).
            retainedPrograms[vpeId] = it->second;
        }
        std::string name = std::move(it->second.first);
        Program body = std::move(it->second.second);
        pendingPrograms.erase(it);
        fiber = &sim.runOn(homeEq, "pe" + std::to_string(peId) + ":" + name,
                           std::move(body));
        if (M3_TRACE_ON) {
            fiber->accounting().traceTrack = peId;
            trace::Tracer::trackName(peId, "pe" + std::to_string(peId) +
                                               ":" + name);
        }
        return fiber;
    }

    // -------------------------------------------------------------------
    // Time multiplexing: more than one VPE can live on this PE. Exactly
    // one is resident (its fiber is `fiber`); the others are parked —
    // their fibers exist but never run until the kernel resumes them.
    // -------------------------------------------------------------------

    /**
     * Park the resident program under @p vpeId: the kernel descheduled
     * that VPE. The PE is afterwards free to start another program.
     */
    void
    parkResident(uint64_t vpeId)
    {
        if (!fiber)
            panic("PE%u: parkResident without a resident program", peId);
        fiber->park();
        // The SPM bump cursor is per-VPE state (the co-resident resets
        // it for its own layout); it travels with the parked fiber.
        parkedFibers[vpeId] = {fiber, spmMem->allocated()};
        fiber = nullptr;
    }

    /** True if @p vpeId has a parked fiber on this PE. */
    bool
    hasParked(uint64_t vpeId) const
    {
        return parkedFibers.count(vpeId) != 0;
    }

    /**
     * Resume the parked VPE @p vpeId: its fiber becomes the resident one
     * and receives any dispatch deferred while parked, plus a spurious
     * wakeup so it re-checks DTU state.
     */
    void
    resumeParked(uint64_t vpeId)
    {
        auto it = parkedFibers.find(vpeId);
        if (it == parkedFibers.end())
            panic("PE%u: resume of unknown VPE %llu", peId,
                  (unsigned long long)vpeId);
        if (fiber && !fiber->finished())
            panic("PE%u: resume while another program is resident", peId);
        fiber = it->second.fiber;
        spmMem->restoreAlloc(it->second.spmAllocMark);
        parkedFibers.erase(it);
        fiber->unpark();
    }

    /**
     * Drop a parked VPE's fiber (the VPE exited or was reclaimed while
     * descheduled). The fiber is killed: its stack is not unwound, like
     * a core that stops fetching.
     */
    void
    dropParked(uint64_t vpeId)
    {
        auto it = parkedFibers.find(vpeId);
        if (it == parkedFibers.end())
            return;
        it->second.fiber->kill();
        parkedFibers.erase(it);
    }

    /** Number of parked VPEs on this PE. */
    size_t parkedCount() const { return parkedFibers.size(); }

    // -------------------------------------------------------------------
    // Migration and failover: a VPE's software moves to another PE. The
    // fiber (the running stack) migrates with it — in reality the
    // instructions live in the spilled SPM image; here the fiber stands
    // in for them.
    // -------------------------------------------------------------------

    /**
     * Hook fired whenever a VPE's software is adopted by this PE from
     * another one: (fiber, vpeId, newPe). fiber is the migrated parked
     * fiber, or nullptr when only the retained entry functor moved
     * (failover restart — the old fiber died with its core).
     */
    void
    setVpeMovedHook(std::function<void(Fiber *, uint64_t, peid_t)> hook)
    {
        movedHook = std::move(hook);
    }

    /**
     * Live migration: take over @p vpeId's parked fiber (and any
     * installed-but-unstarted or retained program) from @p src. The SPM
     * allocation cursor travels with it; the kernel separately ships the
     * SPM contents and the DTU context.
     */
    void
    adoptParkedFrom(Pe &src, uint64_t vpeId)
    {
        auto it = src.parkedFibers.find(vpeId);
        if (it == src.parkedFibers.end())
            panic("PE%u: adopt of VPE %llu which is not parked on PE%u",
                  peId, (unsigned long long)vpeId, src.peId);
        parkedFibers[vpeId] = it->second;
        src.parkedFibers.erase(it);
        moveAuxState(src, vpeId);
        if (movedHook)
            movedHook(parkedFibers[vpeId].fiber, vpeId, peId);
    }

    /**
     * Migration of a VPE that was placed but never started (no parked
     * fiber yet): move its installed program over so the VPE-qualified
     * start command finds it here.
     */
    void
    adoptInstalledFrom(Pe &src, uint64_t vpeId)
    {
        moveAuxState(src, vpeId);
        if (movedHook)
            movedHook(nullptr, vpeId, peId);
    }

    /**
     * Failover: take over @p vpeId's retained entry functor from @p src
     * (whose core died, killing the fiber). The functor is re-installed
     * here as a pending program; the kernel restarts it with a fresh
     * context via the VPE-qualified start command.
     */
    void
    adoptRetained(Pe &src, uint64_t vpeId)
    {
        auto it = src.retainedPrograms.find(vpeId);
        if (it == src.retainedPrograms.end())
            panic("PE%u: failover of VPE %llu with no retained program "
                  "on PE%u", peId, (unsigned long long)vpeId, src.peId);
        pendingPrograms[vpeId] = it->second;
        src.retainedPrograms.erase(it);
        if (movedHook)
            movedHook(nullptr, vpeId, peId);
    }

    /** True if @p vpeId's entry functor was retained for failover. */
    bool
    hasRetained(uint64_t vpeId) const
    {
        return retainedPrograms.count(vpeId) != 0;
    }

    /** Forget @p vpeId's retained functor (the VPE exited for good). */
    void dropRetained(uint64_t vpeId) { retainedPrograms.erase(vpeId); }

    /** Retain entry functors of started VPEs (failover mode). */
    void setRetainPrograms(bool on) { retainPrograms = on; }

    /**
     * Fault injection: the core dies mid-run. Only the core stops; the
     * DTU keeps operating, so the kernel can still reset and reclaim
     * the PE through the NoC (the paper's point, Sec. 3).
     */
    void
    killCore()
    {
        coreDead = true;
        if (fiber && !fiber->finished())
            fiber->kill();
        // A dead core takes every VPE living on it down, parked or not.
        for (auto &[vpe, parked] : parkedFibers)
            parked.fiber->kill();
    }

    /**
     * True while the core is dead. The DTU keeps operating either way —
     * that is what lets the kernel distinguish "PE died" (failover) from
     * "VPE misbehaved" (reclaim) and still clean up through the NoC.
     */
    bool coreKilled() const { return coreDead; }

    /** True if a program is installed or still running. */
    bool
    busy() const
    {
        return pendingBody != nullptr || !pendingPrograms.empty() ||
               (fiber && !fiber->finished());
    }

    /** Mark the PE free again (after the kernel reclaimed it). */
    void
    release()
    {
        fiber = nullptr;
        pendingBody = nullptr;
        // A reclaimed-and-released PE counts as repaired: the kernel only
        // reuses it deliberately, and the watchdog's dead-vs-misbehaved
        // classification must start fresh for the next tenant.
        coreDead = false;
        if (parkedFibers.empty()) {
            pendingPrograms.clear();
            retainedPrograms.clear();
            spmMem->resetAlloc();
        }
    }

  private:
    /** Shared part of adoption: move per-VPE program state from @p src. */
    void
    moveAuxState(Pe &src, uint64_t vpeId)
    {
        auto pp = src.pendingPrograms.find(vpeId);
        if (pp != src.pendingPrograms.end()) {
            pendingPrograms[vpeId] = std::move(pp->second);
            src.pendingPrograms.erase(pp);
        }
        auto rp = src.retainedPrograms.find(vpeId);
        if (rp != src.retainedPrograms.end()) {
            retainedPrograms[vpeId] = std::move(rp->second);
            src.retainedPrograms.erase(rp);
        }
    }

    Simulator &sim;
    PeDesc peDesc;
    peid_t peId;
    EventQueue &homeEq; //!< the engine shard that owns this PE's events
    std::unique_ptr<Spm> spmMem;
    std::unique_ptr<Dtu> dtuUnit;

    std::string pendingName;
    Program pendingBody;
    /** Per-VPE installed-but-not-started programs (multiplexed PEs). */
    std::map<uint64_t, std::pair<std::string, Program>> pendingPrograms;
    Fiber *fiber = nullptr;
    /** A descheduled VPE: its fiber (owned by Simulator) plus the SPM
     *  allocation cursor it left behind. */
    struct Parked
    {
        Fiber *fiber = nullptr;
        size_t spmAllocMark = 0;
    };
    /** Descheduled VPEs, keyed by VPE id. */
    std::map<uint64_t, Parked> parkedFibers;
    /** Entry functors of started VPEs, kept for failover restarts. */
    std::map<uint64_t, std::pair<std::string, Program>> retainedPrograms;
    bool retainPrograms = false;
    bool coreDead = false;
    std::function<void(Fiber *, uint64_t, peid_t)> movedHook;
};

} // namespace m3

#endif // M3_PE_PE_HH
