/**
 * @file
 * Static description of a processing element: its type and attributes.
 * The kernel allocates PEs to VPEs by matching against these descriptors
 * (applications "can request a specific type of PE", Sec. 4.5.5).
 */

#ifndef M3_PE_PE_DESC_HH
#define M3_PE_PE_DESC_HH

#include <string>

#include "base/types.hh"

namespace m3
{

/** Broad classes of PEs on the platform. */
enum class PeType : uint8_t
{
    /** A general-purpose core (the Xtensa-like default). */
    General,
    /** A core with domain-specific instruction extensions (Sec. 5.8). */
    Accelerator,
};

/** Descriptor of one PE. */
struct PeDesc
{
    PeType type = PeType::General;
    /** Free-form attribute matched on allocation, e.g. "fft". */
    std::string attr;
    /** DTU endpoints on this PE (<= MAX_EP_COUNT). Data-plane-heavy
     *  PEs (e.g. distfs clients with many concurrent gates) provision
     *  wider DTUs; the default matches the prototype platform. */
    epid_t epCount = EP_COUNT;
    /** Data scratchpad capacity. */
    size_t spmDataSize = SPM_DATA_SIZE;
    /** Code scratchpad capacity (used for load-cost modelling). */
    size_t spmCodeSize = SPM_CODE_SIZE;

    static PeDesc
    general()
    {
        return PeDesc{};
    }

    static PeDesc
    accel(std::string attr)
    {
        PeDesc d;
        d.type = PeType::Accelerator;
        d.attr = std::move(attr);
        return d;
    }

    bool
    matches(PeType wantedType, const std::string &wantedAttr) const
    {
        if (type != wantedType)
            return false;
        return wantedAttr.empty() || attr == wantedAttr;
    }
};

} // namespace m3

#endif // M3_PE_PE_DESC_HH
