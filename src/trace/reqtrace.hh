/**
 * @file
 * Causal request tracing: a ReqCtx (request id + span id + class) that
 * rides along DTU messages as *host-side shadow state* — zero simulated
 * cycles, zero bytes of simulated payload — and is propagated
 * automatically through libm3 gate sends/replies, kernel syscall
 * handling, the inter-kernel protocol and service (m3fs) ops.
 *
 * The propagation rules (DESIGN.md §13):
 *   - a fiber adopts the context of every message it fetches (fetchMsg),
 *     and keeps it until the next fetch;
 *   - every DTU send issued while a fiber carries a context opens a new
 *     span of that request (one span per request/reply round trip);
 *   - a DTU reply closes the span stored in the ring slot's shadow, so
 *     deferred replies (the kernel's continuation-style syscalls) close
 *     the right span no matter which context the replier runs under.
 *
 * Each span records five causally ordered timestamps (send, arrive,
 * fetch, reply-send, reply-arrive) from which the per-request latency
 * decomposition is folded:
 *   queue        client-side queueing (arrival to first send attempt)
 *   credit_stall cycles spent waiting for send credits
 *   noc          wire time, both directions, over all spans
 *   server_queue message sat in the server ring before being fetched
 *   service      fetch to reply-send at the server, over all spans
 *   total        request generation to client-side completion
 *
 * Exports: Chrome-trace slices + flow arrows on per-node request tracks
 * (reqTrack(n), emitted through the Tracer so they merge into the same
 * JSON document), per-class log2 histograms into the metric registry
 * (req.<class>.*), and an exact per-class SLO summary (p50/p99/p999)
 * from retained per-request totals (sloJson()).
 *
 * Like the other two sinks in this library the subsystem is always
 * compiled, gated by one predicted-untaken branch (M3_REQTRACE_ON), and
 * purely observational: enabling it cannot move a simulated cycle.
 * Standard C++ only — this library sits below everything else.
 */

#ifndef M3_TRACE_REQTRACE_HH
#define M3_TRACE_REQTRACE_HH

#include <cstdint>
#include <string>

#include "trace/trace.hh"

namespace m3
{
namespace trace
{

/**
 * The request context carried on messages: one packed word so it rides
 * in existing closure captures without pushing them out of SmallFn's
 * inline storage. 0 means "no context".
 *
 * Layout: [63..56] class id, [55..16] request id, [15..0] span id.
 * Request ids are caller-assigned and must be non-zero and unique for
 * the run (the open-loop driver uses client*2^20 + seq + 1), so context
 * words stay deterministic on a sharded engine — no global allocation
 * order is involved.
 */
using ReqCtx = uint64_t;

constexpr ReqCtx
reqCtxMake(uint32_t cls, uint64_t reqId, uint32_t spanId)
{
    return (static_cast<uint64_t>(cls & 0xff) << 56) |
           ((reqId & 0xffffffffffull) << 16) | (spanId & 0xffff);
}

constexpr uint32_t reqCtxClass(ReqCtx c) { return c >> 56; }
constexpr uint64_t reqCtxId(ReqCtx c) { return (c >> 16) & 0xffffffffffull; }
constexpr uint32_t reqCtxSpan(ReqCtx c) { return c & 0xffff; }

/**
 * The request-tracing sink. Static members like Tracer/Metrics: at most
 * one machine traces requests at a time and the hot-path guard must be
 * one load+branch.
 */
class ReqTrace
{
  public:
    /** The one flag every carry/record site branches on. */
    static bool on;

    static void enable() { on = true; }
    static void disable() { on = false; }

    /** Drop all requests, spans and class aggregates (classes stay
     *  registered: their names are interned for the process lifetime). */
    static void reset();

    /**
     * Parallel mode: serialize sink mutation behind a mutex so engine
     * shards may record concurrently. The exported bytes do not depend
     * on thread interleaving: requests are keyed by caller-assigned id,
     * per-request updates are causally ordered, and class aggregates
     * are commutative folds.
     */
    static void setParallel(bool enabled);

    /**
     * Intern a request class (e.g. "echo", "kv") and return its id.
     * Register classes before traffic starts, in a deterministic order;
     * the returned id is the registration index. Re-registering a name
     * returns the existing id.
     */
    static uint32_t registerClass(const std::string &name);

    // --- request lifecycle (driver-side; call only when `on`) ----------

    /**
     * Begin request @p reqId of class @p cls, generated (arrival time of
     * the open-loop source, not first send) at @p genCycle. Returns the
     * root context to install on the issuing fiber.
     */
    static ReqCtx begin(uint32_t cls, uint64_t reqId, uint64_t genCycle);

    /** Client-side queueing delay (generation to first send attempt). */
    static void noteQueued(ReqCtx ctx, uint64_t cycles);

    /** Cycles the client stalled waiting for send credits. */
    static void noteCreditStall(ReqCtx ctx, uint64_t cycles);

    /**
     * The request completed at @p cycle (client consumed the reply).
     * Folds the latency decomposition into the class aggregate (and the
     * req.<class>.* metric histograms when metrics are on) and emits
     * the client-side request slice onto the request track.
     */
    static void end(ReqCtx ctx, uint64_t cycle);

    // --- DTU carry hooks (called from the message path) ----------------

    /**
     * A message was sent at @p cycle from node @p srcNode while the
     * sender carried @p parent: opens a new span of the request and
     * returns the context to ship with the message.
     */
    static ReqCtx msgSent(ReqCtx parent, uint64_t cycle, uint32_t srcNode);

    /** The message (or its reply, @p reply) arrived at @p dstNode. */
    static void msgArrived(ReqCtx ctx, uint64_t cycle, uint32_t dstNode,
                           bool reply);

    /** The receiver fetched the message out of its ring. */
    static void msgFetched(ReqCtx ctx, uint64_t cycle);

    /** The receiver replied at @p cycle from node @p node: closes the
     *  span's service interval and emits the server slice. */
    static void replySent(ReqCtx ctx, uint64_t cycle, uint32_t node);

    // --- introspection / export ---------------------------------------

    /** Requests begun since enable()/reset(). */
    static uint64_t requestCount();
    /** Requests completed (end() called). */
    static uint64_t completedCount();
    /** Spans opened across all requests. */
    static uint64_t spanCount();
    /** Total credit-stall cycles folded so far (tests). */
    static uint64_t creditStallCycles();

    /** Earliest generation cycle over all requests (0 if none). */
    static uint64_t firstGenCycle();
    /** Latest generation cycle over all requests. */
    static uint64_t lastGenCycle();
    /** Latest completion cycle over all requests. */
    static uint64_t lastEndCycle();

    /**
     * Per-class SLO summary as one JSON object keyed by class name:
     * exact count, p50/p99/p999/max/mean total latency (nearest-rank
     * over retained per-request totals) and the mean latency
     * decomposition. Deterministic: pure integers, classes in
     * registration order.
     */
    static std::string sloJson();
};

} // namespace trace
} // namespace m3

/** The hot-path guard for request-tracing carry/record sites. */
#define M3_REQTRACE_ON (__builtin_expect(::m3::trace::ReqTrace::on, 0))

#endif // M3_TRACE_REQTRACE_HH
