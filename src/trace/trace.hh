/**
 * @file
 * Cycle-accurate event tracing with Chrome trace-event JSON export.
 *
 * The tracer records typed events (span begin/end, complete slices,
 * instants, counters, flow arrows) into per-track ring buffers keyed by
 * the simulated cycle, and exports them in the Chrome trace-event format
 * that chrome://tracing and Perfetto load directly. Tracks follow a
 * fixed id convention: software on PE n traces on track n, the DTU of
 * node n on DTU_TRACK_BASE + n, and the NoC attachment point of node n
 * on NOC_TRACK_BASE + n, so spans from different layers of the same PE
 * never have to nest across layers.
 *
 * The subsystem is always compiled and zero-cost when off: every
 * instrumentation site is guarded by the M3_TRACE_ON macro, which is a
 * single predicted-untaken branch on one global flag. Tracing is purely
 * observational — it never schedules events or advances the clock — so
 * enabling it cannot move a single simulated cycle.
 *
 * This library sits below base/ (accounting hooks into it), so it must
 * not depend on any other m3 library: plain C++ standard library only.
 */

#ifndef M3_TRACE_TRACE_HH
#define M3_TRACE_TRACE_HH

#include <cstdint>
#include <string>

namespace m3
{
namespace trace
{

/** Identifier of one export track (a "thread" in the Chrome format). */
using TrackId = uint32_t;

/** Marker for "this object is not bound to any track". */
constexpr TrackId NO_TRACK = ~TrackId(0);

/** Track id of the DTU attached to NoC node @p node. */
constexpr TrackId
dtuTrack(uint32_t node)
{
    return 0x1000 + node;
}

/** Track id of the NoC attachment point of node @p node. */
constexpr TrackId
nocTrack(uint32_t node)
{
    return 0x2000 + node;
}

/** Track id of request-level spans/flows touching node @p node. */
constexpr TrackId
reqTrack(uint32_t node)
{
    return 0x3000 + node;
}

/**
 * The global trace sink. All members are static: the simulator is
 * single-threaded and harnesses trace at most one machine at a time, so
 * a process-wide sink keeps the hot-path guard down to one load+branch.
 */
class Tracer
{
  public:
    /** The one flag every instrumentation site branches on. */
    static bool on;

    /** Reads the simulated cycle of the machine being traced. */
    using ClockFn = uint64_t (*)(const void *ctx);

    /**
     * Enable tracing. @p ringCapacity is the per-track ring buffer size
     * in events; when a ring is full the oldest event is overwritten
     * (and counted in droppedEvents()).
     */
    static void enable(uint32_t ringCapacity = 1u << 16);
    static void disable();

    /** Drop all recorded events and track names; keep the enable state. */
    static void reset();

    /**
     * Parallel mode: serialize sink mutation behind a mutex so shards of
     * a parallel engine may record concurrently. Off by default (the
     * serial engine pays no lock). The export is byte-identical either
     * way: each track is only ever written by the shard that owns it, so
     * per-track event order — the only order the exporter depends on —
     * does not depend on thread interleaving.
     */
    static void setParallel(bool on);

    /**
     * Wire the simulated clock. Every machine (M3System) registers its
     * event queue here on construction; events recorded without a clock
     * carry cycle 0.
     */
    static void setClock(ClockFn fn, const void *ctx);
    /** Unregister the clock, but only if @p ctx is still the owner. */
    static void clearClock(const void *ctx);

    /** Current simulated cycle as seen by the tracer (0 if no clock). */
    static uint64_t nowCycle();

    /** Name a track (exported as the Chrome thread name; last wins). */
    static void trackName(TrackId t, const std::string &name);

    // --- event recording (call only when `on`; names must be string
    // --- literals or otherwise outlive the sink) ----------------------

    /** Open a span on @p t at the current cycle (phase B). */
    static void spanBegin(TrackId t, const char *name);
    /** Close the innermost span on @p t (phase E). */
    static void spanEnd(TrackId t);
    /** A complete slice [ts, ts+dur] on @p t (phase X). */
    static void complete(TrackId t, uint64_t ts, uint64_t dur,
                         const char *name);
    /** An instantaneous event at the current cycle (phase i). */
    static void instant(TrackId t, const char *name);
    /** A counter sample at the current cycle (phase C). */
    static void counter(TrackId t, const char *name, uint64_t value);
    /** Flow arrow start at @p ts (phase s); @p id pairs it with the end. */
    static void flowBegin(TrackId t, uint64_t ts, uint64_t id,
                          const char *name);
    /** Flow arrow end at @p ts (phase f, binding point "enclosing"). */
    static void flowEnd(TrackId t, uint64_t ts, uint64_t id,
                        const char *name);

    /** A fresh flow id (reset() restarts the sequence: determinism). */
    static uint64_t nextFlowId();

    // --- introspection / export ---------------------------------------

    /** Total events currently buffered across all tracks. */
    static uint64_t eventCount();
    /** Events lost to ring-buffer overwrite since enable()/reset(). */
    static uint64_t droppedEvents();

    /**
     * Export everything as one Chrome trace-event JSON document. The
     * output is a pure function of the recorded events: two identical
     * seeded runs produce byte-identical JSON.
     */
    static std::string toJson();

    /** Write toJson() to @p path. @return false on I/O failure. */
    static bool writeJson(const std::string &path);
};

/**
 * RAII span for functions with multiple exits. Latches the enable flag
 * at construction so a toggle mid-span cannot unbalance B/E events.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TrackId track, const char *name)
        : track(track), active(__builtin_expect(Tracer::on, 0))
    {
        if (active)
            Tracer::spanBegin(track, name);
    }
    ~ScopedSpan()
    {
        if (active)
            Tracer::spanEnd(track);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TrackId track;
    bool active;
};

} // namespace trace
} // namespace m3

/**
 * The hot-path guard: expands to a single predicted-untaken branch. Use
 * as `if (M3_TRACE_ON) Tracer::spanBegin(...)`.
 */
#define M3_TRACE_ON (__builtin_expect(::m3::trace::Tracer::on, 0))

#endif // M3_TRACE_TRACE_HH
