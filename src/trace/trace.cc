#include "trace/trace.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

namespace m3
{
namespace trace
{

bool Tracer::on = false;

namespace
{

/**
 * One buffered event. Names are borrowed pointers (string literals at
 * every call site); `arg` multiplexes the per-phase payload: duration
 * for 'X', counter value for 'C', flow id for 's'/'f'.
 */
struct Event
{
    uint64_t ts;
    uint64_t arg;
    const char *name;
    char phase;
};

/** Per-track ring buffer. Overwrites the oldest event when full. */
struct Track
{
    std::string name;
    std::vector<Event> ring;
    uint32_t head = 0;      //!< next write position
    uint32_t count = 0;     //!< valid events (<= capacity)
    uint64_t dropped = 0;   //!< overwritten events

    void
    push(const Event &e, uint32_t capacity)
    {
        if (ring.empty())
            ring.resize(capacity);
        if (count == ring.size())
            dropped++;
        else
            count++;
        ring[head] = e;
        head = (head + 1) % static_cast<uint32_t>(ring.size());
    }

    /** Events in insertion order (oldest first). */
    std::vector<Event>
    ordered() const
    {
        std::vector<Event> out;
        out.reserve(count);
        uint32_t cap = static_cast<uint32_t>(ring.size());
        uint32_t start = (head + cap - count) % (cap ? cap : 1);
        for (uint32_t i = 0; i < count; ++i)
            out.push_back(ring[(start + i) % cap]);
        return out;
    }
};

struct Sink
{
    /** Ordered map: export iterates tracks in ascending id order. */
    std::map<TrackId, Track> tracks;
    uint32_t ringCapacity = 1u << 16;
    uint64_t nextFlow = 1;
    Tracer::ClockFn clockFn = nullptr;
    const void *clockCtx = nullptr;
    /** Parallel-engine mode: guard sink mutation with `mu`. */
    bool parallel = false;
    std::mutex mu;
};

Sink &
sink()
{
    static Sink s;
    return s;
}

/** Lock the sink only in parallel mode (serial tracing stays lock-free). */
struct SinkGuard
{
    explicit SinkGuard(Sink &s)
    {
        if (s.parallel) {
            s.mu.lock();
            locked = &s.mu;
        }
    }
    ~SinkGuard()
    {
        if (locked)
            locked->unlock();
    }
    std::mutex *locked = nullptr;
};

void
record(TrackId t, char phase, uint64_t ts, uint64_t arg, const char *name)
{
    Sink &s = sink();
    SinkGuard g(s);
    s.tracks[t].push(Event{ts, arg, name, phase}, s.ringCapacity);
}

/** Minimal JSON string escaping (names contain no exotic characters). */
void
appendEscaped(std::string &out, const std::string &in)
{
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
}

} // anonymous namespace

void
Tracer::enable(uint32_t ringCapacity)
{
    sink().ringCapacity = ringCapacity ? ringCapacity : 1;
    on = true;
}

void
Tracer::disable()
{
    on = false;
}

void
Tracer::reset()
{
    Sink &s = sink();
    SinkGuard g(s);
    s.tracks.clear();
    s.nextFlow = 1;
}

void
Tracer::setParallel(bool enabled)
{
    sink().parallel = enabled;
}

void
Tracer::setClock(ClockFn fn, const void *ctx)
{
    sink().clockFn = fn;
    sink().clockCtx = ctx;
}

void
Tracer::clearClock(const void *ctx)
{
    Sink &s = sink();
    if (s.clockCtx == ctx) {
        s.clockFn = nullptr;
        s.clockCtx = nullptr;
    }
}

uint64_t
Tracer::nowCycle()
{
    Sink &s = sink();
    return s.clockFn ? s.clockFn(s.clockCtx) : 0;
}

void
Tracer::trackName(TrackId t, const std::string &name)
{
    Sink &s = sink();
    SinkGuard g(s);
    s.tracks[t].name = name;
}

void
Tracer::spanBegin(TrackId t, const char *name)
{
    record(t, 'B', nowCycle(), 0, name);
}

void
Tracer::spanEnd(TrackId t)
{
    record(t, 'E', nowCycle(), 0, "");
}

void
Tracer::complete(TrackId t, uint64_t ts, uint64_t dur, const char *name)
{
    record(t, 'X', ts, dur, name);
}

void
Tracer::instant(TrackId t, const char *name)
{
    record(t, 'i', nowCycle(), 0, name);
}

void
Tracer::counter(TrackId t, const char *name, uint64_t value)
{
    record(t, 'C', nowCycle(), value, name);
}

void
Tracer::flowBegin(TrackId t, uint64_t ts, uint64_t id, const char *name)
{
    record(t, 's', ts, id, name);
}

void
Tracer::flowEnd(TrackId t, uint64_t ts, uint64_t id, const char *name)
{
    record(t, 'f', ts, id, name);
}

uint64_t
Tracer::nextFlowId()
{
    // Only the serial engine draws from this global sequence; a sharded
    // NoC derives flow ids from per-shard counters instead (noc.cc).
    Sink &s = sink();
    SinkGuard g(s);
    return s.nextFlow++;
}

uint64_t
Tracer::eventCount()
{
    uint64_t n = 0;
    for (const auto &[id, t] : sink().tracks)
        n += t.count;
    return n;
}

uint64_t
Tracer::droppedEvents()
{
    uint64_t n = 0;
    for (const auto &[id, t] : sink().tracks)
        n += t.dropped;
    return n;
}

std::string
Tracer::toJson()
{
    std::string out;
    out.reserve(1u << 20);
    out += "{\"traceEvents\":[\n";
    bool first = true;
    char buf[256];
    auto emit = [&](const char *line) {
        if (!first)
            out += ",\n";
        first = false;
        out += line;
    };
    for (const auto &[id, track] : sink().tracks) {
        if (!track.name.empty()) {
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"M\",\"name\":\"thread_name\","
                          "\"pid\":0,\"tid\":%u,\"args\":{\"name\":\"",
                          id);
            std::string line = buf;
            appendEscaped(line, track.name);
            line += "\"}}";
            emit(line.c_str());
        }
        std::vector<Event> evs = track.ordered();
        // The ring preserves insertion order but events may carry a
        // future timestamp (NoC arrivals); a stable sort by ts keeps
        // same-cycle events in deterministic insertion order.
        std::stable_sort(evs.begin(), evs.end(),
                         [](const Event &a, const Event &b) {
                             return a.ts < b.ts;
                         });
        for (const Event &e : evs) {
            unsigned long long ts = e.ts;
            switch (e.phase) {
              case 'B':
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"B\",\"name\":\"%s\",\"cat\":"
                              "\"sim\",\"ts\":%llu,\"pid\":0,\"tid\":%u}",
                              e.name, ts, id);
                break;
              case 'E':
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"E\",\"ts\":%llu,\"pid\":0,"
                              "\"tid\":%u}",
                              ts, id);
                break;
              case 'X':
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":"
                              "\"sim\",\"ts\":%llu,\"dur\":%llu,"
                              "\"pid\":0,\"tid\":%u}",
                              e.name, ts,
                              static_cast<unsigned long long>(e.arg), id);
                break;
              case 'i':
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"i\",\"name\":\"%s\",\"s\":\"t\","
                              "\"ts\":%llu,\"pid\":0,\"tid\":%u}",
                              e.name, ts, id);
                break;
              case 'C':
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"C\",\"name\":\"%s\",\"ts\":%llu,"
                              "\"pid\":0,\"tid\":%u,\"args\":{\"value\":"
                              "%llu}}",
                              e.name, ts, id,
                              static_cast<unsigned long long>(e.arg));
                break;
              case 's':
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"s\",\"name\":\"%s\",\"cat\":"
                              "\"noc\",\"id\":\"0x%llx\",\"ts\":%llu,"
                              "\"pid\":0,\"tid\":%u}",
                              e.name,
                              static_cast<unsigned long long>(e.arg), ts,
                              id);
                break;
              case 'f':
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"%s\","
                              "\"cat\":\"noc\",\"id\":\"0x%llx\",\"ts\":"
                              "%llu,\"pid\":0,\"tid\":%u}",
                              e.name,
                              static_cast<unsigned long long>(e.arg), ts,
                              id);
                break;
              default:
                continue;
            }
            emit(buf);
        }
    }
    out += "\n],\"displayTimeUnit\":\"ns\"}\n";
    return out;
}

bool
Tracer::writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return written == json.size();
}

} // namespace trace
} // namespace m3
