/**
 * @file
 * A process-wide metric registry: counters, gauges and log2-bucket
 * histograms, dumped as structured JSON.
 *
 * Two usage styles coexist. Hot paths record live through handles
 * guarded by M3_METRICS_ON (one predicted-untaken branch when off);
 * subsystems that already keep a stats struct (SimStats, DtuStats,
 * NocStats, KernelStats, FaultStats) are folded in at end of run by
 * M3System::exportMetrics(), so all harnesses report them uniformly.
 *
 * Registered metric objects are never deallocated while the process
 * lives — reset() zeroes values but keeps every entry — so hot paths
 * may cache `static Counter &` references safely.
 *
 * Like the tracer, this library sits below base/ and depends only on
 * the C++ standard library.
 */

#ifndef M3_TRACE_METRICS_HH
#define M3_TRACE_METRICS_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>

namespace m3
{
namespace trace
{

/** A monotonically increasing count. */
struct Counter
{
    uint64_t value = 0;

    void add(uint64_t n) { value += n; }
    void inc() { value++; }
};

/** A point-in-time value (last write wins; setMax keeps the peak). */
struct Gauge
{
    uint64_t value = 0;

    void set(uint64_t v) { value = v; }
    void setMax(uint64_t v) { value = std::max(value, v); }
};

/**
 * A histogram with logarithmic buckets: bucket i counts observations
 * whose bit width is i, i.e. values in [2^(i-1), 2^i); bucket 0 counts
 * zeros. 65 buckets cover the whole uint64 range with no configuration.
 */
struct Histogram
{
    static constexpr uint32_t BUCKETS = 65;

    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t minVal = ~uint64_t(0);
    uint64_t maxVal = 0;
    uint64_t buckets[BUCKETS] = {};

    void
    observe(uint64_t v)
    {
        count++;
        sum += v;
        minVal = std::min(minVal, v);
        maxVal = std::max(maxVal, v);
        buckets[std::bit_width(v)]++;
    }
};

/** The global registry. Static members, same rationale as Tracer. */
class Metrics
{
  public:
    /** The one flag every live instrumentation site branches on. */
    static bool on;

    static void enable() { on = true; }
    static void disable() { on = false; }

    /** Zero all values; keep every registered entry alive (see above). */
    static void reset();

    /** Look up or create; the reference stays valid for the process. */
    static Counter &counter(const std::string &name);
    static Gauge &gauge(const std::string &name);
    static Histogram &histogram(const std::string &name);

    /**
     * Dump all metrics as one JSON object, keys sorted alphabetically:
     * {"schema":1, "counters":{..}, "gauges":{..}, "histograms":{..}}.
     */
    static std::string toJson();

    /** Write toJson() to @p path. @return false on I/O failure. */
    static bool writeJson(const std::string &path);
};

} // namespace trace
} // namespace m3

/** The hot-path guard for live metric recording. */
#define M3_METRICS_ON (__builtin_expect(::m3::trace::Metrics::on, 0))

#endif // M3_TRACE_METRICS_HH
