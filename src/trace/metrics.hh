/**
 * @file
 * A process-wide metric registry: counters, gauges and log2-bucket
 * histograms, dumped as structured JSON.
 *
 * Two usage styles coexist. Hot paths record live through handles
 * guarded by M3_METRICS_ON (one predicted-untaken branch when off);
 * subsystems that already keep a stats struct (SimStats, DtuStats,
 * NocStats, KernelStats, FaultStats) are folded in at end of run by
 * M3System::exportMetrics(), so all harnesses report them uniformly.
 *
 * Registered metric objects are never deallocated while the process
 * lives — reset() zeroes values but keeps every entry — so hot paths
 * may cache `static Counter &` references safely.
 *
 * Like the tracer, this library sits below base/ and depends only on
 * the C++ standard library.
 */

#ifndef M3_TRACE_METRICS_HH
#define M3_TRACE_METRICS_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace m3
{
namespace trace
{

/**
 * Metric cells are relaxed atomics so shards of the parallel engine can
 * record concurrently. Relaxed is enough: cells are independent counters
 * whose totals are pure sums/extrema of a deterministic observation set,
 * and every read that matters happens after the engine joined its
 * workers. Plain reads (`c.value`, `h.count`) keep compiling through the
 * implicit conversion; on x86 a relaxed add is the same instruction a
 * plain add was, so the serial engine pays nothing.
 */

/** A monotonically increasing count. */
struct Counter
{
    std::atomic<uint64_t> value{0};

    void add(uint64_t n) { value.fetch_add(n, std::memory_order_relaxed); }
    void inc() { value.fetch_add(1, std::memory_order_relaxed); }
};

/** A point-in-time value (last write wins; setMax keeps the peak). */
struct Gauge
{
    std::atomic<uint64_t> value{0};

    void set(uint64_t v) { value.store(v, std::memory_order_relaxed); }

    void
    setMax(uint64_t v)
    {
        uint64_t cur = value.load(std::memory_order_relaxed);
        while (cur < v && !value.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }
};

/**
 * A histogram with logarithmic buckets: bucket i counts observations
 * whose bit width is i, i.e. values in [2^(i-1), 2^i); bucket 0 counts
 * zeros. 65 buckets cover the whole uint64 range with no configuration.
 */
struct Histogram
{
    static constexpr uint32_t BUCKETS = 65;

    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> minVal{~uint64_t(0)};
    std::atomic<uint64_t> maxVal{0};
    std::atomic<uint64_t> buckets[BUCKETS] = {};

    void
    observe(uint64_t v)
    {
        count.fetch_add(1, std::memory_order_relaxed);
        sum.fetch_add(v, std::memory_order_relaxed);
        uint64_t cur = minVal.load(std::memory_order_relaxed);
        while (v < cur && !minVal.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
        cur = maxVal.load(std::memory_order_relaxed);
        while (v > cur && !maxVal.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
        buckets[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    }
};

/** The global registry. Static members, same rationale as Tracer. */
class Metrics
{
  public:
    /** The one flag every live instrumentation site branches on. */
    static bool on;

    static void enable() { on = true; }
    static void disable() { on = false; }

    /** Zero all values; keep every registered entry alive (see above). */
    static void reset();

    /** Look up or create; the reference stays valid for the process. */
    static Counter &counter(const std::string &name);
    static Gauge &gauge(const std::string &name);
    static Histogram &histogram(const std::string &name);

    /**
     * Dump all metrics as one JSON object, keys sorted alphabetically:
     * {"schema":1, "counters":{..}, "gauges":{..}, "histograms":{..}}.
     */
    static std::string toJson();

    /** Write toJson() to @p path. @return false on I/O failure. */
    static bool writeJson(const std::string &path);
};

} // namespace trace
} // namespace m3

/** The hot-path guard for live metric recording. */
#define M3_METRICS_ON (__builtin_expect(::m3::trace::Metrics::on, 0))

#endif // M3_TRACE_METRICS_HH
