#include "trace/reqtrace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "trace/metrics.hh"

namespace m3
{
namespace trace
{

bool ReqTrace::on = false;

namespace
{

/** One request/reply round trip. All timestamps 0 until observed. */
struct Span
{
    uint64_t send = 0;
    uint64_t arrive = 0;
    uint64_t fetch = 0;
    uint64_t replySend = 0;
    uint64_t replyArrive = 0;
    uint32_t srcNode = 0;
    uint32_t dstNode = 0;
};

/** One in-flight request: decomposition accumulators + its spans. */
struct Req
{
    uint32_t cls = 0;
    uint64_t gen = 0;
    uint64_t queued = 0;
    uint64_t creditStall = 0;
    uint64_t noc = 0;
    uint64_t serverQueue = 0;
    uint64_t service = 0;
    std::vector<Span> spans;
};

/**
 * Per-class fold of completed requests. Totals are retained per request
 * so the SLO report can compute *exact* nearest-rank quantiles (the
 * metric histograms only keep log2 buckets); the vector is sorted at
 * export time, so the host-thread order of completion does not matter.
 */
struct ClassAgg
{
    std::string name;
    uint64_t count = 0;
    uint64_t sumTotal = 0;
    uint64_t sumQueued = 0;
    uint64_t sumCreditStall = 0;
    uint64_t sumNoc = 0;
    uint64_t sumServerQueue = 0;
    uint64_t sumService = 0;
    uint64_t maxTotal = 0;
    std::vector<uint64_t> totals;
};

struct Sink
{
    std::mutex lock;
    bool parallel = false;

    // Class names live in a deque: element addresses are stable, so the
    // Tracer may borrow c_str() pointers for event names.
    std::deque<ClassAgg> classes;

    std::map<uint64_t, Req> reqs;  // keyed by caller-assigned request id

    uint64_t begun = 0;
    uint64_t completed = 0;
    uint64_t spansOpened = 0;
    uint64_t stallCycles = 0;
    uint64_t firstGen = 0;
    uint64_t lastGen = 0;
    uint64_t lastEnd = 0;
};

Sink &
sink()
{
    static Sink s;
    return s;
}

/**
 * Guard that locks only in parallel mode (the serial engine pays no
 * atomic). Same pattern as the Tracer's SinkGuard.
 */
struct Guard
{
    explicit Guard(Sink &s) : s(s)
    {
        if (s.parallel)
            s.lock.lock();
    }
    ~Guard()
    {
        if (s.parallel)
            s.lock.unlock();
    }
    Sink &s;
};

/**
 * Flow-arrow ids for request legs. Bit 63 namespaces them away from the
 * NoC packet flows (small serial ids, or (shard+1)<<48 | seq on the
 * sharded engine — both leave bit 63 clear). leg 0 = request message,
 * leg 1 = its reply.
 */
constexpr uint64_t
flowId(uint64_t reqId, uint32_t spanId, uint32_t leg)
{
    return (1ull << 63) | (reqId << 17) | (static_cast<uint64_t>(spanId) << 1) |
           leg;
}

Req *
findReq(Sink &s, ReqCtx ctx)
{
    auto it = s.reqs.find(reqCtxId(ctx));
    return it == s.reqs.end() ? nullptr : &it->second;
}

Span *
findSpan(Sink &s, ReqCtx ctx)
{
    Req *r = findReq(s, ctx);
    if (!r)
        return nullptr;
    uint32_t sp = reqCtxSpan(ctx);
    return sp < r->spans.size() ? &r->spans[sp] : nullptr;
}

const char *
className(Sink &s, uint32_t cls)
{
    return cls < s.classes.size() ? s.classes[cls].name.c_str() : "req";
}

void
appendDecimal(std::string &out, uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

/** Nearest-rank quantile (q in permille) over a sorted sample vector. */
uint64_t
quantile(const std::vector<uint64_t> &sorted, uint32_t permille)
{
    if (sorted.empty())
        return 0;
    size_t idx = (sorted.size() - 1) * permille / 1000;
    return sorted[idx];
}

} // anonymous namespace

void
ReqTrace::reset()
{
    Sink &s = sink();
    Guard g(s);
    s.reqs.clear();
    for (ClassAgg &c : s.classes) {
        std::string name = c.name;
        c = ClassAgg{};
        c.name = std::move(name);
    }
    s.begun = s.completed = s.spansOpened = s.stallCycles = 0;
    s.firstGen = s.lastGen = s.lastEnd = 0;
}

void
ReqTrace::setParallel(bool enabled)
{
    sink().parallel = enabled;
}

uint32_t
ReqTrace::registerClass(const std::string &name)
{
    Sink &s = sink();
    Guard g(s);
    for (uint32_t i = 0; i < s.classes.size(); ++i)
        if (s.classes[i].name == name)
            return i;
    s.classes.emplace_back();
    s.classes.back().name = name;
    return static_cast<uint32_t>(s.classes.size() - 1);
}

ReqCtx
ReqTrace::begin(uint32_t cls, uint64_t reqId, uint64_t genCycle)
{
    Sink &s = sink();
    Guard g(s);
    Req &r = s.reqs[reqId];
    r.cls = cls;
    r.gen = genCycle;
    s.begun++;
    if (s.firstGen == 0 || genCycle < s.firstGen)
        s.firstGen = genCycle;
    if (genCycle > s.lastGen)
        s.lastGen = genCycle;
    return reqCtxMake(cls, reqId, 0xffff);  // root: no span yet
}

void
ReqTrace::noteQueued(ReqCtx ctx, uint64_t cycles)
{
    Sink &s = sink();
    Guard g(s);
    if (Req *r = findReq(s, ctx))
        r->queued += cycles;
}

void
ReqTrace::noteCreditStall(ReqCtx ctx, uint64_t cycles)
{
    Sink &s = sink();
    Guard g(s);
    if (Req *r = findReq(s, ctx)) {
        r->creditStall += cycles;
        s.stallCycles += cycles;
    }
}

void
ReqTrace::end(ReqCtx ctx, uint64_t cycle)
{
    Sink &s = sink();
    Guard g(s);
    auto it = s.reqs.find(reqCtxId(ctx));
    if (it == s.reqs.end())
        return;
    Req &r = it->second;

    uint64_t total = cycle >= r.gen ? cycle - r.gen : 0;
    if (r.cls < s.classes.size()) {
        ClassAgg &c = s.classes[r.cls];
        c.count++;
        c.sumTotal += total;
        c.sumQueued += r.queued;
        c.sumCreditStall += r.creditStall;
        c.sumNoc += r.noc;
        c.sumServerQueue += r.serverQueue;
        c.sumService += r.service;
        c.maxTotal = std::max(c.maxTotal, total);
        c.totals.push_back(total);

        if (M3_METRICS_ON) {
            const std::string base = "req." + c.name + ".";
            Metrics::histogram(base + "total").observe(total);
            Metrics::histogram(base + "queue").observe(r.queued);
            Metrics::histogram(base + "credit_stall").observe(r.creditStall);
            Metrics::histogram(base + "noc").observe(r.noc);
            Metrics::histogram(base + "server_queue").observe(r.serverQueue);
            Metrics::histogram(base + "service").observe(r.service);
        }
    }
    // The client-side request slice: first send to completion, on the
    // request track of the issuing node.
    if (M3_TRACE_ON && !r.spans.empty() && cycle >= r.spans[0].send)
        Tracer::complete(reqTrack(r.spans[0].srcNode), r.spans[0].send,
                         cycle - r.spans[0].send, className(s, r.cls));
    s.completed++;
    if (cycle > s.lastEnd)
        s.lastEnd = cycle;
    s.reqs.erase(it);
}

ReqCtx
ReqTrace::msgSent(ReqCtx parent, uint64_t cycle, uint32_t srcNode)
{
    Sink &s = sink();
    Guard g(s);
    Req *r = findReq(s, parent);
    if (!r || r->spans.size() >= 0x7fff)
        return 0;
    uint32_t spanId = static_cast<uint32_t>(r->spans.size());
    Span sp;
    sp.send = cycle;
    sp.srcNode = srcNode;
    r->spans.push_back(sp);
    s.spansOpened++;
    uint64_t reqId = reqCtxId(parent);
    if (M3_TRACE_ON)
        Tracer::flowBegin(reqTrack(srcNode), cycle, flowId(reqId, spanId, 0),
                          className(s, r->cls));
    return reqCtxMake(r->cls, reqId, spanId);
}

void
ReqTrace::msgArrived(ReqCtx ctx, uint64_t cycle, uint32_t dstNode, bool reply)
{
    Sink &s = sink();
    Guard g(s);
    Req *r = findReq(s, ctx);
    Span *sp = findSpan(s, ctx);
    if (!r || !sp)
        return;
    if (reply) {
        sp->replyArrive = cycle;
        if (cycle >= sp->replySend && sp->replySend)
            r->noc += cycle - sp->replySend;
        if (M3_TRACE_ON)
            Tracer::flowEnd(reqTrack(dstNode), cycle,
                            flowId(reqCtxId(ctx), reqCtxSpan(ctx), 1),
                            className(s, r->cls));
    } else {
        sp->arrive = cycle;
        sp->dstNode = dstNode;
        if (cycle >= sp->send)
            r->noc += cycle - sp->send;
        if (M3_TRACE_ON)
            Tracer::flowEnd(reqTrack(dstNode), cycle,
                            flowId(reqCtxId(ctx), reqCtxSpan(ctx), 0),
                            className(s, r->cls));
    }
}

void
ReqTrace::msgFetched(ReqCtx ctx, uint64_t cycle)
{
    Sink &s = sink();
    Guard g(s);
    Req *r = findReq(s, ctx);
    Span *sp = findSpan(s, ctx);
    if (!r || !sp)
        return;
    // A fetch after the reply already arrived is the *client* picking the
    // reply out of its ring — the span is over; total latency covers it.
    if (sp->replyArrive)
        return;
    if (!sp->fetch) {
        sp->fetch = cycle;
        if (cycle >= sp->arrive && sp->arrive)
            r->serverQueue += cycle - sp->arrive;
    }
}

void
ReqTrace::replySent(ReqCtx ctx, uint64_t cycle, uint32_t node)
{
    Sink &s = sink();
    Guard g(s);
    Req *r = findReq(s, ctx);
    Span *sp = findSpan(s, ctx);
    if (!r || !sp || sp->replySend)
        return;
    sp->replySend = cycle;
    if (cycle >= sp->fetch && sp->fetch)
        r->service += cycle - sp->fetch;
    if (M3_TRACE_ON) {
        if (sp->fetch && cycle >= sp->fetch)
            Tracer::complete(reqTrack(node), sp->fetch, cycle - sp->fetch,
                             className(s, r->cls));
        Tracer::flowBegin(reqTrack(node), cycle,
                          flowId(reqCtxId(ctx), reqCtxSpan(ctx), 1),
                          className(s, r->cls));
    }
}

uint64_t
ReqTrace::requestCount()
{
    Sink &s = sink();
    Guard g(s);
    return s.begun;
}

uint64_t
ReqTrace::completedCount()
{
    Sink &s = sink();
    Guard g(s);
    return s.completed;
}

uint64_t
ReqTrace::spanCount()
{
    Sink &s = sink();
    Guard g(s);
    return s.spansOpened;
}

uint64_t
ReqTrace::creditStallCycles()
{
    Sink &s = sink();
    Guard g(s);
    return s.stallCycles;
}

uint64_t
ReqTrace::firstGenCycle()
{
    Sink &s = sink();
    Guard g(s);
    return s.firstGen;
}

uint64_t
ReqTrace::lastGenCycle()
{
    Sink &s = sink();
    Guard g(s);
    return s.lastGen;
}

uint64_t
ReqTrace::lastEndCycle()
{
    Sink &s = sink();
    Guard g(s);
    return s.lastEnd;
}

std::string
ReqTrace::sloJson()
{
    Sink &s = sink();
    Guard g(s);
    std::string out = "{";
    bool first = true;
    for (ClassAgg &c : s.classes) {
        if (c.count == 0)
            continue;
        std::sort(c.totals.begin(), c.totals.end());
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + c.name + "\": {";
        out += "\"count\": ";
        appendDecimal(out, c.count);
        out += ", \"p50\": ";
        appendDecimal(out, quantile(c.totals, 500));
        out += ", \"p99\": ";
        appendDecimal(out, quantile(c.totals, 990));
        out += ", \"p999\": ";
        appendDecimal(out, quantile(c.totals, 999));
        out += ", \"max\": ";
        appendDecimal(out, c.maxTotal);
        out += ", \"mean\": ";
        appendDecimal(out, c.sumTotal / c.count);
        // Mean per-request decomposition: comparable to the mean total
        // above, so readers see at a glance where a request's cycles go.
        out += ", \"decomposition\": {";
        out += "\"queue\": ";
        appendDecimal(out, c.sumQueued / c.count);
        out += ", \"credit_stall\": ";
        appendDecimal(out, c.sumCreditStall / c.count);
        out += ", \"noc\": ";
        appendDecimal(out, c.sumNoc / c.count);
        out += ", \"server_queue\": ";
        appendDecimal(out, c.sumServerQueue / c.count);
        out += ", \"service\": ";
        appendDecimal(out, c.sumService / c.count);
        out += "}}";
    }
    out += "}";
    return out;
}

} // namespace trace
} // namespace m3
