#include "trace/metrics.hh"

#include <cstdio>
#include <map>
#include <mutex>

namespace m3
{
namespace trace
{

bool Metrics::on = false;

namespace
{

/**
 * Ordered maps: JSON dumps iterate alphabetically, which makes the
 * output deterministic and diff-friendly. Entries are never erased, so
 * references handed out by the accessors stay valid (std::map nodes are
 * stable under insertion).
 */
struct Registry
{
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;
    /** Guards map *insertion* (shards may first-touch a metric
     *  concurrently); the cells themselves are atomics, and map nodes
     *  are stable, so cached references never need the lock. */
    std::mutex mu;
};

Registry &
reg()
{
    static Registry r;
    return r;
}

/**
 * Estimate the @p permille quantile (nearest rank) from log2 buckets.
 * Reported as the bucket's inclusive upper edge — a conservative bound
 * — since exact values are folded away: bucket 0 -> 0, bucket i ->
 * 2^i - 1, bucket 64 -> UINT64_MAX.
 */
uint64_t
bucketQuantile(const Histogram &h, uint64_t total, uint32_t permille)
{
    uint64_t rank = (total - 1) * permille / 1000;  // 0-based nearest rank
    uint64_t seen = 0;
    for (uint32_t i = 0; i < Histogram::BUCKETS; ++i) {
        seen += h.buckets[i].load(std::memory_order_relaxed);
        if (seen > rank) {
            if (i == 0)
                return 0;
            if (i >= 64)
                return ~uint64_t(0);
            return (uint64_t(1) << i) - 1;
        }
    }
    return ~uint64_t(0);
}

} // anonymous namespace

void
Metrics::reset()
{
    Registry &r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto &[name, c] : r.counters)
        c.value.store(0, std::memory_order_relaxed);
    for (auto &[name, g] : r.gauges)
        g.value.store(0, std::memory_order_relaxed);
    for (auto &[name, h] : r.histograms) {
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0, std::memory_order_relaxed);
        h.minVal.store(~uint64_t(0), std::memory_order_relaxed);
        h.maxVal.store(0, std::memory_order_relaxed);
        for (auto &b : h.buckets)
            b.store(0, std::memory_order_relaxed);
    }
}

Counter &
Metrics::counter(const std::string &name)
{
    Registry &r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    return r.counters[name];
}

Gauge &
Metrics::gauge(const std::string &name)
{
    Registry &r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    return r.gauges[name];
}

Histogram &
Metrics::histogram(const std::string &name)
{
    Registry &r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    return r.histograms[name];
}

std::string
Metrics::toJson()
{
    // Schema 2 added per-histogram "quantiles" (p50/p99/p999 estimated
    // from the log2 buckets) so SLO numbers need no post-processing.
    std::string out = "{\n  \"schema\": 2,\n";
    char buf[128];

    out += "  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : reg().counters) {
        std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %llu",
                      first ? "" : ",", name.c_str(),
                      static_cast<unsigned long long>(c.value));
        out += buf;
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : reg().gauges) {
        std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %llu",
                      first ? "" : ",", name.c_str(),
                      static_cast<unsigned long long>(g.value));
        out += buf;
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : reg().histograms) {
        std::snprintf(
            buf, sizeof(buf),
            "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, "
            "\"min\": %llu, \"max\": %llu, \"buckets\": [",
            first ? "" : ",", name.c_str(),
            static_cast<unsigned long long>(h.count),
            static_cast<unsigned long long>(h.sum),
            static_cast<unsigned long long>(h.count ? h.minVal.load() : 0),
            static_cast<unsigned long long>(h.maxVal));
        out += buf;
        // Sparse dump: [bit-width, count] pairs for non-empty buckets.
        // Bucket i counts values in [2^(i-1), 2^i); bucket 0 is zeros.
        bool bfirst = true;
        for (uint32_t i = 0; i < Histogram::BUCKETS; ++i) {
            if (!h.buckets[i])
                continue;
            std::snprintf(buf, sizeof(buf), "%s[%u, %llu]",
                          bfirst ? "" : ", ", i,
                          static_cast<unsigned long long>(h.buckets[i]));
            out += buf;
            bfirst = false;
        }
        uint64_t n = h.count.load(std::memory_order_relaxed);
        std::snprintf(
            buf, sizeof(buf),
            "], \"quantiles\": {\"p50\": %llu, \"p99\": %llu, "
            "\"p999\": %llu}}",
            static_cast<unsigned long long>(n ? bucketQuantile(h, n, 500) : 0),
            static_cast<unsigned long long>(n ? bucketQuantile(h, n, 990) : 0),
            static_cast<unsigned long long>(n ? bucketQuantile(h, n, 999)
                                             : 0));
        out += buf;
        first = false;
    }
    out += first ? "}\n" : "\n  }\n";

    out += "}\n";
    return out;
}

bool
Metrics::writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return written == json.size();
}

} // namespace trace
} // namespace m3
