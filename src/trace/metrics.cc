#include "trace/metrics.hh"

#include <cstdio>
#include <map>
#include <mutex>

namespace m3
{
namespace trace
{

bool Metrics::on = false;

namespace
{

/**
 * Ordered maps: JSON dumps iterate alphabetically, which makes the
 * output deterministic and diff-friendly. Entries are never erased, so
 * references handed out by the accessors stay valid (std::map nodes are
 * stable under insertion).
 */
struct Registry
{
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;
    /** Guards map *insertion* (shards may first-touch a metric
     *  concurrently); the cells themselves are atomics, and map nodes
     *  are stable, so cached references never need the lock. */
    std::mutex mu;
};

Registry &
reg()
{
    static Registry r;
    return r;
}

} // anonymous namespace

void
Metrics::reset()
{
    Registry &r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto &[name, c] : r.counters)
        c.value.store(0, std::memory_order_relaxed);
    for (auto &[name, g] : r.gauges)
        g.value.store(0, std::memory_order_relaxed);
    for (auto &[name, h] : r.histograms) {
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0, std::memory_order_relaxed);
        h.minVal.store(~uint64_t(0), std::memory_order_relaxed);
        h.maxVal.store(0, std::memory_order_relaxed);
        for (auto &b : h.buckets)
            b.store(0, std::memory_order_relaxed);
    }
}

Counter &
Metrics::counter(const std::string &name)
{
    Registry &r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    return r.counters[name];
}

Gauge &
Metrics::gauge(const std::string &name)
{
    Registry &r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    return r.gauges[name];
}

Histogram &
Metrics::histogram(const std::string &name)
{
    Registry &r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    return r.histograms[name];
}

std::string
Metrics::toJson()
{
    std::string out = "{\n  \"schema\": 1,\n";
    char buf[128];

    out += "  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : reg().counters) {
        std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %llu",
                      first ? "" : ",", name.c_str(),
                      static_cast<unsigned long long>(c.value));
        out += buf;
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : reg().gauges) {
        std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %llu",
                      first ? "" : ",", name.c_str(),
                      static_cast<unsigned long long>(g.value));
        out += buf;
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : reg().histograms) {
        std::snprintf(
            buf, sizeof(buf),
            "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, "
            "\"min\": %llu, \"max\": %llu, \"buckets\": [",
            first ? "" : ",", name.c_str(),
            static_cast<unsigned long long>(h.count),
            static_cast<unsigned long long>(h.sum),
            static_cast<unsigned long long>(h.count ? h.minVal.load() : 0),
            static_cast<unsigned long long>(h.maxVal));
        out += buf;
        // Sparse dump: [bit-width, count] pairs for non-empty buckets.
        // Bucket i counts values in [2^(i-1), 2^i); bucket 0 is zeros.
        bool bfirst = true;
        for (uint32_t i = 0; i < Histogram::BUCKETS; ++i) {
            if (!h.buckets[i])
                continue;
            std::snprintf(buf, sizeof(buf), "%s[%u, %llu]",
                          bfirst ? "" : ", ", i,
                          static_cast<unsigned long long>(h.buckets[i]));
            out += buf;
            bfirst = false;
        }
        out += "]}";
        first = false;
    }
    out += first ? "}\n" : "\n  }\n";

    out += "}\n";
    return out;
}

bool
Metrics::writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return written == json.size();
}

} // namespace trace
} // namespace m3
