/**
 * @file
 * Kernel interface (KIF): the wire protocol between applications and the
 * M3 kernel, plus the platform conventions both sides rely on.
 *
 * System calls are messages sent over the DTU to the kernel PE
 * (Sec. 3, 5.3); this header defines their opcodes and layouts. It also
 * fixes the endpoint and SPM-layout conventions the kernel establishes
 * when it creates a VPE.
 */

#ifndef M3_KERNEL_KIF_HH
#define M3_KERNEL_KIF_HH

#include <cstdint>

#include "base/types.hh"

namespace m3
{
namespace kif
{

// ---------------------------------------------------------------------
// Platform conventions.
// ---------------------------------------------------------------------

/** EP 0 of every application PE: send EP towards the kernel (syscalls). */
static constexpr epid_t SYSC_SEP = 0;
/** EP 1: receive EP for syscall replies. */
static constexpr epid_t SYSC_REP = 1;
/** First endpoint that libm3 may use for gate multiplexing. */
static constexpr epid_t FIRST_FREE_EP = 2;

/** SPM address of the syscall-reply ringbuffer (fixed by convention). */
static constexpr spmaddr_t SYSC_RBUF_ADDR = 0;
/** Slots and slot size of the syscall-reply ring. */
static constexpr uint32_t SYSC_RBUF_SLOTS = 4;
static constexpr uint32_t SYSC_RBUF_SLOTSIZE = 512;
/** SPM bytes reserved for system ringbuffers ([0, RESERVED_SPM)). */
static constexpr size_t RESERVED_SPM = 4 * KiB;

/** Maximum size of a syscall message (kernel ring slot size). */
static constexpr uint32_t MAX_SYSC_MSG = 512;
/**
 * Slots of the kernel's syscall ring. Every VPE gets one credit, so up
 * to KSYSC_SLOTS VPEs can have a syscall in flight (including deferred
 * replies such as VpeWait, which hold their slot until answered).
 */
static constexpr uint32_t KSYSC_SLOTS = 64;

// ---------------------------------------------------------------------
// System calls.
// ---------------------------------------------------------------------

/** Syscall opcodes. Every request starts with one as uint64. */
enum class Syscall : uint64_t
{
    Noop,         //!< { } -> { Error } (the Fig. 3 null syscall)
    CreateVpe,    //!< { dstSel, mgateSel, name, peType, attr }
                  //!< -> { Error }
    VpeStart,     //!< { vpeSel } -> { Error }
    VpeWait,      //!< { vpeSel } -> { Error, exitcode } (deferred)
    VpeExit,      //!< { exitcode } -> no reply
    CreateRgate,  //!< { dstSel, slots, slotSize } -> { Error }
    CreateSgate,  //!< { dstSel, rgateSel, label, credits } -> { Error }
    ReqMem,       //!< { dstSel, size, perms } -> { Error }
    DeriveMem,    //!< { srcSel, dstSel, off, size, perms } -> { Error }
    Activate,     //!< { capSel, ep, bufAddr } -> { Error } (may defer)
    Exchange,     //!< { vpeSel, srcStart, count, dstStart, obtain }
                  //!< -> { Error }
    CreateSrv,    //!< { dstSel, rgateSel, name } -> { Error }
    OpenSess,     //!< { dstSel, name, arg } -> { Error } (deferred)
    ExchangeSess, //!< { sessSel, obtain, dstStart, count, args... }
                  //!< -> { Error, args... } (deferred)
    Revoke,       //!< { capSel, own } -> { Error }
    Heartbeat,    //!< { } -> { Error } (watchdog liveness, Sec. 3.3)
    Yield,        //!< { } -> { Error } (cooperative deschedule request:
                  //!< after the reply, the kernel may switch the PE to
                  //!< another VPE of its run queue)
    COUNT,
};

/** Stable name for a syscall opcode (trace/metric labels). */
inline const char *
syscallName(Syscall s)
{
    switch (s) {
      case Syscall::Noop: return "Noop";
      case Syscall::CreateVpe: return "CreateVpe";
      case Syscall::VpeStart: return "VpeStart";
      case Syscall::VpeWait: return "VpeWait";
      case Syscall::VpeExit: return "VpeExit";
      case Syscall::CreateRgate: return "CreateRgate";
      case Syscall::CreateSgate: return "CreateSgate";
      case Syscall::ReqMem: return "ReqMem";
      case Syscall::DeriveMem: return "DeriveMem";
      case Syscall::Activate: return "Activate";
      case Syscall::Exchange: return "Exchange";
      case Syscall::CreateSrv: return "CreateSrv";
      case Syscall::OpenSess: return "OpenSess";
      case Syscall::ExchangeSess: return "ExchangeSess";
      case Syscall::Revoke: return "Revoke";
      case Syscall::Heartbeat: return "Heartbeat";
      case Syscall::Yield: return "Yield";
      default: return "Unknown";
    }
}

/** Capability-exchange direction. */
enum class ExchangeOp : uint64_t
{
    Delegate,
    Obtain,
};

/** PE-type request for CreateVpe (mirrors PeType without the include). */
enum class PeTypeReq : uint64_t
{
    General,
    Accelerator,
};

// ---------------------------------------------------------------------
// Service protocol: messages the kernel sends to a registered service
// (Sec. 4.5.3: the channel is created at service registration).
// ---------------------------------------------------------------------

enum class ServiceOp : uint64_t
{
    Open,     //!< { Open, arg } -> { Error, ident }
    Obtain,   //!< { Obtain, ident, argc, args... }
              //!< -> { Error, srvSels..., args... }
    Delegate, //!< { Delegate, ident, srvSels..., args... } -> { Error }
    Close,    //!< { Close, ident } -> { Error }
    Shutdown, //!< { Shutdown } -> { Error }
};

/** Maximum capability selectors in one exchange. */
static constexpr uint32_t MAX_EXCHG_CAPS = 8;
/** Maximum extra argument words in a session exchange. */
static constexpr uint32_t MAX_EXCHG_ARGS = 8;

} // namespace kif
} // namespace m3

#endif // M3_KERNEL_KIF_HH
