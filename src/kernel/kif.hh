/**
 * @file
 * Kernel interface (KIF): the wire protocol between applications and the
 * M3 kernel, plus the platform conventions both sides rely on.
 *
 * System calls are messages sent over the DTU to the kernel PE
 * (Sec. 3, 5.3); this header defines their opcodes and layouts. It also
 * fixes the endpoint and SPM-layout conventions the kernel establishes
 * when it creates a VPE.
 */

#ifndef M3_KERNEL_KIF_HH
#define M3_KERNEL_KIF_HH

#include <cstdint>

#include "base/types.hh"

namespace m3
{
namespace kif
{

// ---------------------------------------------------------------------
// Platform conventions.
// ---------------------------------------------------------------------

/** EP 0 of every application PE: send EP towards the kernel (syscalls). */
static constexpr epid_t SYSC_SEP = 0;
/** EP 1: receive EP for syscall replies. */
static constexpr epid_t SYSC_REP = 1;
/** First endpoint that libm3 may use for gate multiplexing. */
static constexpr epid_t FIRST_FREE_EP = 2;

/** SPM address of the syscall-reply ringbuffer (fixed by convention). */
static constexpr spmaddr_t SYSC_RBUF_ADDR = 0;
/** Slots and slot size of the syscall-reply ring. */
static constexpr uint32_t SYSC_RBUF_SLOTS = 4;
static constexpr uint32_t SYSC_RBUF_SLOTSIZE = 512;
/** SPM bytes reserved for system ringbuffers ([0, RESERVED_SPM)). */
static constexpr size_t RESERVED_SPM = 4 * KiB;

/** Maximum size of a syscall message (kernel ring slot size). */
static constexpr uint32_t MAX_SYSC_MSG = 512;

/**
 * Exit codes the kernel reports for VPEs it had to terminate itself.
 * EXIT_RECLAIMED means the VPE misbehaved (stopped heartbeating on a
 * live core) and was reclaimed; EXIT_PE_DEAD means its PE died and no
 * failover was possible. VpeWait callers use the distinction to tell
 * "the program failed" from "the hardware failed".
 */
static constexpr int EXIT_RECLAIMED = -2;
static constexpr int EXIT_PE_DEAD = -3;
/**
 * Slots of the kernel's syscall ring. Every VPE gets one credit, so up
 * to KSYSC_SLOTS VPEs can have a syscall in flight (including deferred
 * replies such as VpeWait, which hold their slot until answered).
 */
static constexpr uint32_t KSYSC_SLOTS = 64;

// ---------------------------------------------------------------------
// System calls.
// ---------------------------------------------------------------------

/** Syscall opcodes. Every request starts with one as uint64. */
enum class Syscall : uint64_t
{
    Noop,         //!< { } -> { Error } (the Fig. 3 null syscall)
    CreateVpe,    //!< { dstSel, mgateSel, name, peType, attr }
                  //!< -> { Error }
    VpeStart,     //!< { vpeSel } -> { Error }
    VpeWait,      //!< { vpeSel } -> { Error, exitcode } (deferred)
    VpeExit,      //!< { exitcode } -> no reply
    CreateRgate,  //!< { dstSel, slots, slotSize } -> { Error }
    CreateSgate,  //!< { dstSel, rgateSel, label, credits } -> { Error }
    ReqMem,       //!< { dstSel, size, perms } -> { Error }
    DeriveMem,    //!< { srcSel, dstSel, off, size, perms } -> { Error }
    Activate,     //!< { capSel, ep, bufAddr } -> { Error } (may defer)
    Exchange,     //!< { vpeSel, srcStart, count, dstStart, obtain }
                  //!< -> { Error }
    CreateSrv,    //!< { dstSel, rgateSel, name } -> { Error }
    OpenSess,     //!< { dstSel, name, arg } -> { Error } (deferred)
    ExchangeSess, //!< { sessSel, obtain, dstStart, count, args... }
                  //!< -> { Error, args... } (deferred)
    Revoke,       //!< { capSel, own } -> { Error }
    Heartbeat,    //!< { } -> { Error } (watchdog liveness, Sec. 3.3)
    Yield,        //!< { } -> { Error } (cooperative deschedule request:
                  //!< after the reply, the kernel may switch the PE to
                  //!< another VPE of its run queue)
    QuerySrv,     //!< { name } -> { Error, groupSize } (distfs: stripe
                  //!< count of a service group; 1 for a plain service)
    COUNT,
};

/** Stable name for a syscall opcode (trace/metric labels). */
inline const char *
syscallName(Syscall s)
{
    switch (s) {
      case Syscall::Noop: return "Noop";
      case Syscall::CreateVpe: return "CreateVpe";
      case Syscall::VpeStart: return "VpeStart";
      case Syscall::VpeWait: return "VpeWait";
      case Syscall::VpeExit: return "VpeExit";
      case Syscall::CreateRgate: return "CreateRgate";
      case Syscall::CreateSgate: return "CreateSgate";
      case Syscall::ReqMem: return "ReqMem";
      case Syscall::DeriveMem: return "DeriveMem";
      case Syscall::Activate: return "Activate";
      case Syscall::Exchange: return "Exchange";
      case Syscall::CreateSrv: return "CreateSrv";
      case Syscall::OpenSess: return "OpenSess";
      case Syscall::ExchangeSess: return "ExchangeSess";
      case Syscall::Revoke: return "Revoke";
      case Syscall::Heartbeat: return "Heartbeat";
      case Syscall::Yield: return "Yield";
      case Syscall::QuerySrv: return "QuerySrv";
      default: return "Unknown";
    }
}

/** Capability-exchange direction. */
enum class ExchangeOp : uint64_t
{
    Delegate,
    Obtain,
};

/** PE-type request for CreateVpe (mirrors PeType without the include). */
enum class PeTypeReq : uint64_t
{
    General,
    Accelerator,
};

// ---------------------------------------------------------------------
// Service protocol: messages the kernel sends to a registered service
// (Sec. 4.5.3: the channel is created at service registration).
// ---------------------------------------------------------------------

enum class ServiceOp : uint64_t
{
    Open,     //!< { Open, arg } -> { Error, ident }
    Obtain,   //!< { Obtain, ident, argc, args... }
              //!< -> { Error, srvSels..., args... }
    Delegate, //!< { Delegate, ident, srvSels..., args... } -> { Error }
    Close,    //!< { Close, ident } -> { Error }
    Shutdown, //!< { Shutdown } -> { Error }
};

/** Maximum capability selectors in one exchange. */
static constexpr uint32_t MAX_EXCHG_CAPS = 8;
/** Maximum extra argument words in a session exchange. */
static constexpr uint32_t MAX_EXCHG_ARGS = 8;

// ---------------------------------------------------------------------
// Multi-kernel protocol: messages between kernel instances when the PE
// grid is partitioned into kernel domains (Sec. 7's "multiple kernels"
// future work). Inter-kernel traffic uses ordinary DTU messages, just
// like syscalls and the kernel<->service channels.
// ---------------------------------------------------------------------

/**
 * VPE ids are domain-tagged: kernel k allocates ids in
 * [k * VPE_DOMAIN_STRIDE + 1, (k+1) * VPE_DOMAIN_STRIDE), so every id is
 * globally unique and names its owning kernel. A single-kernel machine
 * allocates from domain 0, which keeps its ids identical to before.
 */
static constexpr vpeid_t VPE_DOMAIN_STRIDE = 1u << 20;

/** The kernel domain that owns VPE @p id. */
inline uint32_t
domainOfVpe(vpeid_t id)
{
    return id / VPE_DOMAIN_STRIDE;
}

/** Inter-kernel request opcodes. Every request starts with one as u64. */
enum class IkOp : uint64_t
{
    AnnounceSrv, //!< { name, domain } -> { Error }
    CreateVpe,   //!< { name, peType, attr } ->
                 //!< { Error, vpeId, pe, freePesAfter }
    VpeStart,    //!< { vpeId } -> { Error }
    VpeWait,     //!< { vpeId } -> { Error, exitcode } (deferred)
    OpenSess,    //!< { name, arg } -> { Error, ident } (deferred)
    SessExchange,//!< { name, ident, obtain, count, argc, args... } ->
                 //!< { Error, numCaps, caps..., numArgs, args... }
    DelegateCaps,//!< { dstVpeId, dstStart, count, caps... } -> { Error }
    PeLease,     //!< { peType, attr } -> { Error, pe } (cross-domain
                 //!< migration: borrow a free PE from a peer kernel; the
                 //!< borrower keeps VPE ownership and manages the PE via
                 //!< ext commands)
    PeRelease,   //!< { pe } -> { Error } (return a leased PE)
    CapsRehome,  //!< { oldNode, gen, newNode } -> { Error } (a VPE moved:
                 //!< repoint shadow rgates that matched its old home)
};

/** Stable name for an inter-kernel opcode (trace/metric labels). */
inline const char *
ikOpName(IkOp op)
{
    switch (op) {
      case IkOp::AnnounceSrv: return "AnnounceSrv";
      case IkOp::CreateVpe: return "CreateVpe";
      case IkOp::VpeStart: return "VpeStart";
      case IkOp::VpeWait: return "VpeWait";
      case IkOp::OpenSess: return "OpenSess";
      case IkOp::SessExchange: return "SessExchange";
      case IkOp::DelegateCaps: return "DelegateCaps";
      case IkOp::PeLease: return "PeLease";
      case IkOp::PeRelease: return "PeRelease";
      case IkOp::CapsRehome: return "CapsRehome";
      default: return "Unknown";
    }
}

/** Slot size of the inter-kernel rings (requests and replies). */
static constexpr uint32_t IK_MSG_SIZE = 512;
/**
 * Slots of each kernel's inter-kernel request ring. Deferred requests
 * (VpeWait, session calls) hold their slot until answered; the per-peer
 * software credits below keep the sum of in-flight requests under the
 * ring capacity (3 peers x 8 credits < 32 slots).
 */
static constexpr uint32_t IK_SLOTS = 32;
/** Software credits per peer kernel (requests in flight to one peer). */
static constexpr uint32_t IK_CREDITS = 8;

} // namespace kif
} // namespace m3

#endif // M3_KERNEL_KIF_HH
