#include "kernel/kernel.hh"

#include <algorithm>

#include "base/logging.hh"
#include "dtu/regs.hh"
#include "trace/metrics.hh"
#include "trace/reqtrace.hh"
#include "trace/trace.hh"

namespace m3
{
namespace kernel
{

using kif::Syscall;

namespace
{

/**
 * Block the calling (kernel) fiber until an asynchronous ext operation
 * acks. The kernel performs context switches synchronously: it issues
 * the DTU operation and sleeps until the remote side confirmed it.
 */
class ExtWaiter
{
  public:
    std::function<void(Error)>
    cb()
    {
        return [this](Error e) {
            result = e;
            done = true;
            if (waiter)
                waiter->unblock();
        };
    }

    Error
    wait()
    {
        waiter = Fiber::current();
        while (!done)
            waiter->block();
        return result;
    }

  private:
    Fiber *waiter = nullptr;
    bool done = false;
    Error result = Error::None;
};

} // anonymous namespace

Kernel::Kernel(Platform &platform, peid_t kernelPe, goff_t dramAllocStart,
               goff_t dramAllocEnd)
    : platform(platform), kernelPe(kernelPe), costs(platform.costs().m3),
      dramNext((dramAllocStart + 63) & ~goff_t{63}),
      dramEnd(dramAllocEnd ? dramAllocEnd : platform.dram().size()),
      peBusy(platform.peCount(), false)
{
    peBusy.at(kernelPe) = true;
}

void
Kernel::setDomain(DomainCfg cfg)
{
    domain = std::move(cfg);
    // Domain-tagged VPE ids: globally unique, and the id names the
    // owning kernel (kif::domainOfVpe).
    nextVpe = domain.id * kif::VPE_DOMAIN_STRIDE + 1;
    // Distinct generation spaces per kernel so multiplexed VPEs of
    // different domains can never collide.
    nextDtuGen = (1u << 20) + domain.id * (1u << 24);
    // PEs of other domains are another kernel's business: treat them as
    // permanently busy so placement never considers them.
    for (peid_t p = 0; p < platform.peCount(); ++p)
        if (p >= domain.ownedPes.size() || !domain.ownedPes[p])
            peBusy[p] = true;
    peBusy.at(kernelPe) = true;
    freeEst = domain.ownedCounts;
    ikCredits.assign(domain.count, kif::IK_CREDITS);
    ikSendQueue.assign(domain.count, {});
}

void
Kernel::addBootProgram(BootProgram prog)
{
    bootQueue.push_back(std::move(prog));
}

void
Kernel::start()
{
    platform.pe(kernelPe).installProgram("kernel", [this] { run(); });
    platform.pe(kernelPe).startProgram();
}

const Vpe *
Kernel::vpe(vpeid_t id) const
{
    auto it = vpes.find(id);
    return it == vpes.end() ? nullptr : it->second.get();
}

Vpe *
Kernel::vpeById(vpeid_t id)
{
    auto it = vpes.find(id);
    return it == vpes.end() ? nullptr : it->second.get();
}

Dtu &
Kernel::kdtu()
{
    return platform.pe(kernelPe).dtu();
}

uint32_t
Kernel::nodeOf(const Vpe &v) const
{
    return platform.nocIdOf(v.pe);
}

void
Kernel::compute(Cycles c)
{
    Fiber::current()->compute(c);
}

// ---------------------------------------------------------------------
// Boot.
// ---------------------------------------------------------------------

void
Kernel::bootSetup()
{
    Spm &spm = platform.pe(kernelPe).spm();
    syscRing = spm.alloc(kif::KSYSC_SLOTS * kif::MAX_SYSC_MSG);
    // One reply slot per in-flight request on any service channel (the
    // per-service kernelCredits bound the requests).
    srvRing = spm.alloc(16 * 512);
    stage = spm.alloc(kif::MAX_SYSC_MSG);
    srvStage = spm.alloc(kif::MAX_SYSC_MSG);
    // The SPM spill/fill staging buffer exists only when multiplexing
    // (or migration, which reuses the spill machinery) is enabled, so
    // default setups keep their exact SPM layout.
    if (timeSlice || migration)
        ctxStage = spm.alloc(CTX_CHUNK);

    RecvEpCfg sysc;
    sysc.bufAddr = syscRing;
    sysc.slotCount = kif::KSYSC_SLOTS;
    sysc.slotSize = kif::MAX_SYSC_MSG;
    sysc.replyProtected = true;
    kdtu().configRecv(KEP_SYSC, sysc);

    RecvEpCfg srv;
    srv.bufAddr = srvRing;
    srv.slotCount = 16;
    srv.slotSize = 512;
    kdtu().configRecv(KEP_SRV_REPLY, srv);

    // Multi-kernel: the inter-kernel rings must exist before any peer
    // can send (all kernels run bootSetup at simulation start, so the
    // local configuration races nothing).
    if (multiKernel()) {
        ikRing = spm.alloc(kif::IK_SLOTS * kif::IK_MSG_SIZE);
        ikReplyRing = spm.alloc(kif::IK_SLOTS * kif::IK_MSG_SIZE);
        ikStage = spm.alloc(kif::IK_MSG_SIZE);

        RecvEpCfg ik;
        ik.bufAddr = ikRing;
        ik.slotCount = kif::IK_SLOTS;
        ik.slotSize = kif::IK_MSG_SIZE;
        ik.replyProtected = true;
        kdtu().configRecv(KEP_IK, ik);

        RecvEpCfg ikr;
        ikr.bufAddr = ikReplyRing;
        ikr.slotCount = kif::IK_SLOTS;
        ikr.slotSize = kif::IK_MSG_SIZE;
        kdtu().configRecv(KEP_IK_REPLY, ikr);
    }

    // Downgrade all application PEs: after this, only the kernel can
    // configure endpoints anywhere (Sec. 3: NoC-level isolation). In a
    // multi-kernel machine each kernel downgrades exactly the PEs of its
    // own domain; peer kernel PEs keep their privilege.
    for (peid_t p = 0; p < platform.peCount(); ++p) {
        if (p == kernelPe)
            continue;
        if (multiKernel() &&
            (p >= domain.ownedPes.size() || !domain.ownedPes[p]))
            continue;
        kdtu().extDowngrade(platform.nocIdOf(p));
    }

    // Load the boot programs (OS services and the root application).
    for (BootProgram &prog : bootQueue) {
        if (peBusy.at(prog.pe))
            fatal("boot program '%s' wants busy PE%u", prog.name.c_str(),
                  prog.pe);
        Vpe &v = createVpeObj(prog.name, prog.pe);
        peBusy[prog.pe] = true;
        for (const BootCap &bc : prog.caps) {
            v.caps.put(bc.sel, std::make_shared<MemObj>(bc.node, bc.off,
                                                        bc.size, bc.perms));
        }
        configureVpeEps(v);
        auto main = prog.main;
        vpeid_t id = v.id;
        platform.pe(prog.pe).installProgram(prog.name,
                                            [main, id] { main(id); });
        v.state = Vpe::State::Running;
        v.lastActivity = platform.simulator().curCycle();
        kdtu().extStart(nodeOf(v));
        compute(costs.epConfig);
    }
    bootQueue.clear();
}

Vpe &
Kernel::createVpeObj(const std::string &name, peid_t pe)
{
    vpeid_t id = nextVpe++;
    auto v = std::make_unique<Vpe>(id, name, pe);
    Vpe &ref = *v;
    vpes[id] = std::move(v);
    kstats.vpesCreated++;
    return ref;
}

void
Kernel::configureVpeEps(Vpe &v)
{
    uint32_t node = nodeOf(v);

    SendEpCfg sep;
    sep.targetNode = platform.nocIdOf(kernelPe);
    sep.targetEp = KEP_SYSC;
    sep.label = v.id;
    // One credit per VPE: syscalls are synchronous, and the sum of all
    // credits must not exceed the ring space (Sec. 4.4.3).
    sep.credits = 1;
    sep.maxMsgSize = kif::MAX_SYSC_MSG;
    kdtu().extConfigSend(node, kif::SYSC_SEP, sep);

    RecvEpCfg rep;
    rep.bufAddr = kif::SYSC_RBUF_ADDR;
    rep.slotCount = kif::SYSC_RBUF_SLOTS;
    rep.slotSize = kif::SYSC_RBUF_SLOTSIZE;
    kdtu().extConfigRecv(node, kif::SYSC_REP, rep);

    compute(2 * costs.epConfig);
}

// ---------------------------------------------------------------------
// Main loop.
// ---------------------------------------------------------------------

void
Kernel::run()
{
    Fiber::current()->accounting().push(Category::Os);
    bootSetup();
    for (;;) {
        // The watchdog and the time-slice scheduler only need to tick
        // while a VPE could expire / is waiting for its turn; waiting
        // without a timeout otherwise lets the event queue drain once
        // all programs exited (end-of-simulation detection).
        Cycles tmo = 0;
        if (watchdogPeriod && anyWatchedVpe())
            tmo = watchdogPeriod;
        if (timeSlice && schedulePending())
            tmo = tmo ? std::min(tmo, timeSlice) : timeSlice;
        if (!pendingDrains.empty()) {
            Cycles d = nextDrainDelay(platform.simulator().curCycle());
            tmo = tmo ? std::min(tmo, d) : d;
        }
        std::vector<epid_t> waitEps{KEP_SYSC, KEP_SRV_REPLY};
        if (multiKernel()) {
            waitEps.push_back(KEP_IK);
            waitEps.push_back(KEP_IK_REPLY);
        }
        if (tmo)
            kdtu().waitForMsgs(waitEps, tmo);
        else
            kdtu().waitForMsgs(waitEps);
        int slot;
        while ((slot = kdtu().fetchMsg(KEP_SRV_REPLY)) >= 0)
            handleServiceReply(static_cast<uint32_t>(slot));
        if (multiKernel()) {
            // Replies first: they refund peer credits and may dispatch
            // queued requests; then serve incoming peer requests.
            while ((slot = kdtu().fetchMsg(KEP_IK_REPLY)) >= 0)
                handleIkReply(static_cast<uint32_t>(slot));
            while ((slot = kdtu().fetchMsg(KEP_IK)) >= 0)
                handleIkRequest(static_cast<uint32_t>(slot));
        }
        while ((slot = kdtu().fetchMsg(KEP_SYSC)) >= 0)
            handleSyscall(static_cast<uint32_t>(slot));
        // Message handling done: drop whatever request context the last
        // fetch left on this fiber, so timer-driven kernel work below is
        // never mis-attributed to an application request.
        if (M3_REQTRACE_ON)
            Fiber::current()->setReqCtx(0);
        if (!pendingDrains.empty())
            checkDrains();
        if (watchdogPeriod)
            checkWatchdog();
        if (timeSlice)
            checkSchedule();
    }
}

bool
Kernel::isServiceOwner(vpeid_t id) const
{
    for (const auto &[name, serv] : services)
        if (serv->owner == id)
            return true;
    return false;
}

bool
Kernel::anyWatchedVpe() const
{
    for (const auto &[id, v] : vpes)
        if (v->state == Vpe::State::Running && !isServiceOwner(id))
            return true;
    return false;
}

void
Kernel::deferredReplySent(vpeid_t caller)
{
    Vpe *v = vpeById(caller);
    if (!v)
        return;
    // The reply wakes the VPE; give it a full deadline to show life.
    v->lastActivity = platform.simulator().curCycle();
    if (v->pendingReplies)
        v->pendingReplies--;
}

void
Kernel::checkWatchdog()
{
    Cycles now = platform.simulator().curCycle();
    // Snapshot first: reclaiming mutates the VPE map (cap revocation
    // can finish child VPEs, releasing PEs may admit pending creates).
    std::vector<vpeid_t> expired;
    for (const auto &[id, v] : vpes) {
        // Service owners are exempt while their core lives: they
        // legitimately block on their rings between requests; their
        // health shows up as request timeouts at their clients instead.
        // A service owner whose *core died* must still be reclaimed,
        // or its registration wedges every later OpenSess (the kernel
        // would defer against a server that can never answer). VPEs
        // with a deferred kernel reply are blocked *in the kernel* and
        // cannot heartbeat, so they are not counted as unresponsive
        // either.
        if (v->state == Vpe::State::Running && v->pendingReplies == 0 &&
            (!isServiceOwner(id) || platform.pe(v->pe).coreKilled()) &&
            now - v->lastActivity > watchdogDeadline) {
            expired.push_back(id);
        }
    }
    for (vpeid_t id : expired) {
        Vpe *v = vpeById(id);
        if (!v || v->state != Vpe::State::Running)
            continue;
        // The DTU stays reachable even when the core died (Sec. 3), so
        // the kernel can tell "the hardware failed" from "the program
        // misbehaved" and react differently: a dead PE's VPE can be
        // restarted elsewhere, a misbehaving VPE is reclaimed.
        if (platform.pe(v->pe).coreKilled()) {
            if (failover && v->dtuGen != 0 &&
                platform.pe(v->pe).hasRetained(v->id)) {
                failoverVpe(*v);
            } else {
                reclaimVpe(*v, kif::EXIT_PE_DEAD);
            }
        } else {
            reclaimVpe(*v, kif::EXIT_RECLAIMED);
        }
    }
}

void
Kernel::reclaimVpe(Vpe &v, int exitCode)
{
    logtrace("kernel: watchdog: vpe%u (pe%u) unresponsive, reclaiming",
             v.id, v.pe);
    kstats.watchdogReclaims++;

    // Stop the core first: an unresponsive program must not resume
    // after its DTU is reset. On the real platform this is the
    // NoC-level reset; the core model makes it a separate step. (A
    // PE-death reclaim finds the core already dead; killing again is a
    // no-op.)
    platform.pe(v.pe).killCore();

    // Revoke everything the VPE held; children owned by other VPEs die
    // with their parents, exactly like an explicit revoke.
    for (capsel_t sel : v.caps.sels()) {
        Capability *cap = v.caps.get(sel);
        if (cap)
            revokeRec(cap);
    }

    // Reset the DTU, free the PE and answer waiters; the exit code
    // tells VpeWait callers whether the program or the PE failed.
    finishVpe(v, exitCode);
}

void
Kernel::reply(uint32_t slot, const void *msg, uint32_t size)
{
    replyOnEp(KEP_SYSC, slot, msg, size);
}

void
Kernel::replyOnEp(epid_t ep, uint32_t slot, const void *msg, uint32_t size)
{
    Spm &spm = platform.pe(kernelPe).spm();
    spm.write(stage, msg, size);
    compute(costs.marshal + costs.dtuCommand);
    Error e = kdtu().startReply(ep, slot, stage, size);
    if (e != Error::None)
        panic("kernel reply failed: %s", errorName(e));
    kdtu().waitUntilIdle();
}

void
Kernel::replyError(uint32_t slot, Error e)
{
    uint8_t buf[64];
    Marshaller m(buf, sizeof(buf));
    m << e;
    reply(slot, buf, static_cast<uint32_t>(m.size()));
}

void
Kernel::handleSyscall(uint32_t slot)
{
    kstats.syscalls++;
    MessageHeader hdr = kdtu().msgHeader(KEP_SYSC, slot);
    Vpe *caller = vpeById(static_cast<vpeid_t>(hdr.label));
    if (!caller) {
        warn("syscall from unknown VPE %llu",
             static_cast<unsigned long long>(hdr.label));
        replyError(slot, Error::NoSuchVpe);
        return;
    }

    // Any syscall proves the VPE's core is alive (watchdog liveness).
    caller->lastActivity = platform.simulator().curCycle();

    // A request sent just before a migration can arrive *after* the
    // migration patched the ring: its stored sender node is the old
    // home, and a reply would go to a PE the VPE no longer occupies.
    // The kernel is the only replier on this ring, so patching at
    // dispatch closes the race deterministically.
    if (nodeOf(*caller) != hdr.senderNode)
        kdtu().retargetReplies(KEP_SYSC, caller->id, nodeOf(*caller));

    Spm &spm = platform.pe(kernelPe).spm();
    const uint8_t *payload =
        spm.ptr(kdtu().msgAddr(KEP_SYSC, slot) + sizeof(MessageHeader),
                hdr.length);
    Unmarshaller um(payload, hdr.length);
    auto opcode = um.pull<Syscall>();

    compute(costs.fetchMsg + costs.unmarshal + costs.syscallDispatch);

    const bool traced = M3_TRACE_ON;
    if (traced)
        trace::Tracer::spanBegin(kernelPe, kif::syscallName(opcode));
    const Cycles sysStart = platform.simulator().curCycle();

    switch (opcode) {
      case Syscall::Noop:
        sysNoop(*caller, um, slot);
        break;
      case Syscall::CreateVpe:
        sysCreateVpe(*caller, um, slot);
        break;
      case Syscall::VpeStart:
        sysVpeStart(*caller, um, slot);
        break;
      case Syscall::VpeWait:
        sysVpeWait(*caller, um, slot);
        break;
      case Syscall::VpeExit:
        sysVpeExit(*caller, um, slot);
        break;
      case Syscall::CreateRgate:
        sysCreateRgate(*caller, um, slot);
        break;
      case Syscall::CreateSgate:
        sysCreateSgate(*caller, um, slot);
        break;
      case Syscall::ReqMem:
        sysReqMem(*caller, um, slot);
        break;
      case Syscall::DeriveMem:
        sysDeriveMem(*caller, um, slot);
        break;
      case Syscall::Activate:
        sysActivate(*caller, um, slot);
        break;
      case Syscall::Exchange:
        sysExchange(*caller, um, slot);
        break;
      case Syscall::CreateSrv:
        sysCreateSrv(*caller, um, slot);
        break;
      case Syscall::OpenSess:
        sysOpenSess(*caller, um, slot);
        break;
      case Syscall::ExchangeSess:
        sysExchangeSess(*caller, um, slot);
        break;
      case Syscall::Revoke:
        sysRevoke(*caller, um, slot);
        break;
      case Syscall::Heartbeat:
        sysHeartbeat(*caller, um, slot);
        break;
      case Syscall::Yield:
        sysYield(*caller, um, slot);
        break;
      case Syscall::QuerySrv:
        sysQuerySrv(*caller, um, slot);
        break;
      default:
        replyError(slot, Error::InvalidArgs);
        break;
    }

    if (traced)
        trace::Tracer::spanEnd(kernelPe);
    if (M3_METRICS_ON) {
        std::string base =
            std::string("kernel.syscall.") + kif::syscallName(opcode);
        trace::Metrics::counter(base + ".count").inc();
        trace::Metrics::histogram(base + ".cycles")
            .observe(platform.simulator().curCycle() - sysStart);
    }
}

// ---------------------------------------------------------------------
// Syscall handlers.
// ---------------------------------------------------------------------

void
Kernel::sysNoop(Vpe &, Unmarshaller &, uint32_t slot)
{
    compute(costs.nullHandler);
    replyError(slot, Error::None);
}

void
Kernel::sysHeartbeat(Vpe &, Unmarshaller &, uint32_t slot)
{
    // lastActivity was already refreshed by the dispatch path; the
    // handler only has to acknowledge.
    kstats.heartbeats++;
    compute(costs.nullHandler);
    replyError(slot, Error::None);
}

void
Kernel::sysCreateVpe(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    PendingVpeReq req;
    req.caller = caller.id;
    req.slot = slot;
    req.dstSel = um.pull<capsel_t>();
    req.mgateSel = um.pull<capsel_t>();
    req.name = um.pull<std::string>();
    req.type = um.pull<kif::PeTypeReq>();
    req.attr = um.pull<std::string>();

    if (caller.caps.get(req.dstSel) || caller.caps.get(req.mgateSel)) {
        replyError(slot, Error::CapExists);
        return;
    }
    if (tryCreateVpe(caller, req))
        return;
    if (multiKernel()) {
        // No free PE in this domain: place the child in the least-loaded
        // peer domain. The reply stays deferred until the owning kernel
        // answers (or all candidates declined).
        PendingIkReq ik;
        ik.op = kif::IkOp::CreateVpe;
        ik.caller = req.caller;
        ik.slot = req.slot;
        ik.dstSel = req.dstSel;
        ik.mgateSel = req.mgateSel;
        ik.name = req.name;
        ik.type = req.type;
        ik.attr = req.attr;
        if (tryRemoteCreateVpe(caller, std::move(ik))) {
            deferReply(caller);
            return;
        }
    }
    if (queueVpes) {
        // Sec. 3.3: wait for a reusable core instead of failing; the
        // reply (and thereby the caller) blocks until a PE frees up.
        deferReply(caller);
        pendingVpes.push_back(std::move(req));
        return;
    }
    replyError(slot, Error::NoFreePe);
}

bool
Kernel::tryCreateVpe(Vpe &caller, const PendingVpeReq &req)
{
    PeType wanted = req.type == kif::PeTypeReq::Accelerator
                        ? PeType::Accelerator
                        : PeType::General;

    // Select a suitable and unused PE (Sec. 4.5.5). Drained PEs are
    // about to disappear and accept no new tenants.
    peid_t chosen = INVALID_PE;
    for (peid_t p = 0; p < platform.peCount(); ++p) {
        if (!peBusy[p] && !drained(p) &&
            platform.pe(p).desc().matches(wanted, req.attr)) {
            chosen = p;
            break;
        }
    }
    bool coScheduled = false;
    if (chosen == INVALID_PE && timeSlice) {
        // Oversubscription: co-schedule onto the multiplexed PE with the
        // fewest VPEs (lowest PE id breaks ties — deterministic).
        uint32_t best = ~0u;
        for (const auto &[p, s] : scheds) {
            if (!drained(p) &&
                platform.pe(p).desc().matches(wanted, req.attr) &&
                s.assigned < best) {
                best = s.assigned;
                chosen = p;
            }
        }
        coScheduled = chosen != INVALID_PE;
    }
    if (chosen == INVALID_PE)
        return false;

    peBusy[chosen] = true;
    Vpe &child = createVpeObj(req.name, chosen);
    logtrace("kernel: vpe%u '%s' -> pe%u (for vpe%u)%s", child.id,
             req.name.c_str(), chosen, caller.id,
             coScheduled ? " [co-scheduled]" : "");

    caller.caps.put(req.dstSel, std::make_shared<VpeRefObj>(child.id));
    uint64_t spmSize = platform.pe(chosen).desc().spmDataSize;
    if (!coScheduled) {
        // The memory gate for the child's local memory enables
        // application loading (Sec. 4.5.5).
        caller.caps.put(req.mgateSel,
                        std::make_shared<MemObj>(platform.nocIdOf(chosen),
                                                 0, spmSize, MEM_RW));
    } else {
        // The PE's SPM belongs to whoever is resident; the loader writes
        // the image into the child's context-save area instead, and the
        // first resume fills the SPM from there.
        caller.caps.put(req.mgateSel,
                        std::make_shared<MemObj>(platform.dramNode(),
                                                 csaOf(child), spmSize,
                                                 MEM_RW));
    }

    if (!timeSlice && !migration) {
        configureVpeEps(child);
    } else {
        // Multiplexed (or migratable) VPEs get a kernel-assigned
        // generation and their syscall EPs via a context restore, so
        // suspend/resume, migration and the initial setup share one
        // mechanism.
        child.dtuGen = nextDtuGen++;
        buildInitialCtx(child);
        PeSched &s = scheds[chosen];
        s.assigned++;
        platform.pe(chosen).dtu().setSharedPe(s.assigned > 1);
        if (!coScheduled) {
            s.resident = child.id;
            s.residentSince = platform.simulator().curCycle();
            applyCtx(child);
        }
        compute(2 * costs.epConfig);
    }
    compute(2 * costs.capOp);

    uint8_t buf[64];
    Marshaller m(buf, sizeof(buf));
    m << Error::None << static_cast<uint64_t>(child.id)
      << static_cast<uint64_t>(chosen);
    reply(req.slot, buf, static_cast<uint32_t>(m.size()));
    return true;
}

void
Kernel::flushPendingVpes()
{
    for (auto it = pendingVpes.begin(); it != pendingVpes.end();) {
        Vpe *caller = vpeById(it->caller);
        if (!caller) {
            it = pendingVpes.erase(it);
            continue;
        }
        if (tryCreateVpe(*caller, *it)) {
            deferredReplySent(it->caller);
            it = pendingVpes.erase(it);
        } else {
            ++it;
        }
    }
}

void
Kernel::sysVpeStart(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto vpeSel = um.pull<capsel_t>();
    Capability *cap = caller.caps.get(vpeSel, ObjType::Vpe);
    if (!cap) {
        replyError(slot, Error::NoSuchCap);
        return;
    }
    vpeid_t childId = static_cast<VpeRefObj &>(*cap->obj).vpe;
    if (multiKernel() && kif::domainOfVpe(childId) != domain.id) {
        // The child lives in another domain: its owning kernel starts it.
        uint8_t buf[64];
        Marshaller m(buf, sizeof(buf));
        m << kif::IkOp::VpeStart << static_cast<uint64_t>(childId);
        PendingIkReq ik;
        ik.op = kif::IkOp::VpeStart;
        ik.caller = caller.id;
        ik.slot = slot;
        deferReply(caller);
        sendIk(kif::domainOfVpe(childId), buf,
               static_cast<uint32_t>(m.size()), std::move(ik));
        return;
    }
    Vpe *child = vpeById(childId);
    if (!child || child->state != Vpe::State::Boot) {
        replyError(slot, Error::NoSuchVpe);
        return;
    }
    child->state = Vpe::State::Running;
    child->lastActivity = platform.simulator().curCycle();
    auto sIt = scheds.find(child->pe);
    if (sIt != scheds.end() && sIt->second.resident != child->id) {
        // Co-scheduled on a busy PE: just mark it runnable; the
        // scheduler switches it in and the first resume starts it.
        sIt->second.runQueue.push_back(child->id);
        compute(costs.epConfig);
        replyError(slot, Error::None);
        return;
    }
    child->started = true;
    kdtu().extStartVpe(nodeOf(*child), child->id);
    compute(costs.epConfig);
    replyError(slot, Error::None);
}

void
Kernel::sysVpeWait(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto vpeSel = um.pull<capsel_t>();
    Capability *cap = caller.caps.get(vpeSel, ObjType::Vpe);
    if (!cap) {
        replyError(slot, Error::NoSuchCap);
        return;
    }
    vpeid_t childId = static_cast<VpeRefObj &>(*cap->obj).vpe;
    if (multiKernel() && kif::domainOfVpe(childId) != domain.id) {
        // Wait at the owning kernel; the local syscall stays deferred
        // until the remote exit comes back over the IK channel.
        uint8_t buf[64];
        Marshaller m(buf, sizeof(buf));
        m << kif::IkOp::VpeWait << static_cast<uint64_t>(childId);
        PendingIkReq ik;
        ik.op = kif::IkOp::VpeWait;
        ik.caller = caller.id;
        ik.slot = slot;
        deferReply(caller);
        sendIk(kif::domainOfVpe(childId), buf,
               static_cast<uint32_t>(m.size()), std::move(ik));
        return;
    }
    Vpe *child = vpeById(childId);
    if (!child) {
        replyError(slot, Error::NoSuchVpe);
        return;
    }
    if (child->state == Vpe::State::Exited) {
        uint8_t buf[64];
        Marshaller m(buf, sizeof(buf));
        m << Error::None << static_cast<int64_t>(child->exitCode);
        reply(slot, buf, static_cast<uint32_t>(m.size()));
        return;
    }
    // Defer the reply until the child exits (Sec. 4.5.4's deferral idea).
    deferReply(caller);
    child->waiters.push_back({KEP_SYSC, slot, caller.id});
}

void
Kernel::sysVpeExit(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto code = um.pull<int64_t>();
    // Exit has no reply; free the ring slot explicitly.
    kdtu().ackMsg(KEP_SYSC, slot);
    finishVpe(caller, static_cast<int>(code));
}

void
Kernel::finishVpe(Vpe &v, int exitCode)
{
    if (v.state == Vpe::State::Exited)
        return;
    v.state = Vpe::State::Exited;
    v.exitCode = exitCode;
    logtrace("kernel: vpe%u exited, freeing pe%u", v.id, v.pe);

    // The VPE is gone for good: its retained failover program with it.
    platform.pe(v.pe).dropRetained(v.id);

    auto sIt = scheds.find(v.pe);
    if (sIt == scheds.end()) {
        // Reclaim the PE: reset its DTU and mark it available again.
        kdtu().extReset(nodeOf(v));
        if (!drained(v.pe)) {
            platform.pe(v.pe).release();
            peBusy[v.pe] = false;
        }
    } else {
        // A multiplexed PE is shared: drop only this VPE's share of it.
        // Messages buffered for its generation are stale now, and future
        // ones become stale once another context is restored.
        PeSched &s = sIt->second;
        if (s.resident == v.id)
            s.resident = INVALID_VPE;
        s.runQueue.erase(
            std::remove(s.runQueue.begin(), s.runQueue.end(), v.id),
            s.runQueue.end());
        platform.pe(v.pe).dropParked(v.id);
        kdtu().extDiscardCtx(nodeOf(v), v.dtuGen);
        if (s.assigned)
            s.assigned--;
        platform.pe(v.pe).dtu().setSharedPe(s.assigned > 1);
        if (s.assigned == 0) {
            // Last VPE gone: now the PE really is free again.
            scheds.erase(sIt);
            kdtu().extReset(nodeOf(v));
            auto bIt = borrowedPes.find(v.pe);
            if (bIt != borrowedPes.end()) {
                // The PE was leased from a peer kernel: hand it back
                // instead of feeding it into the local allocator.
                uint8_t buf[64];
                Marshaller m(buf, sizeof(buf));
                m << kif::IkOp::PeRelease
                  << static_cast<uint64_t>(v.pe);
                PendingIkReq ik;
                ik.op = kif::IkOp::PeRelease;
                sendIk(bIt->second, buf,
                       static_cast<uint32_t>(m.size()), std::move(ik));
                borrowedPes.erase(bIt);
            } else if (!drained(v.pe)) {
                platform.pe(v.pe).release();
                peBusy[v.pe] = false;
            }
        }
    }

    for (auto [ep, slot, waitingVpe] : v.waiters) {
        deferredReplySent(waitingVpe);
        uint8_t buf[64];
        Marshaller m(buf, sizeof(buf));
        m << Error::None << static_cast<int64_t>(exitCode);
        replyOnEp(ep, slot, buf, static_cast<uint32_t>(m.size()));
    }
    v.waiters.clear();

    // A PE was released: satisfy queued VPE creations (Sec. 3.3).
    if (queueVpes)
        flushPendingVpes();
}

void
Kernel::sysCreateRgate(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto dstSel = um.pull<capsel_t>();
    auto slots = um.pull<uint64_t>();
    auto slotSize = um.pull<uint64_t>();
    if (slots == 0 || slots > MAX_SLOTS ||
        slotSize < sizeof(MessageHeader)) {
        replyError(slot, Error::InvalidArgs);
        return;
    }
    if (caller.caps.get(dstSel)) {
        replyError(slot, Error::CapExists);
        return;
    }
    caller.caps.put(dstSel, std::make_shared<RGateObj>(
                                caller.id, static_cast<uint32_t>(slots),
                                static_cast<uint32_t>(slotSize)));
    compute(costs.capOp);
    replyError(slot, Error::None);
}

void
Kernel::sysCreateSgate(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto dstSel = um.pull<capsel_t>();
    auto rgateSel = um.pull<capsel_t>();
    auto label = um.pull<label_t>();
    auto credits = um.pull<uint64_t>();

    Capability *rgCap = caller.caps.get(rgateSel, ObjType::RGate);
    if (!rgCap) {
        replyError(slot, Error::NoSuchCap);
        return;
    }
    if (caller.caps.get(dstSel)) {
        replyError(slot, Error::CapExists);
        return;
    }
    auto rgate = std::static_pointer_cast<RGateObj>(rgCap->obj);
    caller.caps.put(dstSel,
                    std::make_shared<SGateObj>(
                        rgate, label, static_cast<uint32_t>(credits)),
                    rgCap);
    compute(costs.capOp);
    replyError(slot, Error::None);
}

void
Kernel::sysReqMem(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto dstSel = um.pull<capsel_t>();
    auto size = um.pull<uint64_t>();
    auto perms = um.pull<uint64_t>();

    size = (size + 63) & ~uint64_t{63};
    if (size == 0 || dramNext + size > dramEnd) {
        replyError(slot, Error::NoSpace);
        return;
    }
    if (caller.caps.get(dstSel)) {
        replyError(slot, Error::CapExists);
        return;
    }
    goff_t off = dramNext;
    dramNext += size;
    caller.caps.put(dstSel, std::make_shared<MemObj>(
                                platform.dramNode(), off, size,
                                static_cast<uint8_t>(perms & MEM_RW)));
    compute(costs.capOp);
    replyError(slot, Error::None);
}

void
Kernel::sysDeriveMem(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto srcSel = um.pull<capsel_t>();
    auto dstSel = um.pull<capsel_t>();
    auto off = um.pull<uint64_t>();
    auto size = um.pull<uint64_t>();
    auto perms = um.pull<uint64_t>();

    Capability *src = caller.caps.get(srcSel, ObjType::Mem);
    if (!src) {
        replyError(slot, Error::NoSuchCap);
        return;
    }
    auto &mem = static_cast<MemObj &>(*src->obj);
    if (off > mem.size || size > mem.size - off || size == 0) {
        replyError(slot, Error::OutOfBounds);
        return;
    }
    if (caller.caps.get(dstSel)) {
        replyError(slot, Error::CapExists);
        return;
    }
    caller.caps.put(dstSel,
                    std::make_shared<MemObj>(
                        mem.node, mem.off + off, size,
                        static_cast<uint8_t>(perms & mem.perms)),
                    src);
    compute(costs.capOp);
    replyError(slot, Error::None);
}

void
Kernel::sysActivate(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto capSel = um.pull<capsel_t>();
    auto ep = um.pull<uint64_t>();
    auto bufAddr = um.pull<uint64_t>();

    if (ep < kif::FIRST_FREE_EP ||
        ep >= platform.pe(caller.pe).dtu().epCount()) {
        replyError(slot, Error::InvalidArgs);
        return;
    }
    Capability *cap = caller.caps.get(capSel);
    if (!cap) {
        replyError(slot, Error::NoSuchCap);
        return;
    }
    Error e = doActivate(caller, cap, static_cast<epid_t>(ep),
                         static_cast<spmaddr_t>(bufAddr));
    if (e == Error::None && cap->obj->type == ObjType::SGate) {
        auto &sg = static_cast<SGateObj &>(*cap->obj);
        if (!sg.rgate->activated) {
            // Receiver not ready: defer the reply (Sec. 4.5.4).
            deferReply(caller);
            pendingActs[sg.rgate.get()].push_back(
                PendingAct{caller.id, capSel, static_cast<epid_t>(ep),
                           slot});
            return;
        }
    }
    replyError(slot, e);
}

Error
Kernel::doActivate(Vpe &caller, Capability *cap, epid_t ep,
                   spmaddr_t bufAddr)
{
    uint32_t node = nodeOf(caller);
    compute(costs.epConfig);

    // A multiplexed caller may have been descheduled between sending the
    // syscall and the kernel processing it (or before a deferred
    // activation flushed). Its EP registers then live in its saved
    // context — the PE currently belongs to another VPE, so external
    // configuration packets must not touch it.
    const bool viaCtx = caller.dtuGen != 0 && !isResident(caller);

    switch (cap->obj->type) {
      case ObjType::RGate: {
        auto &rg = static_cast<RGateObj &>(*cap->obj);
        if (rg.owner != caller.id)
            return Error::NoPerm;
        RecvEpCfg cfg;
        cfg.bufAddr = bufAddr;
        cfg.slotCount = rg.slots;
        cfg.slotSize = rg.slotSize;
        // The kernel has verified the ring placement, so replies on the
        // stored header information are safe (Sec. 4.4.4).
        cfg.replyProtected = true;
        if (viaCtx) {
            EpRegs r;
            r.type = EpType::Receive;
            r.recv = cfg;
            caller.ctx->eps[ep] = r;
            caller.ctx->recvState[ep] = Dtu::RecvState{};
        } else {
            kdtu().extConfigRecv(node, ep, cfg);
        }
        rg.activated = true;
        rg.node = node;
        rg.ep = ep;
        cap->activatedEp = ep;
        flushPendingActivations(&rg);
        return Error::None;
      }
      case ObjType::SGate: {
        auto &sg = static_cast<SGateObj &>(*cap->obj);
        if (!sg.rgate->activated)
            return Error::None;  // deferred by the caller
        SendEpCfg cfg;
        cfg.targetNode = sg.rgate->node;
        cfg.targetEp = sg.rgate->ep;
        cfg.label = sg.label;
        cfg.credits = sg.credits;
        cfg.maxMsgSize = sg.rgate->slotSize;
        // Address the receiver's generation: if that VPE is descheduled
        // when a message arrives, the DTU buffers it instead of handing
        // it to whichever VPE owns the ring's EP index by then. For a
        // shadow of a remote domain's gate the owner is unknown here;
        // the serialized generation travels with the gate instead.
        cfg.targetGen = vpeGenOf(sg.rgate->owner);
        if (cfg.targetGen == 0)
            cfg.targetGen = sg.rgate->fixedGen;
        if (viaCtx) {
            EpRegs r;
            r.type = EpType::Send;
            r.send = cfg;
            if (r.send.maxCredits == 0)
                r.send.maxCredits = r.send.credits;
            caller.ctx->eps[ep] = r;
        } else {
            kdtu().extConfigSend(node, ep, cfg);
        }
        cap->activatedEp = ep;
        return Error::None;
      }
      case ObjType::Mem: {
        auto &mem = static_cast<MemObj &>(*cap->obj);
        MemEpCfg cfg;
        cfg.targetNode = mem.node;
        cfg.offset = mem.off;
        cfg.size = mem.size;
        cfg.perms = mem.perms;
        if (viaCtx) {
            EpRegs r;
            r.type = EpType::Memory;
            r.mem = cfg;
            caller.ctx->eps[ep] = r;
        } else {
            kdtu().extConfigMem(node, ep, cfg);
        }
        cap->activatedEp = ep;
        return Error::None;
      }
      default:
        return Error::InvalidArgs;
    }
}

void
Kernel::flushPendingActivations(RGateObj *rgate)
{
    auto it = pendingActs.find(rgate);
    if (it == pendingActs.end())
        return;
    std::vector<PendingAct> pending = std::move(it->second);
    pendingActs.erase(it);
    for (const PendingAct &pa : pending) {
        deferredReplySent(pa.vpe);
        Vpe *v = vpeById(pa.vpe);
        if (!v) {
            continue;
        }
        Capability *cap = v->caps.get(pa.capSel, ObjType::SGate);
        if (!cap) {
            replyOnEpError(pa.slot, Error::NoSuchCap);
            continue;
        }
        Error e = doActivate(*v, cap, pa.ep, 0);
        replyOnEpError(pa.slot, e);
    }
}

void
Kernel::replyOnEpError(uint32_t slot, Error e)
{
    uint8_t buf[16];
    Marshaller m(buf, sizeof(buf));
    m << e;
    replyOnEp(KEP_SYSC, slot, buf, static_cast<uint32_t>(m.size()));
}

void
Kernel::failPendingSrvReqs(ServObj &serv)
{
    // The service registration is gone (server reclaimed or exited):
    // every request already handed to it can never be answered. Fail
    // the deferred callers with PeerGone so they unblock and re-open
    // instead of hanging on a reply that will never come.
    std::vector<std::pair<uint64_t, PendingSrvReq>> doomed;
    for (auto it = pendingSrvReqs.begin(); it != pendingSrvReqs.end();) {
        if (it->second.serv.get() == &serv) {
            doomed.emplace_back(it->first, std::move(it->second));
            it = pendingSrvReqs.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &[id, req] : doomed) {
        (void)id;
        uint8_t buf[kif::IK_MSG_SIZE];
        Marshaller m(buf, sizeof(buf));
        switch (req.kind) {
          case PendingSrvReq::Kind::RemoteOpen:
            m << Error::PeerGone;
            replyOnEp(KEP_IK, req.slot, buf,
                      static_cast<uint32_t>(m.size()));
            break;
          case PendingSrvReq::Kind::RemoteObtain:
            m << Error::PeerGone << uint64_t{0} << uint64_t{0};
            replyOnEp(KEP_IK, req.slot, buf,
                      static_cast<uint32_t>(m.size()));
            break;
          case PendingSrvReq::Kind::Obtain:
            deferredReplySent(req.caller);
            m << Error::PeerGone << uint64_t{0};
            replyOnEp(KEP_SYSC, req.slot, buf,
                      static_cast<uint32_t>(m.size()));
            break;
          default:  // Open, Delegate: plain error replies
            deferredReplySent(req.caller);
            replyOnEpError(req.slot, Error::PeerGone);
            break;
        }
    }
}

void
Kernel::sysExchange(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto vpeSel = um.pull<capsel_t>();
    auto srcStart = um.pull<capsel_t>();
    auto count = um.pull<uint64_t>();
    auto dstStart = um.pull<capsel_t>();
    auto op = um.pull<kif::ExchangeOp>();

    Capability *vcap = caller.caps.get(vpeSel, ObjType::Vpe);
    if (!vcap) {
        replyError(slot, Error::NoSuchCap);
        return;
    }
    vpeid_t otherId = static_cast<VpeRefObj &>(*vcap->obj).vpe;
    if (multiKernel() && kif::domainOfVpe(otherId) != domain.id) {
        // Cross-domain exchange: only Delegate is supported (the caller
        // pushes serialized copies of its own caps to the owning kernel;
        // Obtain would have to pull from a table this kernel cannot see).
        if (op != kif::ExchangeOp::Obtain &&
            count > 0 && count <= kif::MAX_EXCHG_CAPS) {
            uint8_t buf[kif::MAX_SYSC_MSG];
            Marshaller m(buf, sizeof(buf));
            m << kif::IkOp::DelegateCaps << static_cast<uint64_t>(otherId)
              << dstStart << count;
            for (uint64_t i = 0; i < count; ++i) {
                Capability *src = caller.caps.get(srcStart + i);
                if (!src) {
                    replyError(slot, Error::NoSuchCap);
                    return;
                }
                Error se = serializeCap(m, *src);
                if (se != Error::None) {
                    replyError(slot, se);
                    return;
                }
            }
            PendingIkReq ik;
            ik.op = kif::IkOp::DelegateCaps;
            ik.caller = caller.id;
            ik.slot = slot;
            deferReply(caller);
            sendIk(kif::domainOfVpe(otherId), buf,
                   static_cast<uint32_t>(m.size()), std::move(ik));
            return;
        }
        replyError(slot, op == kif::ExchangeOp::Obtain ? Error::NoPerm
                                                       : Error::InvalidArgs);
        return;
    }
    Vpe *other = vpeById(otherId);
    if (!other) {
        replyError(slot, Error::NoSuchVpe);
        return;
    }

    Vpe &from = op == kif::ExchangeOp::Delegate ? caller : *other;
    Vpe &to = op == kif::ExchangeOp::Delegate ? *other : caller;

    if (count == 0 || count > kif::MAX_EXCHG_CAPS) {
        replyError(slot, Error::InvalidArgs);
        return;
    }
    // Validate first: all sources present and delegable, no target clash.
    for (uint64_t i = 0; i < count; ++i) {
        Capability *src = from.caps.get(srcStart + i);
        if (!src) {
            replyError(slot, Error::NoSuchCap);
            return;
        }
        if (src->obj->type == ObjType::RGate ||
            src->obj->type == ObjType::Serv) {
            // Receive gates are not movable (Sec. 4.5.4); services stay.
            replyError(slot, Error::NoPerm);
            return;
        }
        if (to.caps.get(dstStart + i)) {
            replyError(slot, Error::CapExists);
            return;
        }
    }
    for (uint64_t i = 0; i < count; ++i) {
        Capability *src = from.caps.get(srcStart + i);
        to.caps.put(dstStart + i, src->obj, src);
        kstats.capsDelegated++;
    }
    compute(count * costs.capOp);
    replyError(slot, Error::None);
}

void
Kernel::sysCreateSrv(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto dstSel = um.pull<capsel_t>();
    auto rgateSel = um.pull<capsel_t>();
    auto name = um.pull<std::string>();

    Capability *rgCap = caller.caps.get(rgateSel, ObjType::RGate);
    if (!rgCap) {
        replyError(slot, Error::NoSuchCap);
        return;
    }
    auto rgate = std::static_pointer_cast<RGateObj>(rgCap->obj);
    if (!rgate->activated) {
        replyError(slot, Error::InvalidArgs);
        return;
    }
    if (services.count(name)) {
        replyError(slot, Error::CapExists);
        return;
    }
    if (caller.caps.get(dstSel)) {
        replyError(slot, Error::CapExists);
        return;
    }
    auto serv = std::make_shared<ServObj>(name, caller.id, rgate);
    services[name] = serv;
    caller.caps.put(dstSel, serv, rgCap);
    compute(costs.capOp);
    if (multiKernel())
        announceService(name);
    replyError(slot, Error::None);
}

uint64_t
Kernel::sendToService(ServObj &serv, const void *msg, uint32_t size)
{
    uint64_t id = nextSrvReqId++;
    const uint8_t *bytes = static_cast<const uint8_t *>(msg);
    if (serv.kernelCredits == 0) {
        // Channel exhausted: queue until a reply returns a credit.
        serv.sendQueue.emplace_back(
            id, std::vector<uint8_t>(bytes, bytes + size));
        return id;
    }
    serv.kernelCredits--;
    dispatchToService(serv, bytes, size, id);
    return id;
}

void
Kernel::dispatchToService(ServObj &serv, const uint8_t *msg, uint32_t size,
                          uint64_t id)
{
    SendEpCfg cfg;
    cfg.targetNode = serv.rgate->node;
    cfg.targetEp = serv.rgate->ep;
    cfg.label = 0;
    cfg.credits = CREDITS_UNLIMITED;  // bounded by kernelCredits
    cfg.maxMsgSize = serv.rgate->slotSize;
    kdtu().configSend(KEP_SRV_SEND, cfg);

    Spm &spm = platform.pe(kernelPe).spm();
    spm.write(srvStage, msg, size);
    compute(costs.epConfig + costs.marshal + costs.dtuCommand);
    Error e = kdtu().startSend(KEP_SRV_SEND, srvStage, size, KEP_SRV_REPLY,
                               id);
    if (e != Error::None)
        panic("kernel -> service send failed: %s", errorName(e));
    kdtu().waitUntilIdle();
    kstats.serviceRequests++;
}

void
Kernel::sysOpenSess(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto dstSel = um.pull<capsel_t>();
    auto name = um.pull<std::string>();
    auto arg = um.pull<uint64_t>();

    // A striped group name fans out by the session arg: the client's
    // placement map addresses stripe k as OpenSess(group, k).
    auto git = serviceGroups.find(name);
    if (git != serviceGroups.end() && !git->second.members.empty())
        name = git->second.members[arg % git->second.members.size()];

    auto it = services.find(name);
    if (it == services.end()) {
        if (multiKernel()) {
            auto rit = remoteServices.find(name);
            if (rit != remoteServices.end()) {
                if (caller.caps.get(dstSel)) {
                    replyError(slot, Error::CapExists);
                    return;
                }
                // The service lives in another domain: open the session
                // through its owning kernel (cross-domain mount).
                uint8_t buf[kif::IK_MSG_SIZE];
                Marshaller m(buf, sizeof(buf));
                m << kif::IkOp::OpenSess << name << arg;
                PendingIkReq ik;
                ik.op = kif::IkOp::OpenSess;
                ik.caller = caller.id;
                ik.slot = slot;
                ik.dstSel = dstSel;
                ik.servName = name;
                ik.servDomain = rit->second;
                deferReply(caller);
                sendIk(rit->second, buf, static_cast<uint32_t>(m.size()),
                       std::move(ik));
                return;
            }
        }
        replyError(slot, Error::NoSuchService);
        return;
    }
    if (caller.caps.get(dstSel)) {
        replyError(slot, Error::CapExists);
        return;
    }

    uint8_t buf[128];
    Marshaller m(buf, sizeof(buf));
    m << kif::ServiceOp::Open << arg;
    uint64_t id = sendToService(*it->second, buf,
                                static_cast<uint32_t>(m.size()));

    PendingSrvReq req;
    req.kind = PendingSrvReq::Kind::Open;
    req.caller = caller.id;
    req.slot = slot;
    req.dstSel = dstSel;
    req.serv = it->second;
    deferReply(caller);
    pendingSrvReqs[id] = std::move(req);
}

void
Kernel::sysExchangeSess(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto sessSel = um.pull<capsel_t>();
    auto op = um.pull<kif::ExchangeOp>();
    auto dstStart = um.pull<capsel_t>();
    auto count = um.pull<uint64_t>();
    auto argc = um.pull<uint64_t>();

    if (count > kif::MAX_EXCHG_CAPS || argc > kif::MAX_EXCHG_ARGS) {
        replyError(slot, Error::InvalidArgs);
        return;
    }
    uint64_t args[kif::MAX_EXCHG_ARGS];
    for (uint64_t i = 0; i < argc; ++i)
        um >> args[i];

    Capability *sessCap = caller.caps.get(sessSel, ObjType::Sess);
    if (!sessCap) {
        replyError(slot, Error::NoSuchCap);
        return;
    }
    auto sess = std::static_pointer_cast<SessObj>(sessCap->obj);
    if (sess->serv && sess->serv->dead) {
        // The server behind this session was reclaimed; the session cap
        // survives until revoked, but exchanges can never be answered.
        replyError(slot, Error::PeerGone);
        return;
    }
    if (sess->remote()) {
        if (op != kif::ExchangeOp::Obtain) {
            // Delegating caps into a remote session would require the
            // serving kernel to pull from this client's table; not
            // supported across domains.
            replyError(slot, Error::InvalidArgs);
            return;
        }
        uint8_t rbuf[kif::IK_MSG_SIZE];
        Marshaller rm(rbuf, sizeof(rbuf));
        rm << kif::IkOp::SessExchange << sess->remoteName << sess->ident
           << op << count << argc;
        for (uint64_t i = 0; i < argc; ++i)
            rm << args[i];
        PendingIkReq ik;
        ik.op = kif::IkOp::SessExchange;
        ik.caller = caller.id;
        ik.slot = slot;
        ik.dstStart = dstStart;
        ik.count = static_cast<uint32_t>(count);
        deferReply(caller);
        sendIk(sess->remoteDomain, rbuf, static_cast<uint32_t>(rm.size()),
               std::move(ik));
        return;
    }

    uint8_t buf[kif::MAX_SYSC_MSG];
    Marshaller m(buf, sizeof(buf));
    m << (op == kif::ExchangeOp::Obtain ? kif::ServiceOp::Obtain
                                        : kif::ServiceOp::Delegate)
      << sess->ident << count << argc;
    for (uint64_t i = 0; i < argc; ++i)
        m << args[i];
    uint64_t id =
        sendToService(*sess->serv, buf, static_cast<uint32_t>(m.size()));

    PendingSrvReq req;
    req.kind = op == kif::ExchangeOp::Obtain ? PendingSrvReq::Kind::Obtain
                                             : PendingSrvReq::Kind::Delegate;
    req.caller = caller.id;
    req.slot = slot;
    req.sess = sess;
    req.serv = sess->serv;
    req.dstStart = dstStart;
    req.count = static_cast<uint32_t>(count);
    if (req.kind == PendingSrvReq::Kind::Delegate) {
        for (uint32_t i = 0; i < count; ++i)
            req.srcSels.push_back(dstStart + i);
    }
    deferReply(caller);
    pendingSrvReqs[id] = std::move(req);
}

void
Kernel::handleServiceReply(uint32_t slot)
{
    MessageHeader hdr = kdtu().msgHeader(KEP_SRV_REPLY, slot);
    auto it = pendingSrvReqs.find(hdr.label);
    if (it == pendingSrvReqs.end()) {
        warn("service reply for unknown request %llu",
             static_cast<unsigned long long>(hdr.label));
        kdtu().ackMsg(KEP_SRV_REPLY, slot);
        return;
    }
    PendingSrvReq req = std::move(it->second);
    pendingSrvReqs.erase(it);
    deferredReplySent(req.caller);

    // The reply returns the kernel's channel credit; dispatch a queued
    // request if one is waiting.
    if (req.serv) {
        req.serv->kernelCredits++;
        if (!req.serv->sendQueue.empty()) {
            auto [qid, bytes] = std::move(req.serv->sendQueue.front());
            req.serv->sendQueue.erase(req.serv->sendQueue.begin());
            req.serv->kernelCredits--;
            dispatchToService(*req.serv, bytes.data(),
                              static_cast<uint32_t>(bytes.size()), qid);
        }
    }

    Spm &spm = platform.pe(kernelPe).spm();
    const uint8_t *payload = spm.ptr(
        kdtu().msgAddr(KEP_SRV_REPLY, slot) + sizeof(MessageHeader),
        hdr.length);
    Unmarshaller um(payload, hdr.length);
    kdtu().ackMsg(KEP_SRV_REPLY, slot);

    compute(costs.fetchMsg + costs.unmarshal);

    if (req.kind == PendingSrvReq::Kind::RemoteOpen ||
        req.kind == PendingSrvReq::Kind::RemoteObtain) {
        // The request came in over the IK channel on behalf of a remote
        // kernel; relay the service's answer back onto that ring slot.
        auto e = um.pull<Error>();
        uint8_t buf[kif::IK_MSG_SIZE];
        Marshaller m(buf, sizeof(buf));
        if (req.kind == PendingSrvReq::Kind::RemoteOpen) {
            if (e == Error::None)
                m << Error::None << um.pull<uint64_t>();
            else
                m << e;
            replyOnEp(KEP_IK, req.slot, buf,
                      static_cast<uint32_t>(m.size()));
            return;
        }
        if (e != Error::None) {
            m << e << uint64_t{0} << uint64_t{0};
            replyOnEp(KEP_IK, req.slot, buf,
                      static_cast<uint32_t>(m.size()));
            return;
        }
        auto numCaps = um.pull<uint64_t>();
        Vpe *srvVpe = vpeById(req.serv->owner);
        Error xe = (numCaps > req.count || !srvVpe) ? Error::InvalidArgs
                                                    : Error::None;
        // The service names its caps by selector; serialize them for the
        // remote kernel to install as shadow caps. Validate first so the
        // reply never carries a partial cap list.
        std::vector<Capability *> srcs;
        for (uint64_t i = 0; xe == Error::None && i < numCaps; ++i) {
            auto srvSel = um.pull<capsel_t>();
            Capability *src = srvVpe->caps.get(srvSel);
            if (!src)
                xe = Error::NoSuchCap;
            else
                srcs.push_back(src);
        }
        m << xe << static_cast<uint64_t>(xe == Error::None ? numCaps : 0);
        if (xe == Error::None) {
            for (Capability *src : srcs) {
                Error se = serializeCap(m, *src);
                if (se != Error::None) {
                    // Undelegable object (receive gate / service):
                    // restart the reply as a clean error.
                    Marshaller em(buf, sizeof(buf));
                    em << se << uint64_t{0} << uint64_t{0};
                    replyOnEp(KEP_IK, req.slot, buf,
                              static_cast<uint32_t>(em.size()));
                    return;
                }
                compute(costs.capOp);
            }
            auto numArgs = um.pull<uint64_t>();
            m << numArgs;
            for (uint64_t i = 0; i < numArgs; ++i)
                m << um.pull<uint64_t>();
        } else {
            m << uint64_t{0};
        }
        replyOnEp(KEP_IK, req.slot, buf, static_cast<uint32_t>(m.size()));
        return;
    }

    Vpe *caller = vpeById(req.caller);
    if (!caller)
        return;  // the caller exited meanwhile; drop the response

    auto e = um.pull<Error>();

    switch (req.kind) {
      case PendingSrvReq::Kind::Open: {
        if (e == Error::None) {
            auto ident = um.pull<uint64_t>();
            caller->caps.put(req.dstSel,
                             std::make_shared<SessObj>(req.serv, ident));
            compute(costs.capOp);
        }
        replyOnEpError(req.slot, e);
        break;
      }
      case PendingSrvReq::Kind::Obtain: {
        uint8_t buf[kif::MAX_SYSC_MSG];
        Marshaller m(buf, sizeof(buf));
        if (e != Error::None) {
            m << e << uint64_t{0};
            replyOnEp(KEP_SYSC, req.slot, buf,
                      static_cast<uint32_t>(m.size()));
            break;
        }
        auto numCaps = um.pull<uint64_t>();
        Vpe *srvVpe = vpeById(req.serv->owner);
        Error xe = Error::None;
        if (numCaps > req.count || !srvVpe)
            xe = Error::InvalidArgs;
        for (uint64_t i = 0; xe == Error::None && i < numCaps; ++i) {
            auto srvSel = um.pull<capsel_t>();
            Capability *src = srvVpe->caps.get(srvSel);
            if (!src) {
                xe = Error::NoSuchCap;
                break;
            }
            if (caller->caps.get(req.dstStart + i)) {
                xe = Error::CapExists;
                break;
            }
            caller->caps.put(req.dstStart + i, src->obj, src);
            kstats.capsDelegated++;
            compute(costs.capOp);
        }
        auto numArgs = um.pull<uint64_t>();
        m << xe << numArgs;
        for (uint64_t i = 0; i < numArgs; ++i)
            m << um.pull<uint64_t>();
        replyOnEp(KEP_SYSC, req.slot, buf,
                  static_cast<uint32_t>(m.size()));
        break;
      }
      case PendingSrvReq::Kind::Delegate: {
        Error xe = e;
        if (xe == Error::None) {
            auto numCaps = um.pull<uint64_t>();
            Vpe *srvVpe = vpeById(req.serv->owner);
            if (numCaps > req.srcSels.size() || !srvVpe)
                xe = Error::InvalidArgs;
            for (uint64_t i = 0; xe == Error::None && i < numCaps; ++i) {
                auto srvDstSel = um.pull<capsel_t>();
                Capability *src = caller->caps.get(req.srcSels[i]);
                if (!src) {
                    xe = Error::NoSuchCap;
                    break;
                }
                if (srvVpe->caps.get(srvDstSel)) {
                    xe = Error::CapExists;
                    break;
                }
                srvVpe->caps.put(srvDstSel, src->obj, src);
                kstats.capsDelegated++;
                compute(costs.capOp);
            }
        }
        replyOnEpError(req.slot, xe);
        break;
      }
    }
}

// ---------------------------------------------------------------------
// Multi-kernel: the inter-kernel protocol. Each kernel owns a slice of
// the PE grid; requests that concern another domain travel as ordinary
// DTU messages between kernel PEs, mirroring the kernel<->service
// channel (per-peer software credits, deferred replies hold ring
// slots). Kernels never block on each other: every request is answered
// from the main loop in continuation style.
// ---------------------------------------------------------------------

uint32_t
Kernel::freeOwnedPes() const
{
    // Non-owned PEs are pinned busy (setDomain), so this counts exactly
    // the free PEs of this kernel's domain.
    uint32_t n = 0;
    for (peid_t p = 0; p < platform.peCount(); ++p)
        if (!peBusy[p])
            n++;
    return n;
}

void
Kernel::announceService(const std::string &name)
{
    for (uint32_t d = 0; d < domain.count; ++d) {
        if (d == domain.id)
            continue;
        uint8_t buf[kif::IK_MSG_SIZE];
        Marshaller m(buf, sizeof(buf));
        m << kif::IkOp::AnnounceSrv << name
          << static_cast<uint64_t>(domain.id);
        PendingIkReq req;
        req.op = kif::IkOp::AnnounceSrv;
        sendIk(d, buf, static_cast<uint32_t>(m.size()), std::move(req));
    }
}

bool
Kernel::tryRemoteCreateVpe(Vpe &caller, PendingIkReq req)
{
    if (!multiKernel())
        return false;
    if (req.arg == 0) {
        // First attempt: order the peer domains least-loaded first (by
        // the free-PE estimate; domain id breaks ties). The estimate
        // self-corrects from freePesAfter in every reply.
        std::vector<uint32_t> cand;
        for (uint32_t d = 0; d < domain.count; ++d)
            if (d != domain.id && freeEst[d] > 0)
                cand.push_back(d);
        std::stable_sort(cand.begin(), cand.end(),
                         [this](uint32_t a, uint32_t b) {
                             return freeEst[a] > freeEst[b];
                         });
        req.candidates = std::move(cand);
        req.arg = 1;  // candidates computed (even if empty)
    }
    if (req.candidates.empty())
        return false;
    uint32_t peer = req.candidates.front();
    req.candidates.erase(req.candidates.begin());

    uint8_t buf[kif::IK_MSG_SIZE];
    Marshaller m(buf, sizeof(buf));
    m << kif::IkOp::CreateVpe << req.name << req.type << req.attr;
    logtrace("kernel%u: remote CreateVpe '%s' -> kernel%u (for vpe%u)",
             domain.id, req.name.c_str(), peer, caller.id);
    sendIk(peer, buf, static_cast<uint32_t>(m.size()), std::move(req));
    return true;
}

uint64_t
Kernel::sendIk(uint32_t peer, const void *msg, uint32_t size,
               PendingIkReq req)
{
    uint64_t id = nextIkReqId++;
    req.domain = peer;
    const uint8_t *bytes = static_cast<const uint8_t *>(msg);
    if (ikCredits.at(peer) == 0) {
        // Peer's ring budget exhausted: queue until a reply refunds.
        ikSendQueue[peer].emplace_back(
            id, std::vector<uint8_t>(bytes, bytes + size));
        pendingIkReqs[id] = std::move(req);
        return id;
    }
    ikCredits[peer]--;
    pendingIkReqs[id] = std::move(req);
    dispatchIk(peer, bytes, size, id);
    return id;
}

void
Kernel::dispatchIk(uint32_t peer, const uint8_t *msg, uint32_t size,
                   uint64_t id)
{
    SendEpCfg cfg;
    cfg.targetNode = platform.nocIdOf(domain.kernelPes.at(peer));
    cfg.targetEp = KEP_IK;
    cfg.label = domain.id;
    cfg.credits = CREDITS_UNLIMITED;  // bounded by ikCredits
    cfg.maxMsgSize = kif::IK_MSG_SIZE;
    kdtu().configSend(KEP_IK_SEND, cfg);

    Spm &spm = platform.pe(kernelPe).spm();
    spm.write(ikStage, msg, size);
    compute(costs.epConfig + costs.marshal + costs.dtuCommand);
    Error e = kdtu().startSend(KEP_IK_SEND, ikStage, size, KEP_IK_REPLY, id);
    if (e != Error::None)
        panic("kernel -> kernel send failed: %s", errorName(e));
    kdtu().waitUntilIdle();
    kstats.ikRequestsSent++;
}

void
Kernel::ikReply(uint32_t slot, const void *msg, uint32_t size)
{
    replyOnEp(KEP_IK, slot, msg, size);
}

void
Kernel::ikReplyError(uint32_t slot, Error e)
{
    uint8_t buf[16];
    Marshaller m(buf, sizeof(buf));
    m << e;
    ikReply(slot, buf, static_cast<uint32_t>(m.size()));
}

void
Kernel::handleIkRequest(uint32_t slot)
{
    kstats.ikRequestsHandled++;
    MessageHeader hdr = kdtu().msgHeader(KEP_IK, slot);
    Spm &spm = platform.pe(kernelPe).spm();
    const uint8_t *payload =
        spm.ptr(kdtu().msgAddr(KEP_IK, slot) + sizeof(MessageHeader),
                hdr.length);
    Unmarshaller um(payload, hdr.length);
    auto op = um.pull<kif::IkOp>();

    compute(costs.fetchMsg + costs.unmarshal + costs.syscallDispatch);

    const bool traced = M3_TRACE_ON;
    if (traced)
        trace::Tracer::spanBegin(kernelPe, kif::ikOpName(op));

    switch (op) {
      case kif::IkOp::AnnounceSrv:
        ikAnnounceSrv(um, slot);
        break;
      case kif::IkOp::CreateVpe:
        ikCreateVpe(um, slot);
        break;
      case kif::IkOp::VpeStart:
        ikVpeStart(um, slot);
        break;
      case kif::IkOp::VpeWait:
        ikVpeWait(um, slot);
        break;
      case kif::IkOp::OpenSess:
        ikOpenSess(um, slot);
        break;
      case kif::IkOp::SessExchange:
        ikSessExchange(um, slot);
        break;
      case kif::IkOp::DelegateCaps:
        ikDelegateCaps(um, slot);
        break;
      case kif::IkOp::PeLease:
        ikPeLease(um, slot);
        break;
      case kif::IkOp::PeRelease:
        ikPeRelease(um, slot);
        break;
      case kif::IkOp::CapsRehome:
        ikCapsRehome(um, slot);
        break;
      default:
        ikReplyError(slot, Error::InvalidArgs);
        break;
    }

    if (traced)
        trace::Tracer::spanEnd(kernelPe);
    if (M3_METRICS_ON) {
        trace::Metrics::counter(std::string("kernel.ik.") +
                                kif::ikOpName(op) + ".count")
            .inc();
    }
}

void
Kernel::ikAnnounceSrv(Unmarshaller &um, uint32_t slot)
{
    auto name = um.pull<std::string>();
    auto dom = um.pull<uint64_t>();
    remoteServices[name] = static_cast<uint32_t>(dom);
    ikReplyError(slot, Error::None);
}

void
Kernel::ikCreateVpe(Unmarshaller &um, uint32_t slot)
{
    auto name = um.pull<std::string>();
    auto type = um.pull<kif::PeTypeReq>();
    auto attr = um.pull<std::string>();

    PeType wanted = type == kif::PeTypeReq::Accelerator
                        ? PeType::Accelerator
                        : PeType::General;
    peid_t chosen = INVALID_PE;
    for (peid_t p = 0; p < platform.peCount(); ++p) {
        if (!peBusy[p] && !drained(p) &&
            platform.pe(p).desc().matches(wanted, attr)) {
            chosen = p;
            break;
        }
    }
    if (chosen == INVALID_PE) {
        // This domain is full too. Do NOT re-forward: the requesting
        // kernel walks its own candidate list, so a single hop suffices
        // and forwarding loops are impossible.
        ikReplyError(slot, Error::NoFreePe);
        return;
    }

    peBusy[chosen] = true;
    Vpe &child = createVpeObj(name, chosen);
    kstats.remoteVpesPlaced++;
    logtrace("kernel%u: remote vpe%u '%s' -> pe%u", domain.id, child.id,
             name.c_str(), chosen);
    // The child's syscall EPs point at THIS kernel, so its syscalls
    // route to the owning domain; the remote parent loads the image
    // through a Mem capability over the child's SPM (installed by the
    // requesting kernel from this reply).
    configureVpeEps(child);
    compute(2 * costs.capOp);

    uint8_t buf[64];
    Marshaller m(buf, sizeof(buf));
    m << Error::None << static_cast<uint64_t>(child.id)
      << static_cast<uint64_t>(chosen)
      << static_cast<uint64_t>(freeOwnedPes());
    ikReply(slot, buf, static_cast<uint32_t>(m.size()));
}

void
Kernel::ikVpeStart(Unmarshaller &um, uint32_t slot)
{
    auto id = static_cast<vpeid_t>(um.pull<uint64_t>());
    Vpe *child = vpeById(id);
    if (!child || child->state != Vpe::State::Boot) {
        ikReplyError(slot, Error::NoSuchVpe);
        return;
    }
    child->state = Vpe::State::Running;
    child->lastActivity = platform.simulator().curCycle();
    child->started = true;
    kdtu().extStartVpe(nodeOf(*child), child->id);
    compute(costs.epConfig);
    ikReplyError(slot, Error::None);
}

void
Kernel::ikVpeWait(Unmarshaller &um, uint32_t slot)
{
    auto id = static_cast<vpeid_t>(um.pull<uint64_t>());
    Vpe *child = vpeById(id);
    if (!child) {
        ikReplyError(slot, Error::NoSuchVpe);
        return;
    }
    if (child->state == Vpe::State::Exited) {
        uint8_t buf[64];
        Marshaller m(buf, sizeof(buf));
        m << Error::None << static_cast<int64_t>(child->exitCode);
        ikReply(slot, buf, static_cast<uint32_t>(m.size()));
        return;
    }
    // Defer: the ring slot is held until the child exits, exactly like
    // a local VpeWait. finishVpe answers it via the waiter list.
    child->waiters.push_back({KEP_IK, slot, INVALID_VPE});
}

void
Kernel::ikOpenSess(Unmarshaller &um, uint32_t slot)
{
    auto name = um.pull<std::string>();
    auto arg = um.pull<uint64_t>();

    auto it = services.find(name);
    if (it == services.end()) {
        ikReplyError(slot, Error::NoSuchService);
        return;
    }
    uint8_t buf[128];
    Marshaller m(buf, sizeof(buf));
    m << kif::ServiceOp::Open << arg;
    uint64_t id = sendToService(*it->second, buf,
                                static_cast<uint32_t>(m.size()));

    PendingSrvReq req;
    req.kind = PendingSrvReq::Kind::RemoteOpen;
    req.caller = INVALID_VPE;
    req.slot = slot;
    req.serv = it->second;
    pendingSrvReqs[id] = std::move(req);
}

void
Kernel::ikSessExchange(Unmarshaller &um, uint32_t slot)
{
    auto name = um.pull<std::string>();
    auto ident = um.pull<uint64_t>();
    auto op = um.pull<kif::ExchangeOp>();
    auto count = um.pull<uint64_t>();
    auto argc = um.pull<uint64_t>();
    if (count > kif::MAX_EXCHG_CAPS || argc > kif::MAX_EXCHG_ARGS) {
        ikReplyError(slot, Error::InvalidArgs);
        return;
    }
    uint64_t args[kif::MAX_EXCHG_ARGS];
    for (uint64_t i = 0; i < argc; ++i)
        um >> args[i];

    auto it = services.find(name);
    if (it == services.end()) {
        ikReplyError(slot, Error::NoSuchService);
        return;
    }
    if (op != kif::ExchangeOp::Obtain) {
        ikReplyError(slot, Error::NoPerm);
        return;
    }
    uint8_t buf[kif::MAX_SYSC_MSG];
    Marshaller m(buf, sizeof(buf));
    m << kif::ServiceOp::Obtain << ident << count << argc;
    for (uint64_t i = 0; i < argc; ++i)
        m << args[i];
    uint64_t id = sendToService(*it->second, buf,
                                static_cast<uint32_t>(m.size()));

    PendingSrvReq req;
    req.kind = PendingSrvReq::Kind::RemoteObtain;
    req.caller = INVALID_VPE;
    req.slot = slot;
    req.serv = it->second;
    req.count = static_cast<uint32_t>(count);
    pendingSrvReqs[id] = std::move(req);
}

void
Kernel::ikDelegateCaps(Unmarshaller &um, uint32_t slot)
{
    auto dstVpe = static_cast<vpeid_t>(um.pull<uint64_t>());
    auto dstStart = um.pull<capsel_t>();
    auto count = um.pull<uint64_t>();

    Vpe *to = vpeById(dstVpe);
    if (!to) {
        ikReplyError(slot, Error::NoSuchVpe);
        return;
    }
    Error e = Error::None;
    for (uint64_t i = 0; e == Error::None && i < count; ++i)
        e = installSerializedCap(um, *to, dstStart + i);
    compute(count * costs.capOp);
    ikReplyError(slot, e);
}

void
Kernel::ikPeLease(Unmarshaller &um, uint32_t slot)
{
    auto type = um.pull<kif::PeTypeReq>();
    auto attr = um.pull<std::string>();

    PeType wanted = type == kif::PeTypeReq::Accelerator
                        ? PeType::Accelerator
                        : PeType::General;
    peid_t chosen = INVALID_PE;
    for (peid_t p = 0; p < platform.peCount(); ++p) {
        if (!peBusy[p] && !drained(p) &&
            platform.pe(p).desc().matches(wanted, attr)) {
            chosen = p;
            break;
        }
    }
    if (chosen == INVALID_PE) {
        ikReplyError(slot, Error::NoFreePe);
        return;
    }
    // The borrower keeps VPE ownership and drives the PE's DTU via ext
    // commands (downgraded PEs accept them from any kernel PE); this
    // kernel only takes the PE out of its own allocator until the
    // matching PeRelease hands it back.
    peBusy[chosen] = true;
    kstats.pesLeased++;
    logtrace("kernel%u: leasing pe%u to a peer kernel", domain.id,
             chosen);
    uint8_t buf[64];
    Marshaller m(buf, sizeof(buf));
    m << Error::None << static_cast<uint64_t>(chosen);
    ikReply(slot, buf, static_cast<uint32_t>(m.size()));
}

void
Kernel::ikPeRelease(Unmarshaller &um, uint32_t slot)
{
    auto pe = static_cast<peid_t>(um.pull<uint64_t>());
    if (pe >= platform.peCount() || pe >= domain.ownedPes.size() ||
        !domain.ownedPes[pe]) {
        ikReplyError(slot, Error::InvalidArgs);
        return;
    }
    logtrace("kernel%u: pe%u returned by a peer kernel", domain.id, pe);
    platform.pe(pe).release();
    peBusy[pe] = false;
    ikReplyError(slot, Error::None);
    if (queueVpes)
        flushPendingVpes();
}

void
Kernel::ikCapsRehome(Unmarshaller &um, uint32_t slot)
{
    auto oldNode = static_cast<uint32_t>(um.pull<uint64_t>());
    auto gen = static_cast<uint32_t>(um.pull<uint64_t>());
    auto newNode = static_cast<uint32_t>(um.pull<uint64_t>());
    if (gen == 0) {
        ikReplyError(slot, Error::InvalidArgs);
        return;
    }

    // A VPE of another domain moved. Shadow receive gates of that VPE
    // live inside send-gate caps installed by cross-domain exchanges;
    // they are identified by the serialized generation plus the old
    // home node. Generation filtering keeps racing messages safe:
    // anything already on the wire to the old node is discarded there
    // and the sender retries against the repointed gate.
    uint64_t patched = 0;
    for (auto &[id, v] : vpes) {
        for (capsel_t sel : v->caps.sels()) {
            Capability *cap = v->caps.get(sel);
            if (!cap || cap->obj->type != ObjType::SGate)
                continue;
            auto &sg = static_cast<SGateObj &>(*cap->obj);
            if (sg.rgate->fixedGen == gen && sg.rgate->node == oldNode) {
                sg.rgate->node = newNode;
                patched++;
            }
        }
    }
    compute(patched * costs.capOp);
    ikReplyError(slot, Error::None);
}

Error
Kernel::serializeCap(Marshaller &m, Capability &cap)
{
    switch (cap.obj->type) {
      case ObjType::SGate: {
        auto &sg = static_cast<SGateObj &>(*cap.obj);
        if (!sg.rgate->activated)
            return Error::InvalidArgs;
        uint32_t gen = vpeGenOf(sg.rgate->owner);
        if (gen == 0)
            gen = sg.rgate->fixedGen;
        m << static_cast<uint64_t>(ObjType::SGate)
          << static_cast<uint64_t>(sg.rgate->node)
          << static_cast<uint64_t>(sg.rgate->ep)
          << static_cast<uint64_t>(sg.rgate->slotSize)
          << static_cast<uint64_t>(gen) << sg.label
          << static_cast<uint64_t>(sg.credits);
        return Error::None;
      }
      case ObjType::Mem: {
        auto &mem = static_cast<MemObj &>(*cap.obj);
        m << static_cast<uint64_t>(ObjType::Mem)
          << static_cast<uint64_t>(mem.node) << mem.off << mem.size
          << static_cast<uint64_t>(mem.perms);
        return Error::None;
      }
      case ObjType::Sess: {
        auto &sess = static_cast<SessObj &>(*cap.obj);
        uint32_t dom = sess.remote() ? sess.remoteDomain : domain.id;
        std::string nm = sess.remote() ? sess.remoteName
                                       : sess.serv->name;
        m << static_cast<uint64_t>(ObjType::Sess) << nm
          << static_cast<uint64_t>(dom) << sess.ident;
        return Error::None;
      }
      case ObjType::Vpe: {
        m << static_cast<uint64_t>(ObjType::Vpe)
          << static_cast<uint64_t>(
                 static_cast<VpeRefObj &>(*cap.obj).vpe);
        return Error::None;
      }
      default:
        // Receive gates and services never move across domains.
        return Error::NoPerm;
    }
}

Error
Kernel::installSerializedCap(Unmarshaller &um, Vpe &target, capsel_t sel)
{
    if (target.caps.get(sel))
        return Error::CapExists;
    auto type = static_cast<ObjType>(um.pull<uint64_t>());
    switch (type) {
      case ObjType::SGate: {
        auto node = um.pull<uint64_t>();
        auto ep = um.pull<uint64_t>();
        auto slotSize = um.pull<uint64_t>();
        auto gen = um.pull<uint64_t>();
        auto label = um.pull<label_t>();
        auto credits = um.pull<uint64_t>();
        // A shadow receive gate carrying the remote ring's coordinates.
        // It is parentless here, so local revocation stays domain-local
        // (no cross-domain revoke propagation).
        auto rg = std::make_shared<RGateObj>(
            INVALID_VPE, 1, static_cast<uint32_t>(slotSize));
        rg->activated = true;
        rg->node = static_cast<uint32_t>(node);
        rg->ep = static_cast<epid_t>(ep);
        rg->fixedGen = static_cast<uint32_t>(gen);
        target.caps.put(sel, std::make_shared<SGateObj>(
                                 rg, label,
                                 static_cast<uint32_t>(credits)));
        kstats.capsDelegated++;
        return Error::None;
      }
      case ObjType::Mem: {
        auto node = um.pull<uint64_t>();
        auto off = um.pull<goff_t>();
        auto size = um.pull<uint64_t>();
        auto perms = um.pull<uint64_t>();
        target.caps.put(sel, std::make_shared<MemObj>(
                                 static_cast<uint32_t>(node), off, size,
                                 static_cast<uint8_t>(perms)));
        kstats.capsDelegated++;
        return Error::None;
      }
      case ObjType::Sess: {
        auto nm = um.pull<std::string>();
        auto dom = um.pull<uint64_t>();
        auto ident = um.pull<uint64_t>();
        if (dom == domain.id) {
            // The session's home is this very domain: bind it locally.
            auto it = services.find(nm);
            if (it == services.end())
                return Error::NoSuchService;
            target.caps.put(sel,
                            std::make_shared<SessObj>(it->second, ident));
        } else {
            target.caps.put(sel, std::make_shared<SessObj>(
                                     nm, static_cast<uint32_t>(dom),
                                     ident));
        }
        kstats.capsDelegated++;
        return Error::None;
      }
      case ObjType::Vpe: {
        auto id = um.pull<uint64_t>();
        target.caps.put(sel, std::make_shared<VpeRefObj>(
                                 static_cast<vpeid_t>(id)));
        kstats.capsDelegated++;
        return Error::None;
      }
      default:
        return Error::InvalidArgs;
    }
}

void
Kernel::handleIkReply(uint32_t slot)
{
    MessageHeader hdr = kdtu().msgHeader(KEP_IK_REPLY, slot);
    auto it = pendingIkReqs.find(hdr.label);
    if (it == pendingIkReqs.end()) {
        warn("inter-kernel reply for unknown request %llu",
             static_cast<unsigned long long>(hdr.label));
        kdtu().ackMsg(KEP_IK_REPLY, slot);
        return;
    }
    PendingIkReq req = std::move(it->second);
    pendingIkReqs.erase(it);

    // Refund the peer's credit; dispatch a queued request if waiting.
    ikCredits.at(req.domain)++;
    if (!ikSendQueue[req.domain].empty()) {
        auto [qid, bytes] = std::move(ikSendQueue[req.domain].front());
        ikSendQueue[req.domain].erase(ikSendQueue[req.domain].begin());
        ikCredits[req.domain]--;
        dispatchIk(req.domain, bytes.data(),
                   static_cast<uint32_t>(bytes.size()), qid);
    }

    Spm &spm = platform.pe(kernelPe).spm();
    const uint8_t *payload = spm.ptr(
        kdtu().msgAddr(KEP_IK_REPLY, slot) + sizeof(MessageHeader),
        hdr.length);
    Unmarshaller um(payload, hdr.length);
    kdtu().ackMsg(KEP_IK_REPLY, slot);
    compute(costs.fetchMsg + costs.unmarshal);

    auto e = um.pull<Error>();

    switch (req.op) {
      case kif::IkOp::AnnounceSrv:
        break;  // fire-and-acknowledge
      case kif::IkOp::CreateVpe: {
        if (e != Error::None) {
            // The peer declined (it filled up since our estimate); walk
            // the remaining candidates before giving up.
            freeEst.at(req.domain) = 0;
            Vpe *caller = vpeById(req.caller);
            if (!caller)
                break;  // requester exited; drop
            if (e == Error::NoFreePe &&
                tryRemoteCreateVpe(*caller, std::move(req)))
                break;  // forwarded onwards, reply still deferred
            deferredReplySent(req.caller);
            replyOnEpError(req.slot, e);
            break;
        }
        auto childId = static_cast<vpeid_t>(um.pull<uint64_t>());
        auto childPe = static_cast<peid_t>(um.pull<uint64_t>());
        auto freeAfter = um.pull<uint64_t>();
        freeEst.at(req.domain) = static_cast<uint32_t>(freeAfter);
        Vpe *caller = vpeById(req.caller);
        if (!caller)
            break;  // requester exited; the remote child is orphaned
        caller->caps.put(req.dstSel,
                         std::make_shared<VpeRefObj>(childId));
        uint64_t spmSize = platform.pe(childPe).desc().spmDataSize;
        caller->caps.put(req.mgateSel, std::make_shared<MemObj>(
                                           platform.nocIdOf(childPe), 0,
                                           spmSize, MEM_RW));
        compute(2 * costs.capOp);
        deferredReplySent(req.caller);
        uint8_t buf[64];
        Marshaller m(buf, sizeof(buf));
        m << Error::None << static_cast<uint64_t>(childId)
          << static_cast<uint64_t>(childPe);
        replyOnEp(KEP_SYSC, req.slot, buf,
                  static_cast<uint32_t>(m.size()));
        break;
      }
      case kif::IkOp::VpeStart:
      case kif::IkOp::DelegateCaps: {
        deferredReplySent(req.caller);
        if (!vpeById(req.caller))
            break;
        replyOnEpError(req.slot, e);
        break;
      }
      case kif::IkOp::VpeWait: {
        deferredReplySent(req.caller);
        if (!vpeById(req.caller))
            break;
        uint8_t buf[64];
        Marshaller m(buf, sizeof(buf));
        if (e == Error::None)
            m << Error::None << um.pull<int64_t>();
        else
            m << e;
        replyOnEp(KEP_SYSC, req.slot, buf,
                  static_cast<uint32_t>(m.size()));
        break;
      }
      case kif::IkOp::OpenSess: {
        deferredReplySent(req.caller);
        Vpe *caller = vpeById(req.caller);
        if (!caller)
            break;
        if (e == Error::None) {
            auto ident = um.pull<uint64_t>();
            caller->caps.put(req.dstSel,
                             std::make_shared<SessObj>(req.servName,
                                                       req.servDomain,
                                                       ident));
            compute(costs.capOp);
        }
        replyOnEpError(req.slot, e);
        break;
      }
      case kif::IkOp::SessExchange: {
        deferredReplySent(req.caller);
        Vpe *caller = vpeById(req.caller);
        if (!caller)
            break;
        uint8_t buf[kif::MAX_SYSC_MSG];
        Marshaller m(buf, sizeof(buf));
        if (e != Error::None) {
            m << e << uint64_t{0};
            replyOnEp(KEP_SYSC, req.slot, buf,
                      static_cast<uint32_t>(m.size()));
            break;
        }
        auto numCaps = um.pull<uint64_t>();
        Error xe = numCaps > req.count ? Error::InvalidArgs : Error::None;
        for (uint64_t i = 0; xe == Error::None && i < numCaps; ++i) {
            xe = installSerializedCap(um, *caller, req.dstStart + i);
            compute(costs.capOp);
        }
        if (xe == Error::None) {
            auto numArgs = um.pull<uint64_t>();
            m << Error::None << numArgs;
            for (uint64_t i = 0; i < numArgs; ++i)
                m << um.pull<uint64_t>();
        } else {
            m << xe << uint64_t{0};
        }
        replyOnEp(KEP_SYSC, req.slot, buf,
                  static_cast<uint32_t>(m.size()));
        break;
      }
      case kif::IkOp::PeRelease:
      case kif::IkOp::CapsRehome:
        break;  // fire-and-acknowledge
      case kif::IkOp::PeLease: {
        auto drainSrc = static_cast<peid_t>(req.arg);
        Vpe *v = vpeById(req.migrVpe);
        if (e != Error::None) {
            // This peer had nothing free; walk remaining candidates.
            if (v && v->state == Vpe::State::Running &&
                requestPeLease(*v, std::move(req)))
                break;
            kstats.migrationsAborted++;
            warn("kernel%u: no peer can host vpe%u, evacuation aborted",
                 domain.id, static_cast<unsigned>(req.migrVpe));
            finishDrainStep(drainSrc);
            break;
        }
        auto pe = static_cast<peid_t>(um.pull<uint64_t>());
        if (!v || v->state != Vpe::State::Running) {
            // The VPE exited while the lease was in flight: hand the
            // PE straight back unused.
            uint8_t buf[64];
            Marshaller m(buf, sizeof(buf));
            m << kif::IkOp::PeRelease << static_cast<uint64_t>(pe);
            PendingIkReq rel;
            rel.op = kif::IkOp::PeRelease;
            sendIk(req.domain, buf, static_cast<uint32_t>(m.size()),
                   std::move(rel));
            finishDrainStep(drainSrc);
            break;
        }
        borrowedPes[pe] = req.domain;
        migrateVpe(*v, pe);
        finishDrainStep(drainSrc);
        break;
      }
    }
}

void
Kernel::sysRevoke(Vpe &caller, Unmarshaller &um, uint32_t slot)
{
    auto capSel = um.pull<capsel_t>();
    auto own = um.pull<uint64_t>();

    Capability *cap = caller.caps.get(capSel);
    if (!cap) {
        replyError(slot, Error::NoSuchCap);
        return;
    }
    if (own) {
        revokeRec(cap);
    } else {
        while (!cap->children.empty())
            revokeRec(cap->children.back());
    }
    replyError(slot, Error::None);
}

void
Kernel::revokeRec(Capability *cap)
{
    while (!cap->children.empty())
        revokeRec(cap->children.back());

    kstats.capsRevoked++;
    compute(costs.capOp);

    Vpe *owner = vpeById(cap->owner);

    // Hardware side effects of losing the capability.
    if (owner && cap->activatedEp != INVALID_EP &&
        owner->state != Vpe::State::Exited) {
        if (owner->dtuGen != 0 && !isResident(*owner)) {
            // The owner is descheduled: its EP lives in the saved
            // context, not on the PE.
            owner->ctx->eps[cap->activatedEp].invalidate();
            owner->ctx->recvState[cap->activatedEp] = Dtu::RecvState{};
        } else {
            kdtu().extInvalidateEp(nodeOf(*owner), cap->activatedEp);
        }
    }

    switch (cap->obj->type) {
      case ObjType::Vpe: {
        Vpe *v = vpeById(static_cast<VpeRefObj &>(*cap->obj).vpe);
        if (v && v->state != Vpe::State::Exited)
            finishVpe(*v, -1);
        break;
      }
      case ObjType::Serv: {
        auto &serv = static_cast<ServObj &>(*cap->obj);
        serv.dead = true;
        services.erase(serv.name);
        failPendingSrvReqs(serv);
        break;
      }
      case ObjType::RGate: {
        auto &rg = static_cast<RGateObj &>(*cap->obj);
        auto it = pendingActs.find(&rg);
        if (it != pendingActs.end()) {
            auto pending = std::move(it->second);
            pendingActs.erase(it);
            for (const PendingAct &pa : pending) {
                deferredReplySent(pa.vpe);
                replyOnEpError(pa.slot, Error::NoSuchCap);
            }
        }
        rg.activated = false;
        break;
      }
      default:
        break;
    }

    if (owner)
        owner->caps.remove(cap->sel);
}

// ---------------------------------------------------------------------
// Time multiplexing: kernel-driven VPE context switching (more VPEs
// than PEs). A suspend parks the core model, drains the DTU, fetches
// its context and spills the SPM to the VPE's context-save area in
// DRAM; a resume mirrors that and then unparks (or first-starts) the
// program. All transfers are real DTU/NoC traffic at DTU bandwidth;
// only the kernel's bookkeeping is charged via ctxswSave/ctxswRestore.
// ---------------------------------------------------------------------

bool
Kernel::isResident(const Vpe &v) const
{
    if (v.dtuGen == 0)
        return true;
    auto it = scheds.find(v.pe);
    return it == scheds.end() || it->second.resident == v.id;
}

uint32_t
Kernel::vpeGenOf(vpeid_t id)
{
    Vpe *v = vpeById(id);
    return v ? v->dtuGen : 0;
}

void
Kernel::buildInitialCtx(Vpe &v)
{
    v.ctx = std::make_unique<Dtu::CtxState>();
    v.ctx->generation = v.dtuGen;

    // The same syscall EPs configureVpeEps() would set up externally.
    EpRegs &sep = v.ctx->eps[kif::SYSC_SEP];
    sep.type = EpType::Send;
    sep.send.targetNode = platform.nocIdOf(kernelPe);
    sep.send.targetEp = KEP_SYSC;
    sep.send.label = v.id;
    sep.send.credits = 1;
    sep.send.maxCredits = 1;
    sep.send.maxMsgSize = kif::MAX_SYSC_MSG;

    EpRegs &rep = v.ctx->eps[kif::SYSC_REP];
    rep.type = EpType::Receive;
    rep.recv.bufAddr = kif::SYSC_RBUF_ADDR;
    rep.recv.slotCount = kif::SYSC_RBUF_SLOTS;
    rep.recv.slotSize = kif::SYSC_RBUF_SLOTSIZE;
}

void
Kernel::applyCtx(Vpe &v)
{
    ExtWaiter w;
    Error e = kdtu().extRestoreCtx(nodeOf(v), v.ctx.get(), w.cb());
    if (e != Error::None)
        panic("kernel: restoring context of vpe%u failed: %s", v.id,
              errorName(e));
    w.wait();
}

goff_t
Kernel::csaOf(Vpe &v)
{
    if (v.csa == 0) {
        uint64_t size = platform.pe(v.pe).desc().spmDataSize;
        size = (size + 63) & ~uint64_t{63};
        if (dramNext + size > dramEnd)
            fatal("out of DRAM for VPE context-save areas");
        v.csa = dramNext;
        dramNext += size;
    }
    return v.csa;
}

void
Kernel::spillSpm(Vpe &v)
{
    uint64_t size = platform.pe(v.pe).desc().spmDataSize;
    MemEpCfg spmEp;
    spmEp.targetNode = nodeOf(v);
    spmEp.offset = 0;
    spmEp.size = size;
    spmEp.perms = MEM_RW;
    MemEpCfg csaEp;
    csaEp.targetNode = platform.dramNode();
    csaEp.offset = csaOf(v);
    csaEp.size = size;
    csaEp.perms = MEM_RW;
    kdtu().configMem(KEP_CTX_SPM, spmEp);
    kdtu().configMem(KEP_CTX_CSA, csaEp);
    compute(2 * costs.epConfig);

    // Only the allocated prefix is live (the bump allocator hands out
    // every addressable buffer); the full SPM at DTU bandwidth costs
    // ~8k cycles per direction, which would dominate every switch.
    uint64_t used = platform.pe(v.pe).spm().allocated();
    used = std::min(size, (used + 63) & ~uint64_t{63});
    v.ctxBytes = used;

    for (uint64_t off = 0; off < used; off += CTX_CHUNK) {
        uint64_t n = std::min<uint64_t>(CTX_CHUNK, used - off);
        if (kdtu().startRead(KEP_CTX_SPM, ctxStage, off, n) != Error::None)
            panic("kernel: ctx spill read failed (vpe%u)", v.id);
        kdtu().waitUntilIdle();
        if (kdtu().startWrite(KEP_CTX_CSA, ctxStage, off, n) != Error::None)
            panic("kernel: ctx spill write failed (vpe%u)", v.id);
        kdtu().waitUntilIdle();
    }
}

void
Kernel::fillSpm(Vpe &v)
{
    uint64_t size = platform.pe(v.pe).desc().spmDataSize;
    MemEpCfg spmEp;
    spmEp.targetNode = nodeOf(v);
    spmEp.offset = 0;
    spmEp.size = size;
    spmEp.perms = MEM_RW;
    MemEpCfg csaEp;
    csaEp.targetNode = platform.dramNode();
    csaEp.offset = csaOf(v);
    csaEp.size = size;
    csaEp.perms = MEM_RW;
    kdtu().configMem(KEP_CTX_SPM, spmEp);
    kdtu().configMem(KEP_CTX_CSA, csaEp);
    compute(2 * costs.epConfig);

    // Restore what the last spill recorded; a first fill of a
    // loader-written image has no record and restores everything.
    uint64_t used = v.ctxBytes ? v.ctxBytes : size;

    for (uint64_t off = 0; off < used; off += CTX_CHUNK) {
        uint64_t n = std::min<uint64_t>(CTX_CHUNK, used - off);
        if (kdtu().startRead(KEP_CTX_CSA, ctxStage, off, n) != Error::None)
            panic("kernel: ctx fill read failed (vpe%u)", v.id);
        kdtu().waitUntilIdle();
        if (kdtu().startWrite(KEP_CTX_SPM, ctxStage, off, n) != Error::None)
            panic("kernel: ctx fill write failed (vpe%u)", v.id);
        kdtu().waitUntilIdle();
    }
}

void
Kernel::suspendVpe(Vpe &v)
{
    PeSched &s = scheds.at(v.pe);
    logtrace("kernel: suspending vpe%u on pe%u", v.id, v.pe);
    kstats.ctxSwitches++;
    compute(costs.ctxswSave);

    Pe &pe = platform.pe(v.pe);
    uint32_t node = nodeOf(v);

    // Stop the core model first: park the fiber and drop its DTU wait
    // registrations — a co-resident VPE must not consume its wakeups.
    // unpark() later delivers a spurious wakeup so it re-registers.
    if (v.started) {
        Fiber *f = pe.programFiber();
        if (f && !f->finished()) {
            pe.dtu().removeWaiter(f);
            pe.parkResident(v.id);
        }
    }

    // Drain: the ack is deferred until any in-flight command completed.
    {
        ExtWaiter w;
        kdtu().extDrain(node, w.cb());
        w.wait();
    }

    // Fetch the DTU context. The fetched generation stays parked at the
    // DTU, so messages for it are buffered until the VPE returns.
    if (!v.ctx)
        v.ctx = std::make_unique<Dtu::CtxState>();
    {
        ExtWaiter w;
        kdtu().extFetchCtx(node, v.ctx.get(), w.cb());
        w.wait();
    }

    // Spill the scratchpad (ringbuffer contents, stacks, heaps).
    spillSpm(v);

    s.resident = INVALID_VPE;
    s.runQueue.push_back(v.id);
}

void
Kernel::resumeVpe(Vpe &v)
{
    PeSched &s = scheds.at(v.pe);
    logtrace("kernel: resuming vpe%u on pe%u", v.id, v.pe);
    compute(costs.ctxswRestore);

    // Fill the scratchpad before restoring the context: re-injected
    // buffered messages write into the ring *after* its bytes are back.
    // For a first start on a shared PE this loads the image the parent
    // wrote into the CSA.
    if (v.csa)
        fillSpm(v);

    applyCtx(v);

    s.resident = v.id;
    s.residentSince = platform.simulator().curCycle();

    if (!v.started) {
        v.started = true;
        kdtu().extStartVpe(nodeOf(v), v.id);
    } else if (platform.pe(v.pe).hasParked(v.id)) {
        platform.pe(v.pe).resumeParked(v.id);
    }
}

void
Kernel::scheduleNext(peid_t pe, PeSched &s)
{
    // A just-exited resident may still be winding down (its fiber is
    // mid-return from the exit syscall); wait for the next tick then.
    Fiber *cur = platform.pe(pe).programFiber();
    if (cur && !cur->finished())
        return;
    while (!s.runQueue.empty()) {
        vpeid_t id = s.runQueue.front();
        s.runQueue.erase(s.runQueue.begin());
        Vpe *next = vpeById(id);
        if (!next || next->state != Vpe::State::Running)
            continue;  // exited or reclaimed while queued
        resumeVpe(*next);
        return;
    }
}

void
Kernel::checkSchedule()
{
    Cycles now = platform.simulator().curCycle();
    for (auto &[pe, s] : scheds) {
        if (s.runQueue.empty())
            continue;
        if (s.resident != INVALID_VPE) {
            Vpe *r = vpeById(s.resident);
            if (r && now - s.residentSince < timeSlice)
                continue;  // slice not yet expired
            if (r)
                suspendVpe(*r);
            else
                s.resident = INVALID_VPE;
        }
        scheduleNext(pe, s);
    }
}

bool
Kernel::schedulePending() const
{
    for (const auto &[pe, s] : scheds)
        if (!s.runQueue.empty())
            return true;
    return false;
}

void
Kernel::sysYield(Vpe &caller, Unmarshaller &, uint32_t slot)
{
    kstats.yields++;
    compute(costs.nullHandler);

    // If another VPE waits for this PE, switch now instead of letting
    // the rest of the slice run out; the caller learns from the reply
    // whether that happened (NoSuchVpe = nobody else to run, so
    // blocking locally is the right move). The reply goes out before
    // the switch: the packet is already on the wire and the NoC keeps
    // per-route FIFO order, so it lands before the context fetch
    // mutates the PE.
    auto it = scheds.find(caller.pe);
    bool canSwitch = it != scheds.end() &&
                     it->second.resident == caller.id &&
                     !it->second.runQueue.empty();
    replyError(slot, canSwitch ? Error::None : Error::NoSuchVpe);
    if (!canSwitch)
        return;
    suspendVpe(caller);
    scheduleNext(caller.pe, it->second);
}

void
Kernel::sysQuerySrv(Vpe &, Unmarshaller &um, uint32_t slot)
{
    auto name = um.pull<std::string>();
    compute(costs.nullHandler);

    uint8_t buf[64];
    Marshaller m(buf, sizeof(buf));
    auto git = serviceGroups.find(name);
    if (git != serviceGroups.end()) {
        m << Error::None
          << static_cast<uint64_t>(git->second.members.size())
          << static_cast<uint64_t>(git->second.replicas);
    } else if (services.count(name) ||
               (multiKernel() && remoteServices.count(name))) {
        m << Error::None << uint64_t{1} << uint64_t{1};
    } else {
        m << Error::NoSuchService;
    }
    reply(slot, buf, static_cast<uint32_t>(m.size()));
}

// ---------------------------------------------------------------------
// Live migration, drain and failover (Sec. 3's "the OS can remotely
// control every PE through the NoC", taken to its conclusion: the
// kernel can also *move* a VPE through the NoC). Migration composes
// the context-switch machinery (drain + fetch + SPM spill) with the
// capability serialization of the multi-kernel protocol; generation
// filtering at the DTUs makes racing messages fail cleanly, and the
// libm3 retry path re-resolves the moved gate and resends.
// ---------------------------------------------------------------------

Error
Kernel::migrateVpe(Vpe &v, peid_t dst)
{
    auto sIt = scheds.find(v.pe);
    if (sIt == scheds.end() || v.dtuGen == 0 ||
        v.state != Vpe::State::Running || dst == v.pe)
        return Error::InvalidArgs;

    const peid_t src = v.pe;
    const uint32_t oldNode = nodeOf(v);
    kstats.migrationsStarted++;
    logtrace("kernel: migrating vpe%u pe%u -> pe%u", v.id, src, dst);
    if (M3_TRACE_ON)
        trace::Tracer::instant(kernelPe, "migration:start");
    compute(costs.ctxswSave);

    PeSched &s = sIt->second;
    if (s.resident == v.id) {
        // Pull the running program off the core and its state out of
        // the DTU, exactly like a multiplexing suspend (minus the
        // runQueue re-insert — the VPE leaves this PE for good).
        Pe &srcPe = platform.pe(src);
        if (v.started) {
            Fiber *f = srcPe.programFiber();
            if (f && !f->finished()) {
                srcPe.dtu().removeWaiter(f);
                srcPe.parkResident(v.id);
            }
        }
        {
            ExtWaiter w;
            kdtu().extDrain(oldNode, w.cb());
            w.wait();
        }
        if (!v.ctx)
            v.ctx = std::make_unique<Dtu::CtxState>();
        {
            ExtWaiter w;
            kdtu().extFetchCtx(oldNode, v.ctx.get(), w.cb());
            w.wait();
        }
        spillSpm(v);
        s.resident = INVALID_VPE;
    } else {
        // Already descheduled: context and SPM image are in the CSA.
        s.runQueue.erase(
            std::remove(s.runQueue.begin(), s.runQueue.end(), v.id),
            s.runQueue.end());
    }

    // Move the software over before touching the source PE's bookkeeping
    // (release() would drop the parked fiber we are about to adopt). The
    // moved hook repoints the program's environment to the new PE.
    Pe &srcPe = platform.pe(src);
    Pe &dstPe = platform.pe(dst);
    if (srcPe.hasParked(v.id))
        dstPe.adoptParkedFrom(srcPe, v.id);
    else
        dstPe.adoptInstalledFrom(srcPe, v.id);

    // Drop the source PE's share.
    if (s.assigned)
        s.assigned--;
    srcPe.dtu().setSharedPe(s.assigned > 1);
    if (s.assigned == 0) {
        scheds.erase(sIt);
        kdtu().extReset(platform.nocIdOf(src));
        auto bIt = borrowedPes.find(src);
        if (bIt != borrowedPes.end()) {
            uint8_t buf[64];
            Marshaller m(buf, sizeof(buf));
            m << kif::IkOp::PeRelease << static_cast<uint64_t>(src);
            PendingIkReq ik;
            ik.op = kif::IkOp::PeRelease;
            sendIk(bIt->second, buf, static_cast<uint32_t>(m.size()),
                   std::move(ik));
            borrowedPes.erase(bIt);
        } else if (!drained(src)) {
            srcPe.release();
            peBusy[src] = false;
        }
    }

    // Claim the destination.
    v.pe = dst;
    peBusy[dst] = true;
    PeSched &d = scheds[dst];
    d.assigned++;
    dstPe.dtu().setSharedPe(d.assigned > 1);

    // Re-home the VPE's gates: its own receive gates now live at the
    // new node, locally and (via CapsRehome) in every peer domain that
    // holds a shadow of them. Senders that already configured EPs for
    // the old home re-resolve on their retry path.
    const uint32_t newNode = platform.nocIdOf(dst);
    rehomeVpeGates(v, newNode);
    if (multiKernel())
        broadcastCapsRehome(oldNode, v.dtuGen, newNode);

    // Syscalls of the moved VPE still buffered in the kernel ring carry
    // its old home as reply target; repoint their stored headers.
    kdtu().retargetReplies(KEP_SYSC, v.id, newNode);

    v.lastActivity = platform.simulator().curCycle();
    if (d.resident == INVALID_VPE)
        resumeVpe(v);
    else
        d.runQueue.push_back(v.id);

    // Discard last: anything parked for the old incarnation between the
    // context fetch and now was sent to the old home and is stale — the
    // sender times out, re-resolves the gate and resends.
    kdtu().extDiscardCtx(oldNode, v.dtuGen);

    kstats.migrationsCompleted++;
    if (M3_TRACE_ON)
        trace::Tracer::instant(kernelPe, "migration:done");
    return Error::None;
}

peid_t
Kernel::pickMigrationTarget(const Vpe &v) const
{
    const PeDesc &want = platform.pe(v.pe).desc();
    for (peid_t p = 0; p < platform.peCount(); ++p) {
        if (!peBusy[p] && !drained(p) &&
            platform.pe(p).desc().matches(want.type, want.attr))
            return p;
    }
    if (timeSlice) {
        // Fall back to co-scheduling onto the least-loaded multiplexed
        // PE (lowest id breaks ties, deterministically).
        peid_t best = INVALID_PE;
        uint32_t load = ~0u;
        for (const auto &[p, s] : scheds) {
            if (p == v.pe || drained(p))
                continue;
            if (platform.pe(p).desc().matches(want.type, want.attr) &&
                s.assigned < load) {
                load = s.assigned;
                best = p;
            }
        }
        return best;
    }
    return INVALID_PE;
}

void
Kernel::rehomeVpeGates(Vpe &v, uint32_t newNode)
{
    // Every activated receive gate the VPE owns moves with it; the
    // kernel's own records are the single source of truth, so later
    // Activates of send gates towards them configure the new home.
    uint64_t patched = 0;
    for (capsel_t sel : v.caps.sels()) {
        Capability *cap = v.caps.get(sel);
        if (!cap || cap->obj->type != ObjType::RGate)
            continue;
        auto &rg = static_cast<RGateObj &>(*cap->obj);
        if (rg.owner == v.id && rg.activated) {
            rg.node = newNode;
            patched++;
        }
    }
    compute(patched * costs.capOp);
}

void
Kernel::broadcastCapsRehome(uint32_t oldNode, uint32_t gen,
                            uint32_t newNode)
{
    uint8_t buf[64];
    Marshaller m(buf, sizeof(buf));
    m << kif::IkOp::CapsRehome << static_cast<uint64_t>(oldNode)
      << static_cast<uint64_t>(gen) << static_cast<uint64_t>(newNode);
    for (uint32_t d = 0; d < domain.count; ++d) {
        if (d == domain.id)
            continue;
        PendingIkReq ik;
        ik.op = kif::IkOp::CapsRehome;
        sendIk(d, buf, static_cast<uint32_t>(m.size()), std::move(ik));
    }
}

bool
Kernel::requestPeLease(Vpe &v, PendingIkReq req)
{
    if (req.candidates.empty())
        return false;
    uint32_t peer = req.candidates.front();
    req.candidates.erase(req.candidates.begin());
    const PeDesc &want = platform.pe(v.pe).desc();
    kif::PeTypeReq t = want.type == PeType::Accelerator
                           ? kif::PeTypeReq::Accelerator
                           : kif::PeTypeReq::General;
    uint8_t buf[kif::IK_MSG_SIZE];
    Marshaller m(buf, sizeof(buf));
    m << kif::IkOp::PeLease << t << want.attr;
    sendIk(peer, buf, static_cast<uint32_t>(m.size()), std::move(req));
    return true;
}

void
Kernel::drainPe(peid_t pe)
{
    if (drained(pe))
        return;
    if (drainedPes.size() < platform.peCount())
        drainedPes.resize(platform.peCount(), false);
    drainedPes[pe] = true;
    kstats.drains++;
    logtrace("kernel: draining pe%u", pe);
    if (M3_TRACE_ON)
        trace::Tracer::instant(kernelPe, "drain:start");

    DrainRun &run = activeDrains[pe];
    run.started = platform.simulator().curCycle();
    run.outstanding = 1;  // the drain itself; dropped at the end

    std::vector<vpeid_t> evacuees;
    for (const auto &[id, vp] : vpes)
        if (vp->pe == pe && vp->state == Vpe::State::Running &&
            vp->dtuGen != 0)
            evacuees.push_back(id);

    for (vpeid_t id : evacuees) {
        Vpe *v = vpeById(id);
        if (!v || v->state != Vpe::State::Running || v->pe != pe)
            continue;  // exited (or already moved) meanwhile
        peid_t dst = pickMigrationTarget(*v);
        if (dst != INVALID_PE) {
            migrateVpe(*v, dst);
            continue;
        }
        if (multiKernel()) {
            // No room in this domain: borrow a free PE from a peer
            // kernel. The evacuation completes when the lease reply
            // arrives; the drain stays open until then.
            PendingIkReq ik;
            ik.op = kif::IkOp::PeLease;
            ik.migrVpe = v->id;
            ik.arg = pe;  // the draining PE, for finishDrainStep
            for (uint32_t d = 0; d < domain.count; ++d)
                if (d != domain.id)
                    ik.candidates.push_back(d);
            if (requestPeLease(*v, std::move(ik))) {
                run.outstanding++;
                continue;
            }
        }
        kstats.migrationsAborted++;
        warn("kernel: drain of pe%u: no target for vpe%u", pe, v->id);
    }
    finishDrainStep(pe);  // drop the drain's own hold
}

void
Kernel::finishDrainStep(peid_t pe)
{
    auto it = activeDrains.find(pe);
    if (it == activeDrains.end())
        return;
    if (it->second.outstanding)
        it->second.outstanding--;
    if (it->second.outstanding)
        return;
    Cycles dur = platform.simulator().curCycle() - it->second.started;
    activeDrains.erase(it);
    logtrace("kernel: drain of pe%u complete after %llu cycles", pe,
             static_cast<unsigned long long>(dur));
    if (M3_TRACE_ON)
        trace::Tracer::instant(kernelPe, "drain:done");
    if (M3_METRICS_ON)
        trace::Metrics::histogram("kernel.drain.cycles").observe(dur);
}

Cycles
Kernel::nextDrainDelay(Cycles now) const
{
    Cycles best = 0;
    for (const PendingDrain &d : pendingDrains) {
        Cycles delay = d.at > now ? d.at - now : 1;
        if (!best || delay < best)
            best = delay;
    }
    return best;
}

void
Kernel::checkDrains()
{
    Cycles now = platform.simulator().curCycle();
    for (auto it = pendingDrains.begin(); it != pendingDrains.end();) {
        if (it->at <= now) {
            peid_t pe = it->pe;
            it = pendingDrains.erase(it);
            drainPe(pe);
        } else {
            ++it;
        }
    }
}

void
Kernel::failoverVpe(Vpe &v)
{
    const peid_t deadPe = v.pe;
    const uint32_t oldNode = nodeOf(v);
    const uint32_t oldGen = v.dtuGen;

    // The PE is dead hardware: quarantine it for the rest of the run
    // (it stays busy and never re-enters the allocator).
    if (drainedPes.size() < platform.peCount())
        drainedPes.resize(platform.peCount(), false);
    drainedPes[deadPe] = true;

    peid_t dst = pickMigrationTarget(v);
    if (dst == INVALID_PE) {
        // Nowhere to restart: reclaim with the PE-death exit code.
        reclaimVpe(v, kif::EXIT_PE_DEAD);
        return;
    }

    kstats.failovers++;
    logtrace("kernel: failover: restarting vpe%u (pe%u died) on pe%u",
             v.id, deadPe, dst);
    if (M3_TRACE_ON)
        trace::Tracer::instant(kernelPe, "migration:failover");

    // Everything the VPE created itself refers to state that died with
    // the core (rings mid-protocol, sessions half-open); revoke it so
    // the restarted program rebuilds from scratch. Caps delegated BY
    // others survive: the parent's setup is the contract the program
    // restarts against — only their endpoint activations died.
    for (capsel_t sel : v.caps.sels()) {
        Capability *cap = v.caps.get(sel);
        if (!cap)
            continue;
        if (!cap->parent)
            revokeRec(cap);
        else
            cap->activatedEp = INVALID_EP;
    }

    // Detach from the dead PE without releasing it, and drop whatever
    // the old incarnation had parked at its DTU.
    unscheduleVpe(v);
    kdtu().extDiscardCtx(oldNode, oldGen);

    // Move the retained entry functor over and wire a fresh context: a
    // new generation (in-flight messages for the dead incarnation can
    // never reach the new one), an empty CSA, not yet started.
    platform.pe(dst).adoptRetained(platform.pe(deadPe), v.id);
    v.pe = dst;
    v.dtuGen = nextDtuGen++;
    v.csa = 0;
    v.ctxBytes = 0;
    v.started = false;
    buildInitialCtx(v);

    peBusy[dst] = true;
    PeSched &d = scheds[dst];
    d.assigned++;
    platform.pe(dst).dtu().setSharedPe(d.assigned > 1);
    v.lastActivity = platform.simulator().curCycle();
    if (d.resident == INVALID_VPE)
        resumeVpe(v);
    else
        d.runQueue.push_back(v.id);
}

void
Kernel::unscheduleVpe(Vpe &v)
{
    auto sIt = scheds.find(v.pe);
    if (sIt == scheds.end())
        return;
    PeSched &s = sIt->second;
    if (s.resident == v.id)
        s.resident = INVALID_VPE;
    s.runQueue.erase(
        std::remove(s.runQueue.begin(), s.runQueue.end(), v.id),
        s.runQueue.end());
    platform.pe(v.pe).dropParked(v.id);
    if (s.assigned)
        s.assigned--;
    platform.pe(v.pe).dtu().setSharedPe(s.assigned > 1);
    if (s.assigned == 0)
        scheds.erase(sIt);
}

} // namespace kernel
} // namespace m3
