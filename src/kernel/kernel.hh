/**
 * @file
 * The M3 kernel: a program on a dedicated kernel PE that exercises the
 * "final decision of whether an operation is allowed" (Sec. 3).
 *
 * The kernel receives system calls as DTU messages, manages VPEs and
 * their capability tables, allocates PEs and DRAM, configures endpoints
 * remotely (NoC-level isolation), registers services and arbitrates
 * capability exchanges with them. No application code ever runs on the
 * kernel PE, and the kernel never runs on application PEs.
 */

#ifndef M3_KERNEL_KERNEL_HH
#define M3_KERNEL_KERNEL_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/cost_model.hh"
#include "base/errors.hh"
#include "base/marshal.hh"
#include "kernel/caps.hh"
#include "kernel/kif.hh"
#include "pe/platform.hh"

namespace m3
{
namespace kernel
{

/** Kernel-side state of one VPE (Sec. 4.5.5). */
struct Vpe
{
    enum class State
    {
        Boot,     //!< created, not yet started
        Running,  //!< program started
        Exited,   //!< program called exit (or was revoked)
    };

    Vpe(vpeid_t id, std::string name, peid_t pe)
        : id(id), name(std::move(name)), pe(pe), caps(id)
    {
    }

    vpeid_t id;
    std::string name;
    peid_t pe;
    State state = State::Boot;
    int exitCode = 0;
    CapTable caps;

    // --- time multiplexing (kernel-driven context switching) ----------
    /**
     * Non-zero iff the VPE participates in time multiplexing: its stable
     * DTU generation, stamped into every send EP that targets it so
     * messages for a descheduled VPE are buffered rather than delivered
     * to whoever currently owns the PE.
     */
    uint32_t dtuGen = 0;
    /** DRAM context-save area for the SPM contents (0 = none yet). */
    goff_t csa = 0;
    /**
     * Live SPM bytes recorded at the last spill (the bump allocator's
     * high-water mark, 64-byte aligned). The matching fill restores only
     * this prefix: everything software can address comes from the
     * allocator, so the mark bounds the bytes worth moving. 0 = no spill
     * yet (first fill of a loader-written image restores everything).
     */
    uint64_t ctxBytes = 0;
    /** The program has been started (start command sent) at least once. */
    bool started = false;
    /**
     * The DTU context while descheduled. Also holds the kernel-built
     * initial context (syscall EPs + generation) before the first run.
     */
    std::unique_ptr<Dtu::CtxState> ctx;

    /** Cycle of the last syscall/heartbeat (watchdog liveness). */
    Cycles lastActivity = 0;

    /**
     * Number of syscalls whose reply the kernel is deferring for this
     * VPE (VpeWait, queued CreateVpe, deferred Activate, session
     * calls). Such a VPE is blocked *in the kernel* and cannot
     * heartbeat; the watchdog must not count that as unresponsiveness.
     */
    uint32_t pendingReplies = 0;

    /** One deferred VpeWait reply. A peer kernel waiting on behalf of a
     *  remote parent uses ep == KEP_IK and caller == INVALID_VPE. */
    struct Waiter
    {
        epid_t ep;
        uint32_t slot;     //!< kernel ring slot to reply to
        vpeid_t caller;    //!< the waiting VPE
    };
    std::vector<Waiter> waiters;
};

/** Statistics for tests and the scalability analysis. */
struct KernelStats
{
    uint64_t syscalls = 0;
    uint64_t vpesCreated = 0;
    uint64_t capsDelegated = 0;
    uint64_t capsRevoked = 0;
    uint64_t serviceRequests = 0;
    uint64_t heartbeats = 0;
    uint64_t watchdogReclaims = 0;
    uint64_t ctxSwitches = 0;  //!< VPE suspends (time multiplexing)
    uint64_t yields = 0;       //!< cooperative Yield syscalls
    uint64_t ikRequestsSent = 0;     //!< inter-kernel requests issued
    uint64_t ikRequestsHandled = 0;  //!< inter-kernel requests served
    uint64_t remoteVpesPlaced = 0;   //!< VPEs created for peer kernels
    uint64_t migrationsStarted = 0;   //!< live migrations begun
    uint64_t migrationsCompleted = 0; //!< live migrations finished
    uint64_t migrationsAborted = 0;   //!< evacuations with no target PE
    uint64_t failovers = 0;           //!< VPEs restarted after PE death
    uint64_t drains = 0;              //!< PEs drained
    uint64_t pesLeased = 0;           //!< PEs lent to peer kernels
};

/**
 * The kernel. Construct it, queue boot programs, call start(), then run
 * the simulator; everything else happens via syscall messages.
 */
class Kernel
{
  public:
    /** A capability to install in a boot VPE's table before start. */
    struct BootCap
    {
        capsel_t sel;
        uint32_t node;
        goff_t off;
        uint64_t size;
        uint8_t perms;
    };

    /** A program the kernel loads during boot (services, the root app). */
    struct BootProgram
    {
        peid_t pe;
        std::string name;
        std::function<void(vpeid_t)> main;
        std::vector<BootCap> caps;
    };

    /**
     * @param platform the platform; the kernel claims @p kernelPe
     * @param kernelPe PE the kernel itself runs on
     * @param dramAllocStart first DRAM byte the kernel may hand out
     *        (below lies e.g. the filesystem image)
     */
    /**
     * @param dramAllocEnd one past the last DRAM byte the kernel may
     *        hand out (0 = the whole DRAM). Multi-kernel machines split
     *        the dynamic region so the instances never collide.
     */
    Kernel(Platform &platform, peid_t kernelPe, goff_t dramAllocStart,
           goff_t dramAllocEnd = 0);

    /** Multi-kernel: the static description of one kernel domain. */
    struct DomainCfg
    {
        uint32_t id = 0;            //!< this kernel's domain
        uint32_t count = 1;         //!< total kernel domains
        /** Kernel PE of every domain (indexed by domain id). */
        std::vector<peid_t> kernelPes;
        /** PEs this kernel owns (administers); others are hands-off. */
        std::vector<bool> ownedPes;
        /** Owned non-kernel PEs per domain (remote-placement estimates). */
        std::vector<uint32_t> ownedCounts;
    };

    /**
     * Turn this instance into one domain of a multi-kernel machine
     * (Sec. 7's "multiple kernel instances"). Call before start(); a
     * never-configured kernel behaves exactly like the single-kernel
     * original.
     */
    void setDomain(DomainCfg cfg);

    /**
     * Opt-in policy (Sec. 3.3's waiting-for-a-reusable-core idea): when
     * no suitable PE is free, defer the CreateVpe reply until one is
     * released instead of failing with NoFreePe.
     */
    void setQueueVpes(bool enable) { queueVpes = enable; }

    /**
     * Enable the watchdog: a Running VPE that issues no syscall or
     * heartbeat for @p deadline cycles is considered dead (its core
     * crashed or its messages are being lost) and its PE is reclaimed:
     * core killed, capabilities revoked, DTU reset, waiters answered
     * with exit code -2. The kernel checks every @p period cycles.
     * Call before start(); disabled by default (zero overhead).
     */
    void
    enableWatchdog(Cycles deadline, Cycles period)
    {
        watchdogDeadline = deadline;
        watchdogPeriod = period;
    }

    /**
     * Enable time multiplexing of VPEs on PEs (more VPEs than PEs): when
     * no suitable PE is free, CreateVpe co-schedules the new VPE onto an
     * already multiplexed PE, and the kernel switches the residents
     * round-robin every @p slice cycles (plus on Yield syscalls). A
     * switch drains the DTU, fetches its context, and spills the SPM to
     * a per-VPE context-save area in DRAM through the kernel's
     * privileged memory EPs. Call before start(); disabled by default
     * (zero behavioural change).
     */
    void enableMultiplexing(Cycles slice) { timeSlice = slice; }

    /** Whether enableMultiplexing() was called. */
    bool multiplexing() const { return timeSlice != 0; }

    /**
     * Enable live migration: VPEs created via CreateVpe get the full
     * context-switch machinery (a DTU generation, a context-save area)
     * even at single occupancy, so the kernel can move a running VPE to
     * another PE at any time: drain + fetch the source DTU, ship the SPM
     * via real DTU transfers, re-home capabilities, restore on the
     * destination. Call before start(); disabled by default (the
     * default configuration stays cycle-identical to a machine without
     * this feature).
     */
    void enableMigration() { migration = true; }

    /** Whether enableMigration() was called. */
    bool migrationEnabled() const { return migration; }

    /**
     * Enable fault-driven failover (requires migration): when the
     * watchdog finds an expired VPE whose *core* is dead (vs. a live
     * core that merely stopped heartbeating), the kernel restarts the
     * VPE from its retained entry program on a replacement PE instead
     * of reclaiming it with kif::EXIT_PE_DEAD.
     */
    void enableFailover() { failover = true; }

    /**
     * Schedule a drain of @p pe at cycle @p at: the kernel evacuates
     * every running VPE off the PE by live migration and refuses new
     * placements on it from the moment the drain starts. The intended
     * use is a rolling restart: drain shortly before a planned (or
     * injected) PE kill so no work is lost. Call before start().
     */
    void
    scheduleDrain(peid_t pe, Cycles at)
    {
        pendingDrains.push_back({pe, at});
    }

    /** True once @p pe was drained (no new placements allowed). */
    bool
    drained(peid_t p) const
    {
        return p < drainedPes.size() && drainedPes[p];
    }

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Queue a program to be loaded at boot. Call before start(). */
    void addBootProgram(BootProgram prog);

    /**
     * Register a striped service group: OpenSess on @p name resolves to
     * members[arg % members.size()] (distfs stripe fan-out). Members may
     * live in other domains; PR 5 delegation handles those opens.
     * @p replicas is advertised through QuerySrv so every client mounts
     * the group with the same mirroring factor (distfs replication).
     */
    void
    addServiceGroup(const std::string &name,
                    std::vector<std::string> members,
                    uint32_t replicas = 1)
    {
        serviceGroups[name] = ServiceGroup{std::move(members), replicas};
    }

    /** Install the kernel program on its PE and start it. */
    void start();

    const KernelStats &stats() const { return kstats; }

    /** Introspection for tests: VPE state by id (nullptr if unknown). */
    const Vpe *vpe(vpeid_t id) const;

    /** Kernel-internal endpoint assignment. */
    static constexpr epid_t KEP_SYSC = 0;  //!< syscall receive ring
    static constexpr epid_t KEP_SRV_REPLY = 1; //!< service replies
    static constexpr epid_t KEP_SRV_SEND = 2;  //!< scratch send EP
    static constexpr epid_t KEP_CTX_SPM = 3;   //!< ctx switch: app SPM
    static constexpr epid_t KEP_CTX_CSA = 4;   //!< ctx switch: DRAM CSA
    static constexpr epid_t KEP_IK = 5;        //!< inter-kernel requests
    static constexpr epid_t KEP_IK_REPLY = 6;  //!< inter-kernel replies
    static constexpr epid_t KEP_IK_SEND = 7;   //!< scratch send EP (IK)

  private:
    /** The kernel program's main loop. */
    void run();

    void bootSetup();

    // --- syscall dispatch --------------------------------------------
    void handleSyscall(uint32_t slot);
    void reply(uint32_t slot, const void *msg, uint32_t size);
    void replyError(uint32_t slot, Error e);
    void replyOnEp(epid_t ep, uint32_t slot, const void *msg,
                   uint32_t size);
    void replyOnEpError(uint32_t slot, Error e);

    void sysNoop(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysCreateVpe(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysVpeStart(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysVpeWait(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysVpeExit(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysCreateRgate(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysCreateSgate(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysReqMem(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysDeriveMem(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysActivate(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysExchange(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysCreateSrv(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysOpenSess(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysExchangeSess(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysRevoke(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysHeartbeat(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysYield(Vpe &vpe, Unmarshaller &um, uint32_t slot);
    void sysQuerySrv(Vpe &vpe, Unmarshaller &um, uint32_t slot);

    /** Fail every pending request against @p serv with PeerGone (the
     *  service was revoked; its server can never answer). */
    void failPendingSrvReqs(ServObj &serv);

    // --- service interaction -----------------------------------------
    void handleServiceReply(uint32_t slot);
    uint64_t sendToService(ServObj &serv, const void *msg, uint32_t size);
    void dispatchToService(ServObj &serv, const uint8_t *msg,
                           uint32_t size, uint64_t id);

    // --- inter-kernel protocol (multi-kernel machines only) ----------
    /** Pending request to a peer kernel; continuation state. */
    struct PendingIkReq
    {
        kif::IkOp op;
        uint32_t domain = 0;        //!< the peer the request went to
        vpeid_t caller = INVALID_VPE;
        uint32_t slot = 0;          //!< caller's syscall ring slot
        // CreateVpe: the original request plus remaining candidates.
        capsel_t dstSel = 0;
        capsel_t mgateSel = 0;
        std::string name;
        kif::PeTypeReq type = kif::PeTypeReq::General;
        std::string attr;
        std::vector<uint32_t> candidates;  //!< remaining domains to try
        // OpenSess / SessExchange: cap installation at the caller.
        uint32_t dstStart = 0;
        uint32_t count = 0;
        uint64_t arg = 0;
        std::string servName;
        uint32_t servDomain = 0;
        // PeLease: the VPE waiting to migrate onto the leased PE.
        vpeid_t migrVpe = INVALID_VPE;
    };

    bool multiKernel() const { return domain.count > 1; }
    /** Send an IK request to @p peer; returns the request id. */
    uint64_t sendIk(uint32_t peer, const void *msg, uint32_t size,
                    PendingIkReq req);
    void dispatchIk(uint32_t peer, const uint8_t *msg, uint32_t size,
                    uint64_t id);
    void handleIkRequest(uint32_t slot);
    void handleIkReply(uint32_t slot);
    void ikReply(uint32_t slot, const void *msg, uint32_t size);
    void ikReplyError(uint32_t slot, Error e);

    void ikAnnounceSrv(Unmarshaller &um, uint32_t slot);
    void ikCreateVpe(Unmarshaller &um, uint32_t slot);
    void ikVpeStart(Unmarshaller &um, uint32_t slot);
    void ikVpeWait(Unmarshaller &um, uint32_t slot);
    void ikOpenSess(Unmarshaller &um, uint32_t slot);
    void ikSessExchange(Unmarshaller &um, uint32_t slot);
    void ikDelegateCaps(Unmarshaller &um, uint32_t slot);
    void ikPeLease(Unmarshaller &um, uint32_t slot);
    void ikPeRelease(Unmarshaller &um, uint32_t slot);
    void ikCapsRehome(Unmarshaller &um, uint32_t slot);

    /** Free owned PEs right now (IK CreateVpe replies report this). */
    uint32_t freeOwnedPes() const;
    /** Forward a CreateVpe to the best remote domain; false = none left. */
    bool tryRemoteCreateVpe(Vpe &caller, PendingIkReq req);
    /** Serialize one capability for cross-domain transport. */
    Error serializeCap(Marshaller &m, Capability &cap);
    /** Install a serialized capability into @p target at @p sel. */
    Error installSerializedCap(Unmarshaller &um, Vpe &target, capsel_t sel);
    /** Announce a newly registered service to all peer kernels. */
    void announceService(const std::string &name);

    // --- helpers -------------------------------------------------------
    Vpe *vpeById(vpeid_t id);
    Vpe &createVpeObj(const std::string &name, peid_t pe);
    void configureVpeEps(Vpe &vpe);
    Error doActivate(Vpe &vpe, Capability *cap, epid_t ep,
                     spmaddr_t bufAddr);
    void finishVpe(Vpe &vpe, int exitCode);
    void revokeRec(Capability *cap);
    void checkWatchdog();
    void reclaimVpe(Vpe &vpe, int exitCode);
    /** Any Running VPE the watchdog would observe (non-service)? */
    bool anyWatchedVpe() const;
    /** Did @p id register a service? Service owners are not watched. */
    bool isServiceOwner(vpeid_t id) const;

    /** Bookkeeping for deferred syscall replies (watchdog liveness). */
    void deferReply(Vpe &caller) { caller.pendingReplies++; }
    void deferredReplySent(vpeid_t caller);
    void flushPendingActivations(RGateObj *rgate);

    uint32_t nodeOf(const Vpe &vpe) const;
    Dtu &kdtu();
    void compute(Cycles c);

    Platform &platform;
    peid_t kernelPe;
    const M3Costs &costs;

    // DRAM management: a bump allocator over the dynamic region.
    goff_t dramNext;
    goff_t dramEnd;

    // VPE and PE management.
    std::map<vpeid_t, std::unique_ptr<Vpe>> vpes;
    vpeid_t nextVpe = 1;
    std::vector<bool> peBusy;

    // Multi-kernel domain state (count == 1: plain single kernel).
    DomainCfg domain;
    /** Estimated free PEs per peer domain (self-correcting via replies). */
    std::vector<uint32_t> freeEst;
    /** Per-peer software credits for the IK request channel. */
    std::vector<uint32_t> ikCredits;
    /** Requests queued while a peer's credits are exhausted. */
    std::vector<std::vector<std::pair<uint64_t, std::vector<uint8_t>>>>
        ikSendQueue;
    /** Services registered at peer kernels: name -> owning domain. */
    std::map<std::string, uint32_t> remoteServices;
    std::unordered_map<uint64_t, PendingIkReq> pendingIkReqs;
    uint64_t nextIkReqId = 1;

    // Service registry.
    std::map<std::string, std::shared_ptr<ServObj>> services;
    /** Striped service groups (distfs): a virtual name that fans out
     *  OpenSess across its member services, keyed by the session arg,
     *  plus the replication factor advertised to mounting clients. */
    struct ServiceGroup
    {
        std::vector<std::string> members;
        uint32_t replicas = 1;
    };
    std::map<std::string, ServiceGroup> serviceGroups;
    uint64_t nextSessIdent = 1;

    // Deferred syscall replies.
    struct PendingAct
    {
        vpeid_t vpe;
        capsel_t capSel;
        epid_t ep;
        uint32_t slot;  //!< syscall ring slot to reply to
    };
    std::map<RGateObj *, std::vector<PendingAct>> pendingActs;

    struct PendingVpeReq
    {
        vpeid_t caller;
        uint32_t slot;  //!< syscall ring slot to reply to
        capsel_t dstSel;
        capsel_t mgateSel;
        std::string name;
        kif::PeTypeReq type;
        std::string attr;
    };
    std::vector<PendingVpeReq> pendingVpes;
    bool queueVpes = false;

    // Watchdog configuration (0 = disabled).
    Cycles watchdogDeadline = 0;
    Cycles watchdogPeriod = 0;

    // --- time multiplexing (0 = disabled) ------------------------------
    /** Per-PE schedule; only multiplexed PEs have an entry. */
    struct PeSched
    {
        vpeid_t resident = INVALID_VPE;
        std::vector<vpeid_t> runQueue;  //!< descheduled runnable VPEs
        Cycles residentSince = 0;
        uint32_t assigned = 0;  //!< live VPEs placed on this PE
    };
    std::map<peid_t, PeSched> scheds;
    Cycles timeSlice = 0;
    /**
     * Kernel-assigned VPE generations start high above the hardware
     * reset counter (which starts at 1 and bumps per reset), so a
     * reused PE can never collide with a multiplexed VPE's generation.
     */
    uint32_t nextDtuGen = 1u << 20;
    /** Kernel SPM staging buffer for SPM spill/fill transfers. */
    spmaddr_t ctxStage = 0;
    static constexpr uint32_t CTX_CHUNK = 16 * KiB;

    /** Is the VPE currently the one owning its PE (or not multiplexed)? */
    bool isResident(const Vpe &v) const;
    /** The generation to stamp into sends targeting VPE @p id (0 = any). */
    uint32_t vpeGenOf(vpeid_t id);
    /** Build the initial context: syscall EPs + the VPE's generation. */
    void buildInitialCtx(Vpe &v);
    /** Push @p v's context to its (resident) DTU and wait for the ack. */
    void applyCtx(Vpe &v);
    /** The VPE's DRAM context-save area (allocated on first use). */
    goff_t csaOf(Vpe &v);
    /** Copy the VPE's SPM to its CSA, chunked through the staging buf. */
    void spillSpm(Vpe &v);
    /** The reverse: CSA to SPM (also loads a first-run image). */
    void fillSpm(Vpe &v);
    /** Deschedule the resident VPE @p v (park, drain, fetch, spill). */
    void suspendVpe(Vpe &v);
    /** Make @p v resident (fill, restore, unpark/start). */
    void resumeVpe(Vpe &v);
    /** Preempt expired slices and fill idle multiplexed PEs. */
    void checkSchedule();
    /** Resume the next runnable VPE of @p s, if any. */
    void scheduleNext(peid_t pe, PeSched &s);
    /** Any multiplexed PE with a VPE waiting for its turn? */
    bool schedulePending() const;

    /** Try to satisfy @p req now. @return false if no PE is free. */
    bool tryCreateVpe(Vpe &caller, const PendingVpeReq &req);
    void flushPendingVpes();

    // --- live migration, drain and failover ----------------------------
    /**
     * Move the running VPE @p v to PE @p dst: park its software, drain
     * and fetch the source DTU, spill the SPM, re-home its gates and
     * buffered syscall replies, restore everything on @p dst. Messages
     * that raced the move are discarded at the old DTU; senders recover
     * through the generation filter and the gate retry path.
     */
    Error migrateVpe(Vpe &v, peid_t dst);
    /** Send a PeLease to the next candidate peer (false: none left). */
    bool requestPeLease(Vpe &v, PendingIkReq req);
    /** Evacuate every running VPE off @p pe; refuse new placements. */
    void drainPe(peid_t pe);
    /** Fire due drains (run loop). */
    void checkDrains();
    /** Cycles until the next scheduled drain (0 = none pending). */
    Cycles nextDrainDelay(Cycles now) const;
    /** One evacuation of the drain of @p pe finished (or was aborted). */
    void finishDrainStep(peid_t pe);
    /** Restart @p v from its retained program on a replacement PE. */
    void failoverVpe(Vpe &v);
    /** A free, matching, non-drained PE for @p v (INVALID_PE if none). */
    peid_t pickMigrationTarget(const Vpe &v) const;
    /** Point @p v's own activated receive gates at @p newNode. */
    void rehomeVpeGates(Vpe &v, uint32_t newNode);
    /** Tell peer kernels that the gates of generation @p gen moved. */
    void broadcastCapsRehome(uint32_t oldNode, uint32_t gen,
                             uint32_t newNode);
    /** Remove @p v from its PE's schedule without releasing the PE. */
    void unscheduleVpe(Vpe &v);

    bool migration = false;
    bool failover = false;
    /** Drained (or dead) PEs: never considered for placement again. */
    std::vector<bool> drainedPes;
    /** A drain request armed before start(). */
    struct PendingDrain
    {
        peid_t pe;
        Cycles at;
    };
    std::vector<PendingDrain> pendingDrains;
    /** A drain in progress: start cycle + evacuations still in flight. */
    struct DrainRun
    {
        Cycles started = 0;
        uint32_t outstanding = 0;
    };
    std::map<peid_t, DrainRun> activeDrains;
    /** PEs borrowed from peer kernels (pe -> lender domain). */
    std::map<peid_t, uint32_t> borrowedPes;

    struct PendingSrvReq
    {
        /** Remote* variants answer an IK slot for a peer kernel's
         *  client instead of a local syscall slot. */
        enum class Kind { Open, Obtain, Delegate, RemoteOpen,
                          RemoteObtain };
        Kind kind;
        vpeid_t caller;
        uint32_t slot;        //!< syscall (or IK) ring slot to reply to
        capsel_t dstSel = 0;  //!< OpenSess: where the session cap goes
        std::shared_ptr<ServObj> serv;
        std::shared_ptr<SessObj> sess;
        uint32_t dstStart = 0;  //!< Obtain: caller cap range
        uint32_t count = 0;
        std::vector<capsel_t> srcSels;  //!< Delegate: caller's caps
    };
    std::unordered_map<uint64_t, PendingSrvReq> pendingSrvReqs;
    uint64_t nextSrvReqId = 1;

    // Programs queued for loading at boot.
    std::vector<BootProgram> bootQueue;

    // SPM staging areas (allocated in bootSetup).
    spmaddr_t syscRing = 0;
    spmaddr_t srvRing = 0;
    spmaddr_t stage = 0;
    spmaddr_t srvStage = 0;
    // Inter-kernel rings/staging (multi-kernel machines only).
    spmaddr_t ikRing = 0;
    spmaddr_t ikReplyRing = 0;
    spmaddr_t ikStage = 0;

    KernelStats kstats;
};

} // namespace kernel
} // namespace m3

#endif // M3_KERNEL_KERNEL_HH
