/**
 * @file
 * Capabilities and the kernel objects they refer to (Sec. 4.5.3).
 *
 * A capability is a pair of a kernel object and permissions for it; the
 * kernel maintains a table of capabilities per VPE. Delegation creates a
 * child capability in the target VPE's table; the resulting tree (the
 * "mapping database" of the L4 lineage) supports recursive revocation.
 */

#ifndef M3_KERNEL_CAPS_HH
#define M3_KERNEL_CAPS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/errors.hh"
#include "base/types.hh"

namespace m3
{
namespace kernel
{

/** Kinds of kernel objects capabilities can refer to. */
enum class ObjType : uint8_t
{
    RGate,   //!< a receive gate (ringbuffer description)
    SGate,   //!< a send gate towards a receive gate
    Mem,     //!< a region of some memory (DRAM or a PE's SPM)
    Vpe,     //!< a virtual PE
    Serv,    //!< a registered service
    Sess,    //!< a session with a service
};

/** Base of all kernel objects; refcounted via shared_ptr. */
struct KObject
{
    explicit KObject(ObjType type) : type(type) {}
    virtual ~KObject() = default;

    ObjType type;
};

/** A receive gate: the kernel-side view of a receive ringbuffer. */
struct RGateObj : KObject
{
    RGateObj(vpeid_t owner, uint32_t slots, uint32_t slotSize)
        : KObject(ObjType::RGate), owner(owner), slots(slots),
          slotSize(slotSize)
    {
    }

    vpeid_t owner;
    uint32_t slots;
    uint32_t slotSize;

    /** Set once the owner activated the gate on an endpoint. */
    bool activated = false;
    uint32_t node = 0;
    epid_t ep = INVALID_EP;

    /**
     * Multi-kernel: a shadow of a gate owned by another kernel domain.
     * The owner VPE is unknown locally, so the serialized generation of
     * the remote owner is carried along for send-EP configuration.
     */
    uint32_t fixedGen = 0;
};

/** A send gate: the right to send to a receive gate with a given label. */
struct SGateObj : KObject
{
    SGateObj(std::shared_ptr<RGateObj> rgate, label_t label,
             uint32_t credits)
        : KObject(ObjType::SGate), rgate(std::move(rgate)), label(label),
          credits(credits)
    {
    }

    std::shared_ptr<RGateObj> rgate;
    label_t label;
    uint32_t credits;
};

/** A memory region on some NoC node. */
struct MemObj : KObject
{
    MemObj(uint32_t node, goff_t off, uint64_t size, uint8_t perms)
        : KObject(ObjType::Mem), node(node), off(off), size(size),
          perms(perms)
    {
    }

    uint32_t node;
    goff_t off;
    uint64_t size;
    uint8_t perms;
};

/** A VPE reference (the VPE state itself lives in the kernel). */
struct VpeRefObj : KObject
{
    explicit VpeRefObj(vpeid_t vpe) : KObject(ObjType::Vpe), vpe(vpe) {}

    vpeid_t vpe;
};

/** A registered service: name plus the kernel's channel to it. */
struct ServObj : KObject
{
    ServObj(std::string name, vpeid_t owner,
            std::shared_ptr<RGateObj> rgate)
        : KObject(ObjType::Serv), name(std::move(name)), owner(owner),
          rgate(std::move(rgate))
    {
    }

    std::string name;
    vpeid_t owner;
    std::shared_ptr<RGateObj> rgate;

    /**
     * Credits of the kernel's channel to the service (created at
     * registration, Sec. 4.5.3). Bounding the kernel's in-flight
     * requests keeps the service's ring from overflowing; excess
     * requests queue in the kernel.
     */
    uint32_t kernelCredits = 16;
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> sendQueue;

    /**
     * Set when the registration was revoked (server reclaimed or
     * exited). Sessions keep shared_ptrs to the ServObj; exchanges
     * against a dead service fail with PeerGone instead of deferring
     * against a server that can never answer.
     */
    bool dead = false;
};

/** A session with a service, identified by a service-chosen word. */
struct SessObj : KObject
{
    SessObj(std::shared_ptr<ServObj> serv, uint64_t ident)
        : KObject(ObjType::Sess), serv(std::move(serv)), ident(ident)
    {
    }

    /** A session with a service living in another kernel domain. */
    SessObj(std::string remoteName, uint32_t remoteDomain, uint64_t ident)
        : KObject(ObjType::Sess), ident(ident),
          remoteName(std::move(remoteName)), remoteDomain(remoteDomain)
    {
    }

    bool remote() const { return serv == nullptr; }

    std::shared_ptr<ServObj> serv;  //!< nullptr for remote sessions
    uint64_t ident;

    /** Multi-kernel: service name and owning domain of a remote session. */
    std::string remoteName;
    uint32_t remoteDomain = ~0u;
};

/**
 * One entry of a VPE's capability table. Parent/children pointers span
 * tables and record every delegation for recursive revoke.
 */
struct Capability
{
    Capability(vpeid_t owner, capsel_t sel, std::shared_ptr<KObject> obj)
        : owner(owner), sel(sel), obj(std::move(obj))
    {
    }

    vpeid_t owner;
    capsel_t sel;
    std::shared_ptr<KObject> obj;

    Capability *parent = nullptr;
    std::vector<Capability *> children;

    /** Endpoint the owner activated this capability on (if any). */
    epid_t activatedEp = INVALID_EP;
};

/** The per-VPE capability table (Sec. 4.5.3). */
class CapTable
{
  public:
    explicit CapTable(vpeid_t vpe) : vpe(vpe) {}

    CapTable(const CapTable &) = delete;
    CapTable &operator=(const CapTable &) = delete;

    /** Look up a capability; nullptr if the selector is empty. */
    Capability *
    get(capsel_t sel)
    {
        auto it = table.find(sel);
        return it == table.end() ? nullptr : it->second.get();
    }

    /** Look up, additionally requiring the object type. */
    Capability *
    get(capsel_t sel, ObjType type)
    {
        Capability *c = get(sel);
        return (c && c->obj->type == type) ? c : nullptr;
    }

    /** Create a capability at @p sel. Fails if the selector is in use. */
    Capability *
    put(capsel_t sel, std::shared_ptr<KObject> obj,
        Capability *parent = nullptr)
    {
        if (table.count(sel))
            return nullptr;
        auto cap = std::make_unique<Capability>(vpe, sel, std::move(obj));
        Capability *raw = cap.get();
        if (parent) {
            raw->parent = parent;
            parent->children.push_back(raw);
        }
        table[sel] = std::move(cap);
        return raw;
    }

    /**
     * Remove the entry at @p sel (unlinks it from its parent). The
     * caller is responsible for having handled the children (revoke).
     */
    void
    remove(capsel_t sel)
    {
        auto it = table.find(sel);
        if (it == table.end())
            return;
        Capability *c = it->second.get();
        if (c->parent) {
            auto &sibs = c->parent->children;
            for (auto sit = sibs.begin(); sit != sibs.end(); ++sit) {
                if (*sit == c) {
                    sibs.erase(sit);
                    break;
                }
            }
        }
        table.erase(it);
    }

    /** Number of capabilities in the table. */
    size_t size() const { return table.size(); }

    /**
     * Snapshot of the selectors in use. Used by revoke-all paths (the
     * watchdog's PE reclaim), which mutate the table while walking it.
     */
    std::vector<capsel_t>
    sels() const
    {
        std::vector<capsel_t> out;
        out.reserve(table.size());
        for (const auto &[sel, cap] : table)
            out.push_back(sel);
        return out;
    }

    vpeid_t vpeId() const { return vpe; }

  private:
    vpeid_t vpe;
    std::map<capsel_t, std::unique_ptr<Capability>> table;
};

} // namespace kernel
} // namespace m3

#endif // M3_KERNEL_CAPS_HH
