/**
 * @file
 * The tmpfs of the Linux baseline (Sec. 5.4 compares m3fs against it):
 * an in-memory filesystem with 4 KiB pages. This class is functional
 * only — all cycle costs are charged by the Process syscall layer.
 */

#ifndef M3_LINUXSIM_TMPFS_HH
#define M3_LINUXSIM_TMPFS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/errors.hh"
#include "base/types.hh"

namespace m3
{
namespace lx
{

/** tmpfs page size. */
static constexpr size_t PAGE_SIZE = 4 * KiB;

/** An in-memory inode: a file of pages or a directory of entries. */
struct TmpNode
{
    TmpNode(uint32_t ino, bool dir) : ino(ino), isDir(dir) {}

    uint32_t ino;
    bool isDir;
    uint32_t links = 1;
    uint64_t size = 0;
    /** File pages; entries are allocated (and zeroed) on first touch. */
    std::vector<std::unique_ptr<uint8_t[]>> pages;
    /** Directory entries. */
    std::map<std::string, std::shared_ptr<TmpNode>> entries;

    /** Page @p idx, allocated on demand. @return (page, wasFresh). */
    std::pair<uint8_t *, bool>
    page(size_t idx)
    {
        bool fresh = false;
        if (idx >= pages.size())
            pages.resize(idx + 1);
        if (!pages[idx]) {
            pages[idx] = std::make_unique<uint8_t[]>(PAGE_SIZE);
            std::fill_n(pages[idx].get(), PAGE_SIZE, 0);
            fresh = true;
        }
        return {pages[idx].get(), fresh};
    }
};

/** Result of a path walk. */
struct TmpResolve
{
    std::shared_ptr<TmpNode> node;    //!< nullptr if missing
    std::shared_ptr<TmpNode> parent;  //!< nullptr if path invalid
    std::string leaf;
    uint32_t components = 0;  //!< walked components (for costing)
};

/** The filesystem tree. */
class Tmpfs
{
  public:
    Tmpfs() : root(std::make_shared<TmpNode>(nextIno++, true)) {}

    TmpResolve
    resolve(const std::string &path)
    {
        TmpResolve res;
        std::shared_ptr<TmpNode> cur = root;
        std::shared_ptr<TmpNode> parent;
        std::string leaf;
        size_t pos = 0;
        while (pos < path.size()) {
            size_t next = path.find('/', pos);
            if (next == std::string::npos)
                next = path.size();
            if (next > pos) {
                std::string comp = path.substr(pos, next - pos);
                res.components++;
                if (!cur || !cur->isDir) {
                    res.parent = nullptr;
                    return res;
                }
                parent = cur;
                leaf = comp;
                auto it = cur->entries.find(comp);
                cur = it == cur->entries.end() ? nullptr : it->second;
            }
            pos = next + 1;
        }
        res.node = cur;
        res.parent = parent ? parent : (cur == root ? nullptr : root);
        if (res.components == 0)
            res.parent = nullptr;
        res.leaf = leaf;
        return res;
    }

    /** Create a file or directory at @p path (parent must exist). */
    std::shared_ptr<TmpNode>
    create(const std::string &path, bool dir, Error &err)
    {
        TmpResolve r = resolve(path);
        if (r.node) {
            err = Error::FileExists;
            return nullptr;
        }
        std::shared_ptr<TmpNode> parent = r.parent;
        if (!parent && r.components == 1)
            parent = root;
        if (!parent) {
            err = Error::NoSuchFile;
            return nullptr;
        }
        auto node = std::make_shared<TmpNode>(nextIno++, dir);
        parent->entries[r.leaf] = node;
        err = Error::None;
        return node;
    }

    Error
    unlink(const std::string &path)
    {
        TmpResolve r = resolve(path);
        if (!r.node || !r.parent)
            return Error::NoSuchFile;
        if (r.node->isDir && !r.node->entries.empty())
            return Error::DirNotEmpty;
        r.parent->entries.erase(r.leaf);
        r.node->links--;
        return Error::None;
    }

    Error
    link(const std::string &oldPath, const std::string &newPath)
    {
        TmpResolve ro = resolve(oldPath);
        if (!ro.node)
            return Error::NoSuchFile;
        TmpResolve rn = resolve(newPath);
        if (rn.node)
            return Error::FileExists;
        std::shared_ptr<TmpNode> parent = rn.parent ? rn.parent : root;
        if (rn.components == 0)
            return Error::NoSuchFile;
        parent->entries[rn.leaf] = ro.node;
        ro.node->links++;
        return Error::None;
    }

    Error
    rename(const std::string &oldPath, const std::string &newPath)
    {
        TmpResolve ro = resolve(oldPath);
        if (!ro.node || !ro.parent)
            return Error::NoSuchFile;
        TmpResolve rn = resolve(newPath);
        if (rn.node)
            return Error::FileExists;
        std::shared_ptr<TmpNode> parent = rn.parent ? rn.parent : root;
        if (rn.components == 0)
            return Error::NoSuchFile;
        parent->entries[rn.leaf] = ro.node;
        ro.parent->entries.erase(ro.leaf);
        return Error::None;
    }

    std::shared_ptr<TmpNode> rootNode() { return root; }

  private:
    uint32_t nextIno = 1;
    std::shared_ptr<TmpNode> root;
};

} // namespace lx
} // namespace m3

#endif // M3_LINUXSIM_TMPFS_HH
