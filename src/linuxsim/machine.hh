/**
 * @file
 * The Linux baseline machine (Sec. 5.1): one time-shared general-purpose
 * core running a traditional monolithic kernel. Processes are fibers
 * scheduled one-at-a-time (mode switches, context switches and page-cache
 * work are charged from the calibrated cost table); tmpfs and pipes
 * carry real data so the same workloads run on both systems.
 *
 * Two cache modes reproduce the paper's Lx / Lx-$ bars: with cache
 * misses, memcpy runs at the miss-limited rate (no cache-line prefetcher
 * on Xtensa, Sec. 5.2); in the all-hit mode at the pipeline-limited rate.
 */

#ifndef M3_LINUXSIM_MACHINE_HH
#define M3_LINUXSIM_MACHINE_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/cost_model.hh"
#include "linuxsim/tmpfs.hh"
#include "sim/simulator.hh"

namespace m3
{
namespace lx
{

/** Configuration of the baseline. */
struct LinuxConfig
{
    LinuxCosts costs = LinuxCosts::xtensa();
    ComputeCosts compute;
    /** Lx-$ mode: every memory access hits in the cache (Sec. 5.1). */
    bool cacheAlwaysHit = false;
    /** Kernel pipe buffer capacity. */
    size_t pipeBufBytes = 64 * KiB;
};

class Machine;
class Process;

/** A kernel pipe: bounded byte buffer plus wait queues. */
struct PipeBuf
{
    std::deque<uint8_t> data;
    size_t capacity;
    uint32_t readers = 0;
    uint32_t writers = 0;
    std::vector<Process *> waitReaders;
    std::vector<Process *> waitWriters;
};

/** An entry of a process's file-descriptor table. */
struct FileDesc
{
    std::shared_ptr<TmpNode> node;  //!< regular file / dir
    std::shared_ptr<PipeBuf> pipe;  //!< or a pipe end
    bool pipeWriteEnd = false;
    uint64_t pos = 0;
    uint32_t flags = 0;
};

/** One Linux process (a fiber with a syscall interface). */
class Process
{
  public:
    Process(Machine &machine, int pid, std::string name);

    int pid() const { return procId; }
    Accounting &accounting();

    // --- syscalls (each charges its calibrated costs) ------------------

    /** A null syscall (the Fig. 3 micro-benchmark). */
    void nullSyscall();

    int open(const std::string &path, uint32_t flags, Error *err = nullptr);
    ssize_t read(int fd, void *buf, size_t len);
    ssize_t write(int fd, const void *buf, size_t len);
    ssize_t lseek(int fd, ssize_t off, int whence);
    int close(int fd);
    Error stat(const std::string &path, uint64_t &size, bool &isDir);
    Error mkdir(const std::string &path);
    Error unlink(const std::string &path);
    Error link(const std::string &oldPath, const std::string &newPath);
    Error rename(const std::string &oldPath, const std::string &newPath);
    Error readdir(const std::string &path,
                  std::vector<std::string> &names);
    ssize_t sendfile(int outFd, int inFd, size_t len);
    Error pipe(int fds[2]);
    void fsync(int fd);

    /** fork + optional exec: start @p main as a child process. */
    int fork(std::function<int(Process &)> main, bool withExec = false);

    /** Wait for the child @p pid to exit; returns its exit code. */
    int waitpid(int pid);

    /** Application computation. */
    void compute(Cycles cycles);

    /** The owning machine. */
    Machine &machine() { return m; }

  private:
    friend class Machine;

    void chargeOs(Cycles c);
    void chargeOsNoTime(Cycles c);
    void chargeXfer(Cycles c);
    void syscallEntry(Cycles extra = 0);
    void chargeThrash(size_t len);
    Cycles copyCost(size_t bytes) const;
    FileDesc *fdGet(int fd);
    int fdAlloc();
    void closeDesc(FileDesc &desc);
    void exitProcess(int code);

    Machine &m;
    int procId;
    std::string name;
    Fiber *fiber = nullptr;
    std::vector<std::optional<FileDesc>> fds;
    bool exited = false;
    int exitCode = 0;
    std::vector<Process *> waiters;
};

/** The machine: one CPU, a run queue, tmpfs. */
class Machine
{
  public:
    explicit Machine(LinuxConfig config);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Create the initial process (no fork cost). */
    Process &spawnInit(const std::string &name,
                       std::function<int(Process &)> main);

    /** Run until the event queue drains. */
    void simulate(Cycles limit = ~Cycles(0));

    /** Engine events executed by simulate() calls so far. */
    uint64_t eventsExecuted() const { return eventsRun; }

    Simulator &simulator() { return sim; }
    Tmpfs &fs() { return tmpfs; }
    const LinuxConfig &config() const { return cfg; }

    /** Merged accounting over all processes (for breakdown bars). */
    Accounting mergedAccounting() const;

    Cycles now() const { return sim.curCycle(); }

  private:
    friend class Process;

    /** Scheduler: make @p p runnable (wakes the CPU if idle). */
    void makeRunnable(Process *p);

    /** Block the calling process until made runnable again. */
    void blockCurrent();

    /** Give up the CPU voluntarily (round robin). */
    void yieldCurrent();

    /** Pick and dispatch the next runnable process. */
    void scheduleNext();

    Process &spawnProcess(const std::string &name,
                          std::function<int(Process &)> main);

    LinuxConfig cfg;
    Simulator sim;
    Tmpfs tmpfs;
    uint64_t eventsRun = 0;

    Process *current = nullptr;
    std::deque<Process *> runQueue;
    std::vector<std::unique_ptr<Process>> processes;
    int nextPid = 1;
};

} // namespace lx
} // namespace m3

#endif // M3_LINUXSIM_MACHINE_HH
