#include "linuxsim/machine.hh"

#include <cstring>

#include "base/logging.hh"

namespace m3
{
namespace lx
{

// ---------------------------------------------------------------------
// Machine / scheduler.
// ---------------------------------------------------------------------

Machine::Machine(LinuxConfig config) : cfg(std::move(config))
{
}

Process &
Machine::spawnProcess(const std::string &name,
                      std::function<int(Process &)> main)
{
    auto proc = std::make_unique<Process>(*this, nextPid++, name);
    Process *p = proc.get();
    processes.push_back(std::move(proc));

    p->fiber = &sim.spawn("lx:" + name, [this, p, main = std::move(main)] {
        // Wait until the scheduler dispatches us.
        while (current != p)
            Fiber::current()->block();
        int rc = main(*p);
        p->exitProcess(rc);
    });
    p->fiber->start();
    return *p;
}

Process &
Machine::spawnInit(const std::string &name,
                   std::function<int(Process &)> main)
{
    Process &p = spawnProcess(name, std::move(main));
    makeRunnable(&p);
    return p;
}

void
Machine::makeRunnable(Process *p)
{
    runQueue.push_back(p);
    if (!current)
        scheduleNext();
}

void
Machine::scheduleNext()
{
    if (runQueue.empty()) {
        current = nullptr;
        return;
    }
    Process *next = runQueue.front();
    runQueue.pop_front();
    // The context switch takes time before the next process runs
    // (Fig. 3/5: part of what M3 avoids by not time-sharing).
    next->chargeOsNoTime(cfg.costs.contextSwitch);
    sim.queue().schedule(cfg.costs.contextSwitch, [this, next] {
        current = next;
        next->fiber->unblock();
    });
}

void
Machine::blockCurrent()
{
    Process *self = current;
    if (!self || Fiber::current() != self->fiber)
        panic("blockCurrent outside the running process");
    current = nullptr;
    scheduleNext();
    while (current != self)
        self->fiber->block();
}

void
Machine::yieldCurrent()
{
    Process *self = current;
    if (runQueue.empty())
        return;
    runQueue.push_back(self);
    blockCurrent();
}

void
Machine::simulate(Cycles limit)
{
    eventsRun += sim.simulate(limit);
}

Accounting
Machine::mergedAccounting() const
{
    Accounting total;
    for (const auto &p : processes)
        total.merge(p->fiber->accounting());
    return total;
}

// ---------------------------------------------------------------------
// Process basics.
// ---------------------------------------------------------------------

Process::Process(Machine &machine, int pid, std::string name)
    : m(machine), procId(pid), name(std::move(name))
{
    fds.resize(64);
}

Accounting &
Process::accounting()
{
    return fiber->accounting();
}

void
Process::chargeOs(Cycles c)
{
    fiber->computeAs(Category::Os, c);
}

void
Process::chargeOsNoTime(Cycles c)
{
    // Used by the scheduler: the time passes via a scheduled event; only
    // the attribution is recorded here.
    fiber->accounting().chargeTo(Category::Os, c);
}

void
Process::chargeXfer(Cycles c)
{
    fiber->computeAs(Category::Xfer, c);
}

void
Process::compute(Cycles cycles)
{
    fiber->computeAs(Category::App, cycles);
}

void
Process::syscallEntry(Cycles extra)
{
    chargeOs(m.cfg.costs.syscallEnterLeave + extra);
}

void
Process::chargeThrash(size_t len)
{
    // User buffers past the threshold thrash the D-cache between the
    // kernel copy and the user access (the 4 KiB sweet spot, Sec. 5.4).
    if (len > m.cfg.costs.copyThrashThreshold && !m.cfg.cacheAlwaysHit) {
        chargeXfer(static_cast<Cycles>(
            static_cast<double>(len - m.cfg.costs.copyThrashThreshold) *
            m.cfg.costs.largeBufThrashPerByte));
    }
}

Cycles
Process::copyCost(size_t bytes) const
{
    double rate = m.cfg.cacheAlwaysHit
                      ? m.cfg.costs.copyBytesPerCycleHit
                      : m.cfg.costs.copyBytesPerCycleMiss;
    return static_cast<Cycles>(static_cast<double>(bytes) / rate);
}

void
Process::nullSyscall()
{
    syscallEntry(m.cfg.costs.syscallNullRest);
}

FileDesc *
Process::fdGet(int fd)
{
    if (fd < 0 || static_cast<size_t>(fd) >= fds.size() || !fds[fd])
        return nullptr;
    return &*fds[fd];
}

int
Process::fdAlloc()
{
    for (size_t i = 0; i < fds.size(); ++i)
        if (!fds[i])
            return static_cast<int>(i);
    fds.resize(fds.size() + 16);
    return static_cast<int>(fds.size() - 16);
}

// ---------------------------------------------------------------------
// File syscalls.
// ---------------------------------------------------------------------

int
Process::open(const std::string &path, uint32_t flags, Error *errOut)
{
    TmpResolve r = m.tmpfs.resolve(path);
    syscallEntry(r.components * m.cfg.costs.pathComponent + 250);

    std::shared_ptr<TmpNode> node = r.node;
    Error err = Error::None;
    if (!node) {
        if (!(flags & 4 /*create*/)) {
            if (errOut)
                *errOut = Error::NoSuchFile;
            return -1;
        }
        chargeOs(m.cfg.costs.inodeMgmt);
        node = m.tmpfs.create(path, false, err);
        if (!node) {
            if (errOut)
                *errOut = err;
            return -1;
        }
    }
    if (flags & 8 /*trunc*/) {
        node->pages.clear();
        node->size = 0;
        chargeOs(m.cfg.costs.inodeMgmt);
    }
    int fd = fdAlloc();
    FileDesc desc;
    desc.node = node;
    desc.flags = flags;
    desc.pos = (flags & 16 /*append*/) ? node->size : 0;
    fds[fd] = desc;
    if (errOut)
        *errOut = Error::None;
    return fd;
}

ssize_t
Process::read(int fd, void *buf, size_t len)
{
    FileDesc *d = fdGet(fd);
    if (!d)
        return -1;
    syscallEntry(m.cfg.costs.fdSecurity);
    chargeThrash(len);

    if (d->pipe) {
        PipeBuf &p = *d->pipe;
        chargeOs(m.cfg.costs.pipePath);
        while (p.data.empty()) {
            if (p.writers == 0)
                return 0;  // EOF
            p.waitReaders.push_back(this);
            m.blockCurrent();
        }
        size_t n = std::min(len, p.data.size());
        uint8_t *out = static_cast<uint8_t *>(buf);
        for (size_t i = 0; i < n; ++i) {
            out[i] = p.data.front();
            p.data.pop_front();
        }
        chargeXfer(copyCost(n));
        for (Process *w : p.waitWriters)
            m.makeRunnable(w);
        p.waitWriters.clear();
        return static_cast<ssize_t>(n);
    }

    TmpNode &node = *d->node;
    uint8_t *out = static_cast<uint8_t *>(buf);
    size_t total = 0;
    while (total < len && d->pos < node.size) {
        size_t pageIdx = d->pos / PAGE_SIZE;
        size_t pageOff = d->pos % PAGE_SIZE;
        size_t chunk = std::min({len - total, PAGE_SIZE - pageOff,
                                 static_cast<size_t>(node.size - d->pos)});
        chargeOs(m.cfg.costs.pageCache);
        auto [page, fresh] = node.page(pageIdx);
        (void)fresh;
        std::memcpy(out + total, page + pageOff, chunk);
        chargeXfer(copyCost(chunk));
        d->pos += chunk;
        total += chunk;
    }
    return static_cast<ssize_t>(total);
}

ssize_t
Process::write(int fd, const void *buf, size_t len)
{
    FileDesc *d = fdGet(fd);
    if (!d)
        return -1;
    syscallEntry(m.cfg.costs.fdSecurity);
    chargeThrash(len);

    if (d->pipe) {
        PipeBuf &p = *d->pipe;
        chargeOs(m.cfg.costs.pipePath);
        const uint8_t *in = static_cast<const uint8_t *>(buf);
        size_t total = 0;
        while (total < len) {
            if (p.readers == 0)
                return -1;  // EPIPE
            size_t space = p.capacity - p.data.size();
            if (space == 0) {
                p.waitWriters.push_back(this);
                m.blockCurrent();
                continue;
            }
            size_t n = std::min(space, len - total);
            for (size_t i = 0; i < n; ++i)
                p.data.push_back(in[total + i]);
            chargeXfer(copyCost(n));
            total += n;
            for (Process *r : p.waitReaders)
                m.makeRunnable(r);
            p.waitReaders.clear();
        }
        return static_cast<ssize_t>(total);
    }

    TmpNode &node = *d->node;
    const uint8_t *in = static_cast<const uint8_t *>(buf);
    size_t total = 0;
    while (total < len) {
        size_t pageIdx = d->pos / PAGE_SIZE;
        size_t pageOff = d->pos % PAGE_SIZE;
        size_t chunk = std::min(len - total, PAGE_SIZE - pageOff);
        chargeOs(m.cfg.costs.pageCache);
        auto [page, fresh] = node.page(pageIdx);
        if (fresh) {
            // tmpfs zeroes every fresh page before handing it to the
            // writer (Sec. 5.4).
            chargeOs(m.cfg.costs.pageZero);
        }
        std::memcpy(page + pageOff, in + total, chunk);
        chargeXfer(copyCost(chunk));
        d->pos += chunk;
        total += chunk;
        if (d->pos > node.size)
            node.size = d->pos;
    }
    return static_cast<ssize_t>(total);
}

ssize_t
Process::lseek(int fd, ssize_t off, int whence)
{
    FileDesc *d = fdGet(fd);
    if (!d || d->pipe)
        return -1;
    syscallEntry(30);
    int64_t target = 0;
    switch (whence) {
      case 0:
        target = off;
        break;
      case 1:
        target = static_cast<int64_t>(d->pos) + off;
        break;
      case 2:
        target = static_cast<int64_t>(d->node->size) + off;
        break;
    }
    if (target < 0)
        return -1;
    d->pos = static_cast<uint64_t>(target);
    return static_cast<ssize_t>(d->pos);
}

void
Process::closeDesc(FileDesc &desc)
{
    if (desc.pipe) {
        if (desc.pipeWriteEnd) {
            if (--desc.pipe->writers == 0) {
                for (Process *r : desc.pipe->waitReaders)
                    m.makeRunnable(r);
                desc.pipe->waitReaders.clear();
            }
        } else {
            if (--desc.pipe->readers == 0) {
                for (Process *w : desc.pipe->waitWriters)
                    m.makeRunnable(w);
                desc.pipe->waitWriters.clear();
            }
        }
    }
}

int
Process::close(int fd)
{
    FileDesc *d = fdGet(fd);
    if (!d)
        return -1;
    syscallEntry(50);
    closeDesc(*d);
    fds[fd].reset();
    return 0;
}

Error
Process::stat(const std::string &path, uint64_t &size, bool &isDir)
{
    TmpResolve r = m.tmpfs.resolve(path);
    // stat is well optimised on Linux (Sec. 5.6).
    syscallEntry(r.components * m.cfg.costs.pathComponent +
                 m.cfg.costs.statInode);
    if (!r.node)
        return Error::NoSuchFile;
    size = r.node->size;
    isDir = r.node->isDir;
    return Error::None;
}

Error
Process::mkdir(const std::string &path)
{
    TmpResolve r = m.tmpfs.resolve(path);
    syscallEntry(r.components * m.cfg.costs.pathComponent +
                 m.cfg.costs.inodeMgmt);
    Error err = Error::None;
    m.tmpfs.create(path, true, err);
    return err;
}

Error
Process::unlink(const std::string &path)
{
    TmpResolve r = m.tmpfs.resolve(path);
    syscallEntry(r.components * m.cfg.costs.pathComponent +
                 m.cfg.costs.inodeMgmt);
    return m.tmpfs.unlink(path);
}

Error
Process::link(const std::string &oldPath, const std::string &newPath)
{
    TmpResolve ro = m.tmpfs.resolve(oldPath);
    TmpResolve rn = m.tmpfs.resolve(newPath);
    syscallEntry((ro.components + rn.components) *
                     m.cfg.costs.pathComponent +
                 m.cfg.costs.inodeMgmt);
    return m.tmpfs.link(oldPath, newPath);
}

Error
Process::rename(const std::string &oldPath, const std::string &newPath)
{
    TmpResolve ro = m.tmpfs.resolve(oldPath);
    TmpResolve rn = m.tmpfs.resolve(newPath);
    syscallEntry((ro.components + rn.components) *
                     m.cfg.costs.pathComponent +
                 m.cfg.costs.inodeMgmt);
    return m.tmpfs.rename(oldPath, newPath);
}

Error
Process::readdir(const std::string &path, std::vector<std::string> &names)
{
    TmpResolve r = m.tmpfs.resolve(path);
    syscallEntry(r.components * m.cfg.costs.pathComponent);
    if (!r.node || !r.node->isDir)
        return Error::IsNoDirectory;
    chargeOs(r.node->entries.size() * m.cfg.costs.direntScan);
    for (auto &[name_, node] : r.node->entries)
        names.push_back(name_);
    return Error::None;
}

ssize_t
Process::sendfile(int outFd, int inFd, size_t len)
{
    FileDesc *in = fdGet(inFd);
    FileDesc *out = fdGet(outFd);
    if (!in || !out || in->pipe || out->pipe)
        return -1;
    syscallEntry(m.cfg.costs.fdSecurity);

    TmpNode &src = *in->node;
    TmpNode &dst = *out->node;
    size_t total = 0;
    while (total < len && in->pos < src.size) {
        size_t chunk = std::min({len - total, PAGE_SIZE,
                                 static_cast<size_t>(src.size - in->pos)});
        // One page-cache lookup on each side, one in-kernel copy.
        chargeOs(2 * m.cfg.costs.pageCache);
        auto [spage, sfresh] = src.page(in->pos / PAGE_SIZE);
        (void)sfresh;
        auto [dpage, dfresh] = dst.page(out->pos / PAGE_SIZE);
        if (dfresh)
            chargeOs(m.cfg.costs.pageZero);
        size_t soff = in->pos % PAGE_SIZE;
        size_t doff = out->pos % PAGE_SIZE;
        chunk = std::min({chunk, PAGE_SIZE - soff, PAGE_SIZE - doff});
        std::memcpy(dpage + doff, spage + soff, chunk);
        chargeXfer(copyCost(chunk));
        in->pos += chunk;
        out->pos += chunk;
        total += chunk;
        if (out->pos > dst.size)
            dst.size = out->pos;
    }
    return static_cast<ssize_t>(total);
}

Error
Process::pipe(int fds_[2])
{
    syscallEntry(m.cfg.costs.pipePath);
    auto buf = std::make_shared<PipeBuf>();
    buf->capacity = m.cfg.pipeBufBytes;
    buf->readers = 1;
    buf->writers = 1;

    int rfd = fdAlloc();
    FileDesc rd;
    rd.pipe = buf;
    rd.pipeWriteEnd = false;
    fds[rfd] = rd;

    int wfd = fdAlloc();
    FileDesc wr;
    wr.pipe = buf;
    wr.pipeWriteEnd = true;
    fds[wfd] = wr;

    fds_[0] = rfd;
    fds_[1] = wfd;
    return Error::None;
}

void
Process::fsync(int)
{
    // tmpfs: nothing to persist, just the syscall itself.
    syscallEntry(100);
}

// ---------------------------------------------------------------------
// Processes.
// ---------------------------------------------------------------------

int
Process::fork(std::function<int(Process &)> main, bool withExec)
{
    chargeOs(m.cfg.costs.fork);
    if (withExec)
        chargeOs(m.cfg.costs.exec);

    Process &child = m.spawnProcess(name + "+", std::move(main));
    // The child inherits the file descriptors (pipe ends in particular).
    child.fds = fds;
    for (auto &d : child.fds) {
        if (d && d->pipe) {
            if (d->pipeWriteEnd)
                d->pipe->writers++;
            else
                d->pipe->readers++;
        }
    }
    m.makeRunnable(&child);
    return child.procId;
}

int
Process::waitpid(int pid)
{
    syscallEntry(100);
    for (auto &p : m.processes) {
        if (p->procId == pid) {
            while (!p->exited) {
                p->waiters.push_back(this);
                m.blockCurrent();
            }
            return p->exitCode;
        }
    }
    return -1;
}

void
Process::exitProcess(int code)
{
    for (auto &d : fds) {
        if (d) {
            closeDesc(*d);
            d.reset();
        }
    }
    exited = true;
    exitCode = code;
    for (Process *w : waiters)
        m.makeRunnable(w);
    waiters.clear();
    // Give up the CPU for good.
    if (m.current == this) {
        m.current = nullptr;
        m.scheduleNext();
    }
}

} // namespace lx
} // namespace m3
