/**
 * @file
 * DTU register-level definitions: endpoint configurations and the message
 * header (Sec. 4.4). Endpoint configuration registers (buffer, target,
 * credits, label) are only writable by kernel PEs — locally when the DTU
 * is privileged, remotely via external-configuration packets otherwise.
 */

#ifndef M3_DTU_REGS_HH
#define M3_DTU_REGS_HH

#include <cstdint>

#include "base/types.hh"

namespace m3
{

/** What an endpoint is configured as (Sec. 4.3). */
enum class EpType : uint8_t
{
    Invalid,
    Send,
    Receive,
    Memory,
};

/** Permissions of a memory endpoint. */
enum MemPerms : uint8_t
{
    MEM_R = 1,
    MEM_W = 2,
    MEM_RW = MEM_R | MEM_W,
};

/** Credit value meaning "never runs out" (kernel-granted channels). */
static constexpr uint32_t CREDITS_UNLIMITED = 0xffffffff;

/** Maximum ringbuffer slots per receive endpoint. */
static constexpr uint32_t MAX_SLOTS = 64;

/** Configuration of a send endpoint. */
struct SendEpCfg
{
    uint32_t targetNode = 0;   //!< NoC node of the receiver
    epid_t targetEp = INVALID_EP;
    label_t label = 0;         //!< receiver-chosen, unforgeable by sender
    uint32_t credits = 0;      //!< messages in flight; CREDITS_UNLIMITED
    uint32_t maxMsgSize = 0;   //!< slot size of the target ringbuffer
    /**
     * Credit ceiling: refunds (reply delivery, aborts) never raise the
     * credit count above this. 0 means "use the initial credits" — the
     * kernel-side config helpers fill it in, so non-multiplexed setups
     * behave exactly as before.
     */
    uint32_t maxCredits = 0;
    /**
     * Required DTU generation of the receiver, stamped into outgoing
     * headers. 0 is the wildcard (deliver to whatever generation is
     * resident — the single-occupancy behaviour). The kernel sets a
     * VPE's generation here when multiplexing, so messages addressed to
     * a descheduled VPE are dropped instead of leaking into the VPE that
     * currently owns the receiver PE.
     */
    uint32_t targetGen = 0;
};

/** Configuration of a receive endpoint. */
struct RecvEpCfg
{
    spmaddr_t bufAddr = 0;     //!< ringbuffer location in the local SPM
    uint32_t slotCount = 0;    //!< number of fixed-size slots (<= MAX_SLOTS)
    uint32_t slotSize = 0;     //!< maximum message size incl. header
    bool replyProtected = false; //!< kernel verified r/o header placement
};

/** Configuration of a memory endpoint. */
struct MemEpCfg
{
    uint32_t targetNode = 0;   //!< NoC node of the memory
    goff_t offset = 0;         //!< start of the accessible region
    uint64_t size = 0;         //!< length of the accessible region
    uint8_t perms = 0;         //!< MemPerms bitmask
};

/** One endpoint's register set (a tagged union of the three configs). */
struct EpRegs
{
    EpType type = EpType::Invalid;
    SendEpCfg send;
    RecvEpCfg recv;
    MemEpCfg mem;

    void
    invalidate()
    {
        *this = EpRegs{};
    }
};

/**
 * The header the DTU prepends to every message (Sec. 4.4.2). It is
 * physically stored at the start of the ringbuffer slot; the reply
 * information inside it is why reply-enabled ringbuffers must be placed
 * in read-only memory by the kernel (Sec. 4.4.4).
 */
struct MessageHeader
{
    label_t label = 0;         //!< receiver-chosen channel label
    uint32_t length = 0;       //!< payload bytes
    uint32_t senderNode = 0;   //!< NoC node of the sender
    epid_t senderEp = INVALID_EP; //!< sender's send EP (credit refund)
    epid_t replyEp = INVALID_EP;  //!< sender's recv EP for the reply
    label_t replyLabel = 0;    //!< label the reply will carry
    epid_t creditEp = INVALID_EP; //!< send EP to refund on reply delivery
    /**
     * DTU generation of the sender when the message left. A reply
     * carries it back as targetGen: if the sender's DTU was reset in
     * the meantime (its PE was given to another VPE), the stale reply
     * is dropped instead of leaking into the new owner's ringbuffers.
     */
    uint32_t senderGen = 0;
    uint32_t targetGen = 0;    //!< replies: required receiver generation
    /**
     * Additive 16-bit checksum over the payload, computed by the sending
     * DTU before injection. The receiving DTU verifies it and drops the
     * message on mismatch (NocFault), so software sees a loss — which it
     * already has to handle — instead of silent data corruption.
     */
    uint16_t payloadSum = 0;
    uint8_t flags = 0;         //!< FL_REPLY etc.

    static constexpr uint8_t FL_REPLY = 1;       //!< this is a reply
    static constexpr uint8_t FL_REPLY_EN = 2;    //!< replying is allowed

    bool isReply() const { return flags & FL_REPLY; }
    bool canReply() const { return flags & FL_REPLY_EN; }
};

/** Payload checksum as computed/verified by the DTUs. */
inline uint16_t
payloadChecksum(const uint8_t *data, size_t len)
{
    // Additive mod 2^16: any single-byte change (|delta| < 2^16) is
    // guaranteed to alter the sum, which covers the injected faults.
    uint32_t sum = 0;
    for (size_t i = 0; i < len; ++i)
        sum += data[i];
    return static_cast<uint16_t>(sum);
}

} // namespace m3

#endif // M3_DTU_REGS_HH
