#include "dtu/dtu.hh"

#include <cstring>
#include <memory>
#include <utility>

#include "base/logging.hh"
#include "sim/fault_plan.hh"
#include "trace/metrics.hh"
#include "trace/reqtrace.hh"
#include "trace/trace.hh"

namespace m3
{

Dtu::Dtu(EventQueue &eq, Noc &noc, Spm &spm, uint32_t nocId,
         const HwCosts &hw, epid_t epCount)
    : eq(eq), noc(noc), spm(spm), nocId(nocId), hw(hw), epCnt(epCount)
{
    // At least the two reserved syscall EPs plus one usable endpoint.
    if (epCount < 3 || epCount > MAX_EP_COUNT)
        panic("PE endpoint count %u out of range", epCount);
}

void
Dtu::checkEpId(epid_t id) const
{
    if (id >= epCnt)
        panic("endpoint id %u out of range", id);
}

EpRegs &
Dtu::epRef(epid_t id)
{
    checkEpId(id);
    return eps[id];
}

const EpRegs &
Dtu::ep(epid_t id) const
{
    checkEpId(id);
    return eps[id];
}

uint32_t
Dtu::credits(epid_t id) const
{
    const EpRegs &r = ep(id);
    if (r.type != EpType::Send)
        panic("credits() on non-send EP %u", id);
    return r.send.credits;
}

// ---------------------------------------------------------------------
// Local configuration (privileged only).
// ---------------------------------------------------------------------

Error
Dtu::configSend(epid_t id, const SendEpCfg &cfg)
{
    if (!privileged)
        return Error::NotPrivileged;
    EpRegs &r = epRef(id);
    r.invalidate();
    r.type = EpType::Send;
    r.send = cfg;
    if (r.send.maxCredits == 0)
        r.send.maxCredits = r.send.credits;
    return Error::None;
}

Error
Dtu::configRecv(epid_t id, const RecvEpCfg &cfg)
{
    if (!privileged)
        return Error::NotPrivileged;
    if (cfg.slotCount == 0 || cfg.slotCount > MAX_SLOTS)
        return Error::InvalidArgs;
    if (cfg.slotSize < sizeof(MessageHeader))
        return Error::InvalidArgs;
    EpRegs &r = epRef(id);
    r.invalidate();
    r.type = EpType::Receive;
    r.recv = cfg;
    recvState[id] = RecvState{};
    return Error::None;
}

Error
Dtu::configMem(epid_t id, const MemEpCfg &cfg)
{
    if (!privileged)
        return Error::NotPrivileged;
    EpRegs &r = epRef(id);
    r.invalidate();
    r.type = EpType::Memory;
    r.mem = cfg;
    return Error::None;
}

Error
Dtu::invalidateEp(epid_t id)
{
    if (!privileged)
        return Error::NotPrivileged;
    epRef(id).invalidate();
    recvState[id] = RecvState{};
    return Error::None;
}

// ---------------------------------------------------------------------
// External (remote) configuration.
// ---------------------------------------------------------------------

Error
Dtu::sendExt(uint32_t targetNode, std::function<Error(Dtu &)> apply,
             std::function<void(Error)> onDone)
{
    if (!privileged)
        return Error::NotPrivileged;
    Dtu *target = dtuAt ? dtuAt(targetNode) : nullptr;
    if (!target)
        panic("ext request to node %u which has no DTU", targetNode);
    dtuStats.extConfigs++;
    // Config packets are small: header-sized on the wire.
    noc.send(nocId, targetNode, 0,
             [this, target, targetNode, apply = std::move(apply),
              onDone = std::move(onDone)] {
                 Error e = apply(*target);
                 if (onDone) {
                     if (faults &&
                         faults->refuseExtAck(eq.curCycle(), targetNode,
                                              nocId)) {
                         // Config applied, ack suppressed: the sender
                         // has to recover via its own deadline.
                         if (M3_TRACE_ON)
                             trace::Tracer::instant(
                                 trace::dtuTrack(targetNode),
                                 "fault:extack");
                         if (M3_METRICS_ON) {
                             static trace::Counter &fi =
                                 trace::Metrics::counter("faults_injected");
                             fi.inc();
                         }
                         logtrace("node%u: fault: ext ack from node%u "
                                  "refused", nocId, targetNode);
                         return;
                     }
                     noc.send(targetNode, nocId, 0,
                              [onDone, e] { onDone(e); });
                 }
             });
    return Error::None;
}

Error
Dtu::applyExtConfig(epid_t id, const EpRegs &regs)
{
    if (id >= epCnt)
        return Error::InvalidArgs;
    eps[id] = regs;
    if (eps[id].type == EpType::Send && eps[id].send.maxCredits == 0)
        eps[id].send.maxCredits = eps[id].send.credits;
    if (regs.type == EpType::Receive || regs.type == EpType::Invalid)
        recvState[id] = RecvState{};
    return Error::None;
}

Error
Dtu::extConfigSend(uint32_t targetNode, epid_t id, const SendEpCfg &cfg,
                   std::function<void(Error)> onDone)
{
    EpRegs regs;
    regs.type = EpType::Send;
    regs.send = cfg;
    return sendExt(targetNode,
                   [id, regs](Dtu &d) { return d.applyExtConfig(id, regs); },
                   std::move(onDone));
}

Error
Dtu::extConfigRecv(uint32_t targetNode, epid_t id, const RecvEpCfg &cfg,
                   std::function<void(Error)> onDone)
{
    if (cfg.slotCount == 0 || cfg.slotCount > MAX_SLOTS ||
        cfg.slotSize < sizeof(MessageHeader)) {
        return Error::InvalidArgs;
    }
    EpRegs regs;
    regs.type = EpType::Receive;
    regs.recv = cfg;
    return sendExt(targetNode,
                   [id, regs](Dtu &d) { return d.applyExtConfig(id, regs); },
                   std::move(onDone));
}

Error
Dtu::extConfigMem(uint32_t targetNode, epid_t id, const MemEpCfg &cfg,
                  std::function<void(Error)> onDone)
{
    EpRegs regs;
    regs.type = EpType::Memory;
    regs.mem = cfg;
    return sendExt(targetNode,
                   [id, regs](Dtu &d) { return d.applyExtConfig(id, regs); },
                   std::move(onDone));
}

Error
Dtu::extInvalidateEp(uint32_t targetNode, epid_t id,
                     std::function<void(Error)> onDone)
{
    return sendExt(targetNode,
                   [id](Dtu &d) { return d.applyExtConfig(id, EpRegs{}); },
                   std::move(onDone));
}

Error
Dtu::extDowngrade(uint32_t targetNode, std::function<void(Error)> onDone)
{
    return sendExt(targetNode,
                   [](Dtu &d) {
                       d.privileged = false;
                       return Error::None;
                   },
                   std::move(onDone));
}

Error
Dtu::extReset(uint32_t targetNode, std::function<void(Error)> onDone)
{
    return sendExt(targetNode,
                   [](Dtu &d) {
                       d.applyReset();
                       return Error::None;
                   },
                   std::move(onDone));
}

Error
Dtu::extStart(uint32_t targetNode, std::function<void(Error)> onDone)
{
    return sendExt(targetNode,
                   [](Dtu &d) {
                       if (d.startHook)
                           d.startHook();
                       return Error::None;
                   },
                   std::move(onDone));
}

Error
Dtu::extStartVpe(uint32_t targetNode, uint64_t vpeId,
                 std::function<void(Error)> onDone)
{
    return sendExt(targetNode,
                   [vpeId](Dtu &d) {
                       if (d.startVpeHook)
                           d.startVpeHook(vpeId);
                       else if (d.startHook)
                           d.startHook();
                       return Error::None;
                   },
                   std::move(onDone));
}

// ---------------------------------------------------------------------
// VPE context switching.
// ---------------------------------------------------------------------

Error
Dtu::extDrain(uint32_t targetNode, std::function<void(Error)> onDone)
{
    if (!privileged)
        return Error::NotPrivileged;
    Dtu *target = dtuAt ? dtuAt(targetNode) : nullptr;
    if (!target)
        panic("ext drain to node %u which has no DTU", targetNode);
    dtuStats.extConfigs++;
    noc.send(nocId, targetNode, 0,
             [this, target, targetNode, onDone = std::move(onDone)] {
                 auto ack = [this, targetNode, onDone] {
                     if (onDone)
                         noc.send(targetNode, nocId, 0,
                                  [onDone] { onDone(Error::None); });
                 };
                 // Unlike the other ext ops the ack is deferred until the
                 // target is idle: that is the whole point of a drain.
                 if (!target->busy)
                     ack();
                 else
                     target->idleWaiters.push_back(std::move(ack));
             });
    return Error::None;
}

Error
Dtu::extFetchCtx(uint32_t targetNode, CtxState *out,
                 std::function<void(Error)> onDone)
{
    if (!privileged)
        return Error::NotPrivileged;
    Dtu *target = dtuAt ? dtuAt(targetNode) : nullptr;
    if (!target)
        panic("ext fetch-ctx to node %u which has no DTU", targetNode);
    dtuStats.extConfigs++;
    noc.send(nocId, targetNode, 0,
             [this, target, targetNode, out,
              onDone = std::move(onDone)] {
                 target->fetchCtxLocal(*out);
                 // The register file travels back with the ack.
                 if (onDone)
                     noc.send(targetNode, nocId, target->ctxWireBytes(),
                              [onDone] { onDone(Error::None); });
             });
    return Error::None;
}

Error
Dtu::extRestoreCtx(uint32_t targetNode, const CtxState *st,
                   std::function<void(Error)> onDone)
{
    if (!privileged)
        return Error::NotPrivileged;
    Dtu *target = dtuAt ? dtuAt(targetNode) : nullptr;
    if (!target)
        panic("ext restore-ctx to node %u which has no DTU", targetNode);
    dtuStats.extConfigs++;
    // The register file travels with the request.
    noc.send(nocId, targetNode, target->ctxWireBytes(),
             [this, target, targetNode, st,
              onDone = std::move(onDone)] {
                 target->restoreCtxLocal(*st);
                 if (onDone)
                     noc.send(targetNode, nocId, 0,
                              [onDone] { onDone(Error::None); });
             });
    return Error::None;
}

Error
Dtu::extDiscardCtx(uint32_t targetNode, uint32_t gen,
                   std::function<void(Error)> onDone)
{
    return sendExt(targetNode,
                   [gen](Dtu &d) {
                       auto it = d.parkedMsgs.find(gen);
                       if (it != d.parkedMsgs.end()) {
                           d.dtuStats.msgsDropped += it->second.size();
                           d.parkedMsgs.erase(it);
                       }
                       return Error::None;
                   },
                   std::move(onDone));
}

void
Dtu::fetchCtxLocal(CtxState &out)
{
    // The kernel drains first, so a busy command here means the drain
    // raced a brand-new command; abort it and give the credit back so
    // the saved context is self-consistent (the VPE's retry layer sees
    // a loss, which it already handles).
    if (busy)
        abortCommand(true);
    abortXfers();
    out.eps = eps;
    out.recvState = recvState;
    out.generation = generation;
    out.lastErr = cmdError;
    // Park the fetched generation: messages addressed to it are buffered
    // until the kernel restores or discards it. The PE itself is left
    // ownerless (generation 0 is never assigned).
    parkedMsgs.emplace(generation, std::vector<ParkedMsg>{});
    for (epid_t i = 0; i < epCnt; ++i) {
        eps[i].invalidate();
        recvState[i] = RecvState{};
    }
    generation = 0;
}

void
Dtu::restoreCtxLocal(const CtxState &st)
{
    eps = st.eps;
    recvState = st.recvState;
    generation = st.generation;
    cmdError = st.lastErr;
    ctxSwitchEpoch++;
    // Deliver what arrived while this VPE was descheduled, in arrival
    // order. handleMsg re-runs the full acceptance checks against the
    // restored endpoint registers.
    auto it = parkedMsgs.find(generation);
    if (it == parkedMsgs.end())
        return;
    std::vector<ParkedMsg> pending = std::move(it->second);
    parkedMsgs.erase(it);
    for (ParkedMsg &m : pending) {
        dtuStats.msgsUnparked++;
        handleMsg(m.ep, m.hdr, std::move(m.payload), m.rctx);
    }
}

void
Dtu::applyReset()
{
    // A new VPE will own this PE: stale replies addressed to the old
    // owner must not be delivered (generation check in handleMsg).
    generation++;
    for (epid_t i = 0; i < epCnt; ++i) {
        eps[i].invalidate();
        recvState[i] = RecvState{};
    }
    // Parked contexts belong to VPEs the kernel has already discarded or
    // migrated by the time it resets the PE for a new owner. Anything
    // still buffered in them was addressed to a gone VPE: account it as
    // dropped so message conservation stays exact.
    for (auto &[gen, msgs] : parkedMsgs)
        dtuStats.msgsDropped += msgs.size();
    parkedMsgs.clear();
    if (busy)
        abortCommand();
    abortXfers();
}

void
Dtu::abortXfers()
{
    // Invalidate every in-flight parallel slot: a late completion must
    // not write into an SPM the PE's next owner may already use. The
    // waiting fiber (if any) observes the abort through waitXferAll.
    bool aborted = false;
    for (XferSlot &x : xferSlots) {
        if (!x.busy)
            continue;
        x.seq++;  // stale completions compare against this and bail
        x.busy = false;
        x.err = Error::Aborted;
        aborted = true;
    }
    if (aborted && xferWaiter) {
        Fiber *w = xferWaiter;
        xferWaiter = nullptr;
        w->unblock();
    }
}

// ---------------------------------------------------------------------
// Commands.
// ---------------------------------------------------------------------

void
Dtu::finishCommand(Error e)
{
    // The busy flag serializes commands, so B/E events on the DTU track
    // never overlap; every start* that sets busy opened a span.
    if (M3_TRACE_ON)
        trace::Tracer::spanEnd(trace::dtuTrack(nocId));
    busy = false;
    cmdError = e;
    cmdEp = INVALID_EP;
    cmdTookCredit = false;
    if (cmdWaiter) {
        Fiber *w = cmdWaiter;
        cmdWaiter = nullptr;
        w->unblock();
    }
    if (!idleWaiters.empty()) {
        auto acks = std::move(idleWaiters);
        idleWaiters.clear();
        for (auto &ack : acks)
            ack();
    }
}

void
Dtu::completeCommand(uint64_t seq, Error e)
{
    // A completion of an aborted (and possibly superseded) command must
    // not touch the DTU state: after an abort, busy is false; after a
    // new command started, the epoch differs.
    if (!busy || seq != cmdSeq)
        return;
    finishCommand(e);
}

void
Dtu::abortCommand(bool refund)
{
    if (!busy)
        return;
    epid_t ep = cmdEp;
    bool took = cmdTookCredit;
    finishCommand(Error::Aborted);
    if (refund && took && ep != INVALID_EP)
        refundCredit(ep);
}

Error
Dtu::refundCredit(epid_t id)
{
    EpRegs &r = epRef(id);
    if (r.type != EpType::Send)
        return Error::InvalidEp;
    // Refunds never raise the credit count above the configured ceiling
    // (a retried send whose original reply eventually arrives must not
    // mint credits).
    if (r.send.credits != CREDITS_UNLIMITED &&
        r.send.credits < r.send.maxCredits) {
        r.send.credits++;
    }
    return Error::None;
}

void
Dtu::removeWaiter(Fiber *f)
{
    if (cmdWaiter == f)
        cmdWaiter = nullptr;
    if (xferWaiter == f)
        xferWaiter = nullptr;
    for (epid_t i = 0; i < epCnt; ++i)
        if (msgWaiters[i] == f)
            msgWaiters[i] = nullptr;
}

Error
Dtu::waitUntilIdle(Cycles timeout)
{
    Fiber *self = Fiber::current();
    if (!self)
        panic("waitUntilIdle outside a fiber");
    // A migration invalidates this wait: the fiber now lives on another
    // PE and this DTU's completion belongs to whoever owns it next.
    const uint32_t moved = self->moveEpoch();
    if (timeout == 0) {
        while (busy) {
            cmdWaiter = self;
            self->block();
            if (self->moveEpoch() != moved) {
                if (cmdWaiter == self)
                    cmdWaiter = nullptr;
                return Error::VpeMoved;
            }
        }
        return cmdError;
    }
    // The timer and the completion race; both sides check the shared
    // flags so a late timer event is harmless.
    auto expired = std::make_shared<bool>(false);
    auto armed = std::make_shared<bool>(true);
    eq.schedule(timeout, [self, expired, armed] {
        if (*armed) {
            *expired = true;
            self->unblock();
        }
    });
    while (busy && !*expired) {
        cmdWaiter = self;
        self->block();
        if (self->moveEpoch() != moved) {
            *armed = false;
            if (cmdWaiter == self)
                cmdWaiter = nullptr;
            return Error::VpeMoved;
        }
    }
    *armed = false;
    if (busy) {
        if (cmdWaiter == self)
            cmdWaiter = nullptr;
        return Error::Timeout;
    }
    return cmdError;
}

Error
Dtu::startSend(epid_t id, spmaddr_t msgAddr, uint32_t size, epid_t replyEp,
               label_t replyLabel)
{
    if (busy)
        return Error::DtuBusy;
    EpRegs &r = epRef(id);
    if (r.type != EpType::Send)
        return Error::InvalidEp;
    if (size + sizeof(MessageHeader) > r.send.maxMsgSize)
        return Error::MsgTooBig;
    bool tookCredit = false;
    if (r.send.credits != CREDITS_UNLIMITED) {
        if (r.send.credits == 0) {
            dtuStats.creditDenials++;
            return Error::NoCredits;
        }
        r.send.credits--;
        tookCredit = true;
    }
    if (replyEp != INVALID_EP && ep(replyEp).type != EpType::Receive)
        return Error::InvalidEp;

    MessageHeader hdr;
    hdr.label = r.send.label;
    hdr.length = size;
    hdr.senderNode = nocId;
    hdr.senderEp = id;
    hdr.replyEp = replyEp;
    hdr.replyLabel = replyLabel;
    hdr.creditEp = INVALID_EP;
    hdr.senderGen = generation;
    // Kernel-stamped target generation (0 = wildcard): a message for a
    // VPE that is currently descheduled must not land in the ringbuffers
    // of whoever owns the receiver PE right now.
    hdr.targetGen = r.send.targetGen;
    hdr.flags = (replyEp != INVALID_EP) ? MessageHeader::FL_REPLY_EN : 0;

    std::vector<uint8_t> payload(size);
    if (size)
        spm.read(msgAddr, payload.data(), size);
    hdr.payloadSum = payloadChecksum(payload.data(), payload.size());
    if (faults && size) {
        uint64_t off = 0;
        if (faults->corruptPayload(eq.curCycle(), nocId, r.send.targetNode,
                                   size, off)) {
            // Flip one byte "on the wire": the checksum was computed
            // from the intact payload, so the receiver detects it.
            payload[off] ^= 0xa5;
            if (M3_TRACE_ON)
                trace::Tracer::instant(trace::dtuTrack(nocId),
                                       "fault:corrupt");
            if (M3_METRICS_ON) {
                static trace::Counter &fi =
                    trace::Metrics::counter("faults_injected");
                fi.inc();
            }
        }
    }

    busy = true;
    cmdEp = id;
    cmdTookCredit = tookCredit;
    if (M3_TRACE_ON)
        trace::Tracer::spanBegin(trace::dtuTrack(nocId), "dtu:send");
    const uint64_t seq = ++cmdSeq;
    dtuStats.msgsSent++;

    Dtu *target = dtuAt(r.send.targetNode);
    if (!target)
        panic("send to node %u which has no DTU", r.send.targetNode);
    epid_t tep = r.send.targetEp;
    logtrace("node%u: send ep%u -> node%u ep%u label=%llx size=%u",
             nocId, id, r.send.targetNode, tep,
             (unsigned long long)r.send.label, size);
    // Request-tracing shadow: if the sending fiber carries a request
    // context, open a new span and ship its context with the message.
    // Host-side state only — it adds no payload bytes and no cycles.
    uint64_t rctx = 0;
    if (M3_REQTRACE_ON) {
        if (Fiber *f = Fiber::current(); f && f->reqCtx())
            rctx = trace::ReqTrace::msgSent(f->reqCtx(), eq.curCycle(),
                                            nocId);
    }
    auto deliver = [target, tep, hdr, rctx,
                    payload = std::move(payload)]() mutable {
        target->handleMsg(tep, hdr, std::move(payload), rctx);
    };
    static_assert(Noc::DeliverFn::fitsInline<decltype(deliver)>(),
                  "DTU delivery closure must stay within SmallFn's "
                  "inline storage (no heap on the message path)");
    noc.send(nocId, r.send.targetNode, size, std::move(deliver));

    // The source side is free again once the tail left the injection port.
    Cycles ser = (size + hw.msgHeaderSize + hw.nocBytesPerCycle - 1) /
                 hw.nocBytesPerCycle;
    eq.schedule(ser, [this, seq] { completeCommand(seq, Error::None); });
    return Error::None;
}

Error
Dtu::startReply(epid_t id, uint32_t slot, spmaddr_t msgAddr, uint32_t size)
{
    if (busy)
        return Error::DtuBusy;
    EpRegs &r = epRef(id);
    if (r.type != EpType::Receive)
        return Error::InvalidEp;
    if (!r.recv.replyProtected) {
        // The kernel did not vouch for read-only header placement; the
        // hardware refuses to trust the stored reply info (Sec. 4.4.4).
        return Error::NoPerm;
    }
    if (slot >= r.recv.slotCount ||
        recvState[id].slots[slot].s != RecvSlotState::S::Fetched) {
        return Error::InvalidArgs;
    }

    MessageHeader orig = msgHeader(id, slot);
    if (!orig.canReply() || orig.replyEp == INVALID_EP)
        return Error::NoPerm;
    // Size vs. the reply ring's slot size is checked at delivery; an
    // oversized reply is dropped there, like any other oversized message.

    logtrace("node%u: reply ep%u slot%u -> node%u ep%u", nocId, id,
             slot, orig.senderNode, orig.replyEp);

    MessageHeader hdr;
    hdr.label = orig.replyLabel;
    hdr.length = size;
    hdr.senderNode = nocId;
    hdr.senderEp = INVALID_EP;
    hdr.replyEp = INVALID_EP;
    hdr.replyLabel = 0;
    hdr.creditEp = orig.senderEp;
    hdr.senderGen = generation;
    hdr.targetGen = orig.senderGen;
    hdr.flags = MessageHeader::FL_REPLY;

    std::vector<uint8_t> payload(size);
    if (size)
        spm.read(msgAddr, payload.data(), size);
    hdr.payloadSum = payloadChecksum(payload.data(), payload.size());
    if (faults && size) {
        uint64_t off = 0;
        if (faults->corruptPayload(eq.curCycle(), nocId, orig.senderNode,
                                   size, off)) {
            payload[off] ^= 0xa5;
            if (M3_TRACE_ON)
                trace::Tracer::instant(trace::dtuTrack(nocId),
                                       "fault:corrupt");
            if (M3_METRICS_ON) {
                static trace::Counter &fi =
                    trace::Metrics::counter("faults_injected");
                fi.inc();
            }
        }
    }

    // Replying also acknowledges the slot (frees it for new messages).
    recvState[id].slots[slot].s = RecvSlotState::S::Free;
    // Request-tracing shadow: the reply closes the span stored with the
    // slot, regardless of what context the replying fiber carries now —
    // this is what makes deferred (continuation-style) replies attribute
    // correctly.
    uint64_t rctx = recvState[id].rctx[slot];
    recvState[id].rctx[slot] = 0;
    if (M3_REQTRACE_ON && rctx)
        trace::ReqTrace::replySent(rctx, eq.curCycle(), nocId);
    else
        rctx = 0;

    busy = true;
    if (M3_TRACE_ON)
        trace::Tracer::spanBegin(trace::dtuTrack(nocId), "dtu:reply");
    const uint64_t seq = ++cmdSeq;
    dtuStats.msgsSent++;

    Dtu *target = dtuAt(orig.senderNode);
    epid_t tep = orig.replyEp;
    auto deliver = [target, tep, hdr, rctx,
                    payload = std::move(payload)]() mutable {
        target->handleMsg(tep, hdr, std::move(payload), rctx);
    };
    static_assert(Noc::DeliverFn::fitsInline<decltype(deliver)>(),
                  "DTU delivery closure must stay within SmallFn's "
                  "inline storage (no heap on the message path)");
    noc.send(nocId, orig.senderNode, size, std::move(deliver));

    Cycles ser = (size + hw.msgHeaderSize + hw.nocBytesPerCycle - 1) /
                 hw.nocBytesPerCycle;
    eq.schedule(ser, [this, seq] { completeCommand(seq, Error::None); });
    return Error::None;
}

void
Dtu::handleMsg(epid_t id, const MessageHeader &hdr,
               std::vector<uint8_t> payload, uint64_t rctx)
{
    if (payloadChecksum(payload.data(), payload.size()) != hdr.payloadSum) {
        // Bit error on the wire: drop the whole message. Software sees
        // a loss, which the retry layers already have to handle, rather
        // than silently consuming corrupted data.
        dtuStats.msgsCorrupted++;
        dtuStats.msgsDropped++;
        logtrace("node%u: drop at ep%u: checksum mismatch (from node%u)",
                 nocId, id, hdr.senderNode);
        return;
    }
    if (hdr.targetGen != 0 && hdr.targetGen != generation) {
        // Addressed to a generation that is not resident. If the kernel
        // parked that generation here (the VPE is descheduled but alive),
        // buffer the message and re-inject it on restore — the DTU stays
        // receptive on behalf of suspended VPEs, credit-bounded. Anything
        // else is stale: a previous owner of this PE (Sec. 3: NoC-level
        // isolation across PE reuse) or a reclaimed VPE.
        auto parked = parkedMsgs.find(hdr.targetGen);
        if (parked != parkedMsgs.end()) {
            if (parked->second.size() >= MAX_SLOTS) {
                dtuStats.msgsDropped++;
                logtrace("node%u: drop at ep%u: parked buffer full "
                         "(gen %u)", nocId, id, hdr.targetGen);
                return;
            }
            parked->second.push_back(
                ParkedMsg{id, hdr, std::move(payload), rctx});
            dtuStats.msgsParked++;
            logtrace("node%u: park at ep%u: gen %u descheduled "
                     "(resident %u)", nocId, id, hdr.targetGen,
                     generation);
            return;
        }
        dtuStats.msgsDropped++;
        logtrace("node%u: drop at ep%u: stale %s (gen %u != %u)",
                 nocId, id, hdr.isReply() ? "reply" : "message",
                 hdr.targetGen, generation);
        return;
    }
    if (id >= epCnt || eps[id].type != EpType::Receive) {
        dtuStats.msgsDropped++;
        logtrace("node%u: drop at ep%u: not a recv EP (from node%u)",
                 nocId, id, hdr.senderNode);
        return;
    }
    RecvEpCfg &cfg = eps[id].recv;
    if (sizeof(MessageHeader) + payload.size() > cfg.slotSize) {
        dtuStats.msgsDropped++;
        logtrace("node%u: drop at ep%u: oversized (from node%u)",
                 nocId, id, hdr.senderNode);
        return;
    }
    RecvState &st = recvState[id];
    // Find a free slot starting at the write position. Messages are
    // dropped if the ring is full (Sec. 4.4.3) - credits normally
    // prevent this.
    uint32_t slot = MAX_SLOTS;
    for (uint32_t i = 0; i < cfg.slotCount; ++i) {
        uint32_t cand = (st.wrPos + i) % cfg.slotCount;
        if (st.slots[cand].s == RecvSlotState::S::Free) {
            slot = cand;
            break;
        }
    }
    if (slot == MAX_SLOTS) {
        dtuStats.msgsDropped++;
        logtrace("node%u: drop at ep%u: ring full (from node%u, "
                 "reply=%d)",
                 nocId, id, hdr.senderNode, hdr.isReply() ? 1 : 0);
        return;
    }
    st.wrPos = (slot + 1) % cfg.slotCount;
    st.slots[slot].s = RecvSlotState::S::Ready;
    st.rctx[slot] = rctx;
    if (M3_REQTRACE_ON && rctx)
        trace::ReqTrace::msgArrived(rctx, eq.curCycle(), nocId,
                                    hdr.isReply());

    spmaddr_t addr = cfg.bufAddr + slot * cfg.slotSize;
    spm.write(addr, &hdr, sizeof(hdr));
    if (!payload.empty())
        spm.write(addr + sizeof(MessageHeader), payload.data(),
                  payload.size());

    dtuStats.msgsReceived++;

    // A reply refunds one credit to the sender's send EP (Sec. 4.4.3),
    // clamped at the configured ceiling: if the sender timed out and
    // already reclaimed the credit, the late reply must not mint one.
    if (hdr.isReply() && hdr.creditEp != INVALID_EP &&
        hdr.creditEp < epCnt) {
        EpRegs &sep = eps[hdr.creditEp];
        if (sep.type == EpType::Send &&
            sep.send.credits != CREDITS_UNLIMITED &&
            sep.send.credits < sep.send.maxCredits) {
            sep.send.credits++;
        }
    }

    if (msgWaiters[id]) {
        Fiber *w = msgWaiters[id];
        msgWaiters[id] = nullptr;
        w->unblock();
    }
}

Error
Dtu::startRead(epid_t id, spmaddr_t dstAddr, goff_t off, uint64_t size)
{
    if (busy)
        return Error::DtuBusy;
    EpRegs &r = epRef(id);
    if (r.type != EpType::Memory)
        return Error::InvalidEp;
    if (!(r.mem.perms & MEM_R))
        return Error::NoPerm;
    if (off > r.mem.size || size > r.mem.size - off)
        return Error::OutOfBounds;

    busy = true;
    if (M3_TRACE_ON)
        trace::Tracer::spanBegin(trace::dtuTrack(nocId), "dtu:read");
    const uint64_t seq = ++cmdSeq;
    dtuStats.memReads++;
    dtuStats.bytesRead += size;

    MemTarget *mem = memAt(r.mem.targetNode);
    if (!mem)
        panic("memory EP targets node %u which has no memory",
              r.mem.targetNode);
    goff_t gaddr = r.mem.offset + off;
    uint32_t tnode = r.mem.targetNode;

    // Request packet (header only) -> target latency -> data response.
    noc.send(nocId, tnode, 0, [this, mem, gaddr, size, dstAddr, tnode,
                               seq] {
        eq.schedule(mem->accessLatency(), [this, mem, gaddr, size, dstAddr,
                                           tnode, seq] {
            auto data = std::make_shared<std::vector<uint8_t>>(size);
            mem->read(gaddr, data->data(), size);
            noc.send(tnode, nocId, static_cast<uint32_t>(size),
                     [this, data, dstAddr, seq] {
                         // The SPM write must not happen for an aborted
                         // command: the PE may have a new owner.
                         if (!busy || seq != cmdSeq)
                             return;
                         spm.write(dstAddr, data->data(), data->size());
                         completeCommand(seq, Error::None);
                     });
        });
    });
    return Error::None;
}

Error
Dtu::startWrite(epid_t id, spmaddr_t srcAddr, goff_t off, uint64_t size)
{
    if (busy)
        return Error::DtuBusy;
    EpRegs &r = epRef(id);
    if (r.type != EpType::Memory)
        return Error::InvalidEp;
    if (!(r.mem.perms & MEM_W))
        return Error::NoPerm;
    if (off > r.mem.size || size > r.mem.size - off)
        return Error::OutOfBounds;

    busy = true;
    if (M3_TRACE_ON)
        trace::Tracer::spanBegin(trace::dtuTrack(nocId), "dtu:write");
    const uint64_t seq = ++cmdSeq;
    dtuStats.memWrites++;
    dtuStats.bytesWritten += size;

    MemTarget *mem = memAt(r.mem.targetNode);
    if (!mem)
        panic("memory EP targets node %u which has no memory",
              r.mem.targetNode);
    goff_t gaddr = r.mem.offset + off;
    uint32_t tnode = r.mem.targetNode;

    auto data = std::make_shared<std::vector<uint8_t>>(size);
    if (size)
        spm.read(srcAddr, data->data(), size);

    noc.send(nocId, tnode, static_cast<uint32_t>(size),
             [this, mem, gaddr, data, tnode, seq] {
                 eq.schedule(mem->accessLatency(), [this, mem, gaddr, data,
                                                    tnode, seq] {
                     mem->write(gaddr, data->data(), data->size());
                     // Completion ack back to the initiator.
                     noc.send(tnode, nocId, 0, [this, seq] {
                         completeCommand(seq, Error::None);
                     });
                 });
             });
    return Error::None;
}

// ---------------------------------------------------------------------
// Parallel transfer slots (distfs striping). Same wire protocol and
// timing as startRead/startWrite, but on independent channels so
// transfers to different memory modules genuinely overlap.
// ---------------------------------------------------------------------

Error
Dtu::startReadX(uint32_t slot, epid_t id, spmaddr_t dstAddr, goff_t off,
                uint64_t size)
{
    if (slot >= XFER_SLOTS)
        return Error::InvalidArgs;
    XferSlot &x = xferSlots[slot];
    if (x.busy)
        return Error::DtuBusy;
    EpRegs &r = epRef(id);
    if (r.type != EpType::Memory)
        return Error::InvalidEp;
    if (!(r.mem.perms & MEM_R))
        return Error::NoPerm;
    if (off > r.mem.size || size > r.mem.size - off)
        return Error::OutOfBounds;

    x.busy = true;
    x.err = Error::None;
    // Overlapping slots cannot nest as B/E spans on the DTU track.
    if (M3_TRACE_ON)
        trace::Tracer::instant(trace::dtuTrack(nocId), "dtu:readx");
    const uint64_t seq = ++x.seq;
    dtuStats.memReads++;
    dtuStats.bytesRead += size;

    MemTarget *mem = memAt(r.mem.targetNode);
    if (!mem)
        panic("memory EP targets node %u which has no memory",
              r.mem.targetNode);
    goff_t gaddr = r.mem.offset + off;
    uint32_t tnode = r.mem.targetNode;

    // Request packet (header only) -> target latency -> data response.
    noc.send(nocId, tnode, 0, [this, mem, gaddr, size, dstAddr, tnode,
                               slot, seq] {
        eq.schedule(mem->accessLatency(), [this, mem, gaddr, size, dstAddr,
                                           tnode, slot, seq] {
            auto data = std::make_shared<std::vector<uint8_t>>(size);
            mem->read(gaddr, data->data(), size);
            noc.send(tnode, nocId, static_cast<uint32_t>(size),
                     [this, data, dstAddr, slot, seq] {
                         XferSlot &x = xferSlots[slot];
                         // The SPM write must not happen for a stale
                         // completion: the PE may have a new owner.
                         if (!x.busy || seq != x.seq)
                             return;
                         spm.write(dstAddr, data->data(), data->size());
                         completeXfer(slot, seq, Error::None);
                     });
        });
    });
    return Error::None;
}

Error
Dtu::startWriteX(uint32_t slot, epid_t id, spmaddr_t srcAddr, goff_t off,
                 uint64_t size)
{
    if (slot >= XFER_SLOTS)
        return Error::InvalidArgs;
    XferSlot &x = xferSlots[slot];
    if (x.busy)
        return Error::DtuBusy;
    EpRegs &r = epRef(id);
    if (r.type != EpType::Memory)
        return Error::InvalidEp;
    if (!(r.mem.perms & MEM_W))
        return Error::NoPerm;
    if (off > r.mem.size || size > r.mem.size - off)
        return Error::OutOfBounds;

    x.busy = true;
    x.err = Error::None;
    if (M3_TRACE_ON)
        trace::Tracer::instant(trace::dtuTrack(nocId), "dtu:writex");
    const uint64_t seq = ++x.seq;
    dtuStats.memWrites++;
    dtuStats.bytesWritten += size;

    MemTarget *mem = memAt(r.mem.targetNode);
    if (!mem)
        panic("memory EP targets node %u which has no memory",
              r.mem.targetNode);
    goff_t gaddr = r.mem.offset + off;
    uint32_t tnode = r.mem.targetNode;

    auto data = std::make_shared<std::vector<uint8_t>>(size);
    if (size)
        spm.read(srcAddr, data->data(), size);

    noc.send(nocId, tnode, static_cast<uint32_t>(size),
             [this, mem, gaddr, data, tnode, slot, seq] {
                 eq.schedule(mem->accessLatency(), [this, mem, gaddr, data,
                                                    tnode, slot, seq] {
                     mem->write(gaddr, data->data(), data->size());
                     // Completion ack back to the initiator.
                     noc.send(tnode, nocId, 0, [this, slot, seq] {
                         completeXfer(slot, seq, Error::None);
                     });
                 });
             });
    return Error::None;
}

bool
Dtu::xferBusy(uint32_t slot) const
{
    return slot < XFER_SLOTS && xferSlots[slot].busy;
}

void
Dtu::completeXfer(uint32_t slot, uint64_t seq, Error e)
{
    XferSlot &x = xferSlots[slot];
    if (!x.busy || seq != x.seq)
        return;
    x.busy = false;
    x.err = e;
    if (!anyXferBusy() && xferWaiter) {
        Fiber *w = xferWaiter;
        xferWaiter = nullptr;
        w->unblock();
    }
}

Error
Dtu::waitXferAll()
{
    Fiber *self = Fiber::current();
    if (!self)
        panic("waitXferAll outside a fiber");
    const uint32_t moved = self->moveEpoch();
    while (anyXferBusy()) {
        xferWaiter = self;
        self->block();
        if (self->moveEpoch() != moved) {
            if (xferWaiter == self)
                xferWaiter = nullptr;
            return Error::VpeMoved;
        }
    }
    for (const XferSlot &x : xferSlots)
        if (x.err != Error::None)
            return x.err;
    return Error::None;
}

Error
Dtu::startZero(epid_t id, goff_t off, uint64_t size)
{
    if (busy)
        return Error::DtuBusy;
    EpRegs &r = epRef(id);
    if (r.type != EpType::Memory)
        return Error::InvalidEp;
    if (!(r.mem.perms & MEM_W))
        return Error::NoPerm;
    if (off > r.mem.size || size > r.mem.size - off)
        return Error::OutOfBounds;

    MemTarget *mem = memAt(r.mem.targetNode);
    goff_t gaddr = r.mem.offset + off;

    // Zero never sets busy, so it shows as an instant, not a span.
    if (M3_TRACE_ON)
        trace::Tracer::instant(trace::dtuTrack(nocId), "dtu:zero");

    // Fire-and-forget: the zeroing happens at the memory, in the
    // background (Sec. 5.4); only the small command packet is sent.
    noc.send(nocId, r.mem.targetNode, 0, [mem, gaddr, size] {
        mem->zero(gaddr, size);
    });
    return Error::None;
}

// ---------------------------------------------------------------------
// Receive side.
// ---------------------------------------------------------------------

bool
Dtu::hasMsg(epid_t id) const
{
    const EpRegs &r = ep(id);
    if (r.type != EpType::Receive)
        return false;
    const RecvState &st = recvState[id];
    for (uint32_t i = 0; i < r.recv.slotCount; ++i)
        if (st.slots[i].s == RecvSlotState::S::Ready)
            return true;
    return false;
}

int
Dtu::fetchMsg(epid_t id)
{
    EpRegs &r = epRef(id);
    if (r.type != EpType::Receive)
        return -1;
    RecvState &st = recvState[id];
    for (uint32_t i = 0; i < r.recv.slotCount; ++i) {
        uint32_t cand = (st.rdPos + i) % r.recv.slotCount;
        if (st.slots[cand].s == RecvSlotState::S::Ready) {
            st.slots[cand].s = RecvSlotState::S::Fetched;
            st.rdPos = (cand + 1) % r.recv.slotCount;
            // Request-tracing shadow: the fetching fiber adopts the
            // message's context (and drops whatever it carried), so
            // syscall handling, service loops and client reply pickup
            // all attribute to the right request automatically.
            if (M3_REQTRACE_ON) {
                uint64_t rctx = st.rctx[cand];
                if (Fiber *f = Fiber::current())
                    f->setReqCtx(rctx);
                if (rctx)
                    trace::ReqTrace::msgFetched(rctx, eq.curCycle());
            }
            return static_cast<int>(cand);
        }
    }
    return -1;
}

spmaddr_t
Dtu::msgAddr(epid_t id, uint32_t slot) const
{
    const EpRegs &r = ep(id);
    if (r.type != EpType::Receive || slot >= r.recv.slotCount)
        panic("msgAddr on invalid EP %u / slot %u", id, slot);
    return r.recv.bufAddr + slot * r.recv.slotSize;
}

MessageHeader
Dtu::msgHeader(epid_t id, uint32_t slot) const
{
    MessageHeader hdr;
    spm.read(msgAddr(id, slot), &hdr, sizeof(hdr));
    return hdr;
}

Error
Dtu::retargetReplies(epid_t id, label_t label, uint32_t newNode)
{
    if (!privileged)
        return Error::NotPrivileged;
    const EpRegs &r = ep(id);
    if (r.type != EpType::Receive)
        return Error::InvalidEp;
    const RecvState &st = recvState[id];
    for (uint32_t slot = 0; slot < r.recv.slotCount; ++slot) {
        if (st.slots[slot].s == RecvSlotState::S::Free)
            continue;
        spmaddr_t addr = r.recv.bufAddr + slot * r.recv.slotSize;
        MessageHeader hdr;
        spm.read(addr, &hdr, sizeof(hdr));
        if (hdr.label != label || hdr.senderNode == newNode)
            continue;
        hdr.senderNode = newNode;
        spm.write(addr, &hdr, sizeof(hdr));
    }
    return Error::None;
}

Error
Dtu::ackMsg(epid_t id, uint32_t slot)
{
    EpRegs &r = epRef(id);
    if (r.type != EpType::Receive || slot >= r.recv.slotCount)
        return Error::InvalidArgs;
    RecvState &st = recvState[id];
    if (st.slots[slot].s != RecvSlotState::S::Fetched)
        return Error::InvalidArgs;
    st.slots[slot].s = RecvSlotState::S::Free;
    return Error::None;
}

Error
Dtu::waitForMsg(epid_t id, Cycles timeout)
{
    Fiber *self = Fiber::current();
    if (!self)
        panic("waitForMsg outside a fiber");
    const uint32_t moved = self->moveEpoch();
    if (timeout == 0) {
        while (!hasMsg(id)) {
            msgWaiters[id] = self;
            self->block();
            if (self->moveEpoch() != moved) {
                if (msgWaiters[id] == self)
                    msgWaiters[id] = nullptr;
                return Error::VpeMoved;
            }
        }
        return Error::None;
    }
    auto expired = std::make_shared<bool>(false);
    auto armed = std::make_shared<bool>(true);
    eq.schedule(timeout, [self, expired, armed] {
        if (*armed) {
            *expired = true;
            self->unblock();
        }
    });
    while (!hasMsg(id) && !*expired) {
        msgWaiters[id] = self;
        self->block();
        if (self->moveEpoch() != moved) {
            *armed = false;
            if (msgWaiters[id] == self)
                msgWaiters[id] = nullptr;
            return Error::VpeMoved;
        }
    }
    *armed = false;
    if (msgWaiters[id] == self)
        msgWaiters[id] = nullptr;
    return hasMsg(id) ? Error::None : Error::Timeout;
}

Error
Dtu::waitForMsgs(const std::vector<epid_t> &ids, Cycles timeout)
{
    Fiber *self = Fiber::current();
    if (!self)
        panic("waitForMsgs outside a fiber");
    const uint32_t moved = self->moveEpoch();
    auto anyReady = [&] {
        for (epid_t id : ids)
            if (hasMsg(id))
                return true;
        return false;
    };
    if (timeout == 0) {
        while (!anyReady()) {
            for (epid_t id : ids)
                msgWaiters[id] = self;
            self->block();
            for (epid_t id : ids)
                if (msgWaiters[id] == self)
                    msgWaiters[id] = nullptr;
            if (self->moveEpoch() != moved)
                return Error::VpeMoved;
        }
        return Error::None;
    }
    auto expired = std::make_shared<bool>(false);
    auto armed = std::make_shared<bool>(true);
    eq.schedule(timeout, [self, expired, armed] {
        if (*armed) {
            *expired = true;
            self->unblock();
        }
    });
    while (!anyReady() && !*expired) {
        for (epid_t id : ids)
            msgWaiters[id] = self;
        self->block();
        for (epid_t id : ids)
            if (msgWaiters[id] == self)
                msgWaiters[id] = nullptr;
        if (self->moveEpoch() != moved) {
            *armed = false;
            return Error::VpeMoved;
        }
    }
    *armed = false;
    for (epid_t id : ids)
        if (msgWaiters[id] == self)
            msgWaiters[id] = nullptr;
    return anyReady() ? Error::None : Error::Timeout;
}

} // namespace m3
