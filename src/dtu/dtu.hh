/**
 * @file
 * The data transfer unit (DTU): the common per-PE hardware component that
 * is the core's only interface to PE-external resources (Sec. 3.1, 4.4).
 *
 * The DTU offers message passing (send/reply into remote ringbuffers) and
 * remote memory access (RDMA-style reads/writes against memory endpoints),
 * plus the privilege machinery for NoC-level isolation: endpoint
 * configuration registers are writable only by privileged DTUs — locally
 * on the kernel PE, or remotely through external configuration packets
 * that only a privileged DTU may emit.
 *
 * Data movement is physical: payload bytes really flow from SPM to SPM or
 * between SPM and DRAM, and the NoC model charges 8 bytes/cycle plus hop
 * latency and link contention.
 */

#ifndef M3_DTU_DTU_HH
#define M3_DTU_DTU_HH

#include <array>
#include <functional>
#include <map>
#include <vector>

#include "base/cost_model.hh"
#include "base/errors.hh"
#include "base/types.hh"
#include "dtu/regs.hh"
#include "mem/mem_target.hh"
#include "mem/spm.hh"
#include "noc/noc.hh"
#include "sim/fiber.hh"

namespace m3
{

class FaultPlan;

/** DTU statistics for tests and ablation benches. */
struct DtuStats
{
    uint64_t msgsSent = 0;
    uint64_t msgsReceived = 0;
    uint64_t msgsDropped = 0;
    uint64_t msgsCorrupted = 0;  //!< dropped due to checksum mismatch
    uint64_t creditDenials = 0;
    uint64_t memReads = 0;
    uint64_t memWrites = 0;
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
    uint64_t extConfigs = 0;
    uint64_t msgsParked = 0;    //!< buffered for a descheduled generation
    uint64_t msgsUnparked = 0;  //!< re-injected when that VPE came back
};

/**
 * One DTU instance, attached to one PE. The platform wires all DTUs
 * together by providing resolvers from NoC node ids to peer DTUs and
 * memory targets.
 */
class Dtu
{
  public:
    /** Resolves a NoC node id to the DTU attached there (or nullptr). */
    using DtuResolver = std::function<Dtu *(uint32_t)>;
    /** Resolves a NoC node id to a memory target (or nullptr). */
    using MemResolver = std::function<MemTarget *(uint32_t)>;

    struct RecvSlotState
    {
        enum class S : uint8_t { Free, Ready, Fetched };
        S s = S::Free;
    };

    struct RecvState
    {
        std::array<RecvSlotState, MAX_SLOTS> slots;
        uint32_t rdPos = 0;  //!< next slot to fetch
        uint32_t wrPos = 0;  //!< next slot the DTU writes to
        /** Request-tracing context shadowing each ring slot: pure
         *  host-side observability state. It rides neither in the SPM
         *  ring nor in CTX_WIRE_BYTES — the simulated machine never
         *  sees it — but travels with CtxState copies so parked/restored
         *  VPEs keep their request attribution. */
        std::array<uint64_t, MAX_SLOTS> rctx{};
    };

    /**
     * The complete per-VPE DTU context, as fetched/restored by the kernel
     * on a VPE switch: every endpoint register, the ringbuffer cursor
     * state, and the owning generation. The ringbuffer *contents* live in
     * the SPM and travel with the scratchpad spill, not with this struct.
     */
    struct CtxState
    {
        std::array<EpRegs, MAX_EP_COUNT> eps;
        std::array<RecvState, MAX_EP_COUNT> recvState;
        uint32_t generation = 0;
        /** The last-error register: co-residents share the physical one,
         *  so each context carries its own copy across switches. */
        Error lastErr = Error::None;
    };

    /**
     * Architectural size of this DTU's context on the wire (EP register
     * file + ring cursors). Derived from the PE's endpoint count, not
     * sizeof(CtxState): host padding and the MAX_EP_COUNT backing store
     * must not leak into simulated cycles.
     */
    uint32_t
    ctxWireBytes() const
    {
        return static_cast<uint32_t>(epCnt) * 48 + 64;
    }

    Dtu(EventQueue &eq, Noc &noc, Spm &spm, uint32_t nocId,
        const HwCosts &hw, epid_t epCount = EP_COUNT);

    /** Number of endpoints this DTU actually implements. */
    epid_t epCount() const { return epCnt; }

    Dtu(const Dtu &) = delete;
    Dtu &operator=(const Dtu &) = delete;

    /** Platform wiring (must be called before any traffic). */
    void
    connect(DtuResolver dtus, MemResolver mems)
    {
        dtuAt = std::move(dtus);
        memAt = std::move(mems);
    }

    uint32_t nodeId() const { return nocId; }

    // -------------------------------------------------------------------
    // Privilege (Sec. 3: "all DTUs are privileged at boot; the kernel
    // downgrades the application PEs' DTUs").
    // -------------------------------------------------------------------

    bool isPrivileged() const { return privileged; }

    /**
     * Local config access: allowed only while privileged (the kernel PE).
     * Unprivileged software calling these gets Error::NotPrivileged,
     * which is exactly the isolation property of the design.
     */
    Error configSend(epid_t ep, const SendEpCfg &cfg);
    Error configRecv(epid_t ep, const RecvEpCfg &cfg);
    Error configMem(epid_t ep, const MemEpCfg &cfg);
    Error invalidateEp(epid_t ep);

    /**
     * Remote config access: ship an endpoint configuration to the DTU on
     * @p targetNode. Only privileged DTUs may send these packets; the
     * receiving DTU applies them without involving its core.
     * @param onDone invoked (with the result) when the target acked.
     */
    Error extConfigSend(uint32_t targetNode, epid_t ep, const SendEpCfg &cfg,
                        std::function<void(Error)> onDone = nullptr);
    Error extConfigRecv(uint32_t targetNode, epid_t ep, const RecvEpCfg &cfg,
                        std::function<void(Error)> onDone = nullptr);
    Error extConfigMem(uint32_t targetNode, epid_t ep, const MemEpCfg &cfg,
                       std::function<void(Error)> onDone = nullptr);
    Error extInvalidateEp(uint32_t targetNode, epid_t ep,
                          std::function<void(Error)> onDone = nullptr);

    /** Remotely clear the privileged flag (done once at boot per app PE). */
    Error extDowngrade(uint32_t targetNode,
                       std::function<void(Error)> onDone = nullptr);

    /**
     * Remotely reset the DTU: invalidate all endpoints and drop pending
     * messages (used when the kernel revokes/reuses a PE).
     */
    Error extReset(uint32_t targetNode,
                   std::function<void(Error)> onDone = nullptr);

    /**
     * Remotely wake the attached core so it starts executing at its entry
     * point (used by the kernel after loading a program, Sec. 4.5.5).
     */
    Error extStart(uint32_t targetNode,
                   std::function<void(Error)> onDone = nullptr);

    /** Invoked when this DTU receives a start command (wired by the PE). */
    void setStartHook(std::function<void()> hook)
    {
        startHook = std::move(hook);
    }

    /**
     * Remotely wake the attached core to run the program of @p vpeId.
     * Like extStart, but carries the VPE identity so a PE hosting several
     * VPEs starts the right one (kernel-driven multiplexing).
     */
    Error extStartVpe(uint32_t targetNode, uint64_t vpeId,
                      std::function<void(Error)> onDone = nullptr);

    /** Invoked on a VPE-qualified start command (wired by the PE). */
    void setStartVpeHook(std::function<void(uint64_t)> hook)
    {
        startVpeHook = std::move(hook);
    }

    /**
     * Kernel-maintained hint: more than one VPE currently lives on this
     * PE. Software uses it to yield instead of idle-waiting, so a
     * blocked VPE does not burn the rest of its slice holding the core
     * (the multiplexing analogue of MONITOR/MWAIT). Purely advisory —
     * not part of the architectural context.
     */
    void setSharedPe(bool shared) { sharedPeHint = shared; }
    bool sharedPe() const { return sharedPeHint; }

    // -------------------------------------------------------------------
    // VPE context switching (kernel-driven time multiplexing). The kernel
    // suspends the resident VPE by draining the in-flight command,
    // fetching the DTU context, and spilling the SPM; the reverse order
    // restores another VPE.
    // -------------------------------------------------------------------

    /**
     * Wait remotely until the target DTU's in-flight command (if any) has
     * completed: the ack is deferred until the DTU is idle. Issued before
     * a context fetch so no command is lost mid-flight.
     */
    Error extDrain(uint32_t targetNode, std::function<void(Error)> onDone);

    /**
     * Fetch the target DTU's context into @p out (kernel-owned storage;
     * must stay alive until @p onDone fires). The target is left without
     * an owner: all EPs invalid, generation 0, and the fetched generation
     * registered as *parked* — messages addressed to it are buffered at
     * the DTU instead of delivered or dropped, bounded by MAX_SLOTS.
     */
    Error extFetchCtx(uint32_t targetNode, CtxState *out,
                      std::function<void(Error)> onDone);

    /**
     * Restore a previously fetched (or kernel-built) context on the
     * target DTU (@p st must stay alive until @p onDone fires). Messages
     * buffered for the restored generation are re-injected in arrival
     * order, and the target's context-switch epoch is bumped so local
     * software can invalidate cached gate bindings.
     */
    Error extRestoreCtx(uint32_t targetNode, const CtxState *st,
                        std::function<void(Error)> onDone);

    /**
     * Discard the parked state of @p gen on the target DTU (the VPE
     * exited or was reclaimed while descheduled): buffered messages for
     * it are dropped, and future messages carrying it become stale.
     */
    Error extDiscardCtx(uint32_t targetNode, uint32_t gen,
                        std::function<void(Error)> onDone = nullptr);

    /** The DTU's current owning generation (kernel bookkeeping, tests). */
    uint32_t dtuGeneration() const { return generation; }

    /**
     * Bumped on every context restore. Software compares a cached value
     * to detect that a switch happened and its gate bindings may be gone.
     */
    uint32_t ctxEpoch() const { return ctxSwitchEpoch; }

    /**
     * Drop any wait registrations @p f holds on this DTU (the fiber is
     * being parked; a co-resident VPE must not consume its wakeups).
     * unpark() delivers a spurious wakeup, so the waiter re-registers.
     */
    void removeWaiter(Fiber *f);

    /**
     * Rewrite the stored sender node of buffered messages: every occupied
     * slot of receive EP @p ep whose header label equals @p label gets
     * hdr.senderNode = @p newNode. Used by the kernel when a VPE migrates
     * while a request of it still sits (or is being worked on) in the
     * kernel's syscall ring — the deferred reply must travel to the VPE's
     * new home. Privileged-only, local (the kernel patches its own ring).
     */
    Error retargetReplies(epid_t ep, label_t label, uint32_t newNode);

    // -------------------------------------------------------------------
    // Commands, issued by the local core via the command registers.
    // All return immediately with a validation result; completion is
    // signalled through isBusy()/waitUntilIdle().
    // -------------------------------------------------------------------

    /**
     * Send the @p size bytes at SPM address @p msgAddr to the endpoint's
     * target. @p replyEp (optional) names a local receive EP for the
     * reply; @p replyLabel is the label that reply will carry.
     */
    Error startSend(epid_t ep, spmaddr_t msgAddr, uint32_t size,
                    epid_t replyEp = INVALID_EP, label_t replyLabel = 0);

    /**
     * Reply to the fetched message in @p slot of receive EP @p ep with the
     * @p size bytes at @p msgAddr. Uses the reply info from the message
     * header in the ringbuffer; requires a reply-protected ring.
     */
    Error startReply(epid_t ep, uint32_t slot, spmaddr_t msgAddr,
                     uint32_t size);

    /**
     * Read @p size bytes from offset @p off of memory EP @p ep into the
     * local SPM at @p dstAddr (RDMA read, Sec. 4.4.1).
     */
    Error startRead(epid_t ep, spmaddr_t dstAddr, goff_t off, uint64_t size);

    /** Write local SPM bytes to the endpoint's memory (RDMA write). */
    Error startWrite(epid_t ep, spmaddr_t srcAddr, goff_t off,
                     uint64_t size);

    /**
     * Ask the remote memory to zero a range; fire-and-forget. Used by
     * m3fs to prepare zero blocks in the background (Sec. 5.4).
     */
    Error startZero(epid_t ep, goff_t off, uint64_t size);

    // -------------------------------------------------------------------
    // Parallel transfer slots. A small engine of XFER_SLOTS independent
    // one-command channels beside the classic command registers, used by
    // distfs to keep RDMA transfers to different stripes in flight
    // simultaneously from one client. Each slot mirrors the exact timing
    // of startRead/startWrite; traced as instants (the slots overlap, so
    // they cannot nest as B/E spans on the DTU track).
    // -------------------------------------------------------------------

    static constexpr uint32_t XFER_SLOTS = 4;

    /** startRead, but on parallel slot @p slot (Error::DtuBusy if the
     *  slot is in flight). */
    Error startReadX(uint32_t slot, epid_t ep, spmaddr_t dstAddr,
                     goff_t off, uint64_t size);

    /** startWrite, but on parallel slot @p slot. */
    Error startWriteX(uint32_t slot, epid_t ep, spmaddr_t srcAddr,
                      goff_t off, uint64_t size);

    /** True while slot @p slot has a transfer in flight. */
    bool xferBusy(uint32_t slot) const;

    /**
     * Block the calling fiber until every parallel slot is idle.
     * @return the first slot error of this batch (slot order), or None.
     */
    Error waitXferAll();

    /** True while a command is in flight. */
    bool isBusy() const { return busy; }

    /** Result of the last completed command. */
    Error lastError() const { return cmdError; }

    /**
     * Block the calling fiber until the current command completed.
     * With @p timeout > 0, gives up after that many cycles and returns
     * Error::Timeout (the command stays in flight until aborted).
     * Otherwise returns the command's result.
     */
    Error waitUntilIdle(Cycles timeout = 0);

    /**
     * Abort the in-flight command, if any: the DTU becomes idle with
     * lastError() == Aborted, and a late completion of the aborted
     * command is ignored. Software calls this after a timed-out wait
     * before reusing the DTU. With @p refund, a credit consumed by an
     * aborted send is put back (kernel-driven aborts on a VPE switch;
     * the software retry layer instead calls refundCredit() itself).
     */
    void abortCommand(bool refund = false);

    /**
     * Put one credit back into send EP @p ep. Models the abort-reclaim
     * of a credit whose message is known lost (timed-out request): the
     * retry layer calls this before resending, since the lost message
     * can no longer trigger the regular reply-time refund.
     */
    Error refundCredit(epid_t ep);

    // -------------------------------------------------------------------
    // Receive side.
    // -------------------------------------------------------------------

    /**
     * Fetch the oldest unread message of receive EP @p ep.
     * @return the slot index, or -1 if none is pending.
     */
    int fetchMsg(epid_t ep);

    /** SPM address of the header of the message in @p slot. */
    spmaddr_t msgAddr(epid_t ep, uint32_t slot) const;

    /** Read the header of the message in @p slot (from the SPM). */
    MessageHeader msgHeader(epid_t ep, uint32_t slot) const;

    /** Free the ringbuffer slot of a processed message. */
    Error ackMsg(epid_t ep, uint32_t slot);

    /** True if EP @p ep has an unfetched message. */
    bool hasMsg(epid_t ep) const;

    /**
     * Block the calling fiber until a message is pending on @p ep
     * (models the register polling / future low-power wait, Sec. 4.3).
     * With @p timeout > 0, returns Error::Timeout after that many
     * cycles without a message; Error::None once one is pending.
     */
    Error waitForMsg(epid_t ep, Cycles timeout = 0);

    /** Block until any of the given EPs has a pending message. */
    Error waitForMsgs(const std::vector<epid_t> &eps, Cycles timeout = 0);

    /** Inspect an endpoint's registers (tests, kernel bookkeeping). */
    const EpRegs &ep(epid_t id) const;

    /** Remaining credits of a send EP (register read). */
    uint32_t credits(epid_t ep) const;

    const DtuStats &stats() const { return dtuStats; }
    void resetStats() { dtuStats = DtuStats{}; }

    /** Attach a fault plan (payload corruption, ext-ack refusal). */
    void setFaultPlan(FaultPlan *plan) { faults = plan; }

  private:
    /** A message buffered for a descheduled (parked) generation. */
    struct ParkedMsg
    {
        epid_t ep;
        MessageHeader hdr;
        std::vector<uint8_t> payload;
        uint64_t rctx = 0;  //!< request-tracing shadow (host-side only)
    };

    /** Incoming message (runs at packet arrival on the receive side).
     *  @p rctx is the request-tracing context shipped alongside the
     *  message as host-side shadow state (0 = untraced). */
    void handleMsg(epid_t ep, const MessageHeader &hdr,
                   std::vector<uint8_t> payload, uint64_t rctx = 0);

    /** Apply an external configuration (receive side). */
    Error applyExtConfig(epid_t ep, const EpRegs &regs);

    void applyReset();

    /** Generic helper for the ext* operations. */
    Error sendExt(uint32_t targetNode, std::function<Error(Dtu &)> apply,
                  std::function<void(Error)> onDone);

    /**
     * Complete the in-flight command @p seq. A stale @p seq (the
     * command was aborted and possibly superseded) is ignored, so late
     * NoC round-trip completions cannot corrupt a newer command.
     */
    void completeCommand(uint64_t seq, Error e);

    /** Unconditionally finish the current command with result @p e. */
    void finishCommand(Error e);

    /** Receive-side application of a context fetch/restore. */
    void fetchCtxLocal(CtxState &out);
    void restoreCtxLocal(const CtxState &st);

    EpRegs &epRef(epid_t id);
    void checkEpId(epid_t id) const;

    EventQueue &eq;
    Noc &noc;
    Spm &spm;
    uint32_t nocId;
    HwCosts hw;

    bool privileged = true;
    /** Endpoints implemented by this DTU (<= MAX_EP_COUNT). */
    epid_t epCnt = EP_COUNT;
    /** Bumped on every reset; stale replies are filtered against it. */
    uint32_t generation = 1;
    std::array<EpRegs, MAX_EP_COUNT> eps;
    std::array<RecvState, MAX_EP_COUNT> recvState;

    /** One parallel transfer channel (see startReadX). */
    struct XferSlot
    {
        bool busy = false;
        uint64_t seq = 0;   //!< epoch; stale completions are ignored
        Error err = Error::None;
    };

    /** Finish slot @p slot if @p seq is still current. */
    void completeXfer(uint32_t slot, uint64_t seq, Error e);

    /** Abort every in-flight parallel slot (reset / context fetch). */
    void abortXfers();

    /** True if any parallel transfer slot is in flight. */
    bool
    anyXferBusy() const
    {
        for (const XferSlot &x : xferSlots)
            if (x.busy)
                return true;
        return false;
    }

    bool busy = false;
    Error cmdError = Error::None;
    /** Epoch of the current command; completions carry the epoch. */
    uint64_t cmdSeq = 0;
    /** Send EP of the in-flight command and whether it took a credit
     *  (abort-with-refund needs to know what to give back). */
    epid_t cmdEp = INVALID_EP;
    bool cmdTookCredit = false;
    Fiber *cmdWaiter = nullptr;
    std::array<XferSlot, XFER_SLOTS> xferSlots;
    Fiber *xferWaiter = nullptr;
    std::array<Fiber *, MAX_EP_COUNT> msgWaiters{};
    /** Deferred drain acks, fired when the current command finishes. */
    std::vector<std::function<void()>> idleWaiters;
    /** Parked generations and the messages buffered for them. */
    std::map<uint32_t, std::vector<ParkedMsg>> parkedMsgs;
    /** Bumped on every context restore (gate-cache invalidation). */
    uint32_t ctxSwitchEpoch = 0;

    DtuResolver dtuAt;
    MemResolver memAt;
    std::function<void()> startHook;
    std::function<void(uint64_t)> startVpeHook;
    bool sharedPeHint = false;
    FaultPlan *faults = nullptr;

    DtuStats dtuStats;
};

} // namespace m3

#endif // M3_DTU_DTU_HH
