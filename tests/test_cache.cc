/**
 * @file
 * Tests for CachedMem, the Sec. 7 future-work cache: correctness against
 * a reference model under random access, write-back/flush semantics,
 * locality behaviour and the isolation property (the cache goes through
 * the DTU, so revocation still bites).
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "libm3/cached_mem.hh"
#include "libm3/m3system.hh"
#include "m3fs/block_cache.hh"

namespace m3
{
namespace
{

M3SystemCfg
bareCfg()
{
    M3SystemCfg cfg;
    cfg.appPes = 2;
    cfg.withFs = false;
    return cfg;
}

TEST(CachedMem, RandomAccessMatchesReferenceModel)
{
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        constexpr size_t REGION = 64 * KiB;
        MemGate gate = MemGate::create(env, REGION, MEM_RW);
        CachedMem cache(gate, 64, 16, 2);

        std::vector<uint8_t> ref(REGION, 0);
        Random rng(2024);
        for (int op = 0; op < 2000; ++op) {
            size_t addr = rng.nextBounded(REGION - 32);
            size_t len = 1 + rng.nextBounded(32);
            if (rng.nextBounded(2)) {
                uint8_t val = static_cast<uint8_t>(rng.next());
                std::vector<uint8_t> buf(len, val);
                if (cache.write(addr, buf.data(), len) != Error::None)
                    return 1;
                std::fill_n(ref.begin() + addr, len, val);
            } else {
                std::vector<uint8_t> buf(len);
                if (cache.read(addr, buf.data(), len) != Error::None)
                    return 2;
                for (size_t i = 0; i < len; ++i)
                    if (buf[i] != ref[addr + i])
                        return 3;
            }
        }
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(CachedMem, FlushMakesWritesVisibleToOtherGates)
{
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        MemGate gate = MemGate::create(env, 64 * KiB, MEM_RW);
        MemGate alias = gate.derive(0, 64 * KiB, MEM_R);
        CachedMem cache(gate);

        uint64_t v = 0xfeedface;
        cache.write(4096, &v, sizeof(v));
        // Before the flush the write may only live in the cache;
        // after it, every path to the memory sees it.
        if (cache.flush() != Error::None)
            return 1;
        uint64_t got = 0;
        alias.read(&got, sizeof(got), 4096);
        return got == 0xfeedface ? 0 : 2;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(CachedMem, SequentialLocalityHitsAfterFirstTouch)
{
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        MemGate gate = MemGate::create(env, 64 * KiB, MEM_RW);
        CachedMem cache(gate, 64, 64, 4);
        // Walk 4 KiB byte by byte: one miss per 64-byte line.
        uint8_t b;
        for (size_t i = 0; i < 4096; ++i)
            cache.read(i, &b, 1);
        const CacheStats &s = cache.stats();
        if (s.misses != 4096 / 64)
            return 1;
        if (s.hits != 4096 - 4096 / 64)
            return 2;
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(CachedMem, MissesCostDtuTransfers)
{
    M3System sys(bareCfg());
    Cycles seqDur = 0, randDur = 0;
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        MemGate gate = MemGate::create(env, 256 * KiB, MEM_RW);
        // Tiny cache: random access across 256 KiB thrashes it.
        CachedMem cache(gate, 64, 8, 2);
        uint8_t b;
        Cycles t0 = env.platform.simulator().curCycle();
        for (size_t i = 0; i < 2048; ++i)
            cache.read(i, &b, 1);
        seqDur = env.platform.simulator().curCycle() - t0;

        Random rng(7);
        t0 = env.platform.simulator().curCycle();
        for (size_t i = 0; i < 2048; ++i)
            cache.read(rng.nextBounded(256 * KiB), &b, 1);
        randDur = env.platform.simulator().curCycle() - t0;
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    // Random access pays a DTU line fill almost every time.
    EXPECT_GT(randDur, 5 * seqDur);
}

TEST(CachedMem, EvictionWritesDirtyLinesBack)
{
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        MemGate gate = MemGate::create(env, 256 * KiB, MEM_RW);
        // Direct-mapped-ish tiny cache to force evictions.
        CachedMem cache(gate, 64, 4, 1);
        // Dirty many distinct lines mapping to the same sets.
        for (goff_t addr = 0; addr < 64 * KiB; addr += 256) {
            uint32_t v = static_cast<uint32_t>(addr);
            if (cache.write(addr, &v, sizeof(v)) != Error::None)
                return 1;
        }
        if (cache.stats().writeBacks == 0)
            return 2;
        cache.flush();
        // Everything must have landed in the memory.
        MemGate alias = gate.derive(0, 256 * KiB, MEM_R);
        for (goff_t addr = 0; addr < 64 * KiB; addr += 256) {
            uint32_t v = 0;
            alias.read(&v, sizeof(v), addr);
            if (v != static_cast<uint32_t>(addr))
                return 3;
        }
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(CachedMem, RevocationStillIsolates)
{
    // Sec. 7: "the DTU remains the only component with access to
    // PE-external resources and it thus suffices to control the DTU."
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        MemGate gate = MemGate::create(env, 64 * KiB, MEM_RW);
        CachedMem cache(gate, 64, 4, 1);
        uint8_t b;
        if (cache.read(0, &b, 1) != Error::None)
            return 1;
        // Revoke the underlying capability: cached lines may linger,
        // but any further fill or write-back fails in hardware.
        env.revoke(gate.capSel(), true);
        Error e = cache.read(128 * 64, &b, 1);  // different line
        return e == Error::InvalidEp ? 0 : 2;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

// ---------------------------------------------------------------------
// The m3fs server's block cache.
// ---------------------------------------------------------------------

TEST(BlockCache, FullBlockOverwriteSkipsTheFill)
{
    M3System sys(bareCfg());
    m3fs::BlockCacheStats stats;
    Cycles fullDur = 0, partialDur = 0;
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        constexpr uint32_t BS = 1024;
        MemGate gate = MemGate::create(env, 64 * KiB, MEM_RW);
        m3fs::BlockCache cache(gate, BS, 4);
        std::vector<uint8_t> block(BS, 0xAB);

        // A miss covered entirely by the write: no DMA fetch.
        Cycles t0 = env.platform.simulator().curCycle();
        cache.write(0, block.data(), BS);
        fullDur = env.platform.simulator().curCycle() - t0;

        // A partial write to an uncached block must fetch it first.
        t0 = env.platform.simulator().curCycle();
        cache.write(BS + 16, block.data(), 64);
        partialDur = env.platform.simulator().curCycle() - t0;

        cache.flushAll();
        stats = cache.stats();
        // The skipped fill must not have corrupted the data.
        std::vector<uint8_t> back(BS);
        gate.read(back.data(), BS, 0);
        return back == block ? 0 : 1;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.fillsSkipped, 1u);
    // The cycle pin on the saved transfer: a full-block overwrite miss
    // costs strictly less than a partial-write miss, which pays the
    // DMA fetch of the old content.
    EXPECT_LT(fullDur, partialDur);
}

TEST(BlockCache, PartialWritePreservesSurroundingBytes)
{
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        constexpr uint32_t BS = 1024;
        MemGate gate = MemGate::create(env, 64 * KiB, MEM_RW);
        // Pre-existing content the cache has never seen.
        std::vector<uint8_t> old(BS);
        for (uint32_t i = 0; i < BS; ++i)
            old[i] = static_cast<uint8_t>(i * 7);
        gate.write(old.data(), BS, 3 * BS);

        m3fs::BlockCache cache(gate, BS, 4);
        std::vector<uint8_t> patch(100, 0xEE);
        cache.write(3 * BS + 50, patch.data(), patch.size());
        if (cache.stats().fillsSkipped != 0)
            return 1;
        cache.flushAll();

        std::vector<uint8_t> back(BS);
        gate.read(back.data(), BS, 3 * BS);
        for (uint32_t i = 0; i < BS; ++i) {
            uint8_t want = (i >= 50 && i < 150) ? 0xEE : old[i];
            if (back[i] != want)
                return 2;
        }
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(BlockCache, IndexedLruMatchesReferenceModel)
{
    M3System sys(bareCfg());
    m3fs::BlockCacheStats stats;
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        constexpr uint32_t BS = 512;
        constexpr size_t REGION = 32 * KiB;
        MemGate gate = MemGate::create(env, REGION, MEM_RW);
        // Small cache over many blocks: plenty of evictions.
        m3fs::BlockCache cache(gate, BS, 6);
        std::vector<uint8_t> ref(REGION, 0);
        Random rng(99);
        for (int op = 0; op < 1500; ++op) {
            size_t addr = rng.nextBounded(REGION - 64);
            size_t len = 1 + rng.nextBounded(64);
            if (rng.nextBounded(2)) {
                uint8_t val = static_cast<uint8_t>(rng.next());
                std::vector<uint8_t> buf(len, val);
                cache.write(addr, buf.data(), len);
                std::fill_n(ref.begin() + addr, len, val);
            } else {
                std::vector<uint8_t> buf(len);
                cache.read(addr, buf.data(), len);
                for (size_t i = 0; i < len; ++i)
                    if (buf[i] != ref[addr + i])
                        return 1;
            }
        }
        cache.flushAll();
        stats = cache.stats();
        std::vector<uint8_t> all(REGION);
        gate.read(all.data(), REGION, 0);
        return all == ref ? 0 : 2;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 6u);
    EXPECT_GT(stats.writeBacks, 0u);
}

TEST(BlockCache, EvictsTheLeastRecentlyUsedBlock)
{
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        constexpr uint32_t BS = 512;
        MemGate gate = MemGate::create(env, 32 * KiB, MEM_RW);
        m3fs::BlockCache cache(gate, BS, 4);
        uint8_t b = 0;
        // Fill with blocks 0..3, then touch 0 again: 1 is now LRU.
        for (m3fs::blockno_t no = 0; no < 4; ++no)
            cache.read(static_cast<goff_t>(no) * BS, &b, 1);
        cache.read(0, &b, 1);
        uint64_t misses = cache.stats().misses;
        // Block 4 evicts block 1.
        cache.read(goff_t{4} * BS, &b, 1);
        if (cache.stats().misses != misses + 1)
            return 1;
        // 0, 2, 3 and 4 are still resident...
        cache.read(0, &b, 1);
        cache.read(goff_t{2} * BS, &b, 1);
        cache.read(goff_t{3} * BS, &b, 1);
        cache.read(goff_t{4} * BS, &b, 1);
        if (cache.stats().misses != misses + 1)
            return 2;
        // ...and block 1 is not.
        cache.read(goff_t{1} * BS, &b, 1);
        return cache.stats().misses == misses + 2 ? 0 : 3;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

} // anonymous namespace
} // namespace m3
