/**
 * @file
 * Tests for CachedMem, the Sec. 7 future-work cache: correctness against
 * a reference model under random access, write-back/flush semantics,
 * locality behaviour and the isolation property (the cache goes through
 * the DTU, so revocation still bites).
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "libm3/cached_mem.hh"
#include "libm3/m3system.hh"

namespace m3
{
namespace
{

M3SystemCfg
bareCfg()
{
    M3SystemCfg cfg;
    cfg.appPes = 2;
    cfg.withFs = false;
    return cfg;
}

TEST(CachedMem, RandomAccessMatchesReferenceModel)
{
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        constexpr size_t REGION = 64 * KiB;
        MemGate gate = MemGate::create(env, REGION, MEM_RW);
        CachedMem cache(gate, 64, 16, 2);

        std::vector<uint8_t> ref(REGION, 0);
        Random rng(2024);
        for (int op = 0; op < 2000; ++op) {
            size_t addr = rng.nextBounded(REGION - 32);
            size_t len = 1 + rng.nextBounded(32);
            if (rng.nextBounded(2)) {
                uint8_t val = static_cast<uint8_t>(rng.next());
                std::vector<uint8_t> buf(len, val);
                if (cache.write(addr, buf.data(), len) != Error::None)
                    return 1;
                std::fill_n(ref.begin() + addr, len, val);
            } else {
                std::vector<uint8_t> buf(len);
                if (cache.read(addr, buf.data(), len) != Error::None)
                    return 2;
                for (size_t i = 0; i < len; ++i)
                    if (buf[i] != ref[addr + i])
                        return 3;
            }
        }
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(CachedMem, FlushMakesWritesVisibleToOtherGates)
{
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        MemGate gate = MemGate::create(env, 64 * KiB, MEM_RW);
        MemGate alias = gate.derive(0, 64 * KiB, MEM_R);
        CachedMem cache(gate);

        uint64_t v = 0xfeedface;
        cache.write(4096, &v, sizeof(v));
        // Before the flush the write may only live in the cache;
        // after it, every path to the memory sees it.
        if (cache.flush() != Error::None)
            return 1;
        uint64_t got = 0;
        alias.read(&got, sizeof(got), 4096);
        return got == 0xfeedface ? 0 : 2;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(CachedMem, SequentialLocalityHitsAfterFirstTouch)
{
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        MemGate gate = MemGate::create(env, 64 * KiB, MEM_RW);
        CachedMem cache(gate, 64, 64, 4);
        // Walk 4 KiB byte by byte: one miss per 64-byte line.
        uint8_t b;
        for (size_t i = 0; i < 4096; ++i)
            cache.read(i, &b, 1);
        const CacheStats &s = cache.stats();
        if (s.misses != 4096 / 64)
            return 1;
        if (s.hits != 4096 - 4096 / 64)
            return 2;
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(CachedMem, MissesCostDtuTransfers)
{
    M3System sys(bareCfg());
    Cycles seqDur = 0, randDur = 0;
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        MemGate gate = MemGate::create(env, 256 * KiB, MEM_RW);
        // Tiny cache: random access across 256 KiB thrashes it.
        CachedMem cache(gate, 64, 8, 2);
        uint8_t b;
        Cycles t0 = env.platform.simulator().curCycle();
        for (size_t i = 0; i < 2048; ++i)
            cache.read(i, &b, 1);
        seqDur = env.platform.simulator().curCycle() - t0;

        Random rng(7);
        t0 = env.platform.simulator().curCycle();
        for (size_t i = 0; i < 2048; ++i)
            cache.read(rng.nextBounded(256 * KiB), &b, 1);
        randDur = env.platform.simulator().curCycle() - t0;
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    // Random access pays a DTU line fill almost every time.
    EXPECT_GT(randDur, 5 * seqDur);
}

TEST(CachedMem, EvictionWritesDirtyLinesBack)
{
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        MemGate gate = MemGate::create(env, 256 * KiB, MEM_RW);
        // Direct-mapped-ish tiny cache to force evictions.
        CachedMem cache(gate, 64, 4, 1);
        // Dirty many distinct lines mapping to the same sets.
        for (goff_t addr = 0; addr < 64 * KiB; addr += 256) {
            uint32_t v = static_cast<uint32_t>(addr);
            if (cache.write(addr, &v, sizeof(v)) != Error::None)
                return 1;
        }
        if (cache.stats().writeBacks == 0)
            return 2;
        cache.flush();
        // Everything must have landed in the memory.
        MemGate alias = gate.derive(0, 256 * KiB, MEM_R);
        for (goff_t addr = 0; addr < 64 * KiB; addr += 256) {
            uint32_t v = 0;
            alias.read(&v, sizeof(v), addr);
            if (v != static_cast<uint32_t>(addr))
                return 3;
        }
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(CachedMem, RevocationStillIsolates)
{
    // Sec. 7: "the DTU remains the only component with access to
    // PE-external resources and it thus suffices to control the DTU."
    M3System sys(bareCfg());
    sys.runRoot("t", [&] {
        Env &env = Env::cur();
        MemGate gate = MemGate::create(env, 64 * KiB, MEM_RW);
        CachedMem cache(gate, 64, 4, 1);
        uint8_t b;
        if (cache.read(0, &b, 1) != Error::None)
            return 1;
        // Revoke the underlying capability: cached lines may linger,
        // but any further fill or write-back fails in hardware.
        env.revoke(gate.capSel(), true);
        Error e = cache.read(128 * 64, &b, 1);  // different line
        return e == Error::InvalidEp ? 0 : 2;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

} // anonymous namespace
} // namespace m3
