/**
 * @file
 * Unit tests for the pooled event heap and the SmallFn callback type.
 *
 * The heap replaced a `std::priority_queue` whose `top()` had to be
 * `const_cast` to move the callback out; several tests here pin down the
 * behaviours that rewrite must preserve (ordering, tie-breaks,
 * schedule-from-callback) and the ones it adds (move-only callbacks,
 * engine counters, heap-fallback accounting).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/small_fn.hh"

namespace m3
{
namespace
{

TEST(EventHeap, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<Cycles> order;
    for (Cycles c : {30u, 10u, 20u, 5u, 25u})
        eq.scheduleAbs(c, [&order, &eq] { order.push_back(eq.curCycle()); });
    eq.run();
    EXPECT_EQ(order, (std::vector<Cycles>{5, 10, 20, 25, 30}));
}

TEST(EventHeap, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleAbs(42, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

/**
 * Stress the sift-up/sift-down paths against a reference ordering: many
 * events with clustered cycles (lots of ties) must drain in exactly
 * (when, insertion seq) order.
 */
TEST(EventHeap, StressMatchesReferenceOrdering)
{
    EventQueue eq;
    std::mt19937 rng(12345);
    std::uniform_int_distribution<Cycles> when(0, 50);

    constexpr int N = 5000;
    std::vector<std::pair<Cycles, int>> ref;
    std::vector<int> order;
    for (int i = 0; i < N; ++i) {
        Cycles w = when(rng);
        ref.emplace_back(w, i);
        eq.scheduleAbs(w, [&order, i] { order.push_back(i); });
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    eq.run();
    ASSERT_EQ(order.size(), ref.size());
    for (int i = 0; i < N; ++i)
        EXPECT_EQ(order[i], ref[i].second) << "at position " << i;
}

/**
 * Regression for the old `const_cast`-on-`top()` move hack: a callback
 * that schedules new events while it executes must not corrupt the heap
 * or the slot pool (the slot is recycled before invocation, so the new
 * events may reuse or grow it mid-callback).
 */
TEST(EventHeap, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    // Each event schedules two children until depth 0: 2^6 - 1 events.
    struct Spawner
    {
        static void
        go(EventQueue &eq, int depth, int &fired)
        {
            fired++;
            if (depth == 0)
                return;
            for (int i = 0; i < 2; ++i)
                eq.schedule(1 + i, [&eq, depth, &fired] {
                    go(eq, depth - 1, fired);
                });
        }
    };
    eq.schedule(0, [&] { Spawner::go(eq, 5, fired); });
    uint64_t executed = eq.run();
    EXPECT_EQ(fired, 63);
    EXPECT_EQ(executed, 63u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventHeap, CallbackMayRecurseIntoRunOne)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAbs(5, [&] { order.push_back(1); });
    eq.scheduleAbs(0, [&] {
        order.push_back(0);
        // Drain the rest from inside a callback.
        while (eq.runOne()) {
        }
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventHeap, MoveOnlyCallbacksAreAccepted)
{
    EventQueue eq;
    auto payload = std::make_unique<int>(7);
    int seen = 0;
    // std::function would reject this capture (not copyable).
    eq.schedule(3, [p = std::move(payload), &seen] { seen = *p; });
    eq.run();
    EXPECT_EQ(seen, 7);
}

TEST(EventHeap, StatsCountersTrackSchedulingAndExecution)
{
    EventQueue eq;
    for (int i = 0; i < 4; ++i)
        eq.scheduleAbs(10 + i, [] {});
    EXPECT_EQ(eq.stats().eventsScheduled, 4u);
    EXPECT_EQ(eq.stats().eventsExecuted, 0u);
    EXPECT_EQ(eq.stats().peakPending, 4u);
    eq.run();
    EXPECT_EQ(eq.stats().eventsExecuted, 4u);
    // Draining does not lower the high-water mark.
    EXPECT_EQ(eq.stats().peakPending, 4u);
    EXPECT_EQ(eq.stats().callbackHeapFallbacks, 0u);
}

TEST(EventHeap, PeakPendingIsHighWaterMark)
{
    EventQueue eq;
    eq.scheduleAbs(1, [] {});
    eq.scheduleAbs(2, [] {});
    eq.runOne();
    eq.runOne();
    eq.scheduleAbs(3, [] {});
    eq.run();
    EXPECT_EQ(eq.stats().peakPending, 2u);
}

TEST(EventHeap, OversizedCapturesFallBackToHeapAndStillRun)
{
    EventQueue eq;
    struct Big
    {
        char pad[SmallFn::InlineCapacity + 32];
    };
    Big big{};
    big.pad[0] = 42;
    char seen = 0;
    eq.schedule(1, [big, &seen] { seen = big.pad[0]; });
    eq.run();
    EXPECT_EQ(seen, 42);
    EXPECT_EQ(eq.stats().callbackHeapFallbacks, 1u);
}

TEST(EventHeap, SlotPoolIsRecycled)
{
    EventQueue eq;
    // Alternate schedule/run many times: the pool must stay at size 1
    // (observable indirectly: peakPending never exceeds 1).
    int fired = 0;
    for (int i = 0; i < 100; ++i) {
        eq.schedule(1, [&] { fired++; });
        eq.run();
    }
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(eq.stats().peakPending, 1u);
}

TEST(SmallFnTest, InlineFitPredicate)
{
    int a = 0;
    auto small = [&a] { a++; };
    EXPECT_TRUE(SmallFn::fitsInline<decltype(small)>());

    SmallFn f(small);
    EXPECT_FALSE(f.onHeap());

    struct Big
    {
        char pad[SmallFn::InlineCapacity + 1];
    };
    Big big{};
    auto large = [big] { (void)big; };
    EXPECT_FALSE(SmallFn::fitsInline<decltype(large)>());

    SmallFn g(large);
    EXPECT_TRUE(g.onHeap());
}

TEST(SmallFnTest, MoveTransfersOwnership)
{
    int calls = 0;
    SmallFn a([&calls] { calls++; });
    SmallFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);

    SmallFn c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(calls, 2);
}

TEST(SmallFnTest, DestructorRunsCaptures)
{
    auto counter = std::make_shared<int>(0);
    std::weak_ptr<int> watch = counter;
    {
        SmallFn f([counter] { (void)counter; });
        counter.reset();
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(SmallFnTest, HeapCallableDestroyedExactlyOnce)
{
    struct Big
    {
        std::shared_ptr<int> token;
        char pad[SmallFn::InlineCapacity];
    };
    auto counter = std::make_shared<int>(0);
    std::weak_ptr<int> watch = counter;
    {
        Big big{counter, {}};
        counter.reset();
        SmallFn f([big] { (void)big; });
        EXPECT_TRUE(f.onHeap());
        SmallFn g(std::move(f));
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

} // anonymous namespace
} // namespace m3
