/**
 * @file
 * Unit tests for the m3fs core engine and the image builder: format,
 * inode/extent/bitmap management, directories, truncation, controlled
 * fragmentation and the consistency checker.
 */

#include <gtest/gtest.h>

#include "m3fs/fs_image.hh"

namespace m3
{
namespace
{

using namespace m3fs;

struct FsFixture : public ::testing::Test
{
    FsFixture() : dram(32 * MiB, 20), access(dram, 0), core(access)
    {
        FsCore::format(access, 8192, 128);
        EXPECT_TRUE(core.load());
    }

    Dram dram;
    DramAccess access;
    FsCore core;
};

TEST_F(FsFixture, FormatProducesValidEmptyFs)
{
    const SuperBlock &sb = core.superBlock();
    EXPECT_EQ(sb.blockSize, DEFAULT_BLOCK_SIZE);
    EXPECT_EQ(sb.totalBlocks, 8192u);
    EXPECT_LT(sb.dataStart, 200u);
    std::string report;
    EXPECT_TRUE(core.check(report)) << report;
}

TEST_F(FsFixture, CreateAndReadBackFile)
{
    auto data = FsImage::patternData(10000, 42);
    ASSERT_EQ(core.createFile("/a.bin", data.data(), data.size(),
                              0xffffffff),
              Error::None);
    std::vector<uint8_t> out;
    ASSERT_EQ(core.readFile("/a.bin", out), Error::None);
    EXPECT_EQ(out, data);

    std::string report;
    EXPECT_TRUE(core.check(report)) << report;
}

TEST_F(FsFixture, UnfragmentedFileHasOneExtent)
{
    auto data = FsImage::patternData(100 * 1024, 1);
    core.createFile("/big", data.data(), data.size(), 0xffffffff);
    ResolveResult r = core.resolve("/big");
    Inode inode = core.getInode(r.ino);
    EXPECT_EQ(inode.extents, 1u);
    EXPECT_EQ(inode.size, data.size());
}

TEST_F(FsFixture, ControlledFragmentation)
{
    // 64 KiB at 16 blocks per extent: 64 blocks -> 4 extents.
    auto data = FsImage::patternData(64 * 1024, 2);
    core.createFile("/frag", data.data(), data.size(), 16);
    ResolveResult r = core.resolve("/frag");
    Inode inode = core.getInode(r.ino);
    EXPECT_EQ(inode.extents, 4u);

    std::vector<uint8_t> out;
    core.readFile("/frag", out);
    EXPECT_EQ(out, data);
}

TEST_F(FsFixture, IndirectExtentsWork)
{
    // More extents than the 6 direct slots.
    auto data = FsImage::patternData(16 * 1024, 3);
    core.createFile("/many", data.data(), data.size(), 1);
    ResolveResult r = core.resolve("/many");
    Inode inode = core.getInode(r.ino);
    EXPECT_EQ(inode.extents, 16u);
    EXPECT_NE(inode.indirect, 0u);

    std::vector<uint8_t> out;
    core.readFile("/many", out);
    EXPECT_EQ(out, data);
    std::string report;
    EXPECT_TRUE(core.check(report)) << report;
}

TEST_F(FsFixture, DirectoriesNestAndResolve)
{
    ASSERT_EQ(core.createDir("/sub"), Error::None);
    ASSERT_EQ(core.createDir("/sub/inner"), Error::None);
    uint8_t byte = 0x5a;
    ASSERT_EQ(core.createFile("/sub/inner/leaf", &byte, 1, 1),
              Error::None);

    ResolveResult r = core.resolve("/sub/inner/leaf");
    EXPECT_NE(r.ino, INVALID_INO);
    EXPECT_EQ(r.components, 3u);

    r = core.resolve("/sub/missing/leaf");
    EXPECT_EQ(r.ino, INVALID_INO);
    EXPECT_EQ(r.parent, INVALID_INO);

    // Missing leaf with existing parent: creation point.
    r = core.resolve("/sub/newfile");
    EXPECT_EQ(r.ino, INVALID_INO);
    EXPECT_NE(r.parent, INVALID_INO);
    EXPECT_EQ(r.leafName, "newfile");
}

TEST_F(FsFixture, DirInsertLookupRemove)
{
    core.createDir("/d");
    ResolveResult r = core.resolve("/d");
    for (int i = 0; i < 50; ++i) {
        ASSERT_EQ(core.dirInsert(r.ino, "f" + std::to_string(i), 100 + i),
                  Error::None);
    }
    inodeno_t out;
    ASSERT_EQ(core.dirLookup(r.ino, "f17", out), Error::None);
    EXPECT_EQ(out, 117u);

    ASSERT_EQ(core.dirRemove(r.ino, "f17"), Error::None);
    EXPECT_EQ(core.dirLookup(r.ino, "f17", out), Error::NoSuchFile);

    std::vector<std::pair<inodeno_t, std::string>> list;
    core.dirList(r.ino, list);
    EXPECT_EQ(list.size(), 49u);

    // The freed slot is reused.
    ASSERT_EQ(core.dirInsert(r.ino, "reuse", 999), Error::None);
    list.clear();
    core.dirList(r.ino, list);
    EXPECT_EQ(list.size(), 50u);
}

TEST_F(FsFixture, TruncateShrinksAndFreesBlocks)
{
    auto data = FsImage::patternData(32 * 1024, 4);
    core.createFile("/t", data.data(), data.size(), 8);
    ResolveResult r = core.resolve("/t");
    Inode inode = core.getInode(r.ino);
    uint32_t extentsBefore = inode.extents;
    ASSERT_GT(extentsBefore, 1u);

    core.truncate(inode, 9 * 1024);  // 9 blocks

    inode = core.getInode(r.ino);
    EXPECT_EQ(inode.size, 9u * 1024);
    EXPECT_LT(inode.extents, extentsBefore);

    std::vector<uint8_t> out;
    core.readFile("/t", out);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));

    std::string report;
    EXPECT_TRUE(core.check(report)) << report;
}

TEST_F(FsFixture, TruncateToZeroFreesEverything)
{
    auto data = FsImage::patternData(8 * 1024, 5);
    core.createFile("/z", data.data(), data.size(), 0xffffffff);
    ResolveResult r = core.resolve("/z");
    Inode inode = core.getInode(r.ino);
    core.truncate(inode, 0);
    inode = core.getInode(r.ino);
    EXPECT_EQ(inode.extents, 0u);
    EXPECT_EQ(inode.size, 0u);
    std::string report;
    EXPECT_TRUE(core.check(report)) << report;
}

TEST_F(FsFixture, AppendMergesAdjacentExtents)
{
    Inode f{};
    ASSERT_EQ(core.allocInode(0x8000, f), Error::None);
    core.dirInsert(0, "merge", f.ino);
    Extent a = core.appendBlocks(f, 4, 256);
    Extent b = core.appendBlocks(f, 4, 256);
    ASSERT_EQ(a.len, 4u);
    ASSERT_EQ(b.len, 4u);
    // Sequential allocations are adjacent and merge into one extent.
    EXPECT_EQ(b.start, a.start + a.len);
    EXPECT_EQ(f.extents, 1u);
}

TEST_F(FsFixture, AllocatorExhaustionIsGraceful)
{
    // Request more blocks than the filesystem has.
    Inode f{};
    core.allocInode(0x8000, f);
    core.dirInsert(0, "huge", f.ino);
    uint64_t total = 0;
    for (;;) {
        Extent e = core.appendBlocks(f, 1024, 1024);
        if (e.len == 0)
            break;
        total += e.len;
    }
    EXPECT_GT(total, 7000u);  // most of the 8192 blocks
    EXPECT_LE(total, 8192u);
}

TEST_F(FsFixture, CheckDetectsCorruption)
{
    auto data = FsImage::patternData(4096, 6);
    core.createFile("/c", data.data(), data.size(), 0xffffffff);
    ResolveResult r = core.resolve("/c");
    // Corrupt: mark one of the file's blocks free in the bitmap.
    Inode inode = core.getInode(r.ino);
    Extent e = core.getExtent(inode, 0);
    inode.size = (e.len + 5) * core.superBlock().blockSize;  // lie
    core.putInode(inode);

    std::string report;
    EXPECT_FALSE(core.check(report));
    EXPECT_NE(report.find("size exceeds allocation"), std::string::npos);
}

TEST(FsImage, BuildsSpecAndPassesCheck)
{
    Dram dram(32 * MiB, 20);
    FsImageSpec spec;
    spec.dirs = {"/bin", "/data", "/data/sub"};
    spec.files.push_back({"/bin/tool", FsImage::patternData(3000, 1), 0xffffffff});
    spec.files.push_back({"/data/a", FsImage::patternData(70000, 2), 16});
    spec.files.push_back({"/data/sub/b", FsImage::patternData(512, 3), 0xffffffff});

    FsImage image(dram, 0, spec);
    std::string report;
    EXPECT_TRUE(image.core().check(report)) << report;

    std::vector<uint8_t> out;
    ASSERT_EQ(image.core().readFile("/data/a", out), Error::None);
    EXPECT_EQ(out, FsImage::patternData(70000, 2));
}

/** Property sweep: files of many sizes round-trip at any fragmentation. */
class FsRoundTrip
    : public ::testing::TestWithParam<std::tuple<size_t, uint32_t>>
{
};

TEST_P(FsRoundTrip, ContentPreserved)
{
    auto [size, bpe] = GetParam();
    Dram dram(64 * MiB, 20);
    DramAccess access(dram, 0);
    FsCore::format(access, 16384, 64);
    FsCore core(access);
    ASSERT_TRUE(core.load());

    auto data = FsImage::patternData(size, size ^ bpe);
    ASSERT_EQ(core.createFile("/f", data.data(), data.size(), bpe),
              Error::None);
    std::vector<uint8_t> out;
    ASSERT_EQ(core.readFile("/f", out), Error::None);
    EXPECT_EQ(out, data);
    std::string report;
    EXPECT_TRUE(core.check(report)) << report;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndExtents, FsRoundTrip,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{1023},
                                         size_t{1024}, size_t{1025},
                                         size_t{64 * 1024},
                                         size_t{1024 * 1024}),
                       ::testing::Values(1u, 16u, 256u, 0xffffffffu)));

} // anonymous namespace
} // namespace m3
