/**
 * @file
 * Unit tests for the DTU: endpoint configuration, message passing,
 * credits, ringbuffers, replies, RDMA memory access and the privilege
 * machinery for NoC-level isolation (Sec. 4.4).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "pe/platform.hh"

namespace m3
{
namespace
{

/** A small bare platform: 3 PEs + DRAM, DTUs still privileged. */
struct BareSystem
{
    BareSystem() : platform(sim, PlatformSpec::generalPurpose(3)) {}

    Simulator sim;
    Platform platform;

    Dtu &dtu(peid_t p) { return platform.pe(p).dtu(); }
    Spm &spm(peid_t p) { return platform.pe(p).spm(); }
};

/** Configure a standard recv EP with @p slots slots of @p slotSize. */
RecvEpCfg
ringCfg(Spm &spm, uint32_t slots, uint32_t slotSize, bool replies = true)
{
    RecvEpCfg cfg;
    cfg.bufAddr = spm.alloc(slots * slotSize);
    cfg.slotCount = slots;
    cfg.slotSize = slotSize;
    cfg.replyProtected = replies;
    return cfg;
}

SendEpCfg
sendCfg(uint32_t targetNode, epid_t targetEp, label_t label,
        uint32_t credits, uint32_t maxMsg)
{
    SendEpCfg cfg;
    cfg.targetNode = targetNode;
    cfg.targetEp = targetEp;
    cfg.label = label;
    cfg.credits = credits;
    cfg.maxMsgSize = maxMsg;
    return cfg;
}

TEST(Dtu, MessageDelivery)
{
    BareSystem s;
    bool received = false;

    ASSERT_EQ(s.dtu(1).configRecv(2, ringCfg(s.spm(1), 4, 128)),
              Error::None);
    ASSERT_EQ(s.dtu(0).configSend(
                  2, sendCfg(1, 2, 0xdead, CREDITS_UNLIMITED, 128)),
              Error::None);

    s.sim.run("recv", [&] {
        s.dtu(1).waitForMsg(2);
        int slot = s.dtu(1).fetchMsg(2);
        ASSERT_GE(slot, 0);
        MessageHeader hdr = s.dtu(1).msgHeader(2, slot);
        EXPECT_EQ(hdr.label, 0xdeadu);
        EXPECT_EQ(hdr.length, 16u);
        EXPECT_EQ(hdr.senderNode, 0u);
        char payload[16];
        s.spm(1).read(s.dtu(1).msgAddr(2, slot) + sizeof(MessageHeader),
                      payload, 16);
        EXPECT_EQ(std::memcmp(payload, "hello, dtu-world", 16), 0);
        s.dtu(1).ackMsg(2, slot);
        received = true;
    });
    s.sim.run("send", [&] {
        spmaddr_t msg = s.spm(0).alloc(16);
        s.spm(0).write(msg, "hello, dtu-world", 16);
        ASSERT_EQ(s.dtu(0).startSend(2, msg, 16), Error::None);
        s.dtu(0).waitUntilIdle();
    });
    s.sim.simulate();
    EXPECT_TRUE(received);
    EXPECT_EQ(s.dtu(0).stats().msgsSent, 1u);
    EXPECT_EQ(s.dtu(1).stats().msgsReceived, 1u);
}

TEST(Dtu, CreditsLimitInFlightMessages)
{
    BareSystem s;
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 4, 128));
    s.dtu(0).configSend(2, sendCfg(1, 2, 1, /*credits=*/1, 128));
    s.dtu(0).configRecv(3, ringCfg(s.spm(0), 2, 128, false));

    s.sim.run("test", [&] {
        spmaddr_t msg = s.spm(0).alloc(8);
        ASSERT_EQ(s.dtu(0).startSend(2, msg, 8, 3, 0x11), Error::None);
        s.dtu(0).waitUntilIdle();
        EXPECT_EQ(s.dtu(0).credits(2), 0u);
        // No credits left: the DTU denies the send (Sec. 4.4.3).
        EXPECT_EQ(s.dtu(0).startSend(2, msg, 8, 3, 0x12),
                  Error::NoCredits);
        EXPECT_EQ(s.dtu(0).stats().creditDenials, 1u);

        // The receiver replies; the reply refunds the credit.
        s.dtu(1).waitForMsg(2);
        int slot = s.dtu(1).fetchMsg(2);
        spmaddr_t rep = s.spm(1).alloc(8);
        ASSERT_EQ(s.dtu(1).startReply(2, slot, rep, 8), Error::None);
        s.dtu(1).waitUntilIdle();

        s.dtu(0).waitForMsg(3);
        EXPECT_EQ(s.dtu(0).credits(2), 1u);
        int rslot = s.dtu(0).fetchMsg(3);
        MessageHeader hdr = s.dtu(0).msgHeader(3, rslot);
        EXPECT_TRUE(hdr.isReply());
        EXPECT_EQ(hdr.label, 0x11u);
        EXPECT_EQ(s.dtu(0).startSend(2, msg, 8, 3, 0x13), Error::None);
    });
    s.sim.simulate();
    EXPECT_TRUE(s.sim.allFinished());
}

TEST(Dtu, ReplyRequiresProtectedRing)
{
    BareSystem s;
    // Ring NOT vouched read-only by a kernel: replies must be refused.
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 4, 128, /*replies=*/false));
    s.dtu(0).configSend(2, sendCfg(1, 2, 0, CREDITS_UNLIMITED, 128));

    s.sim.run("test", [&] {
        spmaddr_t msg = s.spm(0).alloc(8);
        s.dtu(0).startSend(2, msg, 8, 3, 0);
        s.dtu(1).waitForMsg(2);
        int slot = s.dtu(1).fetchMsg(2);
        spmaddr_t rep = s.spm(1).alloc(8);
        EXPECT_EQ(s.dtu(1).startReply(2, slot, rep, 8), Error::NoPerm);
    });
    s.sim.simulate();
}

TEST(Dtu, RingWrapAroundManyMessages)
{
    BareSystem s;
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 4, 64));
    s.dtu(0).configSend(2, sendCfg(1, 2, 0, CREDITS_UNLIMITED, 64));

    int got = 0;
    s.sim.run("recv", [&] {
        for (int i = 0; i < 12; ++i) {
            s.dtu(1).waitForMsg(2);
            int slot = s.dtu(1).fetchMsg(2);
            ASSERT_GE(slot, 0);
            uint64_t v;
            s.spm(1).read(
                s.dtu(1).msgAddr(2, slot) + sizeof(MessageHeader), &v, 8);
            EXPECT_EQ(v, static_cast<uint64_t>(got));
            s.dtu(1).ackMsg(2, slot);
            ++got;
        }
    });
    s.sim.run("send", [&] {
        spmaddr_t msg = s.spm(0).alloc(8);
        for (uint64_t i = 0; i < 12; ++i) {
            uint64_t v = i;
            s.spm(0).write(msg, &v, 8);
            // Wait until the DTU accepted it (ring may be full).
            for (;;) {
                Error e = s.dtu(0).startSend(2, msg, 8);
                if (e == Error::None)
                    break;
                Fiber::current()->sleep(100);
            }
            s.dtu(0).waitUntilIdle();
            Fiber::current()->sleep(50);
        }
    });
    s.sim.simulate();
    EXPECT_EQ(got, 12);
}

TEST(Dtu, OversizedMessagesRejected)
{
    BareSystem s;
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 2, 64));
    s.dtu(0).configSend(2, sendCfg(1, 2, 0, CREDITS_UNLIMITED, 64));
    s.sim.run("t", [&] {
        spmaddr_t msg = s.spm(0).alloc(128);
        EXPECT_EQ(s.dtu(0).startSend(2, msg, 64), Error::MsgTooBig);
    });
    s.sim.simulate();
}

TEST(Dtu, FullRingDropsMessages)
{
    BareSystem s;
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 2, 64));
    s.dtu(0).configSend(2, sendCfg(1, 2, 0, CREDITS_UNLIMITED, 64));
    s.sim.run("t", [&] {
        spmaddr_t msg = s.spm(0).alloc(8);
        for (int i = 0; i < 4; ++i) {
            ASSERT_EQ(s.dtu(0).startSend(2, msg, 8), Error::None);
            s.dtu(0).waitUntilIdle();
        }
        Fiber::current()->sleep(1000);
    });
    s.sim.simulate();
    EXPECT_EQ(s.dtu(1).stats().msgsDropped, 2u);
    EXPECT_EQ(s.dtu(1).stats().msgsReceived, 2u);
}

TEST(Dtu, DramReadWrite)
{
    BareSystem s;
    MemEpCfg mem;
    mem.targetNode = s.platform.dramNode();
    mem.offset = 0x1000;
    mem.size = 64 * KiB;
    mem.perms = MEM_RW;
    s.dtu(0).configMem(4, mem);

    s.sim.run("t", [&] {
        spmaddr_t buf = s.spm(0).alloc(4096);
        std::vector<uint8_t> pattern(4096);
        for (size_t i = 0; i < pattern.size(); ++i)
            pattern[i] = static_cast<uint8_t>(i * 7);
        s.spm(0).write(buf, pattern.data(), pattern.size());

        ASSERT_EQ(s.dtu(0).startWrite(4, buf, 0x100, 4096), Error::None);
        s.dtu(0).waitUntilIdle();
        EXPECT_EQ(s.dtu(0).lastError(), Error::None);

        // Functional check straight in the DRAM.
        EXPECT_EQ(std::memcmp(
                      s.platform.dram().inspect(0x1000 + 0x100, 4096),
                      pattern.data(), 4096),
                  0);

        // Read it back into a different SPM location.
        spmaddr_t buf2 = s.spm(0).alloc(4096);
        ASSERT_EQ(s.dtu(0).startRead(4, buf2, 0x100, 4096), Error::None);
        s.dtu(0).waitUntilIdle();
        EXPECT_EQ(std::memcmp(s.spm(0).ptr(buf2, 4096), pattern.data(),
                              4096),
                  0);
    });
    s.sim.simulate();
    EXPECT_EQ(s.dtu(0).stats().bytesWritten, 4096u);
    EXPECT_EQ(s.dtu(0).stats().bytesRead, 4096u);
}

TEST(Dtu, MemoryBoundsAndPerms)
{
    BareSystem s;
    MemEpCfg mem;
    mem.targetNode = s.platform.dramNode();
    mem.offset = 0;
    mem.size = 1024;
    mem.perms = MEM_R;
    s.dtu(0).configMem(4, mem);

    s.sim.run("t", [&] {
        spmaddr_t buf = s.spm(0).alloc(2048);
        EXPECT_EQ(s.dtu(0).startRead(4, buf, 512, 1024),
                  Error::OutOfBounds);
        EXPECT_EQ(s.dtu(0).startWrite(4, buf, 0, 16), Error::NoPerm);
        EXPECT_EQ(s.dtu(0).startRead(4, buf, 0, 1024), Error::None);
        s.dtu(0).waitUntilIdle();
    });
    s.sim.simulate();
}

TEST(Dtu, RemoteSpmAsMemoryTarget)
{
    BareSystem s;
    // Application loading writes into another PE's SPM (Sec. 4.5.5).
    MemEpCfg mem;
    mem.targetNode = 1;  // PE1's node
    mem.offset = 8192;
    mem.size = 16 * KiB;
    mem.perms = MEM_RW;
    s.dtu(0).configMem(4, mem);

    s.sim.run("t", [&] {
        spmaddr_t buf = s.spm(0).alloc(64);
        s.spm(0).write(buf, "remote-spm-write-payload-0123456789abcdef"
                            "0123456789abcdefxxxxxx",
                       64);
        ASSERT_EQ(s.dtu(0).startWrite(4, buf, 0, 64), Error::None);
        s.dtu(0).waitUntilIdle();
        EXPECT_EQ(std::memcmp(s.spm(1).ptr(8192, 24),
                              "remote-spm-write-payload", 24),
                  0);
    });
    s.sim.simulate();
}

TEST(Dtu, ZeroFillsMemory)
{
    BareSystem s;
    MemEpCfg mem;
    mem.targetNode = s.platform.dramNode();
    mem.offset = 0;
    mem.size = 64 * KiB;
    mem.perms = MEM_RW;
    s.dtu(0).configMem(4, mem);

    s.sim.run("t", [&] {
        spmaddr_t buf = s.spm(0).alloc(256);
        std::vector<uint8_t> ones(256, 0xff);
        s.spm(0).write(buf, ones.data(), 256);
        s.dtu(0).startWrite(4, buf, 0, 256);
        s.dtu(0).waitUntilIdle();
        ASSERT_EQ(s.dtu(0).startZero(4, 0, 256), Error::None);
        Fiber::current()->sleep(1000);
        for (int i = 0; i < 256; ++i)
            ASSERT_EQ(s.platform.dram().inspect(0, 256)[i], 0);
    });
    s.sim.simulate();
}

TEST(Dtu, DowngradeRemovesLocalConfigRights)
{
    BareSystem s;
    s.sim.run("t", [&] {
        ASSERT_TRUE(s.dtu(1).isPrivileged());
        s.dtu(0).extDowngrade(1);
        Fiber::current()->sleep(100);
        EXPECT_FALSE(s.dtu(1).isPrivileged());

        // Local configuration on PE1 is now refused...
        RecvEpCfg cfg = ringCfg(s.spm(1), 2, 64);
        EXPECT_EQ(s.dtu(1).configRecv(2, cfg), Error::NotPrivileged);
        // ...and PE1 cannot issue external requests either.
        EXPECT_EQ(s.dtu(1).extDowngrade(0), Error::NotPrivileged);

        // But the kernel DTU can still configure PE1 remotely.
        bool acked = false;
        Error result = Error::None;
        s.dtu(0).extConfigRecv(1, 2, cfg, [&](Error e) {
            acked = true;
            result = e;
        });
        Fiber::current()->sleep(200);
        EXPECT_TRUE(acked);
        EXPECT_EQ(result, Error::None);
        EXPECT_EQ(s.dtu(1).ep(2).type, EpType::Receive);
    });
    s.sim.simulate();
}

TEST(Dtu, ExtStartInvokesHook)
{
    BareSystem s;
    bool started = false;
    s.dtu(1).setStartHook([&] { started = true; });
    s.sim.run("t", [&] {
        s.dtu(0).extStart(1);
        Fiber::current()->sleep(100);
    });
    s.sim.simulate();
    EXPECT_TRUE(started);
}

TEST(Dtu, ResetClearsEndpoints)
{
    BareSystem s;
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 2, 64));
    s.sim.run("t", [&] {
        s.dtu(0).extReset(1);
        Fiber::current()->sleep(100);
        EXPECT_EQ(s.dtu(1).ep(2).type, EpType::Invalid);
    });
    s.sim.simulate();
}

TEST(Dtu, TransferTimingMatchesBandwidth)
{
    BareSystem s;
    const HwCosts &hw = s.platform.costs().hw;
    MemEpCfg mem;
    mem.targetNode = s.platform.dramNode();
    mem.offset = 0;
    mem.size = 64 * KiB;
    mem.perms = MEM_RW;
    s.dtu(0).configMem(4, mem);

    Cycles dur4k = 0, dur8k = 0;
    s.sim.run("t", [&] {
        spmaddr_t buf = s.spm(0).alloc(8192);
        Cycles t0 = s.sim.curCycle();
        s.dtu(0).startRead(4, buf, 0, 4096);
        s.dtu(0).waitUntilIdle();
        dur4k = s.sim.curCycle() - t0;
        t0 = s.sim.curCycle();
        s.dtu(0).startRead(4, buf, 0, 8192);
        s.dtu(0).waitUntilIdle();
        dur8k = s.sim.curCycle() - t0;
    });
    s.sim.simulate();
    // Doubling the payload adds its serialisation at 8 B/cycle.
    EXPECT_EQ(dur8k - dur4k, 4096 / hw.nocBytesPerCycle);
    // 4 KiB takes roughly 512 cycles + latencies.
    EXPECT_GT(dur4k, 4096 / hw.nocBytesPerCycle);
    EXPECT_LT(dur4k, 4096 / hw.nocBytesPerCycle + 100);
}

TEST(Dtu, StaleRepliesAreDroppedAfterReset)
{
    // The PE-reuse hazard: a reply addressed to the previous owner of a
    // PE must not leak into the new owner's ringbuffers (generation
    // tagging, cf. Sec. 3's NoC-level isolation).
    BareSystem s;
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 4, 128));
    s.dtu(0).configSend(2, sendCfg(1, 2, 7, 4, 128));
    s.dtu(0).configRecv(3, ringCfg(s.spm(0), 4, 128, false));

    s.sim.run("t", [&] {
        spmaddr_t msg = s.spm(0).alloc(8);
        ASSERT_EQ(s.dtu(0).startSend(2, msg, 8, 3, 0), Error::None);
        s.dtu(0).waitUntilIdle();
        s.dtu(1).waitForMsg(2);
        int slot = s.dtu(1).fetchMsg(2);

        // PE0 is reclaimed and handed to a new VPE before the reply.
        s.dtu(2).extReset(0);
        Fiber::current()->sleep(100);
        RecvEpCfg fresh = ringCfg(s.spm(0), 4, 128, false);
        s.dtu(2).extConfigRecv(0, 3, fresh);
        Fiber::current()->sleep(100);

        // The receiver replies to the (now dead) sender.
        spmaddr_t rep = s.spm(1).alloc(8);
        ASSERT_EQ(s.dtu(1).startReply(2, slot, rep, 8), Error::None);
        s.dtu(1).waitUntilIdle();
        Fiber::current()->sleep(200);

        // The new owner's ring must be untouched; the reply is dropped.
        EXPECT_FALSE(s.dtu(0).hasMsg(3));
        EXPECT_GE(s.dtu(0).stats().msgsDropped, 1u);
    });
    s.sim.simulate();
}

TEST(Dtu, RepliesWithinOneGenerationStillWork)
{
    BareSystem s;
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 4, 128));
    s.dtu(0).configSend(2, sendCfg(1, 2, 7, 4, 128));
    s.dtu(0).configRecv(3, ringCfg(s.spm(0), 4, 128, false));

    s.sim.run("t", [&] {
        spmaddr_t msg = s.spm(0).alloc(8);
        s.dtu(0).startSend(2, msg, 8, 3, 0x42);
        s.dtu(0).waitUntilIdle();
        s.dtu(1).waitForMsg(2);
        int slot = s.dtu(1).fetchMsg(2);
        spmaddr_t rep = s.spm(1).alloc(8);
        s.dtu(1).startReply(2, slot, rep, 8);
        s.dtu(1).waitUntilIdle();
        s.dtu(0).waitForMsg(3);
        int rslot = s.dtu(0).fetchMsg(3);
        EXPECT_EQ(s.dtu(0).msgHeader(3, rslot).label, 0x42u);
    });
    s.sim.simulate();
    EXPECT_TRUE(s.sim.allFinished());
}

TEST(Dtu, FetchOrderIsFifo)
{
    BareSystem s;
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 8, 64));
    s.dtu(0).configSend(2, sendCfg(1, 2, 0, CREDITS_UNLIMITED, 64));
    s.sim.run("t", [&] {
        spmaddr_t msg = s.spm(0).alloc(8);
        for (uint64_t i = 0; i < 5; ++i) {
            s.spm(0).write(msg, &i, 8);
            s.dtu(0).startSend(2, msg, 8);
            s.dtu(0).waitUntilIdle();
            Fiber::current()->sleep(50);
        }
        Fiber::current()->sleep(500);
        for (uint64_t i = 0; i < 5; ++i) {
            int slot = s.dtu(1).fetchMsg(2);
            ASSERT_GE(slot, 0);
            uint64_t v = 0;
            s.spm(1).read(
                s.dtu(1).msgAddr(2, slot) + sizeof(MessageHeader), &v,
                8);
            EXPECT_EQ(v, i);
            s.dtu(1).ackMsg(2, slot);
        }
        EXPECT_EQ(s.dtu(1).fetchMsg(2), -1);
    });
    s.sim.simulate();
}

TEST(Dtu, AckWithoutFetchIsRejected)
{
    BareSystem s;
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 4, 64));
    s.sim.run("t", [&] {
        EXPECT_EQ(s.dtu(1).ackMsg(2, 0), Error::InvalidArgs);
        EXPECT_EQ(s.dtu(1).ackMsg(2, 99), Error::InvalidArgs);
    });
    s.sim.simulate();
}

/**
 * The event engine stores callbacks inline up to SmallFn::InlineCapacity;
 * oversized captures fall back to a heap allocation. The DTU/NoC/fiber
 * hot paths are sized to fit — exercise send, reply, RDMA read and write
 * end to end and require that not a single callback spilled.
 */
TEST(Dtu, CoreDtuPathsNeverFallBackToHeapCallbacks)
{
    BareSystem s;
    s.dtu(1).configRecv(2, ringCfg(s.spm(1), 4, 128));
    s.dtu(0).configSend(2, sendCfg(1, 2, 0x77, CREDITS_UNLIMITED, 128));
    s.dtu(0).configRecv(3, ringCfg(s.spm(0), 2, 128, false));
    MemEpCfg mem;
    mem.targetNode = s.platform.dramNode();
    mem.offset = 0;
    mem.size = 64 * KiB;
    mem.perms = MEM_RW;
    s.dtu(0).configMem(4, mem);

    s.sim.run("recv", [&] {
        s.dtu(1).waitForMsg(2);
        int slot = s.dtu(1).fetchMsg(2);
        ASSERT_GE(slot, 0);
        spmaddr_t rep = s.spm(1).alloc(32);
        ASSERT_EQ(s.dtu(1).startReply(2, slot, rep, 32), Error::None);
        s.dtu(1).waitUntilIdle();
    });
    s.sim.run("send", [&] {
        spmaddr_t msg = s.spm(0).alloc(64);
        ASSERT_EQ(s.dtu(0).startSend(2, msg, 64, 3, 0x1), Error::None);
        s.dtu(0).waitUntilIdle();
        s.dtu(0).waitForMsg(3);
        s.dtu(0).ackMsg(3, s.dtu(0).fetchMsg(3));

        spmaddr_t buf = s.spm(0).alloc(4096);
        ASSERT_EQ(s.dtu(0).startWrite(4, buf, 0, 4096), Error::None);
        s.dtu(0).waitUntilIdle();
        ASSERT_EQ(s.dtu(0).startRead(4, buf, 0, 4096), Error::None);
        s.dtu(0).waitUntilIdle();
    });
    s.sim.simulate();
    EXPECT_TRUE(s.sim.allFinished());
    EXPECT_GT(s.sim.queue().stats().eventsExecuted, 0u);
    EXPECT_EQ(s.sim.queue().stats().callbackHeapFallbacks, 0u);
}

TEST(Dtu, SingleCommandAtATime)
{
    BareSystem s;
    MemEpCfg mem;
    mem.targetNode = s.platform.dramNode();
    mem.offset = 0;
    mem.size = 64 * KiB;
    mem.perms = MEM_RW;
    s.dtu(0).configMem(4, mem);
    s.sim.run("t", [&] {
        spmaddr_t buf = s.spm(0).alloc(4096);
        ASSERT_EQ(s.dtu(0).startRead(4, buf, 0, 4096), Error::None);
        EXPECT_TRUE(s.dtu(0).isBusy());
        EXPECT_EQ(s.dtu(0).startRead(4, buf, 0, 64), Error::DtuBusy);
        s.dtu(0).waitUntilIdle();
        EXPECT_FALSE(s.dtu(0).isBusy());
    });
    s.sim.simulate();
}

} // anonymous namespace
} // namespace m3
