/**
 * @file
 * The paper's numeric anchors as fast regression tests: the Sec. 5.3
 * syscall costs, the Sec. 5.4 per-block file costs and bandwidth gap,
 * and the Fig. 4 fragmentation trend — so a calibration change that
 * breaks a headline result fails the test suite, not just the benches.
 */

#include <gtest/gtest.h>

#include "workloads/micro.hh"

namespace m3
{
namespace workloads
{
namespace
{

TEST(MicroAnchors, M3SyscallNear200Cycles)
{
    RunResult r = m3NullSyscall(32);
    ASSERT_EQ(r.rc, 0);
    EXPECT_GE(r.wall, 150u);
    EXPECT_LE(r.wall, 260u);
}

TEST(MicroAnchors, LinuxSyscall410Cycles)
{
    RunResult r = lxNullSyscall(32);
    ASSERT_EQ(r.rc, 0);
    EXPECT_EQ(r.wall, 410u);
}

TEST(MicroAnchors, M3ReadBeatsLinuxByLargeFactor)
{
    MicroOpts opts;
    opts.fileBytes = 512 * KiB;  // keep the test fast
    RunResult m3r = m3FileRead(opts);
    RunResult lxr = lxFileRead(opts);
    ASSERT_EQ(m3r.rc, 0);
    ASSERT_EQ(lxr.rc, 0);
    EXPECT_GT(lxr.wall, 4 * m3r.wall);
    // Data transfers carry most of the difference (Sec. 5.4).
    EXPECT_GT(lxr.xfer(), 4 * m3r.xfer());
}

TEST(MicroAnchors, M3PerBlockSoftwareCostNear160Cycles)
{
    // Sec. 5.4: ~70 + ~90 cycles per 4 KiB block on M3.
    MicroOpts opts;
    opts.fileBytes = 512 * KiB;
    RunResult r = m3FileRead(opts);
    ASSERT_EQ(r.rc, 0);
    Cycles swPerBlock =
        (r.acct.totalBusy() - r.xfer()) / (opts.fileBytes / 4096);
    EXPECT_GE(swPerBlock, 120u);
    EXPECT_LE(swPerBlock, 260u);
}

TEST(MicroAnchors, LinuxPerBlockOsCostNear1330Cycles)
{
    // Sec. 5.4: ~380 + ~400 + ~550 cycles per 4 KiB block on Linux.
    MicroOpts opts;
    opts.fileBytes = 512 * KiB;
    RunResult r = lxFileRead(opts);
    ASSERT_EQ(r.rc, 0);
    Cycles osPerBlock = r.os() / (opts.fileBytes / 4096);
    EXPECT_GE(osPerBlock, 1200u);
    EXPECT_LE(osPerBlock, 1500u);
}

TEST(MicroAnchors, DtuStreamsEightBytesPerCycle)
{
    // The 2 MiB read's transfer share approximates size / 8 B/cycle.
    MicroOpts opts;
    RunResult r = m3FileRead(opts);
    ASSERT_EQ(r.rc, 0);
    Cycles ideal = opts.fileBytes / 8;
    EXPECT_GE(r.xfer(), ideal);
    EXPECT_LE(r.xfer(), ideal * 12 / 10);
}

TEST(MicroAnchors, FragmentationTrendMonotone)
{
    // Fig. 4: fewer blocks per extent means more service round trips.
    Cycles prev = 0;
    for (uint32_t bpe : {256u, 64u, 16u}) {
        MicroOpts opts;
        opts.fileBytes = 512 * KiB;
        opts.blocksPerExtent = bpe;
        RunResult r = m3FileRead(opts);
        ASSERT_EQ(r.rc, 0);
        if (prev) {
            EXPECT_GT(r.wall, prev) << "bpe=" << bpe;
        }
        prev = r.wall;
    }
}

TEST(MicroAnchors, M3LikesLargeBuffersLinuxPeaksAt4K)
{
    // Sec. 5.4: "4 KiB is the sweet spot on Linux (M3 benefits from
    // larger buffer sizes until all available SPM is used)".
    MicroOpts small, large;
    small.fileBytes = large.fileBytes = 512 * KiB;
    small.bufSize = 4096;
    large.bufSize = 16384;
    RunResult m3Small = m3FileRead(small);
    RunResult m3Large = m3FileRead(large);
    ASSERT_EQ(m3Small.rc, 0);
    ASSERT_EQ(m3Large.rc, 0);
    EXPECT_LT(m3Large.wall, m3Small.wall);
}

} // anonymous namespace
} // namespace workloads
} // namespace m3
