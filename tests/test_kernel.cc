/**
 * @file
 * Kernel-focused tests: the capability system (delegation chains,
 * recursive revoke, attenuation), VPE lifecycle corner cases, PE
 * allocation and reuse, service registration and kernel-arbitrated
 * exchanges, and the kernel's flow-control limits.
 */

#include <gtest/gtest.h>

#include "libm3/m3system.hh"
#include "libm3/vpe.hh"

namespace m3
{
namespace
{

M3SystemCfg
bareCfg(uint32_t appPes = 4)
{
    M3SystemCfg cfg;
    cfg.appPes = appPes;
    cfg.withFs = false;
    return cfg;
}

TEST(KernelCaps, DelegationChainRevokesRecursively)
{
    // root -> child -> grandchild; revoking at the root kills all.
    M3System sys(bareCfg(4));
    sys.runRoot("chain", [&] {
        Env &env = Env::cur();
        MemGate mem = MemGate::create(env, 64 * KiB, MEM_RW);
        uint64_t v = 42;
        mem.write(&v, sizeof(v), 0);

        VPE child(env, "child");
        if (child.err() != Error::None)
            return 1;
        if (child.delegate(mem.capSel(), 1, 50) != Error::None)
            return 2;
        child.run([] {
            Env &cenv = Env::cur();
            // Pass it on to a grandchild.
            VPE grand(cenv, "grand");
            if (grand.err() != Error::None)
                return 1;
            if (grand.delegate(50, 1, 60) != Error::None)
                return 2;
            grand.run([] {
                Env &genv = Env::cur();
                MemGate g(genv, 60, 64 * KiB);
                uint64_t got = 0;
                g.read(&got, sizeof(got), 0);
                return got == 42 ? 0 : 3;
            });
            return grand.wait();
        });
        if (child.wait() != 0)
            return 3;

        // Now revoke the root capability including all grants.
        if (env.revoke(mem.capSel(), true) != Error::None)
            return 4;
        // Our own endpoint is gone.
        uint64_t dummy = 0;
        return mem.read(&dummy, sizeof(dummy), 0) == Error::InvalidEp
                   ? 0
                   : 5;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    EXPECT_GE(sys.kernelInstance().stats().capsRevoked, 3u);
}

TEST(KernelCaps, RevokeChildrenOnlyKeepsOwn)
{
    M3System sys(bareCfg(3));
    sys.runRoot("children", [&] {
        Env &env = Env::cur();
        MemGate mem = MemGate::create(env, 64 * KiB, MEM_RW);
        VPE child(env, "child");
        if (child.err() != Error::None)
            return 1;
        child.delegate(mem.capSel(), 1, 50);
        // Revoke only the grants (own=false).
        if (env.revoke(mem.capSel(), false) != Error::None)
            return 2;
        // Own capability still works.
        uint64_t v = 7;
        if (mem.write(&v, sizeof(v), 0) != Error::None)
            return 3;
        // The child's copy is gone: using it must fail.
        child.run([] {
            Env &cenv = Env::cur();
            MemGate g(cenv, 50, 64 * KiB);
            uint64_t x = 0;
            // Activation fails (NoSuchCap) -> libm3 panics; probe via
            // the raw syscall instead.
            Error e = cenv.activate(50, 4, 0);
            (void)g;
            (void)x;
            return e == Error::NoSuchCap ? 0 : 1;
        });
        return child.wait();
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelCaps, DeriveAttenuatesPermissions)
{
    M3System sys(bareCfg(2));
    sys.runRoot("derive", [&] {
        Env &env = Env::cur();
        MemGate rw = MemGate::create(env, 64 * KiB, MEM_RW);
        // Deriving more rights than the parent has silently masks them.
        MemGate ro = rw.derive(0, 4 * KiB, MEM_R);
        capsel_t escalated = env.allocSels();
        if (env.deriveMem(ro.capSel(), escalated, 0, 4 * KiB,
                          MEM_RW) != Error::None)
            return 1;
        MemGate evil(env, escalated, 4 * KiB);
        uint64_t v = 1;
        // Writing must still fail: perms are ANDed down the chain.
        return evil.write(&v, sizeof(v), 0) == Error::NoPerm ? 0 : 2;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelCaps, SelectorsCannotCollide)
{
    M3System sys(bareCfg(2));
    sys.runRoot("collide", [&] {
        Env &env = Env::cur();
        capsel_t sel = env.allocSels();
        if (env.reqMem(sel, 4 * KiB, MEM_RW) != Error::None)
            return 1;
        // Reusing the same selector must be rejected.
        return env.reqMem(sel, 4 * KiB, MEM_RW) == Error::CapExists
                   ? 0
                   : 2;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelCaps, RecvGatesAreNotDelegable)
{
    M3System sys(bareCfg(3));
    sys.runRoot("norgate", [&] {
        Env &env = Env::cur();
        RecvGate rg(env, 2, 128);
        VPE child(env, "child");
        if (child.err() != Error::None)
            return 1;
        // Sec. 4.5.4: receive capabilities cannot be moved.
        return child.delegate(rg.capSel(), 1, 50) == Error::NoPerm ? 0
                                                                   : 2;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelVpe, RevokingVpeCapKillsIt)
{
    M3System sys(bareCfg(3));
    sys.runRoot("killer", [&] {
        Env &env = Env::cur();
        VPE vpe(env, "looper");
        if (vpe.err() != Error::None)
            return 1;
        // The child blocks forever; revoking the VPE capability lets
        // the kernel reset the PE (the paper's Sec. 4.5.5 scenario).
        vpe.run([] {
            Fiber::current()->block();
            return 0;
        });
        if (vpe.revoke() != Error::None)
            return 2;
        // The PE is free again: creating another VPE must succeed.
        VPE next(env, "next");
        if (next.err() != Error::None)
            return 3;
        next.run([] { return 11; });
        return next.wait() == 11 ? 0 : 4;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelVpe, WaitAfterExitReturnsImmediately)
{
    M3System sys(bareCfg(3));
    sys.runRoot("late", [&] {
        Env &env = Env::cur();
        VPE vpe(env, "fast");
        if (vpe.err() != Error::None)
            return 1;
        vpe.run([] { return 5; });
        // Let the child finish long before we ask.
        Fiber::current()->sleep(200000);
        return vpe.wait() == 5 ? 0 : 2;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelVpe, AcceleratorTypeMatching)
{
    M3SystemCfg cfg = bareCfg(2);
    cfg.extraPes.push_back(PeDesc::accel("fft"));
    cfg.extraPes.push_back(PeDesc::accel("crypto"));
    M3System sys(std::move(cfg));
    sys.runRoot("match", [&] {
        Env &env = Env::cur();
        // Request an FFT PE specifically.
        VPE fft(env, "fft", kif::PeTypeReq::Accelerator, "fft");
        if (fft.err() != Error::None)
            return 1;
        if (env.platform.pe(fft.peId()).desc().attr != "fft")
            return 2;
        // A second FFT PE does not exist.
        VPE fft2(env, "fft2", kif::PeTypeReq::Accelerator, "fft");
        if (fft2.err() != Error::NoFreePe)
            return 3;
        // But an unspecified accelerator finds the crypto PE.
        VPE any(env, "any", kif::PeTypeReq::Accelerator, "");
        return any.err() == Error::None ? 0 : 4;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelSyscalls, BadSelectorsAreRejected)
{
    M3System sys(bareCfg(2));
    sys.runRoot("bad", [&] {
        Env &env = Env::cur();
        int fail = 0;
        fail += env.vpeStart(999) != Error::NoSuchCap;
        fail += env.revoke(999, true) != Error::NoSuchCap;
        fail += env.createSgate(env.allocSels(), 999, 0, 1) !=
                Error::NoSuchCap;
        fail += env.deriveMem(999, env.allocSels(), 0, 1, MEM_R) !=
                Error::NoSuchCap;
        int code = 0;
        fail += env.vpeWait(999, code) != Error::NoSuchCap;
        fail += env.openSess(env.allocSels(), "nosuch", 0) !=
                Error::NoSuchService;
        // Activating onto the reserved system endpoints is refused.
        MemGate mem = MemGate::create(env, 4 * KiB, MEM_RW);
        fail += env.activate(mem.capSel(), kif::SYSC_SEP, 0) !=
                Error::InvalidArgs;
        return fail;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelSyscalls, DramExhaustionIsGraceful)
{
    M3SystemCfg cfg = bareCfg(2);
    cfg.dramBytes = 2 * MiB;
    M3System sys(std::move(cfg));
    sys.runRoot("oom", [&] {
        Env &env = Env::cur();
        // Allocate until the kernel runs out; must end with NoSpace.
        for (int i = 0; i < 64; ++i) {
            capsel_t sel = env.allocSels();
            Error e = env.reqMem(sel, 256 * KiB, MEM_RW);
            if (e == Error::NoSpace)
                return 0;
            if (e != Error::None)
                return 1;
        }
        return 2;  // never hit the limit?
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelIsolation, AppPesAreDowngradedAtBoot)
{
    M3System sys(bareCfg(2));
    sys.runRoot("downgraded", [&] {
        Env &env = Env::cur();
        // The application's DTU must be unprivileged: local endpoint
        // configuration and external requests are refused in hardware.
        if (env.dtu().isPrivileged())
            return 1;
        RecvEpCfg cfg;
        cfg.bufAddr = 0;
        cfg.slotCount = 2;
        cfg.slotSize = 128;
        if (env.dtu().configRecv(5, cfg) != Error::NotPrivileged)
            return 2;
        if (env.dtu().extDowngrade(0) != Error::NotPrivileged)
            return 3;
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelIsolation, GenerationTagBlocksStaleReplies)
{
    // PE reuse: replies addressed to a previous owner must vanish.
    M3System sys(bareCfg(3));
    sys.runRoot("gen", [&] {
        Env &env = Env::cur();
        // Create and destroy a child so its PE gets a new generation.
        peid_t reusedPe;
        {
            VPE vpe(env, "first");
            if (vpe.err() != Error::None)
                return 1;
            reusedPe = vpe.peId();
            vpe.run([] { return 0; });
            if (vpe.wait() != 0)
                return 2;
        }
        VPE vpe2(env, "second");
        if (vpe2.err() != Error::None)
            return 3;
        if (vpe2.peId() != reusedPe)
            return 0;  // allocator picked another PE; nothing to test
        vpe2.run([] { return 0; });
        vpe2.wait();
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelStats, CountsDelegations)
{
    M3System sys(bareCfg(3));
    sys.runRoot("stats", [&] {
        Env &env = Env::cur();
        MemGate mem = MemGate::create(env, 4 * KiB, MEM_RW);
        VPE child(env, "child");
        if (child.err() != Error::None)
            return 1;
        child.delegate(mem.capSel(), 1, 50);
        child.run([] { return 0; });
        return child.wait();
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    EXPECT_GE(sys.kernelInstance().stats().capsDelegated, 1u);
    EXPECT_GE(sys.kernelInstance().stats().vpesCreated, 2u);
}


TEST(KernelCaps, ObtainPullsCapsFromChild)
{
    // The reverse direction of Exchange: the parent obtains a
    // capability the child created (Sec. 4.5.3).
    M3System sys(bareCfg(3));
    sys.runRoot("obtain", [&] {
        Env &env = Env::cur();
        VPE child(env, "maker");
        if (child.err() != Error::None)
            return 1;
        child.run([] {
            Env &cenv = Env::cur();
            // Create a memory capability at a selector the parent
            // knows, write a marker, and idle until revoked... no:
            // simply exit; the capability outlives the program.
            capsel_t sel = 70;
            if (cenv.reqMem(sel, 4 * KiB, MEM_RW) != Error::None)
                return 1;
            MemGate g(cenv, sel, 4 * KiB);
            uint64_t v = 0x1234;
            g.write(&v, sizeof(v), 0);
            return 0;
        });
        if (child.wait() != 0)
            return 2;
        // Pull selector 70 out of the child's table into ours.
        if (child.obtain(70, 1, 80) != Error::None)
            return 3;
        MemGate mine(env, 80, 4 * KiB);
        uint64_t v = 0;
        if (mine.read(&v, sizeof(v), 0) != Error::None)
            return 4;
        return v == 0x1234 ? 0 : 5;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
}

TEST(KernelVpe, QueuedCreationWaitsForFreePe)
{
    // Sec. 3.3's waiting-for-a-reusable-core policy: with only one free
    // PE, five sequential children all run; each creation waits until
    // the predecessor's PE is released.
    M3System sys(bareCfg(2));  // root + one worker PE
    sys.kernelInstance().setQueueVpes(true);
    sys.runRoot("queued", [&] {
        Env &env = Env::cur();
        // Launch children without waiting in between: creation itself
        // provides the back-pressure.
        std::vector<std::unique_ptr<VPE>> kids;
        for (int i = 0; i < 5; ++i) {
            auto vpe = std::make_unique<VPE>(
                env, "kid" + std::to_string(i));
            if (vpe->err() != Error::None)
                return 1 + i;
            vpe->run([i] {
                Fiber::current()->sleep(2000);
                return 10 + i;
            });
            kids.push_back(std::move(vpe));
            // After the first child, creation necessarily waited: only
            // one worker PE exists.
        }
        for (int i = 0; i < 5; ++i)
            if (kids[i]->wait() != 10 + i)
                return 20 + i;
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    EXPECT_GE(sys.kernelInstance().stats().vpesCreated, 6u);
}
} // anonymous namespace
} // namespace m3
