/**
 * @file
 * VPE time multiplexing: the DTU's context fetch/restore machinery
 * (register exactness, message parking for descheduled generations,
 * stale-message dropping) and the kernel-driven scheduler that runs
 * more VPEs than the machine has PEs — including scratchpad spill and
 * fill, cooperative yield, and output-exactness of oversubscribed
 * pipelines against their single-occupancy runs.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "libm3/m3system.hh"
#include "libm3/pipe.hh"
#include "libm3/vpe.hh"
#include "pe/platform.hh"

namespace m3
{
namespace
{

// ---------------------------------------------------------------------
// DTU level: the context fetch/restore primitive.
// ---------------------------------------------------------------------

/** A small bare platform: 3 PEs + DRAM, DTUs still privileged. */
struct BareSystem
{
    BareSystem() : platform(sim, PlatformSpec::generalPurpose(3)) {}

    Simulator sim;
    Platform platform;

    Dtu &dtu(peid_t p) { return platform.pe(p).dtu(); }
    Spm &spm(peid_t p) { return platform.pe(p).spm(); }

    /** Issue an ext op from dtu(0) and block the fiber until acked. */
    template <typename Fn>
    Error
    extSync(Fn &&issue)
    {
        bool done = false;
        Error result = Error::None;
        Fiber *self = Fiber::current();
        issue([&](Error e) {
            result = e;
            done = true;
            self->unblock();
        });
        while (!done)
            self->block();
        return result;
    }
};

RecvEpCfg
ringCfg(Spm &spm, uint32_t slots, uint32_t slotSize)
{
    RecvEpCfg cfg;
    cfg.bufAddr = spm.alloc(slots * slotSize);
    cfg.slotCount = slots;
    cfg.slotSize = slotSize;
    cfg.replyProtected = true;
    return cfg;
}

SendEpCfg
sendCfg(uint32_t targetNode, epid_t targetEp, label_t label,
        uint32_t credits, uint32_t maxMsg, uint32_t targetGen = 0)
{
    SendEpCfg cfg;
    cfg.targetNode = targetNode;
    cfg.targetEp = targetEp;
    cfg.label = label;
    cfg.credits = credits;
    cfg.maxMsgSize = maxMsg;
    cfg.targetGen = targetGen;
    return cfg;
}

TEST(DtuCtx, FetchRestorePreservesRegistersExactly)
{
    BareSystem s;
    // A full register file on PE 1: send (with a consumed credit),
    // receive, and memory endpoint.
    ASSERT_EQ(s.dtu(2).configRecv(2, ringCfg(s.spm(2), 4, 128)),
              Error::None);
    ASSERT_EQ(s.dtu(1).configSend(2, sendCfg(2, 2, 0xabc, 3, 128)),
              Error::None);
    ASSERT_EQ(s.dtu(1).configRecv(3, ringCfg(s.spm(1), 4, 256)),
              Error::None);
    MemEpCfg mem;
    mem.targetNode = s.platform.dramNode();
    mem.offset = 0x100;
    mem.size = 0x1000;
    mem.perms = MEM_RW;
    ASSERT_EQ(s.dtu(1).configMem(4, mem), Error::None);
    const RecvEpCfg ring1 = s.dtu(1).ep(3).recv;

    s.sim.run("test", [&] {
        // Consume one credit so the saved count is not the initial one.
        spmaddr_t msg = s.spm(1).alloc(16);
        ASSERT_EQ(s.dtu(1).startSend(2, msg, 16), Error::None);
        s.dtu(1).waitUntilIdle();
        ASSERT_EQ(s.dtu(1).credits(2), 2u);

        const uint32_t gen = s.dtu(1).dtuGeneration();
        ASSERT_NE(gen, 0u);

        Dtu::CtxState st;
        ASSERT_EQ(s.extSync([&](auto cb) {
            s.dtu(0).extDrain(1, cb);
        }), Error::None);
        ASSERT_EQ(s.extSync([&](auto cb) {
            s.dtu(0).extFetchCtx(1, &st, cb);
        }), Error::None);

        // The PE is ownerless: every EP invalid, generation 0.
        EXPECT_EQ(s.dtu(1).dtuGeneration(), 0u);
        for (epid_t e = 0; e < EP_COUNT; ++e)
            EXPECT_EQ(s.dtu(1).ep(e).type, EpType::Invalid);

        // The fetched context carries the exact registers.
        EXPECT_EQ(st.generation, gen);
        EXPECT_EQ(st.eps[2].type, EpType::Send);
        EXPECT_EQ(st.eps[2].send.targetNode, 2u);
        EXPECT_EQ(st.eps[2].send.label, 0xabcu);
        EXPECT_EQ(st.eps[2].send.credits, 2u);
        EXPECT_EQ(st.eps[2].send.maxCredits, 3u);
        EXPECT_EQ(st.eps[3].type, EpType::Receive);
        EXPECT_EQ(st.eps[4].type, EpType::Memory);

        ASSERT_EQ(s.extSync([&](auto cb) {
            s.dtu(0).extRestoreCtx(1, &st, cb);
        }), Error::None);

        // Bit-exact round trip.
        EXPECT_EQ(s.dtu(1).dtuGeneration(), gen);
        EXPECT_EQ(s.dtu(1).credits(2), 2u);
        EXPECT_EQ(s.dtu(1).ep(2).send.label, 0xabcu);
        EXPECT_EQ(s.dtu(1).ep(2).send.maxMsgSize, 128u);
        EXPECT_EQ(s.dtu(1).ep(3).recv.bufAddr, ring1.bufAddr);
        EXPECT_EQ(s.dtu(1).ep(3).recv.slotCount, ring1.slotCount);
        EXPECT_EQ(s.dtu(1).ep(3).recv.slotSize, ring1.slotSize);
        EXPECT_EQ(s.dtu(1).ep(4).mem.offset, 0x100u);
        EXPECT_EQ(s.dtu(1).ep(4).mem.size, 0x1000u);
        EXPECT_EQ(s.dtu(1).ep(4).mem.perms, MEM_RW);
    });
    s.sim.simulate();
    EXPECT_TRUE(s.sim.allFinished());
}

TEST(DtuCtx, MessagesParkWhileDescheduledAndReinjectOnRestore)
{
    BareSystem s;
    ASSERT_EQ(s.dtu(1).configRecv(2, ringCfg(s.spm(1), 4, 128)),
              Error::None);
    const uint32_t gen = s.dtu(1).dtuGeneration();
    ASSERT_EQ(s.dtu(2).configSend(
                  2, sendCfg(1, 2, 7, CREDITS_UNLIMITED, 128, gen)),
              Error::None);

    s.sim.run("test", [&] {
        Dtu::CtxState st;
        ASSERT_EQ(s.extSync([&](auto cb) {
            s.dtu(0).extFetchCtx(1, &st, cb);
        }), Error::None);

        // A message addressed to the descheduled generation is buffered
        // at the DTU, not delivered and not dropped.
        spmaddr_t msg = s.spm(2).alloc(16);
        s.spm(2).write(msg, "parked-payload!!", 16);
        ASSERT_EQ(s.dtu(2).startSend(2, msg, 16), Error::None);
        s.dtu(2).waitUntilIdle();
        Fiber::current()->sleep(1000);
        EXPECT_EQ(s.dtu(1).stats().msgsParked, 1u);
        EXPECT_EQ(s.dtu(1).stats().msgsReceived, 0u);
        EXPECT_FALSE(s.dtu(1).hasMsg(2));

        // On restore the message is re-injected and becomes fetchable.
        ASSERT_EQ(s.extSync([&](auto cb) {
            s.dtu(0).extRestoreCtx(1, &st, cb);
        }), Error::None);
        EXPECT_EQ(s.dtu(1).stats().msgsUnparked, 1u);
        ASSERT_TRUE(s.dtu(1).hasMsg(2));
        int slot = s.dtu(1).fetchMsg(2);
        ASSERT_GE(slot, 0);
        char payload[16];
        s.spm(1).read(s.dtu(1).msgAddr(2, slot) + sizeof(MessageHeader),
                      payload, 16);
        EXPECT_EQ(std::memcmp(payload, "parked-payload!!", 16), 0);
        s.dtu(1).ackMsg(2, slot);
    });
    s.sim.simulate();
    EXPECT_TRUE(s.sim.allFinished());
}

TEST(DtuCtx, DiscardDropsParkedAndSubsequentStaleMessages)
{
    BareSystem s;
    ASSERT_EQ(s.dtu(1).configRecv(2, ringCfg(s.spm(1), 4, 128)),
              Error::None);
    const uint32_t gen = s.dtu(1).dtuGeneration();
    ASSERT_EQ(s.dtu(2).configSend(
                  2, sendCfg(1, 2, 7, CREDITS_UNLIMITED, 128, gen)),
              Error::None);

    s.sim.run("test", [&] {
        Dtu::CtxState st;
        ASSERT_EQ(s.extSync([&](auto cb) {
            s.dtu(0).extFetchCtx(1, &st, cb);
        }), Error::None);

        spmaddr_t msg = s.spm(2).alloc(16);
        ASSERT_EQ(s.dtu(2).startSend(2, msg, 16), Error::None);
        s.dtu(2).waitUntilIdle();
        Fiber::current()->sleep(1000);
        ASSERT_EQ(s.dtu(1).stats().msgsParked, 1u);

        // The VPE exited while descheduled: its buffered messages die
        // with the context.
        ASSERT_EQ(s.extSync([&](auto cb) {
            s.dtu(0).extDiscardCtx(1, gen, cb);
        }), Error::None);
        EXPECT_EQ(s.dtu(1).stats().msgsDropped, 1u);

        // Later messages to the dead generation are stale: dropped on
        // arrival, never parked again.
        ASSERT_EQ(s.dtu(2).startSend(2, msg, 16), Error::None);
        s.dtu(2).waitUntilIdle();
        Fiber::current()->sleep(1000);
        EXPECT_EQ(s.dtu(1).stats().msgsDropped, 2u);
        EXPECT_EQ(s.dtu(1).stats().msgsParked, 1u);
        EXPECT_EQ(s.dtu(1).stats().msgsReceived, 0u);
    });
    s.sim.simulate();
    EXPECT_TRUE(s.sim.allFinished());
}

// ---------------------------------------------------------------------
// Kernel level: scheduling more VPEs than PEs.
// ---------------------------------------------------------------------

M3SystemCfg
plexCfg(uint32_t appPes, Cycles slice = 50000)
{
    M3SystemCfg cfg;
    cfg.appPes = appPes;
    cfg.withFs = false;
    cfg.multiplexSlice = slice;
    return cfg;
}

TEST(Multiplex, TwoVpesShareOnePe)
{
    // One spare PE, two children: the kernel must time-multiplex.
    M3System sys(plexCfg(2));
    peid_t peA = INVALID_PE, peB = INVALID_PE;
    sys.runRoot("root", [&] {
        Env &env = Env::cur();
        VPE a(env, "a");
        if (a.err() != Error::None)
            return 1;
        VPE b(env, "b");
        if (b.err() != Error::None)
            return 2;
        peA = a.peId();
        peB = b.peId();
        if (a.run([] { Env::cur().compute(400000); return 7; }) !=
            Error::None)
            return 3;
        if (b.run([] { Env::cur().compute(400000); return 9; }) !=
            Error::None)
            return 4;
        if (a.wait() != 7)
            return 5;
        if (b.wait() != 9)
            return 6;
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    EXPECT_EQ(peA, peB);
    EXPECT_GE(sys.kernelInstance().stats().ctxSwitches, 1u);
}

TEST(Multiplex, ScratchpadBytesSurviveContextSwitches)
{
    // Both co-resident VPEs fill the SAME scratchpad addresses with
    // different patterns; the spill/fill machinery must give each VPE
    // its own bytes back after every switch.
    M3System sys(plexCfg(2));
    sys.runRoot("root", [&] {
        Env &env = Env::cur();
        auto body = [](uint8_t pattern) {
            Env &e = Env::cur();
            const size_t n = 8 * KiB;
            spmaddr_t buf = e.spm().alloc(n);
            std::vector<uint8_t> data(n);
            for (size_t i = 0; i < n; ++i)
                data[i] = static_cast<uint8_t>(pattern ^ (i & 0xff));
            e.spm().write(buf, data.data(), n);
            // Long enough to guarantee several slice expirations while
            // the co-resident runs.
            for (int r = 0; r < 4; ++r) {
                e.compute(120000);
                std::vector<uint8_t> got(n);
                e.spm().read(buf, got.data(), n);
                if (std::memcmp(got.data(), data.data(), n) != 0)
                    return 100 + r;
            }
            return 0;
        };
        VPE a(env, "a");
        VPE b(env, "b");
        if (a.err() != Error::None || b.err() != Error::None)
            return 1;
        if (a.run([body] { return body(0x5a); }) != Error::None)
            return 2;
        if (b.run([body] { return body(0xc3); }) != Error::None)
            return 3;
        if (a.wait() != 0)
            return 4;
        if (b.wait() != 0)
            return 5;
        return 0;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    EXPECT_GE(sys.kernelInstance().stats().ctxSwitches, 2u);
}

TEST(Multiplex, YieldHandsThePeOver)
{
    // Cooperative yield: a slice much longer than the workload would
    // serialize the VPEs; yielding interleaves them without preemption.
    M3System sys(plexCfg(2, /*slice=*/5000000));
    sys.runRoot("root", [&] {
        Env &env = Env::cur();
        auto body = [] {
            Env &e = Env::cur();
            for (int r = 0; r < 3; ++r) {
                e.compute(10000);
                // None: the PE was handed over. NoSuchVpe: nobody else
                // was runnable (e.g. the peer already exited).
                Error err = e.yield();
                if (err != Error::None && err != Error::NoSuchVpe)
                    return 1;
            }
            return 0;
        };
        VPE a(env, "a");
        VPE b(env, "b");
        if (a.err() != Error::None || b.err() != Error::None)
            return 1;
        if (a.run(body) != Error::None || b.run(body) != Error::None)
            return 2;
        return a.wait() == 0 && b.wait() == 0 ? 0 : 3;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    EXPECT_GE(sys.kernelInstance().stats().yields, 6u);
    EXPECT_GE(sys.kernelInstance().stats().ctxSwitches, 2u);
}

/**
 * Run two producer pipelines into the root and return every byte the
 * root read, in order, per producer. @p spares controls occupancy: with
 * 2 spare PEs each producer has its own PE; with 1 they are multiplexed.
 */
std::array<std::vector<uint8_t>, 2>
runProducerPipes(uint32_t spares, Cycles slice, uint64_t *switches)
{
    M3SystemCfg cfg;
    cfg.appPes = 1 + spares;
    cfg.withFs = false;
    cfg.multiplexSlice = slice;
    M3System sys(cfg);
    std::array<std::vector<uint8_t>, 2> out;
    sys.runRoot("consumer", [&] {
        Env &env = Env::cur();
        Pipe p0(env, /*creatorWrites=*/false, 16 * KiB, 4);
        Pipe p1(env, /*creatorWrites=*/false, 16 * KiB, 4);
        VPE a(env, "prod0");
        VPE b(env, "prod1");
        if (a.err() != Error::None || b.err() != Error::None)
            return 1;
        if (p0.delegateTo(a, 16) != Error::None ||
            p1.delegateTo(b, 16) != Error::None)
            return 2;
        auto producer = [](uint8_t seed) {
            Env &e = Env::cur();
            auto out = pipePeer(e, /*peerWrites=*/true, 16, 16 * KiB, 4);
            std::vector<uint8_t> chunk(1024);
            uint8_t v = seed;
            for (int c = 0; c < 24; ++c) {
                for (auto &x : chunk) {
                    v = static_cast<uint8_t>(v * 37 + 11);
                    x = v;
                }
                e.compute(5000);
                if (out->write(chunk.data(), chunk.size()) !=
                    static_cast<ssize_t>(chunk.size()))
                    return 1;
            }
            return 0;
        };
        if (a.run([producer] { return producer(1); }) != Error::None)
            return 3;
        if (b.run([producer] { return producer(2); }) != Error::None)
            return 4;
        auto h0 = p0.host();
        auto h1 = p1.host();
        // Drain both pipes; alternate so neither producer stalls on a
        // full ring forever.
        std::vector<uint8_t> buf(2048);
        bool open0 = true, open1 = true;
        while (open0 || open1) {
            if (open0) {
                ssize_t n = h0->read(buf.data(), buf.size());
                if (n < 0)
                    return 5;
                if (n == 0)
                    open0 = false;
                else
                    out[0].insert(out[0].end(), buf.data(),
                                  buf.data() + n);
            }
            if (open1) {
                ssize_t n = h1->read(buf.data(), buf.size());
                if (n < 0)
                    return 6;
                if (n == 0)
                    open1 = false;
                else
                    out[1].insert(out[1].end(), buf.data(),
                                  buf.data() + n);
            }
        }
        return a.wait() == 0 && b.wait() == 0 ? 0 : 7;
    });
    if (!sys.simulate())
        return {};
    if (sys.rootExitCode() != 0)
        return {};
    if (switches)
        *switches = sys.kernelInstance().stats().ctxSwitches;
    return out;
}

TEST(Multiplex, OversubscribedPipelineSameOutputBytes)
{
    // 2 producers on 1 PE vs 2 producers on 2 PEs: the data each
    // pipeline delivers must be byte-identical — multiplexing may move
    // cycles, never bytes.
    uint64_t switches = 0;
    auto separate = runProducerPipes(2, 50000, nullptr);
    auto plexed = runProducerPipes(1, 50000, &switches);
    ASSERT_EQ(separate[0].size(), 24u * 1024u);
    ASSERT_EQ(separate[1].size(), 24u * 1024u);
    EXPECT_GE(switches, 2u);
    EXPECT_EQ(plexed[0], separate[0]);
    EXPECT_EQ(plexed[1], separate[1]);
}

TEST(Multiplex, DefaultPathCreateVpeStillFailsWhenPesExhausted)
{
    // Without a slice the kernel must behave exactly as before: no
    // co-scheduling, creation fails when no PE is free.
    M3SystemCfg cfg;
    cfg.appPes = 2;
    cfg.withFs = false;
    M3System sys(cfg);
    sys.runRoot("root", [&] {
        Env &env = Env::cur();
        VPE a(env, "a");
        if (a.err() != Error::None)
            return 1;
        VPE b(env, "b");
        return b.err() == Error::NoFreePe ? 0 : 2;
    });
    ASSERT_TRUE(sys.simulate());
    EXPECT_EQ(sys.rootExitCode(), 0);
    EXPECT_EQ(sys.kernelInstance().stats().ctxSwitches, 0u);
}

} // anonymous namespace
} // namespace m3
