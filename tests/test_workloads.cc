/**
 * @file
 * Integration tests for the benchmark workloads: every trace replays
 * successfully on both systems, the natively implemented applications
 * produce identical output on M3 and Linux, the FFT is numerically
 * correct, and the accelerator/scalability machinery behaves sanely.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/fft.hh"
#include "workloads/generators.hh"
#include "workloads/runners.hh"

namespace m3
{
namespace workloads
{
namespace
{

class TraceWorkloads : public ::testing::TestWithParam<std::string>
{
  protected:
    Workload
    workload()
    {
        ComputeCosts compute;
        for (Workload &w : makeAllTraceWorkloads(compute))
            if (w.name == GetParam())
                return w;
        ADD_FAILURE() << "unknown workload " << GetParam();
        return {};
    }
};

TEST_P(TraceWorkloads, ReplaysOnM3)
{
    RunResult r = runM3Trace(workload());
    EXPECT_EQ(r.rc, 0);
    EXPECT_GT(r.wall, 0u);
    EXPECT_GT(r.acct.totalBusy(), 0u);
}

TEST_P(TraceWorkloads, ReplaysOnLinux)
{
    RunResult r = runLxTrace(workload());
    EXPECT_EQ(r.rc, 0);
    EXPECT_GT(r.wall, 0u);
}

TEST_P(TraceWorkloads, LxCacheModeIsFaster)
{
    LxRunOpts hit;
    hit.cacheAlwaysHit = true;
    RunResult rHit = runLxTrace(workload(), hit);
    RunResult rMiss = runLxTrace(workload());
    EXPECT_EQ(rHit.rc, 0);
    EXPECT_LE(rHit.wall, rMiss.wall);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TraceWorkloads,
                         ::testing::Values("tar", "untar", "find",
                                           "sqlite"));

TEST(CatTr, RunsOnBothSystemsAndM3Wins)
{
    CatTrParams p;
    RunResult m3r = runM3CatTr(p);
    RunResult lxr = runLxCatTr(p);
    ASSERT_EQ(m3r.rc, 0);
    ASSERT_EQ(lxr.rc, 0);
    // Sec. 5.6: M3 is about twice as fast on cat+tr.
    EXPECT_LT(m3r.wall, lxr.wall);
}

TEST(CatTr, TarUntarShapesHold)
{
    // Sec. 5.6: tar and untar on M3 take roughly 20% / 16% of Linux.
    ComputeCosts compute;
    for (const char *name : {"tar", "untar"}) {
        Workload w;
        for (Workload &cand : makeAllTraceWorkloads(compute))
            if (cand.name == name)
                w = cand;
        RunResult m3r = runM3Trace(w);
        RunResult lxr = runLxTrace(w);
        ASSERT_EQ(m3r.rc, 0) << name;
        ASSERT_EQ(lxr.rc, 0) << name;
        double ratio = static_cast<double>(m3r.wall) /
                       static_cast<double>(lxr.wall);
        EXPECT_LT(ratio, 0.5) << name << ": M3 should win clearly";
    }
}

TEST(Find, LinuxSlightlyFaster)
{
    // Sec. 5.6: find is the benchmark where Linux is slightly ahead.
    ComputeCosts compute;
    Workload w = makeFind(compute);
    RunResult m3r = runM3Trace(w);
    RunResult lxr = runLxTrace(w);
    ASSERT_EQ(m3r.rc, 0);
    ASSERT_EQ(lxr.rc, 0);
    EXPECT_GT(m3r.wall, lxr.wall);
    // ... but not by much (within 2x).
    EXPECT_LT(m3r.wall, 2 * lxr.wall);
}

TEST(Sqlite, ComputeDominates)
{
    ComputeCosts compute;
    Workload w = makeSqlite(compute);
    RunResult m3r = runM3Trace(w);
    ASSERT_EQ(m3r.rc, 0);
    // The App segment is the majority of the time (Sec. 5.6).
    EXPECT_GT(m3r.app(), m3r.os() + m3r.xfer());
}

TEST(Fft, NumericallyCorrect)
{
    // Round trip: FFT followed by inverse FFT restores the input.
    std::vector<std::complex<float>> data(256);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = {std::sin(0.1f * i), std::cos(0.3f * i)};
    auto orig = data;
    accel::fft(data.data(), data.size(), false);
    accel::fft(data.data(), data.size(), true);
    for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-3);
        EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-3);
    }
}

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    std::vector<std::complex<float>> data(64, {0, 0});
    data[0] = {1, 0};
    accel::fft(data.data(), data.size());
    for (auto &c : data)
        EXPECT_NEAR(std::abs(c), 1.0f, 1e-4);
}

TEST(Fft, ButterflyCountAndCost)
{
    EXPECT_EQ(accel::fftButterflies(8), 12u);      // 4 * 3 stages
    EXPECT_EQ(accel::fftButterflies(1024), 5120u); // 512 * 10
    ComputeCosts costs;
    EXPECT_EQ(accel::fftCost(1024, costs, true),
              accel::fftCost(1024, costs, false) / costs.fftAccelFactor);
}

TEST(FftChain, AcceleratorBeatsSoftware)
{
    FftParams sw;
    sw.binary = "/bin/fft-sw";
    FftParams acc;
    acc.useAccel = true;
    acc.binary = "/bin/fft-accel";

    RunResult rSw = runM3Fft(sw);
    RunResult rAcc = runM3Fft(acc);
    ASSERT_EQ(rSw.rc, 0);
    ASSERT_EQ(rAcc.rc, 0);
    // Fig. 7: the accelerator version is far faster end to end.
    EXPECT_LT(rAcc.wall, rSw.wall / 2);
    // The pure FFT time shrinks by about the accelerator factor.
    EXPECT_LT(rAcc.app() * 10, rSw.app());
}

TEST(FftChain, LinuxChainSlowerThanM3)
{
    FftParams p;
    p.binary = "/bin/fft-cmp";
    RunResult m3r = runM3Fft(p);
    RunResult lxr = runLxFft(p);
    ASSERT_EQ(m3r.rc, 0);
    ASSERT_EQ(lxr.rc, 0);
    EXPECT_LT(m3r.wall, lxr.wall);
}

TEST(Scalability, FewInstancesScaleWell)
{
    ScalabilityResult one = runM3Scalability("tar", 1);
    ScalabilityResult four = runM3Scalability("tar", 4);
    ASSERT_EQ(one.rc, 0);
    ASSERT_EQ(four.rc, 0);
    // Sec. 5.7: up to 4 instances scale very well (allow 35% slack).
    EXPECT_LT(four.avgInstance,
              one.avgInstance + one.avgInstance * 35 / 100);
}

TEST(Scalability, CatTrScalesAlmostPerfectly)
{
    ScalabilityResult two = runM3Scalability("cat+tr", 2);
    ScalabilityResult eight = runM3Scalability("cat+tr", 8);
    ASSERT_EQ(two.rc, 0);
    ASSERT_EQ(eight.rc, 0);
    // After setup, only reader and writer communicate (Sec. 5.7).
    EXPECT_LT(eight.avgInstance,
              two.avgInstance + two.avgInstance / 2);
}


TEST(TraceReplay, EveryOpKindReplaysOnBothSystems)
{
    // A synthetic trace touching every TraceOp kind once.
    Workload w;
    w.name = "allops";
    w.setup.dirs = {"/d"};
    w.setup.files.push_back({"/d/in", 10000, 42});
    Trace &t = w.trace;
    t.push_back({TraceOp::Kind::Mkdir, "/d/sub", "", 0, 0});
    t.push_back({TraceOp::Kind::Open, "/d/in", "", 1, 0});
    TraceOp rd{TraceOp::Kind::Read};
    rd.fdSlot = 0;
    rd.len = 10000;
    t.push_back(rd);
    TraceOp seek{TraceOp::Kind::Seek};
    seek.fdSlot = 0;
    seek.len = 100;
    t.push_back(seek);
    t.push_back({TraceOp::Kind::Open, "/d/out", "", 2 | 4, 1});
    TraceOp wr{TraceOp::Kind::Write};
    wr.fdSlot = 1;
    wr.len = 5000;
    t.push_back(wr);
    TraceOp sf{TraceOp::Kind::Sendfile};
    sf.fdSlot = 1;
    sf.fdSlot2 = 0;
    sf.len = 2000;
    t.push_back(sf);
    t.push_back({TraceOp::Kind::Fsync, "", "", 0, 1});
    t.push_back({TraceOp::Kind::Close, "", "", 0, 1});
    t.push_back({TraceOp::Kind::Close, "", "", 0, 0});
    t.push_back({TraceOp::Kind::Stat, "/d/out", "", 0, 0});
    t.push_back({TraceOp::Kind::Link, "/d/out", "/d/hard", 0, 0});
    t.push_back({TraceOp::Kind::Rename, "/d/out", "/d/sub/moved", 0, 0});
    t.push_back({TraceOp::Kind::Readdir, "/d", "", 0, 0});
    t.push_back({TraceOp::Kind::Unlink, "/d/hard", "", 0, 0});
    TraceOp comp{TraceOp::Kind::Compute};
    comp.len = 1000;
    t.push_back(comp);

    RunResult m3r = runM3Trace(w);
    EXPECT_EQ(m3r.rc, 0);
    RunResult lxr = runLxTrace(w);
    EXPECT_EQ(lxr.rc, 0);
}
} // anonymous namespace
} // namespace workloads
} // namespace m3
